// Torusdateline: the paper's §4.2 motivating example for resource classes,
// end to end — an 8×8 torus with dateline routing, two resource classes,
// and tornado traffic (the classic deadlock trigger for tori without the
// dateline VC discipline). Also shows the sparse transition structure the
// VC organization induces.
package main

import (
	"fmt"

	"repro"
)

func main() {
	topo := repro.Torus(8)
	spec := repro.NewVCSpec(2, 2, 1) // request/reply × pre-/post-dateline
	spec.ResourceSucc = repro.TorusResourceSucc()

	fmt.Printf("8x8 torus, dateline routing, VCs %s\n", spec)
	fmt.Printf("legal VC transitions: %d of %d\n\n",
		spec.CountLegalTransitions(), spec.V()*spec.V())

	pattern, err := repro.NewTrafficPattern("tornado", topo.Terminals())
	if err != nil {
		panic(err)
	}

	base := repro.SimConfig{
		Topology: topo,
		Routing:  repro.NewTorusDateline(topo),
		Spec:     spec,
		VA:       repro.VCAllocConfig{Arch: repro.SepIF, ArbKind: repro.RoundRobin},
		SA: repro.SwitchAllocConfig{
			Arch: repro.SepIF, ArbKind: repro.RoundRobin, SpecMode: repro.SpecReq,
		},
		Pattern:  pattern,
		Seed:     5,
		Warmup:   1000,
		Measure:  3000,
		Drain:    10000,
		Validate: true, // per-cycle allocation checking
	}

	fmt.Println("tornado traffic (every terminal sends halfway around the ring):")
	fmt.Println("rate\tavg latency\tp99\tthroughput")
	for _, rate := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30} {
		cfg := base
		cfg.InjectionRate = rate
		res := repro.NewNetwork(cfg).Run()
		fmt.Printf("%.2f\t%8.1f\t%4d\t%8.3f\n", rate, res.AvgLatency, res.LatencyP99, res.Throughput)
		if res.Saturated {
			fmt.Println("saturated; stopping sweep")
			break
		}
	}
	fmt.Println("\nWithout the dateline's resource-class discipline the ring buffers")
	fmt.Println("would form a cyclic dependency and this workload would deadlock;")
	fmt.Println("with it, the run drains and per-cycle validation stays silent.")
}
