// Sparsevc: size a VC allocator for a custom router with the synthesis cost
// model and show what the sparse VC allocation scheme of §4.2 saves.
//
// The scenario: a torus router (P = 5) with dateline deadlock avoidance —
// two message classes, two resource classes (pre-/post-dateline), two VCs
// per class — i.e. a design point the paper does not tabulate directly.
package main

import (
	"fmt"

	"repro"
)

func main() {
	tech := repro.Default45nm()
	spec := repro.NewVCSpec(2, 2, 2) // dateline torus: V = 8

	fmt.Printf("torus router, P=5, VCs %s (V=%d)\n", spec, spec.V())
	fmt.Printf("legal VC transitions: %d of %d\n\n", spec.CountLegalTransitions(), spec.V()*spec.V())

	fmt.Println("variant      scheme  delay(ns)  area(µm²)  power(mW)")
	for _, arch := range []repro.Arch{repro.SepIF, repro.SepOF, repro.Wavefront} {
		for _, sparse := range []bool{false, true} {
			cfg := repro.VCAllocConfig{
				Ports: 5, Spec: spec, Arch: arch, ArbKind: repro.RoundRobin, Sparse: sparse,
			}
			est := repro.VCAllocCost(tech, cfg)
			scheme := "dense"
			if sparse {
				scheme = "sparse"
			}
			if !est.Synthesized {
				fmt.Printf("%-12s %-7s synthesis failed: %s\n", arch, scheme, est.FailReason)
				continue
			}
			fmt.Printf("%-12s %-7s %8.3f  %9.0f  %9.2f\n",
				arch, scheme, est.DelayNS, est.AreaUM2, est.PowerMW)
		}
	}

	// Functional check: the sparse allocator grants exactly as well as the
	// dense one on router-shaped traffic, where each head flit requests one
	// (message class, resource class) group of VCs — there the wavefront
	// allocator is maximum per class in both layouts.
	dense := repro.NewVCAllocator(repro.VCAllocConfig{Ports: 5, Spec: spec, Arch: repro.Wavefront})
	sparse := repro.NewVCAllocator(repro.VCAllocConfig{Ports: 5, Spec: spec, Arch: repro.Wavefront, Sparse: true})
	rng := repro.NewRand(1)
	reqs := make([]repro.VCRequest, 5*spec.V())
	for i := range reqs {
		if rng.Bool(0.5) {
			m, r, _ := spec.Decompose(i % spec.V())
			succ := spec.ResourceSucc[r]
			reqs[i] = repro.VCRequest{
				Active:     true,
				OutPort:    rng.Intn(5),
				Candidates: spec.ClassMask(m, succ[rng.Intn(len(succ))]),
			}
		}
	}
	gd, gs := 0, 0
	for _, g := range dense.Allocate(reqs) {
		if g >= 0 {
			gd++
		}
	}
	for _, g := range sparse.Allocate(reqs) {
		if g >= 0 {
			gs++
		}
	}
	fmt.Printf("\nfunctional check: dense wavefront granted %d, sparse granted %d (must match)\n", gd, gs)
}
