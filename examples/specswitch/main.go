// Specswitch: quantify what speculative switch allocation buys on the
// flattened butterfly — zero-load latency per scheme (Fig. 14) plus the
// hardware delay each scheme costs (Fig. 10), illustrating the paper's
// trade-off: the pessimistic scheme keeps nearly all of the latency benefit
// at a fraction of the conventional scheme's critical-path cost.
package main

import (
	"fmt"

	"repro"
)

func main() {
	topo := repro.FlattenedButterfly(4, 4)
	tech := repro.Default45nm()

	fmt.Println("fbfly 4x4 c=4, 2x2x1 VCs, sep_if switch allocator")
	fmt.Println("scheme    zero-load latency   allocator delay (ns)")
	for _, mode := range []repro.SpecMode{repro.SpecNone, repro.SpecReq, repro.SpecGnt} {
		cfg := repro.SimConfig{
			Topology: topo,
			Routing:  repro.NewUGAL(topo, 1),
			Spec:     repro.NewVCSpec(2, 2, 1),
			VA:       repro.VCAllocConfig{Arch: repro.SepIF, ArbKind: repro.RoundRobin},
			SA: repro.SwitchAllocConfig{
				Arch: repro.SepIF, ArbKind: repro.RoundRobin, SpecMode: mode,
			},
			InjectionRate: 0.05,
			Seed:          3,
			Warmup:        1000,
			Measure:       3000,
			Drain:         8000,
		}
		res := repro.NewNetwork(cfg).Run()
		est := repro.SwitchAllocCost(tech, repro.SwitchAllocConfig{
			Ports: 10, VCs: 4, Arch: repro.SepIF, ArbKind: repro.RoundRobin, SpecMode: mode,
		})
		fmt.Printf("%-9s %10.1f cycles %14.3f\n", mode, res.AvgLatency, est.DelayNS)
	}
	fmt.Println("\nExpected shape (paper §5.2/§5.3): both speculative schemes cut")
	fmt.Println("zero-load latency equally; spec_req pays almost no delay over the")
	fmt.Println("non-speculative allocator, while spec_gnt pays for its grant-based")
	fmt.Println("conflict masking.")
}
