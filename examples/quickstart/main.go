// Quickstart: build the three allocator architectures from Becker & Dally
// (SC '09), feed them the same 6×6 request matrix, and compare the
// matchings they produce against the maximum-size reference.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const n = 6
	// A request matrix with deliberate conflicts: rows 0-2 all want
	// column 0, plus a scattering of alternatives.
	req := repro.NewMatrix(n, n)
	for _, rc := range [][2]int{
		{0, 0}, {1, 0}, {2, 0},
		{1, 3}, {2, 1}, {3, 2}, {3, 4}, {4, 4}, {5, 5}, {0, 5},
	} {
		req.Set(rc[0], rc[1])
	}
	fmt.Println("request matrix (rows: requesters, columns: resources):")
	fmt.Println(req)
	fmt.Println()

	bound := repro.MaxMatchSize(req)
	fmt.Printf("maximum matching size: %d\n\n", bound)

	for _, cfg := range []repro.AllocConfig{
		{Arch: repro.SepIF, Rows: n, Cols: n, ArbKind: repro.RoundRobin},
		{Arch: repro.SepOF, Rows: n, Cols: n, ArbKind: repro.RoundRobin},
		{Arch: repro.Wavefront, Rows: n, Cols: n},
		{Arch: repro.Maximum, Rows: n, Cols: n},
	} {
		a := repro.NewAllocator(cfg)
		gnt := a.Allocate(req)
		if err := repro.ValidateMatching(req, gnt); err != nil {
			panic(err)
		}
		fmt.Printf("%-9s granted %d/%d  maximal=%v\n",
			a.Name(), gnt.Count(), bound, repro.IsMaximalMatching(req, gnt))
	}

	// Repeated allocation with full contention demonstrates fairness: the
	// separable allocators' iSLIP-style priority updates rotate grants.
	fmt.Println("\nfairness under persistent contention (3 requesters, 1 resource):")
	contended := repro.NewMatrix(3, 1)
	for i := 0; i < 3; i++ {
		contended.Set(i, 0)
	}
	a := repro.NewAllocator(repro.AllocConfig{Arch: repro.SepIF, Rows: 3, Cols: 1, ArbKind: repro.RoundRobin})
	wins := [3]int{}
	for cycle := 0; cycle < 9; cycle++ {
		g := a.Allocate(contended)
		for i := 0; i < 3; i++ {
			if g.Get(i, 0) {
				wins[i]++
			}
		}
	}
	fmt.Printf("grants over 9 cycles: %v\n", wins)
}
