// Meshsim: run the paper's 8×8 mesh (§3.2) through a short latency-vs-load
// sweep with a wavefront switch allocator and pessimistic speculation, and
// print the resulting curve — a miniature of Fig. 13(a-c).
package main

import (
	"fmt"

	"repro"
)

func main() {
	topo := repro.Mesh(8)
	base := repro.SimConfig{
		Topology: topo,
		Routing:  repro.NewDOR(topo),
		// 2 message classes (request/reply), 1 resource class, 2 VCs per
		// class — the paper's mesh 2x1x2 design point.
		Spec: repro.NewVCSpec(2, 1, 2),
		VA:   repro.VCAllocConfig{Arch: repro.SepIF, ArbKind: repro.RoundRobin},
		SA: repro.SwitchAllocConfig{
			Arch:     repro.Wavefront,
			ArbKind:  repro.RoundRobin,
			SpecMode: repro.SpecReq,
		},
		Seed:    7,
		Warmup:  1000,
		Measure: 3000,
		Drain:   10000,
	}

	fmt.Println("8x8 mesh, 2x1x2 VCs, wf switch allocator, pessimistic speculation")
	fmt.Println("rate\tavg latency\tthroughput\tsaturated")
	for _, rate := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40} {
		cfg := base
		cfg.InjectionRate = rate
		res := repro.NewNetwork(cfg).Run()
		fmt.Printf("%.2f\t%8.1f\t%8.3f\t%v\n", rate, res.AvgLatency, res.Throughput, res.Saturated)
		if res.Saturated {
			fmt.Println("network saturated; stopping sweep")
			break
		}
	}
}
