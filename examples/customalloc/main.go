// Customalloc: implement a user-defined allocator against the library's
// Allocator interface and benchmark its matching quality against the
// built-in architectures — the extension point a downstream user would use
// to evaluate a new allocation scheme under the paper's methodology.
//
// The custom allocator is a "greedy row-major" allocator: it scans rows in
// order and grants the first free requested column — simple, fast, maximal,
// but unfair (earlier rows always win).
package main

import (
	"fmt"

	"repro"
)

// greedy is a row-major greedy allocator.
type greedy struct {
	rows, cols int
	gnt        *repro.Matrix
}

func newGreedy(rows, cols int) *greedy {
	return &greedy{rows: rows, cols: cols, gnt: repro.NewMatrix(rows, cols)}
}

func (g *greedy) Shape() (int, int) { return g.rows, g.cols }
func (g *greedy) Name() string      { return "greedy" }
func (g *greedy) Reset()            {}

func (g *greedy) Allocate(req *repro.Matrix) *repro.Matrix {
	g.gnt.Reset()
	colUsed := make([]bool, g.cols)
	for i := 0; i < g.rows; i++ {
		req.Row(i).ForEach(func(j int) {
			if !colUsed[j] && !g.gnt.Row(i).Any() {
				g.gnt.Set(i, j)
				colUsed[j] = true
			}
		})
	}
	return g.gnt
}

func main() {
	const n, trials = 10, 5000
	rng := repro.NewRand(99)

	contenders := []repro.Allocator{
		newGreedy(n, n),
		repro.NewAllocator(repro.AllocConfig{Arch: repro.SepIF, Rows: n, Cols: n, ArbKind: repro.RoundRobin}),
		repro.NewAllocator(repro.AllocConfig{Arch: repro.SepOF, Rows: n, Cols: n, ArbKind: repro.RoundRobin}),
		repro.NewAllocator(repro.AllocConfig{Arch: repro.Wavefront, Rows: n, Cols: n}),
	}

	grants := make([]int, len(contenders))
	rowShare := make([][]int, len(contenders))
	for i := range rowShare {
		rowShare[i] = make([]int, n)
	}
	maxGrants := 0

	req := repro.NewMatrix(n, n)
	for trial := 0; trial < trials; trial++ {
		req.Reset()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Bool(0.3) {
					req.Set(i, j)
				}
			}
		}
		maxGrants += repro.MaxMatchSize(req)
		for ci, a := range contenders {
			g := a.Allocate(req)
			if err := repro.ValidateMatching(req, g); err != nil {
				panic(fmt.Sprintf("%s produced an invalid matching: %v", a.Name(), err))
			}
			grants[ci] += g.Count()
			for i := 0; i < n; i++ {
				if g.Row(i).Any() {
					rowShare[ci][i]++
				}
			}
		}
	}

	fmt.Printf("matching quality over %d random 10x10 request matrices (density 0.3):\n\n", trials)
	fmt.Println("allocator  quality  grant share row0 / row9 (fairness)")
	for ci, a := range contenders {
		fmt.Printf("%-10s %.4f   %5.1f%% / %5.1f%%\n",
			a.Name(),
			float64(grants[ci])/float64(maxGrants),
			100*float64(rowShare[ci][0])/float64(trials),
			100*float64(rowShare[ci][n-1])/float64(trials))
	}
	fmt.Println("\nThe greedy allocator's matching quality is in the wavefront class")
	fmt.Println("(both are maximal), well above the separable allocators — but it")
	fmt.Println("starves high-numbered rows: exactly the quality/fairness trade-off")
	fmt.Println("the paper's §2 frames.")
}
