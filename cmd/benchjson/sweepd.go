package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/sweep"
)

// sweepdReport tracks the sweep service's three perf layers at the handler
// level (httptest recorder, no TCP): the cold-miss cost of one simulated
// unit, the warm-hit cost of serving the same unit from the content store,
// and how N concurrent identical requests coalesce onto one simulation.
type sweepdReport struct {
	env
	// Unit is the benchmarked unit config (a -quick Fig. 13 point).
	Unit sweep.UnitConfig `json:"unit"`
	Key  string           `json:"key"`
	// ColdMissNS is the end-to-end handler latency of the first request
	// (runs the simulation); WarmHitNS averages HitIters cache-hit serves
	// of the identical request.
	ColdMissNS float64 `json:"cold_miss_ns"`
	WarmHitNS  float64 `json:"warm_hit_ns"`
	HitIters   int     `json:"hit_iters"`
	// HitSpeedup = ColdMissNS / WarmHitNS. The acceptance floor is 1000x.
	HitSpeedup float64 `json:"hit_speedup"`
	// Coalesced measures ConcurrentRequests identical cold requests against
	// a fresh server: SimRuns counts actual simulations (1 when coalescing
	// works), WallNS the batch wall-clock, RequestsPerSec its throughput.
	ConcurrentRequests int     `json:"concurrent_requests"`
	SimRuns            int64   `json:"sim_runs"`
	CoalescedWallNS    float64 `json:"coalesced_wall_ns"`
	RequestsPerSec     float64 `json:"requests_per_sec"`
}

// benchUnit is the cold/warm/coalescing measurement unit: the mid-load
// mesh point of Fig. 13 at cmd/repro's -quick scale.
func benchUnit() sweep.UnitConfig {
	return sweep.UnitConfig{
		Topo: "mesh", Rate: 0.3, Seed: 42, Warmup: 500, Measure: 1000, Drain: 4000,
	}
}

// postUnit drives one request through the handler via a recorder and
// returns its elapsed time.
func postUnit(h http.Handler, body []byte) time.Duration {
	req := httptest.NewRequest(http.MethodPost, "/sweep", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	start := time.Now()
	h.ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		fmt.Fprintf(os.Stderr, "benchjson: sweepd handler: %d: %s\n", rec.Code, rec.Body.String())
		os.Exit(1)
	}
	return elapsed
}

func sweepdBench(hitIters int) sweepdReport {
	unit := benchUnit()
	body, err := json.Marshal(sweep.Request{Base: unit})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := sweepdReport{
		env:      newEnv(),
		Unit:     unit.Normalized(),
		Key:      unit.Key(),
		HitIters: hitIters,
	}

	srv, err := sweep.NewServer(sweep.Options{Workers: 2, Exec: sweep.Exec{Leap: true}})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	h := srv.Handler()
	rep.ColdMissNS = float64(postUnit(h, body).Nanoseconds())
	var warm time.Duration
	for i := 0; i < hitIters; i++ {
		warm += postUnit(h, body)
	}
	rep.WarmHitNS = float64(warm.Nanoseconds()) / float64(hitIters)
	rep.HitSpeedup = rep.ColdMissNS / rep.WarmHitNS

	// Coalescing throughput needs a cold server so every request races for
	// the same in-flight simulation.
	srv2, err := sweep.NewServer(sweep.Options{Workers: 2, Exec: sweep.Exec{Leap: true}})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv2.Close()
	h2 := srv2.Handler()
	const n = 8
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postUnit(h2, body)
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	rep.ConcurrentRequests = n
	rep.SimRuns = srv2.SimRuns()
	rep.CoalescedWallNS = float64(wall.Nanoseconds())
	rep.RequestsPerSec = n / wall.Seconds()
	return rep
}
