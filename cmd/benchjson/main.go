// Command benchjson times the repository's three performance surfaces and
// writes them as machine-readable JSON, so the perf trajectory stays
// comparable across changes without parsing `go test -bench` output:
//
//   - BENCH_net.json: full warmup/measure/drain network simulations of the
//     Fig. 13 mesh 2x1x1 design at a drain-dominated low rate and a
//     near-saturation rate, under the active-set scheduler and the dense
//     reference, serial and sharded.
//   - BENCH_alloc.json: allocator microbenchmarks — VC and switch allocator
//     Allocate calls over synthetic workloads at low-load and saturation
//     request rates, timing both the dense entry point (full resync every
//     cycle) and the masked entry point (only changed requests re-noted).
//   - BENCH_quality.json: quality-harness timings — the matching-quality
//     sweeps behind the Fig. 5/6 reproductions, serial and parallel.
//   - BENCH_sweepd.json: sweep-service layer timings — cold miss vs warm
//     content-store hit, and coalescing of concurrent identical requests.
//   - BENCH_pareto.json: design-space search mechanisms — pruned-vs-brute
//     simulation counts and disk-cold vs disk-warm search wall time.
//   - BENCH_curve.json: adaptive curve tracer — adaptive vs fixed-grid point
//     counts, trace wall time cold vs share-cache vs disk-warm, and the
//     per-simulation setup cost with and without shared immutable precompute.
//
// Usage:
//
//	benchjson                     # default iteration counts, writes all three files
//	benchjson -quick -out -       # reduced counts, net JSON to stdout
//
// Runs are deterministic (seed 42), so the ns/op fields are the only ones
// expected to move between revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/quality"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// env captures the machine context shared by every report.
type env struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
}

func newEnv() env {
	return env{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), GoVersion: runtime.Version()}
}

// netPoint is one timed network-simulation configuration.
type netPoint struct {
	Name string `json:"name"`
	// Workload names a non-baseline injection workload (empty for the
	// bernoulli/uniform baseline points).
	Workload       string  `json:"workload,omitempty"`
	Rate           float64 `json:"rate"`
	Dense          bool    `json:"dense"`
	Leap           bool    `json:"leap"`
	Shards         int     `json:"shards"`
	Iters          int     `json:"iters"`
	NsPerOp        float64 `json:"ns_per_op"`
	Cycles         int64   `json:"cycles_per_op"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	FlitsDelivered int64   `json:"flits_delivered_per_op"`
	// LeapEvents and CyclesLeapt average the leap gate's firings and the
	// cycles it skipped per run (zero with Leap off).
	LeapEvents  int64 `json:"leap_events_per_op,omitempty"`
	CyclesLeapt int64 `json:"cycles_leapt_per_op,omitempty"`
}

// multicoreRun is one gomaxprocs setting's shard-scaling sweep. On a 1-CPU
// host (see env.num_cpu) the runs are timesliced, not parallel — the
// numbers then measure scheduling overhead, not speedup; EXPERIMENTS.md
// documents the harness for reproducing the curve on a multicore box.
type multicoreRun struct {
	GoMaxProcs int        `json:"gomaxprocs"`
	Points     []netPoint `json:"points"`
}

type netReport struct {
	env
	Points []netPoint `json:"points"`
	// Multicore holds gomaxprocs>1 shard-scaling measurements.
	Multicore []multicoreRun `json:"multicore,omitempty"`
}

// benchScale is the phase-length/seed baseline every network point runs
// at; the shared -warmup/-measure/-drain/-seed flags adjust it, while each
// point's own shards/dense/leap matrix overrides the execution axes.
var benchScale = experiments.SimScale{Warmup: 500, Measure: 1500, Drain: 8000, Seed: 42}

// runNetPoint times iters runs of one configuration. Only Run() is on the
// clock: network construction costs ~1.5 ms regardless of configuration,
// which on short low-rate points would dilute every stepper-level ratio
// the snapshot exists to track.
func runNetPoint(name string, pt experiments.Point, rate float64, shards int, dense, leap bool, iters int, w traffic.Workload) netPoint {
	scale := benchScale
	scale.Shards, scale.Dense, scale.Leap = shards, dense, leap
	scale.Workload = w
	cfg := experiments.BuildSim(pt, rate, scale)
	var cycles, flits, leaps, leapt int64
	var elapsed time.Duration
	for i := 0; i < iters; i++ {
		n := sim.New(cfg)
		start := time.Now()
		res := n.Run()
		elapsed += time.Since(start)
		if res.FlitsDelivered == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: no traffic moved at rate %g\n", rate)
			os.Exit(1)
		}
		cycles += res.Cycles
		flits += res.FlitsDelivered
		ev, cy := n.LeapStats()
		leaps += ev
		leapt += cy
	}
	wname := ""
	if w.Process != "" || w.Pattern != "" {
		wname = experiments.WorkloadName(w.Normalized())
	}
	return netPoint{
		Name:           name,
		Workload:       wname,
		Rate:           rate,
		Dense:          dense,
		Leap:           leap,
		Shards:         shards,
		Iters:          iters,
		NsPerOp:        float64(elapsed.Nanoseconds()) / float64(iters),
		Cycles:         cycles / int64(iters),
		CyclesPerSec:   float64(cycles) / elapsed.Seconds(),
		FlitsDelivered: flits / int64(iters),
		LeapEvents:     leaps / int64(iters),
		CyclesLeapt:    leapt / int64(iters),
	}
}

func netBench(iters int) netReport {
	pt, err := experiments.PointByName("mesh", 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := netReport{env: newEnv()}
	// 0.0005 is the drain-dominated point: across 64 terminals the aggregate
	// arrival gaps dwarf a transaction's round trip, so the network is fully
	// idle most cycles and the leap gate carries the run.
	for _, rate := range []float64{0.0005, 0.005, 0.05, 0.30} {
		for _, sched := range []string{"dense", "active", "leap"} {
			for _, shards := range []int{1, 2, 4} {
				if sched == "dense" && shards != 1 {
					continue // the dense × sharded cross is covered by tests, not tracked perf
				}
				name := fmt.Sprintf("mesh_2x1x1/rate=%g/%s/shards=%d", rate, sched, shards)
				rep.Points = append(rep.Points,
					runNetPoint(name, pt, rate, shards, sched == "dense", sched == "leap", iters, traffic.Workload{}))
			}
		}
	}
	// Workload axis: the bursty (mmp) and hotspot injection workloads under
	// the active-set scheduler and the leap gate, so the arrival-process
	// layer's cost stays tracked against the bernoulli/uniform baseline
	// above. 0.05 is low enough that mmp's OFF periods leave real idle
	// stretches for the leap gate to skip.
	for _, wl := range []struct {
		name string
		w    traffic.Workload
	}{
		{"mmp", traffic.Workload{Process: "mmp"}},
		{"hotspot", traffic.Workload{Pattern: "hotspot"}},
	} {
		for _, sched := range []string{"active", "leap"} {
			name := fmt.Sprintf("mesh_2x1x1/rate=0.05/%s/%s/shards=1", wl.name, sched)
			rep.Points = append(rep.Points,
				runNetPoint(name, pt, 0.05, 1, false, sched == "leap", iters, wl.w))
		}
	}
	rep.Multicore = multicoreBench(pt, iters)
	return rep
}

// multicoreBench sweeps shard counts under gomaxprocs > 1 at the
// near-saturation rate, where the sharded stepper has actual parallel work
// per cycle. GOMAXPROCS is set process-wide for each sweep and restored
// afterwards; on hosts with fewer physical CPUs the sweep still runs (Go
// timeslices the workers) so the snapshot stays comparable, but only a
// num_cpu >= gomaxprocs host measures real scaling.
func multicoreBench(pt experiments.Point, iters int) []multicoreRun {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	vals := []int{2, 4}
	if n := runtime.NumCPU(); n > 4 {
		vals = append(vals, n)
	}
	var runs []multicoreRun
	for _, gmp := range vals {
		runtime.GOMAXPROCS(gmp)
		run := multicoreRun{GoMaxProcs: gmp}
		for _, shards := range []int{1, 2, 4, 8, 16} {
			name := fmt.Sprintf("mesh_2x1x1/gomaxprocs=%d/rate=0.3/leap/shards=%d", gmp, shards)
			run.Points = append(run.Points, runNetPoint(name, pt, 0.30, shards, false, true, iters, traffic.Workload{}))
		}
		runs = append(runs, run)
	}
	return runs
}

// allocPoint is one timed allocator microbenchmark: `Cycles` Allocate (or
// AllocateMasked) calls over a synthetic request stream at the given rate.
type allocPoint struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"` // "vc" or "switch"
	Rate        float64 `json:"rate"`
	Churn       float64 `json:"churn"`
	Masked      bool    `json:"masked"`
	Cycles      int     `json:"cycles"`
	NsPerCycle  float64 `json:"ns_per_cycle"`
	GrantsTotal int64   `json:"grants_total"`
}

type allocReport struct {
	env
	Ports  int          `json:"ports"`
	VCs    int          `json:"vcs"`
	Points []allocPoint `json:"points"`
}

// allocRates are the two tracked operating points: drain-dominated low load
// and past-saturation dense request matrices.
var allocRates = []float64{0.05, 0.50}

// allocChurns are the per-cycle request-turnover fractions. 1.0 redraws every
// entry each cycle (the masked path's worst case: the change set is the whole
// matrix, so it can only lose by the diff overhead). 0.1 redraws a tenth of
// the entries, approximating the temporal coherence of real router streams
// where most VCs hold their request across consecutive cycles — the regime
// the change-driven entry point exists for.
var allocChurns = []float64{1.0, 0.1}

// adopt merges a fresh request draw into cur at the churn fraction: entry i
// is replaced on cycle c iff its deterministic slot comes up. churn 1.0
// degenerates to a full copy.
func adopt[T any](cur, fresh []T, c int, churn float64) {
	if churn >= 1 {
		copy(cur, fresh)
		return
	}
	period := int(1 / churn)
	for i := range cur {
		if (c+i*7)%period == 0 {
			cur[i] = fresh[i]
		}
	}
}

func allocBench(cycles int) allocReport {
	const ports = 5 // mesh radix
	spec := core.NewVCSpec(2, 1, 4)
	v := spec.V()
	rep := allocReport{env: newEnv(), Ports: ports, VCs: v}

	vcCfgs := []struct {
		name string
		cfg  core.VCAllocConfig
	}{
		{"va/sepif_rr", core.VCAllocConfig{Ports: ports, Spec: spec, Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin}},
		{"va/sepof_rr", core.VCAllocConfig{Ports: ports, Spec: spec, Arch: alloc.SepOF, ArbKind: arbiter.RoundRobin}},
		{"va/wavefront", core.VCAllocConfig{Ports: ports, Spec: spec, Arch: alloc.Wavefront}},
		{"va/wavefront_sparse", core.VCAllocConfig{Ports: ports, Spec: spec, Arch: alloc.Wavefront, Sparse: true}},
		{"va/freequeue_rr", core.VCAllocConfig{Ports: ports, Spec: spec, ArbKind: arbiter.RoundRobin, FreeQueue: true}},
	}
	for _, tc := range vcCfgs {
		for _, rate := range allocRates {
			for _, churn := range allocChurns {
				a := core.NewVCAllocator(tc.cfg)
				masked, canMask := a.(core.MaskedVCAllocator)
				for _, useMask := range []bool{false, true} {
					if useMask && !canMask {
						continue // free-queue allocator has no masked entry point
					}
					w := quality.NewVCWorkload(ports, spec, 42)
					prev := make([]core.VCRequest, ports*v)
					cur := make([]core.VCRequest, ports*v)
					changed := bitvec.New(ports * v)
					a.Reset()
					// Prime the cache: the masked contract requires one full
					// sync before incremental updates.
					copy(cur, w.Next(rate))
					a.Allocate(cur)
					copy(prev, cur)
					var grants int64
					start := time.Now()
					for c := 0; c < cycles; c++ {
						adopt(cur, w.Next(rate), c, churn)
						var gs []int
						if useMask {
							changed.Reset()
							for i := range cur {
								if cur[i] != prev[i] {
									changed.Set(i)
								}
							}
							gs = masked.AllocateMasked(cur, changed)
						} else {
							gs = a.Allocate(cur)
						}
						for _, g := range gs {
							if g >= 0 {
								grants++
							}
						}
						copy(prev, cur)
					}
					elapsed := time.Since(start)
					rep.Points = append(rep.Points, allocPoint{
						Name:        tc.name,
						Kind:        "vc",
						Rate:        rate,
						Churn:       churn,
						Masked:      useMask,
						Cycles:      cycles,
						NsPerCycle:  float64(elapsed.Nanoseconds()) / float64(cycles),
						GrantsTotal: grants,
					})
				}
			}
		}
	}

	saCfgs := []struct {
		name string
		cfg  core.SwitchAllocConfig
	}{
		{"sa/sepif_rr_nonspec", core.SwitchAllocConfig{Ports: ports, VCs: v, Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin, SpecMode: core.SpecNone}},
		{"sa/sepif_rr_specreq", core.SwitchAllocConfig{Ports: ports, VCs: v, Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin, SpecMode: core.SpecReq}},
		{"sa/sepof_rr_specgnt", core.SwitchAllocConfig{Ports: ports, VCs: v, Arch: alloc.SepOF, ArbKind: arbiter.RoundRobin, SpecMode: core.SpecGnt}},
		{"sa/wavefront_specreq", core.SwitchAllocConfig{Ports: ports, VCs: v, Arch: alloc.Wavefront, ArbKind: arbiter.RoundRobin, SpecMode: core.SpecReq}},
	}
	for _, tc := range saCfgs {
		for _, rate := range allocRates {
			for _, churn := range allocChurns {
				a := core.NewSwitchAllocator(tc.cfg)
				masked, canMask := a.(core.MaskedSwitchAllocator)
				for _, useMask := range []bool{false, true} {
					if useMask && !canMask {
						continue // the precomputed wrapper has no masked entry point
					}
					w := quality.NewSwitchWorkload(ports, v, 42)
					prev := make([]core.SwitchRequest, ports*v)
					cur := make([]core.SwitchRequest, ports*v)
					changed := bitvec.New(ports * v)
					a.Reset()
					copy(cur, speculate(w.Next(rate)))
					a.Allocate(cur)
					copy(prev, cur)
					var grants int64
					start := time.Now()
					for c := 0; c < cycles; c++ {
						adopt(cur, speculate(w.Next(rate)), c, churn)
						var gs []core.SwitchGrant
						if useMask {
							changed.Reset()
							for i := range cur {
								if cur[i] != prev[i] {
									changed.Set(i)
								}
							}
							gs = masked.AllocateMasked(cur, changed)
						} else {
							gs = a.Allocate(cur)
						}
						for _, g := range gs {
							if g.VC >= 0 {
								grants++
							}
						}
						copy(prev, cur)
					}
					elapsed := time.Since(start)
					rep.Points = append(rep.Points, allocPoint{
						Name:        tc.name,
						Kind:        "switch",
						Rate:        rate,
						Churn:       churn,
						Masked:      useMask,
						Cycles:      cycles,
						NsPerCycle:  float64(elapsed.Nanoseconds()) / float64(cycles),
						GrantsTotal: grants,
					})
				}
			}
		}
	}
	return rep
}

// speculate deterministically marks every third active request speculative so
// the SpecGnt/SpecReq sub-allocator and masking stages see real work.
func speculate(reqs []core.SwitchRequest) []core.SwitchRequest {
	n := 0
	for i := range reqs {
		if reqs[i].Active {
			reqs[i].Spec = n%3 == 0
			n++
		}
	}
	return reqs
}

// qualityPoint is one timed quality-harness sweep.
type qualityPoint struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"` // "vc" or "switch"
	Workers    int     `json:"workers"`
	Configs    int     `json:"configs"`
	Rates      int     `json:"rates"`
	Trials     int     `json:"trials"`
	NsPerSweep float64 `json:"ns_per_sweep"`
	MinQuality float64 `json:"min_quality"`
}

type qualityReport struct {
	env
	Points []qualityPoint `json:"points"`
}

func qualityBench(trials int) qualityReport {
	const ports = 5
	spec := core.NewVCSpec(2, 1, 4)
	rates := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	rep := qualityReport{env: newEnv()}

	vcCfgs := []core.VCAllocConfig{
		{Ports: ports, Spec: spec, Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin},
		{Ports: ports, Spec: spec, Arch: alloc.SepOF, ArbKind: arbiter.RoundRobin},
		{Ports: ports, Spec: spec, Arch: alloc.Wavefront},
	}
	saCfgs := []core.SwitchAllocConfig{
		{Ports: ports, VCs: spec.V(), Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin, SpecMode: core.SpecNone},
		{Ports: ports, VCs: spec.V(), Arch: alloc.Wavefront, ArbKind: arbiter.RoundRobin, SpecMode: core.SpecNone},
	}
	for _, workers := range []int{1, runtime.NumCPU()} {
		start := time.Now()
		series := quality.VCSeriesMulti(vcCfgs, rates, trials, 42, workers)
		elapsed := time.Since(start)
		rep.Points = append(rep.Points, qualityPoint{
			Name: "quality/vc_sweep", Kind: "vc", Workers: workers,
			Configs: len(vcCfgs), Rates: len(rates), Trials: trials,
			NsPerSweep: float64(elapsed.Nanoseconds()), MinQuality: minQuality(series),
		})

		start = time.Now()
		series = quality.SwitchSeriesMulti(saCfgs, rates, trials, 42, workers)
		elapsed = time.Since(start)
		rep.Points = append(rep.Points, qualityPoint{
			Name: "quality/switch_sweep", Kind: "switch", Workers: workers,
			Configs: len(saCfgs), Rates: len(rates), Trials: trials,
			NsPerSweep: float64(elapsed.Nanoseconds()), MinQuality: minQuality(series),
		})
	}
	return rep
}

func minQuality(series []quality.Series) float64 {
	m := 1.0
	for _, s := range series {
		if q := s.MinQuality(); q < m {
			m = q
		}
	}
	return m
}

func emit(v any, out string) {
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}

func main() {
	out := flag.String("out", "BENCH_net.json", "network report output ('-' for stdout, '' to skip)")
	allocOut := flag.String("allocout", "BENCH_alloc.json", "allocator report output ('-' for stdout, '' to skip)")
	qualityOut := flag.String("qualityout", "BENCH_quality.json", "quality report output ('-' for stdout, '' to skip)")
	quick := flag.Bool("quick", false, "reduced iteration/cycle/trial counts per point (CI smoke)")
	iters := flag.Int("iters", 3, "iterations per network point")
	allocCycles := flag.Int("alloccycles", 200000, "Allocate calls per allocator point")
	trials := flag.Int("trials", 2000, "request matrices per quality rate point")
	sweepdOut := flag.String("sweepdout", "BENCH_sweepd.json", "sweep service report output ('-' for stdout, '' to skip)")
	hitIters := flag.Int("hititers", 200, "cache-hit serves averaged per sweepd measurement")
	paretoOut := flag.String("paretoout", "BENCH_pareto.json", "design-space search report output ('-' for stdout, '' to skip)")
	curveOut := flag.String("curveout", "BENCH_curve.json", "adaptive curve tracer report output ('-' for stdout, '' to skip)")
	setupIters := flag.Int("setupiters", 100, "BuildSim+sim.New constructions averaged per curve setup measurement")
	scaleOf := experiments.ScaleFlags(flag.CommandLine, benchScale)
	flag.Parse()
	benchScale = scaleOf()
	if *quick {
		*iters, *allocCycles, *trials, *hitIters, *setupIters = 1, 2000, 100, 50, 20
	}

	if *out != "" {
		emit(netBench(*iters), *out)
	}
	if *allocOut != "" {
		emit(allocBench(*allocCycles), *allocOut)
	}
	if *qualityOut != "" {
		emit(qualityBench(*trials), *qualityOut)
	}
	if *sweepdOut != "" {
		emit(sweepdBench(*hitIters), *sweepdOut)
	}
	if *paretoOut != "" {
		emit(paretoBench(), *paretoOut)
	}
	if *curveOut != "" {
		emit(curveBench(*setupIters), *curveOut)
	}
}
