// Command benchjson times the network-simulation benchmark points and
// writes them as machine-readable JSON, so the performance trajectory of
// the simulator stays comparable across changes without parsing `go test
// -bench` output.
//
// Usage:
//
//	benchjson                     # default iteration count, writes BENCH_net.json
//	benchjson -quick -out -       # single iteration per point, JSON to stdout
//
// Each benchmark point is a full warmup/measure/drain simulation of the
// Fig. 13 mesh 2x1x1 design at a drain-dominated low rate and a
// near-saturation rate, under the active-set scheduler and the dense
// reference, serial and sharded. Runs are deterministic (seed 42), so
// ns_per_op is the only field expected to move between revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
)

// point is one timed configuration.
type point struct {
	Name           string  `json:"name"`
	Rate           float64 `json:"rate"`
	Dense          bool    `json:"dense"`
	Shards         int     `json:"shards"`
	Iters          int     `json:"iters"`
	NsPerOp        float64 `json:"ns_per_op"`
	Cycles         int64   `json:"cycles_per_op"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	FlitsDelivered int64   `json:"flits_delivered_per_op"`
}

type report struct {
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	GoVersion  string  `json:"go_version"`
	Points     []point `json:"points"`
}

func main() {
	out := flag.String("out", "BENCH_net.json", "output file ('-' for stdout)")
	quick := flag.Bool("quick", false, "one iteration per point (CI smoke)")
	iters := flag.Int("iters", 3, "iterations per point")
	flag.Parse()
	if *quick {
		*iters = 1
	}

	pt, err := experiments.PointByName("mesh", 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep := report{GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), GoVersion: runtime.Version()}
	for _, rate := range []float64{0.05, 0.30} {
		for _, dense := range []bool{false, true} {
			for _, shards := range []int{1, 2, 4} {
				if dense && shards != 1 {
					continue // the dense × sharded cross is covered by tests, not tracked perf
				}
				cfg := experiments.BuildSim(pt, rate, experiments.SimScale{
					Warmup: 500, Measure: 1500, Drain: 8000, Seed: 42, Shards: shards, Dense: dense,
				})
				var cycles, flits int64
				start := time.Now()
				for i := 0; i < *iters; i++ {
					res := sim.New(cfg).Run()
					if res.FlitsDelivered == 0 {
						fmt.Fprintf(os.Stderr, "benchjson: no traffic moved at rate %.2f\n", rate)
						os.Exit(1)
					}
					cycles += res.Cycles
					flits += res.FlitsDelivered
				}
				elapsed := time.Since(start)
				sched := "active"
				if dense {
					sched = "dense"
				}
				rep.Points = append(rep.Points, point{
					Name:           fmt.Sprintf("mesh_2x1x1/rate=%.2f/%s/shards=%d", rate, sched, shards),
					Rate:           rate,
					Dense:          dense,
					Shards:         shards,
					Iters:          *iters,
					NsPerOp:        float64(elapsed.Nanoseconds()) / float64(*iters),
					Cycles:         cycles / int64(*iters),
					CyclesPerSec:   float64(cycles) / elapsed.Seconds(),
					FlitsDelivered: flits / int64(*iters),
				})
			}
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d benchmark points to %s\n", len(rep.Points), *out)
}
