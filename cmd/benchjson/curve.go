package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/curve"
	"repro/internal/experiments"
	"repro/internal/sharecache"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// curveTopoBench times one topology's adaptive trace through three regimes
// that differ only in which cache tier carries the setup or the points:
//
//   - cold: share cache disabled, empty caches — every point builds its own
//     topology/routing/class-mask state and simulates (the pre-sharing
//     behavior).
//   - share: share cache enabled — concurrent points build the immutable
//     per-config state once and share it read-only; same simulations.
//   - disk-warm: a fresh server on the share run's cache directory — every
//     point is a disk hit, zero simulations.
//
// SetupColdNS/SetupSharedNS isolate the shared-precompute win from the
// simulation itself: amortized BuildSim + sim.New cost per simulation with
// sharing off vs on.
type curveTopoBench struct {
	Topo string     `json:"topo"`
	Spec curve.Spec `json:"spec"`
	// AdaptivePoints vs FixedGridPoints is the tracer's point saving; the
	// knee is identical in all three regimes (golden-pinned).
	AdaptivePoints  int     `json:"adaptive_points"`
	FixedGridPoints int     `json:"fixed_grid_points"`
	KneeFound       bool    `json:"knee_found"`
	KneeRate        float64 `json:"knee_rate"`

	ColdWallNS     float64 `json:"cold_wall_ns"`
	ShareWallNS    float64 `json:"share_wall_ns"`
	DiskWarmWallNS float64 `json:"disk_warm_wall_ns"`
	// ShareBuilds/ShareHits are the share-cache counters over the share
	// run: builds is the number of distinct immutable artifacts constructed,
	// hits the constructions avoided.
	ShareBuilds int64 `json:"share_builds"`
	ShareHits   int64 `json:"share_hits"`
	// DiskWarmHits counts the disk tier's hits in the warm run;
	// DiskWarmSimRuns must be 0.
	DiskWarmHits    int64 `json:"disk_warm_hits"`
	DiskWarmSimRuns int64 `json:"disk_warm_sim_runs"`

	// Setup cost per simulation (BuildSim + sim.New, SetupIters runs),
	// sharing off vs on; SetupSpeedup = cold / shared. sim.New's mutable
	// per-sim state (buffers, router pipelines) is deliberately not shared,
	// so this ratio bounds the whole-setup win.
	SetupIters          int     `json:"setup_iters"`
	SetupColdNsPerSim   float64 `json:"setup_cold_ns_per_sim"`
	SetupSharedNsPerSim float64 `json:"setup_shared_ns_per_sim"`
	SetupSpeedup        float64 `json:"setup_speedup"`
	// Build cost per config (BuildSim only: topology wiring + routing
	// tables, exactly the immutable artifacts the share cache holds);
	// BuildSpeedup is the isolated shared-precompute win.
	BuildColdNsPerOp   float64 `json:"build_cold_ns_per_op"`
	BuildSharedNsPerOp float64 `json:"build_shared_ns_per_op"`
	BuildSpeedup       float64 `json:"build_speedup"`
}

type curveReport struct {
	env
	Points []curveTopoBench `json:"points"`
}

// curveScale is the per-point simulation scale for the curve benchmark:
// reduced phases (the snapshot tracks the tracer and cache mechanisms, not
// simulation fidelity) at the golden tests' seed.
var curveScale = struct{ warmup, measure, drain int }{200, 400, 2000}

func curveBench(setupIters int) curveReport {
	rep := curveReport{env: newEnv()}
	workers := runtime.GOMAXPROCS(0)
	for _, topo := range []string{"mesh", "fbfly"} {
		spec := curve.Spec{
			Base: sweep.UnitConfig{
				Topo: topo, Seed: 42,
				Warmup: curveScale.warmup, Measure: curveScale.measure, Drain: curveScale.drain,
			},
			Step: 0.02, Coarse: 5,
		}.Normalized()
		b := curveTopoBench{Topo: topo, Spec: spec, SetupIters: setupIters}

		trace := func(cacheDir string, sharing bool) (curve.Trace, time.Duration, *sweep.Server) {
			sharecache.Default.SetEnabled(sharing)
			sharecache.Default.Reset()
			srv, err := sweep.NewServer(sweep.Options{
				Exec: sweep.Exec{Leap: true}, Workers: workers, CacheDir: cacheDir,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: curve:", err)
				os.Exit(1)
			}
			start := time.Now()
			tr, err := curve.TraceCurve(context.Background(), srv, spec, curve.Options{Workers: workers})
			elapsed := time.Since(start)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: curve:", err)
				os.Exit(1)
			}
			return tr, elapsed, srv
		}
		tmp := func() string {
			dir, err := os.MkdirTemp("", "benchjson-curve-")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return dir
		}

		// Cold: sharing off, own empty cache directory.
		coldDir := tmp()
		tr, coldWall, srv := trace(coldDir, false)
		srv.Close()
		os.RemoveAll(coldDir)
		b.AdaptivePoints, b.FixedGridPoints = tr.Simulated, tr.FixedGridPoints
		b.KneeFound, b.KneeRate = tr.KneeFound, tr.KneeRate
		b.ColdWallNS = float64(coldWall.Nanoseconds())

		// Share: sharing on, fresh empty cache directory (same disk-write
		// cost as the cold pass; the only variable is the share cache).
		shareDir := tmp()
		defer os.RemoveAll(shareDir)
		_, shareWall, srv2 := trace(shareDir, true)
		srv2.Close()
		b.ShareWallNS = float64(shareWall.Nanoseconds())
		st := sharecache.Default.Stats()
		b.ShareBuilds, b.ShareHits = int64(st.Builds), int64(st.Hits)

		// Disk-warm: a fresh server on the share run's directory.
		_, warmWall, srv3 := trace(shareDir, true)
		b.DiskWarmWallNS = float64(warmWall.Nanoseconds())
		b.DiskWarmHits = srv3.Disk().Stats().Hits
		b.DiskWarmSimRuns = srv3.SimRuns()
		srv3.Close()

		// Setup-only cost: amortized BuildSim + sim.New per simulation, the
		// immutable-precompute path the share cache exists for.
		pt, err := experiments.PointByName(topo, spec.Base.VCsPerClass)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: curve:", err)
			os.Exit(1)
		}
		scale := experiments.SimScale{
			Warmup: curveScale.warmup, Measure: curveScale.measure, Drain: curveScale.drain,
			Seed: 42, Leap: true,
		}
		setup := func(sharing, construct bool) float64 {
			sharecache.Default.SetEnabled(sharing)
			sharecache.Default.Reset()
			start := time.Now()
			for i := 0; i < setupIters; i++ {
				cfg := experiments.BuildSim(pt, spec.MinRate, scale)
				if construct {
					sim.New(cfg)
				}
			}
			return float64(time.Since(start).Nanoseconds()) / float64(setupIters)
		}
		b.SetupColdNsPerSim = setup(false, true)
		b.SetupSharedNsPerSim = setup(true, true)
		b.SetupSpeedup = b.SetupColdNsPerSim / b.SetupSharedNsPerSim
		b.BuildColdNsPerOp = setup(false, false)
		b.BuildSharedNsPerOp = setup(true, false)
		b.BuildSpeedup = b.BuildColdNsPerOp / b.BuildSharedNsPerOp

		sharecache.Default.SetEnabled(true)
		sharecache.Default.Reset()
		rep.Points = append(rep.Points, b)
	}
	return rep
}
