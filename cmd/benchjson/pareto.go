package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/dse"
	"repro/internal/sweep"
)

// paretoReport tracks the design-space search's perf mechanisms end to end:
// how many simulations pruning + dedup save against exhaustive enumeration,
// and how much a disk-warm re-run saves against a cold one.
type paretoReport struct {
	env
	// Spec is the searched space (BENCH scale: reduced phases, full axes).
	Spec dse.Spec `json:"spec"`
	// Enumerated raw points collapse to Distinct keys; Infeasible fail the
	// synthesis budget; ColdSimulated of the Feasible rest actually ran,
	// ColdPruned were skipped with a dominance proof.
	Enumerated    int `json:"enumerated"`
	Distinct      int `json:"distinct"`
	Infeasible    int `json:"infeasible"`
	Feasible      int `json:"feasible"`
	ColdSimulated int `json:"cold_simulated"`
	ColdPruned    int `json:"cold_pruned"`
	// ColdWallNS is the cold search against an empty disk cache;
	// WarmWallNS re-runs the identical search in a fresh server sharing the
	// cache directory (every simulation a disk hit). The acceptance floor
	// for WarmSpeedup is 10x.
	ColdWallNS  float64 `json:"cold_wall_ns"`
	WarmWallNS  float64 `json:"warm_wall_ns"`
	WarmSpeedup float64 `json:"warm_speedup"`
	// WarmDiskHits counts the warm run's disk-tier hits; WarmSimRuns must
	// be 0 (the cold run populated every key the warm run needs).
	WarmDiskHits int64 `json:"warm_disk_hits"`
	WarmSimRuns  int64 `json:"warm_sim_runs"`
	// Frontier is the Pareto-optimal set (identical cold and warm; the
	// golden test in internal/dse pins worker-count and cache-tier
	// invariance, and equality with the brute-force frontier).
	Frontier []dse.FrontierPoint `json:"frontier"`
}

func paretoBench() paretoReport {
	// Full allocator axes on both topologies at a reduced per-point scale:
	// the snapshot tracks the search mechanisms, not simulation fidelity.
	spec := dse.Spec{
		Warmup: 200, Measure: 400, Drain: 2000,
	}.Normalized()

	cacheDir, err := os.MkdirTemp("", "benchjson-pareto-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(cacheDir)
	workers := runtime.GOMAXPROCS(0)
	newServer := func() *sweep.Server {
		srv, err := sweep.NewServer(sweep.Options{
			Exec:     sweep.Exec{Leap: true},
			Workers:  workers,
			CacheDir: cacheDir,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return srv
	}

	run := func(srv *sweep.Server) (dse.Result, time.Duration) {
		start := time.Now()
		res, err := dse.Search(context.Background(), srv, spec, dse.SearchOptions{Workers: workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: pareto:", err)
			os.Exit(1)
		}
		return res, time.Since(start)
	}

	cold := newServer()
	coldRes, coldWall := run(cold)
	cold.Close()

	// A fresh server on the same directory models a process restart: the
	// memory tier is empty, every unit comes back from disk.
	warm := newServer()
	warmRes, warmWall := run(warm)
	warmStats := warm.Disk().Stats()
	warmSims := warm.SimRuns()
	warm.Close()
	if len(warmRes.Frontier) != len(coldRes.Frontier) {
		fmt.Fprintln(os.Stderr, "benchjson: pareto: warm frontier diverged from cold")
		os.Exit(1)
	}

	return paretoReport{
		env:           newEnv(),
		Spec:          spec,
		Enumerated:    coldRes.Enumerated,
		Distinct:      coldRes.Distinct,
		Infeasible:    coldRes.Infeasible,
		Feasible:      coldRes.Feasible,
		ColdSimulated: coldRes.Simulated,
		ColdPruned:    coldRes.Pruned,
		ColdWallNS:    float64(coldWall.Nanoseconds()),
		WarmWallNS:    float64(warmWall.Nanoseconds()),
		WarmSpeedup:   float64(coldWall) / float64(warmWall),
		WarmDiskHits:  warmStats.Hits,
		WarmSimRuns:   warmSims,
		Frontier:      coldRes.Frontier,
	}
}
