// Command pkttrace runs a short traced simulation and prints the complete
// pipeline story of one packet: injection, per-router route computation,
// VC-allocation grant, switch grants (speculative or not), misspeculations
// and ejection. It is the debugging lens for the router pipeline.
//
// Usage:
//
//	pkttrace -topo fbfly -c 2 -rate 0.3 -packet 50
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func main() {
	topo := flag.String("topo", "mesh", "design point topology: mesh or fbfly")
	c := flag.Int("c", 1, "VCs per class (1, 2 or 4)")
	workloadOf := experiments.WorkloadFlags(flag.CommandLine, traffic.Workload{Rate: 0.2})
	pkt := flag.Int64("packet", 0, "packet id to trace (0 = first fully traced packet)")
	cycles := flag.Int("cycles", 2000, "cycles to simulate")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	pt, err := experiments.PointByName(*topo, *c)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	workload, err := workloadOf()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	collector := trace.NewCollector(1 << 20)
	cfg := experiments.BuildSim(pt, workload.Rate, experiments.SimScale{
		Warmup: *cycles / 4, Measure: *cycles / 2, Drain: *cycles, Seed: *seed,
		Workload: workload,
	})
	cfg.Trace = trace.New(collector, nil)
	res := sim.New(cfg).Run()

	fmt.Printf("%s at rate %.2f: %d packets measured, avg latency %.1f cycles\n\n",
		pt, workload.Rate, res.MeasuredPackets, res.AvgLatency)

	id := *pkt
	if id == 0 {
		// Pick the first packet whose retained story is complete.
		for candidate := int64(1); candidate < 500; candidate++ {
			evs := collector.PacketEvents(candidate)
			if len(evs) >= 4 && evs[0].Kind == trace.Inject && evs[len(evs)-1].Kind == trace.Eject {
				id = candidate
				break
			}
		}
	}
	story := collector.PacketEvents(id)
	if len(story) == 0 {
		fmt.Fprintf(os.Stderr, "no trace events retained for packet %d\n", id)
		os.Exit(1)
	}
	fmt.Printf("packet %d pipeline story:\n", id)
	for _, e := range story {
		fmt.Println("  " + e.String())
	}
	inj, ej := story[0], story[len(story)-1]
	if inj.Kind == trace.Inject && ej.Kind == trace.Eject {
		fmt.Printf("\nin-network time: %d cycles\n", ej.Cycle-inj.Cycle)
	}
}
