// Command repro regenerates the data for every table and figure in Becker &
// Dally (SC '09) in one pass and prints it to stdout. It is the one-shot
// driver behind EXPERIMENTS.md; expect the full run to take a few minutes
// at the default simulation scale.
//
// Usage:
//
//	repro                 # everything
//	repro -quick          # reduced trials/cycles for a fast sanity pass
//	repro -only fig13     # one experiment family
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/quality"
	"repro/internal/traffic"
)

func main() {
	quick := flag.Bool("quick", false, "reduced trials and cycles")
	def := experiments.DefaultScale()
	def.Workers = 4
	scaleOf := experiments.ScaleFlags(flag.CommandLine, def)
	workloadOf := experiments.WorkloadFlags(flag.CommandLine, traffic.Workload{})
	only := flag.String("only", "", "restrict to one experiment: fig4, fig5, fig6, fig7, fig10, fig11, fig12, fig13, fig14, vasweep, summary")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	flag.Parse()

	stop := prof.StartAll(prof.Profiles{CPU: *cpuprofile, Mem: *memprofile, Block: *blockprofile, Mutex: *mutexprofile})
	defer stop()

	trials := 10000
	scale := scaleOf()
	workload, err := workloadOf()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	scale.Workload = workload
	if *quick {
		// -quick overrides the phase-length defaults but not an explicit
		// -warmup/-measure/-drain on the command line.
		trials = 500
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["warmup"] {
			scale.Warmup = 500
		}
		if !set["measure"] {
			scale.Measure = 1000
		}
		if !set["drain"] {
			scale.Drain = 4000
		}
	}

	want := func(name string) bool { return *only == "" || *only == name }
	tech := costmodel.Default45nm()

	if want("fig4") {
		section("Fig. 4: VC transition matrix (fbfly 2x2x4)")
		spec := core.NewVCSpec(2, 2, 4)
		fmt.Printf("legal transitions: %d of %d (paper: 96 of 256)\n",
			spec.CountLegalTransitions(), spec.V()*spec.V())
		fmt.Printf("max successors per VC: %d (paper: 8)\n", spec.MaxSuccessorsPerVC())
	}

	if want("fig5") || want("fig6") {
		section("Figs. 5 & 6: VC allocator delay / area / power")
		for _, r := range experiments.VCCost(tech) {
			scheme := "dense"
			if r.Sparse {
				scheme = "sparse"
			}
			if !r.Est.Synthesized {
				fmt.Printf("%-12s %-9s %-6s synthesis failed\n", r.Point, r.Variant, scheme)
				continue
			}
			fmt.Printf("%-12s %-9s %-6s delay %.3f ns, area %.0f µm², power %.2f mW\n",
				r.Point, r.Variant, scheme, r.Est.DelayNS, r.Est.AreaUM2, r.Est.PowerMW)
		}
	}

	if want("fig7") {
		section("Fig. 7: VC allocator matching quality")
		for _, pt := range experiments.Points() {
			fmt.Printf("-- %s --\n", pt)
			fmt.Print(quality.FormatSeries(experiments.VCQualityN(pt, sparseRates(), trials, 1, scale.Workers)))
		}
	}

	if want("fig10") || want("fig11") {
		section("Figs. 10 & 11: switch allocator delay / area / power")
		for _, r := range experiments.SwitchCost(tech) {
			if !r.Est.Synthesized {
				fmt.Printf("%-12s %-9s %-8s synthesis failed\n", r.Point, r.Variant, r.Mode)
				continue
			}
			fmt.Printf("%-12s %-9s %-8s delay %.3f ns, area %.0f µm², power %.2f mW\n",
				r.Point, r.Variant, r.Mode, r.Est.DelayNS, r.Est.AreaUM2, r.Est.PowerMW)
		}
	}

	if want("fig12") {
		section("Fig. 12: switch allocator matching quality")
		for _, pt := range experiments.Points() {
			fmt.Printf("-- %s --\n", pt)
			fmt.Print(quality.FormatSeries(experiments.SwitchQualityN(pt, sparseRates(), trials, 1, scale.Workers)))
		}
	}

	if want("fig13") {
		section("Fig. 13: network performance of switch allocators")
		for _, pt := range experiments.Points() {
			fmt.Printf("-- %s --\n", pt)
			series := experiments.Fig13(pt, experiments.InjectionRates(pt), scale)
			fmt.Print(experiments.FormatNetSeries(series))
			for _, s := range series {
				fmt.Printf("%s saturation ~%.3f\n", s.Name, s.SaturationRate())
			}
		}
	}

	if want("fig14") {
		section("Fig. 14: speculative switch allocation schemes")
		for _, pt := range experiments.Points() {
			fmt.Printf("-- %s --\n", pt)
			series := experiments.Fig14(pt, experiments.InjectionRates(pt), scale)
			fmt.Print(experiments.FormatNetSeries(series))
		}
	}

	if want("vasweep") {
		section("§4.3.3: VC allocator sensitivity sweep")
		for _, pt := range experiments.Points()[:3] { // mesh points suffice
			fmt.Printf("-- %s --\n", pt)
			series := experiments.VASweep(pt, experiments.InjectionRates(pt), scale)
			fmt.Print(experiments.FormatNetSeries(series))
		}
	}

	if want("summary") {
		section("Headline numbers")
		d, a, p := experiments.SparseSavings(tech)
		fmt.Printf("sparse VC allocation savings: delay %.0f%%, area %.0f%%, power %.0f%% (paper: 41/90/83)\n",
			d*100, a*100, p*100)
		s, row := experiments.PessimisticDelaySaving(tech)
		fmt.Printf("pessimistic speculation delay saving: %.0f%% at %s (paper: up to 23%%)\n", s*100, row)
	}
}

func section(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}

// sparseRates trims the quality sweep to the shape-relevant samples so the
// full driver finishes in reasonable time.
func sparseRates() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}
