// Command alloccost prints the synthesis-model results behind Figs. 5, 6,
// 10 and 11 of Becker & Dally (SC '09): critical-path delay, cell area and
// dynamic power for every allocator variant at every design point.
//
// Usage:
//
//	alloccost -unit vc       # VC allocators (Figs. 5 and 6)
//	alloccost -unit sw       # switch allocators (Figs. 10 and 11)
//	alloccost -summary       # headline savings (§4.3.1, §5.3.1)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/costmodel"
	"repro/internal/experiments"
)

func main() {
	unit := flag.String("unit", "vc", "allocator unit: vc or sw")
	summary := flag.Bool("summary", false, "print headline savings instead of full tables")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	verbose := flag.Bool("verbose", false, "include per-component gate breakdowns (vc unit only)")
	flag.Parse()

	tech := costmodel.Default45nm()
	if *summary {
		d, a, p := experiments.SparseSavings(tech)
		fmt.Printf("sparse VC allocation max savings: delay %.0f%%, area %.0f%%, power %.0f%% (paper: 41/90/83)\n",
			d*100, a*100, p*100)
		s, row := experiments.PessimisticDelaySaving(tech)
		fmt.Printf("pessimistic speculation max delay saving: %.0f%% at %s (paper: up to 23%%)\n", s*100, row)
		return
	}

	if *asJSON {
		var rep experiments.Report
		switch *unit {
		case "vc":
			rep = experiments.VCCostReport(tech)
		case "sw":
			rep = experiments.SwitchCostReport(tech)
		default:
			fmt.Fprintf(os.Stderr, "unknown unit %q (want vc or sw)\n", *unit)
			os.Exit(1)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	switch *unit {
	case "vc":
		fmt.Fprintln(w, "design point\tvariant\tscheme\tdelay (ns)\tarea (µm²)\tpower (mW)")
		for _, r := range experiments.VCCost(tech) {
			scheme := "dense"
			if r.Sparse {
				scheme = "sparse"
			}
			if !r.Est.Synthesized {
				fmt.Fprintf(w, "%s\t%s\t%s\tsynthesis failed (out of memory)\t\t\n", r.Point, r.Variant, scheme)
				continue
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\t%.0f\t%.2f\n",
				r.Point, r.Variant, scheme, r.Est.DelayNS, r.Est.AreaUM2, r.Est.PowerMW)
			if *verbose {
				for _, c := range r.Est.Components {
					mark := " "
					if c.OnCriticalPath {
						mark = "*"
					}
					fmt.Fprintf(w, "\t%s %s\t\t\t%.0f GE\t\n", mark, c.Name, c.GE)
				}
			}
		}
	case "sw":
		fmt.Fprintln(w, "design point\tvariant\tspeculation\tdelay (ns)\tarea (µm²)\tpower (mW)")
		for _, r := range experiments.SwitchCost(tech) {
			if !r.Est.Synthesized {
				fmt.Fprintf(w, "%s\t%s\t%s\tsynthesis failed\t\t\n", r.Point, r.Variant, r.Mode)
				continue
			}
			fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\t%.0f\t%.2f\n",
				r.Point, r.Variant, r.Mode, r.Est.DelayNS, r.Est.AreaUM2, r.Est.PowerMW)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown unit %q (want vc or sw)\n", *unit)
		os.Exit(1)
	}
	w.Flush()
}
