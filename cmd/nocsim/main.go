// Command nocsim runs the cycle-accurate network simulations behind Figs.
// 13 and 14 of Becker & Dally (SC '09): average packet latency versus flit
// injection rate on the 8×8 mesh and the 4×4 flattened butterfly under
// uniform-random request–reply traffic.
//
// Usage:
//
//	nocsim -exp fig13 -topo fbfly -c 4       # switch allocator comparison
//	nocsim -exp fig14 -topo mesh -c 1        # speculation scheme comparison
//	nocsim -exp vasweep -topo mesh -c 2      # VC allocator (in)sensitivity
//	nocsim -exp workload -process mmp        # bursty-injection latency curve
//	nocsim -record t.txt -rate 0.2           # record a packet trace ...
//	nocsim -exp workload -trace t.txt        # ... and replay it
//
// Latency entries marked with '*' did not drain within the drain budget
// (the offered load exceeds saturation throughput).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alloc"
	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func main() {
	exp := flag.String("exp", "fig13", "experiment: fig13, fig14, vasweep, patterns, workload or saturation")
	topo := flag.String("topo", "mesh", "design point topology: mesh or fbfly")
	c := flag.Int("c", 1, "VCs per class (1, 2 or 4)")
	scaleOf := experiments.ScaleFlags(flag.CommandLine,
		experiments.SimScale{Warmup: 3000, Measure: 6000, Drain: 20000, Seed: 42, Workers: 4, Leap: true})
	workloadOf := experiments.WorkloadFlags(flag.CommandLine, traffic.Workload{})
	record := flag.String("record", "", "run once under the selected workload (at -rate, default mid-sweep), write the arrival trace to this file and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	flag.Parse()

	stop := prof.StartAll(prof.Profiles{CPU: *cpuprofile, Mem: *memprofile, Block: *blockprofile, Mutex: *mutexprofile})
	defer stop()

	pt, err := experiments.PointByName(*topo, *c)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	scale := scaleOf()
	workload, err := workloadOf()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	scale.Workload = workload
	rates := experiments.InjectionRates(pt)

	if *record != "" {
		if err := recordTrace(*record, pt, workload, rates, scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	header := func(format string, args ...any) {
		if !*asJSON {
			fmt.Printf(format, args...)
		}
	}
	var series []experiments.NetSeries
	switch *exp {
	case "fig13":
		header("switch allocator performance (Fig. 13), %s, uniform request-reply traffic\n", pt)
		series = experiments.Fig13(pt, rates, scale)
	case "fig14":
		header("speculative switch allocation (Fig. 14), %s, sep_if switch allocator\n", pt)
		series = experiments.Fig14(pt, rates, scale)
	case "vasweep":
		header("VC allocator sensitivity (§4.3.3), %s\n", pt)
		series = experiments.VASweep(pt, rates, scale)
	case "patterns":
		header("traffic pattern sweep (§3.2), %s at rate %.2f\n", pt, rates[len(rates)/2])
		var err error
		series, err = experiments.PatternSweep(pt, rates[len(rates)/2], scale,
			[]string{"uniform", "transpose", "bitcomp", "bitrev", "shuffle", "tornado", "neighbor", "hotspot"})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "workload":
		header("workload latency-throughput sweep, %s, %s\n", pt, experiments.WorkloadName(workload))
		wrates := rates
		if workload.Process == "trace" {
			// Replay's offered load is data carried by the trace, not a
			// swept parameter: one point regenerates the recorded run.
			wrates = []float64{0}
		}
		series = experiments.WorkloadCurve(pt, wrates, scale)
	case "saturation":
		fmt.Printf("saturation throughput summary (paper conclusions), %s\n", pt)
		for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
			sat := experiments.SaturationThroughput(pt, arch, scale)
			fmt.Printf("  %-8s %.3f flits/cycle/terminal\n", arch, sat)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(1)
	}
	if *asJSON {
		if err := experiments.NetworkReport(*exp, pt, series).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(experiments.FormatNetSeries(series))
	fmt.Println()
	for _, s := range series {
		fmt.Printf("%s: saturation throughput ~%.3f flits/cycle/terminal\n", s.Name, s.SaturationRate())
	}
}

// recordTrace runs one simulation under the selected workload with arrival
// recording on and writes the packet trace to path. Replaying that file
// (-trace path) regenerates the recorded injection stream exactly; on the
// mesh (RNG-free routing) the replayed run is byte-identical to this one.
func recordTrace(path string, pt experiments.Point, w traffic.Workload, rates []float64, scale experiments.SimScale) error {
	rate := w.Rate
	if rate <= 0 {
		rate = rates[len(rates)/2]
	}
	cfg := experiments.BuildSim(pt, rate, scale)
	cfg.RecordArrivals = true
	net := sim.New(cfg)
	res := net.Run()
	ptr := net.ArrivalTrace()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteArrivals(f, ptr); err != nil {
		return err
	}
	fmt.Printf("recorded %d arrivals from %d terminals (%s at rate %.3f, avg latency %.1f) to %s\n",
		len(ptr.Arrivals), ptr.Terminals, pt, rate, res.AvgLatency, path)
	return nil
}
