// Command vctransitions prints the legal VC-to-VC transition matrix for a
// design point, reproducing Fig. 4 of Becker & Dally (SC '09): for the
// flattened butterfly with 2×2×4 VCs, 96 of the 256 possible transitions
// are legal.
//
// Usage:
//
//	vctransitions [-m 2] [-r 2] [-c 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	m := flag.Int("m", 2, "message classes")
	r := flag.Int("r", 2, "resource classes")
	c := flag.Int("c", 4, "VCs per class")
	flag.Parse()

	spec := core.NewVCSpec(*m, *r, *c)
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tm := spec.TransitionMatrix()
	v := spec.V()

	fmt.Printf("VC transition matrix (Fig. 4), %s VCs: rows = input VC, columns = output VC\n\n", spec)
	fmt.Print("      ")
	for to := 0; to < v; to++ {
		fmt.Printf("%2d ", to)
	}
	fmt.Println()
	for from := 0; from < v; from++ {
		fm, fr, fc := spec.Decompose(from)
		fmt.Printf("%2d %s ", from, classTag(fm, fr, fc))
		for to := 0; to < v; to++ {
			if tm.Get(from, to) {
				fmt.Print(" ● ")
			} else {
				fmt.Print(" · ")
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nlegal transitions: %d of %d possible\n", tm.Count(), v*v)
	fmt.Printf("max successors per VC: %d\n", spec.MaxSuccessorsPerVC())
}

func classTag(m, r, c int) string { return fmt.Sprintf("(m%d,r%d,c%d)", m, r, c) }
