// Command sweepd is the persistent sweep service: a long-lived HTTP server
// that runs the repository's cycle-accurate network simulations on demand
// and caches the results by content address. Repeated and concurrent
// requests for the same (config, seed) pay for one simulation: a
// content-addressed LRU store serves repeats, in-flight coalescing merges
// concurrent duplicates, and a bounded worker pool schedules true misses.
// Results are bit-identical to the batch CLIs (cmd/repro, cmd/nocsim) for
// the same unit — the cache key covers exactly the semantic fields, so
// hits are correct regardless of the server's -shards/-leap execution
// configuration.
//
// Usage:
//
//	sweepd                         # listen on :8080
//	sweepd -addr :9090 -workers 8  # explicit bind and pool width
//	sweepd -selfcheck              # in-process smoke: miss, then byte-equal hit
//
// Endpoints:
//
//	POST /sweep    {"base":{...},"sa_archs":[...],"rates":[...]}  → NDJSON
//	POST /curve    {"base":{...},"step":0.01,...}  → adaptive-trace job (poll GET, cancel DELETE)
//	POST /pareto   design-space-search job (poll GET, cancel DELETE)
//	GET  /healthz  liveness
//	GET  /statz    cache / coalescing / pool counters
//
// With -cachedir, -cachemaxbytes/-cachemaxentries bound the disk tier:
// writes that cross a budget evict least-recently-used result files (zero =
// unbounded). /statz reports eviction counters.
//
// The -warmup/-measure/-drain/-seed flags and the workload flag set
// (-process/-pattern/-burstlen/-duty/-hotspots/-hotfrac) set server-side
// defaults for request fields left zero; -shards/-dense/-denserequests/-leap
// pick the execution path for every simulated unit (bit-identical axes,
// never part of the cache key). Trace-replay workloads are batch-only: the
// service content-addresses units by config and cannot materialize trace
// bytes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/curve"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/traffic"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheEntries := flag.Int("cache-entries", 4096, "result store entry bound (0 = unbounded)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result store byte bound (0 = unbounded)")
	cacheDir := flag.String("cachedir", "", "disk cache directory (empty = memory-only); results persist across restarts in a schema-versioned subdirectory")
	cacheMaxBytes := flag.Int64("cachemaxbytes", 0, "disk cache byte budget (0 = unbounded); LRU result files are evicted when a write crosses it")
	cacheMaxEntries := flag.Int64("cachemaxentries", 0, "disk cache entry budget (0 = unbounded); LRU result files are evicted when a write crosses it")
	selfcheck := flag.Bool("selfcheck", false, "run an in-process smoke test (cold miss, then byte-equal cache hit; with -cachedir, also a restart warm hit) and exit")
	scaleOf := experiments.ScaleFlags(flag.CommandLine,
		experiments.SimScale{Workers: runtime.GOMAXPROCS(0), Leap: true})
	workloadOf := experiments.WorkloadFlags(flag.CommandLine, traffic.Workload{})
	flag.Parse()
	scale := scaleOf()
	workload, err := workloadOf()
	if err != nil {
		log.Fatal("sweepd: ", err)
	}
	if workload.Process == "trace" {
		// The service content-addresses units by config alone; it has no
		// channel to materialize trace bytes, so replay stays batch-only.
		log.Fatal("sweepd: trace workloads are batch-only (use cmd/nocsim -trace)")
	}
	scale.Workload = workload

	opts := sweep.Options{
		Defaults:   scale,
		Exec:       sweep.Exec{Shards: scale.Shards, Dense: scale.Dense, DenseRequests: scale.DenseRequests, Leap: scale.Leap},
		Workers:    scale.Workers,
		MaxEntries: *cacheEntries,
		MaxBytes:   *cacheBytes,
		CacheDir:   *cacheDir,

		DiskMaxBytes:   *cacheMaxBytes,
		DiskMaxEntries: *cacheMaxEntries,
	}
	srv, err := sweep.NewServer(opts)
	if err != nil {
		log.Fatal("sweepd: ", err)
	}
	defer srv.Close()

	if *selfcheck {
		if err := runSelfcheck(srv, opts); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd selfcheck: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("sweepd selfcheck: ok")
		return
	}

	cacheDesc := "memory-only"
	if *cacheDir != "" {
		cacheDesc = "disk " + srv.Disk().Dir()
	}
	log.Printf("sweepd: listening on %s (workers=%d, cache %d entries / %d MiB, %s, schema v%d)",
		*addr, scale.Workers, *cacheEntries, *cacheBytes>>20, cacheDesc, sweep.SchemaVersion)
	log.Fatal(http.ListenAndServe(*addr, handler(srv)))
}

// handler mounts the sweep endpoints plus the design-space-search and
// adaptive-curve job APIs (POST/GET/DELETE /pareto, /curve) on one mux.
// Both job services resolve every point through the same server, so a curve
// trace, a frontier search and a live /sweep client never run the same
// simulation twice.
func handler(srv *sweep.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/pareto", dse.NewService(srv).Handler())
	mux.Handle("/curve", curve.NewService(srv).Handler())
	return mux
}

// runSelfcheck exercises the full endpoint stack against a live listener:
// one quick Fig. 13 point requested twice must simulate exactly once, with
// the second pass served entirely from the store and byte-equal to the
// first. With -cachedir set it additionally proves restart persistence: a
// brand-new server on the same directory must serve the whole request from
// disk without simulating. This is the CI endpoint smoke.
func runSelfcheck(srv *sweep.Server, opts sweep.Options) error {
	ts := httptest.NewServer(handler(srv))
	defer ts.Close()

	req := sweep.Request{
		Base: sweep.UnitConfig{
			Topo: "mesh", Seed: 42, Warmup: 500, Measure: 1000, Drain: 4000,
		},
		SAArchs: []string{"sep_if", "wf"},
		Rates:   []float64{0.05, 0.2},
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	post := func(base string) (results map[int]json.RawMessage, sum sweep.SweepSummary, err error) {
		resp, err := http.Post(base+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, sum, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, sum, fmt.Errorf("POST /sweep: %s", resp.Status)
		}
		results = map[int]json.RawMessage{}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if bytes.Contains(line, []byte(`"done"`)) {
				err = json.Unmarshal(line, &sum)
			} else {
				var u sweep.UnitUpdate
				if err = json.Unmarshal(line, &u); err == nil {
					if u.Error != "" {
						return nil, sum, fmt.Errorf("unit %d: %s: %s", u.Index, u.Status, u.Error)
					}
					results[u.Index] = u.Result
				}
			}
			if err != nil {
				return nil, sum, err
			}
		}
		return results, sum, sc.Err()
	}

	start := time.Now()
	cold, coldSum, err := post(ts.URL)
	if err != nil {
		return err
	}
	coldElapsed := time.Since(start)
	if coldSum.Misses != coldSum.Units || coldSum.Units != 4 {
		return fmt.Errorf("cold pass: %+v, want 4 misses", coldSum)
	}
	start = time.Now()
	warm, warmSum, err := post(ts.URL)
	if err != nil {
		return err
	}
	warmElapsed := time.Since(start)
	if warmSum.Hits != warmSum.Units {
		return fmt.Errorf("warm pass: %+v, want all hits", warmSum)
	}
	for i, b := range cold {
		if !bytes.Equal(b, warm[i]) {
			return fmt.Errorf("unit %d: cache hit bytes differ from the miss that populated it", i)
		}
	}
	if got := srv.SimRuns(); got != 4 {
		return fmt.Errorf("two identical sweeps ran %d simulations, want 4", got)
	}
	fmt.Printf("cold %v, warm %v (%0.0fx), 4 units, 4 sims, 4 hits\n",
		coldElapsed.Round(time.Millisecond), warmElapsed.Round(time.Microsecond),
		float64(coldElapsed)/float64(warmElapsed))

	if opts.CacheDir == "" {
		return nil
	}
	bounded := opts.DiskMaxBytes > 0 || opts.DiskMaxEntries > 0
	if bounded {
		// Eviction smoke: the caps are sized so four results cannot all fit,
		// so the cold pass must have evicted — and the evicted files must be
		// gone from the directory, not merely uncounted.
		st := srv.Disk().Stats()
		if st.Evictions == 0 || st.EvictScans == 0 {
			return fmt.Errorf("bounded disk tier (max %dB/%d entries) never evicted: %+v",
				opts.DiskMaxBytes, opts.DiskMaxEntries, st)
		}
		if opts.DiskMaxBytes > 0 && st.Bytes > opts.DiskMaxBytes {
			return fmt.Errorf("disk tier over byte budget after eviction: %+v", st)
		}
		fmt.Printf("eviction: %d files evicted (%dB) in %d scans, %d files remain\n",
			st.Evictions, st.EvictedBytes, st.EvictScans, st.Files)
	}
	// Restart persistence: a fresh process on the same cache directory. With
	// an unbounded tier every unit is a disk-backed hit with zero
	// simulations; with eviction caps the surviving units hit and the
	// evicted ones heal by re-simulating — byte-equal either way.
	srv2, err := sweep.NewServer(opts)
	if err != nil {
		return err
	}
	defer srv2.Close()
	ts2 := httptest.NewServer(handler(srv2))
	defer ts2.Close()
	start = time.Now()
	restart, restartSum, err := post(ts2.URL)
	if err != nil {
		return err
	}
	restartElapsed := time.Since(start)
	if bounded {
		if restartSum.Hits+restartSum.Misses != restartSum.Units || restartSum.Misses == 0 {
			return fmt.Errorf("restart-after-eviction pass: %+v, want evicted units back as misses", restartSum)
		}
		if got := srv2.SimRuns(); got != int64(restartSum.Misses) {
			return fmt.Errorf("restarted server ran %d simulations for %d misses", got, restartSum.Misses)
		}
	} else {
		if restartSum.Hits != restartSum.Units {
			return fmt.Errorf("restart pass: %+v, want all hits from disk", restartSum)
		}
		if got := srv2.SimRuns(); got != 0 {
			return fmt.Errorf("restarted server ran %d simulations, want 0 (disk cache cold?)", got)
		}
		if hits := srv2.Disk().Stats().Hits; hits != int64(restartSum.Units) {
			return fmt.Errorf("restart pass: %d disk hits, want %d", hits, restartSum.Units)
		}
	}
	for i, b := range cold {
		if !bytes.Equal(b, restart[i]) {
			return fmt.Errorf("unit %d: disk-restored bytes differ from the original miss", i)
		}
	}
	fmt.Printf("restart %v, %d units, %d sims, %d hits (dir %s)\n",
		restartElapsed.Round(time.Microsecond), restartSum.Units,
		srv2.SimRuns(), restartSum.Hits, srv2.Disk().Dir())
	return nil
}
