// Command pareto runs the pruned Pareto design-space search over the
// allocator zoo of Becker & Dally (SC '09): every VC-allocator architecture
// × arbiter × sparse mode crossed with every switch-allocator architecture
// × arbiter × speculation scheme, per VC count and topology. Each design
// point is screened with the analytical cost model (delay, area, power) and
// evaluated for accepted throughput by the cycle-accurate simulator at a
// fixed offered load; the output is the per-topology Pareto-optimal set
// over all four axes.
//
// Dominance pruning skips simulations it can prove cannot change the
// frontier, canonical-hash dedup collapses equivalent spellings, and
// -cachedir persists every simulated point so re-runs and refinements are
// warm across processes (the same directory format sweepd serves from).
//
// Usage:
//
//	pareto                          # full space, table to stdout
//	pareto -out pareto.json         # full result as JSON
//	pareto -cachedir ~/.noc-sweep   # disk-warm across runs
//	pareto -topos mesh -vcs 1,2 -noprune
//	pareto -patterns uniform,hotspot -processes bernoulli,mmp
//	pareto -curves                  # adaptive latency-throughput curve per frontier point
//	pareto -smoke                   # reduced space + tiny scale (CI)
//
// The -patterns/-processes axes default to the paper baseline singletons
// (uniform × bernoulli); -burstlen/-duty/-hotspots/-hotfrac fix the mmp
// and hotspot parameters for the whole search. Dominance comparisons are
// scoped to one evaluation condition (topology × workload × rate), so
// mixing workloads never lets a benign-traffic point prune a bursty one.
// Trace replay is batch-only and rejected here.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/curve"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/sweep"
)

func main() {
	out := flag.String("out", "", "write the full search result as JSON to this file ('-' = stdout)")
	cacheDir := flag.String("cachedir", "", "disk cache directory shared with sweepd (empty = memory-only)")
	topos := flag.String("topos", "", "comma-separated topologies to search (default mesh,fbfly)")
	vcs := flag.String("vcs", "", "comma-separated VCs-per-class values (default 1,2,4)")
	meshRate := flag.Float64("meshrate", 0, "mesh evaluation load (default 0.44)")
	fbflyRate := flag.Float64("fbflyrate", 0, "fbfly evaluation load (default 0.60)")
	patterns := flag.String("patterns", "", "comma-separated traffic patterns to search (default uniform)")
	processes := flag.String("processes", "", "comma-separated arrival processes to search (default bernoulli; trace is batch-only)")
	burstLen := flag.Float64("burstlen", 0, "mmp mean burst length when the processes axis includes mmp (default 32)")
	duty := flag.Float64("duty", 0, "mmp duty cycle when the processes axis includes mmp (default 0.25)")
	hotspots := flag.String("hotspots", "", "comma-separated hotspot terminals when the patterns axis includes hotspot (default 0)")
	hotFrac := flag.Float64("hotfrac", 0, "fraction of traffic aimed at the hotspot set (default 0.2)")
	curves := flag.Bool("curves", false, "after the search, trace an adaptive latency-throughput curve for every frontier point (each curve reuses the search's cached evaluation point)")
	curveStep := flag.Float64("curvestep", experiments.DefaultLatticeStep, "rate-lattice step for -curves; every sampled rate is an exact multiple")
	curvePoints := flag.Int("curvepoints", 0, "simulated-point budget per curve for -curves (default 64)")
	noPrune := flag.Bool("noprune", false, "disable dominance pruning (simulate every feasible point; frontier is identical)")
	smoke := flag.Bool("smoke", false, "reduced space at a tiny scale (CI smoke)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	scaleOf := experiments.ScaleFlags(flag.CommandLine,
		experiments.SimScale{Warmup: 500, Measure: 1000, Drain: 4000, Seed: 42,
			Workers: runtime.GOMAXPROCS(0), Leap: true})
	flag.Parse()
	scale := scaleOf()
	stop := prof.Start(*cpuprofile, *memprofile)
	defer stop()

	if *curves {
		// Snap the evaluation loads onto the curve lattice: the search then
		// simulates its frontier points at canonical lattice rates, so every
		// curve traced afterwards gets its evaluation point back as a cache
		// hit instead of a fresh simulation.
		lat := experiments.RateLattice{Step: *curveStep}
		mr, fr := *meshRate, *fbflyRate
		if mr == 0 {
			mr = 0.44
		}
		if fr == 0 {
			fr = 0.60
		}
		*meshRate, *fbflyRate = lat.Snap(mr), lat.Snap(fr)
	}

	spec := dse.Spec{
		Topos:     splitCSV(*topos),
		VCs:       splitInts("-vcs", *vcs),
		MeshRate:  *meshRate,
		FbflyRate: *fbflyRate,
		Patterns:  splitCSV(*patterns),
		Processes: splitCSV(*processes),
		BurstLen:  *burstLen, Duty: *duty,
		Hotspots: splitInts("-hotspots", *hotspots), HotspotFraction: *hotFrac,
		Warmup: scale.Warmup, Measure: scale.Measure, Drain: scale.Drain,
		Seed:    scale.Seed,
		NoPrune: *noPrune,
	}
	if *smoke {
		spec.Topos = []string{"mesh"}
		spec.VCs = []int{1, 2}
		spec.VAArbs = []string{"rr"}
		spec.SAArbs = []string{"rr"}
		spec.Warmup, spec.Measure, spec.Drain = 200, 400, 2000
	}

	srv, err := sweep.NewServer(sweep.Options{
		Exec:     sweep.Exec{Shards: scale.Shards, Dense: scale.Dense, DenseRequests: scale.DenseRequests, Leap: scale.Leap},
		Workers:  scale.Workers,
		CacheDir: *cacheDir,
	})
	if err != nil {
		log.Fatal("pareto: ", err)
	}
	defer srv.Close()

	start := time.Now()
	res, err := dse.Search(context.Background(), srv, spec, dse.SearchOptions{
		Workers: scale.Workers,
		Progress: func(simulated, pruned, feasible int) {
			fmt.Fprintf(os.Stderr, "\rpareto: %d simulated, %d pruned / %d feasible", simulated, pruned, feasible)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		log.Fatal("pareto: ", err)
	}
	elapsed := time.Since(start)

	fmt.Printf("design space: %d enumerated → %d distinct (%d dup spellings), %d infeasible, %d feasible\n",
		res.Enumerated, res.Distinct, res.Enumerated-res.Distinct, res.Infeasible, res.Feasible)
	fmt.Printf("search: %d simulated, %d pruned (%.0f%% of feasible skipped), %v",
		res.Simulated, res.Pruned, 100*float64(res.Pruned)/float64(max(res.Feasible, 1)), elapsed.Round(time.Millisecond))
	if d := srv.Disk(); d != nil {
		ds := d.Stats()
		fmt.Printf(" — disk cache %s: %d hits, %d writes", ds.Dir, ds.Hits, ds.Writes)
	}
	fmt.Printf("\n\nPareto frontier (%d points):\n", len(res.Frontier))
	fmt.Printf("%-52s %9s %12s %9s %8s %8s\n", "design point", "delay ns", "area µm²", "power mW", "perf", "latency")
	for _, p := range res.Frontier {
		fmt.Printf("%-52s %9.3f %12.0f %9.2f %8.4f %8.1f\n",
			p.Label, p.DelayNS, p.AreaUM2, p.PowerMW, p.Perf, p.Latency)
	}

	var traced []namedTrace
	if *curves {
		if traced, err = traceFrontier(srv, res.Frontier, *curveStep, *curvePoints, scale.Workers); err != nil {
			log.Fatal("pareto: ", err)
		}
	}

	if *out != "" {
		var v any = res
		if *curves {
			v = struct {
				dse.Result
				Curves []namedTrace `json:"curves"`
			}{res, traced}
		}
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			log.Fatal("pareto: ", err)
		}
		b = append(b, '\n')
		if *out == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*out, b, 0o644); err != nil {
			log.Fatal("pareto: ", err)
		}
	}
}

// namedTrace pairs a frontier point's label with its adaptive trace in the
// -out JSON.
type namedTrace struct {
	Label string      `json:"label"`
	Trace curve.Trace `json:"trace"`
}

// traceFrontier traces one adaptive latency-throughput curve per frontier
// point through the same server the search ran on — the evaluation points
// the search already simulated come back as cache hits — and prints one
// union-grid table per topology plus a knee summary per curve.
func traceFrontier(srv *sweep.Server, frontier []dse.FrontierPoint, step float64, maxPoints, workers int) ([]namedTrace, error) {
	var traced []namedTrace
	byTopo := map[string][]experiments.NetSeries{}
	var topoOrder []string
	start := time.Now()
	for i, p := range frontier {
		spec := curve.Spec{Base: p.Unit, Step: step, MaxPoints: maxPoints}
		fmt.Fprintf(os.Stderr, "\rpareto: tracing curve %d/%d (%s)", i+1, len(frontier), p.Label)
		tr, err := curve.TraceCurve(context.Background(), srv, spec, curve.Options{Workers: workers})
		if err != nil {
			fmt.Fprintln(os.Stderr)
			return nil, err
		}
		traced = append(traced, namedTrace{Label: p.Label, Trace: tr})
		if _, ok := byTopo[p.Unit.Topo]; !ok {
			topoOrder = append(topoOrder, p.Unit.Topo)
		}
		byTopo[p.Unit.Topo] = append(byTopo[p.Unit.Topo], tr.Series(p.Label))
	}
	fmt.Fprintln(os.Stderr)

	fmt.Printf("\nadaptive curves (%d traced, %v):\n", len(traced), time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-52s %9s %10s %12s\n", "design point", "knee", "simulated", "fixed grid")
	for _, nt := range traced {
		knee := fmt.Sprintf("%.*f", 2, nt.Trace.KneeRate)
		if !nt.Trace.KneeFound {
			knee = ">" + knee
		}
		fmt.Printf("%-52s %9s %10d %12d\n", nt.Label, knee, nt.Trace.Simulated, nt.Trace.FixedGridPoints)
	}
	for _, topo := range topoOrder {
		fmt.Printf("\n%s curves:\n%s", topo, experiments.FormatNetSeries(byTopo[topo]))
	}
	return traced, nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func splitInts(flagName, s string) []int {
	var out []int
	for _, p := range splitCSV(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			log.Fatalf("pareto: %s: %v", flagName, err)
		}
		out = append(out, n)
	}
	return out
}
