// Command pareto runs the pruned Pareto design-space search over the
// allocator zoo of Becker & Dally (SC '09): every VC-allocator architecture
// × arbiter × sparse mode crossed with every switch-allocator architecture
// × arbiter × speculation scheme, per VC count and topology. Each design
// point is screened with the analytical cost model (delay, area, power) and
// evaluated for accepted throughput by the cycle-accurate simulator at a
// fixed offered load; the output is the per-topology Pareto-optimal set
// over all four axes.
//
// Dominance pruning skips simulations it can prove cannot change the
// frontier, canonical-hash dedup collapses equivalent spellings, and
// -cachedir persists every simulated point so re-runs and refinements are
// warm across processes (the same directory format sweepd serves from).
//
// Usage:
//
//	pareto                          # full space, table to stdout
//	pareto -out pareto.json         # full result as JSON
//	pareto -cachedir ~/.noc-sweep   # disk-warm across runs
//	pareto -topos mesh -vcs 1,2 -noprune
//	pareto -patterns uniform,hotspot -processes bernoulli,mmp
//	pareto -smoke                   # reduced space + tiny scale (CI)
//
// The -patterns/-processes axes default to the paper baseline singletons
// (uniform × bernoulli); -burstlen/-duty/-hotspots/-hotfrac fix the mmp
// and hotspot parameters for the whole search. Dominance comparisons are
// scoped to one evaluation condition (topology × workload × rate), so
// mixing workloads never lets a benign-traffic point prune a bursty one.
// Trace replay is batch-only and rejected here.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/sweep"
)

func main() {
	out := flag.String("out", "", "write the full search result as JSON to this file ('-' = stdout)")
	cacheDir := flag.String("cachedir", "", "disk cache directory shared with sweepd (empty = memory-only)")
	topos := flag.String("topos", "", "comma-separated topologies to search (default mesh,fbfly)")
	vcs := flag.String("vcs", "", "comma-separated VCs-per-class values (default 1,2,4)")
	meshRate := flag.Float64("meshrate", 0, "mesh evaluation load (default 0.44)")
	fbflyRate := flag.Float64("fbflyrate", 0, "fbfly evaluation load (default 0.60)")
	patterns := flag.String("patterns", "", "comma-separated traffic patterns to search (default uniform)")
	processes := flag.String("processes", "", "comma-separated arrival processes to search (default bernoulli; trace is batch-only)")
	burstLen := flag.Float64("burstlen", 0, "mmp mean burst length when the processes axis includes mmp (default 32)")
	duty := flag.Float64("duty", 0, "mmp duty cycle when the processes axis includes mmp (default 0.25)")
	hotspots := flag.String("hotspots", "", "comma-separated hotspot terminals when the patterns axis includes hotspot (default 0)")
	hotFrac := flag.Float64("hotfrac", 0, "fraction of traffic aimed at the hotspot set (default 0.2)")
	noPrune := flag.Bool("noprune", false, "disable dominance pruning (simulate every feasible point; frontier is identical)")
	smoke := flag.Bool("smoke", false, "reduced space at a tiny scale (CI smoke)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	scaleOf := experiments.ScaleFlags(flag.CommandLine,
		experiments.SimScale{Warmup: 500, Measure: 1000, Drain: 4000, Seed: 42,
			Workers: runtime.GOMAXPROCS(0), Leap: true})
	flag.Parse()
	scale := scaleOf()
	stop := prof.Start(*cpuprofile, *memprofile)
	defer stop()

	spec := dse.Spec{
		Topos:     splitCSV(*topos),
		VCs:       splitInts("-vcs", *vcs),
		MeshRate:  *meshRate,
		FbflyRate: *fbflyRate,
		Patterns:  splitCSV(*patterns),
		Processes: splitCSV(*processes),
		BurstLen:  *burstLen, Duty: *duty,
		Hotspots: splitInts("-hotspots", *hotspots), HotspotFraction: *hotFrac,
		Warmup: scale.Warmup, Measure: scale.Measure, Drain: scale.Drain,
		Seed:    scale.Seed,
		NoPrune: *noPrune,
	}
	if *smoke {
		spec.Topos = []string{"mesh"}
		spec.VCs = []int{1, 2}
		spec.VAArbs = []string{"rr"}
		spec.SAArbs = []string{"rr"}
		spec.Warmup, spec.Measure, spec.Drain = 200, 400, 2000
	}

	srv, err := sweep.NewServer(sweep.Options{
		Exec:     sweep.Exec{Shards: scale.Shards, Dense: scale.Dense, DenseRequests: scale.DenseRequests, Leap: scale.Leap},
		Workers:  scale.Workers,
		CacheDir: *cacheDir,
	})
	if err != nil {
		log.Fatal("pareto: ", err)
	}
	defer srv.Close()

	start := time.Now()
	res, err := dse.Search(context.Background(), srv, spec, dse.SearchOptions{
		Workers: scale.Workers,
		Progress: func(simulated, pruned, feasible int) {
			fmt.Fprintf(os.Stderr, "\rpareto: %d simulated, %d pruned / %d feasible", simulated, pruned, feasible)
		},
	})
	fmt.Fprintln(os.Stderr)
	if err != nil {
		log.Fatal("pareto: ", err)
	}
	elapsed := time.Since(start)

	fmt.Printf("design space: %d enumerated → %d distinct (%d dup spellings), %d infeasible, %d feasible\n",
		res.Enumerated, res.Distinct, res.Enumerated-res.Distinct, res.Infeasible, res.Feasible)
	fmt.Printf("search: %d simulated, %d pruned (%.0f%% of feasible skipped), %v",
		res.Simulated, res.Pruned, 100*float64(res.Pruned)/float64(max(res.Feasible, 1)), elapsed.Round(time.Millisecond))
	if d := srv.Disk(); d != nil {
		ds := d.Stats()
		fmt.Printf(" — disk cache %s: %d hits, %d writes", ds.Dir, ds.Hits, ds.Writes)
	}
	fmt.Printf("\n\nPareto frontier (%d points):\n", len(res.Frontier))
	fmt.Printf("%-52s %9s %12s %9s %8s %8s\n", "design point", "delay ns", "area µm²", "power mW", "perf", "latency")
	for _, p := range res.Frontier {
		fmt.Printf("%-52s %9.3f %12.0f %9.2f %8.4f %8.1f\n",
			p.Label, p.DelayNS, p.AreaUM2, p.PowerMW, p.Perf, p.Latency)
	}

	if *out != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal("pareto: ", err)
		}
		b = append(b, '\n')
		if *out == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*out, b, 0o644); err != nil {
			log.Fatal("pareto: ", err)
		}
	}
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func splitInts(flagName, s string) []int {
	var out []int
	for _, p := range splitCSV(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			log.Fatalf("pareto: %s: %v", flagName, err)
		}
		out = append(out, n)
	}
	return out
}
