// Command matchquality regenerates the matching-quality curves of Figs. 7
// (VC allocators) and 12 (switch allocators) of Becker & Dally (SC '09):
// open-loop simulation with pseudo-random request matrices, normalized
// against a maximum-size allocator (§3.1; the paper uses 10000 matrices per
// point).
//
// Usage:
//
//	matchquality -unit vc -topo mesh -c 4 [-trials 10000]
//	matchquality -unit sw -topo fbfly -c 2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/quality"
)

func main() {
	unit := flag.String("unit", "vc", "allocator unit: vc or sw")
	topo := flag.String("topo", "mesh", "design point topology: mesh or fbfly")
	c := flag.Int("c", 1, "VCs per class (1, 2 or 4)")
	trials := flag.Int("trials", 10000, "request matrices per rate point")
	seed := flag.Uint64("seed", 1, "workload seed")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrently swept rate points (results are identical for any value)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	blockprofile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	flag.Parse()

	stop := prof.StartAll(prof.Profiles{CPU: *cpuprofile, Mem: *memprofile, Block: *blockprofile, Mutex: *mutexprofile})
	defer stop()

	pt, err := experiments.PointByName(*topo, *c)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rates := quality.DefaultRates()
	var series []quality.Series
	var figure string
	switch *unit {
	case "vc":
		figure = "fig7"
		if !*asJSON {
			fmt.Printf("VC allocator matching quality (Fig. 7), %s, %d trials/point\n", pt, *trials)
		}
		series = experiments.VCQualityN(pt, rates, *trials, *seed, *workers)
	case "sw":
		figure = "fig12"
		if !*asJSON {
			fmt.Printf("switch allocator matching quality (Fig. 12), %s, %d trials/point\n", pt, *trials)
		}
		series = experiments.SwitchQualityN(pt, rates, *trials, *seed, *workers)
	default:
		fmt.Fprintf(os.Stderr, "unknown unit %q (want vc or sw)\n", *unit)
		os.Exit(1)
	}
	if *asJSON {
		if err := experiments.QualityReport(figure, pt, series).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(quality.FormatSeries(series))
}
