// Command sweep regenerates the saturation-throughput summary table of
// EXPERIMENTS.md: for every design point, the accepted throughput each
// switch allocator architecture sustains (the paper's conclusions quote
// wavefront's +15% / +21% over sep_if on the flattened butterfly with 8 /
// 16 VCs).
//
// Usage:
//
//	sweep                      # all six design points (several minutes)
//	sweep -topo fbfly          # one topology
//	sweep -quick               # shorter simulations
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/alloc"
	"repro/internal/experiments"
)

func main() {
	topo := flag.String("topo", "", "restrict to one topology: mesh or fbfly")
	quick := flag.Bool("quick", false, "shorter simulations")
	scaleOf := experiments.ScaleFlags(flag.CommandLine,
		experiments.SimScale{Warmup: 2000, Measure: 4000, Drain: 4000, Seed: 9})
	flag.Parse()

	scale := scaleOf()
	if *quick {
		// -quick overrides the phase-length defaults but not an explicit
		// -warmup/-measure/-drain on the command line.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["warmup"] {
			scale.Warmup = 500
		}
		if !set["measure"] {
			scale.Measure = 1200
		}
		if !set["drain"] {
			scale.Drain = 1500
		}
	}

	archs := []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "design point\tsep_if\tsep_of\twf\twf vs sep_if")
	for _, pt := range experiments.Points() {
		if *topo != "" && pt.Topo != *topo {
			continue
		}
		sats := map[alloc.Arch]float64{}
		for _, arch := range archs {
			sats[arch] = experiments.SaturationThroughput(pt, arch, scale)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%+.1f%%\n",
			pt, sats[alloc.SepIF], sats[alloc.SepOF], sats[alloc.Wavefront],
			100*(sats[alloc.Wavefront]/sats[alloc.SepIF]-1))
		w.Flush()
	}
	fmt.Println("\npaper conclusions: wf ≈ sep_if on the mesh with few VCs; +15% at")
	fmt.Println("fbfly 2x2x2 and +21% at fbfly 2x2x4 (this model reproduces the")
	fmt.Println("ordering and growth with roughly half the peak magnitude).")
}
