package repro_test

import (
	"testing"

	"repro"
)

// These tests exercise the public facade end to end: everything a
// downstream user touches must be reachable through package repro alone.

func TestFacadeGenericAllocation(t *testing.T) {
	req := repro.NewMatrix(4, 4)
	req.Set(0, 0)
	req.Set(1, 0)
	req.Set(1, 2)
	req.Set(3, 3)

	for _, cfg := range []repro.AllocConfig{
		{Arch: repro.SepIF, Rows: 4, Cols: 4, ArbKind: repro.RoundRobin},
		{Arch: repro.SepOF, Rows: 4, Cols: 4, ArbKind: repro.MatrixArb},
		{Arch: repro.Wavefront, Rows: 4, Cols: 4},
		{Arch: repro.Maximum, Rows: 4, Cols: 4},
	} {
		a := repro.NewAllocator(cfg)
		g := a.Allocate(req)
		if err := repro.ValidateMatching(req, g); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
	}
	if repro.MaxMatchSize(req) != 3 {
		t.Fatalf("MaxMatchSize = %d, want 3", repro.MaxMatchSize(req))
	}
}

func TestFacadeArbiters(t *testing.T) {
	req := repro.NewVec(8)
	req.Set(2)
	req.Set(6)
	for _, a := range []repro.Arbiter{
		repro.NewArbiter(repro.RoundRobin, 8),
		repro.NewArbiter(repro.MatrixArb, 8),
		repro.NewTreeArbiter(repro.RoundRobin, 2, 4),
	} {
		w := a.Pick(req)
		if w != 2 && w != 6 {
			t.Fatalf("winner %d did not request", w)
		}
		a.Update(w)
	}
}

func TestFacadeVCSpecAndAllocators(t *testing.T) {
	spec := repro.NewVCSpec(2, 2, 4)
	if spec.CountLegalTransitions() != 96 {
		t.Fatalf("Fig. 4 count = %d, want 96", spec.CountLegalTransitions())
	}
	va := repro.NewVCAllocator(repro.VCAllocConfig{
		Ports: 10, Spec: spec, Arch: repro.SepIF, ArbKind: repro.RoundRobin, Sparse: true,
	})
	reqs := make([]repro.VCRequest, 10*spec.V())
	reqs[0] = repro.VCRequest{Active: true, OutPort: 5, Candidates: spec.ClassMask(0, 0)}
	grants := va.Allocate(reqs)
	if grants[0] < 0 || grants[0]/spec.V() != 5 {
		t.Fatalf("sole VC request not granted at port 5: %d", grants[0])
	}

	sa := repro.NewSwitchAllocator(repro.SwitchAllocConfig{
		Ports: 10, VCs: spec.V(), Arch: repro.Wavefront, SpecMode: repro.SpecReq,
	})
	sreqs := make([]repro.SwitchRequest, 10*spec.V())
	sreqs[3] = repro.SwitchRequest{Active: true, OutPort: 7}
	sg := sa.Allocate(sreqs)
	if sg[0].OutPort != 7 || sg[0].VC != 3 {
		t.Fatalf("switch grant %+v, want VC 3 -> port 7", sg[0])
	}
}

func TestFacadeCostModel(t *testing.T) {
	tech := repro.Default45nm()
	spec := repro.NewVCSpec(2, 1, 2)
	dense := repro.VCAllocCost(tech, repro.VCAllocConfig{
		Ports: 5, Spec: spec, Arch: repro.SepIF, ArbKind: repro.RoundRobin,
	})
	sparse := repro.VCAllocCost(tech, repro.VCAllocConfig{
		Ports: 5, Spec: spec, Arch: repro.SepIF, ArbKind: repro.RoundRobin, Sparse: true,
	})
	if !dense.Synthesized || !sparse.Synthesized {
		t.Fatal("mesh design points must synthesize")
	}
	if sparse.AreaUM2 >= dense.AreaUM2 {
		t.Fatal("sparse must save area")
	}
	sw := repro.SwitchAllocCost(tech, repro.SwitchAllocConfig{
		Ports: 5, VCs: 4, Arch: repro.SepIF, ArbKind: repro.RoundRobin, SpecMode: repro.SpecReq,
	})
	if !sw.Synthesized || sw.DelayNS <= 0 {
		t.Fatal("switch cost estimate broken")
	}
}

func TestFacadeQuality(t *testing.T) {
	spec := repro.NewVCSpec(2, 1, 2)
	s := repro.VCQualitySeries(repro.VCAllocConfig{
		Ports: 5, Spec: spec, Arch: repro.Wavefront,
	}, []float64{0.5}, 100, 1)
	if s.MinQuality() != 1 {
		t.Fatalf("wavefront VC quality %f, want 1", s.MinQuality())
	}
	sw := repro.SwitchQualitySeries(repro.SwitchAllocConfig{
		Ports: 5, VCs: 4, Arch: repro.SepIF, ArbKind: repro.RoundRobin,
	}, []float64{0.2}, 100, 1)
	if len(sw.Points) != 1 {
		t.Fatal("missing quality point")
	}
	if len(repro.QualityRates()) != 20 {
		t.Fatal("default rates changed")
	}
}

func TestFacadeSimulation(t *testing.T) {
	topo := repro.Mesh(8)
	res := repro.NewNetwork(repro.SimConfig{
		Topology:      topo,
		Routing:       repro.NewDOR(topo),
		Spec:          repro.NewVCSpec(2, 1, 1),
		VA:            repro.VCAllocConfig{Arch: repro.SepIF, ArbKind: repro.RoundRobin},
		SA:            repro.SwitchAllocConfig{Arch: repro.SepIF, ArbKind: repro.RoundRobin, SpecMode: repro.SpecReq},
		InjectionRate: 0.1,
		Seed:          1,
		Warmup:        300,
		Measure:       700,
		Drain:         4000,
	}).Run()
	if res.Saturated || res.AvgLatency <= 0 {
		t.Fatalf("facade sim run broken: %+v", res)
	}
}

func TestFacadeTrafficPatterns(t *testing.T) {
	p, err := repro.NewTrafficPattern("transpose", 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dest(1, nil) != 8 {
		t.Fatalf("transpose(1) = %d, want 8", p.Dest(1, nil))
	}
	if _, err := repro.NewTrafficPattern("bogus", 64); err == nil {
		t.Fatal("unknown pattern should error")
	}
}

func TestFacadeExperiments(t *testing.T) {
	pts := repro.DesignPoints()
	if len(pts) != 6 {
		t.Fatalf("want 6 design points, got %d", len(pts))
	}
	pt, err := repro.DesignPointByName("mesh", 1)
	if err != nil {
		t.Fatal(err)
	}
	rates := repro.InjectionRates(pt)
	if len(rates) == 0 {
		t.Fatal("no injection rates")
	}
	scale := repro.SimScale{Warmup: 100, Measure: 200, Drain: 1000, Seed: 1}
	series := repro.Fig14(pt, rates[:1], scale)
	if len(series) != 3 {
		t.Fatalf("Fig14 series = %d, want 3", len(series))
	}
	cfg := repro.BuildSim(pt, 0.1, scale)
	if cfg.Topology == nil || cfg.Routing == nil {
		t.Fatal("BuildSim incomplete")
	}
}

func TestFacadeRand(t *testing.T) {
	a, b := repro.NewRand(5), repro.NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("facade rand not deterministic")
		}
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Incremental allocator.
	inc := repro.NewIncrementalAllocator(4, 4, 2)
	req := repro.NewMatrix(4, 4)
	req.Set(0, 0)
	req.Set(1, 1)
	for cycle := 0; cycle < 4; cycle++ {
		inc.Allocate(req)
	}
	if inc.Allocate(req).Count() != 2 {
		t.Fatal("incremental allocator did not converge")
	}

	// Free-queue VC allocator via config flag.
	spec := repro.NewVCSpec(2, 1, 2)
	fq := repro.NewVCAllocator(repro.VCAllocConfig{Ports: 4, Spec: spec,
		ArbKind: repro.RoundRobin, FreeQueue: true})
	if fq.Name() != "freeq/rr" {
		t.Fatalf("free-queue name %q", fq.Name())
	}

	// Precomputed switch allocator via config flag.
	pc := repro.NewSwitchAllocator(repro.SwitchAllocConfig{Ports: 4, VCs: 2,
		Arch: repro.SepIF, ArbKind: repro.RoundRobin, Precomputed: true})
	reqs := make([]repro.SwitchRequest, 8)
	reqs[0] = repro.SwitchRequest{Active: true, OutPort: 1}
	pc.Allocate(reqs)
	if g := pc.Allocate(reqs); g[0].OutPort != 1 {
		t.Fatalf("precomputed grant missing: %+v", g[0])
	}

	// Torus + dateline end to end.
	topo := repro.Torus(4)
	tspec := repro.NewVCSpec(2, 2, 1)
	tspec.ResourceSucc = repro.TorusResourceSucc()
	res := repro.NewNetwork(repro.SimConfig{
		Topology:      topo,
		Routing:       repro.NewTorusDateline(topo),
		Spec:          tspec,
		VA:            repro.VCAllocConfig{Arch: repro.SepIF, ArbKind: repro.RoundRobin},
		SA:            repro.SwitchAllocConfig{Arch: repro.SepIF, ArbKind: repro.RoundRobin, SpecMode: repro.SpecReq},
		InjectionRate: 0.1,
		Seed:          1,
		Warmup:        200,
		Measure:       500,
		Drain:         3000,
	}).Run()
	if res.Unfinished != 0 {
		t.Fatalf("torus facade run did not drain: %+v", res)
	}
}
