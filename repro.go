// Package repro is the public API of a from-scratch Go reproduction of
//
//	Daniel U. Becker and William J. Dally,
//	"Allocator Implementations for Network-on-Chip Routers", SC '09.
//
// It re-exports the stable surface of the implementation packages:
//
//   - Generic allocators (separable input-/output-first, wavefront,
//     maximum-size) over request matrices.
//   - The paper's VC and switch allocator microarchitectures, including
//     sparse VC allocation (§4.2) and pessimistic speculative switch
//     allocation (§5.2).
//   - A synthesis cost model standing in for the paper's Design Compiler
//     flow (delay / area / power per design point).
//   - The open-loop matching-quality harness (§3.1).
//   - A cycle-accurate simulator for the paper's two 64-node topologies
//     with dimension-order and UGAL routing and request–reply traffic.
//   - One regenerator per paper figure (the experiments API).
//
// See the examples/ directory for runnable entry points and DESIGN.md for
// the full system inventory.
package repro

import (
	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/quality"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// --- Bit vectors and request matrices ----------------------------------------

// Vec is a dense bit vector.
type Vec = bitvec.Vec

// Matrix is a dense request/grant bit matrix (rows: requesters, columns:
// resources).
type Matrix = bitvec.Matrix

// NewVec returns a zeroed bit vector with n bits.
func NewVec(n int) *Vec { return bitvec.New(n) }

// NewMatrix returns a zeroed rows×cols request matrix.
func NewMatrix(rows, cols int) *Matrix { return bitvec.NewMatrix(rows, cols) }

// --- Arbiters -----------------------------------------------------------------

// Arbiter selects one winner among requesters; see internal/arbiter.
type Arbiter = arbiter.Arbiter

// ArbiterKind selects an arbiter implementation.
type ArbiterKind = arbiter.Kind

// Arbiter implementations from the paper's figure legends.
const (
	RoundRobin = arbiter.RoundRobin // rotating-pointer round-robin ("rr")
	MatrixArb  = arbiter.Matrix     // least-recently-served matrix arbiter ("m")
)

// NewArbiter builds an n-input arbiter.
func NewArbiter(k ArbiterKind, n int) Arbiter { return arbiter.New(k, n) }

// NewTreeArbiter builds a (groups×width)-input tree arbiter (§4.1).
func NewTreeArbiter(k ArbiterKind, groups, width int) Arbiter {
	return arbiter.NewTree(k, groups, width)
}

// --- Generic allocators ---------------------------------------------------------

// Allocator computes matchings on request matrices.
type Allocator = alloc.Allocator

// AllocConfig parameterizes generic allocator construction.
type AllocConfig = alloc.Config

// Arch names an allocator architecture.
type Arch = alloc.Arch

// Allocator architectures (§2).
const (
	SepIF     = alloc.SepIF     // separable input-first
	SepOF     = alloc.SepOF     // separable output-first
	Wavefront = alloc.Wavefront // wavefront with rotating priority diagonal
	Maximum   = alloc.Maximum   // maximum-size reference (no fairness)
)

// NewAllocator builds a generic allocator.
func NewAllocator(c AllocConfig) Allocator { return alloc.New(c) }

// NewIncrementalAllocator builds the Hoare-style incremental maximum-size
// allocator (§2.3, [8]): it carries the previous cycle's matching and
// performs at most stepsPerCycle augmenting-path searches per call.
func NewIncrementalAllocator(rows, cols, stepsPerCycle int) Allocator {
	return alloc.NewIncremental(rows, cols, stepsPerCycle)
}

// ValidateMatching reports an error when gnt is not a valid matching for req.
func ValidateMatching(req, gnt *Matrix) error { return alloc.Validate(req, gnt) }

// IsMaximalMatching reports whether gnt is maximal for req.
func IsMaximalMatching(req, gnt *Matrix) bool { return alloc.IsMaximal(req, gnt) }

// MaxMatchSize returns the maximum matching size for req.
func MaxMatchSize(req *Matrix) int { return alloc.MatchSize(req) }

// --- VC organization and router-facing allocators ------------------------------

// VCSpec describes a router's V = M·R·C virtual-channel organization and
// the legal VC-to-VC transitions (Fig. 4).
type VCSpec = core.VCSpec

// NewVCSpec returns a spec with m message classes, r resource classes and
// c VCs per class, using the default monotonic successor relation.
func NewVCSpec(m, r, c int) VCSpec { return core.NewVCSpec(m, r, c) }

// VCAllocator assigns output VCs to head flits (Fig. 3).
type VCAllocator = core.VCAllocator

// VCAllocConfig parameterizes VC allocator construction; set Sparse for the
// §4.2 sparse scheme.
type VCAllocConfig = core.VCAllocConfig

// VCRequest is one input VC's allocation request.
type VCRequest = core.VCRequest

// NewVCAllocator builds a VC allocator. Set c.Sparse for the §4.2 sparse
// scheme or c.FreeQueue for the Mullins free-VC-queue scheme.
func NewVCAllocator(c VCAllocConfig) VCAllocator { return core.NewVCAllocator(c) }

// SwitchAllocator schedules flits onto crossbar slots (Fig. 8).
type SwitchAllocator = core.SwitchAllocator

// SwitchAllocConfig parameterizes switch allocator construction; SpecMode
// selects the speculation scheme (Fig. 9).
type SwitchAllocConfig = core.SwitchAllocConfig

// SwitchRequest and SwitchGrant are the switch allocator's per-cycle
// interface.
type (
	SwitchRequest = core.SwitchRequest
	SwitchGrant   = core.SwitchGrant
)

// SpecMode selects the speculative switch allocation scheme.
type SpecMode = core.SpecMode

// Speculation schemes (§5.2).
const (
	SpecNone = core.SpecNone // non-speculative baseline
	SpecGnt  = core.SpecGnt  // conventional: mask on non-speculative grants
	SpecReq  = core.SpecReq  // pessimistic: mask on non-speculative requests
)

// NewSwitchAllocator builds a switch allocator. Set c.Precomputed for the
// Mullins arbitration pre-computation wrapper (requires SpecNone).
func NewSwitchAllocator(c SwitchAllocConfig) SwitchAllocator { return core.NewSwitchAllocator(c) }

// SwitchAllocStats counts speculation outcomes (§5.2).
type SwitchAllocStats = core.SwitchAllocStats

// --- Synthesis cost model -------------------------------------------------------

// Tech holds the technology/flow parameters of the synthesis cost model.
type Tech = costmodel.Tech

// CostEstimate is a synthesis result (delay, area, power, or a failure).
type CostEstimate = costmodel.Estimate

// Default45nm returns the 45 nm-class low-power technology model.
func Default45nm() Tech { return costmodel.Default45nm() }

// VCAllocCost estimates a VC allocator's implementation cost (Figs. 5, 6).
func VCAllocCost(t Tech, c VCAllocConfig) CostEstimate { return costmodel.VCAllocCost(t, c) }

// SwitchAllocCost estimates a switch allocator's implementation cost
// (Figs. 10, 11).
func SwitchAllocCost(t Tech, c SwitchAllocConfig) CostEstimate {
	return costmodel.SwitchAllocCost(t, c)
}

// --- Matching quality ------------------------------------------------------------

// QualitySeries is a named rate→quality curve.
type QualitySeries = quality.Series

// QualityRates returns the paper's request-rate sweep.
func QualityRates() []float64 { return quality.DefaultRates() }

// VCQualitySeries measures a VC allocator's matching quality (Fig. 7).
func VCQualitySeries(c VCAllocConfig, rates []float64, trials int, seed uint64) QualitySeries {
	return quality.VCSeries(c, rates, trials, seed)
}

// SwitchQualitySeries measures a switch allocator's matching quality
// (Fig. 12).
func SwitchQualitySeries(c SwitchAllocConfig, rates []float64, trials int, seed uint64) QualitySeries {
	return quality.SwitchSeries(c, rates, trials, seed)
}

// --- Topologies, routing, traffic -------------------------------------------------

// Topology describes a network of uniform-radix routers.
type Topology = topology.Topology

// Mesh builds a k×k mesh with one terminal per router (paper: 8×8, P=5).
func Mesh(k int) *Topology { return topology.Mesh(k) }

// FlattenedButterfly builds a 2-D k×k flattened butterfly with the given
// concentration (paper: 4×4, c=4, P=10).
func FlattenedButterfly(k, conc int) *Topology { return topology.FlattenedButterfly(k, conc) }

// Torus builds a k×k torus with one terminal per router — the §4.2
// motivating example for resource classes (dateline routing).
func Torus(k int) *Topology { return topology.Torus(k) }

// RoutingFunction computes lookahead route decisions.
type RoutingFunction = routing.Function

// NewDOR returns dimension-order routing for a mesh.
func NewDOR(t *Topology) RoutingFunction { return routing.NewDOR(t) }

// NewUGAL returns UGAL load-balanced routing for a flattened butterfly.
func NewUGAL(t *Topology, threshold int) RoutingFunction { return routing.NewUGAL(t, threshold) }

// NewTorusDateline returns shortest-direction dimension-order routing with
// dateline deadlock avoidance for a torus. Build the matching VCSpec with
// ResourceSucc = TorusResourceSucc().
func NewTorusDateline(t *Topology) RoutingFunction { return routing.NewTorusDateline(t) }

// TorusResourceSucc returns the resource-class successor relation dateline
// routing requires.
func TorusResourceSucc() [][]int { return routing.TorusResourceSucc() }

// TrafficPattern maps source terminals to destinations.
type TrafficPattern = traffic.Pattern

// NewTrafficPattern constructs a pattern by name ("uniform", "transpose",
// "bitcomp", "bitrev", "shuffle", "tornado", "neighbor").
func NewTrafficPattern(name string, terminals int) (TrafficPattern, error) {
	return traffic.NewPattern(name, terminals)
}

// --- Network simulation -------------------------------------------------------------

// SimConfig describes one network simulation run.
type SimConfig = sim.Config

// SimResult summarizes a run (latency, throughput, saturation).
type SimResult = sim.Result

// Network is an instantiated simulation.
type Network = sim.Network

// NewNetwork builds a network simulation.
func NewNetwork(c SimConfig) *Network { return sim.New(c) }

// --- Experiments (one regenerator per paper figure) -----------------------------------

// DesignPoint is one of the paper's six topology × VC-organization points.
type DesignPoint = experiments.Point

// DesignPoints returns the six points in figure order.
func DesignPoints() []DesignPoint { return experiments.Points() }

// DesignPointByName returns the point labeled "<topo> MxRxC".
func DesignPointByName(topo string, c int) (DesignPoint, error) {
	return experiments.PointByName(topo, c)
}

// NetSeries is a latency/throughput curve from the network experiments.
type NetSeries = experiments.NetSeries

// SimScale controls experiment simulation length.
type SimScale = experiments.SimScale

// Fig13 regenerates a Fig. 13 subfigure (switch allocator comparison).
func Fig13(pt DesignPoint, rates []float64, s SimScale) []NetSeries {
	return experiments.Fig13(pt, rates, s)
}

// Fig14 regenerates a Fig. 14 subfigure (speculation scheme comparison).
func Fig14(pt DesignPoint, rates []float64, s SimScale) []NetSeries {
	return experiments.Fig14(pt, rates, s)
}

// InjectionRates returns the paper's x-axis sweep for a design point.
func InjectionRates(pt DesignPoint) []float64 { return experiments.InjectionRates(pt) }

// BuildSim assembles the §5.3.3 baseline simulation config for a design
// point (sep_if VC allocation, pessimistic speculation).
func BuildSim(pt DesignPoint, rate float64, s SimScale) SimConfig {
	return experiments.BuildSim(pt, rate, s)
}

// --- Tracing -------------------------------------------------------------------------

// TraceEvent is one router-pipeline or terminal occurrence.
type TraceEvent = trace.Event

// Tracer stamps events with the simulation cycle; plug into
// SimConfig.Trace.
type Tracer = trace.Tracer

// TraceCollector retains the most recent events in memory.
type TraceCollector = trace.Collector

// NewTracer builds a tracer over a sink with an optional filter; see
// trace.FilterPacket / FilterRouter / FilterKind for stock filters.
func NewTracer(sink trace.Recorder, filter func(TraceEvent) bool) *Tracer {
	return trace.New(sink, filter)
}

// NewTraceCollector returns an in-memory sink retaining up to capacity
// events.
func NewTraceCollector(capacity int) *TraceCollector { return trace.NewCollector(capacity) }

// --- Deterministic randomness ---------------------------------------------------------

// Rand is the deterministic PRNG used across the repository.
type Rand = xrand.Source

// NewRand returns a source seeded from seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }
