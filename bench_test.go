// Benchmark harness: one target per table/figure of Becker & Dally (SC '09)
// plus ablation benches for the design choices called out in DESIGN.md.
// Each benchmark exercises the exact code path the corresponding experiment
// uses; the cmd/ tools produce the full-size data series.
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/experiments"
)

// --- Fig. 4 -------------------------------------------------------------------

func BenchmarkFig04VCTransitions(b *testing.B) {
	spec := repro.NewVCSpec(2, 2, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := spec.TransitionMatrix()
		if m.Count() != 96 {
			b.Fatalf("legal transitions = %d, want 96", m.Count())
		}
	}
}

// --- Figs. 5 & 6: VC allocator synthesis cost ----------------------------------

func BenchmarkFig05VCAllocAreaDelay(b *testing.B) {
	tech := repro.Default45nm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.VCCost(tech)
		if len(rows) != 60 {
			b.Fatal("incomplete cost table")
		}
	}
}

func BenchmarkFig06VCAllocPowerDelay(b *testing.B) {
	b.ReportAllocs()
	// Power and area derive from the same synthesis pass; this target keeps
	// the figure-to-bench mapping one-to-one.
	tech := repro.Default45nm()
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.VCCost(tech) {
			if r.Est.Synthesized && r.Est.PowerMW <= 0 {
				b.Fatal("bad power estimate")
			}
		}
	}
}

// --- Fig. 7: VC allocator matching quality -------------------------------------

func BenchmarkFig07VCQuality(b *testing.B) {
	for _, pt := range experiments.Points() {
		pt := pt
		b.Run(pt.String(), func(b *testing.B) {
			b.ReportAllocs()
			rates := []float64{0.5}
			for i := 0; i < b.N; i++ {
				series := experiments.VCQuality(pt, rates, 50, uint64(i)+1)
				if len(series) != 3 {
					b.Fatal("want 3 series")
				}
			}
		})
	}
}

// --- Figs. 10 & 11: switch allocator synthesis cost -----------------------------

func BenchmarkFig10SwitchAllocAreaDelay(b *testing.B) {
	tech := repro.Default45nm()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.SwitchCost(tech)
		if len(rows) != 90 {
			b.Fatal("incomplete cost table")
		}
	}
}

func BenchmarkFig11SwitchAllocPowerDelay(b *testing.B) {
	b.ReportAllocs()
	tech := repro.Default45nm()
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.SwitchCost(tech) {
			if r.Est.Synthesized && r.Est.PowerMW <= 0 {
				b.Fatal("bad power estimate")
			}
		}
	}
}

// --- Fig. 12: switch allocator matching quality ---------------------------------

func BenchmarkFig12SwitchQuality(b *testing.B) {
	for _, pt := range experiments.Points() {
		pt := pt
		b.Run(pt.String(), func(b *testing.B) {
			b.ReportAllocs()
			rates := []float64{0.5}
			for i := 0; i < b.N; i++ {
				series := experiments.SwitchQuality(pt, rates, 50, uint64(i)+1)
				if len(series) != 3 {
					b.Fatal("want 3 series")
				}
			}
		})
	}
}

// --- Figs. 13 & 14: network simulations ------------------------------------------

// benchScale keeps a single benchmark iteration to a short but
// representative simulation.
var benchScale = experiments.SimScale{Warmup: 200, Measure: 400, Drain: 1500, Seed: 42}

// reportCyclesPerSec attributes the simulated cycles of every point in the
// series to the benchmark's wall clock, giving a scheduler-speed metric that
// stays comparable as the simulation core changes.
func reportCyclesPerSec(b *testing.B, cycles int64) {
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

func BenchmarkFig13SwitchAllocatorNetwork(b *testing.B) {
	for _, pt := range experiments.Points() {
		pt := pt
		b.Run(pt.String(), func(b *testing.B) {
			b.ReportAllocs()
			rates := []float64{0.2}
			var cycles int64
			for i := 0; i < b.N; i++ {
				series := experiments.Fig13(pt, rates, benchScale)
				if len(series) != 3 {
					b.Fatal("want 3 series")
				}
				for _, s := range series {
					for _, p := range s.Points {
						cycles += p.Cycles
					}
				}
			}
			reportCyclesPerSec(b, cycles)
		})
	}
}

func BenchmarkFig14SpeculationNetwork(b *testing.B) {
	for _, pt := range experiments.Points() {
		pt := pt
		b.Run(pt.String(), func(b *testing.B) {
			b.ReportAllocs()
			rates := []float64{0.2}
			var cycles int64
			for i := 0; i < b.N; i++ {
				series := experiments.Fig14(pt, rates, benchScale)
				if len(series) != 3 {
					b.Fatal("want 3 series")
				}
				for _, s := range series {
					for _, p := range s.Points {
						cycles += p.Cycles
					}
				}
			}
			reportCyclesPerSec(b, cycles)
		})
	}
}

// --- §4.3.3: VC allocator sensitivity sweep ---------------------------------------

func BenchmarkVASweepNetwork(b *testing.B) {
	b.ReportAllocs()
	pt, err := experiments.PointByName("mesh", 2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		series := experiments.VASweep(pt, []float64{0.2}, benchScale)
		if len(series) != 4 {
			b.Fatal("want 4 series")
		}
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------------------

// BenchmarkAblationPriorityUpdate compares separable allocation with the
// paper's conditional (iSLIP-style) priority updates against the number of
// grants a naive unconditional-update policy would produce; the functional
// difference is exercised by tests, here we measure the allocator's speed.
func BenchmarkAblationPriorityUpdate(b *testing.B) {
	a := repro.NewAllocator(repro.AllocConfig{Arch: repro.SepIF, Rows: 16, Cols: 16, ArbKind: repro.RoundRobin})
	req := randomMatrix(16, 16, 0.4, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Allocate(req)
	}
}

// BenchmarkAblationSeparableIterations measures the cost of multi-iteration
// separable allocation (§2.1 notes tight delay budgets rule it out in
// hardware; in simulation it trades time for matching quality).
func BenchmarkAblationSeparableIterations(b *testing.B) {
	for _, iters := range []int{1, 2, 4} {
		iters := iters
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			b.ReportAllocs()
			a := repro.NewAllocator(repro.AllocConfig{
				Arch: repro.SepIF, Rows: 16, Cols: 16, ArbKind: repro.RoundRobin, Iterations: iters,
			})
			req := randomMatrix(16, 16, 0.4, 11)
			for i := 0; i < b.N; i++ {
				a.Allocate(req)
			}
		})
	}
}

// BenchmarkAblationWavefrontImpl compares the synthesis cost of the paper's
// loop-free replicated wavefront against the full-custom single-array bound
// (§2.2).
func BenchmarkAblationWavefrontImpl(b *testing.B) {
	tech := repro.Default45nm()
	b.Run("replicated", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tech.WavefrontGE(40) <= tech.WavefrontCustomGE(40) {
				b.Fatal("replicated must cost more")
			}
		}
	})
	b.Run("custom", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = tech.WavefrontCustomDelay(40)
		}
	})
}

// BenchmarkAblationTreeArbiter compares tree vs flat arbitration for the
// P×V-input output stage of VC allocators (§4.1).
func BenchmarkAblationTreeArbiter(b *testing.B) {
	req := repro.NewVec(160)
	for i := 0; i < 160; i += 7 {
		req.Set(i)
	}
	b.Run("flat160", func(b *testing.B) {
		b.ReportAllocs()
		a := repro.NewArbiter(repro.RoundRobin, 160)
		for i := 0; i < b.N; i++ {
			a.Pick(req)
		}
	})
	b.Run("tree10x16", func(b *testing.B) {
		b.ReportAllocs()
		a := repro.NewTreeArbiter(repro.RoundRobin, 10, 16)
		for i := 0; i < b.N; i++ {
			a.Pick(req)
		}
	})
}

// BenchmarkAblationSparseVCAlloc compares dense and sparse VC allocation
// throughput at the fbfly 2x2x4 design point (the sparse scheme also wins
// in software because the per-class engines are smaller).
func BenchmarkAblationSparseVCAlloc(b *testing.B) {
	spec := repro.NewVCSpec(2, 2, 4)
	reqs := make([]repro.VCRequest, 10*spec.V())
	rng := repro.NewRand(3)
	for i := range reqs {
		if rng.Bool(0.5) {
			m, r, _ := spec.Decompose(i % spec.V())
			succ := spec.ResourceSucc[r]
			reqs[i] = repro.VCRequest{
				Active:     true,
				OutPort:    rng.Intn(10),
				Candidates: spec.ClassMask(m, succ[rng.Intn(len(succ))]),
			}
		}
	}
	for _, sparse := range []bool{false, true} {
		sparse := sparse
		name := "dense"
		if sparse {
			name = "sparse"
		}
		b.Run(name, func(b *testing.B) {
			a := repro.NewVCAllocator(repro.VCAllocConfig{
				Ports: 10, Spec: spec, Arch: repro.SepIF, ArbKind: repro.RoundRobin, Sparse: sparse,
			})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a.Allocate(reqs)
			}
		})
	}
}

// BenchmarkAblationSpeculationModes measures the switch allocator's cycle
// cost per speculation scheme.
func BenchmarkAblationSpeculationModes(b *testing.B) {
	for _, mode := range []repro.SpecMode{repro.SpecNone, repro.SpecReq, repro.SpecGnt} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			a := repro.NewSwitchAllocator(repro.SwitchAllocConfig{
				Ports: 10, VCs: 16, Arch: repro.SepIF, ArbKind: repro.RoundRobin, SpecMode: mode,
			})
			reqs := make([]repro.SwitchRequest, 160)
			rng := repro.NewRand(5)
			for i := range reqs {
				if rng.Bool(0.4) {
					reqs[i] = repro.SwitchRequest{Active: true, OutPort: rng.Intn(10), Spec: rng.Bool(0.3) && mode != repro.SpecNone}
				}
			}
			for i := 0; i < b.N; i++ {
				a.Allocate(reqs)
			}
		})
	}
}

func randomMatrix(rows, cols int, p float64, seed uint64) *repro.Matrix {
	rng := repro.NewRand(seed)
	m := repro.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Bool(p) {
				m.Set(i, j)
			}
		}
	}
	return m
}

// BenchmarkAblationFreeQueueVsMatching compares the Mullins free-VC-queue
// scheme's software cycle cost against the matching VC allocators.
func BenchmarkAblationFreeQueueVsMatching(b *testing.B) {
	spec := repro.NewVCSpec(2, 2, 4)
	rng := repro.NewRand(7)
	reqs := make([]repro.VCRequest, 10*spec.V())
	for i := range reqs {
		if rng.Bool(0.4) {
			m, r, _ := spec.Decompose(i % spec.V())
			succ := spec.ResourceSucc[r]
			reqs[i] = repro.VCRequest{
				Active:     true,
				OutPort:    rng.Intn(10),
				Candidates: spec.ClassMask(m, succ[rng.Intn(len(succ))]),
			}
		}
	}
	for _, cfg := range []struct {
		name string
		c    repro.VCAllocConfig
	}{
		{"freeq", repro.VCAllocConfig{Ports: 10, Spec: spec, ArbKind: repro.RoundRobin, FreeQueue: true}},
		{"sep_if", repro.VCAllocConfig{Ports: 10, Spec: spec, Arch: repro.SepIF, ArbKind: repro.RoundRobin, Sparse: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			a := repro.NewVCAllocator(cfg.c)
			for i := 0; i < b.N; i++ {
				a.Allocate(reqs)
			}
		})
	}
}

// BenchmarkAblationPrecomputedSwitch measures the pre-computation wrapper's
// overhead relative to the plain allocator.
func BenchmarkAblationPrecomputedSwitch(b *testing.B) {
	rng := repro.NewRand(9)
	reqs := make([]repro.SwitchRequest, 10*8)
	for i := range reqs {
		if rng.Bool(0.4) {
			reqs[i] = repro.SwitchRequest{Active: true, OutPort: rng.Intn(10)}
		}
	}
	for _, pre := range []bool{false, true} {
		pre := pre
		name := "plain"
		if pre {
			name = "precomputed"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			a := repro.NewSwitchAllocator(repro.SwitchAllocConfig{Ports: 10, VCs: 8,
				Arch: repro.SepIF, ArbKind: repro.RoundRobin, Precomputed: pre})
			for i := 0; i < b.N; i++ {
				a.Allocate(reqs)
			}
		})
	}
}

// BenchmarkAblationIncrementalSteps measures the incremental maximum-size
// allocator at different per-cycle step budgets against one-shot maximum.
func BenchmarkAblationIncrementalSteps(b *testing.B) {
	req := randomMatrix(16, 16, 0.3, 13)
	for _, steps := range []int{1, 4, 16} {
		steps := steps
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			b.ReportAllocs()
			a := repro.NewIncrementalAllocator(16, 16, steps)
			for i := 0; i < b.N; i++ {
				a.Allocate(req)
			}
		})
	}
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		a := repro.NewAllocator(repro.AllocConfig{Arch: repro.Maximum, Rows: 16, Cols: 16})
		for i := 0; i < b.N; i++ {
			a.Allocate(req)
		}
	})
}

// BenchmarkTorusDatelineNetwork exercises the torus extension end to end.
func BenchmarkTorusDatelineNetwork(b *testing.B) {
	b.ReportAllocs()
	topo := repro.Torus(8)
	spec := repro.NewVCSpec(2, 2, 1)
	spec.ResourceSucc = repro.TorusResourceSucc()
	for i := 0; i < b.N; i++ {
		cfg := repro.SimConfig{
			Topology:      topo,
			Routing:       repro.NewTorusDateline(topo),
			Spec:          spec,
			VA:            repro.VCAllocConfig{Arch: repro.SepIF, ArbKind: repro.RoundRobin},
			SA:            repro.SwitchAllocConfig{Arch: repro.SepIF, ArbKind: repro.RoundRobin, SpecMode: repro.SpecReq},
			InjectionRate: 0.2,
			Seed:          uint64(i) + 1,
			Warmup:        150,
			Measure:       300,
			Drain:         1000,
		}
		if res := repro.NewNetwork(cfg).Run(); res.FlitsDelivered == 0 {
			b.Fatal("torus wedged")
		}
	}
}
