package alloc

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/xrand"
)

func TestIncrementalValidity(t *testing.T) {
	rng := xrand.New(401)
	a := NewIncremental(8, 8, 2)
	for trial := 0; trial < 300; trial++ {
		req := randomMatrix(rng, 8, 8, 0.3)
		if err := Validate(req, a.Allocate(req)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestIncrementalConvergesToMaximum(t *testing.T) {
	// With persistent requests, one augmentation per cycle reaches the
	// maximum matching within rows cycles (Hoare et al.'s premise).
	rng := xrand.New(409)
	for trial := 0; trial < 100; trial++ {
		req := randomMatrix(rng, 8, 8, 0.3)
		want := MatchSize(req)
		a := NewIncremental(8, 8, 1)
		var got int
		for cycle := 0; cycle < 8; cycle++ {
			got = a.Allocate(req).Count()
		}
		if got != want {
			t.Fatalf("trial %d: converged to %d, maximum %d", trial, got, want)
		}
	}
}

func TestIncrementalUnlimitedEqualsMaximum(t *testing.T) {
	// With a step budget >= rows it matches the one-shot maximum allocator
	// on the first call.
	rng := xrand.New(419)
	max := NewMaximum(8, 8)
	for trial := 0; trial < 200; trial++ {
		req := randomMatrix(rng, 8, 8, 0.35)
		a := NewIncremental(8, 8, 8)
		if got, want := a.Allocate(req).Count(), max.Allocate(req).Count(); got != want {
			t.Fatalf("trial %d: %d vs maximum %d", trial, got, want)
		}
	}
}

func TestIncrementalReusesMatchingAcrossCycles(t *testing.T) {
	// The carried matching means a single step per cycle suffices to track
	// a slowly changing request set: after converging, removing one
	// request and adding another is repaired in one cycle.
	req := bitvec.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		req.Set(i, i)
	}
	a := NewIncremental(4, 4, 1)
	for cycle := 0; cycle < 4; cycle++ {
		a.Allocate(req)
	}
	if a.Allocate(req).Count() != 4 {
		t.Fatal("did not converge on identity requests")
	}
	// Move row 0's request from column 0 to column 3... which is taken by
	// row 3; give row 3 an alternative.
	req.Clear(0, 0)
	req.Set(0, 3)
	req.Set(3, 0)
	g := a.Allocate(req)
	if g.Count() != 4 {
		t.Fatalf("one augmentation step should repair the matching, got %d", g.Count())
	}
	if err := Validate(req, g); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalDropsStaleGrants(t *testing.T) {
	req := bitvec.NewMatrix(2, 2)
	req.Set(0, 0)
	a := NewIncremental(2, 2, 2)
	if !a.Allocate(req).Get(0, 0) {
		t.Fatal("request not granted")
	}
	req.Clear(0, 0)
	req.Set(1, 1)
	g := a.Allocate(req)
	if g.Get(0, 0) {
		t.Fatal("stale grant retained")
	}
	if !g.Get(1, 1) {
		t.Fatal("new request not granted")
	}
}

func TestIncrementalBoundedWorkLagsBehind(t *testing.T) {
	// With rapidly changing dense requests and a single step per cycle,
	// the incremental allocator cannot keep pace with the one-shot maximum
	// — this is the complexity/quality trade-off §2.3 describes.
	rng := xrand.New(431)
	a := NewIncremental(10, 10, 1)
	max := NewMaximum(10, 10)
	var got, want int
	for cycle := 0; cycle < 500; cycle++ {
		req := randomMatrix(rng, 10, 10, 0.4)
		got += a.Allocate(req).Count()
		want += max.Allocate(req).Count()
	}
	if got >= want {
		t.Fatalf("1-step incremental (%d) should trail one-shot maximum (%d) on volatile requests", got, want)
	}
	// More augmentation steps per cycle close the gap monotonically.
	a4 := NewIncremental(10, 10, 4)
	rng4 := xrand.New(431)
	var got4 int
	for cycle := 0; cycle < 500; cycle++ {
		got4 += a4.Allocate(randomMatrix(rng4, 10, 10, 0.4)).Count()
	}
	if got4 <= got {
		t.Fatalf("4-step incremental (%d) should beat 1-step (%d)", got4, got)
	}
}

func TestIncrementalResetAndName(t *testing.T) {
	a := NewIncremental(4, 4, 0) // 0 -> one step
	if a.Name() != "incr/1" {
		t.Fatalf("Name = %q", a.Name())
	}
	if r, c := a.Shape(); r != 4 || c != 4 {
		t.Fatal("bad shape")
	}
	req := bitvec.NewMatrix(4, 4)
	req.Set(2, 2)
	a.Allocate(req)
	a.Reset()
	// After reset the matching is empty again; the same request must be
	// re-established rather than carried.
	req.Clear(2, 2)
	req.Set(3, 3)
	g := a.Allocate(req)
	if g.Get(2, 2) {
		t.Fatal("Reset did not clear carried matching")
	}
	if !g.Get(3, 3) {
		t.Fatal("fresh request not granted after Reset")
	}
}

func TestIncrementalBadDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewIncremental(0, 4, 1)
}

func BenchmarkIncremental16x16(b *testing.B) {
	a := NewIncremental(16, 16, 2)
	rng := xrand.New(1)
	req := randomMatrix(rng, 16, 16, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(req)
	}
}
