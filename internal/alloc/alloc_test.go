package alloc

import (
	"testing"

	"repro/internal/arbiter"
	"repro/internal/bitvec"
	"repro/internal/xrand"
)

func allConfigs(rows, cols int) []Config {
	return []Config{
		{Arch: SepIF, Rows: rows, Cols: cols, ArbKind: arbiter.RoundRobin},
		{Arch: SepIF, Rows: rows, Cols: cols, ArbKind: arbiter.Matrix},
		{Arch: SepOF, Rows: rows, Cols: cols, ArbKind: arbiter.RoundRobin},
		{Arch: SepOF, Rows: rows, Cols: cols, ArbKind: arbiter.Matrix},
		{Arch: Wavefront, Rows: rows, Cols: cols},
		{Arch: Maximum, Rows: rows, Cols: cols},
	}
}

func randomMatrix(rng *xrand.Source, rows, cols int, p float64) *bitvec.Matrix {
	m := bitvec.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Bool(p) {
				m.Set(i, j)
			}
		}
	}
	return m
}

func TestArchString(t *testing.T) {
	cases := map[Arch]string{SepIF: "sep_if", SepOF: "sep_of", Wavefront: "wf", Maximum: "max"}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
	if Arch(42).String() == "" {
		t.Error("unknown arch should still render")
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{
		"sep_if/rr": true, "sep_if/m": true, "sep_of/rr": true,
		"sep_of/m": true, "wf": true, "max": true,
	}
	for _, c := range allConfigs(4, 4) {
		a := New(c)
		if !want[a.Name()] {
			t.Errorf("unexpected allocator name %q", a.Name())
		}
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, c := range []Config{
		{Arch: SepIF, Rows: 0, Cols: 4},
		{Arch: Arch(9), Rows: 4, Cols: 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v: expected panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(Config{Arch: Wavefront, Rows: 4, Cols: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Allocate(bitvec.NewMatrix(4, 5))
}

func TestEmptyRequestsEmptyGrants(t *testing.T) {
	for _, c := range allConfigs(5, 5) {
		a := New(c)
		g := a.Allocate(bitvec.NewMatrix(5, 5))
		if g.Any() {
			t.Errorf("%s: grants for empty request matrix", a.Name())
		}
	}
}

func TestIdentityRequestsFullyGranted(t *testing.T) {
	// Non-conflicting requests must all be granted by every architecture
	// (paper §4.3.2: "all three allocator types are guaranteed to grant
	// non-conflicting requests").
	for _, c := range allConfigs(6, 6) {
		a := New(c)
		req := bitvec.NewMatrix(6, 6)
		for i := 0; i < 6; i++ {
			req.Set(i, (i+2)%6)
		}
		g := a.Allocate(req)
		if g.Count() != 6 {
			t.Errorf("%s: granted %d of 6 non-conflicting requests", a.Name(), g.Count())
		}
	}
}

func TestSingleConflictOneGrant(t *testing.T) {
	// All rows request the same single column: exactly one grant.
	for _, c := range allConfigs(5, 5) {
		a := New(c)
		req := bitvec.NewMatrix(5, 5)
		for i := 0; i < 5; i++ {
			req.Set(i, 2)
		}
		g := a.Allocate(req)
		if g.Count() != 1 {
			t.Errorf("%s: %d grants for single-column conflict, want 1", a.Name(), g.Count())
		}
		if err := Validate(req, g); err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
	}
}

func TestValidityRandom(t *testing.T) {
	rng := xrand.New(101)
	for _, c := range allConfigs(8, 8) {
		a := New(c)
		for trial := 0; trial < 300; trial++ {
			req := randomMatrix(rng, 8, 8, 0.3)
			g := a.Allocate(req)
			if err := Validate(req, g); err != nil {
				t.Fatalf("%s trial %d: %v\nreq:\n%v\ngnt:\n%v", a.Name(), trial, err, req, g)
			}
		}
	}
}

func TestValidityRectangular(t *testing.T) {
	rng := xrand.New(103)
	for _, dims := range [][2]int{{3, 7}, {7, 3}, {1, 5}, {5, 1}} {
		for _, c := range allConfigs(dims[0], dims[1]) {
			a := New(c)
			for trial := 0; trial < 100; trial++ {
				req := randomMatrix(rng, dims[0], dims[1], 0.4)
				g := a.Allocate(req)
				if err := Validate(req, g); err != nil {
					t.Fatalf("%s %v trial %d: %v", a.Name(), dims, trial, err)
				}
			}
		}
	}
}

func TestWavefrontMaximal(t *testing.T) {
	// Paper §2.2: wavefront allocators are guaranteed to find maximal
	// matchings.
	rng := xrand.New(107)
	a := New(Config{Arch: Wavefront, Rows: 10, Cols: 10})
	for trial := 0; trial < 500; trial++ {
		req := randomMatrix(rng, 10, 10, 0.25)
		g := a.Allocate(req)
		if !IsMaximal(req, g) {
			t.Fatalf("trial %d: wavefront matching not maximal\nreq:\n%v\ngnt:\n%v", trial, req, g)
		}
	}
}

func TestWavefrontMaximalRectangular(t *testing.T) {
	rng := xrand.New(109)
	a := New(Config{Arch: Wavefront, Rows: 6, Cols: 11})
	for trial := 0; trial < 300; trial++ {
		req := randomMatrix(rng, 6, 11, 0.3)
		g := a.Allocate(req)
		if !IsMaximal(req, g) {
			t.Fatalf("trial %d: not maximal\nreq:\n%v\ngnt:\n%v", trial, req, g)
		}
	}
}

func TestMaximumIsMaximum(t *testing.T) {
	// Cross-check Kuhn's algorithm against brute force on small matrices.
	rng := xrand.New(113)
	a := NewMaximum(5, 5)
	for trial := 0; trial < 300; trial++ {
		req := randomMatrix(rng, 5, 5, 0.35)
		got := a.Allocate(req).Count()
		want := bruteForceMax(req)
		if got != want {
			t.Fatalf("trial %d: maximum allocator found %d, brute force %d\n%v", trial, got, want, req)
		}
	}
}

// bruteForceMax computes the maximum matching size by exhaustive search.
func bruteForceMax(req *bitvec.Matrix) int {
	var rec func(row int, usedCols uint32) int
	rec = func(row int, usedCols uint32) int {
		if row == req.Rows() {
			return 0
		}
		best := rec(row+1, usedCols) // skip this row
		req.Row(row).ForEach(func(j int) {
			if usedCols&(1<<j) == 0 {
				if v := 1 + rec(row+1, usedCols|1<<j); v > best {
					best = v
				}
			}
		})
		return best
	}
	return rec(0, 0)
}

func TestMaximumDominatesAll(t *testing.T) {
	// Paper §2.3: maximum-size allocation is the upper bound all other
	// allocators are benchmarked against.
	rng := xrand.New(127)
	max := NewMaximum(8, 8)
	others := []Allocator{
		New(Config{Arch: SepIF, Rows: 8, Cols: 8, ArbKind: arbiter.RoundRobin}),
		New(Config{Arch: SepOF, Rows: 8, Cols: 8, ArbKind: arbiter.Matrix}),
		New(Config{Arch: Wavefront, Rows: 8, Cols: 8}),
	}
	for trial := 0; trial < 300; trial++ {
		req := randomMatrix(rng, 8, 8, 0.3)
		bound := max.Allocate(req).Count()
		for _, a := range others {
			if got := a.Allocate(req).Count(); got > bound {
				t.Fatalf("%s produced %d grants > maximum %d", a.Name(), got, bound)
			}
		}
	}
}

func TestWavefrontDiagonalFairness(t *testing.T) {
	// With full requests, repeated allocation must serve every (row, col)
	// pair eventually thanks to the rotating priority diagonal.
	a := New(Config{Arch: Wavefront, Rows: 4, Cols: 4})
	req := bitvec.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			req.Set(i, j)
		}
	}
	served := bitvec.NewMatrix(4, 4)
	for k := 0; k < 8; k++ {
		g := a.Allocate(req)
		if g.Count() != 4 {
			t.Fatalf("full request matrix should yield full matching, got %d", g.Count())
		}
		for i := 0; i < 4; i++ {
			g.Row(i).ForEach(func(j int) { served.Set(i, j) })
		}
	}
	if served.Count() != 16 {
		t.Fatalf("rotating diagonal served only %d/16 pairs", served.Count())
	}
}

func TestSeparableFairnessUnderContention(t *testing.T) {
	// Two rows permanently contending for one column must alternate.
	for _, c := range allConfigs(2, 1)[:4] {
		a := New(c)
		req := bitvec.NewMatrix(2, 1)
		req.Set(0, 0)
		req.Set(1, 0)
		counts := [2]int{}
		for k := 0; k < 100; k++ {
			g := a.Allocate(req)
			if g.Count() != 1 {
				t.Fatalf("%s: want exactly 1 grant", a.Name())
			}
			if g.Get(0, 0) {
				counts[0]++
			} else {
				counts[1]++
			}
		}
		if counts[0] != 50 || counts[1] != 50 {
			t.Errorf("%s: unfair alternation %v", a.Name(), counts)
		}
	}
}

func TestConditionalUpdateFairness(t *testing.T) {
	// The scenario from the paper's fairness rule (§2.1, [13]): with
	// unconditional input-pointer updates a requester can starve. Verify
	// our sep_if does not: row 0 requests {0}, row 1 requests {0, 1}.
	// Row 1 must not be locked out of column 0 forever when a third row
	// competes for column 1.
	a := New(Config{Arch: SepIF, Rows: 3, Cols: 2, ArbKind: arbiter.RoundRobin})
	req := bitvec.NewMatrix(3, 2)
	req.Set(0, 0)
	req.Set(1, 0)
	req.Set(1, 1)
	req.Set(2, 1)
	rowGrants := [3]int{}
	for k := 0; k < 400; k++ {
		g := a.Allocate(req)
		for i := 0; i < 3; i++ {
			if g.Row(i).Any() {
				rowGrants[i]++
			}
		}
	}
	for i, c := range rowGrants {
		if c < 100 {
			t.Errorf("row %d granted only %d/400 times: starvation", i, c)
		}
	}
}

func TestMultiIterationImprovesSeparable(t *testing.T) {
	// Ablation (paper §2.1): additional separable iterations close the gap
	// to maximal matchings.
	rng := xrand.New(131)
	one := New(Config{Arch: SepIF, Rows: 8, Cols: 8, ArbKind: arbiter.RoundRobin, Iterations: 1})
	four := New(Config{Arch: SepIF, Rows: 8, Cols: 8, ArbKind: arbiter.RoundRobin, Iterations: 4})
	var g1, g4 int
	for trial := 0; trial < 2000; trial++ {
		req := randomMatrix(rng, 8, 8, 0.4)
		g1 += one.Allocate(req).Count()
		g4 += four.Allocate(req).Count()
	}
	if g4 <= g1 {
		t.Fatalf("4 iterations (%d grants) should beat 1 iteration (%d grants)", g4, g1)
	}
	// And iterated separable allocation must reach maximality.
	req := bitvec.NewMatrix(8, 8)
	rngM := xrand.New(17)
	for trial := 0; trial < 200; trial++ {
		req = randomMatrix(rngM, 8, 8, 0.4)
		many := New(Config{Arch: SepIF, Rows: 8, Cols: 8, ArbKind: arbiter.RoundRobin, Iterations: 8})
		g := many.Allocate(req)
		if !IsMaximal(req, g) {
			t.Fatalf("8-iteration sep_if should be maximal\nreq:\n%v\ngnt:\n%v", req, g)
		}
	}
}

func TestIterationsValidity(t *testing.T) {
	rng := xrand.New(137)
	for _, arch := range []Arch{SepIF, SepOF} {
		a := New(Config{Arch: arch, Rows: 6, Cols: 6, ArbKind: arbiter.Matrix, Iterations: 3})
		for trial := 0; trial < 200; trial++ {
			req := randomMatrix(rng, 6, 6, 0.5)
			if err := Validate(req, a.Allocate(req)); err != nil {
				t.Fatalf("%s iter=3: %v", arch, err)
			}
		}
	}
}

func TestGrantMatrixReused(t *testing.T) {
	// Documented contract: the grant matrix is valid until next Allocate.
	a := New(Config{Arch: Wavefront, Rows: 3, Cols: 3})
	req := bitvec.NewMatrix(3, 3)
	req.Set(0, 0)
	g1 := a.Allocate(req)
	if !g1.Get(0, 0) {
		t.Fatal("expected grant")
	}
	req.Reset()
	req.Set(1, 1)
	g2 := a.Allocate(req)
	if g2 != g1 {
		t.Fatal("allocator should reuse its grant matrix")
	}
	if g1.Get(0, 0) {
		t.Fatal("stale grant left in reused matrix")
	}
}

func TestResetAllocators(t *testing.T) {
	for _, c := range allConfigs(4, 4) {
		a := New(c)
		req := bitvec.NewMatrix(4, 4)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				req.Set(i, j)
			}
		}
		first := a.Allocate(req).Clone()
		a.Allocate(req)
		a.Reset()
		again := a.Allocate(req)
		if !first.Equal(again) {
			t.Errorf("%s: Reset did not restore initial decision", a.Name())
		}
	}
}

func TestIsMaximalDetectsNonMaximal(t *testing.T) {
	req := bitvec.NewMatrix(2, 2)
	req.Set(0, 0)
	req.Set(1, 1)
	gnt := bitvec.NewMatrix(2, 2)
	gnt.Set(0, 0)
	if IsMaximal(req, gnt) {
		t.Fatal("missing grant (1,1) should make matching non-maximal")
	}
	gnt.Set(1, 1)
	if !IsMaximal(req, gnt) {
		t.Fatal("full matching should be maximal")
	}
}

func TestValidateErrors(t *testing.T) {
	req := bitvec.NewMatrix(2, 2)
	req.Set(0, 0)
	gnt := bitvec.NewMatrix(2, 3)
	if Validate(req, gnt) == nil {
		t.Fatal("shape mismatch must error")
	}
	gnt = bitvec.NewMatrix(2, 2)
	gnt.Set(1, 1) // no request
	if Validate(req, gnt) == nil {
		t.Fatal("grant without request must error")
	}
	req.Set(0, 1)
	req.Set(1, 1)
	bad := bitvec.NewMatrix(2, 2)
	bad.Set(0, 1)
	bad.Set(1, 1) // column conflict
	if Validate(req, bad) == nil {
		t.Fatal("column conflict must error")
	}
}

func TestMatchSize(t *testing.T) {
	req := bitvec.NewMatrix(3, 3)
	req.Set(0, 0)
	req.Set(1, 0)
	req.Set(1, 1)
	req.Set(2, 1)
	// Rows {0,1,2} compete for columns {0,1}: best is (0,0),(1,1) or
	// (0,0),(2,1) etc., size 2.
	if got := MatchSize(req); got != 2 {
		t.Fatalf("MatchSize = %d, want 2", got)
	}
	req.Set(1, 2)
	if got := MatchSize(req); got != 3 {
		t.Fatalf("MatchSize after adding (1,2) = %d, want 3", got)
	}
}

func BenchmarkSepIFRR16x16(b *testing.B) {
	benchAlloc(b, Config{Arch: SepIF, Rows: 16, Cols: 16, ArbKind: arbiter.RoundRobin})
}
func BenchmarkSepOFRR16x16(b *testing.B) {
	benchAlloc(b, Config{Arch: SepOF, Rows: 16, Cols: 16, ArbKind: arbiter.RoundRobin})
}
func BenchmarkWavefront16x16(b *testing.B) {
	benchAlloc(b, Config{Arch: Wavefront, Rows: 16, Cols: 16})
}
func BenchmarkMaximum16x16(b *testing.B) { benchAlloc(b, Config{Arch: Maximum, Rows: 16, Cols: 16}) }

func benchAlloc(b *testing.B, c Config) {
	a := New(c)
	rng := xrand.New(1)
	req := randomMatrix(rng, c.Rows, c.Cols, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(req)
	}
}

func TestUnconditionalUpdateSynchronizationPathology(t *testing.T) {
	// The classic iSLIP pathology the conditional-update rule (§2.1, [13])
	// avoids: two rows both requesting columns {0, 1}. With conditional
	// updates the input pointers desynchronize after one cycle and the
	// allocator sustains 2 grants/cycle; with unconditional updates the
	// pointers move in lockstep and every cycle collides (1 grant/cycle).
	req := bitvec.NewMatrix(2, 2)
	req.Set(0, 0)
	req.Set(0, 1)
	req.Set(1, 0)
	req.Set(1, 1)

	count := func(uncond bool) int {
		a := New(Config{Arch: SepIF, Rows: 2, Cols: 2, ArbKind: arbiter.RoundRobin,
			UnconditionalUpdate: uncond})
		total := 0
		for cycle := 0; cycle < 100; cycle++ {
			total += a.Allocate(req).Count()
		}
		return total
	}
	good, bad := count(false), count(true)
	if bad >= good {
		t.Fatalf("unconditional updates (%d grants) should underperform conditional (%d)", bad, good)
	}
	if good < 190 {
		t.Fatalf("conditional updates should sustain ~2 grants/cycle, got %d/100 cycles", good)
	}
	if bad > 110 {
		t.Fatalf("unconditional updates should collapse to ~1 grant/cycle, got %d/100 cycles", bad)
	}
}

func TestUnconditionalUpdateStillValid(t *testing.T) {
	// Even the pathological policy must produce valid matchings.
	rng := xrand.New(211)
	for _, arch := range []Arch{SepIF, SepOF} {
		a := New(Config{Arch: arch, Rows: 6, Cols: 6, ArbKind: arbiter.RoundRobin,
			UnconditionalUpdate: true})
		for trial := 0; trial < 200; trial++ {
			req := randomMatrix(rng, 6, 6, 0.5)
			if err := Validate(req, a.Allocate(req)); err != nil {
				t.Fatalf("%s uncond trial %d: %v", arch, trial, err)
			}
		}
	}
}

func TestUnconditionalUpdateQualityLoss(t *testing.T) {
	// Aggregate matching quality should degrade with the naive policy.
	count := func(uncond bool) int {
		a := New(Config{Arch: SepIF, Rows: 8, Cols: 8, ArbKind: arbiter.RoundRobin,
			UnconditionalUpdate: uncond})
		total := 0
		rng := xrand.New(223)
		for trial := 0; trial < 3000; trial++ {
			total += a.Allocate(randomMatrix(rng, 8, 8, 0.5)).Count()
		}
		return total
	}
	good, bad := count(false), count(true)
	if bad > good {
		t.Fatalf("unconditional updates (%d) should not beat conditional (%d)", bad, good)
	}
}
