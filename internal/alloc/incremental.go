package alloc

import (
	"fmt"

	"repro/internal/bitvec"
)

// Incremental is a maximum-size allocator in the style of Hoare et al. [8]
// (referenced in §2.3 of the paper): instead of recomputing a matching from
// scratch every cycle, it maintains the previous cycle's matching and
// performs a bounded number of augmenting-path steps per invocation.
//
// With persistent requests the matching converges to maximum within a few
// cycles; under rapidly changing requests a small step budget trades
// matching quality for the bounded per-cycle work a hardware implementation
// must respect. Like plain maximum-size allocation it offers no fairness
// guarantees (§2.3).
type Incremental struct {
	rows, cols int
	steps      int
	cursor     int // next row to consider for augmentation

	matchRow []int // matchRow[i] = matched col or -1
	matchCol []int // matchCol[j] = matched row or -1
	visited  []bool
	gnt      *bitvec.Matrix
}

// NewIncremental returns a rows×cols incremental allocator performing at
// most stepsPerCycle augmenting-path searches per Allocate call
// (stepsPerCycle <= 0 means one).
func NewIncremental(rows, cols, stepsPerCycle int) *Incremental {
	if rows <= 0 || cols <= 0 {
		panic("alloc: dimensions must be positive")
	}
	if stepsPerCycle <= 0 {
		stepsPerCycle = 1
	}
	a := &Incremental{
		rows:     rows,
		cols:     cols,
		steps:    stepsPerCycle,
		matchRow: make([]int, rows),
		matchCol: make([]int, cols),
		visited:  make([]bool, cols),
		gnt:      bitvec.NewMatrix(rows, cols),
	}
	a.Reset()
	return a
}

// Shape implements Allocator.
func (a *Incremental) Shape() (int, int) { return a.rows, a.cols }

// Name implements Allocator.
func (a *Incremental) Name() string { return fmt.Sprintf("incr/%d", a.steps) }

// Reset implements Allocator, clearing the carried matching.
func (a *Incremental) Reset() {
	for i := range a.matchRow {
		a.matchRow[i] = -1
	}
	for j := range a.matchCol {
		a.matchCol[j] = -1
	}
	a.cursor = 0
}

// Allocate implements Allocator: it first invalidates carried assignments
// whose requests disappeared, then runs up to the configured number of
// augmenting-path steps from unmatched rows.
func (a *Incremental) Allocate(req *bitvec.Matrix) *bitvec.Matrix {
	checkShape(req, a.rows, a.cols)
	// Drop assignments no longer requested.
	for i, j := range a.matchRow {
		if j >= 0 && !req.Get(i, j) {
			a.matchRow[i] = -1
			a.matchCol[j] = -1
		}
	}
	// Bounded augmentation from unmatched requesting rows. A rotating
	// cursor spreads the per-cycle search budget across rows, so an
	// unmatchable row cannot monopolize the steps and every persistent
	// request is attempted within rows cycles.
	steps := a.steps
	start := a.cursor
	for k := 0; k < a.rows && steps > 0; k++ {
		i := (start + k) % a.rows
		if a.matchRow[i] >= 0 || !req.Row(i).Any() {
			continue
		}
		for j := range a.visited {
			a.visited[j] = false
		}
		a.augment(req, i)
		steps--
		a.cursor = (i + 1) % a.rows
	}
	a.gnt.Reset()
	for i, j := range a.matchRow {
		if j >= 0 {
			a.gnt.Set(i, j)
		}
	}
	return a.gnt
}

func (a *Incremental) augment(req *bitvec.Matrix, i int) bool {
	found := false
	req.Row(i).ForEach(func(j int) {
		if found || a.visited[j] {
			return
		}
		a.visited[j] = true
		if a.matchCol[j] < 0 || a.augment(req, a.matchCol[j]) {
			a.matchCol[j] = i
			a.matchRow[i] = j
			found = true
		}
	})
	return found
}
