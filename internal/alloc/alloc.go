// Package alloc implements the generic allocator architectures studied in
// Becker & Dally (SC '09) §2: separable input-first and output-first
// allocators, wavefront allocators, and a maximum-size reference allocator.
//
// An allocator computes a matching between requesters (matrix rows) and
// resources (matrix columns): grants are a subset of requests with at most
// one grant per row and per column. The implementations here mirror the
// paper's RTL structures cycle for cycle; the corresponding hardware cost
// models live in internal/costmodel and are derived from the same
// structural parameters.
package alloc

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/bitvec"
)

// Allocator computes matchings between rows (requesters) and columns
// (resources) of a request matrix.
type Allocator interface {
	// Shape returns the (rows, cols) dimensions the allocator was built for.
	Shape() (rows, cols int)
	// Allocate computes a matching for req and returns the grant matrix.
	// The returned matrix is owned by the allocator and remains valid only
	// until the next Allocate call; callers needing to retain it must Clone.
	// Priority state advances according to each architecture's fairness
	// rules, so consecutive calls with the same request matrix may yield
	// different (fair) matchings.
	Allocate(req *bitvec.Matrix) *bitvec.Matrix
	// Reset restores the initial priority state.
	Reset()
	// Name returns the paper's identifier for the architecture, e.g.
	// "sep_if/rr" or "wf".
	Name() string
}

// IdleSkipper is implemented by allocators whose priority state advances
// even on Allocate calls with an empty request matrix. An event-driven
// simulator that skips such calls outright must invoke SkipIdle with the
// number of skipped cycles to reproduce the dense stepper bit for bit.
// Allocators without the method are state-no-ops on empty input and may be
// skipped unconditionally.
//
// SkipIdle composes with the router's cached request vectors: while a
// router is quiescent its cache may still hold entries that went stale on
// the final stepped cycle (the pop that drained the last VC), but SkipIdle
// reads no request state — it only replays the request-independent priority
// rotation — and the events that staled those entries also set their dirty
// bits, which persist across the skipped gap. The first Step after wake-up
// rebuilds every stale entry before any allocator reads the slice, so the
// allocators observe exactly the request sequence of the dense schedule.
type IdleSkipper interface {
	SkipIdle(idleCycles int64)
}

// Arch names an allocator architecture.
type Arch int

const (
	// SepIF is a separable input-first allocator (paper Fig. 1a).
	SepIF Arch = iota
	// SepOF is a separable output-first allocator (paper Fig. 1b).
	SepOF
	// Wavefront is a wavefront allocator with rotating priority diagonal
	// (paper Fig. 2).
	Wavefront
	// Maximum is a maximum-size (augmenting-path) allocator used as the
	// matching-quality upper bound (paper §2.3). It provides no fairness.
	Maximum
)

// String returns the paper's short name for the architecture.
func (a Arch) String() string {
	switch a {
	case SepIF:
		return "sep_if"
	case SepOF:
		return "sep_of"
	case Wavefront:
		return "wf"
	case Maximum:
		return "max"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Config parameterizes allocator construction.
type Config struct {
	// Arch selects the architecture.
	Arch Arch
	// Rows and Cols give the matrix dimensions.
	Rows, Cols int
	// ArbKind selects the arbiter implementation for separable
	// architectures (ignored by Wavefront and Maximum).
	ArbKind arbiter.Kind
	// Iterations is the number of separable iterations to run (>= 1).
	// The paper considers single-iteration allocation only (§2.1); values
	// above 1 are provided for the ablation study. Zero means 1.
	Iterations int
	// UnconditionalUpdate makes the first-stage arbiters advance their
	// priority whenever they produce a grant, even if it fails the second
	// arbitration stage. This is the naive policy the paper's fairness rule
	// (§2.1, [13]) exists to avoid: it synchronizes arbiter pointers and
	// causes pattern-dependent starvation and throughput loss. Provided for
	// the ablation study only.
	UnconditionalUpdate bool
}

func (c Config) iterations() int {
	if c.Iterations <= 0 {
		return 1
	}
	return c.Iterations
}

// New builds an allocator from the configuration.
func New(c Config) Allocator {
	if c.Rows <= 0 || c.Cols <= 0 {
		panic("alloc: dimensions must be positive")
	}
	switch c.Arch {
	case SepIF:
		return newSepIF(c)
	case SepOF:
		return newSepOF(c)
	case Wavefront:
		return NewWavefront(c.Rows, c.Cols)
	case Maximum:
		return NewMaximum(c.Rows, c.Cols)
	default:
		panic(fmt.Sprintf("alloc: unknown arch %d", int(c.Arch)))
	}
}

// sepIF is a separable input-first allocator: each row first picks one of
// its requested columns, then each column arbitrates among the forwarded
// requests. Input arbiters update priority only when their pick also wins
// output arbitration (iSLIP rule); output arbiters' grants are final, so
// they update whenever they grant.
type sepIF struct {
	rows, cols int
	iters      int
	uncond     bool
	name       string
	inArb      []arbiter.Arbiter // per row, cols wide
	outArb     []arbiter.Arbiter // per col, rows wide
	fwd        []*bitvec.Vec     // per col, rows wide: forwarded requests
	gnt        *bitvec.Matrix
	rowFree    *bitvec.Vec
	colFree    *bitvec.Vec
	rowReq     *bitvec.Vec
}

func newSepIF(c Config) *sepIF {
	a := &sepIF{
		rows:    c.Rows,
		cols:    c.Cols,
		iters:   c.iterations(),
		uncond:  c.UnconditionalUpdate,
		name:    "sep_if/" + c.ArbKind.String(),
		inArb:   make([]arbiter.Arbiter, c.Rows),
		outArb:  make([]arbiter.Arbiter, c.Cols),
		fwd:     make([]*bitvec.Vec, c.Cols),
		gnt:     bitvec.NewMatrix(c.Rows, c.Cols),
		rowFree: bitvec.New(c.Rows),
		colFree: bitvec.New(c.Cols),
		rowReq:  bitvec.New(c.Cols),
	}
	for i := range a.inArb {
		a.inArb[i] = arbiter.New(c.ArbKind, c.Cols)
	}
	for j := range a.outArb {
		a.outArb[j] = arbiter.New(c.ArbKind, c.Rows)
		a.fwd[j] = bitvec.New(c.Rows)
	}
	return a
}

func (a *sepIF) Shape() (int, int) { return a.rows, a.cols }
func (a *sepIF) Name() string      { return a.name }

func (a *sepIF) Reset() {
	for _, x := range a.inArb {
		x.Reset()
	}
	for _, x := range a.outArb {
		x.Reset()
	}
}

func (a *sepIF) Allocate(req *bitvec.Matrix) *bitvec.Matrix {
	checkShape(req, a.rows, a.cols)
	a.gnt.Reset()
	a.rowFree.SetAll()
	a.colFree.SetAll()
	for it := 0; it < a.iters; it++ {
		// Input stage: each unmatched row picks one requested free column.
		picked := false
		for j := 0; j < a.cols; j++ {
			a.fwd[j].Reset()
		}
		for i := a.rowFree.NextSet(0); i >= 0; i = a.rowFree.NextSet(i + 1) {
			if !a.rowReq.AndInto(req.Row(i), a.colFree) {
				continue
			}
			c := a.inArb[i].Pick(a.rowReq)
			if c < 0 {
				continue
			}
			if a.uncond {
				// Ablation: naive policy updates on every first-stage grant.
				a.inArb[i].Update(c)
			}
			a.fwd[c].Set(i)
			picked = true
		}
		if !picked {
			break
		}
		// Output stage: each free column arbitrates among forwarded requests.
		for j := a.colFree.NextSet(0); j >= 0; j = a.colFree.NextSet(j + 1) {
			if !a.fwd[j].Any() {
				continue
			}
			w := a.outArb[j].Pick(a.fwd[j])
			if w < 0 {
				continue
			}
			a.gnt.Set(w, j)
			a.rowFree.Clear(w)
			a.colFree.Clear(j)
			// The output grant is final: update the output arbiter, and the
			// input arbiter whose pick succeeded end to end.
			a.outArb[j].Update(w)
			if !a.uncond {
				a.inArb[w].Update(j)
			}
		}
	}
	return a.gnt
}

// sepOF is a separable output-first allocator: each column first picks one
// of the rows requesting it, then each row arbitrates among the columns that
// selected it. Output arbiters update priority only when their pick wins the
// row-side arbitration; row arbiters' grants are final.
type sepOF struct {
	rows, cols int
	iters      int
	uncond     bool
	name       string
	outArb     []arbiter.Arbiter // per col, rows wide (first stage)
	inArb      []arbiter.Arbiter // per row, cols wide (second stage)
	offered    []*bitvec.Vec     // per row, cols wide: columns offered to row
	gnt        *bitvec.Matrix
	rowFree    *bitvec.Vec
	colFree    *bitvec.Vec
	colReq     []*bitvec.Vec // per col, rows wide: requesting free rows
	colAny     *bitvec.Vec   // cols whose colReq vector is dirty
}

func newSepOF(c Config) *sepOF {
	a := &sepOF{
		rows:    c.Rows,
		cols:    c.Cols,
		iters:   c.iterations(),
		uncond:  c.UnconditionalUpdate,
		name:    "sep_of/" + c.ArbKind.String(),
		outArb:  make([]arbiter.Arbiter, c.Cols),
		inArb:   make([]arbiter.Arbiter, c.Rows),
		offered: make([]*bitvec.Vec, c.Rows),
		gnt:     bitvec.NewMatrix(c.Rows, c.Cols),
		rowFree: bitvec.New(c.Rows),
		colFree: bitvec.New(c.Cols),
		colReq:  make([]*bitvec.Vec, c.Cols),
		colAny:  bitvec.New(c.Cols),
	}
	for j := range a.outArb {
		a.outArb[j] = arbiter.New(c.ArbKind, c.Rows)
		a.colReq[j] = bitvec.New(c.Rows)
	}
	for i := range a.inArb {
		a.inArb[i] = arbiter.New(c.ArbKind, c.Cols)
		a.offered[i] = bitvec.New(c.Cols)
	}
	return a
}

func (a *sepOF) Shape() (int, int) { return a.rows, a.cols }
func (a *sepOF) Name() string      { return a.name }

func (a *sepOF) Reset() {
	for _, x := range a.inArb {
		x.Reset()
	}
	for _, x := range a.outArb {
		x.Reset()
	}
}

func (a *sepOF) Allocate(req *bitvec.Matrix) *bitvec.Matrix {
	checkShape(req, a.rows, a.cols)
	a.gnt.Reset()
	a.rowFree.SetAll()
	a.colFree.SetAll()
	for it := 0; it < a.iters; it++ {
		// Clear the per-column request vectors dirtied by the previous
		// iteration (or the previous Allocate call).
		for j := a.colAny.NextSet(0); j >= 0; j = a.colAny.NextSet(j + 1) {
			a.colReq[j].Reset()
		}
		a.colAny.Reset()
		// Transpose the requests of free rows into per-column vectors.
		// The output stage consumes no rows or columns, so building them
		// all up front is equivalent to the per-column scan.
		for i := a.rowFree.NextSet(0); i >= 0; i = a.rowFree.NextSet(i + 1) {
			a.offered[i].Reset()
			row := req.Row(i)
			for j := row.NextSet(0); j >= 0; j = row.NextSet(j + 1) {
				if a.colFree.Get(j) {
					a.colReq[j].Set(i)
					a.colAny.Set(j)
				}
			}
		}
		if !a.colAny.Any() {
			break
		}
		// Output stage: each free column picks one requesting free row.
		picked := false
		for j := a.colAny.NextSet(0); j >= 0; j = a.colAny.NextSet(j + 1) {
			w := a.outArb[j].Pick(a.colReq[j])
			if w < 0 {
				continue
			}
			if a.uncond {
				// Ablation: naive policy updates on every first-stage grant.
				a.outArb[j].Update(w)
			}
			a.offered[w].Set(j)
			picked = true
		}
		if !picked {
			break
		}
		// Input stage: each free row picks among the columns offered to it.
		for i := a.rowFree.NextSet(0); i >= 0; i = a.rowFree.NextSet(i + 1) {
			if !a.offered[i].Any() {
				continue
			}
			c := a.inArb[i].Pick(a.offered[i])
			if c < 0 {
				continue
			}
			a.gnt.Set(i, c)
			a.rowFree.Clear(i)
			a.colFree.Clear(c)
			a.inArb[i].Update(c)
			if !a.uncond {
				a.outArb[c].Update(i)
			}
		}
	}
	return a.gnt
}

// wavefront implements the wavefront allocator of Tamir & Chi as used in the
// paper: requests are granted diagonal by diagonal starting from a rotating
// priority diagonal; a granted request blocks its entire row and column for
// later diagonals. The result is always a maximal matching. Weak fairness
// comes from advancing the starting diagonal after every allocation.
type wavefront struct {
	rows, cols int
	n          int // number of diagonal classes = max(rows, cols)
	prio       int
	gnt        *bitvec.Matrix
	rowFree    *bitvec.Vec
	colFree    *bitvec.Vec
	diagRows   []*bitvec.Vec // per diagonal class, rows wide: rows requesting on it
	diagAny    *bitvec.Vec   // diagonal classes whose diagRows vector is dirty
	wave       *bitvec.Vec   // scratch: diagRows[d] & rowFree
}

// NewWavefront returns a rows×cols wavefront allocator.
func NewWavefront(rows, cols int) Allocator {
	n := rows
	if cols > n {
		n = cols
	}
	a := &wavefront{
		rows:     rows,
		cols:     cols,
		n:        n,
		gnt:      bitvec.NewMatrix(rows, cols),
		rowFree:  bitvec.New(rows),
		colFree:  bitvec.New(cols),
		diagRows: make([]*bitvec.Vec, n),
		diagAny:  bitvec.New(n),
		wave:     bitvec.New(rows),
	}
	for d := range a.diagRows {
		a.diagRows[d] = bitvec.New(rows)
	}
	return a
}

func (a *wavefront) Shape() (int, int) { return a.rows, a.cols }
func (a *wavefront) Name() string      { return "wf" }
func (a *wavefront) Reset()            { a.prio = 0 }

// SkipIdle implements IdleSkipper: an Allocate call with an empty request
// matrix grants nothing but still rotates the priority diagonal, so skipping
// idle cycles must advance prio by the same amount to stay bit-exact.
func (a *wavefront) SkipIdle(idleCycles int64) {
	a.prio = int((int64(a.prio) + idleCycles) % int64(a.n))
}

func (a *wavefront) Allocate(req *bitvec.Matrix) *bitvec.Matrix {
	checkShape(req, a.rows, a.cols)
	a.gnt.Reset()
	a.rowFree.SetAll()
	a.colFree.SetAll()
	// Bucket requests by diagonal class. Since n >= cols, each row has at
	// most one column on any diagonal: (i, j) lies on class (i + j) mod n,
	// and j is recoverable from (class, i).
	for d := a.diagAny.NextSet(0); d >= 0; d = a.diagAny.NextSet(d + 1) {
		a.diagRows[d].Reset()
	}
	a.diagAny.Reset()
	for i := 0; i < a.rows; i++ {
		row := req.Row(i)
		for j := row.NextSet(0); j >= 0; j = row.NextSet(j + 1) {
			d := (i + j) % a.n
			a.diagRows[d].Set(i)
			a.diagAny.Set(d)
		}
	}
	for k := 0; k < a.n; k++ {
		d := (a.prio + k) % a.n
		if !a.wave.AndInto(a.diagRows[d], a.rowFree) {
			continue
		}
		for i := a.wave.NextSet(0); i >= 0; i = a.wave.NextSet(i + 1) {
			j := (d - i%a.n + a.n) % a.n
			if a.colFree.Get(j) {
				a.gnt.Set(i, j)
				a.rowFree.Clear(i)
				a.colFree.Clear(j)
			}
		}
	}
	a.prio = (a.prio + 1) % a.n
	return a.gnt
}

// maximum is a maximum-size allocator based on Hopcroft–Karp style repeated
// augmenting-path search (Ford–Fulkerson on the bipartite request graph).
// It is used as the matching-quality reference; it provides no fairness and
// would be impractical as single-cycle router hardware (paper §2.3).
type maximum struct {
	rows, cols int
	matchRow   []int // matchRow[i] = matched col or -1
	matchCol   []int // matchCol[j] = matched row or -1
	visited    []bool
	gnt        *bitvec.Matrix
}

// NewMaximum returns a rows×cols maximum-size allocator.
func NewMaximum(rows, cols int) Allocator {
	return &maximum{
		rows:     rows,
		cols:     cols,
		matchRow: make([]int, rows),
		matchCol: make([]int, cols),
		visited:  make([]bool, cols),
		gnt:      bitvec.NewMatrix(rows, cols),
	}
}

func (a *maximum) Shape() (int, int) { return a.rows, a.cols }
func (a *maximum) Name() string      { return "max" }
func (a *maximum) Reset()            {}

func (a *maximum) Allocate(req *bitvec.Matrix) *bitvec.Matrix {
	checkShape(req, a.rows, a.cols)
	for i := range a.matchRow {
		a.matchRow[i] = -1
	}
	for j := range a.matchCol {
		a.matchCol[j] = -1
	}
	for i := 0; i < a.rows; i++ {
		if !req.Row(i).Any() {
			continue
		}
		for j := range a.visited {
			a.visited[j] = false
		}
		a.augment(req, i)
	}
	a.gnt.Reset()
	for i, j := range a.matchRow {
		if j >= 0 {
			a.gnt.Set(i, j)
		}
	}
	return a.gnt
}

// augment searches for an augmenting path from row i (Kuhn's algorithm).
func (a *maximum) augment(req *bitvec.Matrix, i int) bool {
	row := req.Row(i)
	for j := row.NextSet(0); j >= 0; j = row.NextSet(j + 1) {
		if a.visited[j] {
			continue
		}
		a.visited[j] = true
		if a.matchCol[j] < 0 || a.augment(req, a.matchCol[j]) {
			a.matchCol[j] = i
			a.matchRow[i] = j
			return true
		}
	}
	return false
}

// MatchSize returns the number of grants in a maximum matching of req
// without constructing an allocator. It is a convenience for quality
// normalization.
func MatchSize(req *bitvec.Matrix) int {
	a := NewMaximum(req.Rows(), req.Cols())
	return a.Allocate(req).Count()
}

// IsMaximal reports whether gnt is a maximal matching for req: no request
// (i, j) exists with both row i and column j unmatched.
func IsMaximal(req, gnt *bitvec.Matrix) bool {
	rows, cols := req.Rows(), req.Cols()
	rowUsed := make([]bool, rows)
	colUsed := make([]bool, cols)
	for i := 0; i < rows; i++ {
		gnt.Row(i).ForEach(func(j int) {
			rowUsed[i] = true
			colUsed[j] = true
		})
	}
	for i := 0; i < rows; i++ {
		if rowUsed[i] {
			continue
		}
		blocked := true
		req.Row(i).ForEach(func(j int) {
			if !colUsed[j] {
				blocked = false
			}
		})
		if !blocked {
			return false
		}
	}
	return true
}

// Validate reports an error when gnt is not a valid matching for req:
// grants must be a subset of requests with at most one grant per row and
// per column.
func Validate(req, gnt *bitvec.Matrix) error {
	if gnt.Rows() != req.Rows() || gnt.Cols() != req.Cols() {
		return fmt.Errorf("alloc: grant shape %dx%d does not match request shape %dx%d",
			gnt.Rows(), gnt.Cols(), req.Rows(), req.Cols())
	}
	if !gnt.SubsetOf(req) {
		return fmt.Errorf("alloc: grant issued without request")
	}
	if !gnt.IsMatching() {
		return fmt.Errorf("alloc: grants violate matching constraint")
	}
	return nil
}

func checkShape(req *bitvec.Matrix, rows, cols int) {
	if req.Rows() != rows || req.Cols() != cols {
		panic(fmt.Sprintf("alloc: request shape %dx%d, allocator shape %dx%d",
			req.Rows(), req.Cols(), rows, cols))
	}
}
