package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/bitvec"
	"repro/internal/xrand"
)

func vcConfigs(p int, spec VCSpec) []VCAllocConfig {
	var cfgs []VCAllocConfig
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		for _, sparse := range []bool{false, true} {
			cfg := VCAllocConfig{Ports: p, Spec: spec, Arch: arch, ArbKind: arbiter.RoundRobin, Sparse: sparse}
			cfgs = append(cfgs, cfg)
			if arch != alloc.Wavefront {
				cfgM := cfg
				cfgM.ArbKind = arbiter.Matrix
				cfgs = append(cfgs, cfgM)
			}
		}
	}
	return cfgs
}

// randomVCRequests generates a legal request set: each input VC is active
// with probability rate, targets a random output port, and requests a
// random legal class at that port (all VCs in the class, per §4.2's "select
// the class as a whole"), optionally thinned by availability.
func randomVCRequests(rng *xrand.Source, p int, spec VCSpec, rate float64) []VCRequest {
	v := spec.V()
	reqs := make([]VCRequest, p*v)
	for port := 0; port < p; port++ {
		for vc := 0; vc < v; vc++ {
			if !rng.Bool(rate) {
				continue
			}
			m, r, _ := spec.Decompose(vc)
			succ := spec.ResourceSucc[r]
			nr := succ[rng.Intn(len(succ))]
			reqs[port*v+vc] = VCRequest{
				Active:     true,
				OutPort:    rng.Intn(p),
				Candidates: spec.ClassMask(m, nr),
			}
		}
	}
	return reqs
}

func TestVCAllocatorNames(t *testing.T) {
	spec := NewVCSpec(2, 1, 2)
	want := map[string]bool{
		"sep_if/rr": true, "sep_if/m": true, "sep_of/rr": true, "sep_of/m": true,
		"wf/rr": true, "sep_if/rr (sparse)": true, "sep_if/m (sparse)": true,
		"sep_of/rr (sparse)": true, "sep_of/m (sparse)": true, "wf/rr (sparse)": true,
	}
	for _, cfg := range vcConfigs(5, spec) {
		a := NewVCAllocator(cfg)
		if !want[a.Name()] {
			t.Errorf("unexpected name %q", a.Name())
		}
		if a.Ports() != 5 || a.VCs() != 4 {
			t.Errorf("%s: wrong dims %d/%d", a.Name(), a.Ports(), a.VCs())
		}
	}
}

func TestVCAllocatorBadConfigPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewVCAllocator(VCAllocConfig{Ports: 0, Spec: NewVCSpec(1, 1, 1)}) },
		func() { NewVCAllocator(VCAllocConfig{Ports: 2, Spec: VCSpec{}}) },
		func() {
			NewVCAllocator(VCAllocConfig{Ports: 2, Spec: NewVCSpec(1, 1, 1), Arch: alloc.Maximum})
		},
		func() {
			a := NewVCAllocator(VCAllocConfig{Ports: 2, Spec: NewVCSpec(1, 1, 1), Arch: alloc.SepIF})
			a.Allocate(make([]VCRequest, 3))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestVCAllocatorEmpty(t *testing.T) {
	spec := NewVCSpec(2, 1, 2)
	for _, cfg := range vcConfigs(5, spec) {
		a := NewVCAllocator(cfg)
		grants := a.Allocate(make([]VCRequest, 5*spec.V()))
		for i, g := range grants {
			if g != -1 {
				t.Fatalf("%s: grant %d for inactive input %d", a.Name(), g, i)
			}
		}
	}
}

func TestVCAllocatorSingleRequest(t *testing.T) {
	spec := NewVCSpec(2, 1, 2)
	v := spec.V()
	for _, cfg := range vcConfigs(5, spec) {
		a := NewVCAllocator(cfg)
		reqs := make([]VCRequest, 5*v)
		// Input VC (port 2, vc 1: message class 0) requests port 4, class (0,0).
		reqs[2*v+1] = VCRequest{Active: true, OutPort: 4, Candidates: spec.ClassMask(0, 0)}
		grants := a.Allocate(reqs)
		g := grants[2*v+1]
		if g < 0 {
			t.Fatalf("%s: sole request not granted", a.Name())
		}
		if g/v != 4 {
			t.Fatalf("%s: granted port %d, want 4", a.Name(), g/v)
		}
		if !spec.ClassMask(0, 0).Get(g % v) {
			t.Fatalf("%s: granted VC %d outside requested class", a.Name(), g%v)
		}
		if err := CheckVCGrants(5, spec, reqs, grants); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
	}
}

func TestVCAllocatorValidityRandom(t *testing.T) {
	for _, spec := range []VCSpec{NewVCSpec(2, 1, 2), NewVCSpec(2, 2, 2)} {
		for _, cfg := range vcConfigs(5, spec) {
			a := NewVCAllocator(cfg)
			rng := xrand.New(41)
			for trial := 0; trial < 200; trial++ {
				reqs := randomVCRequests(rng, 5, spec, 0.4)
				grants := a.Allocate(reqs)
				if err := CheckVCGrants(5, spec, reqs, grants); err != nil {
					t.Fatalf("%s %s trial %d: %v", a.Name(), spec, trial, err)
				}
			}
		}
	}
}

func TestVCAllocatorGrantsRespectTransitions(t *testing.T) {
	// When requests are built from successor masks, grants stay legal.
	spec := NewVCSpec(2, 2, 2)
	v := spec.V()
	for _, cfg := range vcConfigs(4, spec) {
		a := NewVCAllocator(cfg)
		rng := xrand.New(43)
		for trial := 0; trial < 100; trial++ {
			reqs := make([]VCRequest, 4*v)
			for port := 0; port < 4; port++ {
				for vc := 0; vc < v; vc++ {
					if rng.Bool(0.5) {
						reqs[port*v+vc] = VCRequest{
							Active:     true,
							OutPort:    rng.Intn(4),
							Candidates: spec.SuccessorMask(vc),
						}
					}
				}
			}
			grants := a.Allocate(reqs)
			for gi, g := range grants {
				if g < 0 {
					continue
				}
				if !spec.LegalTransition(gi%v, g%v) {
					t.Fatalf("%s: illegal transition %d -> %d granted", a.Name(), gi%v, g%v)
				}
			}
		}
	}
}

func TestVCWavefrontMaximumQuality(t *testing.T) {
	// Paper §4.3.2: the wavefront VC allocator always achieves matching
	// quality 1 — it grants as many requests per class conflict as VCs
	// are available.
	spec := NewVCSpec(2, 1, 2)
	v := spec.V()
	p := 5
	wf := NewVCAllocator(VCAllocConfig{Ports: p, Spec: spec, Arch: alloc.Wavefront})
	rng := xrand.New(47)
	for trial := 0; trial < 300; trial++ {
		reqs := randomVCRequests(rng, p, spec, 0.6)
		grants := wf.Allocate(reqs)
		got := 0
		for _, g := range grants {
			if g >= 0 {
				got++
			}
		}
		// Build the equivalent bipartite request matrix and compare to the
		// maximum matching.
		req := bitvec.NewMatrix(p*v, p*v)
		for gi, r := range reqs {
			if !r.Active {
				continue
			}
			r.Candidates.ForEach(func(c int) {
				req.Set(gi, r.OutPort*v+c)
			})
		}
		want := alloc.MatchSize(req)
		if got != want {
			t.Fatalf("trial %d: wavefront granted %d, maximum %d", trial, got, want)
		}
	}
}

func TestVCSingleVCPerClassAllMaximum(t *testing.T) {
	// Paper §4.3.2 / Fig. 7(a),(d): with one VC per class every
	// architecture produces maximum matchings.
	spec := NewVCSpec(2, 1, 1)
	v := spec.V()
	p := 5
	rng := xrand.New(53)
	for _, cfg := range vcConfigs(p, spec) {
		a := NewVCAllocator(cfg)
		for trial := 0; trial < 200; trial++ {
			reqs := randomVCRequests(rng, p, spec, 0.7)
			grants := a.Allocate(reqs)
			got := 0
			for _, g := range grants {
				if g >= 0 {
					got++
				}
			}
			req := bitvec.NewMatrix(p*v, p*v)
			for gi, r := range reqs {
				if !r.Active {
					continue
				}
				r.Candidates.ForEach(func(c int) { req.Set(gi, r.OutPort*v+c) })
			}
			if want := alloc.MatchSize(req); got != want {
				t.Fatalf("%s trial %d: granted %d, maximum %d", a.Name(), trial, got, want)
			}
		}
	}
}

func TestVCSparseMatchesDenseGrantCountsWavefront(t *testing.T) {
	// For the wavefront architecture, sparse and dense allocators are both
	// maximal per message class, so their grant counts agree on every
	// legal request set.
	spec := NewVCSpec(2, 2, 2)
	p := 4
	dense := NewVCAllocator(VCAllocConfig{Ports: p, Spec: spec, Arch: alloc.Wavefront})
	sparse := NewVCAllocator(VCAllocConfig{Ports: p, Spec: spec, Arch: alloc.Wavefront, Sparse: true})
	rng := xrand.New(59)
	for trial := 0; trial < 300; trial++ {
		reqs := randomVCRequests(rng, p, spec, 0.5)
		gd, gs := 0, 0
		for _, g := range dense.Allocate(reqs) {
			if g >= 0 {
				gd++
			}
		}
		for _, g := range sparse.Allocate(reqs) {
			if g >= 0 {
				gs++
			}
		}
		if gd != gs {
			t.Fatalf("trial %d: dense %d grants, sparse %d", trial, gd, gs)
		}
	}
}

func TestVCSeparableLockoutExists(t *testing.T) {
	// Paper §4.3.2: separable allocators can leave output VCs unused in
	// the presence of conflicts. Craft the canonical lockout: two input
	// VCs at different ports request the same 2-VC class; with sep_if both
	// may pick the same output VC. Verify that over many random trials
	// sep_if grants strictly fewer total than wavefront at high load.
	spec := NewVCSpec(1, 1, 4)
	p := 5
	sif := NewVCAllocator(VCAllocConfig{Ports: p, Spec: spec, Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin})
	wf := NewVCAllocator(VCAllocConfig{Ports: p, Spec: spec, Arch: alloc.Wavefront})
	rng := xrand.New(61)
	totSif, totWf := 0, 0
	for trial := 0; trial < 2000; trial++ {
		reqs := randomVCRequests(rng, p, spec, 0.9)
		for _, g := range sif.Allocate(reqs) {
			if g >= 0 {
				totSif++
			}
		}
		for _, g := range wf.Allocate(reqs) {
			if g >= 0 {
				totWf++
			}
		}
	}
	if totSif >= totWf {
		t.Fatalf("sep_if (%d) should grant fewer than wavefront (%d) under load", totSif, totWf)
	}
}

func TestVCInputFirstBeatsOutputFirst(t *testing.T) {
	// Paper §4.3.2: "Input-first allocation provides slightly better
	// matching here". Check the aggregate ordering at high load.
	spec := NewVCSpec(2, 1, 4)
	p := 5
	sif := NewVCAllocator(VCAllocConfig{Ports: p, Spec: spec, Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin})
	sof := NewVCAllocator(VCAllocConfig{Ports: p, Spec: spec, Arch: alloc.SepOF, ArbKind: arbiter.RoundRobin})
	rng := xrand.New(67)
	totIF, totOF := 0, 0
	for trial := 0; trial < 4000; trial++ {
		reqs := randomVCRequests(rng, p, spec, 0.9)
		for _, g := range sif.Allocate(reqs) {
			if g >= 0 {
				totIF++
			}
		}
		for _, g := range sof.Allocate(reqs) {
			if g >= 0 {
				totOF++
			}
		}
	}
	if totIF <= totOF {
		t.Fatalf("sep_if (%d) should outperform sep_of (%d) for VC allocation", totIF, totOF)
	}
}

func TestVCAllocatorFairness(t *testing.T) {
	// Two input VCs at different ports persistently contending for a
	// single-VC class must alternate grants.
	spec := NewVCSpec(1, 1, 1)
	p := 3
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		a := NewVCAllocator(VCAllocConfig{Ports: p, Spec: spec, Arch: arch, ArbKind: arbiter.RoundRobin})
		reqs := make([]VCRequest, p)
		reqs[0] = VCRequest{Active: true, OutPort: 2, Candidates: spec.ClassMask(0, 0)}
		reqs[1] = VCRequest{Active: true, OutPort: 2, Candidates: spec.ClassMask(0, 0)}
		counts := [2]int{}
		for k := 0; k < 100; k++ {
			grants := a.Allocate(reqs)
			for i := 0; i < 2; i++ {
				if grants[i] >= 0 {
					counts[i]++
				}
			}
		}
		if counts[0]+counts[1] != 100 {
			t.Fatalf("%s: every cycle should produce exactly one grant, got %v", a.Name(), counts)
		}
		// Separable allocators with iSLIP-style updates alternate exactly;
		// the wavefront allocator only guarantees weak fairness via its
		// rotating diagonal (§2.2), so require only absence of starvation.
		minShare := 40
		if arch == alloc.Wavefront {
			minShare = 20
		}
		if counts[0] < minShare || counts[1] < minShare {
			t.Errorf("%s: unfair grant distribution %v", a.Name(), counts)
		}
	}
}

func TestVCAllocatorReset(t *testing.T) {
	spec := NewVCSpec(2, 1, 2)
	p := 4
	for _, cfg := range vcConfigs(p, spec) {
		a := NewVCAllocator(cfg)
		rng := xrand.New(71)
		reqs := randomVCRequests(rng, p, spec, 0.8)
		first := append([]int(nil), a.Allocate(reqs)...)
		a.Allocate(reqs)
		a.Reset()
		again := a.Allocate(reqs)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("%s: Reset did not restore initial decisions (idx %d: %d vs %d)",
					a.Name(), i, first[i], again[i])
			}
		}
	}
}

func TestCheckVCGrantsDetectsViolations(t *testing.T) {
	spec := NewVCSpec(1, 1, 2)
	v := spec.V()
	p := 2
	reqs := make([]VCRequest, p*v)
	reqs[0] = VCRequest{Active: true, OutPort: 1, Candidates: spec.ClassMask(0, 0)}
	reqs[1] = VCRequest{Active: true, OutPort: 1, Candidates: spec.ClassMask(0, 0)}

	grants := make([]int, p*v)
	for i := range grants {
		grants[i] = -1
	}
	// Grant to inactive input.
	grants[2] = 1 * v
	if CheckVCGrants(p, spec, reqs, grants) == nil {
		t.Error("grant to inactive input not detected")
	}
	grants[2] = -1
	// Wrong port.
	grants[0] = 0*v + 0
	if CheckVCGrants(p, spec, reqs, grants) == nil {
		t.Error("wrong-port grant not detected")
	}
	// Duplicate output VC.
	grants[0] = 1*v + 0
	grants[1] = 1*v + 0
	if CheckVCGrants(p, spec, reqs, grants) == nil {
		t.Error("duplicate output VC not detected")
	}
	// Valid assignment passes.
	grants[1] = 1*v + 1
	if err := CheckVCGrants(p, spec, reqs, grants); err != nil {
		t.Errorf("valid grants rejected: %v", err)
	}
}

func BenchmarkVCAllocMeshSepIF(b *testing.B) { benchVC(b, 5, NewVCSpec(2, 1, 4), alloc.SepIF, false) }
func BenchmarkVCAllocMeshWavefront(b *testing.B) {
	benchVC(b, 5, NewVCSpec(2, 1, 4), alloc.Wavefront, false)
}
func BenchmarkVCAllocFbflySepIFSparse(b *testing.B) {
	benchVC(b, 10, NewVCSpec(2, 2, 4), alloc.SepIF, true)
}

func benchVC(b *testing.B, p int, spec VCSpec, arch alloc.Arch, sparse bool) {
	a := NewVCAllocator(VCAllocConfig{Ports: p, Spec: spec, Arch: arch, ArbKind: arbiter.RoundRobin, Sparse: sparse})
	rng := xrand.New(1)
	reqs := randomVCRequests(rng, p, spec, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(reqs)
	}
}
