// Package core implements the contributions of Becker & Dally (SC '09):
// virtual-channel and switch allocator microarchitectures for input-queued
// VC routers, the sparse VC allocation scheme of §4.2, and the conventional
// and pessimistic speculative switch allocation mechanisms of §5.2.
//
// The package separates three concerns that the paper evaluates jointly:
//
//   - VCSpec describes how a router's V virtual channels decompose into
//     message classes, resource classes, and VCs per class (V = M·R·C) and
//     which VC-to-VC transitions are legal (Fig. 4).
//   - VCAllocator assigns output VCs to head flits (Fig. 3), either with
//     dense (uniform) logic or with the sparse scheme that statically
//     exploits the transition structure.
//   - SwitchAllocator schedules buffered flits onto crossbar time slots
//     (Fig. 8), optionally with speculative requests masked by one of the
//     two schemes in Fig. 9.
package core

import (
	"fmt"

	"repro/internal/bitvec"
)

// VCSpec describes the virtual-channel organization of a router:
// V = MessageClasses × ResourceClasses × VCsPerClass.
//
// A VC's global index is ((m·R)+r)·C + c for message class m, resource class
// r and intra-class index c, so VCs of the same class are contiguous.
type VCSpec struct {
	// MessageClasses (M) partition traffic by packet type (e.g. request
	// vs reply) to avoid protocol deadlock. A packet's message class never
	// changes in the network.
	MessageClasses int
	// ResourceClasses (R) partition each message class to break cyclic
	// resource dependencies (e.g. dateline or the two UGAL phases). A
	// packet's resource class may change, but only along ResourceSucc.
	ResourceClasses int
	// VCsPerClass (C) is the number of interchangeable VCs in each
	// (message, resource) class.
	VCsPerClass int
	// ResourceSucc[r] lists the resource classes a packet currently in
	// class r may occupy at the next hop (including r itself if allowed).
	// If nil, DefaultSuccessors is used.
	ResourceSucc [][]int
}

// NewVCSpec returns a spec with M message classes, R resource classes, C VCs
// per class and the default monotonic successor relation.
func NewVCSpec(m, r, c int) VCSpec {
	s := VCSpec{MessageClasses: m, ResourceClasses: r, VCsPerClass: c}
	s.ResourceSucc = DefaultSuccessors(r)
	return s
}

// DefaultSuccessors returns the monotonic successor relation used by
// dateline and two-phase (Valiant/UGAL) routing schemes: class r may stay in
// r or advance to r+1; the final class only stays. For R = 1 this is the
// identity.
func DefaultSuccessors(r int) [][]int {
	succ := make([][]int, r)
	for i := range succ {
		if i+1 < r {
			succ[i] = []int{i, i + 1}
		} else {
			succ[i] = []int{i}
		}
	}
	return succ
}

// Validate reports an error if the spec is malformed.
func (s VCSpec) Validate() error {
	if s.MessageClasses <= 0 || s.ResourceClasses <= 0 || s.VCsPerClass <= 0 {
		return fmt.Errorf("core: VCSpec dimensions must be positive, got %dx%dx%d",
			s.MessageClasses, s.ResourceClasses, s.VCsPerClass)
	}
	if s.ResourceSucc != nil {
		if len(s.ResourceSucc) != s.ResourceClasses {
			return fmt.Errorf("core: ResourceSucc has %d entries, want %d",
				len(s.ResourceSucc), s.ResourceClasses)
		}
		for r, succ := range s.ResourceSucc {
			for _, n := range succ {
				if n < 0 || n >= s.ResourceClasses {
					return fmt.Errorf("core: ResourceSucc[%d] contains invalid class %d", r, n)
				}
			}
		}
	}
	return nil
}

// V returns the total number of VCs, M·R·C.
func (s VCSpec) V() int { return s.MessageClasses * s.ResourceClasses * s.VCsPerClass }

// Classes returns the number of (message, resource) classes, M·R.
func (s VCSpec) Classes() int { return s.MessageClasses * s.ResourceClasses }

// String renders the spec in the paper's MxRxC notation.
func (s VCSpec) String() string {
	return fmt.Sprintf("%dx%dx%d", s.MessageClasses, s.ResourceClasses, s.VCsPerClass)
}

// VCIndex returns the global VC index for (message class m, resource class
// r, intra-class index c).
func (s VCSpec) VCIndex(m, r, c int) int {
	if m < 0 || m >= s.MessageClasses || r < 0 || r >= s.ResourceClasses || c < 0 || c >= s.VCsPerClass {
		panic(fmt.Sprintf("core: VC coordinate (%d,%d,%d) out of range for %s", m, r, c, s))
	}
	return (m*s.ResourceClasses+r)*s.VCsPerClass + c
}

// Decompose splits a global VC index into (message class, resource class,
// intra-class index).
func (s VCSpec) Decompose(vc int) (m, r, c int) {
	if vc < 0 || vc >= s.V() {
		panic(fmt.Sprintf("core: VC index %d out of range for %s", vc, s))
	}
	c = vc % s.VCsPerClass
	cls := vc / s.VCsPerClass
	r = cls % s.ResourceClasses
	m = cls / s.ResourceClasses
	return
}

// ClassOf returns the (message, resource) class index of vc, in [0, M·R).
func (s VCSpec) ClassOf(vc int) int { return vc / s.VCsPerClass }

// ClassIndex returns the class index for message class m and resource class r.
func (s VCSpec) ClassIndex(m, r int) int {
	if m < 0 || m >= s.MessageClasses || r < 0 || r >= s.ResourceClasses {
		panic(fmt.Sprintf("core: class coordinate (%d,%d) out of range for %s", m, r, s))
	}
	return m*s.ResourceClasses + r
}

func (s VCSpec) successors(r int) []int {
	if s.ResourceSucc == nil {
		if r+1 < s.ResourceClasses {
			return []int{r, r + 1}
		}
		return []int{r}
	}
	return s.ResourceSucc[r]
}

// LegalTransition reports whether a packet occupying input VC `from` may
// acquire output VC `to` at the next router: the message class must match
// and the resource class of `to` must be a successor of `from`'s.
func (s VCSpec) LegalTransition(from, to int) bool {
	fm, fr, _ := s.Decompose(from)
	tm, tr, _ := s.Decompose(to)
	if fm != tm {
		return false
	}
	for _, r := range s.successors(fr) {
		if r == tr {
			return true
		}
	}
	return false
}

// TransitionMatrix returns the V×V matrix of legal VC-to-VC transitions
// (rows: input VC, columns: output VC). This is the matrix shown in Fig. 4
// of the paper; for the fbfly 2×2×4 configuration exactly 96 of the 256
// entries are set.
func (s VCSpec) TransitionMatrix() *bitvec.Matrix {
	v := s.V()
	m := bitvec.NewMatrix(v, v)
	for from := 0; from < v; from++ {
		for to := 0; to < v; to++ {
			if s.LegalTransition(from, to) {
				m.Set(from, to)
			}
		}
	}
	return m
}

// CountLegalTransitions returns the number of legal VC-to-VC transitions,
// i.e. the population count of TransitionMatrix.
func (s VCSpec) CountLegalTransitions() int { return s.TransitionMatrix().Count() }

// ClassMask returns a V-wide bit vector selecting the VCs of class
// (m, r).
func (s VCSpec) ClassMask(m, r int) *bitvec.Vec {
	v := bitvec.New(s.V())
	base := s.ClassIndex(m, r) * s.VCsPerClass
	for c := 0; c < s.VCsPerClass; c++ {
		v.Set(base + c)
	}
	return v
}

// SuccessorMask returns a V-wide bit vector of the output VCs an input VC
// may legally transition to.
func (s VCSpec) SuccessorMask(vc int) *bitvec.Vec {
	m, r, _ := s.Decompose(vc)
	v := bitvec.New(s.V())
	for _, nr := range s.successors(r) {
		base := s.ClassIndex(m, nr) * s.VCsPerClass
		for c := 0; c < s.VCsPerClass; c++ {
			v.Set(base + c)
		}
	}
	return v
}

// MaxSuccessorsPerVC returns the maximum number of legal successor VCs over
// all input VCs; for the fbfly 2×2×4 configuration this is 8 (paper §4.2).
func (s VCSpec) MaxSuccessorsPerVC() int {
	best := 0
	for vc := 0; vc < s.V(); vc++ {
		if n := s.SuccessorMask(vc).Count(); n > best {
			best = n
		}
	}
	return best
}

// PredecessorCount returns the number of distinct input-VC resource classes
// that may transition into resource class r (used to size sparse output-side
// arbiters, §4.2).
func (s VCSpec) PredecessorCount(r int) int {
	n := 0
	for p := 0; p < s.ResourceClasses; p++ {
		for _, q := range s.successors(p) {
			if q == r {
				n++
				break
			}
		}
	}
	return n
}

// MaxSuccessorClasses returns the maximum number of successor resource
// classes over all resource classes.
func (s VCSpec) MaxSuccessorClasses() int {
	best := 0
	for r := 0; r < s.ResourceClasses; r++ {
		if n := len(s.successors(r)); n > best {
			best = n
		}
	}
	return best
}

// MaxPredecessorClasses returns the maximum number of predecessor resource
// classes over all resource classes.
func (s VCSpec) MaxPredecessorClasses() int {
	best := 0
	for r := 0; r < s.ResourceClasses; r++ {
		if n := s.PredecessorCount(r); n > best {
			best = n
		}
	}
	return best
}
