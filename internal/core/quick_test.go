package core

import (
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/xrand"
)

// Property-based tests: arbitrary request streams must never produce an
// invalid allocation, for every architecture and scheme combination.

// quickVCRequests decodes a compact byte string into a legal VC request set
// for a P=4, 2x2x2 router.
func quickVCRequests(spec VCSpec, raw []byte) []VCRequest {
	const p = 4
	v := spec.V()
	reqs := make([]VCRequest, p*v)
	for i := range reqs {
		if i >= len(raw) || raw[i]%3 == 0 { // ~2/3 active
			continue
		}
		vc := i % v
		m, r, _ := spec.Decompose(vc)
		succ := spec.ResourceSucc[r]
		nr := succ[int(raw[i]/3)%len(succ)]
		reqs[i] = VCRequest{
			Active:     true,
			OutPort:    int(raw[i]) % p,
			Candidates: spec.ClassMask(m, nr),
		}
	}
	return reqs
}

func TestQuickVCAllocatorsAlwaysValid(t *testing.T) {
	spec := NewVCSpec(2, 2, 2)
	allocators := []VCAllocator{}
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		for _, sparse := range []bool{false, true} {
			allocators = append(allocators, NewVCAllocator(VCAllocConfig{
				Ports: 4, Spec: spec, Arch: arch, ArbKind: arbiter.Matrix, Sparse: sparse,
			}))
		}
	}
	allocators = append(allocators, NewVCAllocator(VCAllocConfig{
		Ports: 4, Spec: spec, ArbKind: arbiter.RoundRobin, FreeQueue: true,
	}))
	f := func(raw []byte) bool {
		reqs := quickVCRequests(spec, raw)
		for _, a := range allocators {
			if err := CheckVCGrants(4, spec, reqs, a.Allocate(reqs)); err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSwitchAllocatorsAlwaysValid(t *testing.T) {
	const p, v = 4, 4
	allocators := []SwitchAllocator{}
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront, alloc.Maximum} {
		for _, mode := range []SpecMode{SpecNone, SpecGnt, SpecReq} {
			allocators = append(allocators, NewSwitchAllocator(SwitchAllocConfig{
				Ports: p, VCs: v, Arch: arch, ArbKind: arbiter.RoundRobin, SpecMode: mode,
			}))
		}
	}
	allocators = append(allocators, NewSwitchAllocator(SwitchAllocConfig{
		Ports: p, VCs: v, Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin, Precomputed: true,
	}))
	f := func(raw []byte) bool {
		reqs := make([]SwitchRequest, p*v)
		for i := range reqs {
			if i >= len(raw) || raw[i]%4 == 0 {
				continue
			}
			reqs[i] = SwitchRequest{
				Active:  true,
				OutPort: int(raw[i]) % p,
				Spec:    raw[i]%4 == 1,
			}
		}
		for _, a := range allocators {
			if err := CheckSwitchGrants(p, v, reqs, a.Allocate(reqs)); err != nil {
				t.Logf("%s: %v", a.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: grants are work-conserving at the port level for non-spec
// separable input-first allocation — if exactly one input VC in the whole
// router requests, it is granted.
func TestQuickSoleRequesterAlwaysGranted(t *testing.T) {
	const p, v = 5, 4
	archs := []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront}
	f := func(idxRaw, portRaw uint8) bool {
		idx := int(idxRaw) % (p * v)
		outPort := int(portRaw) % p
		reqs := make([]SwitchRequest, p*v)
		reqs[idx] = SwitchRequest{Active: true, OutPort: outPort}
		for _, arch := range archs {
			a := NewSwitchAllocator(SwitchAllocConfig{Ports: p, VCs: v, Arch: arch,
				ArbKind: arbiter.RoundRobin, SpecMode: SpecNone})
			g := a.Allocate(reqs)
			if g[idx/v].OutPort != outPort || g[idx/v].VC != idx%v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated allocation with a fixed request set never starves any
// requester across the separable and free-queue VC allocators.
func TestQuickVCNoStarvationUnderPersistentRequests(t *testing.T) {
	spec := NewVCSpec(1, 1, 2)
	const p = 3
	rng := xrand.New(991)
	for trial := 0; trial < 30; trial++ {
		reqs := make([]VCRequest, p*spec.V())
		requesters := []int{}
		for i := range reqs {
			if rng.Bool(0.6) {
				reqs[i] = VCRequest{Active: true, OutPort: rng.Intn(p), Candidates: spec.ClassMask(0, 0)}
				requesters = append(requesters, i)
			}
		}
		if len(requesters) == 0 {
			continue
		}
		for _, cfg := range []VCAllocConfig{
			{Ports: p, Spec: spec, Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin},
			{Ports: p, Spec: spec, Arch: alloc.SepOF, ArbKind: arbiter.RoundRobin},
			{Ports: p, Spec: spec, ArbKind: arbiter.RoundRobin, FreeQueue: true},
		} {
			a := NewVCAllocator(cfg)
			served := map[int]bool{}
			for cycle := 0; cycle < 100; cycle++ {
				grants := a.Allocate(reqs)
				for _, i := range requesters {
					if grants[i] >= 0 {
						served[i] = true
					}
				}
			}
			for _, i := range requesters {
				if !served[i] {
					t.Fatalf("%s: requester %d starved over 100 cycles (trial %d)",
						a.Name(), i, trial)
				}
			}
		}
	}
}
