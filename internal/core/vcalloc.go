package core

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/bitvec"
)

// VCRequest is one input VC's request to the VC allocator for a given cycle.
// A request is issued on behalf of the head flit buffered at the input VC:
// it names the output port selected by the routing function and the set of
// candidate output VCs at that port (already masked by routing legality and
// downstream availability).
type VCRequest struct {
	// Active indicates a head flit is waiting for an output VC.
	Active bool
	// OutPort is the output port selected by the routing function.
	OutPort int
	// Candidates selects the output VCs at OutPort that may be assigned.
	// Its width is the router's V. Inactive requests may leave it nil.
	Candidates *bitvec.Vec
}

// VCAllocator assigns output VCs to requesting input VCs, at most one output
// VC per input VC and at most one input VC per output VC (paper §4).
type VCAllocator interface {
	// Ports returns the router port count P.
	Ports() int
	// VCs returns the per-port VC count V.
	VCs() int
	// Allocate computes a VC assignment for one cycle. reqs is indexed by
	// global input VC p·V+v and must have length P·V. The returned slice,
	// also indexed by global input VC, holds the granted global output VC
	// (o·V+v') or -1; it is owned by the allocator and valid until the next
	// call.
	Allocate(reqs []VCRequest) []int
	// Reset restores initial arbitration state.
	Reset()
	// Name returns the paper-style identifier, e.g. "sep_if/rr" or
	// "wf/rr (sparse)".
	Name() string
}

// VCAllocConfig parameterizes VC allocator construction.
type VCAllocConfig struct {
	// Ports is the router radix P.
	Ports int
	// Spec describes the VC organization (V = M·R·C).
	Spec VCSpec
	// Arch selects the allocator architecture: alloc.SepIF, alloc.SepOF or
	// alloc.Wavefront.
	Arch alloc.Arch
	// ArbKind selects the arbiter implementation for separable
	// architectures.
	ArbKind arbiter.Kind
	// Sparse enables the sparse VC allocation scheme of §4.2: the allocator
	// is partitioned into one independent sub-allocator per message class.
	Sparse bool
	// FreeQueue selects the free-VC-queue scheme of Mullins et al. [15]
	// instead of a matching allocator: one FIFO of free VCs per
	// (port, class), a single arbitration per queue per cycle. Arch and
	// Sparse are ignored when set.
	FreeQueue bool
}

// NewVCAllocator builds a VC allocator.
func NewVCAllocator(cfg VCAllocConfig) VCAllocator {
	if cfg.FreeQueue {
		return NewFreeQueueVCAllocator(cfg)
	}
	if cfg.Ports <= 0 {
		panic("core: Ports must be positive")
	}
	if err := cfg.Spec.Validate(); err != nil {
		panic(err)
	}
	v := cfg.Spec.V()
	name := cfg.Arch.String()
	if cfg.Arch != alloc.Wavefront {
		name += "/" + cfg.ArbKind.String()
	} else {
		name += "/rr"
	}
	a := &vcAllocator{
		ports: cfg.Ports,
		v:     v,
		name:  name,
	}
	if cfg.Sparse {
		a.name += " (sparse)"
		perClass := cfg.Spec.ResourceClasses * cfg.Spec.VCsPerClass
		for m := 0; m < cfg.Spec.MessageClasses; m++ {
			a.engines = append(a.engines, newVCEngine(cfg, m*perClass, perClass))
		}
	} else {
		a.engines = append(a.engines, newVCEngine(cfg, 0, v))
	}
	a.grants = make([]int, cfg.Ports*v)
	return a
}

// vcAllocator dispatches requests to one engine (dense) or one engine per
// message class (sparse). Because packets never change message class, the
// sparse decomposition loses no matching opportunities (paper §4.2).
type vcAllocator struct {
	ports, v int
	name     string
	engines  []*vcEngine
	grants   []int
}

func (a *vcAllocator) Ports() int   { return a.ports }
func (a *vcAllocator) VCs() int     { return a.v }
func (a *vcAllocator) Name() string { return a.name }

func (a *vcAllocator) Reset() {
	for _, e := range a.engines {
		e.reset()
	}
}

// SkipIdle implements alloc.IdleSkipper: wavefront engines rotate their
// priority diagonal on every Allocate call, including request-free cycles,
// so skipped idle cycles must be replayed into them. Separable engines only
// update arbiter priority on grants and need no catch-up.
func (a *vcAllocator) SkipIdle(idleCycles int64) {
	for _, e := range a.engines {
		if s, ok := e.wf.(alloc.IdleSkipper); ok {
			s.SkipIdle(idleCycles)
		}
	}
}

func (a *vcAllocator) Allocate(reqs []VCRequest) []int {
	if len(reqs) != a.ports*a.v {
		panic(fmt.Sprintf("core: %d VC requests, want %d", len(reqs), a.ports*a.v))
	}
	for i := range a.grants {
		a.grants[i] = -1
	}
	for _, e := range a.engines {
		e.allocate(reqs, a.grants)
	}
	return a.grants
}

// vcEngine performs VC allocation over the VC index range [off, off+w) at
// every port. A dense allocator uses a single engine covering all V VCs; the
// sparse scheme instantiates one engine per message class.
type vcEngine struct {
	cfg    VCAllocConfig
	off, w int

	arch alloc.Arch

	// Separable state. Input arbiters select among the w candidate output
	// VCs of an input VC; output arbiters select among the P·w input VCs of
	// this engine bidding for an output VC. Output-side arbitration uses
	// tree arbiters (a stage of w-input arbiters under a P-input arbiter),
	// matching the structure suggested in §4.1.
	inArb  []arbiter.Arbiter // per input VC in range, width w
	outArb []arbiter.Arbiter // per output VC in range, width P·w

	// Wavefront state.
	wf    alloc.Allocator
	wfReq *bitvec.Matrix

	// Scratch.
	cand    *bitvec.Vec   // w wide
	bids    []*bitvec.Vec // per output VC in range, P·w wide (sep_if stage 2)
	bidsAny *bitvec.Vec   // output VCs with at least one bid (sep_if)
	bidVC   []int         // per input VC in range: chosen local candidate (sep_if)
	offers  []*bitvec.Vec // per input VC in range, w wide (sep_of stage 2)
	offAny  *bitvec.Vec   // input VCs with at least one offer (sep_of)
	reqTo   []*bitvec.Vec // per output VC in range, P·w wide (sep_of stage 1)
	outAny  *bitvec.Vec   // output VCs whose reqTo vector is dirty (sep_of)
	wfRows  *bitvec.Vec   // rows of wfReq that are dirty (wavefront)
}

func newVCEngine(cfg VCAllocConfig, off, w int) *vcEngine {
	p := cfg.Ports
	e := &vcEngine{cfg: cfg, off: off, w: w, arch: cfg.Arch}
	switch cfg.Arch {
	case alloc.SepIF:
		e.inArb = make([]arbiter.Arbiter, p*w)
		e.outArb = make([]arbiter.Arbiter, p*w)
		e.bids = make([]*bitvec.Vec, p*w)
		e.bidsAny = bitvec.New(p * w)
		e.bidVC = make([]int, p*w)
		for i := range e.inArb {
			e.inArb[i] = arbiter.New(cfg.ArbKind, w)
			e.outArb[i] = arbiter.NewTree(cfg.ArbKind, p, w)
			e.bids[i] = bitvec.New(p * w)
		}
	case alloc.SepOF:
		e.inArb = make([]arbiter.Arbiter, p*w)
		e.outArb = make([]arbiter.Arbiter, p*w)
		e.offers = make([]*bitvec.Vec, p*w)
		e.offAny = bitvec.New(p * w)
		e.reqTo = make([]*bitvec.Vec, p*w)
		e.outAny = bitvec.New(p * w)
		for i := range e.inArb {
			e.inArb[i] = arbiter.New(cfg.ArbKind, w)
			e.outArb[i] = arbiter.NewTree(cfg.ArbKind, p, w)
			e.offers[i] = bitvec.New(w)
			e.reqTo[i] = bitvec.New(p * w)
		}
	case alloc.Wavefront:
		e.wf = alloc.NewWavefront(p*w, p*w)
		e.wfReq = bitvec.NewMatrix(p*w, p*w)
		e.wfRows = bitvec.New(p * w)
	default:
		panic(fmt.Sprintf("core: unsupported VC allocator arch %v", cfg.Arch))
	}
	e.cand = bitvec.New(w)
	return e
}

func (e *vcEngine) reset() {
	for _, a := range e.inArb {
		a.Reset()
	}
	for _, a := range e.outArb {
		a.Reset()
	}
	if e.wf != nil {
		e.wf.Reset()
	}
}

// inRange reports whether the request's candidates intersect this engine's
// VC range, loading the compact candidate vector into e.cand.
func (e *vcEngine) loadCandidates(r VCRequest) bool {
	if !r.Active || r.Candidates == nil {
		return false
	}
	return e.cand.SliceFrom(r.Candidates, e.off)
}

// local index helpers: engine-local input/output VC index is p·w + (v-off).
func (e *vcEngine) local(p, v int) int      { return p*e.w + (v - e.off) }
func (e *vcEngine) global(l int) (p, v int) { return l / e.w, e.off + l%e.w }

func (e *vcEngine) allocate(reqs []VCRequest, grants []int) {
	switch e.arch {
	case alloc.SepIF:
		e.allocateSepIF(reqs, grants)
	case alloc.SepOF:
		e.allocateSepOF(reqs, grants)
	case alloc.Wavefront:
		e.allocateWavefront(reqs, grants)
	}
}

// allocateSepIF implements Fig. 3(a): each input VC first arbitrates among
// its candidate output VCs, then each output VC arbitrates among incoming
// bids with a P·w-input tree arbiter. Input arbiters update priority only
// when the bid wins output arbitration.
func (e *vcEngine) allocateSepIF(reqs []VCRequest, grants []int) {
	p, v := e.cfg.Ports, e.cfg.Spec.V()
	// Clear only the bid vectors dirtied by the previous cycle.
	for lo := e.bidsAny.NextSet(0); lo >= 0; lo = e.bidsAny.NextSet(lo + 1) {
		e.bids[lo].Reset()
	}
	e.bidsAny.Reset()
	// Stage 1: input-side arbitration.
	for port := 0; port < p; port++ {
		for vc := e.off; vc < e.off+e.w; vc++ {
			gi := port*v + vc
			li := e.local(port, vc)
			e.bidVC[li] = -1
			r := reqs[gi]
			if !e.loadCandidates(r) {
				continue
			}
			c := e.inArb[li].Pick(e.cand)
			if c < 0 {
				continue
			}
			e.bidVC[li] = c
			lo := r.OutPort*e.w + c
			e.bids[lo].Set(li)
			e.bidsAny.Set(lo)
		}
	}
	// Stage 2: output-side arbitration at the output VCs that received bids.
	for lo := e.bidsAny.NextSet(0); lo >= 0; lo = e.bidsAny.NextSet(lo + 1) {
		winner := e.outArb[lo].Pick(e.bids[lo])
		if winner < 0 {
			continue
		}
		wp, wv := e.global(winner)
		oPort, oc := lo/e.w, lo%e.w
		grants[wp*v+wv] = oPort*v + (e.off + oc)
		e.outArb[lo].Update(winner)
		e.inArb[winner].Update(e.bidVC[winner])
	}
}

// allocateSepOF implements Fig. 3(b): each output VC first arbitrates among
// all requesting input VCs, then each input VC that received one or more
// offers picks a winner. Output arbiters update priority only when their
// offer is accepted.
func (e *vcEngine) allocateSepOF(reqs []VCRequest, grants []int) {
	p, v := e.cfg.Ports, e.cfg.Spec.V()
	// Clear the vectors dirtied by the previous cycle.
	for lo := e.outAny.NextSet(0); lo >= 0; lo = e.outAny.NextSet(lo + 1) {
		e.reqTo[lo].Reset()
	}
	e.outAny.Reset()
	for li := e.offAny.NextSet(0); li >= 0; li = e.offAny.NextSet(li + 1) {
		e.offers[li].Reset()
	}
	e.offAny.Reset()
	// Gather: transpose each input VC's candidate set into per-output-VC
	// request vectors, replacing the per-output scan over all input VCs.
	for port := 0; port < p; port++ {
		for vc := e.off; vc < e.off+e.w; vc++ {
			r := reqs[port*v+vc]
			if !e.loadCandidates(r) {
				continue
			}
			li := e.local(port, vc)
			base := r.OutPort * e.w
			for c := e.cand.NextSet(0); c >= 0; c = e.cand.NextSet(c + 1) {
				e.reqTo[base+c].Set(li)
				e.outAny.Set(base + c)
			}
		}
	}
	// Stage 1: output-side arbitration at every requested output VC.
	for lo := e.outAny.NextSet(0); lo >= 0; lo = e.outAny.NextSet(lo + 1) {
		winner := e.outArb[lo].Pick(e.reqTo[lo])
		if winner < 0 {
			continue
		}
		e.offers[winner].Set(lo % e.w)
		e.offAny.Set(winner)
	}
	// Stage 2: input-side arbitration among offered output VCs.
	for li := e.offAny.NextSet(0); li >= 0; li = e.offAny.NextSet(li + 1) {
		c := e.inArb[li].Pick(e.offers[li])
		if c < 0 {
			continue
		}
		wp, wv := e.global(li)
		oPort := reqs[wp*v+wv].OutPort
		grants[wp*v+wv] = oPort*v + (e.off + c)
		e.inArb[li].Update(c)
		e.outArb[oPort*e.w+c].Update(li)
	}
}

// allocateWavefront implements Fig. 3(c): a (P·w)×(P·w) wavefront allocator
// over the full request matrix.
func (e *vcEngine) allocateWavefront(reqs []VCRequest, grants []int) {
	p, v := e.cfg.Ports, e.cfg.Spec.V()
	// Clear only the request rows dirtied by the previous cycle.
	for row := e.wfRows.NextSet(0); row >= 0; row = e.wfRows.NextSet(row + 1) {
		e.wfReq.Row(row).Reset()
	}
	e.wfRows.Reset()
	for port := 0; port < p; port++ {
		for vc := e.off; vc < e.off+e.w; vc++ {
			r := reqs[port*v+vc]
			if !e.loadCandidates(r) {
				continue
			}
			row := e.local(port, vc)
			e.wfRows.Set(row)
			base := r.OutPort * e.w
			wfRow := e.wfReq.Row(row)
			for c := e.cand.NextSet(0); c >= 0; c = e.cand.NextSet(c + 1) {
				wfRow.Set(base + c)
			}
		}
	}
	g := e.wf.Allocate(e.wfReq)
	// Grants are a subset of requests, so only dirty rows can hold one.
	for row := e.wfRows.NextSet(0); row >= 0; row = e.wfRows.NextSet(row + 1) {
		gRow := g.Row(row)
		if col := gRow.NextSet(0); col >= 0 {
			ip, iv := e.global(row)
			oPort, oc := col/e.w, col%e.w
			grants[ip*v+iv] = oPort*v + (e.off + oc)
		}
	}
}

// CheckVCGrants validates a VC allocation result against its requests:
// every grant must correspond to an active request, name a candidate output
// VC at the requested port, and no output VC may be granted twice. It
// returns an error describing the first violation found.
func CheckVCGrants(p int, spec VCSpec, reqs []VCRequest, grants []int) error {
	v := spec.V()
	seen := make(map[int]int)
	for gi, g := range grants {
		if g < 0 {
			continue
		}
		r := reqs[gi]
		if !r.Active {
			return fmt.Errorf("core: grant %d to inactive input VC %d", g, gi)
		}
		oPort, ovc := g/v, g%v
		if oPort != r.OutPort {
			return fmt.Errorf("core: input VC %d granted port %d, requested %d", gi, oPort, r.OutPort)
		}
		if r.Candidates == nil || !r.Candidates.Get(ovc) {
			return fmt.Errorf("core: input VC %d granted non-candidate output VC %d", gi, ovc)
		}
		if prev, dup := seen[g]; dup {
			return fmt.Errorf("core: output VC %d granted to both input VC %d and %d", g, prev, gi)
		}
		seen[g] = gi
	}
	return nil
}
