package core

import (
	"fmt"
	"math/bits"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/bitvec"
)

// VCRequest is one input VC's request to the VC allocator for a given cycle.
// A request is issued on behalf of the head flit buffered at the input VC:
// it names the output port selected by the routing function and the set of
// candidate output VCs at that port (already masked by routing legality and
// downstream availability).
type VCRequest struct {
	// Active indicates a head flit is waiting for an output VC.
	Active bool
	// OutPort is the output port selected by the routing function.
	OutPort int
	// Candidates selects the output VCs at OutPort that may be assigned.
	// Its width is the router's V. Inactive requests may leave it nil.
	Candidates *bitvec.Vec
}

// VCAllocator assigns output VCs to requesting input VCs, at most one output
// VC per input VC and at most one input VC per output VC (paper §4).
type VCAllocator interface {
	// Ports returns the router port count P.
	Ports() int
	// VCs returns the per-port VC count V.
	VCs() int
	// Allocate computes a VC assignment for one cycle. reqs is indexed by
	// global input VC p·V+v and must have length P·V. The returned slice,
	// also indexed by global input VC, holds the granted global output VC
	// (o·V+v') or -1; it is owned by the allocator and valid until the next
	// call.
	//
	// Request-slice contract: reqs and the Candidates vectors it points to
	// are read-only inputs owned by the caller, who may reuse the same
	// backing storage — with only changed entries rewritten — on every
	// call (the router's change-driven request cache does exactly that).
	// Implementations must not mutate them and must not retain references
	// past the call's return; any cross-cycle state they keep must be
	// derived by value, as the free-queue allocator's noteFreed does.
	Allocate(reqs []VCRequest) []int
	// Reset restores initial arbitration state.
	Reset()
	// Name returns the paper-style identifier, e.g. "sep_if/rr" or
	// "wf/rr (sparse)".
	Name() string
}

// MaskedVCAllocator is implemented by VC allocators that cache derived
// request state across cycles. AllocateMasked behaves exactly like Allocate,
// but the caller additionally passes the set of request indices whose entries
// it rewrote since the previous call (Allocate or AllocateMasked); the
// allocator refreshes only the cached state derived from those entries. The
// two entry points may be mixed freely — a plain Allocate call resynchronizes
// the cache from the full slice. Grants are bit-identical either way.
type MaskedVCAllocator interface {
	VCAllocator
	AllocateMasked(reqs []VCRequest, changed *bitvec.Vec) []int
}

// VCAllocConfig parameterizes VC allocator construction.
type VCAllocConfig struct {
	// Ports is the router radix P.
	Ports int
	// Spec describes the VC organization (V = M·R·C).
	Spec VCSpec
	// Arch selects the allocator architecture: alloc.SepIF, alloc.SepOF or
	// alloc.Wavefront.
	Arch alloc.Arch
	// ArbKind selects the arbiter implementation for separable
	// architectures.
	ArbKind arbiter.Kind
	// Sparse enables the sparse VC allocation scheme of §4.2: the allocator
	// is partitioned into one independent sub-allocator per message class.
	Sparse bool
	// FreeQueue selects the free-VC-queue scheme of Mullins et al. [15]
	// instead of a matching allocator: one FIFO of free VCs per
	// (port, class), a single arbitration per queue per cycle. Arch and
	// Sparse are ignored when set.
	FreeQueue bool
}

// NewVCAllocator builds a VC allocator.
func NewVCAllocator(cfg VCAllocConfig) VCAllocator {
	if cfg.FreeQueue {
		return NewFreeQueueVCAllocator(cfg)
	}
	if cfg.Ports <= 0 {
		panic("core: Ports must be positive")
	}
	if err := cfg.Spec.Validate(); err != nil {
		panic(err)
	}
	v := cfg.Spec.V()
	name := cfg.Arch.String()
	if cfg.Arch != alloc.Wavefront {
		name += "/" + cfg.ArbKind.String()
	} else {
		name += "/rr"
	}
	a := &vcAllocator{
		ports:  cfg.Ports,
		v:      v,
		name:   name,
		active: bitvec.New(cfg.Ports * v),
	}
	if cfg.Sparse {
		a.name += " (sparse)"
		perClass := cfg.Spec.ResourceClasses * cfg.Spec.VCsPerClass
		for m := 0; m < cfg.Spec.MessageClasses; m++ {
			a.engines = append(a.engines, newVCEngine(cfg, m*perClass, perClass))
		}
	} else {
		a.engines = append(a.engines, newVCEngine(cfg, 0, v))
	}
	a.grants = make([]int, cfg.Ports*v)
	return a
}

// vcAllocator dispatches requests to one engine (dense) or one engine per
// message class (sparse). Because packets never change message class, the
// sparse decomposition loses no matching opportunities (paper §4.2).
type vcAllocator struct {
	ports, v int
	name     string
	engines  []*vcEngine
	grants   []int

	// active caches which request indices carry an issuable request
	// (Active with a candidate vector). It is resynchronized from the full
	// slice on Allocate and from only the changed entries on AllocateMasked;
	// the engines iterate its set bits instead of scanning all P·V entries.
	active *bitvec.Vec
}

func (a *vcAllocator) Ports() int   { return a.ports }
func (a *vcAllocator) VCs() int     { return a.v }
func (a *vcAllocator) Name() string { return a.name }

func (a *vcAllocator) Reset() {
	for _, e := range a.engines {
		e.reset()
	}
}

// SkipIdle implements alloc.IdleSkipper: wavefront engines rotate their
// priority diagonal on every Allocate call, including request-free cycles,
// so skipped idle cycles must be replayed into them. Separable engines only
// update arbiter priority on grants and need no catch-up.
func (a *vcAllocator) SkipIdle(idleCycles int64) {
	for _, e := range a.engines {
		if s, ok := e.wf.(alloc.IdleSkipper); ok {
			s.SkipIdle(idleCycles)
		}
	}
}

func (a *vcAllocator) Allocate(reqs []VCRequest) []int {
	if len(reqs) != a.ports*a.v {
		panic(fmt.Sprintf("core: %d VC requests, want %d", len(reqs), a.ports*a.v))
	}
	for i, r := range reqs {
		a.noteRequest(i, r)
	}
	return a.run(reqs)
}

// AllocateMasked implements MaskedVCAllocator.
func (a *vcAllocator) AllocateMasked(reqs []VCRequest, changed *bitvec.Vec) []int {
	if len(reqs) != a.ports*a.v {
		panic(fmt.Sprintf("core: %d VC requests, want %d", len(reqs), a.ports*a.v))
	}
	for wi, w := range changed.Words() {
		for base := wi * 64; w != 0; w &= w - 1 {
			i := base + bits.TrailingZeros64(w)
			a.noteRequest(i, reqs[i])
		}
	}
	return a.run(reqs)
}

func (a *vcAllocator) noteRequest(i int, r VCRequest) {
	if r.Active && r.Candidates != nil {
		a.active.Set(i)
	} else {
		a.active.Clear(i)
	}
}

func (a *vcAllocator) run(reqs []VCRequest) []int {
	// Scan-and-clear: grants are sparse, so skip the store for entries
	// already at -1. The zero value is >= 0, so first use also clears.
	for i, g := range a.grants {
		if g >= 0 {
			a.grants[i] = -1
		}
	}
	for _, e := range a.engines {
		e.allocate(reqs, a.grants, a.active)
	}
	return a.grants
}

// vcEngine performs VC allocation over the VC index range [off, off+w) at
// every port. A dense allocator uses a single engine covering all V VCs; the
// sparse scheme instantiates one engine per message class.
type vcEngine struct {
	cfg    VCAllocConfig
	off, w int

	arch alloc.Arch

	// Separable state. Input arbiters select among the w candidate output
	// VCs of an input VC; output arbiters select among the P·w input VCs of
	// this engine bidding for an output VC. Output-side arbitration uses
	// tree arbiters (a stage of w-input arbiters under a P-input arbiter),
	// matching the structure suggested in §4.1.
	inArb  []arbiter.Arbiter // per input VC in range, width w
	outArb []arbiter.Arbiter // per output VC in range, width P·w

	// Wavefront state.
	wf    alloc.Allocator
	wfReq *bitvec.Matrix

	// Index tables hoisting the divides out of the per-request allocate
	// loops: liOf maps a global request index gi to this engine's local
	// index p·w + (vc-off), or -1 when gi's VC falls outside the window;
	// gIdx inverts it, mapping a local input or output index back to the
	// global VC index (port·V + off + local%w) used by the request and
	// grant slices.
	liOf []int32 // ports·V wide
	gIdx []int32 // p·w wide

	// Scratch.
	cand    *bitvec.Vec   // w wide
	bids    []*bitvec.Vec // per output VC in range, P·w wide (sep_if stage 2)
	bidsAny *bitvec.Vec   // output VCs with at least one bid (sep_if)
	bidVC   []int         // per input VC in range: chosen local candidate (sep_if)
	offers  []*bitvec.Vec // per input VC in range, w wide (sep_of stage 2)
	offAny  *bitvec.Vec   // input VCs with at least one offer (sep_of)
	reqTo   []*bitvec.Vec // per output VC in range, P·w wide (sep_of stage 1)
	outAny  *bitvec.Vec   // output VCs whose reqTo vector is dirty (sep_of)
	wfRows  *bitvec.Vec   // rows of wfReq that are dirty (wavefront)
}

func newVCEngine(cfg VCAllocConfig, off, w int) *vcEngine {
	p := cfg.Ports
	e := &vcEngine{cfg: cfg, off: off, w: w, arch: cfg.Arch}
	// outTree builds a P·w-input output-side arbiter. A tree with
	// single-input leaves degenerates to its root (the leaves can neither
	// change a pick nor hold meaningful priority state), so build the flat
	// root arbiter directly and skip a dispatch level on every pick.
	outTree := func() arbiter.Arbiter {
		if w == 1 {
			return arbiter.New(cfg.ArbKind, p)
		}
		return arbiter.NewTree(cfg.ArbKind, p, w)
	}
	switch cfg.Arch {
	case alloc.SepIF:
		e.inArb = make([]arbiter.Arbiter, p*w)
		e.outArb = make([]arbiter.Arbiter, p*w)
		e.bids = make([]*bitvec.Vec, p*w)
		e.bidsAny = bitvec.New(p * w)
		e.bidVC = make([]int, p*w)
		for i := range e.inArb {
			e.inArb[i] = arbiter.New(cfg.ArbKind, w)
			e.outArb[i] = outTree()
			e.bids[i] = bitvec.New(p * w)
		}
	case alloc.SepOF:
		e.inArb = make([]arbiter.Arbiter, p*w)
		e.outArb = make([]arbiter.Arbiter, p*w)
		e.offers = make([]*bitvec.Vec, p*w)
		e.offAny = bitvec.New(p * w)
		e.reqTo = make([]*bitvec.Vec, p*w)
		e.outAny = bitvec.New(p * w)
		for i := range e.inArb {
			e.inArb[i] = arbiter.New(cfg.ArbKind, w)
			e.outArb[i] = outTree()
			e.offers[i] = bitvec.New(w)
			e.reqTo[i] = bitvec.New(p * w)
		}
	case alloc.Wavefront:
		e.wf = alloc.NewWavefront(p*w, p*w)
		e.wfReq = bitvec.NewMatrix(p*w, p*w)
		e.wfRows = bitvec.New(p * w)
	default:
		panic(fmt.Sprintf("core: unsupported VC allocator arch %v", cfg.Arch))
	}
	v := cfg.Spec.V()
	e.liOf = make([]int32, p*v)
	for gi := range e.liOf {
		e.liOf[gi] = -1
		if vc := gi % v; e.inRange(vc) {
			e.liOf[gi] = int32(e.local(gi/v, vc))
		}
	}
	e.gIdx = make([]int32, p*w)
	for l := range e.gIdx {
		e.gIdx[l] = int32((l/w)*v + off + l%w)
	}
	e.cand = bitvec.New(w)
	return e
}

func (e *vcEngine) reset() {
	for _, a := range e.inArb {
		a.Reset()
	}
	for _, a := range e.outArb {
		a.Reset()
	}
	if e.wf != nil {
		e.wf.Reset()
	}
}

// candFor returns the engine-range candidate vector for an active request r,
// or nil when no candidate falls in range. An engine covering the full VC
// range reads the request's own (caller-owned, read-only) vector in place;
// sparse sub-engines extract their window into the e.cand scratch vector.
func (e *vcEngine) candFor(r VCRequest) *bitvec.Vec {
	if e.off == 0 && e.w == e.cfg.Spec.V() {
		if !r.Candidates.Any() {
			return nil
		}
		return r.Candidates
	}
	if !e.cand.SliceFrom(r.Candidates, e.off) {
		return nil
	}
	return e.cand
}

// inRange reports whether global VC index vc falls in this engine's window.
func (e *vcEngine) inRange(vc int) bool { return vc >= e.off && vc < e.off+e.w }

// local index helpers: engine-local input/output VC index is p·w + (v-off).
func (e *vcEngine) local(p, v int) int      { return p*e.w + (v - e.off) }
func (e *vcEngine) global(l int) (p, v int) { return l / e.w, e.off + l%e.w }

// allocate computes this engine's share of the matching. act marks the
// request indices that are Active with a candidate vector; the engine visits
// only those (ascending, the same order as a full scan), so a mostly-idle
// request slice costs proportionally little.
func (e *vcEngine) allocate(reqs []VCRequest, grants []int, act *bitvec.Vec) {
	switch e.arch {
	case alloc.SepIF:
		e.allocateSepIF(reqs, grants, act)
	case alloc.SepOF:
		e.allocateSepOF(reqs, grants, act)
	case alloc.Wavefront:
		e.allocateWavefront(reqs, grants, act)
	}
}

// allocateSepIF implements Fig. 3(a): each input VC first arbitrates among
// its candidate output VCs, then each output VC arbitrates among incoming
// bids with a P·w-input tree arbiter. Input arbiters update priority only
// when the bid wins output arbitration.
func (e *vcEngine) allocateSepIF(reqs []VCRequest, grants []int, act *bitvec.Vec) {
	// Clear only the bid vectors dirtied by the previous cycle.
	for wi, bw := range e.bidsAny.Words() {
		for base := wi * 64; bw != 0; bw &= bw - 1 {
			e.bids[base+bits.TrailingZeros64(bw)].Reset()
		}
	}
	e.bidsAny.Reset()
	// Stage 1: input-side arbitration. Stage 2 reads bidVC only for input
	// VCs that bid this cycle, so stale entries of inactive VCs are never
	// observed and need no clearing. act is not mutated here, so the word
	// scan reads a consistent snapshot; liOf fuses the VC-window filter
	// and the local-index divides into one table lookup.
	for wi, aw := range act.Words() {
		for base := wi * 64; aw != 0; aw &= aw - 1 {
			gi := base + bits.TrailingZeros64(aw)
			li := int(e.liOf[gi])
			if li < 0 {
				continue
			}
			r := reqs[gi]
			cand := e.candFor(r)
			if cand == nil {
				continue
			}
			c := e.inArb[li].Pick(cand)
			if c < 0 {
				continue
			}
			e.bidVC[li] = c
			lo := r.OutPort*e.w + c
			e.bids[lo].Set(li)
			e.bidsAny.Set(lo)
		}
	}
	// Stage 2: output-side arbitration at the output VCs that received bids.
	for wi, bw := range e.bidsAny.Words() {
		for base := wi * 64; bw != 0; bw &= bw - 1 {
			lo := base + bits.TrailingZeros64(bw)
			winner := e.outArb[lo].Pick(e.bids[lo])
			if winner < 0 {
				continue
			}
			grants[e.gIdx[winner]] = int(e.gIdx[lo])
			e.outArb[lo].Update(winner)
			e.inArb[winner].Update(e.bidVC[winner])
		}
	}
}

// allocateSepOF implements Fig. 3(b): each output VC first arbitrates among
// all requesting input VCs, then each input VC that received one or more
// offers picks a winner. Output arbiters update priority only when their
// offer is accepted.
func (e *vcEngine) allocateSepOF(reqs []VCRequest, grants []int, act *bitvec.Vec) {
	v := e.cfg.Spec.V()
	// Clear the vectors dirtied by the previous cycle.
	for lo := e.outAny.NextSet(0); lo >= 0; lo = e.outAny.NextSet(lo + 1) {
		e.reqTo[lo].Reset()
	}
	e.outAny.Reset()
	for li := e.offAny.NextSet(0); li >= 0; li = e.offAny.NextSet(li + 1) {
		e.offers[li].Reset()
	}
	e.offAny.Reset()
	// Gather: transpose each input VC's candidate set into per-output-VC
	// request vectors, replacing the per-output scan over all input VCs.
	for gi := act.NextSet(0); gi >= 0; gi = act.NextSet(gi + 1) {
		li := int(e.liOf[gi])
		if li < 0 {
			continue
		}
		r := reqs[gi]
		cand := e.candFor(r)
		if cand == nil {
			continue
		}
		base := r.OutPort * e.w
		for c := cand.NextSet(0); c >= 0; c = cand.NextSet(c + 1) {
			e.reqTo[base+c].Set(li)
			e.outAny.Set(base + c)
		}
	}
	// Stage 1: output-side arbitration at every requested output VC.
	for lo := e.outAny.NextSet(0); lo >= 0; lo = e.outAny.NextSet(lo + 1) {
		winner := e.outArb[lo].Pick(e.reqTo[lo])
		if winner < 0 {
			continue
		}
		e.offers[winner].Set(lo % e.w)
		e.offAny.Set(winner)
	}
	// Stage 2: input-side arbitration among offered output VCs.
	for li := e.offAny.NextSet(0); li >= 0; li = e.offAny.NextSet(li + 1) {
		c := e.inArb[li].Pick(e.offers[li])
		if c < 0 {
			continue
		}
		gi := int(e.gIdx[li])
		oPort := reqs[gi].OutPort
		grants[gi] = oPort*v + (e.off + c)
		e.inArb[li].Update(c)
		e.outArb[oPort*e.w+c].Update(li)
	}
}

// allocateWavefront implements Fig. 3(c): a (P·w)×(P·w) wavefront allocator
// over the full request matrix.
func (e *vcEngine) allocateWavefront(reqs []VCRequest, grants []int, act *bitvec.Vec) {
	// Clear only the request rows dirtied by the previous cycle.
	for row := e.wfRows.NextSet(0); row >= 0; row = e.wfRows.NextSet(row + 1) {
		e.wfReq.Row(row).Reset()
	}
	e.wfRows.Reset()
	for gi := act.NextSet(0); gi >= 0; gi = act.NextSet(gi + 1) {
		row := int(e.liOf[gi])
		if row < 0 {
			continue
		}
		r := reqs[gi]
		cand := e.candFor(r)
		if cand == nil {
			continue
		}
		e.wfRows.Set(row)
		base := r.OutPort * e.w
		wfRow := e.wfReq.Row(row)
		for c := cand.NextSet(0); c >= 0; c = cand.NextSet(c + 1) {
			wfRow.Set(base + c)
		}
	}
	g := e.wf.Allocate(e.wfReq)
	// Grants are a subset of requests, so only dirty rows can hold one.
	for row := e.wfRows.NextSet(0); row >= 0; row = e.wfRows.NextSet(row + 1) {
		gRow := g.Row(row)
		if col := gRow.NextSet(0); col >= 0 {
			grants[e.gIdx[row]] = int(e.gIdx[col])
		}
	}
}

// CheckVCGrants validates a VC allocation result against its requests:
// every grant must correspond to an active request, name a candidate output
// VC at the requested port, and no output VC may be granted twice. It
// returns an error describing the first violation found.
func CheckVCGrants(p int, spec VCSpec, reqs []VCRequest, grants []int) error {
	v := spec.V()
	seen := make(map[int]int)
	for gi, g := range grants {
		if g < 0 {
			continue
		}
		r := reqs[gi]
		if !r.Active {
			return fmt.Errorf("core: grant %d to inactive input VC %d", g, gi)
		}
		oPort, ovc := g/v, g%v
		if oPort != r.OutPort {
			return fmt.Errorf("core: input VC %d granted port %d, requested %d", gi, oPort, r.OutPort)
		}
		if r.Candidates == nil || !r.Candidates.Get(ovc) {
			return fmt.Errorf("core: input VC %d granted non-candidate output VC %d", gi, ovc)
		}
		if prev, dup := seen[g]; dup {
			return fmt.Errorf("core: output VC %d granted to both input VC %d and %d", g, prev, gi)
		}
		seen[g] = gi
	}
	return nil
}
