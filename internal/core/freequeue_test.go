package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/xrand"
)

func freeqCfg(p int, spec VCSpec) VCAllocConfig {
	return VCAllocConfig{Ports: p, Spec: spec, ArbKind: arbiter.RoundRobin, FreeQueue: true}
}

func TestFreeQueueBasics(t *testing.T) {
	spec := NewVCSpec(2, 1, 2)
	a := NewVCAllocator(freeqCfg(5, spec))
	if a.Name() != "freeq/rr" || a.Ports() != 5 || a.VCs() != 4 {
		t.Fatalf("metadata: %s %d %d", a.Name(), a.Ports(), a.VCs())
	}
	reqs := make([]VCRequest, 5*spec.V())
	reqs[0] = VCRequest{Active: true, OutPort: 3, Candidates: spec.ClassMask(0, 0)}
	g := a.Allocate(reqs)
	if g[0] < 0 || g[0]/spec.V() != 3 {
		t.Fatalf("lone request not granted at port 3: %d", g[0])
	}
	if err := CheckVCGrants(5, spec, reqs, g); err != nil {
		t.Fatal(err)
	}
}

func TestFreeQueueValidity(t *testing.T) {
	spec := NewVCSpec(2, 2, 2)
	a := NewVCAllocator(freeqCfg(4, spec))
	rng := xrand.New(501)
	for trial := 0; trial < 300; trial++ {
		reqs := randomVCRequests(rng, 4, spec, 0.5)
		if err := CheckVCGrants(4, spec, reqs, a.Allocate(reqs)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestFreeQueueFIFOOrder(t *testing.T) {
	// The queue hands out VCs of a class in FIFO order: first grant gets
	// the first VC, next (while the first is outstanding) the second.
	spec := NewVCSpec(1, 1, 3)
	a := NewVCAllocator(freeqCfg(2, spec))
	mk := func(free ...int) []VCRequest {
		cand := spec.ClassMask(0, 0)
		// The router reports only un-allocated VCs as candidates.
		for c := 0; c < 3; c++ {
			in := false
			for _, f := range free {
				if f == c {
					in = true
				}
			}
			if !in {
				cand.Clear(c)
			}
		}
		reqs := make([]VCRequest, 2*3)
		reqs[0] = VCRequest{Active: true, OutPort: 1, Candidates: cand}
		return reqs
	}
	g1 := a.Allocate(mk(0, 1, 2))
	if g1[0]%3 != 0 {
		t.Fatalf("first grant VC %d, want 0 (queue head)", g1[0]%3)
	}
	g2 := a.Allocate(mk(1, 2))
	if g2[0]%3 != 1 {
		t.Fatalf("second grant VC %d, want 1", g2[0]%3)
	}
	// VC 0 freed: it rejoins at the tail, so the next grant is VC 2.
	g3 := a.Allocate(mk(0, 2))
	if g3[0]%3 != 2 {
		t.Fatalf("third grant VC %d, want 2 (0 re-queued at tail)", g3[0]%3)
	}
	g4 := a.Allocate(mk(0))
	if g4[0]%3 != 0 {
		t.Fatalf("fourth grant VC %d, want recycled 0", g4[0]%3)
	}
}

func TestFreeQueueOneGrantPerClassPerCycle(t *testing.T) {
	// The scheme's quality limit: two requesters for the same class get
	// one grant per cycle even with two free VCs.
	spec := NewVCSpec(1, 1, 2)
	a := NewVCAllocator(freeqCfg(3, spec))
	reqs := make([]VCRequest, 3*2)
	reqs[0] = VCRequest{Active: true, OutPort: 2, Candidates: spec.ClassMask(0, 0)}
	reqs[2] = VCRequest{Active: true, OutPort: 2, Candidates: spec.ClassMask(0, 0)}
	g := a.Allocate(reqs)
	granted := 0
	for _, x := range g {
		if x >= 0 {
			granted++
		}
	}
	if granted != 1 {
		t.Fatalf("free-queue granted %d, want exactly 1 per class per cycle", granted)
	}
}

func TestFreeQueueLowerQualityThanSepIF(t *testing.T) {
	// Aggregate quality under load trails the matching allocators.
	spec := NewVCSpec(2, 1, 4)
	p := 5
	count := func(cfg VCAllocConfig) int {
		a := NewVCAllocator(cfg)
		rng := xrand.New(509)
		total := 0
		for trial := 0; trial < 1500; trial++ {
			for _, g := range a.Allocate(randomVCRequests(rng, p, spec, 0.8)) {
				if g >= 0 {
					total++
				}
			}
		}
		return total
	}
	fq := count(freeqCfg(p, spec))
	sif := count(VCAllocConfig{Ports: p, Spec: spec, Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin})
	if fq >= sif {
		t.Fatalf("free-queue (%d) should grant fewer than sep_if (%d) under load", fq, sif)
	}
	// The hard bound is one grant per (port, class) per cycle - at this
	// load roughly 40% of what a matching allocator achieves.
	if float64(fq) < 0.3*float64(sif) {
		t.Fatalf("free-queue quality implausibly low: %d vs %d", fq, sif)
	}
}

func TestFreeQueueFairness(t *testing.T) {
	spec := NewVCSpec(1, 1, 1)
	a := NewVCAllocator(freeqCfg(3, spec))
	reqs := make([]VCRequest, 3)
	reqs[0] = VCRequest{Active: true, OutPort: 2, Candidates: spec.ClassMask(0, 0)}
	reqs[1] = VCRequest{Active: true, OutPort: 2, Candidates: spec.ClassMask(0, 0)}
	counts := [2]int{}
	for cycle := 0; cycle < 100; cycle++ {
		g := a.Allocate(reqs)
		for i := 0; i < 2; i++ {
			if g[i] >= 0 {
				counts[i]++
			}
		}
	}
	if counts[0]+counts[1] != 100 || counts[0] != 50 {
		t.Fatalf("unfair free-queue arbitration: %v", counts)
	}
}

func TestFreeQueueReset(t *testing.T) {
	spec := NewVCSpec(1, 1, 2)
	a := NewVCAllocator(freeqCfg(2, spec))
	reqs := make([]VCRequest, 4)
	reqs[0] = VCRequest{Active: true, OutPort: 1, Candidates: spec.ClassMask(0, 0)}
	first := a.Allocate(reqs)[0]
	a.Allocate(reqs)
	a.Reset()
	if again := a.Allocate(reqs)[0]; again != first {
		t.Fatalf("Reset did not restore queue order: %d vs %d", again, first)
	}
}

func TestFreeQueueInNetwork(t *testing.T) {
	// End-to-end: the free-queue allocator must sustain a working network
	// (exercised via the router directly to avoid an import cycle).
	spec := NewVCSpec(2, 1, 2)
	cfg := freeqCfg(5, spec)
	a := NewVCAllocator(cfg)
	rng := xrand.New(521)
	for trial := 0; trial < 500; trial++ {
		reqs := randomVCRequests(rng, 5, spec, 0.4)
		if err := CheckVCGrants(5, spec, reqs, a.Allocate(reqs)); err != nil {
			t.Fatal(err)
		}
	}
}
