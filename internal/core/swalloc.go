package core

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/bitvec"
)

// SwitchRequest is one input VC's crossbar request for a given cycle.
type SwitchRequest struct {
	// Active indicates the VC has a flit ready to traverse the crossbar.
	Active bool
	// OutPort is the output port the flit must be switched to.
	OutPort int
	// Spec marks a speculative request: a head flit bidding for the
	// crossbar in the same cycle it requests an output VC (§5.2). When the
	// allocator was built with SpecNone, speculative requests are ignored.
	Spec bool
}

// SwitchGrant is the per-input-port result of switch allocation.
type SwitchGrant struct {
	// VC is the winning VC at this input port, or -1 if the port received
	// no grant.
	VC int
	// OutPort is the granted output port, or -1.
	OutPort int
	// Spec reports whether the grant was awarded to a speculative request.
	Spec bool
}

// SpecMode selects the speculative switch allocation scheme.
type SpecMode int

const (
	// SpecNone disables speculation: only non-speculative requests compete.
	SpecNone SpecMode = iota
	// SpecGnt is the conventional scheme of Peh & Dally (Fig. 9a):
	// speculative grants are discarded when a non-speculative *grant* uses
	// the same input or output port. Highest speculation efficiency, but
	// the grant-reduction ORs and masking NOR/AND stages sit on the
	// critical path.
	SpecGnt
	// SpecReq is the paper's pessimistic scheme (Fig. 9b): speculative
	// grants are discarded when a conflicting non-speculative *request*
	// exists, removing the reduction network from the critical path at the
	// price of discarded speculation opportunities under load.
	SpecReq
)

// String returns the identifier used in the paper's Fig. 14 legend.
func (m SpecMode) String() string {
	switch m {
	case SpecNone:
		return "nonspec"
	case SpecGnt:
		return "spec_gnt"
	case SpecReq:
		return "spec_req"
	default:
		return fmt.Sprintf("SpecMode(%d)", int(m))
	}
}

// SwitchAllocConfig parameterizes switch allocator construction.
type SwitchAllocConfig struct {
	// Ports is the router radix P.
	Ports int
	// VCs is the number of VCs per input port V.
	VCs int
	// Arch selects the architecture: alloc.SepIF, alloc.SepOF or
	// alloc.Wavefront (Fig. 8).
	Arch alloc.Arch
	// ArbKind selects the arbiter implementation for the separable stages
	// and the wavefront pre-selection arbiters.
	ArbKind arbiter.Kind
	// SpecMode selects the speculation scheme.
	SpecMode SpecMode
	// Precomputed wraps the allocator with the arbitration pre-computation
	// of Mullins et al. [15]: grants derive from the previous cycle's
	// requests and stale grants are aborted. Requires SpecNone.
	Precomputed bool
}

// SwitchAllocStats counts speculation outcomes since construction or the
// last Reset; they quantify the speculation-efficiency trade-off of §5.2.
type SwitchAllocStats struct {
	// SpecProposals counts grants proposed by the speculative
	// sub-allocator before conflict masking.
	SpecProposals int64
	// SpecMasked counts proposals discarded by the masking stage; the
	// pessimistic scheme masks strictly more than the conventional one
	// under load.
	SpecMasked int64
	// SpecGranted counts speculative grants that survived masking.
	SpecGranted int64
}

// SwitchAllocator schedules buffered flits onto crossbar time slots subject
// to the switch allocation constraints: at most one VC per input port and at
// most one input port per output port receive grants (paper §5).
type SwitchAllocator interface {
	// Ports returns the router port count P.
	Ports() int
	// VCs returns the per-port VC count V.
	VCs() int
	// Allocate computes the crossbar schedule for one cycle. reqs is
	// indexed by global input VC p·V+v and must have length P·V. The
	// result, indexed by input port, is owned by the allocator and valid
	// until the next call.
	Allocate(reqs []SwitchRequest) []SwitchGrant
	// Reset restores initial arbitration state and clears Stats.
	Reset()
	// Name returns the paper-style identifier, e.g. "sep_if/rr+spec_req".
	Name() string
	// Stats reports speculation outcome counters.
	Stats() SwitchAllocStats
}

// NewSwitchAllocator builds a switch allocator.
func NewSwitchAllocator(cfg SwitchAllocConfig) SwitchAllocator {
	if cfg.Precomputed {
		return NewPrecomputedSwitchAllocator(cfg)
	}
	if cfg.Ports <= 0 || cfg.VCs <= 0 {
		panic("core: Ports and VCs must be positive")
	}
	name := cfg.Arch.String()
	if cfg.Arch != alloc.Wavefront {
		name += "/" + cfg.ArbKind.String()
	} else {
		name += "/rr"
	}
	name += "+" + cfg.SpecMode.String()
	a := &switchAllocator{
		cfg:      cfg,
		name:     name,
		nonspec:  newSwEngine(cfg),
		grants:   make([]SwitchGrant, cfg.Ports),
		nsReqIn:  bitvec.New(cfg.Ports),
		nsReqOut: bitvec.New(cfg.Ports),
		nsGntIn:  bitvec.New(cfg.Ports),
		nsGntOut: bitvec.New(cfg.Ports),
		accepted: make([]bool, cfg.Ports),
	}
	if cfg.SpecMode != SpecNone {
		a.spec = newSwEngine(cfg)
	}
	return a
}

type switchAllocator struct {
	cfg     SwitchAllocConfig
	name    string
	nonspec *swEngine
	spec    *swEngine // nil when SpecNone
	grants  []SwitchGrant

	// Conflict-summary vectors corresponding to the reduction networks in
	// Fig. 9: per-input-port and per-output-port presence of
	// non-speculative requests (pessimistic scheme) or grants
	// (conventional scheme).
	nsReqIn, nsReqOut *bitvec.Vec
	nsGntIn, nsGntOut *bitvec.Vec
	accepted          []bool
	stats             SwitchAllocStats
}

func (a *switchAllocator) Ports() int   { return a.cfg.Ports }
func (a *switchAllocator) VCs() int     { return a.cfg.VCs }
func (a *switchAllocator) Name() string { return a.name }

func (a *switchAllocator) Reset() {
	a.nonspec.reset()
	if a.spec != nil {
		a.spec.reset()
	}
	a.stats = SwitchAllocStats{}
}

func (a *switchAllocator) Stats() SwitchAllocStats { return a.stats }

// SkipIdle implements alloc.IdleSkipper: on a request-free cycle the only
// state change in Allocate is the wavefront port allocators' diagonal
// rotation (arbiters commit only on accepted proposals), so replay exactly
// that into each engine's wavefront block.
func (a *switchAllocator) SkipIdle(idleCycles int64) {
	if s, ok := a.nonspec.wf.(alloc.IdleSkipper); ok {
		s.SkipIdle(idleCycles)
	}
	if a.spec != nil {
		if s, ok := a.spec.wf.(alloc.IdleSkipper); ok {
			s.SkipIdle(idleCycles)
		}
	}
}

func (a *switchAllocator) Allocate(reqs []SwitchRequest) []SwitchGrant {
	p, v := a.cfg.Ports, a.cfg.VCs
	if len(reqs) != p*v {
		panic(fmt.Sprintf("core: %d switch requests, want %d", len(reqs), p*v))
	}
	for i := range a.grants {
		a.grants[i] = SwitchGrant{VC: -1, OutPort: -1}
	}

	// Non-speculative sub-allocator.
	nsProps := a.nonspec.propose(reqs, false)
	a.nsReqIn.Reset()
	a.nsReqOut.Reset()
	a.nsGntIn.Reset()
	a.nsGntOut.Reset()
	for port := 0; port < p; port++ {
		for vc := 0; vc < v; vc++ {
			r := reqs[port*v+vc]
			if r.Active && !r.Spec {
				a.nsReqIn.Set(port)
				a.nsReqOut.Set(r.OutPort)
			}
		}
	}
	for port, prop := range nsProps {
		a.accepted[port] = prop.outPort >= 0
		if prop.outPort >= 0 {
			a.grants[port] = SwitchGrant{VC: prop.vc, OutPort: prop.outPort}
			a.nsGntIn.Set(port)
			a.nsGntOut.Set(prop.outPort)
		}
	}
	a.nonspec.commit(a.accepted)

	if a.spec == nil {
		return a.grants
	}

	// Speculative sub-allocator plus masking (Fig. 9).
	spProps := a.spec.propose(reqs, true)
	for port, prop := range spProps {
		ok := prop.outPort >= 0
		if ok {
			a.stats.SpecProposals++
			switch a.cfg.SpecMode {
			case SpecGnt:
				ok = !a.nsGntIn.Get(port) && !a.nsGntOut.Get(prop.outPort)
			case SpecReq:
				ok = !a.nsReqIn.Get(port) && !a.nsReqOut.Get(prop.outPort)
			}
			if !ok {
				a.stats.SpecMasked++
			} else {
				a.stats.SpecGranted++
			}
		}
		a.accepted[port] = ok
		if ok {
			a.grants[port] = SwitchGrant{VC: prop.vc, OutPort: prop.outPort, Spec: true}
		}
	}
	a.spec.commit(a.accepted)
	return a.grants
}

// swProposal is one input port's tentative grant before speculation masking.
type swProposal struct {
	vc, outPort int // -1 if none
}

// swEngine is a single switch-allocation datapath (Fig. 8) handling either
// the speculative or the non-speculative request class. Priority state only
// advances on commit, so masked speculative grants do not consume fairness
// slots.
type swEngine struct {
	cfg    SwitchAllocConfig
	vcArb  []arbiter.Arbiter // per input port, V wide
	outArb []arbiter.Arbiter // per output port, P wide (separable archs)
	wf     alloc.Allocator   // wavefront port allocator

	props   []swProposal
	vcReq   *bitvec.Vec // V wide
	portReq *bitvec.Matrix
	fwd     []*bitvec.Vec // per output port, P wide
	offered []*bitvec.Vec // per input port, P wide (sep_of)
	picks   []int         // per input port, VC pick (sep_if)
	col     *bitvec.Vec   // P wide (sep_of stage 1)
}

func newSwEngine(cfg SwitchAllocConfig) *swEngine {
	p, v := cfg.Ports, cfg.VCs
	e := &swEngine{
		cfg:     cfg,
		vcArb:   make([]arbiter.Arbiter, p),
		props:   make([]swProposal, p),
		vcReq:   bitvec.New(v),
		portReq: bitvec.NewMatrix(p, p),
		picks:   make([]int, p),
		col:     bitvec.New(p),
	}
	for i := range e.vcArb {
		e.vcArb[i] = arbiter.New(cfg.ArbKind, v)
	}
	switch cfg.Arch {
	case alloc.SepIF, alloc.SepOF:
		e.outArb = make([]arbiter.Arbiter, p)
		e.fwd = make([]*bitvec.Vec, p)
		e.offered = make([]*bitvec.Vec, p)
		for i := 0; i < p; i++ {
			e.outArb[i] = arbiter.New(cfg.ArbKind, p)
			e.fwd[i] = bitvec.New(p)
			e.offered[i] = bitvec.New(p)
		}
	case alloc.Wavefront:
		e.wf = alloc.NewWavefront(p, p)
	case alloc.Maximum:
		// Upper-bound configuration (§2.3): a maximum-size port matching
		// with the wavefront datapath's VC pre-selection. Not realizable as
		// single-cycle hardware; used to bound achievable performance.
		e.wf = alloc.NewMaximum(p, p)
	default:
		panic(fmt.Sprintf("core: unsupported switch allocator arch %v", cfg.Arch))
	}
	return e
}

func (e *swEngine) reset() {
	for _, a := range e.vcArb {
		a.Reset()
	}
	for _, a := range e.outArb {
		a.Reset()
	}
	if e.wf != nil {
		e.wf.Reset()
	}
}

// matches reports whether request r belongs to this proposal pass.
func matches(r SwitchRequest, spec bool) bool { return r.Active && r.Spec == spec }

// propose computes tentative grants for the given request class without
// advancing any priority state.
func (e *swEngine) propose(reqs []SwitchRequest, spec bool) []swProposal {
	for i := range e.props {
		e.props[i] = swProposal{vc: -1, outPort: -1}
	}
	switch e.cfg.Arch {
	case alloc.SepIF:
		e.proposeSepIF(reqs, spec)
	case alloc.SepOF:
		e.proposeSepOF(reqs, spec)
	case alloc.Wavefront, alloc.Maximum:
		e.proposeWavefront(reqs, spec)
	}
	return e.props
}

// proposeSepIF implements Fig. 8(a): a V-input arbiter per input port picks
// the winning VC, whose single request is forwarded to a P-input arbiter at
// the output port.
func (e *swEngine) proposeSepIF(reqs []SwitchRequest, spec bool) {
	p, v := e.cfg.Ports, e.cfg.VCs
	for o := 0; o < p; o++ {
		e.fwd[o].Reset()
	}
	for port := 0; port < p; port++ {
		e.picks[port] = -1
		e.vcReq.Reset()
		for vc := 0; vc < v; vc++ {
			if matches(reqs[port*v+vc], spec) {
				e.vcReq.Set(vc)
			}
		}
		w := e.vcArb[port].Pick(e.vcReq)
		if w < 0 {
			continue
		}
		e.picks[port] = w
		e.fwd[reqs[port*v+w].OutPort].Set(port)
	}
	for o := 0; o < p; o++ {
		if !e.fwd[o].Any() {
			continue
		}
		winner := e.outArb[o].Pick(e.fwd[o])
		if winner < 0 {
			continue
		}
		e.props[winner] = swProposal{vc: e.picks[winner], outPort: o}
	}
}

// proposeSepOF implements Fig. 8(b): requests from all VCs are combined and
// forwarded; each output port picks an input port, then each input port
// arbitrates among its VCs that can use one of the granted outputs.
func (e *swEngine) proposeSepOF(reqs []SwitchRequest, spec bool) {
	p, v := e.cfg.Ports, e.cfg.VCs
	e.buildPortMatrix(reqs, spec)
	for port := 0; port < p; port++ {
		e.offered[port].Reset()
	}
	for o := 0; o < p; o++ {
		e.col.Reset()
		for port := 0; port < p; port++ {
			if e.portReq.Get(port, o) {
				e.col.Set(port)
			}
		}
		if !e.col.Any() {
			continue
		}
		winner := e.outArb[o].Pick(e.col)
		if winner < 0 {
			continue
		}
		e.offered[winner].Set(o)
	}
	for port := 0; port < p; port++ {
		if !e.offered[port].Any() {
			continue
		}
		// VC arbitration among VCs whose requested output was offered; the
		// winning VC's port select drives the crossbar (Fig. 8b).
		e.vcReq.Reset()
		for vc := 0; vc < v; vc++ {
			r := reqs[port*v+vc]
			if matches(r, spec) && e.offered[port].Get(r.OutPort) {
				e.vcReq.Set(vc)
			}
		}
		w := e.vcArb[port].Pick(e.vcReq)
		if w < 0 {
			continue
		}
		e.props[port] = swProposal{vc: w, outPort: reqs[port*v+w].OutPort}
	}
}

// proposeWavefront implements Fig. 8(c): a P×P wavefront block over the
// combined port-request matrix, with per-input V-input arbiters selecting
// the winning VC for the granted output.
func (e *swEngine) proposeWavefront(reqs []SwitchRequest, spec bool) {
	p, v := e.cfg.Ports, e.cfg.VCs
	e.buildPortMatrix(reqs, spec)
	g := e.wf.Allocate(e.portReq)
	for port := 0; port < p; port++ {
		o := -1
		g.Row(port).ForEach(func(j int) { o = j })
		if o < 0 {
			continue
		}
		e.vcReq.Reset()
		for vc := 0; vc < v; vc++ {
			r := reqs[port*v+vc]
			if matches(r, spec) && r.OutPort == o {
				e.vcReq.Set(vc)
			}
		}
		w := e.vcArb[port].Pick(e.vcReq)
		if w < 0 {
			continue
		}
		e.props[port] = swProposal{vc: w, outPort: o}
	}
}

func (e *swEngine) buildPortMatrix(reqs []SwitchRequest, spec bool) {
	p, v := e.cfg.Ports, e.cfg.VCs
	e.portReq.Reset()
	for port := 0; port < p; port++ {
		for vc := 0; vc < v; vc++ {
			r := reqs[port*v+vc]
			if matches(r, spec) {
				e.portReq.Set(port, r.OutPort)
			}
		}
	}
}

// commit advances priority state for the input ports whose proposals were
// accepted end to end.
func (e *swEngine) commit(accepted []bool) {
	for port, ok := range accepted {
		if !ok {
			continue
		}
		prop := e.props[port]
		if prop.outPort < 0 {
			continue
		}
		e.vcArb[port].Update(prop.vc)
		if e.outArb != nil {
			e.outArb[prop.outPort].Update(port)
		}
	}
}

// CheckSwitchGrants validates a switch allocation result: each granted VC
// must have an active request for the granted output port, no output port
// may be granted to two inputs, and speculative flags must be consistent
// with the requests. It returns an error describing the first violation.
func CheckSwitchGrants(p, v int, reqs []SwitchRequest, grants []SwitchGrant) error {
	if len(grants) != p {
		return fmt.Errorf("core: %d grants, want %d", len(grants), p)
	}
	usedOut := make(map[int]int)
	for port, g := range grants {
		if g.OutPort < 0 {
			if g.VC >= 0 {
				return fmt.Errorf("core: port %d has VC %d but no output", port, g.VC)
			}
			continue
		}
		if g.VC < 0 || g.VC >= v {
			return fmt.Errorf("core: port %d granted invalid VC %d", port, g.VC)
		}
		r := reqs[port*v+g.VC]
		if !r.Active {
			return fmt.Errorf("core: port %d VC %d granted without request", port, g.VC)
		}
		if r.OutPort != g.OutPort {
			return fmt.Errorf("core: port %d VC %d granted output %d, requested %d",
				port, g.VC, g.OutPort, r.OutPort)
		}
		if r.Spec != g.Spec {
			return fmt.Errorf("core: port %d VC %d speculative flag mismatch", port, g.VC)
		}
		if prev, dup := usedOut[g.OutPort]; dup {
			return fmt.Errorf("core: output %d granted to ports %d and %d", g.OutPort, prev, port)
		}
		usedOut[g.OutPort] = port
	}
	return nil
}
