package core

import (
	"fmt"
	"math/bits"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/bitvec"
)

// SwitchRequest is one input VC's crossbar request for a given cycle.
type SwitchRequest struct {
	// Active indicates the VC has a flit ready to traverse the crossbar.
	Active bool
	// OutPort is the output port the flit must be switched to.
	OutPort int
	// Spec marks a speculative request: a head flit bidding for the
	// crossbar in the same cycle it requests an output VC (§5.2). When the
	// allocator was built with SpecNone, speculative requests are ignored.
	Spec bool
}

// SwitchGrant is the per-input-port result of switch allocation.
type SwitchGrant struct {
	// VC is the winning VC at this input port, or -1 if the port received
	// no grant.
	VC int
	// OutPort is the granted output port, or -1.
	OutPort int
	// Spec reports whether the grant was awarded to a speculative request.
	Spec bool
}

// SpecMode selects the speculative switch allocation scheme.
type SpecMode int

const (
	// SpecNone disables speculation: only non-speculative requests compete.
	SpecNone SpecMode = iota
	// SpecGnt is the conventional scheme of Peh & Dally (Fig. 9a):
	// speculative grants are discarded when a non-speculative *grant* uses
	// the same input or output port. Highest speculation efficiency, but
	// the grant-reduction ORs and masking NOR/AND stages sit on the
	// critical path.
	SpecGnt
	// SpecReq is the paper's pessimistic scheme (Fig. 9b): speculative
	// grants are discarded when a conflicting non-speculative *request*
	// exists, removing the reduction network from the critical path at the
	// price of discarded speculation opportunities under load.
	SpecReq
)

// String returns the identifier used in the paper's Fig. 14 legend.
func (m SpecMode) String() string {
	switch m {
	case SpecNone:
		return "nonspec"
	case SpecGnt:
		return "spec_gnt"
	case SpecReq:
		return "spec_req"
	default:
		return fmt.Sprintf("SpecMode(%d)", int(m))
	}
}

// SwitchAllocConfig parameterizes switch allocator construction.
type SwitchAllocConfig struct {
	// Ports is the router radix P.
	Ports int
	// VCs is the number of VCs per input port V.
	VCs int
	// Arch selects the architecture: alloc.SepIF, alloc.SepOF or
	// alloc.Wavefront (Fig. 8).
	Arch alloc.Arch
	// ArbKind selects the arbiter implementation for the separable stages
	// and the wavefront pre-selection arbiters.
	ArbKind arbiter.Kind
	// SpecMode selects the speculation scheme.
	SpecMode SpecMode
	// Precomputed wraps the allocator with the arbitration pre-computation
	// of Mullins et al. [15]: grants derive from the previous cycle's
	// requests and stale grants are aborted. Requires SpecNone.
	Precomputed bool
}

// SwitchAllocStats counts speculation outcomes since construction or the
// last Reset; they quantify the speculation-efficiency trade-off of §5.2.
type SwitchAllocStats struct {
	// SpecProposals counts grants proposed by the speculative
	// sub-allocator before conflict masking.
	SpecProposals int64
	// SpecMasked counts proposals discarded by the masking stage; the
	// pessimistic scheme masks strictly more than the conventional one
	// under load.
	SpecMasked int64
	// SpecGranted counts speculative grants that survived masking.
	SpecGranted int64
}

// SwitchAllocator schedules buffered flits onto crossbar time slots subject
// to the switch allocation constraints: at most one VC per input port and at
// most one input port per output port receive grants (paper §5).
type SwitchAllocator interface {
	// Ports returns the router port count P.
	Ports() int
	// VCs returns the per-port VC count V.
	VCs() int
	// Allocate computes the crossbar schedule for one cycle. reqs is
	// indexed by global input VC p·V+v and must have length P·V. The
	// result, indexed by input port, is owned by the allocator and valid
	// until the next call.
	//
	// Request-slice contract: reqs is a read-only input owned by the
	// caller, who may reuse the same backing array — with only changed
	// entries rewritten — on every call (the router's change-driven
	// request cache does exactly that). Implementations must not mutate it
	// and must not retain it past the call's return; cross-cycle state
	// must be copied by value, as the precomputed allocator's request
	// latch does.
	Allocate(reqs []SwitchRequest) []SwitchGrant
	// Reset restores initial arbitration state and clears Stats.
	Reset()
	// Name returns the paper-style identifier, e.g. "sep_if/rr+spec_req".
	Name() string
	// Stats reports speculation outcome counters.
	Stats() SwitchAllocStats
}

// MaskedSwitchAllocator is implemented by switch allocators that cache
// derived request state across cycles. AllocateMasked behaves exactly like
// Allocate, but the caller additionally passes the set of request indices
// whose entries it rewrote since the previous call (Allocate or
// AllocateMasked); the allocator refreshes only the cached state derived
// from those entries. The two entry points may be mixed freely — a plain
// Allocate call resynchronizes the cache from the full slice. Grants are
// bit-identical either way.
type MaskedSwitchAllocator interface {
	SwitchAllocator
	AllocateMasked(reqs []SwitchRequest, changed *bitvec.Vec) []SwitchGrant
}

// NewSwitchAllocator builds a switch allocator.
func NewSwitchAllocator(cfg SwitchAllocConfig) SwitchAllocator {
	if cfg.Precomputed {
		return NewPrecomputedSwitchAllocator(cfg)
	}
	if cfg.Ports <= 0 || cfg.VCs <= 0 {
		panic("core: Ports and VCs must be positive")
	}
	name := cfg.Arch.String()
	if cfg.Arch != alloc.Wavefront {
		name += "/" + cfg.ArbKind.String()
	} else {
		name += "/rr"
	}
	name += "+" + cfg.SpecMode.String()
	a := &switchAllocator{
		cfg:      cfg,
		name:     name,
		nonspec:  newSwEngine(cfg, false),
		grants:   make([]SwitchGrant, cfg.Ports),
		nsGntIn:  bitvec.New(cfg.Ports),
		nsGntOut: bitvec.New(cfg.Ports),
		accepted: make([]bool, cfg.Ports),
		prev:     make([]SwitchRequest, cfg.Ports*cfg.VCs),
		portOf:   make([]int32, cfg.Ports*cfg.VCs),
		vcOf:     make([]int32, cfg.Ports*cfg.VCs),
	}
	for i := range a.portOf {
		a.portOf[i] = int32(i / cfg.VCs)
		a.vcOf[i] = int32(i % cfg.VCs)
	}
	if cfg.SpecMode != SpecNone {
		a.spec = newSwEngine(cfg, true)
	}
	return a
}

type switchAllocator struct {
	cfg     SwitchAllocConfig
	name    string
	nonspec *swEngine
	spec    *swEngine // nil when SpecNone
	grants  []SwitchGrant

	// Grant conflict-summary vectors for the conventional masking scheme
	// (Fig. 9a). The pessimistic scheme's per-port request summaries
	// (Fig. 9b) come from the nonspec engine's cached request state.
	nsGntIn, nsGntOut *bitvec.Vec
	accepted          []bool
	// prev holds the last-seen value of every request entry, so an
	// incremental resync can subtract the old entry's contribution from the
	// engines' cached counts before adding the new one. portOf/vcOf decode
	// a request index without the divides the hot resync path would
	// otherwise pay once per engine.
	prev   []SwitchRequest
	portOf []int32
	vcOf   []int32
	stats  SwitchAllocStats
}

func (a *switchAllocator) Ports() int   { return a.cfg.Ports }
func (a *switchAllocator) VCs() int     { return a.cfg.VCs }
func (a *switchAllocator) Name() string { return a.name }

func (a *switchAllocator) Reset() {
	a.nonspec.reset()
	if a.spec != nil {
		a.spec.reset()
	}
	a.stats = SwitchAllocStats{}
}

func (a *switchAllocator) Stats() SwitchAllocStats { return a.stats }

// SkipIdle implements alloc.IdleSkipper: on a request-free cycle the only
// state change in Allocate is the wavefront port allocators' diagonal
// rotation (arbiters commit only on accepted proposals), so replay exactly
// that into each engine's wavefront block.
func (a *switchAllocator) SkipIdle(idleCycles int64) {
	if s, ok := a.nonspec.wf.(alloc.IdleSkipper); ok {
		s.SkipIdle(idleCycles)
	}
	if a.spec != nil {
		if s, ok := a.spec.wf.(alloc.IdleSkipper); ok {
			s.SkipIdle(idleCycles)
		}
	}
}

func (a *switchAllocator) Allocate(reqs []SwitchRequest) []SwitchGrant {
	p, v := a.cfg.Ports, a.cfg.VCs
	if len(reqs) != p*v {
		panic(fmt.Sprintf("core: %d switch requests, want %d", len(reqs), p*v))
	}
	for i := range reqs {
		a.note(i, reqs[i])
	}
	return a.run(reqs)
}

// AllocateMasked implements MaskedSwitchAllocator.
func (a *switchAllocator) AllocateMasked(reqs []SwitchRequest, changed *bitvec.Vec) []SwitchGrant {
	p, v := a.cfg.Ports, a.cfg.VCs
	if len(reqs) != p*v {
		panic(fmt.Sprintf("core: %d switch requests, want %d", len(reqs), p*v))
	}
	for wi, w := range changed.Words() {
		for base := wi * 64; w != 0; w &= w - 1 {
			i := base + bits.TrailingZeros64(w)
			a.note(i, reqs[i])
		}
	}
	return a.run(reqs)
}

// note folds one (possibly unchanged) request entry into the engines'
// cached request state.
func (a *switchAllocator) note(i int, nw SwitchRequest) {
	old := a.prev[i]
	if old == nw {
		return
	}
	port, vc := int(a.portOf[i]), int(a.vcOf[i])
	a.nonspec.noteChange(port, vc, old, nw)
	if a.spec != nil {
		a.spec.noteChange(port, vc, old, nw)
	}
	a.prev[i] = nw
}

// run performs one allocation cycle from the engines' cached request state,
// which note has already synchronized with reqs.
func (a *switchAllocator) run(reqs []SwitchRequest) []SwitchGrant {
	// Scan-and-clear: grants are sparse (at most one per input port, and
	// most ports grant nothing on most cycles), so skipping the store for
	// entries already at the no-grant value beats rewriting all of them.
	// The zero value's OutPort is 0, so first use also clears correctly.
	for i := range a.grants {
		if a.grants[i].OutPort >= 0 {
			a.grants[i] = SwitchGrant{VC: -1, OutPort: -1}
		}
	}

	// Non-speculative sub-allocator.
	nsProps := a.nonspec.propose(reqs)
	if a.spec == nil {
		for port, prop := range nsProps {
			a.accepted[port] = prop.outPort >= 0
			if prop.outPort >= 0 {
				a.grants[port] = SwitchGrant{VC: prop.vc, OutPort: prop.outPort}
			}
		}
		a.nonspec.commit(a.accepted)
		return a.grants
	}
	// The nsGnt vectors feed only the SpecGnt mask; SpecReq reads the
	// nonspec engine's cached request summaries instead, so skip their
	// per-cycle maintenance there.
	gnt := a.cfg.SpecMode == SpecGnt
	if gnt {
		a.nsGntIn.Reset()
		a.nsGntOut.Reset()
	}
	for port, prop := range nsProps {
		a.accepted[port] = prop.outPort >= 0
		if prop.outPort >= 0 {
			a.grants[port] = SwitchGrant{VC: prop.vc, OutPort: prop.outPort}
			if gnt {
				a.nsGntIn.Set(port)
				a.nsGntOut.Set(prop.outPort)
			}
		}
	}
	a.nonspec.commit(a.accepted)

	// Speculative sub-allocator plus masking (Fig. 9). The pessimistic
	// scheme's request summaries are read straight off the nonspec engine's
	// cache: portAny is the per-input-port request OR and outTot[o] > 0 the
	// per-output-port one.
	spProps := a.spec.propose(reqs)
	for port, prop := range spProps {
		ok := prop.outPort >= 0
		if ok {
			a.stats.SpecProposals++
			switch a.cfg.SpecMode {
			case SpecGnt:
				ok = !a.nsGntIn.Get(port) && !a.nsGntOut.Get(prop.outPort)
			case SpecReq:
				ok = !a.nonspec.portAny.Get(port) && a.nonspec.outTot[prop.outPort] == 0
			}
			if !ok {
				a.stats.SpecMasked++
			} else {
				a.stats.SpecGranted++
			}
		}
		a.accepted[port] = ok
		if ok {
			a.grants[port] = SwitchGrant{VC: prop.vc, OutPort: prop.outPort, Spec: true}
		}
	}
	a.spec.commit(a.accepted)
	return a.grants
}

// swProposal is one input port's tentative grant before speculation masking.
type swProposal struct {
	vc, outPort int // -1 if none
}

// swEngine is a single switch-allocation datapath (Fig. 8) handling either
// the speculative or the non-speculative request class. Priority state only
// advances on commit, so masked speculative grants do not consume fairness
// slots.
//
// The engine keeps derived request state cached across cycles — per-port VC
// masks, per-(input, output) request counts and the port-request matrix —
// maintained incrementally by noteChange, so a propose pass touches only
// ports that actually hold requests and never rescans the request slice.
type swEngine struct {
	cfg    SwitchAllocConfig
	spec   bool              // which request class this engine serves
	vcArb  []arbiter.Arbiter // per input port, V wide
	outArb []arbiter.Arbiter // per output port, P wide (separable archs)
	wf     alloc.Allocator   // wavefront port allocator

	// Cached request state, synchronized by noteChange.
	reqMask []*bitvec.Vec  // per input port, V wide: VCs with matching requests
	portAny *bitvec.Vec    // P wide: input ports with any matching request
	cnt     []int32        // P·P: matching requests per (input port, output port)
	outTot  []int32        // per output port: total matching requests
	count   int            // total matching requests
	portReq *bitvec.Matrix // P×P port-request matrix (wavefront/maximum)
	colReq  []*bitvec.Vec  // per output port, P wide: requesting inputs (sep_of)

	props   []swProposal
	vcReq   *bitvec.Vec   // V wide scratch
	fwd     []*bitvec.Vec // per output port, P wide (sep_if stage 2)
	fwdAny  *bitvec.Vec   // output ports with a forwarded pick (sep_if)
	offered []*bitvec.Vec // per input port, P wide (sep_of stage 2)
	offAny  *bitvec.Vec   // input ports with at least one offer (sep_of)
	picks   []int         // per input port, VC pick (sep_if)
}

func newSwEngine(cfg SwitchAllocConfig, spec bool) *swEngine {
	p, v := cfg.Ports, cfg.VCs
	e := &swEngine{
		cfg:     cfg,
		spec:    spec,
		vcArb:   make([]arbiter.Arbiter, p),
		reqMask: make([]*bitvec.Vec, p),
		portAny: bitvec.New(p),
		cnt:     make([]int32, p*p),
		outTot:  make([]int32, p),
		props:   make([]swProposal, p),
		vcReq:   bitvec.New(v),
		picks:   make([]int, p),
	}
	for i := range e.vcArb {
		e.vcArb[i] = arbiter.New(cfg.ArbKind, v)
		e.reqMask[i] = bitvec.New(v)
	}
	switch cfg.Arch {
	case alloc.SepIF:
		e.outArb = make([]arbiter.Arbiter, p)
		e.fwd = make([]*bitvec.Vec, p)
		e.fwdAny = bitvec.New(p)
		for i := 0; i < p; i++ {
			e.outArb[i] = arbiter.New(cfg.ArbKind, p)
			e.fwd[i] = bitvec.New(p)
		}
	case alloc.SepOF:
		e.outArb = make([]arbiter.Arbiter, p)
		e.offered = make([]*bitvec.Vec, p)
		e.offAny = bitvec.New(p)
		e.colReq = make([]*bitvec.Vec, p)
		for i := 0; i < p; i++ {
			e.outArb[i] = arbiter.New(cfg.ArbKind, p)
			e.offered[i] = bitvec.New(p)
			e.colReq[i] = bitvec.New(p)
		}
	case alloc.Wavefront:
		e.wf = alloc.NewWavefront(p, p)
		e.portReq = bitvec.NewMatrix(p, p)
	case alloc.Maximum:
		// Upper-bound configuration (§2.3): a maximum-size port matching
		// with the wavefront datapath's VC pre-selection. Not realizable as
		// single-cycle hardware; used to bound achievable performance.
		e.wf = alloc.NewMaximum(p, p)
		e.portReq = bitvec.NewMatrix(p, p)
	default:
		panic(fmt.Sprintf("core: unsupported switch allocator arch %v", cfg.Arch))
	}
	return e
}

// noteChange updates the cached request state for request entry (port, vc),
// whose value changed from old to nw since the previous allocation cycle.
func (e *swEngine) noteChange(port, vc int, old, nw SwitchRequest) {
	om, nm := matches(old, e.spec), matches(nw, e.spec)
	if om == nm && (!om || old.OutPort == nw.OutPort) {
		return
	}
	p := e.cfg.Ports
	if om {
		e.count--
		e.outTot[old.OutPort]--
		c := &e.cnt[port*p+old.OutPort]
		if *c--; *c == 0 {
			if e.portReq != nil {
				e.portReq.Row(port).Clear(old.OutPort)
			}
			if e.colReq != nil {
				e.colReq[old.OutPort].Clear(port)
			}
		}
	}
	if nm {
		e.count++
		e.outTot[nw.OutPort]++
		c := &e.cnt[port*p+nw.OutPort]
		if *c++; *c == 1 {
			if e.portReq != nil {
				e.portReq.Row(port).Set(nw.OutPort)
			}
			if e.colReq != nil {
				e.colReq[nw.OutPort].Set(port)
			}
		}
	}
	if nm {
		e.reqMask[port].Set(vc)
		e.portAny.Set(port)
	} else {
		e.reqMask[port].Clear(vc)
		if !e.reqMask[port].Any() {
			e.portAny.Clear(port)
		}
	}
}

func (e *swEngine) reset() {
	for _, a := range e.vcArb {
		a.Reset()
	}
	for _, a := range e.outArb {
		a.Reset()
	}
	if e.wf != nil {
		e.wf.Reset()
	}
}

// matches reports whether request r belongs to this proposal pass.
func matches(r SwitchRequest, spec bool) bool { return r.Active && r.Spec == spec }

// propose computes tentative grants for this engine's request class without
// advancing any priority state.
func (e *swEngine) propose(reqs []SwitchRequest) []swProposal {
	// Scan-and-clear (see switchAllocator.run): only entries a previous
	// pass proposed into need restoring to the no-proposal value.
	for i := range e.props {
		if e.props[i].outPort >= 0 {
			e.props[i] = swProposal{vc: -1, outPort: -1}
		}
	}
	if e.count == 0 {
		// No matching requests: separable arbiters are untouched by an empty
		// pass, but the wavefront block still rotates its priority diagonal
		// (see SkipIdle), so it must run even on an empty matrix.
		if e.wf != nil {
			e.wf.Allocate(e.portReq)
		}
		return e.props
	}
	switch e.cfg.Arch {
	case alloc.SepIF:
		e.proposeSepIF(reqs)
	case alloc.SepOF:
		e.proposeSepOF(reqs)
	case alloc.Wavefront, alloc.Maximum:
		e.proposeWavefront(reqs)
	}
	return e.props
}

// proposeSepIF implements Fig. 8(a): a V-input arbiter per input port picks
// the winning VC, whose single request is forwarded to a P-input arbiter at
// the output port. Only ports in portAny run stage 1, and only outputs that
// received a forwarded pick run stage 2; picks of ports that did not forward
// this cycle are stale and never read.
func (e *swEngine) proposeSepIF(reqs []SwitchRequest) {
	v := e.cfg.VCs
	// P <= 64 in practice, but iterate word-at-a-time generically; none of
	// the loop bodies mutate the vector word they are scanning (stage 1
	// sets fwdAny only after it was reset, and stage 2 only reads it).
	for wi, w := range e.fwdAny.Words() {
		for base := wi * 64; w != 0; w &= w - 1 {
			e.fwd[base+bits.TrailingZeros64(w)].Reset()
		}
	}
	e.fwdAny.Reset()
	for wi, w := range e.portAny.Words() {
		for base := wi * 64; w != 0; w &= w - 1 {
			port := base + bits.TrailingZeros64(w)
			pk := e.vcArb[port].Pick(e.reqMask[port])
			if pk < 0 {
				continue
			}
			e.picks[port] = pk
			o := reqs[port*v+pk].OutPort
			e.fwd[o].Set(port)
			e.fwdAny.Set(o)
		}
	}
	for wi, w := range e.fwdAny.Words() {
		for base := wi * 64; w != 0; w &= w - 1 {
			o := base + bits.TrailingZeros64(w)
			winner := e.outArb[o].Pick(e.fwd[o])
			if winner < 0 {
				continue
			}
			e.props[winner] = swProposal{vc: e.picks[winner], outPort: o}
		}
	}
}

// proposeSepOF implements Fig. 8(b): requests from all VCs are combined and
// forwarded; each output port picks an input port, then each input port
// arbitrates among its VCs that can use one of the granted outputs.
func (e *swEngine) proposeSepOF(reqs []SwitchRequest) {
	p, v := e.cfg.Ports, e.cfg.VCs
	for port := e.offAny.NextSet(0); port >= 0; port = e.offAny.NextSet(port + 1) {
		e.offered[port].Reset()
	}
	e.offAny.Reset()
	for o := 0; o < p; o++ {
		if e.outTot[o] == 0 {
			continue
		}
		winner := e.outArb[o].Pick(e.colReq[o])
		if winner < 0 {
			continue
		}
		e.offered[winner].Set(o)
		e.offAny.Set(winner)
	}
	for port := e.offAny.NextSet(0); port >= 0; port = e.offAny.NextSet(port + 1) {
		// VC arbitration among VCs whose requested output was offered; the
		// winning VC's port select drives the crossbar (Fig. 8b).
		e.vcReq.Reset()
		for vc := e.reqMask[port].NextSet(0); vc >= 0; vc = e.reqMask[port].NextSet(vc + 1) {
			if e.offered[port].Get(reqs[port*v+vc].OutPort) {
				e.vcReq.Set(vc)
			}
		}
		w := e.vcArb[port].Pick(e.vcReq)
		if w < 0 {
			continue
		}
		e.props[port] = swProposal{vc: w, outPort: reqs[port*v+w].OutPort}
	}
}

// proposeWavefront implements Fig. 8(c): a P×P wavefront block over the
// cached port-request matrix, with per-input V-input arbiters selecting the
// winning VC for the granted output.
func (e *swEngine) proposeWavefront(reqs []SwitchRequest) {
	v := e.cfg.VCs
	g := e.wf.Allocate(e.portReq)
	// Grants are a subset of requests, so only ports in portAny can hold one.
	for port := e.portAny.NextSet(0); port >= 0; port = e.portAny.NextSet(port + 1) {
		o := g.Row(port).NextSet(0)
		if o < 0 {
			continue
		}
		e.vcReq.Reset()
		for vc := e.reqMask[port].NextSet(0); vc >= 0; vc = e.reqMask[port].NextSet(vc + 1) {
			if reqs[port*v+vc].OutPort == o {
				e.vcReq.Set(vc)
			}
		}
		w := e.vcArb[port].Pick(e.vcReq)
		if w < 0 {
			continue
		}
		e.props[port] = swProposal{vc: w, outPort: o}
	}
}

// commit advances priority state for the input ports whose proposals were
// accepted end to end.
func (e *swEngine) commit(accepted []bool) {
	for port, ok := range accepted {
		if !ok {
			continue
		}
		prop := e.props[port]
		if prop.outPort < 0 {
			continue
		}
		e.vcArb[port].Update(prop.vc)
		if e.outArb != nil {
			e.outArb[prop.outPort].Update(port)
		}
	}
}

// CheckSwitchGrants validates a switch allocation result: each granted VC
// must have an active request for the granted output port, no output port
// may be granted to two inputs, and speculative flags must be consistent
// with the requests. It returns an error describing the first violation.
func CheckSwitchGrants(p, v int, reqs []SwitchRequest, grants []SwitchGrant) error {
	if len(grants) != p {
		return fmt.Errorf("core: %d grants, want %d", len(grants), p)
	}
	usedOut := make(map[int]int)
	for port, g := range grants {
		if g.OutPort < 0 {
			if g.VC >= 0 {
				return fmt.Errorf("core: port %d has VC %d but no output", port, g.VC)
			}
			continue
		}
		if g.VC < 0 || g.VC >= v {
			return fmt.Errorf("core: port %d granted invalid VC %d", port, g.VC)
		}
		r := reqs[port*v+g.VC]
		if !r.Active {
			return fmt.Errorf("core: port %d VC %d granted without request", port, g.VC)
		}
		if r.OutPort != g.OutPort {
			return fmt.Errorf("core: port %d VC %d granted output %d, requested %d",
				port, g.VC, g.OutPort, r.OutPort)
		}
		if r.Spec != g.Spec {
			return fmt.Errorf("core: port %d VC %d speculative flag mismatch", port, g.VC)
		}
		if prev, dup := usedOut[g.OutPort]; dup {
			return fmt.Errorf("core: output %d granted to ports %d and %d", g.OutPort, prev, port)
		}
		usedOut[g.OutPort] = port
	}
	return nil
}
