package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/xrand"
)

func precompCfg() SwitchAllocConfig {
	return SwitchAllocConfig{Ports: 4, VCs: 2, Arch: alloc.SepIF,
		ArbKind: arbiter.RoundRobin, SpecMode: SpecNone}
}

func TestPrecomputedBasics(t *testing.T) {
	a := NewPrecomputedSwitchAllocator(precompCfg())
	if a.Name() != "sep_if/rr+nonspec+precomp" {
		t.Fatalf("Name = %q", a.Name())
	}
	reqs := make([]SwitchRequest, 8)
	reqs[0] = SwitchRequest{Active: true, OutPort: 2}
	// First cycle: nothing precomputed yet.
	g := a.Allocate(reqs)
	if g[0].OutPort != -1 {
		t.Fatal("first cycle must produce no grants")
	}
	// Second cycle with the request still pending: granted.
	g = a.Allocate(reqs)
	if g[0].OutPort != 2 || g[0].VC != 0 {
		t.Fatalf("persistent request not granted: %+v", g[0])
	}
	if err := CheckSwitchGrants(4, 2, reqs, g); err != nil {
		t.Fatal(err)
	}
}

func TestPrecomputedAbortsStaleGrants(t *testing.T) {
	a := NewPrecomputedSwitchAllocator(precompCfg()).(*precomputedSwitch)
	reqs := make([]SwitchRequest, 8)
	reqs[0] = SwitchRequest{Active: true, OutPort: 2}
	a.Allocate(reqs)
	// The request disappears before its precomputed grant lands.
	gone := make([]SwitchRequest, 8)
	g := a.Allocate(gone)
	if g[0].OutPort != -1 {
		t.Fatalf("stale grant not aborted: %+v", g[0])
	}
	aborted, issued := a.Aborted()
	if aborted != 1 || issued != 1 {
		t.Fatalf("abort accounting (%d/%d), want (1/1)", aborted, issued)
	}
	// A request that changed output port is also aborted.
	reqs[0] = SwitchRequest{Active: true, OutPort: 2}
	a.Allocate(reqs)
	moved := make([]SwitchRequest, 8)
	moved[0] = SwitchRequest{Active: true, OutPort: 3}
	if g := a.Allocate(moved); g[0].OutPort != -1 {
		t.Fatalf("moved request's grant not aborted: %+v", g[0])
	}
}

func TestPrecomputedSustainsStreaming(t *testing.T) {
	// Persistent requests (a long packet streaming through) reach full
	// rate after the one-cycle fill.
	a := NewPrecomputedSwitchAllocator(precompCfg())
	reqs := make([]SwitchRequest, 8)
	reqs[0*2+0] = SwitchRequest{Active: true, OutPort: 2}
	reqs[1*2+1] = SwitchRequest{Active: true, OutPort: 3}
	granted := 0
	for cycle := 0; cycle < 11; cycle++ {
		for _, g := range a.Allocate(reqs) {
			if g.OutPort >= 0 {
				granted++
			}
		}
	}
	if granted != 2*10 {
		t.Fatalf("streaming granted %d, want 20 (full rate after fill cycle)", granted)
	}
}

func TestPrecomputedValidity(t *testing.T) {
	a := NewPrecomputedSwitchAllocator(SwitchAllocConfig{Ports: 5, VCs: 4,
		Arch: alloc.Wavefront, ArbKind: arbiter.RoundRobin, SpecMode: SpecNone})
	rng := xrand.New(601)
	for trial := 0; trial < 400; trial++ {
		reqs := randomSwitchRequests(rng, 5, 4, 0.5, 0)
		if err := CheckSwitchGrants(5, 4, reqs, a.Allocate(reqs)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPrecomputedAbortRateGrowsWithVolatility(t *testing.T) {
	run := func(rate float64) float64 {
		a := NewPrecomputedSwitchAllocator(precompCfg()).(*precomputedSwitch)
		rng := xrand.New(607)
		for trial := 0; trial < 3000; trial++ {
			a.Allocate(randomSwitchRequests(rng, 4, 2, rate, 0))
		}
		aborted, issued := a.Aborted()
		if issued == 0 {
			return 0
		}
		return float64(aborted) / float64(issued)
	}
	sparse, dense := run(0.2), run(0.8)
	if sparse <= dense {
		t.Fatalf("abort rate at low persistence (%.3f) should exceed high persistence (%.3f)",
			sparse, dense)
	}
}

func TestPrecomputedRejectsSpeculation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := precompCfg()
	cfg.SpecMode = SpecReq
	NewPrecomputedSwitchAllocator(cfg)
}

func TestPrecomputedReset(t *testing.T) {
	a := NewPrecomputedSwitchAllocator(precompCfg())
	reqs := make([]SwitchRequest, 8)
	reqs[0] = SwitchRequest{Active: true, OutPort: 1}
	a.Allocate(reqs)
	a.Reset()
	// After reset, no stale precomputed state: first cycle grants nothing.
	if g := a.Allocate(reqs); g[0].OutPort != -1 {
		t.Fatal("Reset did not clear precomputed requests")
	}
}
