package core

import (
	"fmt"

	"repro/internal/alloc"
)

// precomputedSwitch implements the arbitration pre-computation technique of
// Mullins et al. [15] (paper related work, §1): the switch allocator
// evaluates the *previous* cycle's requests, so its combinational work
// overlaps the preceding pipeline stage and only a cheap validation remains
// on the critical path. Grants whose underlying request disappeared or
// changed output port in the meantime are aborted, wasting the crossbar
// slot — the scheme trades request freshness for cycle time.
//
// Speculation is not combined with pre-computation (the speculative path's
// whole point is same-cycle allocation), so construction requires SpecNone.
type precomputedSwitch struct {
	inner SwitchAllocator
	name  string

	prev     []SwitchRequest
	havePrev bool
	grants   []SwitchGrant

	aborted int64
	issued  int64
}

// NewPrecomputedSwitchAllocator wraps the configured base switch allocator
// with request pre-computation. cfg.SpecMode must be SpecNone.
func NewPrecomputedSwitchAllocator(cfg SwitchAllocConfig) SwitchAllocator {
	if cfg.SpecMode != SpecNone {
		panic("core: precomputed switch allocation cannot be combined with speculation")
	}
	cfg.Precomputed = false // build the plain base allocator
	inner := NewSwitchAllocator(cfg)
	return &precomputedSwitch{
		inner:  inner,
		name:   inner.Name() + "+precomp",
		prev:   make([]SwitchRequest, cfg.Ports*cfg.VCs),
		grants: make([]SwitchGrant, cfg.Ports),
	}
}

func (a *precomputedSwitch) Ports() int   { return a.inner.Ports() }
func (a *precomputedSwitch) VCs() int     { return a.inner.VCs() }
func (a *precomputedSwitch) Name() string { return a.name }

func (a *precomputedSwitch) Reset() {
	a.inner.Reset()
	a.havePrev = false
	a.aborted, a.issued = 0, 0
}

// Stats implements SwitchAllocator; the inner allocator carries no
// speculation, so only the wrapper's abort accounting is interesting (see
// Aborted).
func (a *precomputedSwitch) Stats() SwitchAllocStats { return a.inner.Stats() }

// Aborted returns (grants issued on stale requests and validated away,
// total grants the inner allocator produced).
func (a *precomputedSwitch) Aborted() (aborted, issued int64) { return a.aborted, a.issued }

// SkipIdle implements alloc.IdleSkipper. The wrapper latches each cycle's
// requests for the next, so the first idle cycle after activity still issues
// grants from the stale latch (all aborted against the empty live request
// set) and advances the inner allocator's state accordingly; that cycle is
// replayed literally. Once the latch is empty, idle cycles only touch the
// inner allocator's idle-variant state.
func (a *precomputedSwitch) SkipIdle(idleCycles int64) {
	if idleCycles <= 0 {
		return
	}
	if !a.havePrev {
		// The very first cycle only latches the (empty) request set.
		a.havePrev = true
		idleCycles--
	} else {
		stale := false
		for _, r := range a.prev {
			if r.Active {
				stale = true
				break
			}
		}
		if stale {
			for _, g := range a.inner.Allocate(a.prev) {
				if g.OutPort >= 0 {
					a.issued++
					a.aborted++
				}
			}
			for i := range a.prev {
				a.prev[i] = SwitchRequest{}
			}
			idleCycles--
		}
	}
	if idleCycles > 0 {
		if s, ok := a.inner.(alloc.IdleSkipper); ok {
			s.SkipIdle(idleCycles)
		}
	}
}

func (a *precomputedSwitch) Allocate(reqs []SwitchRequest) []SwitchGrant {
	if len(reqs) != len(a.prev) {
		panic(fmt.Sprintf("core: %d switch requests, want %d", len(reqs), len(a.prev)))
	}
	v := a.inner.VCs()
	for i := range a.grants {
		a.grants[i] = SwitchGrant{VC: -1, OutPort: -1}
	}
	if a.havePrev {
		for port, g := range a.inner.Allocate(a.prev) {
			if g.OutPort < 0 {
				continue
			}
			a.issued++
			// Validation against the live requests: the flit must still be
			// there and still want the same output.
			r := reqs[port*v+g.VC]
			if !r.Active || r.Spec || r.OutPort != g.OutPort {
				a.aborted++
				continue
			}
			a.grants[port] = g
		}
	}
	copy(a.prev, reqs)
	a.havePrev = true
	return a.grants
}
