package core

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/xrand"
)

func swConfigs(p, v int, mode SpecMode) []SwitchAllocConfig {
	var cfgs []SwitchAllocConfig
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		cfgs = append(cfgs, SwitchAllocConfig{Ports: p, VCs: v, Arch: arch, ArbKind: arbiter.RoundRobin, SpecMode: mode})
		if arch != alloc.Wavefront {
			cfgs = append(cfgs, SwitchAllocConfig{Ports: p, VCs: v, Arch: arch, ArbKind: arbiter.Matrix, SpecMode: mode})
		}
	}
	return cfgs
}

// randomSwitchRequests generates requests with the given activity rate and
// speculative fraction.
func randomSwitchRequests(rng *xrand.Source, p, v int, rate, specFrac float64) []SwitchRequest {
	reqs := make([]SwitchRequest, p*v)
	for i := range reqs {
		if rng.Bool(rate) {
			reqs[i] = SwitchRequest{Active: true, OutPort: rng.Intn(p), Spec: rng.Bool(specFrac)}
		}
	}
	return reqs
}

func TestSpecModeString(t *testing.T) {
	cases := map[SpecMode]string{SpecNone: "nonspec", SpecGnt: "spec_gnt", SpecReq: "spec_req"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if SpecMode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}

func TestSwitchAllocatorNames(t *testing.T) {
	got := NewSwitchAllocator(SwitchAllocConfig{Ports: 5, VCs: 2, Arch: alloc.SepIF,
		ArbKind: arbiter.RoundRobin, SpecMode: SpecReq}).Name()
	if got != "sep_if/rr+spec_req" {
		t.Fatalf("Name = %q", got)
	}
	got = NewSwitchAllocator(SwitchAllocConfig{Ports: 5, VCs: 2, Arch: alloc.Wavefront,
		SpecMode: SpecNone}).Name()
	if got != "wf/rr+nonspec" {
		t.Fatalf("Name = %q", got)
	}
}

func TestSwitchAllocatorBadConfigPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewSwitchAllocator(SwitchAllocConfig{Ports: 0, VCs: 1}) },
		func() { NewSwitchAllocator(SwitchAllocConfig{Ports: 2, VCs: 0}) },
		func() { NewSwitchAllocator(SwitchAllocConfig{Ports: 2, VCs: 1, Arch: alloc.Arch(99)}) },
		func() {
			a := NewSwitchAllocator(SwitchAllocConfig{Ports: 2, VCs: 2, Arch: alloc.SepIF})
			a.Allocate(make([]SwitchRequest, 3))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSwitchAllocatorEmpty(t *testing.T) {
	for _, cfg := range swConfigs(5, 2, SpecReq) {
		a := NewSwitchAllocator(cfg)
		grants := a.Allocate(make([]SwitchRequest, 10))
		for p, g := range grants {
			if g.OutPort != -1 || g.VC != -1 {
				t.Fatalf("%s: spurious grant at port %d: %+v", a.Name(), p, g)
			}
		}
	}
}

func TestSwitchAllocatorSingleRequest(t *testing.T) {
	for _, mode := range []SpecMode{SpecNone, SpecGnt, SpecReq} {
		for _, cfg := range swConfigs(5, 2, mode) {
			a := NewSwitchAllocator(cfg)
			reqs := make([]SwitchRequest, 10)
			reqs[3*2+1] = SwitchRequest{Active: true, OutPort: 4}
			grants := a.Allocate(reqs)
			g := grants[3]
			if g.OutPort != 4 || g.VC != 1 || g.Spec {
				t.Fatalf("%s: got %+v, want {VC:1 OutPort:4}", a.Name(), g)
			}
		}
	}
}

func TestSwitchAllocatorValidityRandom(t *testing.T) {
	for _, mode := range []SpecMode{SpecNone, SpecGnt, SpecReq} {
		for _, cfg := range swConfigs(5, 4, mode) {
			a := NewSwitchAllocator(cfg)
			rng := xrand.New(uint64(73 + int(mode)))
			for trial := 0; trial < 300; trial++ {
				specFrac := 0.3
				if mode == SpecNone {
					specFrac = 0
				}
				reqs := randomSwitchRequests(rng, 5, 4, 0.4, specFrac)
				grants := a.Allocate(reqs)
				if err := CheckSwitchGrants(5, 4, reqs, grants); err != nil {
					t.Fatalf("%s trial %d: %v", a.Name(), trial, err)
				}
			}
		}
	}
}

func TestSwitchNonConflictingAllGranted(t *testing.T) {
	// A permutation of non-speculative requests must be fully granted.
	for _, cfg := range swConfigs(5, 2, SpecNone) {
		a := NewSwitchAllocator(cfg)
		reqs := make([]SwitchRequest, 10)
		for p := 0; p < 5; p++ {
			reqs[p*2] = SwitchRequest{Active: true, OutPort: (p + 1) % 5}
		}
		grants := a.Allocate(reqs)
		for p := 0; p < 5; p++ {
			if grants[p].OutPort != (p+1)%5 {
				t.Fatalf("%s: port %d grant %+v, want output %d", a.Name(), p, grants[p], (p+1)%5)
			}
		}
	}
}

func TestSwitchOneVCPerPortConstraint(t *testing.T) {
	// Even if every VC at a port requests a different free output, at most
	// one VC per input port may win (paper §5.1).
	for _, cfg := range swConfigs(5, 4, SpecNone) {
		a := NewSwitchAllocator(cfg)
		reqs := make([]SwitchRequest, 20)
		for vc := 0; vc < 4; vc++ {
			reqs[0*4+vc] = SwitchRequest{Active: true, OutPort: vc}
		}
		grants := a.Allocate(reqs)
		if grants[0].OutPort < 0 {
			t.Fatalf("%s: port with 4 requests received no grant", a.Name())
		}
		for p := 1; p < 5; p++ {
			if grants[p].OutPort >= 0 {
				t.Fatalf("%s: idle port %d received grant", a.Name(), p)
			}
		}
	}
}

func TestSpeculativeGrantLowLoad(t *testing.T) {
	// At zero load a lone speculative request must be granted under both
	// speculative schemes and ignored by the non-speculative allocator.
	for _, mode := range []SpecMode{SpecGnt, SpecReq} {
		for _, cfg := range swConfigs(5, 2, mode) {
			a := NewSwitchAllocator(cfg)
			reqs := make([]SwitchRequest, 10)
			reqs[1*2+0] = SwitchRequest{Active: true, OutPort: 3, Spec: true}
			grants := a.Allocate(reqs)
			g := grants[1]
			if g.OutPort != 3 || !g.Spec {
				t.Fatalf("%s: lone speculative request not granted: %+v", a.Name(), g)
			}
		}
	}
	a := NewSwitchAllocator(SwitchAllocConfig{Ports: 5, VCs: 2, Arch: alloc.SepIF, SpecMode: SpecNone})
	reqs := make([]SwitchRequest, 10)
	reqs[1*2+0] = SwitchRequest{Active: true, OutPort: 3, Spec: true}
	if g := a.Allocate(reqs)[1]; g.OutPort != -1 {
		t.Fatalf("nonspec allocator must ignore speculative requests, got %+v", g)
	}
}

func TestNonSpecPriorityOverSpec(t *testing.T) {
	// A speculative grant must never displace a non-speculative one on the
	// same input or output port, under either masking scheme.
	for _, mode := range []SpecMode{SpecGnt, SpecReq} {
		for _, cfg := range swConfigs(4, 2, mode) {
			a := NewSwitchAllocator(cfg)
			// Port 0 nonspec -> output 2; port 1 spec -> output 2 (output
			// conflict); port 2 has both spec and nonspec VCs (input
			// conflict).
			reqs := make([]SwitchRequest, 8)
			reqs[0*2+0] = SwitchRequest{Active: true, OutPort: 2}
			reqs[1*2+0] = SwitchRequest{Active: true, OutPort: 2, Spec: true}
			reqs[2*2+0] = SwitchRequest{Active: true, OutPort: 3}
			reqs[2*2+1] = SwitchRequest{Active: true, OutPort: 1, Spec: true}
			for trial := 0; trial < 20; trial++ {
				grants := a.Allocate(reqs)
				if grants[0].OutPort != 2 || grants[0].Spec {
					t.Fatalf("%s: nonspec request lost output 2: %+v", a.Name(), grants[0])
				}
				if grants[1].OutPort >= 0 {
					t.Fatalf("%s: speculative grant on conflicted output: %+v", a.Name(), grants[1])
				}
				if grants[2].OutPort != 3 || grants[2].Spec {
					t.Fatalf("%s: port 2 must grant its nonspec VC: %+v", a.Name(), grants[2])
				}
			}
		}
	}
}

func TestPessimisticMasksOnRequests(t *testing.T) {
	// The distinguishing case (Fig. 9): a non-speculative REQUEST that does
	// not win a grant still kills conflicting speculative grants under
	// spec_req but not under spec_gnt.
	//
	// Ports 0 and 1 both issue nonspec requests to output 0 — only one can
	// win. Port 2 issues a spec request to output 1 (no conflict; granted
	// in both schemes). Port 3 issues a spec request to output 2; port 1
	// ALSO has a nonspec request to output 2 queued at another VC. When
	// port 1 loses output 0... its request to output 2 was also forwarded.
	//
	// Construct more directly: port 0 nonspec -> output 0. Port 1 spec ->
	// output 0. Under spec_gnt port 1's spec grant is masked only because
	// port 0 wins. Now make port 0's request lose: ports 0 and 2 both
	// nonspec -> output 0; whoever loses still REQUESTED output 0, and a
	// spec request from port 1 to output 0 is masked either way. The
	// request-vs-grant difference shows on the INPUT side: port 0 has a
	// nonspec VC requesting output 0 AND a spec VC requesting output 1.
	// If port 0's nonspec request loses to port 2, then under spec_gnt the
	// spec VC may still win output 1, but under spec_req the mere presence
	// of the nonspec request at port 0 kills it.
	mk := func(mode SpecMode) (SwitchAllocator, []SwitchRequest) {
		a := NewSwitchAllocator(SwitchAllocConfig{Ports: 4, VCs: 2, Arch: alloc.SepIF,
			ArbKind: arbiter.RoundRobin, SpecMode: mode})
		reqs := make([]SwitchRequest, 8)
		reqs[0*2+0] = SwitchRequest{Active: true, OutPort: 0}             // nonspec, contended
		reqs[0*2+1] = SwitchRequest{Active: true, OutPort: 1, Spec: true} // spec, uncontended output
		reqs[2*2+0] = SwitchRequest{Active: true, OutPort: 0}             // nonspec, contended
		return a, reqs
	}

	// Under spec_req, port 0's speculative VC must never be granted while
	// its nonspec VC has a pending request.
	a, reqs := mk(SpecReq)
	for trial := 0; trial < 10; trial++ {
		grants := a.Allocate(reqs)
		if grants[0].Spec {
			t.Fatalf("spec_req: speculative grant despite nonspec request at same port: %+v", grants[0])
		}
	}

	// Under spec_gnt, in the cycle where port 0's nonspec request loses
	// output 0 to port 2, the speculative VC at port 0 may win output 1.
	a, reqs = mk(SpecGnt)
	sawSpecWin := false
	for trial := 0; trial < 10; trial++ {
		grants := a.Allocate(reqs)
		if grants[0].Spec && grants[0].OutPort == 1 {
			sawSpecWin = true
		}
	}
	if !sawSpecWin {
		t.Fatal("spec_gnt: expected speculative grant in cycles where the nonspec request loses")
	}
}

func TestSpecGntGrantsAtLeastAsManyAsSpecReq(t *testing.T) {
	// Aggregate: conventional speculation recovers more opportunities than
	// the pessimistic scheme under load (paper §5.3.3).
	p, v := 5, 4
	mkReqs := func(rng *xrand.Source) []SwitchRequest {
		return randomSwitchRequests(rng, p, v, 0.6, 0.4)
	}
	count := func(mode SpecMode) int {
		a := NewSwitchAllocator(SwitchAllocConfig{Ports: p, VCs: v, Arch: alloc.SepIF,
			ArbKind: arbiter.RoundRobin, SpecMode: mode})
		rng := xrand.New(97)
		total := 0
		for trial := 0; trial < 2000; trial++ {
			for _, g := range a.Allocate(mkReqs(rng)) {
				if g.OutPort >= 0 {
					total++
				}
			}
		}
		return total
	}
	gnt, req := count(SpecGnt), count(SpecReq)
	if gnt <= req {
		t.Fatalf("spec_gnt total grants (%d) should exceed spec_req (%d) under load", gnt, req)
	}
}

func TestSwitchSepIFFlattensOut(t *testing.T) {
	// Paper §5.3.2: sep_if propagates only one request per input port, so
	// under saturation it grants fewer than wf.
	p, v := 5, 4
	count := func(arch alloc.Arch) int {
		a := NewSwitchAllocator(SwitchAllocConfig{Ports: p, VCs: v, Arch: arch,
			ArbKind: arbiter.RoundRobin, SpecMode: SpecNone})
		rng := xrand.New(89)
		total := 0
		for trial := 0; trial < 2000; trial++ {
			reqs := randomSwitchRequests(rng, p, v, 0.9, 0)
			for _, g := range a.Allocate(reqs) {
				if g.OutPort >= 0 {
					total++
				}
			}
		}
		return total
	}
	sif, wf := count(alloc.SepIF), count(alloc.Wavefront)
	if wf <= sif {
		t.Fatalf("wavefront (%d) should out-grant sep_if (%d) at saturation", wf, sif)
	}
}

func TestSwitchAllocatorFairness(t *testing.T) {
	// Two ports contending for one output alternate under separable
	// allocation; wavefront guarantees only absence of starvation.
	for _, cfg := range swConfigs(3, 2, SpecNone) {
		a := NewSwitchAllocator(cfg)
		reqs := make([]SwitchRequest, 6)
		reqs[0*2+0] = SwitchRequest{Active: true, OutPort: 2}
		reqs[1*2+1] = SwitchRequest{Active: true, OutPort: 2}
		counts := [2]int{}
		for k := 0; k < 100; k++ {
			grants := a.Allocate(reqs)
			for p := 0; p < 2; p++ {
				if grants[p].OutPort == 2 {
					counts[p]++
				}
			}
		}
		if counts[0]+counts[1] != 100 {
			t.Fatalf("%s: want one grant per cycle, got %v", a.Name(), counts)
		}
		min := 40
		if cfg.Arch == alloc.Wavefront {
			min = 10
		}
		if counts[0] < min || counts[1] < min {
			t.Errorf("%s: unfair distribution %v", a.Name(), counts)
		}
	}
}

func TestSwitchVCLevelFairnessWithinPort(t *testing.T) {
	// VCs within a port competing for the same output must share grants.
	for _, cfg := range swConfigs(2, 4, SpecNone) {
		a := NewSwitchAllocator(cfg)
		reqs := make([]SwitchRequest, 8)
		for vc := 0; vc < 4; vc++ {
			reqs[vc] = SwitchRequest{Active: true, OutPort: 1}
		}
		counts := make([]int, 4)
		for k := 0; k < 400; k++ {
			g := a.Allocate(reqs)[0]
			if g.VC < 0 {
				t.Fatalf("%s: no grant", a.Name())
			}
			counts[g.VC]++
		}
		for vc, c := range counts {
			if c != 100 {
				t.Errorf("%s: VC %d granted %d/400, want 100", a.Name(), vc, c)
			}
		}
	}
}

func TestSwitchAllocatorReset(t *testing.T) {
	for _, mode := range []SpecMode{SpecNone, SpecReq} {
		for _, cfg := range swConfigs(4, 2, mode) {
			a := NewSwitchAllocator(cfg)
			rng := xrand.New(83)
			specFrac := 0.3
			if mode == SpecNone {
				specFrac = 0
			}
			reqs := randomSwitchRequests(rng, 4, 2, 0.8, specFrac)
			first := append([]SwitchGrant(nil), a.Allocate(reqs)...)
			a.Allocate(reqs)
			a.Reset()
			again := a.Allocate(reqs)
			for i := range first {
				if first[i] != again[i] {
					t.Fatalf("%s: Reset did not restore initial decisions", a.Name())
				}
			}
		}
	}
}

func TestCheckSwitchGrantsDetectsViolations(t *testing.T) {
	reqs := make([]SwitchRequest, 4) // 2 ports, 2 VCs
	reqs[0] = SwitchRequest{Active: true, OutPort: 1}
	reqs[2] = SwitchRequest{Active: true, OutPort: 1}

	if CheckSwitchGrants(2, 2, reqs, []SwitchGrant{{VC: -1, OutPort: -1}}) == nil {
		t.Error("wrong grant count not detected")
	}
	bad := []SwitchGrant{{VC: 0, OutPort: 1}, {VC: 0, OutPort: 1}}
	if CheckSwitchGrants(2, 2, reqs, bad) == nil {
		t.Error("duplicate output not detected")
	}
	bad = []SwitchGrant{{VC: 1, OutPort: 1}, {VC: -1, OutPort: -1}}
	if CheckSwitchGrants(2, 2, reqs, bad) == nil {
		t.Error("grant without request not detected")
	}
	bad = []SwitchGrant{{VC: 0, OutPort: 0}, {VC: -1, OutPort: -1}}
	if CheckSwitchGrants(2, 2, reqs, bad) == nil {
		t.Error("wrong output port not detected")
	}
	bad = []SwitchGrant{{VC: 0, OutPort: 1, Spec: true}, {VC: -1, OutPort: -1}}
	if CheckSwitchGrants(2, 2, reqs, bad) == nil {
		t.Error("spec flag mismatch not detected")
	}
	bad = []SwitchGrant{{VC: 2, OutPort: 1}, {VC: -1, OutPort: -1}}
	if CheckSwitchGrants(2, 2, reqs, bad) == nil {
		t.Error("invalid VC not detected")
	}
	bad = []SwitchGrant{{VC: 0, OutPort: -1}, {VC: -1, OutPort: -1}}
	if CheckSwitchGrants(2, 2, reqs, bad) == nil {
		t.Error("VC without output not detected")
	}
	good := []SwitchGrant{{VC: 0, OutPort: 1}, {VC: -1, OutPort: -1}}
	if err := CheckSwitchGrants(2, 2, reqs, good); err != nil {
		t.Errorf("valid grants rejected: %v", err)
	}
}

func BenchmarkSwitchMeshSepIFNonspec(b *testing.B) {
	benchSwitch(b, 5, 8, alloc.SepIF, SpecNone)
}
func BenchmarkSwitchFbflyWavefrontSpecReq(b *testing.B) {
	benchSwitch(b, 10, 16, alloc.Wavefront, SpecReq)
}

func benchSwitch(b *testing.B, p, v int, arch alloc.Arch, mode SpecMode) {
	a := NewSwitchAllocator(SwitchAllocConfig{Ports: p, VCs: v, Arch: arch,
		ArbKind: arbiter.RoundRobin, SpecMode: mode})
	rng := xrand.New(1)
	specFrac := 0.3
	if mode == SpecNone {
		specFrac = 0
	}
	reqs := randomSwitchRequests(rng, p, v, 0.5, specFrac)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(reqs)
	}
}

func TestSwitchAllocStats(t *testing.T) {
	a := NewSwitchAllocator(SwitchAllocConfig{Ports: 4, VCs: 2, Arch: alloc.SepIF,
		ArbKind: arbiter.RoundRobin, SpecMode: SpecReq})
	// Lone speculative request: proposed and granted, nothing masked.
	reqs := make([]SwitchRequest, 8)
	reqs[0] = SwitchRequest{Active: true, OutPort: 1, Spec: true}
	a.Allocate(reqs)
	s := a.Stats()
	if s.SpecProposals != 1 || s.SpecGranted != 1 || s.SpecMasked != 0 {
		t.Fatalf("lone spec request stats %+v", s)
	}
	// Conflicting nonspec request masks the speculative proposal.
	reqs[1*2+0] = SwitchRequest{Active: true, OutPort: 1}
	a.Allocate(reqs)
	s = a.Stats()
	if s.SpecProposals != 2 || s.SpecMasked != 1 {
		t.Fatalf("masked spec request stats %+v", s)
	}
	a.Reset()
	if a.Stats() != (SwitchAllocStats{}) {
		t.Fatal("Reset must clear stats")
	}
}

func TestPessimisticMasksMoreThanConventional(t *testing.T) {
	// §5.3.3: near saturation the pessimistic variant discards a larger
	// fraction of speculation opportunities than the conventional one.
	masked := func(mode SpecMode) int64 {
		a := NewSwitchAllocator(SwitchAllocConfig{Ports: 5, VCs: 4, Arch: alloc.SepIF,
			ArbKind: arbiter.RoundRobin, SpecMode: mode})
		rng := xrand.New(301)
		for trial := 0; trial < 2000; trial++ {
			a.Allocate(randomSwitchRequests(rng, 5, 4, 0.7, 0.4))
		}
		return a.Stats().SpecMasked
	}
	pessimistic, conventional := masked(SpecReq), masked(SpecGnt)
	if pessimistic <= conventional {
		t.Fatalf("spec_req masked %d, should exceed spec_gnt's %d under load",
			pessimistic, conventional)
	}
}

func TestNonspecAllocatorHasNoSpecStats(t *testing.T) {
	a := NewSwitchAllocator(SwitchAllocConfig{Ports: 4, VCs: 2, Arch: alloc.SepIF,
		ArbKind: arbiter.RoundRobin, SpecMode: SpecNone})
	rng := xrand.New(1)
	for trial := 0; trial < 100; trial++ {
		a.Allocate(randomSwitchRequests(rng, 4, 2, 0.5, 0))
	}
	if a.Stats() != (SwitchAllocStats{}) {
		t.Fatalf("nonspec allocator recorded spec stats: %+v", a.Stats())
	}
}

func TestMaximumSwitchAllocatorBound(t *testing.T) {
	// The maximum-size configuration (§2.3) bounds every practical
	// allocator's grant count on identical request streams.
	p, v := 5, 4
	count := func(arch alloc.Arch) int {
		a := NewSwitchAllocator(SwitchAllocConfig{Ports: p, VCs: v, Arch: arch,
			ArbKind: arbiter.RoundRobin, SpecMode: SpecNone})
		rng := xrand.New(701)
		total := 0
		for trial := 0; trial < 1500; trial++ {
			reqs := randomSwitchRequests(rng, p, v, 0.7, 0)
			grants := a.Allocate(reqs)
			if err := CheckSwitchGrants(p, v, reqs, grants); err != nil {
				t.Fatalf("%v: %v", arch, err)
			}
			for _, g := range grants {
				if g.OutPort >= 0 {
					total++
				}
			}
		}
		return total
	}
	max := count(alloc.Maximum)
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		if got := count(arch); got > max {
			t.Errorf("%v granted %d > maximum bound %d", arch, got, max)
		}
	}
}
