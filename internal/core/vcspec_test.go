package core

import (
	"testing"
	"testing/quick"
)

func TestVCSpecBasics(t *testing.T) {
	s := NewVCSpec(2, 2, 4)
	if s.V() != 16 {
		t.Fatalf("V = %d, want 16", s.V())
	}
	if s.Classes() != 4 {
		t.Fatalf("Classes = %d, want 4", s.Classes())
	}
	if s.String() != "2x2x4" {
		t.Fatalf("String = %q, want 2x2x4", s.String())
	}
}

func TestVCSpecIndexRoundTrip(t *testing.T) {
	s := NewVCSpec(3, 2, 5)
	seen := make(map[int]bool)
	for m := 0; m < 3; m++ {
		for r := 0; r < 2; r++ {
			for c := 0; c < 5; c++ {
				idx := s.VCIndex(m, r, c)
				if idx < 0 || idx >= s.V() || seen[idx] {
					t.Fatalf("VCIndex(%d,%d,%d) = %d invalid or duplicate", m, r, c, idx)
				}
				seen[idx] = true
				gm, gr, gc := s.Decompose(idx)
				if gm != m || gr != r || gc != c {
					t.Fatalf("Decompose(%d) = (%d,%d,%d), want (%d,%d,%d)", idx, gm, gr, gc, m, r, c)
				}
				if s.ClassOf(idx) != s.ClassIndex(m, r) {
					t.Fatalf("ClassOf(%d) mismatch", idx)
				}
			}
		}
	}
}

func TestVCSpecClassContiguity(t *testing.T) {
	// Sparse decomposition relies on message classes occupying contiguous
	// VC index ranges.
	s := NewVCSpec(2, 2, 4)
	perMsg := s.ResourceClasses * s.VCsPerClass
	for m := 0; m < s.MessageClasses; m++ {
		for r := 0; r < s.ResourceClasses; r++ {
			for c := 0; c < s.VCsPerClass; c++ {
				idx := s.VCIndex(m, r, c)
				if idx < m*perMsg || idx >= (m+1)*perMsg {
					t.Fatalf("VC (%d,%d,%d) index %d outside message-class block", m, r, c, idx)
				}
			}
		}
	}
}

func TestVCSpecValidate(t *testing.T) {
	bad := []VCSpec{
		{MessageClasses: 0, ResourceClasses: 1, VCsPerClass: 1},
		{MessageClasses: 1, ResourceClasses: -1, VCsPerClass: 1},
		{MessageClasses: 1, ResourceClasses: 2, VCsPerClass: 1, ResourceSucc: [][]int{{0}}},
		{MessageClasses: 1, ResourceClasses: 2, VCsPerClass: 1, ResourceSucc: [][]int{{0}, {2}}},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := NewVCSpec(2, 2, 4).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestDefaultSuccessors(t *testing.T) {
	s1 := DefaultSuccessors(1)
	if len(s1) != 1 || len(s1[0]) != 1 || s1[0][0] != 0 {
		t.Fatalf("R=1 successors = %v, want [[0]]", s1)
	}
	s3 := DefaultSuccessors(3)
	want := [][]int{{0, 1}, {1, 2}, {2}}
	for r := range want {
		if len(s3[r]) != len(want[r]) {
			t.Fatalf("R=3 successors[%d] = %v, want %v", r, s3[r], want[r])
		}
		for i := range want[r] {
			if s3[r][i] != want[r][i] {
				t.Fatalf("R=3 successors[%d] = %v, want %v", r, s3[r], want[r])
			}
		}
	}
}

func TestFig4TransitionMatrix(t *testing.T) {
	// Paper Fig. 4: for the flattened butterfly with 2 message classes,
	// 2 resource classes and 4 VCs per class, exactly 96 of 256 possible
	// VC-to-VC transitions are legal, and any given VC has at most 8
	// successors, all within the same quadrant.
	s := NewVCSpec(2, 2, 4)
	m := s.TransitionMatrix()
	if m.Rows() != 16 || m.Cols() != 16 {
		t.Fatalf("transition matrix %dx%d, want 16x16", m.Rows(), m.Cols())
	}
	if got := m.Count(); got != 96 {
		t.Fatalf("legal transitions = %d, want 96", got)
	}
	if got := s.CountLegalTransitions(); got != 96 {
		t.Fatalf("CountLegalTransitions = %d, want 96", got)
	}
	if got := s.MaxSuccessorsPerVC(); got != 8 {
		t.Fatalf("MaxSuccessorsPerVC = %d, want 8", got)
	}
	// Quadrant confinement: transitions never cross message classes.
	for from := 0; from < 16; from++ {
		fm, _, _ := s.Decompose(from)
		for to := 0; to < 16; to++ {
			tm, _, _ := s.Decompose(to)
			if m.Get(from, to) && fm != tm {
				t.Fatalf("transition %d->%d crosses message class", from, to)
			}
		}
	}
	// Predecessor bound: at most 8 predecessors per VC.
	for to := 0; to < 16; to++ {
		if m.ColCount(to) > 8 {
			t.Fatalf("VC %d has %d predecessors, want <= 8", to, m.ColCount(to))
		}
	}
}

func TestMeshTransitionMatrix(t *testing.T) {
	// Mesh configs (2x1xC) allow transitions only within the same class.
	s := NewVCSpec(2, 1, 4)
	m := s.TransitionMatrix()
	if got := m.Count(); got != 2*4*4 {
		t.Fatalf("legal transitions = %d, want 32", got)
	}
}

func TestLegalTransitionSemantics(t *testing.T) {
	s := NewVCSpec(2, 2, 2)
	// Same message class, resource 0 -> 1 allowed.
	if !s.LegalTransition(s.VCIndex(0, 0, 0), s.VCIndex(0, 1, 1)) {
		t.Error("0->1 resource transition should be legal")
	}
	// Resource 1 -> 0 forbidden (partial order).
	if s.LegalTransition(s.VCIndex(0, 1, 0), s.VCIndex(0, 0, 0)) {
		t.Error("1->0 resource transition should be illegal")
	}
	// Message class change always forbidden.
	if s.LegalTransition(s.VCIndex(0, 0, 0), s.VCIndex(1, 0, 0)) {
		t.Error("message class transition should be illegal")
	}
	// Staying put is legal.
	if !s.LegalTransition(s.VCIndex(1, 1, 0), s.VCIndex(1, 1, 1)) {
		t.Error("same-class transition should be legal")
	}
}

func TestClassAndSuccessorMasks(t *testing.T) {
	s := NewVCSpec(2, 2, 4)
	cm := s.ClassMask(1, 0)
	if cm.Count() != 4 {
		t.Fatalf("class mask count = %d, want 4", cm.Count())
	}
	for c := 0; c < 4; c++ {
		if !cm.Get(s.VCIndex(1, 0, c)) {
			t.Fatalf("class mask missing VC (1,0,%d)", c)
		}
	}
	sm := s.SuccessorMask(s.VCIndex(0, 0, 2))
	if sm.Count() != 8 {
		t.Fatalf("successor mask count = %d, want 8 (classes 0 and 1)", sm.Count())
	}
	sm1 := s.SuccessorMask(s.VCIndex(0, 1, 2))
	if sm1.Count() != 4 {
		t.Fatalf("final class successor mask count = %d, want 4", sm1.Count())
	}
}

func TestSuccessorPredecessorClassCounts(t *testing.T) {
	s := NewVCSpec(2, 2, 4)
	if got := s.MaxSuccessorClasses(); got != 2 {
		t.Fatalf("MaxSuccessorClasses = %d, want 2", got)
	}
	if got := s.MaxPredecessorClasses(); got != 2 {
		t.Fatalf("MaxPredecessorClasses = %d, want 2", got)
	}
	if got := s.PredecessorCount(0); got != 1 {
		t.Fatalf("PredecessorCount(0) = %d, want 1", got)
	}
	if got := s.PredecessorCount(1); got != 2 {
		t.Fatalf("PredecessorCount(1) = %d, want 2", got)
	}
	r1 := NewVCSpec(2, 1, 4)
	if got := r1.MaxSuccessorClasses(); got != 1 {
		t.Fatalf("R=1 MaxSuccessorClasses = %d, want 1", got)
	}
}

func TestCustomSuccessors(t *testing.T) {
	// A ring of resource classes (0->1->2->0) is expressible.
	s := VCSpec{MessageClasses: 1, ResourceClasses: 3, VCsPerClass: 1,
		ResourceSucc: [][]int{{1}, {2}, {0}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.LegalTransition(2, 0) {
		t.Error("custom successor 2->0 should be legal")
	}
	if s.LegalTransition(0, 0) {
		t.Error("0->0 not in custom successor set")
	}
}

func TestVCIndexPanics(t *testing.T) {
	s := NewVCSpec(2, 2, 2)
	for _, fn := range []func(){
		func() { s.VCIndex(2, 0, 0) },
		func() { s.VCIndex(0, 2, 0) },
		func() { s.VCIndex(0, 0, 2) },
		func() { s.Decompose(8) },
		func() { s.Decompose(-1) },
		func() { s.ClassIndex(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: the count of legal transitions follows the closed form
// M · C² · Σ_r |succ(r)| for default monotonic successors.
func TestQuickTransitionCountClosedForm(t *testing.T) {
	f := func(mRaw, rRaw, cRaw uint8) bool {
		m := int(mRaw%3) + 1
		r := int(rRaw%3) + 1
		c := int(cRaw%3) + 1
		s := NewVCSpec(m, r, c)
		succSum := 0
		for i := 0; i < r; i++ {
			if i+1 < r {
				succSum += 2
			} else {
				succSum++
			}
		}
		want := m * c * c * succSum
		return s.CountLegalTransitions() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
