package core

import (
	"repro/internal/arbiter"
	"repro/internal/bitvec"
)

// freeQueueVCAllocator implements the free-VC-queue scheme Mullins et al.
// propose for reducing VC allocation delay (cited as [15] in the paper's
// related work): instead of matching input VCs to specific output VCs, each
// output port keeps one FIFO of free VCs per (message, resource) class. A
// single arbitration per (port, class) picks a winning input VC, which is
// assigned whichever VC sits at the queue head — removing the input-side
// arbitration stage from the critical path entirely.
//
// The price is matching quality: at most one VC per (port, class) can be
// assigned per cycle even when several are free, so under load it grants
// fewer VCs than the separable or wavefront allocators (exercised by the
// quality tests).
type freeQueueVCAllocator struct {
	ports int
	spec  VCSpec
	v     int
	name  string

	// Per (output port, class): FIFO of free VC ids (global per-port local
	// index) and the arbiter among requesting input VCs.
	queues [][]int
	arbs   []arbiter.Arbiter // width ports*v
	inQ    []bool            // per (port, local vc): tracked as free

	grants []int
	reqVec *bitvec.Vec
}

// NewFreeQueueVCAllocator builds the free-VC-queue allocator.
func NewFreeQueueVCAllocator(cfg VCAllocConfig) VCAllocator {
	if cfg.Ports <= 0 {
		panic("core: Ports must be positive")
	}
	if err := cfg.Spec.Validate(); err != nil {
		panic(err)
	}
	v := cfg.Spec.V()
	a := &freeQueueVCAllocator{
		ports:  cfg.Ports,
		spec:   cfg.Spec,
		v:      v,
		name:   "freeq/" + cfg.ArbKind.String(),
		grants: make([]int, cfg.Ports*v),
		reqVec: bitvec.New(cfg.Ports * v),
		inQ:    make([]bool, cfg.Ports*v),
	}
	classes := cfg.Spec.Classes()
	for port := 0; port < cfg.Ports; port++ {
		for cls := 0; cls < classes; cls++ {
			q := make([]int, 0, cfg.Spec.VCsPerClass)
			for c := 0; c < cfg.Spec.VCsPerClass; c++ {
				vc := cls*cfg.Spec.VCsPerClass + c
				q = append(q, vc)
				a.inQ[port*v+vc] = true
			}
			a.queues = append(a.queues, q)
			a.arbs = append(a.arbs, arbiter.New(cfg.ArbKind, cfg.Ports*v))
		}
	}
	return a
}

func (a *freeQueueVCAllocator) Ports() int   { return a.ports }
func (a *freeQueueVCAllocator) VCs() int     { return a.v }
func (a *freeQueueVCAllocator) Name() string { return a.name }

func (a *freeQueueVCAllocator) Reset() {
	classes := a.spec.Classes()
	for i := range a.inQ {
		a.inQ[i] = false
	}
	for port := 0; port < a.ports; port++ {
		for cls := 0; cls < classes; cls++ {
			q := a.queues[port*classes+cls][:0]
			for c := 0; c < a.spec.VCsPerClass; c++ {
				vc := cls*a.spec.VCsPerClass + c
				q = append(q, vc)
				a.inQ[port*a.v+vc] = true
			}
			a.queues[port*classes+cls] = q
			a.arbs[port*classes+cls].Reset()
		}
	}
}

func (a *freeQueueVCAllocator) qIndex(port, class int) int { return port*a.spec.Classes() + class }

// noteFreed re-enqueues VCs the router reports as candidates but which the
// allocator had handed out earlier: their packets released them.
//
// Unlike the simulator's flit/packet pools, these free lists need no trim
// policy: the inQ dedup bit admits each VC to its queue at most once, so a
// queue holds at most the VCsPerClass ids it was built with and never grows
// past its initial backing array. The append below therefore never
// reallocates; the length check enforces the invariant.
func (a *freeQueueVCAllocator) noteFreed(reqs []VCRequest) {
	for _, r := range reqs {
		if !r.Active || r.Candidates == nil {
			continue
		}
		base := r.OutPort * a.v
		r.Candidates.ForEach(func(c int) {
			if !a.inQ[base+c] {
				a.inQ[base+c] = true
				cls := a.spec.ClassOf(c)
				qi := a.qIndex(r.OutPort, cls)
				a.queues[qi] = append(a.queues[qi], c)
				if len(a.queues[qi]) > a.spec.VCsPerClass {
					panic("core: free-VC queue overflow (duplicate enqueue)")
				}
			}
		})
	}
}

func (a *freeQueueVCAllocator) Allocate(reqs []VCRequest) []int {
	if len(reqs) != a.ports*a.v {
		panic("core: request slice length mismatch")
	}
	for i := range a.grants {
		a.grants[i] = -1
	}
	a.noteFreed(reqs)
	classes := a.spec.Classes()
	for port := 0; port < a.ports; port++ {
		for cls := 0; cls < classes; cls++ {
			qi := a.qIndex(port, cls)
			q := a.queues[qi]
			// Pop the oldest queued VC the router also reports free; stale
			// entries (still occupied downstream) rotate to the back.
			head := -1
			for k := 0; k < len(q); k++ {
				vc := q[k]
				// A queued VC is grantable if at least one requester lists
				// it as a candidate this cycle.
				if a.anyCandidate(reqs, port, vc) {
					head = k
					break
				}
			}
			if head < 0 {
				continue
			}
			vc := q[head]
			// Arbitrate among input VCs requesting (port, class); inputs
			// already granted by another class queue this cycle are
			// excluded to preserve the one-grant-per-requester invariant.
			a.reqVec.Reset()
			for gi, r := range reqs {
				if a.grants[gi] < 0 && r.Active && r.OutPort == port && r.Candidates != nil && r.Candidates.Get(vc) {
					a.reqVec.Set(gi)
				}
			}
			winner := a.arbs[qi].Pick(a.reqVec)
			if winner < 0 {
				continue
			}
			a.grants[winner] = port*a.v + vc
			a.arbs[qi].Update(winner)
			a.queues[qi] = append(q[:head], q[head+1:]...)
			a.inQ[port*a.v+vc] = false
		}
	}
	return a.grants
}

func (a *freeQueueVCAllocator) anyCandidate(reqs []VCRequest, port, vc int) bool {
	for _, r := range reqs {
		if r.Active && r.OutPort == port && r.Candidates != nil && r.Candidates.Get(vc) {
			return true
		}
	}
	return false
}
