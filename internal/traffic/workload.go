package traffic

import "fmt"

// Workload is the unified injection-workload spec threaded from the CLI
// flag layer (experiments.WorkloadFlags) through sim.Config, the sweep
// schema and the design-space search: an arrival process, a traffic
// pattern, and their parameters, all by value so the spec serializes and
// hashes cleanly. The zero Workload means "paper default": Bernoulli
// injection over uniform random traffic.
type Workload struct {
	// Process names the arrival process: "bernoulli" (default), "mmp"
	// (Markov-modulated on/off bursty), or "trace" (replay of Trace).
	Process string `json:"process,omitempty"`
	// Rate is the mean offered load in flits/cycle/terminal (ignored by
	// trace replay, whose timing is data).
	Rate float64 `json:"rate,omitempty"`
	// Pattern names the spatial pattern (NewPattern vocabulary plus
	// "hotspot"); ignored by trace replay.
	Pattern string `json:"pattern,omitempty"`
	// BurstLen and Duty parameterize "mmp": mean ON-burst length in cycles
	// (default 32) and long-run ON fraction (default 0.25).
	BurstLen float64 `json:"burst_len,omitempty"`
	Duty     float64 `json:"duty,omitempty"`
	// Hotspots and HotspotFraction parameterize the "hotspot" pattern: the
	// hot terminal set (default {0}) and the traffic share sent to it
	// (default DefaultHotspotFraction).
	Hotspots        []int   `json:"hotspots,omitempty"`
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`
	// Trace is the recorded packet trace "trace" replays.
	Trace *PacketTrace `json:"-"`
}

// Normalized fills every defaultable zero field, canonicalizing the spec:
// parameters irrelevant to the selected process/pattern are cleared, so two
// spellings that describe the same workload compare (and hash) equal.
func (w Workload) Normalized() Workload {
	if w.Process == "" {
		if w.Trace != nil {
			w.Process = "trace"
		} else {
			w.Process = "bernoulli"
		}
	}
	if w.Pattern == "" {
		w.Pattern = "uniform"
	}
	if w.Process == "mmp" {
		if w.BurstLen == 0 {
			w.BurstLen = 32
		}
		if w.Duty == 0 {
			w.Duty = 0.25
		}
	} else {
		w.BurstLen, w.Duty = 0, 0
	}
	if w.Pattern == "hotspot" {
		if len(w.Hotspots) == 0 {
			w.Hotspots = []int{0}
		}
		if w.HotspotFraction == 0 {
			w.HotspotFraction = DefaultHotspotFraction
		}
	} else {
		w.Hotspots, w.HotspotFraction = nil, 0
	}
	if w.Process == "trace" {
		// The trace carries timing, destinations and types; the rate and
		// pattern knobs are inert and must not differentiate specs.
		w.Rate, w.Pattern = 0, "uniform"
	}
	return w
}

// Validate checks the normalized workload over n terminals without building
// any process.
func (w Workload) Validate(n int) error {
	w = w.Normalized()
	switch w.Process {
	case "bernoulli":
	case "mmp":
		if _, err := NewMMP(w.Rate, w.BurstLen, w.Duty); err != nil {
			return err
		}
	case "trace":
		if w.Trace == nil {
			return fmt.Errorf("traffic: workload process %q needs a trace", w.Process)
		}
		if err := w.Trace.Validate(); err != nil {
			return err
		}
		if w.Trace.Terminals > n {
			return fmt.Errorf("traffic: trace recorded over %d terminals, network has %d", w.Trace.Terminals, n)
		}
	default:
		return fmt.Errorf("traffic: unknown arrival process %q", w.Process)
	}
	if w.Rate < 0 {
		return fmt.Errorf("traffic: workload rate %g < 0", w.Rate)
	}
	if w.Process != "trace" {
		if _, err := w.NewPattern(n); err != nil {
			return err
		}
	}
	return nil
}

// NewPattern builds the workload's spatial pattern over n terminals.
func (w Workload) NewPattern(n int) (Pattern, error) {
	w = w.Normalized()
	if w.Pattern == "hotspot" {
		return NewHotspot(n, w.Hotspots, w.HotspotFraction)
	}
	return NewPattern(w.Pattern, n)
}

// Processes builds one arrival process per terminal (n of them). Trace
// replay splits the trace by source once and hands each terminal its slice;
// terminals beyond the recorded count get empty (immediately quiet)
// replays.
func (w Workload) Processes(n int) ([]ArrivalProcess, error) {
	w = w.Normalized()
	if err := w.Validate(n); err != nil {
		return nil, err
	}
	procs := make([]ArrivalProcess, n)
	switch w.Process {
	case "bernoulli":
		for i := range procs {
			procs[i] = NewBernoulli(w.Rate)
		}
	case "mmp":
		for i := range procs {
			m, err := NewMMP(w.Rate, w.BurstLen, w.Duty)
			if err != nil {
				return nil, err
			}
			procs[i] = m
		}
	case "trace":
		for src, arr := range w.Trace.BySource(n) {
			procs[src] = NewReplay(arr)
		}
	}
	return procs, nil
}
