package traffic

import (
	"reflect"
	"testing"

	"repro/internal/xrand"
)

// collectTicked runs proc one Tick per cycle for n cycles and returns the
// arrival cycles.
func collectTicked(p ArrivalProcess, rng *xrand.Source, n int) []int64 {
	var out []int64
	for c := int64(0); c < int64(n); c++ {
		if p.Tick(rng) {
			out = append(out, c)
		}
	}
	return out
}

// collectBatched runs proc through NextArrivalDelta in bounded chunks —
// the event-leaping presampler's consumption pattern — and returns the
// arrival cycles.
func collectBatched(p ArrivalProcess, rng *xrand.Source, n, chunk int) []int64 {
	var out []int64
	for c := int64(0); c < int64(n); {
		max := chunk
		if rem := int64(n) - c; rem < int64(chunk) {
			max = int(rem)
		}
		if d := p.NextArrivalDelta(rng, max); d < 0 {
			c += int64(max)
		} else {
			c += int64(d)
			out = append(out, c)
			c++
		}
	}
	return out
}

// TestMMPBatchMatchesTicked pins the batched-sampling clause of the
// ArrivalProcess contract for MMP: NextArrivalDelta in presampler-style
// chunks must reproduce per-cycle ticking exactly — same arrival cycles and
// the same RNG stream position afterwards.
func TestMMPBatchMatchesTicked(t *testing.T) {
	const cycles = 20000
	for _, chunk := range []int{1, 7, 1024} {
		a, err := NewMMP(0.3, 16, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewMMP(0.3, 16, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		rngA, rngB := xrand.New(42), xrand.New(42)
		ticked := collectTicked(a, rngA, cycles)
		batched := collectBatched(b, rngB, cycles, chunk)
		if !reflect.DeepEqual(ticked, batched) {
			t.Fatalf("chunk %d: batched arrivals diverged from ticked (%d vs %d arrivals)",
				chunk, len(batched), len(ticked))
		}
		if *rngA != *rngB {
			t.Fatalf("chunk %d: RNG stream positions diverged after identical tick counts", chunk)
		}
		if len(ticked) == 0 {
			t.Fatal("no arrivals at rate 0.3 over 20000 cycles; test is vacuous")
		}
	}
}

// TestMMPDutyOneIsBernoulli pins the degenerate parameterization: at duty 1
// both transition gates have probability 0, xrand.Bool(0) consumes no draw,
// so the MMP's arrival stream is bit-identical to Bernoulli at the same
// rate — same cycles, same RNG consumption.
func TestMMPDutyOneIsBernoulli(t *testing.T) {
	m, err := NewMMP(0.4, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	bern := NewBernoulli(0.4)
	rngM, rngB := xrand.New(7), xrand.New(7)
	am := collectTicked(m, rngM, 5000)
	ab := collectTicked(bern, rngB, 5000)
	if !reflect.DeepEqual(am, ab) {
		t.Fatalf("duty-1 MMP diverged from Bernoulli: %d vs %d arrivals", len(am), len(ab))
	}
	if *rngM != *rngB {
		t.Fatal("duty-1 MMP consumed a different draw stream than Bernoulli")
	}
}

// TestMMPSnapshotRewind pins the snapshot/rewind clause: restoring
// (ProcState, RNG) and replaying the same ticks must reproduce the same
// outcomes, even across an ON/OFF phase boundary.
func TestMMPSnapshotRewind(t *testing.T) {
	m, err := NewMMP(0.3, 8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	// Advance into the stream so the snapshot lands mid-phase.
	collectTicked(m, rng, 100)
	st, rst := m.State(), rng.State()
	first := collectTicked(m, rng, 500)
	m.Restore(st)
	rng.Restore(rst)
	second := collectTicked(m, rng, 500)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay after Restore diverged: %v vs %v", first, second)
	}
}

// TestMMPQuietAtZeroRate pins the zero-rate clause: no randomness consumed,
// no arrivals, phase frozen — the active-set scheduler skips the terminal
// while the dense schedule keeps ticking it, and both must agree.
func TestMMPQuietAtZeroRate(t *testing.T) {
	m, err := NewMMP(0.3, 8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	collectTicked(m, rng, 50)
	m.SetRate(0)
	before := rng.State()
	for i := 0; i < 100; i++ {
		if m.Tick(rng) {
			t.Fatal("zero-rate MMP produced an arrival")
		}
	}
	if m.NextArrivalDelta(rng, 1000) != -1 {
		t.Fatal("zero-rate NextArrivalDelta found an arrival")
	}
	if *rng != before {
		t.Fatal("zero-rate ticks consumed randomness")
	}
}

// TestMMPSetRateKeepsPhase pins that SetRate rescales only the arrival
// gate: after a rate change the phase sequence (given the same draws) is
// unchanged, which is what makes a drain-style rate drop equivalent to the
// per-cycle reference.
func TestMMPSetRateKeepsPhase(t *testing.T) {
	m, err := NewMMP(0.3, 8, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rate() != 0.3 {
		t.Fatalf("rate = %g, want 0.3", m.Rate())
	}
	st := m.State()
	m.SetRate(0.1)
	if m.Rate() != 0.1 {
		t.Fatalf("rate after SetRate = %g, want 0.1", m.Rate())
	}
	if m.State() != st {
		t.Fatal("SetRate moved the phase state")
	}
}

// TestMMPStatistics checks the parameterization's long-run moments at seed
// 42: mean offered load near the configured rate and ON fraction near the
// duty cycle. Tolerances are loose; the test guards gross mis-derivations
// of the transition rates, not sampling noise.
func TestMMPStatistics(t *testing.T) {
	const cycles = 400000
	m, err := NewMMP(0.6, 32, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	arrivals, onCycles := 0, 0
	for c := 0; c < cycles; c++ {
		if m.Tick(rng) {
			arrivals++
		}
		if m.State().on {
			onCycles++
		}
	}
	flitRate := FlitsPerTransaction * float64(arrivals) / cycles
	if flitRate < 0.55 || flitRate > 0.65 {
		t.Errorf("long-run flit rate %.4f, want ~0.6", flitRate)
	}
	onFrac := float64(onCycles) / cycles
	if onFrac < 0.20 || onFrac > 0.30 {
		t.Errorf("long-run ON fraction %.4f, want ~0.25", onFrac)
	}
}

// TestMMPValidation pins the constructor's rejection surface.
func TestMMPValidation(t *testing.T) {
	cases := []struct {
		name                 string
		rate, burstLen, duty float64
	}{
		{"burst below one cycle", 0.3, 0.5, 0.25},
		{"duty zero", 0.3, 32, 0},
		{"duty above one", 0.3, 32, 1.5},
		{"negative rate", -0.1, 32, 0.25},
		{"rate beyond duty capacity", 0.9, 32, 0.1},
	}
	for _, tc := range cases {
		if _, err := NewMMP(tc.rate, tc.burstLen, tc.duty); err == nil {
			t.Errorf("%s: NewMMP(%g, %g, %g) accepted", tc.name, tc.rate, tc.burstLen, tc.duty)
		}
	}
	if _, err := NewMMP(0.6, 32, 0.25); err != nil {
		t.Errorf("valid parameters rejected: %v", err)
	}
}

// testTrace is a small two-terminal-overlapping trace used by the replay
// tests.
func testTrace() []Arrival {
	return []Arrival{
		{Cycle: 2, Src: 1, Dst: 3, Type: ReadRequest},
		{Cycle: 5, Src: 1, Dst: 0, Type: WriteRequest},
		{Cycle: 6, Src: 1, Dst: 2, Type: ReadRequest},
		{Cycle: 40, Src: 1, Dst: 3, Type: WriteRequest},
	}
}

// TestReplayFiresAtRecordedCycles pins the replay semantics: arrivals at
// exactly the recorded cycles, PacketAt surfacing the recorded type and
// destination, zero randomness consumed, and Rate dropping to 0 once the
// slice is exhausted.
func TestReplayFiresAtRecordedCycles(t *testing.T) {
	r := NewReplay(testTrace())
	if r.Rate() <= 0 {
		t.Fatal("fresh replay reports no rate")
	}
	rng := xrand.New(42)
	before := rng.State()
	var got []Arrival
	for c := int64(0); c < 50; c++ {
		if r.Tick(rng) {
			typ, dst := r.PacketAt()
			got = append(got, Arrival{Cycle: c, Src: 1, Dst: dst, Type: typ})
		}
	}
	if !reflect.DeepEqual(got, testTrace()) {
		t.Fatalf("replayed %+v, want the recorded arrivals", got)
	}
	if *rng != before {
		t.Fatal("replay consumed randomness")
	}
	if r.Rate() != 0 {
		t.Fatalf("exhausted replay rate = %g, want 0", r.Rate())
	}
	if r.Tick(rng) {
		t.Fatal("exhausted replay produced an arrival")
	}
}

// TestReplayBatchMatchesTicked pins the batched-sampling accounting for
// Replay: NextArrivalDelta's clock jumps must land on the same arrival
// cycles as per-cycle ticking for every chunk size.
func TestReplayBatchMatchesTicked(t *testing.T) {
	for _, chunk := range []int{1, 3, 1024} {
		a, b := NewReplay(testTrace()), NewReplay(testTrace())
		rng := xrand.New(1)
		ticked := collectTicked(a, rng, 64)
		batched := collectBatched(b, rng, 64, chunk)
		if !reflect.DeepEqual(ticked, batched) {
			t.Fatalf("chunk %d: batched replay %v, ticked %v", chunk, batched, ticked)
		}
	}
}

// TestReplaySnapshotRewind pins that (cycle, cursor) snapshots replay
// exactly, including re-firing an arrival that the first pass consumed.
func TestReplaySnapshotRewind(t *testing.T) {
	r := NewReplay(testTrace())
	rng := xrand.New(1)
	collectTicked(r, rng, 4) // past the first arrival
	st := r.State()
	first := collectTicked(r, rng, 60)
	r.Restore(st)
	second := collectTicked(r, rng, 60)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("restored replay diverged: %v vs %v", first, second)
	}
}

// TestReplaySetRateStops pins the drain convention: a non-positive SetRate
// silences the replay permanently; other values are ignored.
func TestReplaySetRateStops(t *testing.T) {
	r := NewReplay(testTrace())
	r.SetRate(0.9) // no rate knob: ignored
	if r.Rate() <= 0 {
		t.Fatal("positive SetRate silenced the replay")
	}
	r.SetRate(0)
	if r.Rate() != 0 {
		t.Fatal("SetRate(0) did not silence the replay")
	}
	if r.Tick(xrand.New(1)) {
		t.Fatal("stopped replay produced an arrival")
	}
}

// TestHotspotDistribution checks the hot-vs-background split empirically:
// the hot set receives its configured share (within sampling noise), the
// rest spreads over the other terminals, and no packet is self-addressed.
func TestHotspotDistribution(t *testing.T) {
	const n, trials = 16, 200000
	p, err := NewHotspot(n, []int{3, 7}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		src := i % n
		d := p.Dest(src, rng)
		if d == src {
			t.Fatalf("self-traffic from terminal %d", src)
		}
		counts[d]++
	}
	hotShare := float64(counts[3]+counts[7]) / trials
	// Hot terminals also receive a sliver of background traffic, so the
	// expected share sits slightly above frac.
	if hotShare < 0.40 || hotShare > 0.52 {
		t.Errorf("hot set received %.3f of traffic, want ~0.4 plus background", hotShare)
	}
	for d, c := range counts {
		if d == 3 || d == 7 {
			continue
		}
		share := float64(c) / trials
		want := 0.6 / float64(n-1) // background spread, roughly
		if share < want/2 || share > want*2 {
			t.Errorf("background terminal %d received %.4f of traffic, want ~%.4f", d, share, want)
		}
	}
}

// TestHotspotValidation pins the constructor's rejection surface.
func TestHotspotValidation(t *testing.T) {
	if _, err := NewHotspot(8, []int{8}, 0.2); err == nil {
		t.Error("out-of-range hotspot accepted")
	}
	if _, err := NewHotspot(8, []int{3, 3}, 0.2); err == nil {
		t.Error("duplicate hotspot accepted")
	}
	if _, err := NewHotspot(8, []int{0}, 1.5); err == nil {
		t.Error("fraction above 1 accepted")
	}
	if _, err := NewHotspot(1, nil, 0); err == nil {
		t.Error("single-terminal network accepted")
	}
	p, err := NewHotspot(8, nil, 0)
	if err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if p.Name() != "hotspot" {
		t.Errorf("name = %q", p.Name())
	}
}

// TestWorkloadNormalized pins the canonicalization rules: defaults fill,
// irrelevant parameters clear, and equivalent spellings collapse.
func TestWorkloadNormalized(t *testing.T) {
	if w := (Workload{}).Normalized(); w.Process != "bernoulli" || w.Pattern != "uniform" {
		t.Errorf("zero workload normalized to %+v", w)
	}
	w := Workload{Process: "mmp", Rate: 0.3}.Normalized()
	if w.BurstLen != 32 || w.Duty != 0.25 {
		t.Errorf("mmp defaults: %+v", w)
	}
	w = Workload{Pattern: "hotspot", Rate: 0.3}.Normalized()
	if len(w.Hotspots) != 1 || w.Hotspots[0] != 0 || w.HotspotFraction != DefaultHotspotFraction {
		t.Errorf("hotspot defaults: %+v", w)
	}
	// Inert parameters clear: burst/duty without mmp, hotspot params without
	// the pattern.
	w = Workload{Process: "bernoulli", Rate: 0.3, BurstLen: 64, Duty: 0.5,
		Hotspots: []int{3}, HotspotFraction: 0.4}.Normalized()
	if w.BurstLen != 0 || w.Duty != 0 || w.Hotspots != nil || w.HotspotFraction != 0 {
		t.Errorf("inert parameters survived: %+v", w)
	}
	// A trace implies the trace process and collapses the inert rate/pattern.
	pt := &PacketTrace{Terminals: 4, Arrivals: []Arrival{{Cycle: 0, Src: 0, Dst: 1, Type: ReadRequest}}}
	w = Workload{Trace: pt, Rate: 0.5, Pattern: "tornado"}.Normalized()
	if w.Process != "trace" || w.Rate != 0 || w.Pattern != "uniform" {
		t.Errorf("trace normalization: %+v", w)
	}
}

// TestWorkloadValidate pins the unified validation surface.
func TestWorkloadValidate(t *testing.T) {
	bad := []Workload{
		{Process: "poisson", Rate: 0.1},
		{Process: "trace"}, // no trace data
		{Process: "mmp", Rate: 0.9, Duty: 0.1},
		{Pattern: "hotspot", Rate: 0.1, Hotspots: []int{99}},
		{Pattern: "no_such_pattern", Rate: 0.1},
		{Rate: -0.1},
	}
	for _, w := range bad {
		if err := w.Validate(64); err == nil {
			t.Errorf("Validate accepted %+v", w)
		}
	}
	good := []Workload{
		{},
		{Process: "mmp", Rate: 0.3},
		{Pattern: "hotspot", Rate: 0.3, Hotspots: []int{1, 5}, HotspotFraction: 0.3},
	}
	for _, w := range good {
		if err := w.Validate(64); err != nil {
			t.Errorf("Validate rejected %+v: %v", w, err)
		}
	}
}

// TestWorkloadProcesses pins the per-terminal fan-out, in particular the
// trace split: each terminal replays exactly its own recorded arrivals and
// unrecorded terminals are quiet from cycle zero.
func TestWorkloadProcesses(t *testing.T) {
	procs, err := Workload{Process: "mmp", Rate: 0.3}.Processes(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 4 {
		t.Fatalf("got %d processes, want 4", len(procs))
	}
	for _, p := range procs {
		if p.Name() != "mmp" {
			t.Fatalf("process %q, want mmp", p.Name())
		}
	}

	pt := &PacketTrace{Terminals: 3, Arrivals: []Arrival{
		{Cycle: 1, Src: 0, Dst: 2, Type: ReadRequest},
		{Cycle: 1, Src: 2, Dst: 0, Type: WriteRequest},
		{Cycle: 4, Src: 0, Dst: 1, Type: WriteRequest},
	}}
	procs, err = Workload{Trace: pt}.Processes(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	counts := make([]int, 4)
	for i, p := range procs {
		for c := 0; c < 10; c++ {
			if p.Tick(rng) {
				counts[i]++
			}
		}
	}
	if want := []int{2, 0, 1, 0}; !reflect.DeepEqual(counts, want) {
		t.Errorf("per-terminal replay counts %v, want %v", counts, want)
	}

	// A trace recorded over more terminals than the network has is rejected.
	if _, err := (Workload{Trace: pt}).Processes(2); err == nil {
		t.Error("oversized trace accepted")
	}
}
