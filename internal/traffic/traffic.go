// Package traffic implements the synthetic workloads of Becker & Dally
// (SC '09) §3.2: spatial traffic patterns (uniform random plus the standard
// permutations) and the request–reply transaction model in which read
// requests and write replies are single-flit packets while read replies and
// write requests carry four payload flits behind the head flit.
package traffic

import (
	"fmt"
	"math/bits"

	"repro/internal/xrand"
)

// PacketType enumerates the four packet kinds of the transaction model.
type PacketType int

const (
	// ReadRequest is a single-flit read request.
	ReadRequest PacketType = iota
	// ReadReply is a five-flit read reply (head + four payload flits).
	ReadReply
	// WriteRequest is a five-flit write request.
	WriteRequest
	// WriteReply is a single-flit write acknowledgment.
	WriteReply
)

// String returns a short identifier.
func (t PacketType) String() string {
	switch t {
	case ReadRequest:
		return "read_req"
	case ReadReply:
		return "read_reply"
	case WriteRequest:
		return "write_req"
	case WriteReply:
		return "write_reply"
	default:
		return fmt.Sprintf("PacketType(%d)", int(t))
	}
}

// Flits returns the packet length in flits (§3.2: read requests and write
// replies are one flit; read replies and write requests are five).
func (t PacketType) Flits() int {
	switch t {
	case ReadRequest, WriteReply:
		return 1
	case ReadReply, WriteRequest:
		return 5
	default:
		panic(fmt.Sprintf("traffic: unknown packet type %d", int(t)))
	}
}

// MessageClass returns the VC message class: requests travel in class 0,
// replies in class 1, preventing protocol deadlock at the network boundary.
func (t PacketType) MessageClass() int {
	switch t {
	case ReadRequest, WriteRequest:
		return 0
	case ReadReply, WriteReply:
		return 1
	default:
		panic(fmt.Sprintf("traffic: unknown packet type %d", int(t)))
	}
}

// IsRequest reports whether the packet elicits a reply at its destination.
func (t PacketType) IsRequest() bool { return t == ReadRequest || t == WriteRequest }

// ReplyType returns the packet type of the reply a request elicits.
func (t PacketType) ReplyType() PacketType {
	switch t {
	case ReadRequest:
		return ReadReply
	case WriteRequest:
		return WriteReply
	default:
		panic(fmt.Sprintf("traffic: %v has no reply", t))
	}
}

// FlitsPerTransaction is the total flit count of any request–reply pair
// (1+5 or 5+1); the paper uses it to relate packet and flit injection rates.
const FlitsPerTransaction = 6

// Pattern maps source terminals to destination terminals.
type Pattern interface {
	// Name identifies the pattern.
	Name() string
	// Dest returns the destination terminal for a packet injected at src.
	// rng is consulted only by randomized patterns.
	Dest(src int, rng *xrand.Source) int
}

// NewPattern constructs a pattern by name over n terminals. Supported:
// "uniform", "transpose", "bitcomp", "bitrev", "shuffle", "tornado",
// "neighbor". Permutation patterns require n to be a power of two (and
// "transpose" a square power of two), matching standard usage.
func NewPattern(name string, n int) (Pattern, error) {
	if n <= 1 {
		return nil, fmt.Errorf("traffic: need at least 2 terminals, got %d", n)
	}
	switch name {
	case "uniform":
		return uniform{n: n}, nil
	case "transpose", "bitcomp", "bitrev", "shuffle":
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("traffic: %s requires power-of-two terminals, got %d", name, n)
		}
		b := bits.TrailingZeros(uint(n))
		if name == "transpose" && b%2 != 0 {
			return nil, fmt.Errorf("traffic: transpose requires an even number of address bits, got %d", b)
		}
		return bitPattern{name: name, n: n, b: b}, nil
	case "tornado":
		return tornado{n: n}, nil
	case "neighbor":
		return neighbor{n: n}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

type uniform struct{ n int }

func (u uniform) Name() string { return "uniform" }

// Dest draws a destination uniformly among all other terminals.
func (u uniform) Dest(src int, rng *xrand.Source) int {
	d := rng.Intn(u.n - 1)
	if d >= src {
		d++
	}
	return d
}

type bitPattern struct {
	name string
	n, b int
}

func (p bitPattern) Name() string { return p.name }

func (p bitPattern) Dest(src int, _ *xrand.Source) int {
	s := uint(src)
	switch p.name {
	case "transpose":
		half := p.b / 2
		lo := s & (1<<half - 1)
		hi := s >> half
		return int(lo<<half | hi)
	case "bitcomp":
		return int(^s & (1<<p.b - 1))
	case "bitrev":
		r := uint(0)
		for i := 0; i < p.b; i++ {
			r = r<<1 | (s>>i)&1
		}
		return int(r)
	case "shuffle":
		msb := (s >> (p.b - 1)) & 1
		return int((s<<1)&(1<<p.b-1) | msb)
	default:
		panic("traffic: bad bit pattern")
	}
}

type tornado struct{ n int }

func (t tornado) Name() string { return "tornado" }

// Dest sends halfway around the terminal ring.
func (t tornado) Dest(src int, _ *xrand.Source) int {
	return (src + t.n/2) % t.n
}

type neighbor struct{ n int }

func (nb neighbor) Name() string { return "neighbor" }

func (nb neighbor) Dest(src int, _ *xrand.Source) int { return (src + 1) % nb.n }

// Generator produces the per-terminal injection process of §3.2: new request
// transactions arrive according to a geometric (Bernoulli-per-cycle) process
// whose rate is derived from the target flit injection rate, with read and
// write transactions equally likely.
type Generator struct {
	// Pattern chooses destinations.
	Pattern Pattern
	// InjectionRate is the offered load in flits per cycle per terminal,
	// counting both request and reply flits as in the paper's figures.
	InjectionRate float64
	// ReadFraction is the probability a transaction is a read (default 0.5
	// when constructed via NewGenerator).
	ReadFraction float64
}

// NewGenerator builds a generator with the paper's defaults.
func NewGenerator(p Pattern, injectionRate float64) *Generator {
	return &Generator{Pattern: p, InjectionRate: injectionRate, ReadFraction: 0.5}
}

// TransactionRate returns the per-terminal probability of starting a new
// transaction in a cycle. Every transaction eventually injects
// FlitsPerTransaction flits network-wide (request at the source, reply at
// the destination), so the transaction rate is the flit rate divided by six.
func (g *Generator) TransactionRate() float64 {
	return g.InjectionRate / FlitsPerTransaction
}

// NextRequest rolls the injection process for one terminal-cycle. It
// returns (packetType, dest, true) when a new request transaction starts.
func (g *Generator) NextRequest(src int, rng *xrand.Source) (PacketType, int, bool) {
	if !rng.Bool(g.TransactionRate()) {
		return 0, 0, false
	}
	t, d := g.RequestAt(src, rng)
	return t, d, true
}

// RequestAt draws the type and destination of a transaction whose Bernoulli
// gate draw was already consumed — the second half of NextRequest, split out
// for the geometric presampling path (see NextArrivalDelta).
func (g *Generator) RequestAt(src int, rng *xrand.Source) (PacketType, int) {
	t := WriteRequest
	if rng.Bool(g.ReadFraction) {
		t = ReadRequest
	}
	return t, g.Pattern.Dest(src, rng)
}

// NextArrivalDelta consumes per-cycle Bernoulli gate draws until the first
// success and returns the number of failures, i.e. the offset in cycles from
// the current one to the next transaction arrival (0 = this cycle). It draws
// the exact same stream NextRequest's gate would consume one cycle at a
// time, which is what keeps event-leaped runs bit-identical to per-cycle
// ticking; a closed-form inversion sampler deliberately is not used here
// because it consumes a different number of draws. max bounds the batch: if
// none of the first max draws succeeds, the sampler stops having consumed
// exactly max draws and returns -1, so a caller can resample in bounded
// chunks instead of eagerly consuming a whole geometric run (mean 1/p
// cycles) the simulation may never reach. TransactionRate() <= 0 also
// returns -1, consuming nothing.
func (g *Generator) NextArrivalDelta(rng *xrand.Source, max int) int {
	p := g.TransactionRate()
	if p <= 0 {
		return -1
	}
	for k := 0; k < max; k++ {
		if rng.Bool(p) {
			return k
		}
	}
	return -1
}
