// Package traffic implements the synthetic workloads of Becker & Dally
// (SC '09) §3.2: spatial traffic patterns (uniform random plus the standard
// permutations) and the request–reply transaction model in which read
// requests and write replies are single-flit packets while read replies and
// write requests carry four payload flits behind the head flit.
package traffic

import (
	"fmt"
	"math/bits"

	"repro/internal/xrand"
)

// PacketType enumerates the four packet kinds of the transaction model.
type PacketType int

const (
	// ReadRequest is a single-flit read request.
	ReadRequest PacketType = iota
	// ReadReply is a five-flit read reply (head + four payload flits).
	ReadReply
	// WriteRequest is a five-flit write request.
	WriteRequest
	// WriteReply is a single-flit write acknowledgment.
	WriteReply
)

// String returns a short identifier.
func (t PacketType) String() string {
	switch t {
	case ReadRequest:
		return "read_req"
	case ReadReply:
		return "read_reply"
	case WriteRequest:
		return "write_req"
	case WriteReply:
		return "write_reply"
	default:
		return fmt.Sprintf("PacketType(%d)", int(t))
	}
}

// Flits returns the packet length in flits (§3.2: read requests and write
// replies are one flit; read replies and write requests are five).
func (t PacketType) Flits() int {
	switch t {
	case ReadRequest, WriteReply:
		return 1
	case ReadReply, WriteRequest:
		return 5
	default:
		panic(fmt.Sprintf("traffic: unknown packet type %d", int(t)))
	}
}

// MessageClass returns the VC message class: requests travel in class 0,
// replies in class 1, preventing protocol deadlock at the network boundary.
func (t PacketType) MessageClass() int {
	switch t {
	case ReadRequest, WriteRequest:
		return 0
	case ReadReply, WriteReply:
		return 1
	default:
		panic(fmt.Sprintf("traffic: unknown packet type %d", int(t)))
	}
}

// IsRequest reports whether the packet elicits a reply at its destination.
func (t PacketType) IsRequest() bool { return t == ReadRequest || t == WriteRequest }

// ReplyType returns the packet type of the reply a request elicits.
func (t PacketType) ReplyType() PacketType {
	switch t {
	case ReadRequest:
		return ReadReply
	case WriteRequest:
		return WriteReply
	default:
		panic(fmt.Sprintf("traffic: %v has no reply", t))
	}
}

// FlitsPerTransaction is the total flit count of any request–reply pair
// (1+5 or 5+1); the paper uses it to relate packet and flit injection rates.
const FlitsPerTransaction = 6

// Pattern maps source terminals to destination terminals.
type Pattern interface {
	// Name identifies the pattern.
	Name() string
	// Dest returns the destination terminal for a packet injected at src.
	// rng is consulted only by randomized patterns.
	Dest(src int, rng *xrand.Source) int
}

// NewPattern constructs a pattern by name over n terminals. Supported:
// "uniform", "transpose", "bitcomp", "bitrev", "shuffle", "tornado",
// "neighbor", "hotspot" (with default hotspot set and fraction; use
// NewHotspot for explicit parameters). Permutation patterns require n to be
// a power of two (and "transpose" a square power of two), matching standard
// usage.
func NewPattern(name string, n int) (Pattern, error) {
	if n <= 1 {
		return nil, fmt.Errorf("traffic: need at least 2 terminals, got %d", n)
	}
	switch name {
	case "uniform":
		return uniform{n: n}, nil
	case "hotspot":
		return NewHotspot(n, nil, 0)
	case "transpose", "bitcomp", "bitrev", "shuffle":
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("traffic: %s requires power-of-two terminals, got %d", name, n)
		}
		b := bits.TrailingZeros(uint(n))
		if name == "transpose" && b%2 != 0 {
			return nil, fmt.Errorf("traffic: transpose requires an even number of address bits, got %d", b)
		}
		return bitPattern{name: name, n: n, b: b}, nil
	case "tornado":
		return tornado{n: n}, nil
	case "neighbor":
		return neighbor{n: n}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

type uniform struct{ n int }

func (u uniform) Name() string { return "uniform" }

// Dest draws a destination uniformly among all other terminals.
func (u uniform) Dest(src int, rng *xrand.Source) int {
	d := rng.Intn(u.n - 1)
	if d >= src {
		d++
	}
	return d
}

type bitPattern struct {
	name string
	n, b int
}

func (p bitPattern) Name() string { return p.name }

func (p bitPattern) Dest(src int, _ *xrand.Source) int {
	s := uint(src)
	switch p.name {
	case "transpose":
		half := p.b / 2
		lo := s & (1<<half - 1)
		hi := s >> half
		return int(lo<<half | hi)
	case "bitcomp":
		return int(^s & (1<<p.b - 1))
	case "bitrev":
		r := uint(0)
		for i := 0; i < p.b; i++ {
			r = r<<1 | (s>>i)&1
		}
		return int(r)
	case "shuffle":
		msb := (s >> (p.b - 1)) & 1
		return int((s<<1)&(1<<p.b-1) | msb)
	default:
		panic("traffic: bad bit pattern")
	}
}

type tornado struct{ n int }

func (t tornado) Name() string { return "tornado" }

// Dest sends halfway around the terminal ring.
func (t tornado) Dest(src int, _ *xrand.Source) int {
	return (src + t.n/2) % t.n
}

type neighbor struct{ n int }

func (nb neighbor) Name() string { return "neighbor" }

func (nb neighbor) Dest(src int, _ *xrand.Source) int { return (src + 1) % nb.n }

// hotspot concentrates a configurable fraction of the traffic onto a small
// set of hot terminals and spreads the rest uniformly — the §3.2-style
// non-uniform spatial workload where destination contention separates
// allocator implementations.
type hotspot struct {
	n    int
	hot  []int
	frac float64
	// hotFor[src] is the hot set with src itself removed (a terminal never
	// sends to itself), precomputed so Dest stays allocation-free.
	hotFor [][]int
}

// DefaultHotspotFraction is the traffic share directed at the hot set when
// none is specified.
const DefaultHotspotFraction = 0.2

// NewHotspot builds a hotspot pattern over n terminals: with probability
// frac the destination is drawn uniformly from the hot set, otherwise
// uniformly from all other terminals. A nil/empty hot set defaults to
// terminal 0, a zero frac to DefaultHotspotFraction.
func NewHotspot(n int, hot []int, frac float64) (Pattern, error) {
	if n <= 1 {
		return nil, fmt.Errorf("traffic: need at least 2 terminals, got %d", n)
	}
	if len(hot) == 0 {
		hot = []int{0}
	}
	if frac == 0 {
		frac = DefaultHotspotFraction
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %g outside [0, 1]", frac)
	}
	seen := map[int]bool{}
	for _, h := range hot {
		if h < 0 || h >= n {
			return nil, fmt.Errorf("traffic: hotspot terminal %d outside [0, %d)", h, n)
		}
		if seen[h] {
			return nil, fmt.Errorf("traffic: duplicate hotspot terminal %d", h)
		}
		seen[h] = true
	}
	p := &hotspot{n: n, hot: append([]int(nil), hot...), frac: frac, hotFor: make([][]int, n)}
	for src := 0; src < n; src++ {
		dsts := make([]int, 0, len(hot))
		for _, h := range p.hot {
			if h != src {
				dsts = append(dsts, h)
			}
		}
		p.hotFor[src] = dsts
	}
	return p, nil
}

func (h *hotspot) Name() string { return "hotspot" }

// Dest draws the hot-vs-background gate, then a destination uniformly within
// the chosen set (excluding src). A hot terminal whose hot set holds only
// itself falls back to the background draw without consuming the set draw,
// keeping the consumed-draw count a function of (src, gate) only.
func (h *hotspot) Dest(src int, rng *xrand.Source) int {
	if hot := h.hotFor[src]; len(hot) > 0 && rng.Bool(h.frac) {
		return hot[rng.Intn(len(hot))]
	}
	d := rng.Intn(h.n - 1)
	if d >= src {
		d++
	}
	return d
}

// Generator produces the per-terminal injection workload: an ArrivalProcess
// decides *when* transactions start (temporal), the Pattern and ReadFraction
// decide *where* they go and what kind they are (spatial) — unless the
// process is also a PacketSource (trace replay), which carries both halves.
//
// The generator also owns the event-leaping presample state: a bounded batch
// of future gate draws (Presample), the RNG/process snapshot that lets an
// early wake-up or rate change rewind and replay them (Rewind), and the
// SetRate method that encapsulates the rewind-before-rate-change invariant
// so no caller can bypass it (DESIGN.md §12).
type Generator struct {
	// Pattern chooses destinations.
	Pattern Pattern
	// ReadFraction is the probability a transaction is a read (default 0.5
	// when constructed via NewGenerator).
	ReadFraction float64

	proc ArrivalProcess

	// Presample state: next is the presampled wake-up cycle (-1 = not
	// sampled) — the next transaction arrival when nextReal, otherwise a
	// chunk checkpoint at which sampling resumes; snapRNG/snapProc/snapCycle
	// record the RNG state, process state and cycle at presample time so an
	// earlier wake-up can rewind and replay the per-cycle gate draws the
	// dense reference would have made.
	next      int64
	nextReal  bool
	snapRNG   xrand.Source
	snapProc  ProcState
	snapCycle int64
}

// NewGenerator builds a generator with the paper's defaults: Bernoulli
// injection at the given flit rate, reads and writes equally likely.
func NewGenerator(p Pattern, injectionRate float64) *Generator {
	return NewGeneratorProcess(p, NewBernoulli(injectionRate))
}

// NewGeneratorProcess builds a generator around an explicit arrival process.
func NewGeneratorProcess(p Pattern, proc ArrivalProcess) *Generator {
	return &Generator{Pattern: p, ReadFraction: 0.5, proc: proc, next: -1}
}

// Process exposes the arrival process (read-only use; rate changes must go
// through SetRate).
func (g *Generator) Process() ArrivalProcess { return g.proc }

// Rate returns the process's offered load in flits/cycle/terminal.
func (g *Generator) Rate() float64 { return g.proc.Rate() }

// TransactionRate returns the mean per-terminal probability of starting a
// new transaction in a cycle. Every transaction eventually injects
// FlitsPerTransaction flits network-wide (request at the source, reply at
// the destination), so the transaction rate is the flit rate divided by six.
func (g *Generator) TransactionRate() float64 {
	return g.proc.Rate() / FlitsPerTransaction
}

// SetRate changes the offered load as of cycle now, owning the presample
// invariant: a presampled arrival was drawn at the old rate, so it is
// rewound — replaying the already-elapsed cycles through now-1 at that old
// rate — before the new rate takes effect at the current cycle, exactly as
// per-cycle ticking would have it.
func (g *Generator) SetRate(rng *xrand.Source, rate float64, now int64) {
	if g.next >= 0 {
		g.Rewind(rng, now-1)
	}
	g.proc.SetRate(rate)
}

// NextRequest rolls the injection process for one terminal-cycle. It
// returns (packetType, dest, true) when a new request transaction starts.
func (g *Generator) NextRequest(src int, rng *xrand.Source) (PacketType, int, bool) {
	if !g.proc.Tick(rng) {
		return 0, 0, false
	}
	t, d := g.RequestAt(src, rng)
	return t, d, true
}

// RequestAt draws the type and destination of a transaction whose arrival
// tick was already consumed — the second half of NextRequest, split out for
// the presampling path. A PacketSource process (trace replay) supplies both
// directly, consuming no randomness.
func (g *Generator) RequestAt(src int, rng *xrand.Source) (PacketType, int) {
	if ps, ok := g.proc.(PacketSource); ok {
		return ps.PacketAt()
	}
	t := WriteRequest
	if rng.Bool(g.ReadFraction) {
		t = ReadRequest
	}
	return t, g.Pattern.Dest(src, rng)
}

// NextArrivalDelta batch-samples the process (see
// ArrivalProcess.NextArrivalDelta): it returns the offset in cycles to the
// next transaction arrival (0 = this cycle), or -1 after exactly max ticks
// with no arrival (or at zero rate, consuming nothing). The draws consumed
// are exactly those NextRequest's gate would consume one cycle at a time,
// which is what keeps event-leaped runs bit-identical to per-cycle ticking.
func (g *Generator) NextArrivalDelta(rng *xrand.Source, max int) int {
	return g.proc.NextArrivalDelta(rng, max)
}

// Presample snapshots the RNG and process state at cycle now, then
// batch-samples up to chunk gate draws. The presampled wake-up cycle is
// exposed by PresampledArrival: the arrival cycle itself when the batch
// found one (PresampledReal true, possibly now itself), otherwise the
// checkpoint now+chunk where sampling must resume.
func (g *Generator) Presample(rng *xrand.Source, now int64, chunk int) {
	g.snapRNG, g.snapProc, g.snapCycle = rng.State(), g.proc.State(), now
	if d := g.proc.NextArrivalDelta(rng, chunk); d < 0 {
		g.next, g.nextReal = now+int64(chunk), false
	} else {
		g.next, g.nextReal = now+int64(d), true
	}
}

// PresampledArrival returns the presampled wake-up cycle, -1 when none is
// outstanding.
func (g *Generator) PresampledArrival() int64 { return g.next }

// PresampledReal reports whether the presampled wake-up is an actual
// arrival (as opposed to a chunk checkpoint).
func (g *Generator) PresampledReal() bool { return g.nextReal }

// PendingArrival reports whether a presampled real arrival is outstanding:
// its gate draws were consumed at presample time but it has not been
// emitted yet. The distinction matters for finite processes — a trace
// replay's Rate() drops to 0 the moment its last arrival is presampled —
// so a scheduler must treat a generator with a pending arrival as live
// even at zero rate, or the final arrival would be leapt over and lost.
func (g *Generator) PendingArrival() bool { return g.next >= 0 && g.nextReal }

// ClearPresample discards the outstanding presample without touching the
// RNG: the caller has reached (or consumed) the presampled cycle, so the
// batched draws exactly cover the elapsed cycles.
func (g *Generator) ClearPresample() { g.next = -1 }

// Rewind unwinds an outstanding presample to cycle `through`: it restores
// the RNG and process state captured by Presample and replays the per-cycle
// gate draws for cycles snapCycle..through — all failures by construction,
// since through precedes the presampled arrival — leaving the stream
// exactly where dense per-cycle ticking would have it after cycle through's
// draw, and the generator unsampled.
func (g *Generator) Rewind(rng *xrand.Source, through int64) {
	rng.Restore(g.snapRNG)
	g.proc.Restore(g.snapProc)
	for c := g.snapCycle; c <= through; c++ {
		if g.proc.Tick(rng) {
			panic("traffic: presample replay produced an arrival before the sampled one")
		}
	}
	g.next = -1
}
