package traffic

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestPacketTypeProperties(t *testing.T) {
	cases := []struct {
		typ   PacketType
		flits int
		class int
		isReq bool
	}{
		{ReadRequest, 1, 0, true},
		{ReadReply, 5, 1, false},
		{WriteRequest, 5, 0, true},
		{WriteReply, 1, 1, false},
	}
	for _, c := range cases {
		if c.typ.Flits() != c.flits {
			t.Errorf("%v.Flits() = %d, want %d", c.typ, c.typ.Flits(), c.flits)
		}
		if c.typ.MessageClass() != c.class {
			t.Errorf("%v.MessageClass() = %d, want %d", c.typ, c.typ.MessageClass(), c.class)
		}
		if c.typ.IsRequest() != c.isReq {
			t.Errorf("%v.IsRequest() = %v", c.typ, c.typ.IsRequest())
		}
	}
}

func TestReplyTypes(t *testing.T) {
	if ReadRequest.ReplyType() != ReadReply || WriteRequest.ReplyType() != WriteReply {
		t.Fatal("wrong reply types")
	}
	// A request-reply pair always totals six flits (§4.3.3).
	for _, req := range []PacketType{ReadRequest, WriteRequest} {
		if req.Flits()+req.ReplyType().Flits() != FlitsPerTransaction {
			t.Errorf("%v transaction flit count != %d", req, FlitsPerTransaction)
		}
	}
}

func TestReplyOfReplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ReadReply.ReplyType()
}

func TestPacketTypeStrings(t *testing.T) {
	for _, typ := range []PacketType{ReadRequest, ReadReply, WriteRequest, WriteReply} {
		if typ.String() == "" {
			t.Error("empty name")
		}
	}
	if PacketType(9).String() == "" {
		t.Error("unknown type should render")
	}
}

func TestUniformPattern(t *testing.T) {
	p, err := NewPattern("uniform", 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	counts := make([]int, 64)
	const iters = 64 * 1000
	for i := 0; i < iters; i++ {
		d := p.Dest(5, rng)
		if d == 5 || d < 0 || d >= 64 {
			t.Fatalf("bad destination %d", d)
		}
		counts[d]++
	}
	want := float64(iters) / 63
	for d, c := range counts {
		if d == 5 {
			continue
		}
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Fatalf("destination %d count %d deviates from uniform %f", d, c, want)
		}
	}
}

func TestPermutationPatterns(t *testing.T) {
	cases := map[string]map[int]int{
		// 64 terminals = 6 address bits.
		"transpose": {0: 0, 1: 8, 9: 9, 63: 63, 2: 16},
		"bitcomp":   {0: 63, 1: 62, 21: 42},
		"bitrev":    {0: 0, 1: 32, 3: 48},
		"shuffle":   {1: 2, 32: 1, 63: 63},
		"tornado":   {0: 32, 40: 8},
		"neighbor":  {0: 1, 63: 0},
	}
	for name, pairs := range cases {
		p, err := NewPattern(name, 64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("%s: Name() = %q", name, p.Name())
		}
		for src, want := range pairs {
			if got := p.Dest(src, nil); got != want {
				t.Errorf("%s.Dest(%d) = %d, want %d", name, src, got, want)
			}
		}
	}
}

func TestPermutationsAreBijections(t *testing.T) {
	for _, name := range []string{"transpose", "bitcomp", "bitrev", "shuffle", "tornado", "neighbor"} {
		p, err := NewPattern(name, 64)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, 64)
		for s := 0; s < 64; s++ {
			d := p.Dest(s, nil)
			if d < 0 || d >= 64 || seen[d] {
				t.Fatalf("%s is not a bijection at src %d", name, s)
			}
			seen[d] = true
		}
	}
}

func TestPatternErrors(t *testing.T) {
	for _, c := range []struct {
		name string
		n    int
	}{
		{"uniform", 1},
		{"bitcomp", 48},
		{"transpose", 32}, // 5 address bits, odd
		{"nosuch", 64},
	} {
		if _, err := NewPattern(c.name, c.n); err == nil {
			t.Errorf("NewPattern(%q, %d) should fail", c.name, c.n)
		}
	}
}

func TestGeneratorRates(t *testing.T) {
	p, _ := NewPattern("uniform", 64)
	g := NewGenerator(p, 0.3)
	if math.Abs(g.TransactionRate()-0.05) > 1e-12 {
		t.Fatalf("transaction rate %f, want 0.05", g.TransactionRate())
	}
	rng := xrand.New(3)
	const iters = 200000
	n, reads := 0, 0
	for i := 0; i < iters; i++ {
		typ, dst, ok := g.NextRequest(7, rng)
		if !ok {
			continue
		}
		n++
		if typ == ReadRequest {
			reads++
		} else if typ != WriteRequest {
			t.Fatalf("generator emitted non-request %v", typ)
		}
		if dst == 7 {
			t.Fatal("self traffic")
		}
	}
	rate := float64(n) / iters
	if math.Abs(rate-0.05) > 0.005 {
		t.Fatalf("empirical transaction rate %f, want 0.05", rate)
	}
	readFrac := float64(reads) / float64(n)
	if math.Abs(readFrac-0.5) > 0.03 {
		t.Fatalf("read fraction %f, want 0.5", readFrac)
	}
}

func TestGeneratorZeroRate(t *testing.T) {
	p, _ := NewPattern("uniform", 8)
	g := NewGenerator(p, 0)
	rng := xrand.New(1)
	for i := 0; i < 1000; i++ {
		if _, _, ok := g.NextRequest(0, rng); ok {
			t.Fatal("zero rate generated traffic")
		}
	}
}
