package traffic

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestPacketTypeProperties(t *testing.T) {
	cases := []struct {
		typ   PacketType
		flits int
		class int
		isReq bool
	}{
		{ReadRequest, 1, 0, true},
		{ReadReply, 5, 1, false},
		{WriteRequest, 5, 0, true},
		{WriteReply, 1, 1, false},
	}
	for _, c := range cases {
		if c.typ.Flits() != c.flits {
			t.Errorf("%v.Flits() = %d, want %d", c.typ, c.typ.Flits(), c.flits)
		}
		if c.typ.MessageClass() != c.class {
			t.Errorf("%v.MessageClass() = %d, want %d", c.typ, c.typ.MessageClass(), c.class)
		}
		if c.typ.IsRequest() != c.isReq {
			t.Errorf("%v.IsRequest() = %v", c.typ, c.typ.IsRequest())
		}
	}
}

func TestReplyTypes(t *testing.T) {
	if ReadRequest.ReplyType() != ReadReply || WriteRequest.ReplyType() != WriteReply {
		t.Fatal("wrong reply types")
	}
	// A request-reply pair always totals six flits (§4.3.3).
	for _, req := range []PacketType{ReadRequest, WriteRequest} {
		if req.Flits()+req.ReplyType().Flits() != FlitsPerTransaction {
			t.Errorf("%v transaction flit count != %d", req, FlitsPerTransaction)
		}
	}
}

func TestReplyOfReplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ReadReply.ReplyType()
}

func TestPacketTypeStrings(t *testing.T) {
	for _, typ := range []PacketType{ReadRequest, ReadReply, WriteRequest, WriteReply} {
		if typ.String() == "" {
			t.Error("empty name")
		}
	}
	if PacketType(9).String() == "" {
		t.Error("unknown type should render")
	}
}

func TestUniformPattern(t *testing.T) {
	p, err := NewPattern("uniform", 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	counts := make([]int, 64)
	const iters = 64 * 1000
	for i := 0; i < iters; i++ {
		d := p.Dest(5, rng)
		if d == 5 || d < 0 || d >= 64 {
			t.Fatalf("bad destination %d", d)
		}
		counts[d]++
	}
	want := float64(iters) / 63
	for d, c := range counts {
		if d == 5 {
			continue
		}
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Fatalf("destination %d count %d deviates from uniform %f", d, c, want)
		}
	}
}

func TestPermutationPatterns(t *testing.T) {
	cases := map[string]map[int]int{
		// 64 terminals = 6 address bits.
		"transpose": {0: 0, 1: 8, 9: 9, 63: 63, 2: 16},
		"bitcomp":   {0: 63, 1: 62, 21: 42},
		"bitrev":    {0: 0, 1: 32, 3: 48},
		"shuffle":   {1: 2, 32: 1, 63: 63},
		"tornado":   {0: 32, 40: 8},
		"neighbor":  {0: 1, 63: 0},
	}
	for name, pairs := range cases {
		p, err := NewPattern(name, 64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("%s: Name() = %q", name, p.Name())
		}
		for src, want := range pairs {
			if got := p.Dest(src, nil); got != want {
				t.Errorf("%s.Dest(%d) = %d, want %d", name, src, got, want)
			}
		}
	}
}

func TestPermutationsAreBijections(t *testing.T) {
	for _, name := range []string{"transpose", "bitcomp", "bitrev", "shuffle", "tornado", "neighbor"} {
		p, err := NewPattern(name, 64)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, 64)
		for s := 0; s < 64; s++ {
			d := p.Dest(s, nil)
			if d < 0 || d >= 64 || seen[d] {
				t.Fatalf("%s is not a bijection at src %d", name, s)
			}
			seen[d] = true
		}
	}
}

func TestPatternErrors(t *testing.T) {
	for _, c := range []struct {
		name string
		n    int
	}{
		{"uniform", 1},
		{"bitcomp", 48},
		{"transpose", 32}, // 5 address bits, odd
		{"nosuch", 64},
	} {
		if _, err := NewPattern(c.name, c.n); err == nil {
			t.Errorf("NewPattern(%q, %d) should fail", c.name, c.n)
		}
	}
}

func TestGeneratorRates(t *testing.T) {
	p, _ := NewPattern("uniform", 64)
	g := NewGenerator(p, 0.3)
	if math.Abs(g.TransactionRate()-0.05) > 1e-12 {
		t.Fatalf("transaction rate %f, want 0.05", g.TransactionRate())
	}
	rng := xrand.New(3)
	const iters = 200000
	n, reads := 0, 0
	for i := 0; i < iters; i++ {
		typ, dst, ok := g.NextRequest(7, rng)
		if !ok {
			continue
		}
		n++
		if typ == ReadRequest {
			reads++
		} else if typ != WriteRequest {
			t.Fatalf("generator emitted non-request %v", typ)
		}
		if dst == 7 {
			t.Fatal("self traffic")
		}
	}
	rate := float64(n) / iters
	if math.Abs(rate-0.05) > 0.005 {
		t.Fatalf("empirical transaction rate %f, want 0.05", rate)
	}
	readFrac := float64(reads) / float64(n)
	if math.Abs(readFrac-0.5) > 0.03 {
		t.Fatalf("read fraction %f, want 0.5", readFrac)
	}
}

func TestGeneratorZeroRate(t *testing.T) {
	p, _ := NewPattern("uniform", 8)
	g := NewGenerator(p, 0)
	rng := xrand.New(1)
	for i := 0; i < 1000; i++ {
		if _, _, ok := g.NextRequest(0, rng); ok {
			t.Fatal("zero rate generated traffic")
		}
	}
}

// TestNextArrivalDeltaMatchesBernoulli is the contract that lets the
// simulator presample a dormant terminal's next arrival: NextArrivalDelta
// must consume the exact same RNG stream as ticking NextRequest's Bernoulli
// gate one cycle at a time — same failure count before the success AND the
// generator left in the identical state — so leaped and ticked runs stay
// bit-identical at any seed.
func TestNextArrivalDeltaMatchesBernoulli(t *testing.T) {
	p, err := NewPattern("uniform", 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0.001, 0.05, 0.3, 1.2} {
		g := NewGenerator(p, rate)
		a := xrand.New(42)
		b := xrand.New(42)
		for trial := 0; trial < 2000; trial++ {
			// Reference: per-cycle gate draws until a transaction starts.
			ticked := 0
			for !a.Bool(g.TransactionRate()) {
				ticked++
			}
			leaped := g.NextArrivalDelta(b, 1<<30)
			if leaped != ticked {
				t.Fatalf("rate %g trial %d: NextArrivalDelta = %d, per-cycle gate = %d", rate, trial, leaped, ticked)
			}
			if a.State() != b.State() {
				t.Fatalf("rate %g trial %d: RNG states diverged after sampling", rate, trial)
			}
			// Keep the streams exercised past the gate, as a real terminal
			// would (type + destination draws).
			at, ad := g.RequestAt(0, a)
			bt, bd := g.RequestAt(0, b)
			if at != bt || ad != bd {
				t.Fatalf("rate %g trial %d: RequestAt diverged: (%v,%d) vs (%v,%d)", rate, trial, at, ad, bt, bd)
			}
		}
	}
}

// TestNextArrivalDeltaStatistics sanity-checks the sampler's distribution:
// the mean inter-arrival gap must track the geometric mean 1/p - 1 failures
// before a success.
func TestNextArrivalDeltaStatistics(t *testing.T) {
	p, err := NewPattern("uniform", 64)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(p, 0.12) // transaction rate 0.02
	rng := xrand.New(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(g.NextArrivalDelta(rng, 1<<30))
	}
	mean := sum / n
	want := 1/g.TransactionRate() - 1
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean arrival delta = %.2f, want ≈ %.2f", mean, want)
	}
}

// TestNextArrivalDeltaDegenerate pins the zero-rate guard (the per-cycle
// gate never succeeds at p <= 0, so the sampler must refuse rather than
// spin).
func TestNextArrivalDeltaDegenerate(t *testing.T) {
	p, _ := NewPattern("uniform", 64)
	g := NewGenerator(p, 0)
	rng := xrand.New(1)
	before := rng.State()
	if d := g.NextArrivalDelta(rng, 1<<30); d != -1 {
		t.Errorf("NextArrivalDelta at rate 0 = %d, want -1", d)
	}
	if rng.State() != before {
		t.Error("NextArrivalDelta at rate 0 consumed randomness")
	}
}

// TestNextArrivalDeltaChunked pins the bounded-batch contract: a capped
// call that finds no arrival consumes exactly max draws, and resuming with
// further calls from the same stream position lands on the same arrival —
// after the same total number of draws — as one unbounded call. This is
// what lets the simulator presample in fixed chunks without ever diverging
// from the dense per-cycle stream.
func TestNextArrivalDeltaChunked(t *testing.T) {
	p, err := NewPattern("uniform", 64)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(p, 0.003) // transaction rate 0.0005: arrivals well past small chunks
	const chunk = 128
	a := xrand.New(99)
	b := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		want := g.NextArrivalDelta(a, 1<<30)
		total := 0
		for {
			d := g.NextArrivalDelta(b, chunk)
			if d >= 0 {
				total += d
				break
			}
			total += chunk
		}
		if total != want {
			t.Fatalf("trial %d: chunked arrival after %d cycles, unbounded after %d", trial, total, want)
		}
		if a.State() != b.State() {
			t.Fatalf("trial %d: RNG states diverged after chunked sampling", trial)
		}
	}
}
