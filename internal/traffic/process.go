package traffic

import (
	"fmt"
	"sort"

	"repro/internal/xrand"
)

// ArrivalProcess is the per-terminal injection process: the temporal half of
// a workload (the spatial half is Pattern). The simulator ticks it exactly
// once per simulated cycle; a tick reports whether a new request transaction
// arrives in that cycle.
//
// Contract (DESIGN.md §12) — every implementation must satisfy all of:
//
//   - Determinism: the draw sequence a tick consumes from rng is a function
//     of the process state alone, never of network state, so replaying
//     ticks from a snapshot reproduces the stream exactly.
//   - Quiet at zero rate: when Rate() <= 0 a tick consumes no randomness
//     and returns false. This is what lets the active-set scheduler skip a
//     zero-rate terminal entirely while the dense reference still ticks it
//     every cycle — both consume nothing, so the schedules stay
//     bit-identical.
//   - Batched sampling: NextArrivalDelta consumes exactly the draws of k+1
//     ticks when it returns k >= 0 (the (k+1)th tick being the arrival) and
//     exactly max ticks when it returns -1. The event-leaping presampler
//     relies on this to consume per-cycle gate draws in one batch.
//   - Snapshot/rewind: State() captures everything Tick mutates, and
//     Restore(st) followed by the same tick sequence against a restored rng
//     reproduces the same outcomes. The presampler snapshots before a
//     batch and rewinds on early wake-up or rate change.
type ArrivalProcess interface {
	// Name identifies the process ("bernoulli", "mmp", "trace").
	Name() string
	// Rate is the process's mean offered load in flits/cycle/terminal
	// (0 when the process can emit nothing more).
	Rate() float64
	// SetRate changes the offered load going forward. Implementations with
	// no rate knob (trace replay) treat rate <= 0 as "stop emitting" and
	// ignore other values.
	SetRate(rate float64)
	// Tick advances the process by one cycle and reports an arrival.
	Tick(rng *xrand.Source) bool
	// NextArrivalDelta batch-samples up to max ticks: it returns the offset
	// in cycles to the next arrival (0 = the current cycle) or -1 when none
	// of the max ticks arrived (or Rate() <= 0, consuming nothing).
	NextArrivalDelta(rng *xrand.Source, max int) int
	// State snapshots the process's mutable state.
	State() ProcState
	// Restore reinstates a snapshot taken by State.
	Restore(st ProcState)
}

// ProcState is an opaque snapshot of an ArrivalProcess's internal state:
// a fixed-size value so snapshotting never allocates. Each process uses the
// fields it needs; callers only pass it back to Restore.
type ProcState struct {
	cycle int64
	idx   int
	on    bool
}

// tickDelta is the shared NextArrivalDelta loop: exactly the draw sequence
// of up to max Ticks, stopping after the first arrival.
func tickDelta(p ArrivalProcess, rng *xrand.Source, max int) int {
	if p.Rate() <= 0 {
		return -1
	}
	for k := 0; k < max; k++ {
		if p.Tick(rng) {
			return k
		}
	}
	return -1
}

// --- Bernoulli ---------------------------------------------------------------

// Bernoulli is the paper's §3.2 injection process: one independent gate draw
// per cycle at the transaction rate (flit rate / FlitsPerTransaction). It is
// memoryless, so State/Restore carry nothing.
type Bernoulli struct {
	rate float64
}

// NewBernoulli builds the memoryless process at the given flit rate.
func NewBernoulli(rate float64) *Bernoulli { return &Bernoulli{rate: rate} }

func (b *Bernoulli) Name() string        { return "bernoulli" }
func (b *Bernoulli) Rate() float64       { return b.rate }
func (b *Bernoulli) SetRate(r float64)   { b.rate = r }
func (b *Bernoulli) State() ProcState    { return ProcState{} }
func (b *Bernoulli) Restore(_ ProcState) {}

// Tick draws the per-cycle Bernoulli gate. xrand.Bool consumes no draw at
// p <= 0, which is what makes the zero-rate quiet guarantee hold.
func (b *Bernoulli) Tick(rng *xrand.Source) bool {
	return rng.Bool(b.rate / FlitsPerTransaction)
}

// NextArrivalDelta consumes per-cycle gate draws until the first success —
// the exact stream Tick would consume one cycle at a time, which is what
// keeps event-leaped runs bit-identical to per-cycle ticking. A closed-form
// inversion sampler deliberately is not used here because it consumes a
// different number of draws.
func (b *Bernoulli) NextArrivalDelta(rng *xrand.Source, max int) int {
	return tickDelta(b, rng, max)
}

// --- Markov-modulated on/off (bursty) ---------------------------------------

// MMP is a two-state Markov-modulated process: the terminal alternates
// between ON bursts and OFF silences, drawing arrivals only while ON. Each
// tick first draws the state transition, then (if ON) the arrival gate, so
// the mean offered load is rate while the arrivals cluster into bursts —
// the adversarial temporal workload the dynamic-VC literature evaluates
// under (PAPERS.md, Onsori & Safaei).
//
// Parameterization: BurstLen is the mean ON duration in cycles
// (p_on->off = 1/BurstLen) and Duty the long-run ON fraction
// (p_off->on = duty/(1-duty) * p_on->off, the detailed-balance rate).
// While ON the transaction gate fires at (rate/6)/duty, so the long-run
// mean is the configured rate. Duty 1 degenerates to Bernoulli exactly:
// both transition probabilities are 0, and xrand.Bool(0) consumes no draw,
// so the draw stream is bit-identical to the memoryless process.
//
// Every terminal starts ON deterministically; the synchronized initial
// burst is absorbed by warmup like any other cold-start transient.
type MMP struct {
	rate     float64
	burstLen float64
	duty     float64
	pOnOff   float64
	pOffOn   float64
	pArr     float64
	on       bool
}

// NewMMP builds the bursty process: mean flit rate, mean burst length in
// cycles (>= 1) and duty cycle in (0, 1]. The per-cycle arrival gate while
// ON is (rate/6)/duty, so rate must not exceed 6*duty.
func NewMMP(rate, burstLen, duty float64) (*MMP, error) {
	if burstLen < 1 {
		return nil, fmt.Errorf("traffic: mmp burst length %g < 1 cycle", burstLen)
	}
	if duty <= 0 || duty > 1 {
		return nil, fmt.Errorf("traffic: mmp duty %g outside (0, 1]", duty)
	}
	if rate < 0 {
		return nil, fmt.Errorf("traffic: mmp rate %g < 0", rate)
	}
	if rate/FlitsPerTransaction/duty > 1 {
		return nil, fmt.Errorf("traffic: mmp rate %g exceeds duty-limited capacity %g", rate, FlitsPerTransaction*duty)
	}
	m := &MMP{burstLen: burstLen, duty: duty, on: true}
	if duty < 1 {
		m.pOnOff = 1 / burstLen
		m.pOffOn = duty / (1 - duty) * m.pOnOff
	}
	m.SetRate(rate)
	return m, nil
}

func (m *MMP) Name() string  { return "mmp" }
func (m *MMP) Rate() float64 { return m.rate }

// SetRate rescales the ON-phase arrival gate; the burst structure (phase and
// transition rates) is unchanged, so a drain-style rate change keeps the
// process in its current phase.
func (m *MMP) SetRate(r float64) {
	m.rate = r
	m.pArr = r / FlitsPerTransaction / m.duty
}

func (m *MMP) State() ProcState     { return ProcState{on: m.on} }
func (m *MMP) Restore(st ProcState) { m.on = st.on }

// Tick draws the phase transition, then the arrival gate if the phase is ON.
// At rate <= 0 it consumes nothing and freezes the phase — the dense
// schedule keeps ticking zero-rate terminals while the active set skips
// them, and both must leave the rng stream untouched.
func (m *MMP) Tick(rng *xrand.Source) bool {
	if m.rate <= 0 {
		return false
	}
	if m.on {
		if rng.Bool(m.pOnOff) {
			m.on = false
		}
	} else if rng.Bool(m.pOffOn) {
		m.on = true
	}
	return m.on && rng.Bool(m.pArr)
}

func (m *MMP) NextArrivalDelta(rng *xrand.Source, max int) int {
	return tickDelta(m, rng, max)
}

// --- Trace replay ------------------------------------------------------------

// Arrival is one recorded request-transaction injection: at Cycle, terminal
// Src started a Type transaction to Dst. It is the unit of a PacketTrace.
type Arrival struct {
	Cycle int64      `json:"cycle"`
	Src   int        `json:"src"`
	Dst   int        `json:"dst"`
	Type  PacketType `json:"type"`
}

// PacketTrace is a recorded injection workload: every request transaction of
// a run, sorted by (cycle, source). Replaying it through Replay processes
// reproduces the recorded offered load exactly — same cycles, sources,
// destinations and types — independent of the replaying network's topology
// or allocators (internal/trace serializes it; sim records it).
type PacketTrace struct {
	// Terminals is the terminal count of the recording network; replay
	// requires at least this many terminals.
	Terminals int `json:"terminals"`
	// Arrivals is sorted by (Cycle, Src); per source, cycles are strictly
	// increasing (a terminal starts at most one transaction per cycle).
	Arrivals []Arrival `json:"arrivals"`
}

// Validate checks the trace's structural invariants: sources and
// destinations in range, no self-traffic, request packet types, global
// (cycle, src) order and per-source strictly increasing cycles.
func (pt *PacketTrace) Validate() error {
	if pt.Terminals < 2 {
		return fmt.Errorf("traffic: trace needs at least 2 terminals, got %d", pt.Terminals)
	}
	last := make(map[int]int64, pt.Terminals)
	for i, a := range pt.Arrivals {
		if a.Src < 0 || a.Src >= pt.Terminals || a.Dst < 0 || a.Dst >= pt.Terminals {
			return fmt.Errorf("traffic: trace arrival %d: endpoints %d->%d outside [0, %d)", i, a.Src, a.Dst, pt.Terminals)
		}
		if a.Src == a.Dst {
			return fmt.Errorf("traffic: trace arrival %d: self-traffic at terminal %d", i, a.Src)
		}
		if a.Cycle < 0 {
			return fmt.Errorf("traffic: trace arrival %d: negative cycle %d", i, a.Cycle)
		}
		if !a.Type.IsRequest() {
			return fmt.Errorf("traffic: trace arrival %d: %v is not a request type", i, a.Type)
		}
		if i > 0 {
			prev := pt.Arrivals[i-1]
			if a.Cycle < prev.Cycle || (a.Cycle == prev.Cycle && a.Src <= prev.Src) {
				return fmt.Errorf("traffic: trace arrival %d out of (cycle, src) order", i)
			}
		}
		if c, ok := last[a.Src]; ok && a.Cycle <= c {
			return fmt.Errorf("traffic: trace arrival %d: terminal %d injects twice in cycle %d", i, a.Src, a.Cycle)
		}
		last[a.Src] = a.Cycle
	}
	return nil
}

// Sort puts the arrivals into the canonical (cycle, src) order.
func (pt *PacketTrace) Sort() {
	sort.SliceStable(pt.Arrivals, func(i, j int) bool {
		a, b := pt.Arrivals[i], pt.Arrivals[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.Src < b.Src
	})
}

// BySource splits the trace into per-terminal arrival slices (views into
// copies, safe to hold beyond the trace), indexed by source over n
// terminals.
func (pt *PacketTrace) BySource(n int) [][]Arrival {
	out := make([][]Arrival, n)
	for _, a := range pt.Arrivals {
		out[a.Src] = append(out[a.Src], a)
	}
	return out
}

// PacketSource is the optional ArrivalProcess extension for processes that
// carry the spatial half of the workload too: after a tick (or batched
// sample) signals an arrival, PacketAt returns that arrival's recorded
// packet type and destination, and the Generator uses them instead of
// drawing from ReadFraction and the Pattern.
type PacketSource interface {
	PacketAt() (PacketType, int)
}

// Replay drives one terminal from its slice of a recorded PacketTrace. It
// consumes no randomness at all: a tick advances an internal cycle counter
// and fires exactly at the recorded arrival cycles, so the snapshot/rewind
// contract reduces to saving and restoring (cycle, cursor). Once the slice
// is exhausted Rate() reports 0 and the terminal goes quiet.
type Replay struct {
	arrivals []Arrival
	cycle    int64 // next tick advances this simulated cycle
	idx      int   // next arrival not yet fired
	meanRate float64
	stopped  bool
}

// NewReplay builds a replay process over one source's arrivals (cycles
// strictly increasing, as PacketTrace.Validate enforces per source).
func NewReplay(arrivals []Arrival) *Replay {
	r := &Replay{arrivals: arrivals}
	if n := len(arrivals); n > 0 {
		span := arrivals[n-1].Cycle + 1
		r.meanRate = FlitsPerTransaction * float64(n) / float64(span)
	}
	return r
}

func (r *Replay) Name() string { return "trace" }

// Rate reports the trace segment's mean flit rate while arrivals remain and
// 0 once the replay is exhausted (or stopped), which is what lets the
// scheduler treat a finished trace terminal as quiet.
func (r *Replay) Rate() float64 {
	if r.stopped || r.idx >= len(r.arrivals) {
		return 0
	}
	return r.meanRate
}

// SetRate has no rate knob to turn — the trace is data — but honors the
// drain convention: a non-positive rate stops the replay, anything else is
// ignored.
func (r *Replay) SetRate(rate float64) {
	if rate <= 0 {
		r.stopped = true
	}
}

func (r *Replay) State() ProcState { return ProcState{cycle: r.cycle, idx: r.idx} }

func (r *Replay) Restore(st ProcState) { r.cycle, r.idx = st.cycle, st.idx }

// Tick advances one cycle and fires iff that cycle is the next recorded
// arrival.
func (r *Replay) Tick(_ *xrand.Source) bool {
	c := r.cycle
	r.cycle++
	if r.stopped || r.idx >= len(r.arrivals) || r.arrivals[r.idx].Cycle != c {
		return false
	}
	r.idx++
	return true
}

// NextArrivalDelta jumps the internal clock straight to the next recorded
// arrival (or by max cycles), consuming no randomness; the accounting —
// k+1 ticks on arrival at offset k, max ticks on -1 — matches the
// per-cycle contract exactly.
func (r *Replay) NextArrivalDelta(_ *xrand.Source, max int) int {
	if r.Rate() <= 0 {
		return -1
	}
	d := r.arrivals[r.idx].Cycle - r.cycle
	if d >= int64(max) {
		r.cycle += int64(max)
		return -1
	}
	r.cycle += d + 1
	r.idx++
	return int(d)
}

// PacketAt returns the type and destination of the most recently fired
// arrival (PacketSource).
func (r *Replay) PacketAt() (PacketType, int) {
	a := r.arrivals[r.idx-1]
	return a.Type, a.Dst
}
