package curve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/sweep"
)

func postSpec(t *testing.T, url string, spec Spec) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /curve: %s", resp.Status)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollJob(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "?job=" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running at deadline", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServiceSubmitPollIdempotent(t *testing.T) {
	svc := NewService(newFakeEval(0.25))
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec := testSpec()
	st := postSpec(t, ts.URL, spec)
	if st.Job != spec.ID() {
		t.Fatalf("job ID %s, want content address %s", st.Job, spec.ID())
	}
	// Resubmission attaches to the same job.
	if again := postSpec(t, ts.URL, spec); again.Job != st.Job {
		t.Fatalf("resubmit created new job %s", again.Job)
	}
	done := pollJob(t, ts.URL, st.Job)
	if done.Status != "done" || done.Result == nil {
		t.Fatalf("job finished as %q (err %q)", done.Status, done.Error)
	}
	if !done.Result.KneeFound || done.Result.KneeIndex != 24 {
		t.Fatalf("knee index %d (found=%v), want 24", done.Result.KneeIndex, done.Result.KneeFound)
	}
	if done.Simulated != done.Result.Simulated {
		t.Fatalf("progress count %d != result count %d", done.Simulated, done.Result.Simulated)
	}

	// Unknown jobs 404.
	resp, err := http.Get(ts.URL + "?job=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s, want 404", resp.Status)
	}

	// Invalid specs are rejected at submit.
	body, _ := json.Marshal(Spec{Base: sweep.UnitConfig{Topo: "ring"}})
	resp, err = http.Post(ts.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %s, want 400", resp.Status)
	}
}

// blockingEval parks every EvalUnit until its context is cancelled.
type blockingEval struct{ started chan struct{} }

func (b *blockingEval) EvalUnit(ctx context.Context, u sweep.UnitConfig) (sweep.UnitResult, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return sweep.UnitResult{}, ctx.Err()
}

func TestServiceCancel(t *testing.T) {
	eval := &blockingEval{started: make(chan struct{}, 1)}
	svc := NewService(eval)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	st := postSpec(t, ts.URL, testSpec())
	<-eval.started // the trace is in flight

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"?job="+st.Job, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %s", resp.Status)
	}
	final := pollJob(t, ts.URL, st.Job)
	if final.Status != "canceled" {
		t.Fatalf("canceled job reports %q", final.Status)
	}
}
