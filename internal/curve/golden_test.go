package curve

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sharecache"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// tinySpec is the golden-test trace spec: short phases, a 0.05 lattice, and
// the paper-grid top for the topology.
func tinySpec(topo, process string) Spec {
	maxRate := 0.45
	if topo == "fbfly" {
		maxRate = 0.50
	}
	return Spec{
		Base: sweep.UnitConfig{
			Topo: topo, Process: process, Seed: 42,
			Warmup: 150, Measure: 300, Drain: 1500,
		},
		Step: 0.05, MinRate: 0.05, MaxRate: maxRate, Coarse: 4,
	}
}

// TestTracerPointsByteEqualBatch pins the tracer's core contract: every
// sampled point is an ordinary simulation unit at a canonical lattice rate,
// byte-equal to what the batch CLI path (sweep.RunUnit via
// experiments.BuildSim) computes for the same unit — on both topologies,
// serial and sharded stepping, bernoulli and bursty arrivals.
func TestTracerPointsByteEqualBatch(t *testing.T) {
	ctx := context.Background()
	for _, topo := range []string{"mesh", "fbfly"} {
		for _, shards := range []int{1, 4} {
			for _, process := range []string{"bernoulli", "mmp"} {
				t.Run(fmt.Sprintf("%s/shards=%d/%s", topo, shards, process), func(t *testing.T) {
					exec := sweep.Exec{Shards: shards, Leap: true}
					srv, err := sweep.NewServer(sweep.Options{Exec: exec, Workers: 4})
					if err != nil {
						t.Fatal(err)
					}
					defer srv.Close()
					tr, err := TraceCurve(ctx, srv, tinySpec(topo, process), Options{Workers: 4})
					if err != nil {
						t.Fatal(err)
					}
					if tr.Simulated == 0 {
						t.Fatal("trace sampled nothing")
					}
					for _, p := range tr.Points {
						u := tr.Spec.Base
						u.Rate = tr.Spec.Lattice().Rate(p.Index)
						batch, err := sweep.RunUnit(ctx, u, exec)
						if err != nil {
							t.Fatal(err)
						}
						got, _ := json.Marshal(p.Result)
						want, _ := json.Marshal(batch)
						if string(got) != string(want) {
							t.Fatalf("point %d (rate %g): tracer result differs from batch:\n%s\n%s",
								p.Index, u.Rate, got, want)
						}
					}
				})
			}
		}
	}
}

// TestAdaptiveKneeMatchesFixedGrid pins the acceptance criterion on real
// simulations: on both topologies the adaptive trace simulates at most half
// the fixed-grid points while locating the knee within one lattice step of
// the fixed grid's answer.
func TestAdaptiveKneeMatchesFixedGrid(t *testing.T) {
	ctx := context.Background()
	for _, topo := range []string{"mesh", "fbfly"} {
		t.Run(topo, func(t *testing.T) {
			srv, err := sweep.NewServer(sweep.Options{Exec: sweep.Exec{Leap: true}, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			spec := tinySpec(topo, "bernoulli")
			spec.Step, spec.MinRate, spec.Coarse = 0.02, 0.02, 5
			tr, err := TraceCurve(ctx, srv, spec, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !tr.KneeFound {
				t.Fatalf("no knee found below %g", tr.Spec.MaxRate)
			}
			// Fixed-grid reference: every lattice index in range (the points
			// the trace already sampled come back as cache hits).
			lat := tr.Spec.Lattice()
			iMin, iMax := lat.Index(tr.Spec.MinRate), lat.Index(tr.Spec.MaxRate)
			fixedKnee := iMax
			for i := iMin; i <= iMax; i++ {
				u := tr.Spec.Base
				u.Rate = lat.Rate(i)
				res, err := srv.EvalUnit(ctx, u)
				if err != nil {
					t.Fatal(err)
				}
				if tr.Spec.saturatedAt(res) {
					fixedKnee = i - 1
					break
				}
			}
			if d := tr.KneeIndex - fixedKnee; d < -tr.Spec.KneeResolution || d > tr.Spec.KneeResolution {
				t.Fatalf("adaptive knee index %d vs fixed-grid %d: outside one lattice step", tr.KneeIndex, fixedKnee)
			}
			if 2*tr.Simulated > tr.FixedGridPoints {
				t.Fatalf("adaptive trace simulated %d of %d fixed-grid points (> 50%%)",
					tr.Simulated, tr.FixedGridPoints)
			}
			t.Logf("%s: adaptive %d points vs fixed %d, knee %g", topo, tr.Simulated, tr.FixedGridPoints, tr.KneeRate)
		})
	}
}

// TestShareCacheTraceEquivalence is the mutation-detection audit: a trace
// with the share cache enabled (topology, routing and class masks shared by
// concurrent sims) must be byte-equal to the same trace with sharing
// disabled (every sim builds its own state — the pre-sharing path), and the
// shared topology must checksum identically before and after concurrent
// Validate-mode runs.
func TestShareCacheTraceEquivalence(t *testing.T) {
	ctx := context.Background()
	spec := tinySpec("mesh", "mmp")
	run := func() []byte {
		srv, err := sweep.NewServer(sweep.Options{Exec: sweep.Exec{Shards: 4, Leap: true}, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		tr, err := TraceCurve(ctx, srv, spec, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(tr.Points)
		return b
	}
	if !sharecache.Default.Enabled() {
		t.Fatal("share cache not enabled by default")
	}
	shared := run()
	sharecache.Default.SetEnabled(false)
	cold := run()
	sharecache.Default.SetEnabled(true)
	if string(shared) != string(cold) {
		t.Fatalf("sharing changed results:\nshared: %s\ncold:   %s", shared, cold)
	}
}

// TestSharedTopologyUnmutated proves the share-cache immutability contract
// directly: BuildSim hands every caller the same topology instance, and its
// serialized form is unchanged after concurrent Validate-mode simulations
// ran on it.
func TestSharedTopologyUnmutated(t *testing.T) {
	pt, err := experiments.PointByName("mesh", 1)
	if err != nil {
		t.Fatal(err)
	}
	scale := experiments.SimScale{Warmup: 150, Measure: 300, Drain: 1500, Seed: 42, Leap: true}
	cfg1 := experiments.BuildSim(pt, 0.2, scale)
	cfg2 := experiments.BuildSim(pt, 0.3, scale)
	if cfg1.Topology != cfg2.Topology {
		t.Fatal("share cache enabled but BuildSim returned distinct topology instances")
	}
	before, _ := json.Marshal(cfg1.Topology)
	done := make(chan sim.Result, 2)
	for _, cfg := range []sim.Config{cfg1, cfg2} {
		cfg := cfg
		cfg.Validate = true
		go func() { done <- sim.New(cfg).Run() }()
	}
	for i := 0; i < 2; i++ {
		if res := <-done; res.FlitsDelivered == 0 {
			t.Fatal("no traffic moved")
		}
	}
	after, _ := json.Marshal(cfg1.Topology)
	if string(before) != string(after) {
		t.Fatal("concurrent simulations mutated the shared topology")
	}
}
