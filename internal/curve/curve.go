// Package curve traces latency-throughput curves adaptively: a coarse scan
// over a quantized rate lattice brackets the saturation knee, bisection
// narrows the bracket to a target resolution, and a latency-slope refinement
// pass concentrates the remaining samples on the curve's bend — simulating a
// fraction of the fixed-grid points a uniform sweep would pay for while
// locating the knee to the same lattice resolution.
//
// Every sampled point is an ordinary, independent simulation unit at a
// canonical lattice rate (experiments.RateLattice.Rate), resolved through an
// Evaluator — normally *sweep.Server — so points are byte-equal to the batch
// CLIs, hit the sweep content store, coalesce with concurrent requests, and
// persist to the disk tier. Tracing curves for a Pareto frontier therefore
// reuses every point the search already simulated, and re-tracing after a
// restart is disk-warm.
package curve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// Evaluator resolves one simulation unit; *sweep.Server satisfies it (the
// same contract as dse.Evaluator), which gives a trace the server's memory
// store, disk tier, in-flight coalescing and worker pool for free.
type Evaluator interface {
	EvalUnit(ctx context.Context, u sweep.UnitConfig) (sweep.UnitResult, error)
}

// SpecVersion pins the curve-spec schema; it prefixes the content hash that
// names trace jobs, so changing the spec's fields or defaults rotates every
// job ID.
const SpecVersion = 1

// Spec describes one adaptive trace: the design point and workload to sweep
// (Base, whose Rate field is ignored — each sampled point overwrites it with
// a canonical lattice rate) plus the lattice and knee-search parameters.
type Spec struct {
	SpecVersion int `json:"spec_version,omitempty"`
	// Base is the unit template every sampled point shares; only Rate
	// varies between points. Base.Rate itself is cleared on normalization.
	Base sweep.UnitConfig `json:"base"`
	// Step is the rate-lattice quantum (experiments.DefaultLatticeStep when
	// zero). Every sampled rate is float64(i)*Step for an integer i.
	Step float64 `json:"step,omitempty"`
	// MinRate/MaxRate bound the scan; both are snapped to the lattice.
	// Defaults: one lattice step, and the top of the paper's fixed grid for
	// the design point (experiments.InjectionRates).
	MinRate float64 `json:"min_rate,omitempty"`
	MaxRate float64 `json:"max_rate,omitempty"`
	// Coarse is the number of evenly spaced coarse-scan points, endpoints
	// included (default 6, minimum 2).
	Coarse int `json:"coarse,omitempty"`
	// KneeResolution is the bisection termination bound in lattice steps
	// (default 1): bisection stops when the unsaturated/saturated bracket
	// is at most this many indices wide.
	KneeResolution int `json:"knee_resolution,omitempty"`
	// DivergeTol is the accepted-throughput divergence criterion: a point
	// whose throughput falls below rate*(1-DivergeTol) by more than half a
	// lattice step counts as saturated even if the simulator's drain-based
	// flag did not trip (default 0.05). The half-step absolute slack keeps
	// sampling noise at low rates — where short measurement windows see few
	// packets — from registering as divergence.
	DivergeTol float64 `json:"diverge_tol,omitempty"`
	// SlopeFactor drives the latency-slope refinement pass: after the knee
	// is bracketed, midpoints are inserted between adjacent samples whose
	// latency ratio exceeds this factor, concentrating points on the bend
	// (default 2; values <= 1 disable refinement).
	SlopeFactor float64 `json:"slope_factor,omitempty"`
	// MaxPoints bounds the total simulated points per trace (default 64).
	MaxPoints int `json:"max_points,omitempty"`
}

// Lattice returns the spec's rate lattice.
func (s Spec) Lattice() experiments.RateLattice {
	return experiments.RateLattice{Step: s.Step}
}

// Normalized fills every defaultable zero field. Hashing, validation and
// tracing all go through the normalized form.
func (s Spec) Normalized() Spec {
	if s.SpecVersion == 0 {
		s.SpecVersion = SpecVersion
	}
	s.Base.Rate = 0
	s.Base = s.Base.Normalized()
	if s.Step == 0 {
		s.Step = experiments.DefaultLatticeStep
	}
	lat := s.Lattice()
	if s.MinRate == 0 {
		s.MinRate = lat.Rate(1)
	}
	if s.MaxRate == 0 {
		if pt, err := experiments.PointByName(s.Base.Topo, s.Base.VCsPerClass); err == nil {
			grid := experiments.InjectionRates(pt)
			s.MaxRate = grid[len(grid)-1]
		}
	}
	s.MinRate = lat.Snap(s.MinRate)
	s.MaxRate = lat.Snap(s.MaxRate)
	if s.Coarse == 0 {
		s.Coarse = 6
	}
	if s.KneeResolution == 0 {
		s.KneeResolution = 1
	}
	if s.DivergeTol == 0 {
		s.DivergeTol = 0.05
	}
	if s.SlopeFactor == 0 {
		s.SlopeFactor = 2
	}
	if s.MaxPoints == 0 {
		s.MaxPoints = 64
	}
	return s
}

// Validate checks the normalized spec; the base unit is validated at the
// minimum rate (its own rate field is ignored by tracing).
func (s Spec) Validate() error {
	s = s.Normalized()
	if s.SpecVersion != SpecVersion {
		return fmt.Errorf("curve: spec version %d not supported (have %d)", s.SpecVersion, SpecVersion)
	}
	if s.Step <= 0 || s.Step > 1 {
		return fmt.Errorf("curve: lattice step %g outside (0, 1]", s.Step)
	}
	if s.MaxRate <= 0 {
		return fmt.Errorf("curve: max_rate %g must be positive", s.MaxRate)
	}
	lat := s.Lattice()
	if lat.Index(s.MinRate) < 1 {
		return fmt.Errorf("curve: min_rate %g below the first lattice point %g", s.MinRate, lat.Rate(1))
	}
	if lat.Index(s.MinRate) >= lat.Index(s.MaxRate) {
		return fmt.Errorf("curve: min_rate %g not below max_rate %g on the lattice", s.MinRate, s.MaxRate)
	}
	if s.Coarse < 2 {
		return fmt.Errorf("curve: coarse %d < 2", s.Coarse)
	}
	if s.KneeResolution < 1 {
		return fmt.Errorf("curve: knee_resolution %d < 1", s.KneeResolution)
	}
	if s.DivergeTol < 0 || s.DivergeTol >= 1 {
		return fmt.Errorf("curve: diverge_tol %g outside [0, 1)", s.DivergeTol)
	}
	if s.MaxPoints < s.Coarse {
		return fmt.Errorf("curve: max_points %d below coarse count %d", s.MaxPoints, s.Coarse)
	}
	base := s.Base
	base.Rate = s.MinRate
	return base.Validate()
}

// ID returns the spec's content address (the trace-job ID): the hex SHA-256
// of a versioned canonical JSON serialization of the normalized spec.
func (s Spec) ID() string {
	s = s.Normalized()
	b, _ := json.Marshal(s)
	sum := sha256.Sum256(append([]byte(fmt.Sprintf("noc-curve/v%d\n", SpecVersion)), b...))
	return hex.EncodeToString(sum[:])
}

// unitAt spells the simulation unit for lattice index i: the base config at
// the canonical lattice rate.
func (s Spec) unitAt(i int) sweep.UnitConfig {
	u := s.Base
	u.Rate = s.Lattice().Rate(i)
	return u.Normalized()
}

// saturatedAt applies the tracer's knee criterion to one measured point:
// the simulator's drain-based saturation flag, or accepted throughput
// diverging from the offered rate by more than DivergeTol relative plus
// half a lattice step absolute. The absolute slack matters at low rates:
// a short measurement window sees few packets there, so the relative
// error of the throughput estimate is large, and divergence smaller than
// the lattice's own resolution carries no knee information.
func (s Spec) saturatedAt(r sweep.UnitResult) bool {
	if r.Saturated {
		return true
	}
	return r.Rate > 0 && r.Throughput < r.Rate*(1-s.DivergeTol)-s.Step/2
}

// Point is one sampled curve point.
type Point struct {
	// Index is the lattice index; Result.Rate == Step * Index exactly.
	Index int `json:"index"`
	// Stage records which tracer phase sampled the point: "coarse",
	// "bisect" or "refine".
	Stage string `json:"stage"`
	// Saturated is the tracer's knee criterion applied to the point (the
	// raw simulator flag is Result.Saturated).
	Saturated bool `json:"saturated"`
	// Result is the full simulation unit result, byte-equal to what the
	// batch CLIs compute for the same unit.
	Result sweep.UnitResult `json:"result"`
}

// Trace is the outcome of one adaptive trace.
type Trace struct {
	SpecVersion int  `json:"spec_version"`
	Spec        Spec `json:"spec"`
	// Points are the sampled curve points in ascending rate order; each
	// lattice index is simulated at most once.
	Points []Point `json:"points"`
	// KneeIndex/KneeRate locate the saturation knee: the highest sampled
	// lattice index still unsaturated under the knee criterion. KneeUpper
	// is the lowest sampled saturated index (the bracket's other edge;
	// KneeUpper-KneeIndex <= KneeResolution when KneeFound).
	KneeIndex int     `json:"knee_index"`
	KneeRate  float64 `json:"knee_rate"`
	KneeUpper int     `json:"knee_upper,omitempty"`
	// KneeFound reports whether the scan bracketed a knee inside
	// [MinRate, MaxRate]; false means the curve never saturated below
	// MaxRate (KneeIndex = the top index) or was already saturated at
	// MinRate (KneeIndex = the bottom index).
	KneeFound bool `json:"knee_found"`
	// Simulated counts distinct lattice points this trace evaluated;
	// FixedGridPoints is what a fixed grid at the same knee resolution
	// would have evaluated over the same range.
	Simulated       int `json:"simulated"`
	FixedGridPoints int `json:"fixed_grid_points"`
}

// Series converts the trace to a named experiments curve for rendering
// alongside batch output (FormatNetSeries handles the non-uniform grid).
func (t Trace) Series(name string) experiments.NetSeries {
	s := experiments.NetSeries{Name: name}
	for _, p := range t.Points {
		s.Points = append(s.Points, p.Result.NetPoint())
	}
	return s
}

// Options tunes a trace's execution, never its answer: the sampled points
// and knee are identical for every worker count.
type Options struct {
	// Workers bounds the trace's own simulation fan-out within the coarse
	// scan and each refinement round (default 1; the evaluator's pool
	// bounds true parallelism below it).
	Workers int
	// Progress, when non-nil, is called after every completed point with
	// the cumulative sampled count.
	Progress func(simulated int)
}

// tracer carries one trace's in-flight state.
type tracer struct {
	spec    Spec
	eval    Evaluator
	opts    Options
	mu      sync.Mutex
	results map[int]sweep.UnitResult
	stages  map[int]string
}

// TraceCurve runs one adaptive trace: coarse scan, knee bisection, then
// latency-slope refinement. The sampled point set and knee estimate are
// deterministic functions of the spec (worker count and evaluator caching
// never change them).
func TraceCurve(ctx context.Context, eval Evaluator, spec Spec, opts Options) (Trace, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return Trace{}, err
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	tr := &tracer{
		spec: spec, eval: eval, opts: opts,
		results: map[int]sweep.UnitResult{},
		stages:  map[int]string{},
	}
	lat := spec.Lattice()
	iMin, iMax := lat.Index(spec.MinRate), lat.Index(spec.MaxRate)

	// Coarse scan: evenly spaced lattice indices, endpoints included.
	var coarse []int
	for k := 0; k < spec.Coarse; k++ {
		i := iMin + k*(iMax-iMin)/(spec.Coarse-1)
		if len(coarse) == 0 || coarse[len(coarse)-1] != i {
			coarse = append(coarse, i)
		}
	}
	if err := tr.evalAll(ctx, coarse, "coarse"); err != nil {
		return Trace{}, err
	}

	// Bracket the knee from the coarse results: lo = the last index before
	// the first saturated one, hi = that saturated index.
	lo, hi := -1, -1
	for k, i := range coarse {
		if spec.saturatedAt(tr.results[i]) {
			hi = i
			if k > 0 {
				lo = coarse[k-1]
			}
			break
		}
		lo = i
	}

	out := Trace{SpecVersion: SpecVersion, Spec: spec}
	switch {
	case hi == -1:
		// Never saturated below MaxRate: the knee is at or above the top.
		out.KneeIndex, out.KneeFound = iMax, false
	case lo == -1:
		// Already saturated at MinRate: the knee is below the bottom.
		out.KneeIndex, out.KneeUpper, out.KneeFound = iMin, iMin, false
	default:
		// Bisect the bracket on lattice indices. Each step halves hi-lo, so
		// this terminates in at most ceil(log2((iMax-iMin)/(Coarse-1))) -
		// log2(KneeResolution) evaluations.
		for hi-lo > spec.KneeResolution && len(tr.results) < spec.MaxPoints {
			mid := (lo + hi) / 2
			if mid == lo || mid == hi {
				break
			}
			if err := tr.evalAll(ctx, []int{mid}, "bisect"); err != nil {
				return Trace{}, err
			}
			if spec.saturatedAt(tr.results[mid]) {
				hi = mid
			} else {
				lo = mid
			}
		}
		out.KneeIndex, out.KneeUpper, out.KneeFound = lo, hi, true
	}

	// Latency-slope refinement: insert midpoints between adjacent sampled
	// points whose latency ratio exceeds SlopeFactor, concentrating samples
	// on the bend. Each round halves the offending gaps, so the pass
	// terminates; MaxPoints bounds it regardless.
	if spec.SlopeFactor > 1 {
		for len(tr.results) < spec.MaxPoints {
			var inserts []int
			idxs := tr.sortedIndices()
			for k := 0; k+1 < len(idxs); k++ {
				a, b := idxs[k], idxs[k+1]
				if b-a <= spec.KneeResolution {
					continue
				}
				la, lb := tr.results[a].Latency, tr.results[b].Latency
				if la > 0 && lb > spec.SlopeFactor*la {
					inserts = append(inserts, (a+b)/2)
				}
				if len(tr.results)+len(inserts) >= spec.MaxPoints {
					break
				}
			}
			if len(inserts) == 0 {
				break
			}
			if err := tr.evalAll(ctx, inserts, "refine"); err != nil {
				return Trace{}, err
			}
		}
	}

	for _, i := range tr.sortedIndices() {
		r := tr.results[i]
		out.Points = append(out.Points, Point{
			Index: i, Stage: tr.stages[i], Saturated: spec.saturatedAt(r), Result: r,
		})
	}
	out.KneeRate = lat.Rate(out.KneeIndex)
	out.Simulated = len(out.Points)
	out.FixedGridPoints = (iMax-iMin)/spec.KneeResolution + 1
	return out, nil
}

// evalAll evaluates the given lattice indices (skipping any already
// sampled) with up to Workers units in flight.
func (t *tracer) evalAll(ctx context.Context, idxs []int, stage string) error {
	var todo []int
	for _, i := range idxs {
		t.mu.Lock()
		_, done := t.results[i]
		t.mu.Unlock()
		if !done {
			todo = append(todo, i)
		}
	}
	if len(todo) == 0 {
		return nil
	}
	workers := t.opts.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(todo))
	var wg sync.WaitGroup
	for k, i := range todo {
		k, i := k, i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				errs[k] = ctx.Err()
				return
			}
			res, err := t.eval.EvalUnit(ctx, t.spec.unitAt(i))
			if err != nil {
				errs[k] = err
				return
			}
			t.mu.Lock()
			t.results[i] = res
			t.stages[i] = stage
			n := len(t.results)
			t.mu.Unlock()
			if t.opts.Progress != nil {
				t.opts.Progress(n)
			}
		}()
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return fmt.Errorf("curve: point %d: %w", todo[k], err)
		}
	}
	return nil
}

// sortedIndices returns every sampled lattice index in ascending order.
func (t *tracer) sortedIndices() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	idxs := make([]int, 0, len(t.results))
	for i := range t.results {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs
}
