package curve

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

// fakeEval is a synthetic network model: unsaturated with latency
// L0/(1 - rate/satRate) below satRate, saturated (flag set, throughput
// capped) at and above it. It counts EvalUnit calls so tests can pin the
// tracer's memoization and point budget.
type fakeEval struct {
	satRate float64
	calls   atomic.Int64

	mu   sync.Mutex
	seen map[float64]int
}

func newFakeEval(satRate float64) *fakeEval {
	return &fakeEval{satRate: satRate, seen: map[float64]int{}}
}

func (f *fakeEval) EvalUnit(_ context.Context, u sweep.UnitConfig) (sweep.UnitResult, error) {
	f.calls.Add(1)
	f.mu.Lock()
	f.seen[u.Rate]++
	f.mu.Unlock()
	r := sweep.UnitResult{Config: u.Normalized(), Rate: u.Rate, Key: u.Key()}
	if u.Rate >= f.satRate {
		r.Saturated = true
		r.Throughput = f.satRate
		r.Latency = 1000
	} else {
		r.Throughput = u.Rate
		r.Latency = 10 / (1 - u.Rate/f.satRate)
	}
	return r, nil
}

func testSpec() Spec {
	return Spec{
		Base: sweep.UnitConfig{Topo: "mesh", Seed: 42},
		Step: 0.01, MinRate: 0.01, MaxRate: 0.45,
	}
}

func TestTracerFindsKneeOnSyntheticModel(t *testing.T) {
	// satRate 0.30 on a 0.01 lattice: indices >= 30 saturate, so the knee
	// (highest unsaturated index) is 29.
	eval := newFakeEval(0.30)
	tr, err := TraceCurve(context.Background(), eval, testSpec(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.KneeFound {
		t.Fatal("knee not found")
	}
	if tr.KneeIndex != 29 || tr.KneeUpper != 30 {
		t.Fatalf("knee bracket [%d, %d], want [29, 30]", tr.KneeIndex, tr.KneeUpper)
	}
	if tr.KneeUpper-tr.KneeIndex > tr.Spec.KneeResolution {
		t.Fatalf("bracket wider than resolution %d", tr.Spec.KneeResolution)
	}
	if tr.FixedGridPoints != 45 {
		t.Fatalf("fixed grid %d points, want 45", tr.FixedGridPoints)
	}
	if 2*tr.Simulated > tr.FixedGridPoints {
		t.Fatalf("adaptive trace simulated %d points, more than half of the %d-point fixed grid",
			tr.Simulated, tr.FixedGridPoints)
	}
	// Memoization: every lattice point simulated at most once.
	if got := eval.calls.Load(); int(got) != tr.Simulated {
		t.Fatalf("%d EvalUnit calls for %d distinct points", got, tr.Simulated)
	}
	for rate, n := range eval.seen {
		if n != 1 {
			t.Fatalf("rate %g evaluated %d times", rate, n)
		}
	}
	// Points are sorted, on-lattice, and carry canonical rates.
	lat := tr.Spec.Lattice()
	for k, p := range tr.Points {
		if p.Result.Rate != lat.Rate(p.Index) {
			t.Fatalf("point %d: rate %v != lattice rate %v", k, p.Result.Rate, lat.Rate(p.Index))
		}
		if k > 0 && tr.Points[k-1].Index >= p.Index {
			t.Fatalf("points not strictly ascending at %d", k)
		}
	}
	if tr.KneeRate != lat.Rate(29) {
		t.Fatalf("knee rate %v, want lattice rate %v", tr.KneeRate, lat.Rate(29))
	}
}

func TestTracerWorkerInvariance(t *testing.T) {
	// The sampled point set and knee must be identical for every worker
	// count (CI runs this under GOMAXPROCS=4 as the parallel-tracer smoke).
	var traces []Trace
	for _, workers := range []int{1, 4} {
		tr, err := TraceCurve(context.Background(), newFakeEval(0.22), testSpec(), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	a, _ := json.Marshal(traces[0])
	b, _ := json.Marshal(traces[1])
	if string(a) != string(b) {
		t.Fatalf("workers=1 and workers=4 traces differ:\n%s\n%s", a, b)
	}
}

func TestTracerNeverSaturated(t *testing.T) {
	eval := newFakeEval(9) // saturation far above MaxRate
	tr, err := TraceCurve(context.Background(), eval, testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.KneeFound {
		t.Fatal("knee reported found on an unsaturated curve")
	}
	if tr.KneeIndex != tr.Spec.Lattice().Index(tr.Spec.MaxRate) {
		t.Fatalf("unsaturated curve knee index %d, want top index", tr.KneeIndex)
	}
}

func TestTracerSaturatedFromStart(t *testing.T) {
	eval := newFakeEval(0.005) // saturated below MinRate
	tr, err := TraceCurve(context.Background(), eval, testSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.KneeFound {
		t.Fatal("knee reported found when already saturated at MinRate")
	}
	if tr.KneeIndex != 1 {
		t.Fatalf("saturated-from-start knee index %d, want bottom index 1", tr.KneeIndex)
	}
}

func TestTracerRespectsMaxPoints(t *testing.T) {
	spec := testSpec()
	spec.Coarse = 8
	spec.MaxPoints = 10
	eval := newFakeEval(0.30)
	tr, err := TraceCurve(context.Background(), eval, spec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Simulated > spec.MaxPoints {
		t.Fatalf("simulated %d points, budget %d", tr.Simulated, spec.MaxPoints)
	}
}

func TestThroughputDivergenceCriterion(t *testing.T) {
	// A point whose drain-based flag did not trip still counts as saturated
	// when accepted throughput diverges from the offered rate by more than
	// the relative tolerance plus the half-lattice-step slack.
	s := Spec{}.Normalized() // DivergeTol 0.05, Step 0.01 → threshold 0.4*0.95 - 0.005
	r := sweep.UnitResult{Rate: 0.4, Throughput: 0.37}
	if !s.saturatedAt(r) {
		t.Fatal("diverged throughput not flagged saturated")
	}
	r.Throughput = 0.4
	if s.saturatedAt(r) {
		t.Fatal("tracking throughput flagged saturated")
	}
	// Divergence inside the half-step slack is sampling noise, not a knee.
	r.Throughput = 0.4*(1-s.DivergeTol) - 0.004
	if s.saturatedAt(r) {
		t.Fatal("sub-lattice-resolution divergence flagged saturated")
	}
}

func TestSpecNormalizeValidateID(t *testing.T) {
	s := Spec{Base: sweep.UnitConfig{Topo: "fbfly", VCsPerClass: 2, Seed: 42, Rate: 0.33}}
	n := s.Normalized()
	if n.Base.Rate != 0 {
		t.Fatalf("normalization kept base rate %g; the tracer owns the rate axis", n.Base.Rate)
	}
	if n.Step != experiments.DefaultLatticeStep {
		t.Fatalf("default step %g, want %g", n.Step, experiments.DefaultLatticeStep)
	}
	// The default MaxRate is the top of the paper grid for the design point.
	pt, _ := experiments.PointByName("fbfly", 2)
	grid := experiments.InjectionRates(pt)
	if want := n.Lattice().Snap(grid[len(grid)-1]); n.MaxRate != want {
		t.Fatalf("default max rate %g, want paper-grid top %g", n.MaxRate, want)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.ID() != s.ID() {
		t.Fatal("normalization changed the spec ID")
	}
	other := Spec{Base: sweep.UnitConfig{Topo: "mesh"}}
	if other.ID() == s.ID() {
		t.Fatal("distinct specs share an ID")
	}
	if n2 := n.Normalized(); n2.ID() != n.ID() {
		t.Fatal("normalization not idempotent")
	}

	bad := Spec{Base: sweep.UnitConfig{Topo: "mesh"}, Step: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative step validated")
	}
	bad = Spec{Base: sweep.UnitConfig{Topo: "mesh"}, MinRate: 0.4, MaxRate: 0.2}
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted range validated")
	}
	bad = Spec{Base: sweep.UnitConfig{Topo: "mesh", Process: "trace"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("trace-process base validated (batch-only)")
	}
}

func TestCanonicalRatesMatchBatchSpelling(t *testing.T) {
	// A tracer point's unit key must equal the key of the same unit spelled
	// by a batch client using the shared lattice — the property that makes
	// tracer points hit the sweep cache across processes.
	spec := testSpec().Normalized()
	lat := spec.Lattice()
	for _, i := range []int{1, 7, 23, 45} {
		u := spec.unitAt(i)
		batch := sweep.UnitConfig{Topo: "mesh", Seed: 42, Rate: lat.Rate(i)}.Normalized()
		if u.Key() != batch.Key() {
			t.Fatalf("index %d: tracer key %s != batch key %s", i, u.Key(), batch.Key())
		}
	}
}
