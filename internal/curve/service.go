package curve

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"

	"repro/internal/sweep"
)

// Service is the batch/defer face of curve tracing, mirroring the Pareto
// job API: clients POST a Spec, get back a content-addressed job ID, and
// poll. Submission is idempotent — the job ID is the spec's hash, so
// resubmitting a running or finished trace attaches to it instead of
// starting a duplicate. Jobs run on a background context (they outlive the
// submitting connection), and every sampled point goes through the wrapped
// evaluator — normally the sweep server — so concurrent traces, searches
// and /sweep requests coalesce per point and share all cache tiers.
type Service struct {
	eval    Evaluator
	workers int

	mu   sync.Mutex
	jobs map[string]*job
}

type job struct {
	id     string
	spec   Spec
	cancel context.CancelFunc

	mu        sync.Mutex
	status    string // "running", "done", "error", "canceled"
	simulated int
	result    *Trace
	err       string
}

// JobStatus is the poll-response body (and the submit response, which
// reports the same view at submission time).
type JobStatus struct {
	Job    string `json:"job"`
	Status string `json:"status"`
	Spec   Spec   `json:"spec"`
	// Simulated reports live progress (points sampled so far).
	Simulated int `json:"simulated"`
	// Result is present once Status is "done"; Error once it is "error".
	Result *Trace `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// NewService wraps an evaluator in the trace-job API. The per-trace fan-out
// defaults to GOMAXPROCS; the evaluator's own pool still bounds true
// simulation parallelism.
func NewService(eval Evaluator) *Service {
	return &Service{eval: eval, workers: runtime.GOMAXPROCS(0), jobs: map[string]*job{}}
}

// Submit starts (or attaches to) the trace for spec and returns its job ID.
func (s *Service) Submit(spec Spec) (string, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return "", err
	}
	id := spec.ID()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; ok {
		return id, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{id: id, spec: spec, cancel: cancel, status: "running"}
	s.jobs[id] = j
	go s.run(ctx, j)
	return id, nil
}

func (s *Service) run(ctx context.Context, j *job) {
	res, err := TraceCurve(ctx, s.eval, j.spec, Options{
		Workers: s.workers,
		Progress: func(simulated int) {
			j.mu.Lock()
			if simulated > j.simulated {
				j.simulated = simulated
			}
			j.mu.Unlock()
		},
	})
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case ctx.Err() != nil:
		j.status = "canceled"
		j.err = ctx.Err().Error()
	case err != nil:
		j.status = "error"
		j.err = err.Error()
	default:
		j.status = "done"
		j.result = &res
		j.simulated = res.Simulated
	}
}

// Status returns a job's current view, or false if the ID is unknown.
func (s *Service) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		Job: j.id, Status: j.status, Spec: j.spec,
		Simulated: j.simulated, Result: j.result, Error: j.err,
	}, true
}

// Cancel aborts a running job (its in-flight simulations stop at the next
// cooperative check). Finished jobs are unaffected.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		j.cancel()
	}
	return ok
}

// Handler serves the trace-job API on one route:
//
//	POST   /curve          {spec JSON}  → submit (idempotent), returns JobStatus
//	GET    /curve?job=<id>              → poll, returns JobStatus
//	DELETE /curve?job=<id>              → cancel
func (s *Service) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.Method {
		case http.MethodPost:
			var spec Spec
			dec := json.NewDecoder(r.Body)
			dec.DisallowUnknownFields()
			if err := dec.Decode(&spec); err != nil {
				http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
				return
			}
			id, err := s.Submit(spec)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			st, _ := s.Status(id)
			writeJSON(w, http.StatusAccepted, st)
		case http.MethodGet:
			st, ok := s.Status(r.URL.Query().Get("job"))
			if !ok {
				http.Error(w, "unknown job", http.StatusNotFound)
				return
			}
			writeJSON(w, http.StatusOK, st)
		case http.MethodDelete:
			if !s.Cancel(r.URL.Query().Get("job")) {
				http.Error(w, "unknown job", http.StatusNotFound)
				return
			}
			writeJSON(w, http.StatusOK, map[string]bool{"canceled": true})
		default:
			http.Error(w, "POST, GET or DELETE", http.StatusMethodNotAllowed)
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// compile-time check: the sweep server satisfies Evaluator.
var _ Evaluator = (*sweep.Server)(nil)
