package routing

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/xrand"
)

type fakeQueues map[[2]int]int

func (f fakeQueues) Occupancy(r, p int) int { return f[[2]int{r, p}] }

func TestDORDeliversEveryPair(t *testing.T) {
	topo := topology.Mesh(8)
	f := NewDOR(topo)
	if f.Name() != "dor" || f.ResourceClasses() != 1 {
		t.Fatal("bad DOR metadata")
	}
	for src := 0; src < 64; src++ {
		for dst := 0; dst < 64; dst++ {
			pr := PacketRoute{DestTerminal: dst}
			f.Inject(src, &pr, nil, nil)
			r := src
			hops := 0
			for {
				port, class := f.NextHop(r, &pr)
				if class != 0 {
					t.Fatalf("DOR produced resource class %d", class)
				}
				if topo.IsTerminalPort(port) {
					if r != dst { // mesh: terminal t at router t
						t.Fatalf("src %d dst %d: ejected at router %d", src, dst, r)
					}
					break
				}
				ch := topo.Channels[topo.OutChannel[r][port]]
				r = ch.Dst
				hops++
				if hops > 14 {
					t.Fatalf("src %d dst %d: path too long", src, dst)
				}
			}
			// DOR path length is exactly the Manhattan distance.
			sx, sy := topology.MeshCoord(8, src)
			dx, dy := topology.MeshCoord(8, dst)
			want := abs(sx-dx) + abs(sy-dy)
			if hops != want {
				t.Fatalf("src %d dst %d: %d hops, want %d", src, dst, hops, want)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDORXBeforeY(t *testing.T) {
	topo := topology.Mesh(8)
	f := NewDOR(topo)
	// From (0,0) to (3,3): first hops must all be +x.
	pr := PacketRoute{DestTerminal: 3*8 + 3}
	f.Inject(0, &pr, nil, nil)
	port, _ := f.NextHop(0, &pr)
	if port != topology.MeshPortXPlus {
		t.Fatalf("first hop port %d, want +x", port)
	}
	// From (3,0) to (3,3): y hops.
	pr = PacketRoute{DestTerminal: 3*8 + 3}
	port, _ = f.NextHop(3, &pr)
	if port != topology.MeshPortYPlus {
		t.Fatalf("aligned-x hop port %d, want +y", port)
	}
}

func TestDORRequiresMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDOR(topology.FlattenedButterfly(4, 4))
}

func TestUGALMinimalDelivery(t *testing.T) {
	topo := topology.FlattenedButterfly(4, 4)
	f := NewUGAL(topo, 1)
	if f.Name() != "ugal" || f.ResourceClasses() != 2 {
		t.Fatal("bad UGAL metadata")
	}
	// With nil estimator, routing is minimal (phase 1 throughout).
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 64; dst++ {
			pr := PacketRoute{DestTerminal: dst}
			f.Inject(src, &pr, nil, nil)
			if pr.Phase != 1 || pr.Intermediate != -1 {
				t.Fatal("nil estimator should give minimal route")
			}
			r := src
			hops := 0
			for {
				port, class := f.NextHop(r, &pr)
				if class != 1 {
					t.Fatalf("minimal route should use class 1, got %d", class)
				}
				if topo.IsTerminalPort(port) {
					wantRouter, wantPort := topo.TerminalRouter(dst)
					if r != wantRouter || port != wantPort {
						t.Fatalf("src %d dst %d: ejected at (%d,%d), want (%d,%d)",
							src, dst, r, port, wantRouter, wantPort)
					}
					break
				}
				r = topo.Channels[topo.OutChannel[r][port]].Dst
				hops++
				if hops > 2 {
					t.Fatalf("src %d dst %d: minimal path exceeded 2 hops", src, dst)
				}
			}
		}
	}
}

func TestUGALValiantDelivery(t *testing.T) {
	topo := topology.FlattenedButterfly(4, 4)
	f := NewUGAL(topo, 0)
	rng := xrand.New(5)
	// Congest every minimal first hop so Valiant paths are taken.
	q := fakeQueues{}
	tookValiant := 0
	for trial := 0; trial < 2000; trial++ {
		src := rng.Intn(16)
		dst := rng.Intn(64)
		pr := PacketRoute{DestTerminal: dst}
		destRouter, _ := topo.TerminalRouter(dst)
		if destRouter == src {
			continue
		}
		// Make the minimal port look congested.
		for p := 4; p < 10; p++ {
			q[[2]int{src, p}] = 0
		}
		u := f.(*ugal)
		q[[2]int{src, u.firstHopPort(src, destRouter)}] = 50
		f.Inject(src, &pr, q, rng)
		if pr.Intermediate < 0 {
			continue // the random intermediate may have been degenerate
		}
		tookValiant++
		if pr.Phase != 0 {
			t.Fatal("Valiant route must start in phase 0")
		}
		r := src
		hops := 0
		classes := []int{}
		sawIntermediate := false
		for {
			port, class := f.NextHop(r, &pr)
			classes = append(classes, class)
			if r == pr.Intermediate {
				sawIntermediate = true
			}
			if topo.IsTerminalPort(port) {
				wantRouter, _ := topo.TerminalRouter(dst)
				if r != wantRouter {
					t.Fatalf("Valiant route ejected at wrong router")
				}
				break
			}
			r = topo.Channels[topo.OutChannel[r][port]].Dst
			hops++
			if hops > 4 {
				t.Fatal("Valiant path exceeded 4 hops")
			}
		}
		if !sawIntermediate {
			t.Fatal("Valiant route skipped its intermediate router")
		}
		// Resource classes must be monotonically non-decreasing 0 -> 1.
		for i := 1; i < len(classes); i++ {
			if classes[i] < classes[i-1] {
				t.Fatalf("resource class regressed: %v", classes)
			}
		}
		if classes[len(classes)-1] != 1 {
			t.Fatalf("final class must be 1: %v", classes)
		}
	}
	if tookValiant == 0 {
		t.Fatal("congestion never triggered Valiant routing")
	}
}

func TestUGALPrefersMinimalWhenUncongested(t *testing.T) {
	topo := topology.FlattenedButterfly(4, 4)
	f := NewUGAL(topo, 1)
	rng := xrand.New(7)
	q := fakeQueues{} // all queues empty
	for trial := 0; trial < 500; trial++ {
		pr := PacketRoute{DestTerminal: rng.Intn(64)}
		f.Inject(0, &pr, q, rng)
		if pr.Intermediate != -1 {
			t.Fatal("empty network must route minimally")
		}
	}
}

func TestUGALThresholdBias(t *testing.T) {
	topo := topology.FlattenedButterfly(4, 4)
	aggressive := NewUGAL(topo, 0)
	conservative := NewUGAL(topo, 100)
	q := fakeQueues{}
	for p := 4; p < 10; p++ {
		q[[2]int{0, p}] = 4
	}
	q[[2]int{0, 4}] = 12 // column-0 router's port toward column 1
	countVal := func(f Function, seed uint64) int {
		rng := xrand.New(seed)
		n := 0
		for trial := 0; trial < 500; trial++ {
			pr := PacketRoute{DestTerminal: 4} // router 1 (column 1), port 0
			f.Inject(0, &pr, q, rng)
			if pr.Intermediate >= 0 {
				n++
			}
		}
		return n
	}
	if a, c := countVal(aggressive, 3), countVal(conservative, 3); a <= c {
		t.Fatalf("aggressive UGAL (%d) should misroute more than conservative (%d)", a, c)
	}
}

func TestUGALRequiresFbfly(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewUGAL(topology.Mesh(4), 1)
}

func TestUGALPhase0AtDestinationPanics(t *testing.T) {
	topo := topology.FlattenedButterfly(4, 4)
	f := NewUGAL(topo, 1)
	pr := PacketRoute{DestTerminal: 0, Intermediate: 5, Phase: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for phase-0 ejection")
		}
	}()
	// Router 0 is the destination router but the packet is still in phase 0
	// heading to intermediate 0? No: intermediate 5, so target is 5; at
	// router 0 target differs, no panic. Force the bad state instead:
	pr.Intermediate = 0
	pr.Phase = 0
	// r == intermediate flips phase; craft r == destRouter with phase 0 and
	// intermediate elsewhere unreachable: r==destRouter, target==inter==r?
	// The only way firstHopPort returns -1 in phase 0 is r==intermediate,
	// which flips the phase. So the panic guard requires a corrupted state:
	badPr := PacketRoute{DestTerminal: 0, Intermediate: -1, Phase: 0}
	f.NextHop(0, &badPr)
}

func TestDatelineDeliversAllPairsShortest(t *testing.T) {
	topo := topology.Torus(5)
	f := NewTorusDateline(topo)
	if f.Name() != "dateline" || f.ResourceClasses() != 2 {
		t.Fatal("bad dateline metadata")
	}
	for src := 0; src < 25; src++ {
		for dst := 0; dst < 25; dst++ {
			pr := PacketRoute{DestTerminal: dst}
			f.Inject(src, &pr, nil, nil)
			r := src
			hops := 0
			for {
				port, class := f.NextHop(r, &pr)
				if class != 0 && class != 1 {
					t.Fatalf("bad resource class %d", class)
				}
				if topo.IsTerminalPort(port) {
					if r != dst {
						t.Fatalf("src %d dst %d: ejected at %d", src, dst, r)
					}
					break
				}
				r = topo.Channels[topo.OutChannel[r][port]].Dst
				hops++
				if hops > 10 {
					t.Fatalf("src %d dst %d: path too long", src, dst)
				}
			}
			// Shortest-direction routing: hops equal ring distances.
			sx, sy := src%5, src/5
			dx, dy := dst%5, dst/5
			want := ringDist(5, sx, dx) + ringDist(5, sy, dy)
			if hops != want {
				t.Fatalf("src %d dst %d: %d hops, want %d", src, dst, hops, want)
			}
		}
	}
}

func ringDist(k, a, b int) int {
	d := (b - a + k) % k
	if k-d < d {
		d = k - d
	}
	return d
}

func TestDatelineClassDiscipline(t *testing.T) {
	topo := topology.Torus(4)
	f := NewTorusDateline(topo)
	// Route from (3,0)=3 to (1,0)=1: +x direction (distance 2 either way,
	// tie goes positive), crossing the wrap 3->0. The wrap hop and the
	// remainder of the X ring must use class 1.
	pr := PacketRoute{DestTerminal: 1}
	f.Inject(3, &pr, nil, nil)
	port, class := f.NextHop(3, &pr)
	if port != topology.MeshPortXPlus || class != 1 {
		t.Fatalf("wrap hop: port %d class %d, want +x class 1", port, class)
	}
	port, class = f.NextHop(0, &pr)
	if port != topology.MeshPortXPlus || class != 1 {
		t.Fatalf("post-wrap hop: port %d class %d, want +x class 1", port, class)
	}
	// Non-wrapping route stays in class 0: (0,0) to (1,1).
	pr = PacketRoute{DestTerminal: 1*4 + 1}
	f.Inject(0, &pr, nil, nil)
	if _, class := f.NextHop(0, &pr); class != 0 {
		t.Fatalf("non-wrap X hop class %d, want 0", class)
	}
	if _, class := f.NextHop(1, &pr); class != 0 {
		t.Fatalf("non-wrap Y hop class %d, want 0", class)
	}
}

func TestDatelineClassResetsPerDimension(t *testing.T) {
	topo := topology.Torus(4)
	f := NewTorusDateline(topo)
	// (3,1)=7 to (1,2)=9: X path wraps (3->0->1, class 1), then the Y path
	// (1->2, no wrap) restarts in class 0.
	pr := PacketRoute{DestTerminal: 9}
	f.Inject(7, &pr, nil, nil)
	_, c1 := f.NextHop(7, &pr) // 3->0 wrap
	_, c2 := f.NextHop(4, &pr) // 0->1
	_, c3 := f.NextHop(5, &pr) // Y: 1->2, fresh dimension
	if c1 != 1 || c2 != 1 {
		t.Fatalf("X classes (%d,%d), want (1,1)", c1, c2)
	}
	if c3 != 0 {
		t.Fatalf("Y entry class %d, want 0 (dateline discipline restarts)", c3)
	}
}

func TestDatelineRequiresTorus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTorusDateline(topology.Mesh(4))
}

func TestTorusResourceSucc(t *testing.T) {
	succ := TorusResourceSucc()
	if len(succ) != 2 || len(succ[0]) != 2 || len(succ[1]) != 2 {
		t.Fatalf("TorusResourceSucc = %v", succ)
	}
}
