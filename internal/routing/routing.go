// Package routing implements the routing functions used in the paper's
// network evaluation (§3.2): dimension-order routing on the mesh and the
// UGAL load-balanced routing algorithm [18] on the flattened butterfly.
//
// Route computation is modeled the way the paper's router uses lookahead
// routing [7]: the decision for a router is available the moment a head
// flit arrives there (it was pre-computed upstream in parallel with VC
// allocation), so routing adds no pipeline stage. Consequently NextHop is
// invoked exactly once per packet per router, when the head flit reaches
// the input unit.
package routing

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// PacketRoute is the per-packet routing state carried through the network.
type PacketRoute struct {
	// DestTerminal is the destination network terminal.
	DestTerminal int
	// Intermediate is the Valiant-phase intermediate router, or -1 when
	// routing minimally.
	Intermediate int
	// Phase is the packet's current resource class: 0 while heading to the
	// intermediate router (non-minimal phase), 1 afterwards (minimal
	// phase). Networks with a single resource class always use 0.
	Phase int
}

// QueueEstimator supplies the local congestion information UGAL consults at
// injection time.
type QueueEstimator interface {
	// Occupancy estimates the number of flits queued for router r's output
	// port p (e.g. downstream credits in flight).
	Occupancy(r, p int) int
}

// Function is a routing function for a specific topology.
type Function interface {
	// Name identifies the algorithm ("dor" or "ugal").
	Name() string
	// ResourceClasses returns the number of resource classes the function
	// requires (R in the paper's V = M·R·C decomposition).
	ResourceClasses() int
	// Inject initializes pr for a packet entering the network at
	// srcRouter. UGAL uses q and rng to pick between minimal and Valiant
	// routing; q and rng may be nil for functions that ignore them.
	Inject(srcRouter int, pr *PacketRoute, q QueueEstimator, rng *xrand.Source)
	// NextHop returns the output port at router r and the resource class
	// the packet must acquire there. It may advance pr.Phase (e.g. when
	// passing the intermediate router).
	NextHop(r int, pr *PacketRoute) (outPort, resourceClass int)
}

// --- Dimension-order routing (mesh) ------------------------------------------

type dor struct {
	k    int
	topo *topology.Topology
}

// NewDOR returns X-then-Y dimension-order routing for a k×k mesh.
func NewDOR(topo *topology.Topology) Function {
	if topo.Name != "mesh" {
		panic("routing: DOR requires a mesh topology")
	}
	k := 1
	for k*k < topo.Routers {
		k++
	}
	if k*k != topo.Routers {
		panic("routing: mesh is not square")
	}
	return &dor{k: k, topo: topo}
}

func (d *dor) Name() string         { return "dor" }
func (d *dor) ResourceClasses() int { return 1 }

func (d *dor) Inject(srcRouter int, pr *PacketRoute, _ QueueEstimator, _ *xrand.Source) {
	pr.Intermediate = -1
	pr.Phase = 0
}

func (d *dor) NextHop(r int, pr *PacketRoute) (int, int) {
	destRouter, destPort := d.topo.TerminalRouter(pr.DestTerminal)
	x, y := topology.MeshCoord(d.k, r)
	dx, dy := topology.MeshCoord(d.k, destRouter)
	switch {
	case x < dx:
		return topology.MeshPortXPlus, 0
	case x > dx:
		return topology.MeshPortXMinus, 0
	case y < dy:
		return topology.MeshPortYPlus, 0
	case y > dy:
		return topology.MeshPortYMinus, 0
	default:
		return destPort, 0
	}
}

// --- UGAL (flattened butterfly) -----------------------------------------------

type ugal struct {
	k, conc   int
	topo      *topology.Topology
	threshold int
}

// NewUGAL returns UGAL routing for a k×k flattened butterfly: packets choose
// between the minimal path and a Valiant path through a random intermediate
// router at injection time, based on locally observed queue occupancies
// weighted by hop count [18]. threshold biases the decision toward minimal
// routing; 1 is a reasonable default.
func NewUGAL(topo *topology.Topology, threshold int) Function {
	if topo.Name != "fbfly" {
		panic("routing: UGAL requires a flattened butterfly topology")
	}
	k := 1
	for k*k < topo.Routers {
		k++
	}
	if k*k != topo.Routers {
		panic("routing: fbfly is not square")
	}
	return &ugal{k: k, conc: topo.Concentration, topo: topo, threshold: threshold}
}

func (u *ugal) Name() string         { return "ugal" }
func (u *ugal) ResourceClasses() int { return 2 }

// hops returns the minimal hop count between routers a and b in the
// flattened butterfly (0, 1 or 2).
func (u *ugal) hops(a, b int) int {
	ax, ay := a%u.k, a/u.k
	bx, by := b%u.k, b/u.k
	h := 0
	if ax != bx {
		h++
	}
	if ay != by {
		h++
	}
	return h
}

// firstHopPort returns the output port a packet at router r takes toward
// router target (row before column), or -1 if r == target.
func (u *ugal) firstHopPort(r, target int) int {
	rx, ry := r%u.k, r/u.k
	tx, ty := target%u.k, target/u.k
	switch {
	case rx != tx:
		return topology.FbflyRowPort(u.k, u.conc, rx, tx)
	case ry != ty:
		return topology.FbflyColPort(u.k, u.conc, ry, ty)
	default:
		return -1
	}
}

func (u *ugal) Inject(srcRouter int, pr *PacketRoute, q QueueEstimator, rng *xrand.Source) {
	destRouter, _ := u.topo.TerminalRouter(pr.DestTerminal)
	pr.Intermediate = -1
	pr.Phase = 1 // minimal packets use the second resource class throughout
	if rng == nil || q == nil {
		return
	}
	inter := rng.Intn(u.topo.Routers)
	if inter == srcRouter || inter == destRouter {
		return // degenerate Valiant path; route minimally
	}
	hMin := u.hops(srcRouter, destRouter)
	hVal := u.hops(srcRouter, inter) + u.hops(inter, destRouter)
	if hMin == 0 {
		return
	}
	qMin := q.Occupancy(srcRouter, u.firstHopPort(srcRouter, destRouter))
	qVal := q.Occupancy(srcRouter, u.firstHopPort(srcRouter, inter))
	// UGAL decision rule: take the Valiant path when its estimated delay
	// (queue × hops) undercuts the minimal path's by more than the
	// threshold.
	if qMin*hMin > qVal*hVal+u.threshold {
		pr.Intermediate = inter
		pr.Phase = 0
	}
}

func (u *ugal) NextHop(r int, pr *PacketRoute) (int, int) {
	if pr.Phase == 0 && pr.Intermediate < 0 {
		panic("routing: phase-0 packet without an intermediate router")
	}
	if pr.Phase == 0 && r == pr.Intermediate {
		pr.Phase = 1
	}
	destRouter, destPort := u.topo.TerminalRouter(pr.DestTerminal)
	target := destRouter
	if pr.Phase == 0 {
		target = pr.Intermediate
	}
	port := u.firstHopPort(r, target)
	if port < 0 {
		if pr.Phase != 1 {
			panic(fmt.Sprintf("routing: packet at destination router %d still in phase 0", r))
		}
		return destPort, 1
	}
	return port, pr.Phase
}

// --- Dateline dimension-order routing (torus) ---------------------------------

type torusDateline struct {
	k    int
	topo *topology.Topology
}

// NewTorusDateline returns shortest-direction dimension-order routing for a
// k×k torus with dateline deadlock avoidance, the §4.2 motivating example
// for resource classes: within each dimension's ring, packets travel in
// VC resource class 0 until they cross the wraparound (dateline) link and
// in class 1 afterwards; entering the next dimension starts over in class
// 0. Because dimension-order routing makes inter-dimension dependencies
// acyclic, breaking each ring's cycle at the dateline suffices for
// deadlock freedom [Dally & Seitz]. The per-hop class transitions are
// 0→{0,1} and 1→{0,1} (the reset happens at the dimension boundary), so a
// VCSpec for this function needs ResourceSucc = [][]int{{0,1},{0,1}}.
func NewTorusDateline(topo *topology.Topology) Function {
	if topo.Name != "torus" {
		panic("routing: dateline routing requires a torus topology")
	}
	k := 1
	for k*k < topo.Routers {
		k++
	}
	if k*k != topo.Routers {
		panic("routing: torus is not square")
	}
	return &torusDateline{k: k, topo: topo}
}

// TorusResourceSucc returns the resource-class successor relation dateline
// routing needs (both classes may follow either, since the class resets
// when the packet enters its second dimension).
func TorusResourceSucc() [][]int { return [][]int{{0, 1}, {0, 1}} }

func (d *torusDateline) Name() string         { return "dateline" }
func (d *torusDateline) ResourceClasses() int { return 2 }

func (d *torusDateline) Inject(srcRouter int, pr *PacketRoute, _ QueueEstimator, _ *xrand.Source) {
	pr.Intermediate = -1
	pr.Phase = 0
}

// step returns the port for one shortest-direction hop along a ring of
// size k from coordinate c to coordinate t (ties go positive), plus
// whether that hop traverses the wraparound link.
func ringStep(k, c, t, plusPort, minusPort int) (port int, wraps bool) {
	fwd := (t - c + k) % k
	bwd := (c - t + k) % k
	if fwd <= bwd {
		return plusPort, c == k-1 // +1 hop wraps when leaving coordinate k-1
	}
	return minusPort, c == 0 // -1 hop wraps when leaving coordinate 0
}

func (d *torusDateline) NextHop(r int, pr *PacketRoute) (int, int) {
	destRouter, destPort := d.topo.TerminalRouter(pr.DestTerminal)
	x, y := r%d.k, r/d.k
	dx, dy := destRouter%d.k, destRouter/d.k
	if x != dx {
		port, wraps := ringStep(d.k, x, dx, topology.MeshPortXPlus, topology.MeshPortXMinus)
		if wraps {
			pr.Phase = 1
		}
		return port, pr.Phase
	}
	if y != dy {
		// Entering the Y dimension: the dateline discipline restarts.
		if pr.Intermediate != -2 {
			pr.Intermediate = -2 // marks "Y dimension entered"
			pr.Phase = 0
		}
		port, wraps := ringStep(d.k, y, dy, topology.MeshPortYPlus, topology.MeshPortYMinus)
		if wraps {
			pr.Phase = 1
		}
		return port, pr.Phase
	}
	return destPort, pr.Phase
}
