// Package sharecache is a content-addressed build-once cache for immutable
// derived state shared across concurrently running simulations: topology
// wiring, routing functions, router class masks — anything proven read-only
// after construction. Concurrent callers asking for the same key build the
// value once and share the result (per-key singleflight), so a curve tracer
// or design-space search that launches dozens of sims of the same design
// point pays for one construction instead of one per sim.
//
// The cache stores only values that are never written after their build
// function returns; the sharing contract is audited by the mutation
// detection tests in internal/curve (trace with sharing on vs off must be
// byte-equal, and shared structures must checksum identically before and
// after concurrent runs). Mutable state — wavefront priority diagonals,
// precomputed-switch request latches, per-packet routing state — must stay
// per-sim and never enter this cache.
//
// Sharing can be disabled (SetEnabled(false)), which makes Get call the
// build function every time — the pre-sharing cold path, kept for the
// cold-vs-shared benchmarks and the equivalence tests.
package sharecache

import "sync"

// Cache is a keyed build-once store. The zero value is not usable; use New.
type Cache struct {
	mu      sync.Mutex
	enabled bool
	m       map[string]*entry
	builds  int64
	hits    int64
}

// entry is one key's slot: the sync.Once makes the first caller build while
// concurrent callers for the same key wait and share.
type entry struct {
	once sync.Once
	val  any
}

// New returns an enabled, empty cache.
func New() *Cache {
	return &Cache{enabled: true, m: map[string]*entry{}}
}

// Default is the process-wide cache the simulation constructors consult.
var Default = New()

// Get returns the value for key, building it via build exactly once per key
// while enabled. Concurrent Gets for the same key block until the first
// caller's build returns, then share its result. When the cache is disabled
// Get builds a fresh value every call and stores nothing.
func (c *Cache) Get(key string, build func() any) any {
	c.mu.Lock()
	if !c.enabled {
		c.mu.Unlock()
		return build()
	}
	e, ok := c.m[key]
	if !ok {
		e = &entry{}
		c.m[key] = e
		c.builds++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}

// Get is the typed wrapper over Cache.Get.
func Get[T any](c *Cache, key string, build func() T) T {
	return c.Get(key, func() any { return build() }).(T)
}

// SetEnabled toggles sharing. Disabling does not drop existing entries;
// re-enabling resumes serving them.
func (c *Cache) SetEnabled(on bool) {
	c.mu.Lock()
	c.enabled = on
	c.mu.Unlock()
}

// Enabled reports whether Get currently shares.
func (c *Cache) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// Reset drops every entry and zeroes the counters; the enabled flag is
// unchanged. Benchmarks call this between cold and warm passes.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.m = map[string]*entry{}
	c.builds, c.hits = 0, 0
	c.mu.Unlock()
}

// Stats is a point-in-time accounting snapshot.
type Stats struct {
	Enabled bool  `json:"enabled"`
	Entries int   `json:"entries"`
	Builds  int64 `json:"builds"`
	Hits    int64 `json:"hits"`
}

// Stats reports the cache's current accounting.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Enabled: c.enabled, Entries: len(c.m), Builds: c.builds, Hits: c.hits}
}
