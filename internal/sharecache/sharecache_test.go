package sharecache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBuildOncePerKey(t *testing.T) {
	c := New()
	var builds atomic.Int64
	var wg sync.WaitGroup
	const goroutines = 32
	vals := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals[g] = Get(c, "k", func() int {
				builds.Add(1)
				return 42
			})
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("32 concurrent Gets ran %d builds, want 1", got)
	}
	for g, v := range vals {
		if v != 42 {
			t.Fatalf("goroutine %d got %d, want the shared 42", g, v)
		}
	}
	st := c.Stats()
	if st.Entries != 1 || st.Builds != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats %+v, want 1 entry, 1 build, %d hits", st, goroutines-1)
	}
}

func TestDistinctKeysDistinctValues(t *testing.T) {
	c := New()
	a := Get(c, "a", func() *int { v := 1; return &v })
	b := Get(c, "b", func() *int { v := 2; return &v })
	if a == b || *a != 1 || *b != 2 {
		t.Fatalf("keys collided: a=%v b=%v", *a, *b)
	}
	if again := Get(c, "a", func() *int { t.Fatal("rebuilt a cached key"); return nil }); again != a {
		t.Fatal("second Get returned a different pointer")
	}
}

func TestDisabledBuildsFresh(t *testing.T) {
	c := New()
	c.SetEnabled(false)
	var builds int
	for i := 0; i < 3; i++ {
		Get(c, "k", func() int { builds++; return builds })
	}
	if builds != 3 {
		t.Fatalf("disabled cache ran %d builds, want 3 (one per Get)", builds)
	}
	if st := c.Stats(); st.Entries != 0 || st.Builds != 0 {
		t.Fatalf("disabled cache stored state: %+v", st)
	}
	// Re-enabling resumes sharing.
	c.SetEnabled(true)
	first := Get(c, "k", func() int { return 7 })
	second := Get(c, "k", func() int { t.Fatal("rebuilt after re-enable"); return 0 })
	if first != 7 || second != 7 {
		t.Fatalf("re-enabled cache returned %d/%d, want 7/7", first, second)
	}
}

func TestReset(t *testing.T) {
	c := New()
	Get(c, "k", func() int { return 1 })
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Builds != 0 || st.Hits != 0 {
		t.Fatalf("reset left %+v", st)
	}
	if v := Get(c, "k", func() int { return 2 }); v != 2 {
		t.Fatalf("post-reset Get returned %d, want fresh 2", v)
	}
}
