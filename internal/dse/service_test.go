package dse

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

// tinySpec is a real-simulation-sized slice of the design space: 8 units at
// a scale where a full search runs in well under a second.
func tinySpec() Spec {
	return Spec{
		Topos:     []string{"mesh"},
		VCs:       []int{1, 2},
		VAArchs:   []string{"sep_if", "sep_of"},
		VAArbs:    []string{"rr"},
		VASparse:  []bool{false},
		SAArchs:   []string{"sep_if"},
		SAArbs:    []string{"rr"},
		SpecModes: []string{"nonspec", "spec_req"},
		Warmup:    100, Measure: 200, Drain: 1000,
	}
}

func newEvalServer(t *testing.T, workers int, cacheDir string) *sweep.Server {
	t.Helper()
	srv, err := sweep.NewServer(sweep.Options{
		Exec:     sweep.Exec{Leap: true},
		Workers:  workers,
		CacheDir: cacheDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestRealSimFrontierInvariance is the satellite determinism guarantee: the
// frontier over real simulations is byte-identical for every worker count
// and for memory-only vs disk-backed evaluation (cold and restart-warm).
func TestRealSimFrontierInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	spec := tinySpec()
	cacheDir := t.TempDir()

	var golden string
	runs := []struct {
		name     string
		workers  int
		cacheDir string
	}{
		{"memory_w1", 1, ""},
		{"memory_w4", 4, ""},
		{"disk_cold_w4", 4, cacheDir},
		// A second server on the populated directory: every simulation the
		// search asks for is answered from disk.
		{"disk_warm_w1", 1, cacheDir},
	}
	for _, run := range runs {
		srv := newEvalServer(t, run.workers, run.cacheDir)
		res, err := Search(context.Background(), srv, spec, SearchOptions{Workers: run.workers})
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		j := frontierJSON(t, res)
		if golden == "" {
			golden = j
		} else if j != golden {
			t.Fatalf("%s frontier diverged:\n%s\nvs golden\n%s", run.name, j, golden)
		}
		if run.name == "disk_warm_w1" {
			if sims := srv.SimRuns(); sims != 0 {
				t.Fatalf("warm run re-simulated %d units", sims)
			}
			if st := srv.Disk().Stats(); st.Hits == 0 {
				t.Fatalf("warm run hit no disk entries: %+v", st)
			}
		}
	}
	if len(golden) == 0 || golden == "null" {
		t.Fatalf("degenerate golden frontier: %q", golden)
	}
}

func postSpec(t *testing.T, ts *httptest.Server, spec Spec) JobStatus {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := ts.Client().Post(ts.URL+"/pareto", "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func pollJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/pareto?job=" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running at deadline: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceJobLifecycle drives submit → poll → done over HTTP with a real
// in-process sweep server, and pins idempotent resubmission.
func TestServiceJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	srv := newEvalServer(t, 2, "")
	ts := httptest.NewServer(http.StripPrefix("", muxFor(NewService(srv))))
	defer ts.Close()

	spec := tinySpec()
	sub := postSpec(t, ts, spec)
	if sub.Job == "" || sub.Job != spec.ID() {
		t.Fatalf("job ID %q, want content hash %q", sub.Job, spec.ID())
	}

	done := pollJob(t, ts, sub.Job)
	if done.Status != "done" || done.Result == nil {
		t.Fatalf("job finished as %q (err %q)", done.Status, done.Error)
	}
	if done.Result.Simulated+done.Result.Pruned != done.Result.Feasible || len(done.Result.Frontier) == 0 {
		t.Fatalf("degenerate result: %+v", done.Result)
	}

	// Resubmitting the identical spec attaches to the finished job.
	again := postSpec(t, ts, spec)
	if again.Job != sub.Job || again.Status != "done" {
		t.Fatalf("resubmit: job %q status %q, want same finished job", again.Job, again.Status)
	}

	// Unknown job IDs are 404s.
	resp, err := ts.Client().Get(ts.URL + "/pareto?job=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
}

// blockingEval parks every evaluation until its context is canceled, so a
// cancel test can observe the "running" state deterministically.
type blockingEval struct{ started chan struct{} }

func (b *blockingEval) EvalUnit(ctx context.Context, u sweep.UnitConfig) (sweep.UnitResult, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return sweep.UnitResult{}, ctx.Err()
}

// TestServiceCancel pins the DELETE path: canceling a running job stops its
// evaluations and the job reports "canceled".
func TestServiceCancel(t *testing.T) {
	eval := &blockingEval{started: make(chan struct{}, 1)}
	ts := httptest.NewServer(muxFor(NewService(eval)))
	defer ts.Close()

	sub := postSpec(t, ts, tinySpec())
	<-eval.started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/pareto?job="+sub.Job, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	final := pollJob(t, ts, sub.Job)
	if final.Status != "canceled" {
		t.Fatalf("post-cancel status %q, want canceled", final.Status)
	}
}

// muxFor mounts the service the way cmd/sweepd does.
func muxFor(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/pareto", s.Handler())
	return mux
}
