// Package dse is the design-space exploration layer over the sweep
// service: it enumerates the full allocator design space of Becker & Dally
// (SC '09) — VC-allocator architecture × arbiter × sparse mode crossed with
// switch-allocator architecture × arbiter × speculation scheme, per VC
// organization and topology — screens every point with the analytical cost
// model, and finds the Pareto frontier over hardware cost (delay, area,
// power) and network performance (accepted throughput at a fixed offered
// load) while simulating as few points as possible.
//
// The three stacked perf mechanisms (DESIGN.md §11):
//
//  1. Screen-then-simulate with dominance pruning: cost estimates are
//     µs-cheap, simulations are ~10⁵× more expensive, so every cost vector
//     is computed up front and simulation proceeds in an order chosen to
//     establish prunes early. A candidate is skipped outright when an
//     already-simulated config strictly cost-dominates it AND achieved the
//     performance cap — that pruner dominates the candidate on every axis
//     the frontier is defined over, so the skip provably cannot change the
//     frontier (see search.go).
//  2. Canonical-hash dedup: distinct design-space spellings that collapse
//     to one sweep.UnitConfig key (e.g. every va_arb of a wavefront VC
//     allocator) are simulated once; raw-vs-distinct counts are reported.
//  3. The sweep cache: every simulation goes through the server's memory +
//     disk stores and in-flight coalescing, so repeated and resumed
//     searches are warm across process restarts.
package dse

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/traffic"
)

// Spec bounds a design-space search. Zero/empty fields take the full-space
// defaults, so the zero Spec is the paper's whole allocator zoo; tests and
// CI smokes narrow the axes and shrink the phases.
type Spec struct {
	// Topos/VCs select design points (default both topologies × {1,2,4}).
	Topos []string `json:"topos,omitempty"`
	VCs   []int    `json:"vcs,omitempty"`
	// VAArchs/VAArbs/VASparse span the VC-allocator axes (defaults
	// sep_if,sep_of,wf × rr,m × dense,sparse).
	VAArchs  []string `json:"va_archs,omitempty"`
	VAArbs   []string `json:"va_arbs,omitempty"`
	VASparse []bool   `json:"va_sparse,omitempty"`
	// SAArchs/SAArbs/SpecModes span the switch-allocator axes (defaults
	// sep_if,sep_of,wf × rr,m × nonspec,spec_req,spec_gnt).
	SAArchs   []string `json:"sa_archs,omitempty"`
	SAArbs    []string `json:"sa_arbs,omitempty"`
	SpecModes []string `json:"spec_modes,omitempty"`
	// Patterns/Processes span the injection-workload axes (defaults are the
	// paper baseline singletons: uniform × bernoulli, so the workload
	// dimension is opt-in). Trace replay is batch-only and rejected here.
	Patterns  []string `json:"patterns,omitempty"`
	Processes []string `json:"processes,omitempty"`
	// BurstLen/Duty/Hotspots/HotspotFraction parameterize the mmp process
	// and hotspot pattern when those axes include them (zero = the
	// traffic.Workload defaults). They are fixed per search, not axes.
	BurstLen        float64 `json:"burst_len,omitempty"`
	Duty            float64 `json:"duty,omitempty"`
	Hotspots        []int   `json:"hotspots,omitempty"`
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`
	// MeshRate/FbflyRate are the offered loads performance is evaluated at
	// (defaults 0.44 / 0.60 flits/cycle/terminal — past the weakest
	// configurations' saturation knees, so the space splits into saturated
	// and unsaturated regions and the throughput axis discriminates).
	MeshRate  float64 `json:"mesh_rate,omitempty"`
	FbflyRate float64 `json:"fbfly_rate,omitempty"`
	// Warmup/Measure/Drain/Seed scale the per-point simulation (defaults
	// 500/1000/4000 cycles, seed 42 — the quick batch scale).
	Warmup  int    `json:"warmup,omitempty"`
	Measure int    `json:"measure,omitempty"`
	Drain   int    `json:"drain,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// NoPrune disables dominance pruning (every feasible distinct point is
	// simulated). The frontier must be byte-identical either way; the
	// golden test pins that.
	NoPrune bool `json:"no_prune,omitempty"`
}

// Normalized fills every defaultable zero field.
func (s Spec) Normalized() Spec {
	if len(s.Topos) == 0 {
		s.Topos = []string{"mesh", "fbfly"}
	}
	if len(s.VCs) == 0 {
		s.VCs = []int{1, 2, 4}
	}
	archDefaults := []string{alloc.SepIF.String(), alloc.SepOF.String(), alloc.Wavefront.String()}
	arbDefaults := []string{arbiter.RoundRobin.String(), arbiter.Matrix.String()}
	if len(s.VAArchs) == 0 {
		s.VAArchs = archDefaults
	}
	if len(s.VAArbs) == 0 {
		s.VAArbs = arbDefaults
	}
	if len(s.VASparse) == 0 {
		s.VASparse = []bool{false, true}
	}
	if len(s.SAArchs) == 0 {
		s.SAArchs = archDefaults
	}
	if len(s.SAArbs) == 0 {
		s.SAArbs = arbDefaults
	}
	if len(s.SpecModes) == 0 {
		s.SpecModes = []string{core.SpecNone.String(), core.SpecReq.String(), core.SpecGnt.String()}
	}
	if len(s.Patterns) == 0 {
		s.Patterns = []string{"uniform"}
	}
	if len(s.Processes) == 0 {
		s.Processes = []string{"bernoulli"}
	}
	if s.MeshRate == 0 {
		s.MeshRate = 0.44
	}
	if s.FbflyRate == 0 {
		s.FbflyRate = 0.60
	}
	if s.Warmup == 0 {
		s.Warmup = 500
	}
	if s.Measure == 0 {
		s.Measure = 1000
	}
	if s.Drain == 0 {
		s.Drain = 4000
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// RateFor returns the evaluation load for a topology.
func (s Spec) RateFor(topo string) float64 {
	if topo == "fbfly" {
		return s.FbflyRate
	}
	return s.MeshRate
}

// Validate checks every axis value against the design-point and allocator
// vocabularies.
func (s Spec) Validate() error {
	s = s.Normalized()
	for _, topo := range s.Topos {
		for _, v := range s.VCs {
			if _, err := experiments.PointByName(topo, v); err != nil {
				return err
			}
		}
		if r := s.RateFor(topo); r <= 0 || r > 1 {
			return fmt.Errorf("dse: %s rate %g outside (0, 1]", topo, r)
		}
	}
	for _, a := range append(append([]string{}, s.VAArchs...), s.SAArchs...) {
		if _, err := sweep.ParseArch(a); err != nil {
			return err
		}
	}
	for _, a := range append(append([]string{}, s.VAArbs...), s.SAArbs...) {
		if _, err := sweep.ParseArb(a); err != nil {
			return err
		}
	}
	for _, m := range s.SpecModes {
		if _, err := sweep.ParseSpecMode(m); err != nil {
			return err
		}
	}
	// Workload axes validate over 64 terminals (both paper networks) at
	// every evaluation rate; trace replay is batch-only (sweep.Validate
	// rejects it too, but failing here names the axis).
	for _, proc := range s.Processes {
		if proc == "trace" {
			return fmt.Errorf("dse: process %q is batch-only (the search cannot carry trace bytes)", proc)
		}
		for _, pat := range s.Patterns {
			for _, topo := range s.Topos {
				w := traffic.Workload{
					Process: proc, Pattern: pat, Rate: s.RateFor(topo),
					BurstLen: s.BurstLen, Duty: s.Duty,
					Hotspots: s.Hotspots, HotspotFraction: s.HotspotFraction,
				}
				if err := w.Validate(64); err != nil {
					return err
				}
			}
		}
	}
	if s.Warmup < 0 || s.Measure < 1 || s.Drain < 0 {
		return fmt.Errorf("dse: bad phase lengths warmup=%d measure=%d drain=%d", s.Warmup, s.Measure, s.Drain)
	}
	return nil
}

// ID returns the search's content address: the hex SHA-256 of the
// normalized spec's JSON. Identical searches get identical job IDs, which
// makes job submission idempotent.
func (s Spec) ID() string {
	b, err := json.Marshal(s.Normalized())
	if err != nil {
		panic(err) // Spec is plain data; Marshal cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Candidate is one distinct design point: a simulation unit plus its
// analytical cost vector.
type Candidate struct {
	// Unit is the normalized simulation unit; Key its content address.
	Unit sweep.UnitConfig `json:"unit"`
	Key  string           `json:"key"`
	// Cost is the router-level allocator cost (VC allocator and switch
	// allocator combined; costmodel.Combine).
	Cost costmodel.Estimate `json:"cost"`
}

// costDominates reports whether a's cost vector weakly dominates b's with
// at least one strict improvement (all of delay/area/power ≤, one <).
func costDominates(a, b costmodel.Estimate) bool {
	if a.DelayNS > b.DelayNS || a.AreaUM2 > b.AreaUM2 || a.PowerMW > b.PowerMW {
		return false
	}
	return a.DelayNS < b.DelayNS || a.AreaUM2 < b.AreaUM2 || a.PowerMW < b.PowerMW
}

// Space is the enumerated, screened design space.
type Space struct {
	// Feasible holds the distinct, synthesizable candidates in enumeration
	// order (deterministic: topology slowest, then VCs, VA axes, SA axes,
	// spec mode, traffic pattern, arrival process fastest).
	Feasible []Candidate
	// Enumerated counts raw cross-product points; Distinct counts unique
	// content keys after canonical-hash dedup; Infeasible counts distinct
	// points the cost model refuses to synthesize (complexity budget).
	Enumerated int
	Distinct   int
	Infeasible int
}

// Enumerate expands the spec's cross product, dedups by content key, and
// screens every distinct point through the cost model.
func Enumerate(spec Spec) (Space, error) {
	spec = spec.Normalized()
	if err := spec.Validate(); err != nil {
		return Space{}, err
	}
	tech := costmodel.Default45nm()
	var sp Space
	seen := map[string]bool{}
	for _, topo := range spec.Topos {
		for _, vcs := range spec.VCs {
			pt, err := experiments.PointByName(topo, vcs)
			if err != nil {
				return Space{}, err
			}
			for _, vaArch := range spec.VAArchs {
				for _, vaArb := range spec.VAArbs {
					for _, sparse := range spec.VASparse {
						for _, saArch := range spec.SAArchs {
							for _, saArb := range spec.SAArbs {
								for _, mode := range spec.SpecModes {
									for _, pat := range spec.Patterns {
										for _, proc := range spec.Processes {
											sp.Enumerated++
											u := sweep.UnitConfig{
												Topo: topo, VCsPerClass: vcs,
												VAArch: vaArch, VAArb: vaArb, VASparse: sparse,
												SAArch: saArch, SAArb: saArb, SpecMode: mode,
												Pattern: pat, Process: proc,
												BurstLen: spec.BurstLen, Duty: spec.Duty,
												Hotspots: spec.Hotspots, HotspotFraction: spec.HotspotFraction,
												Rate:   spec.RateFor(topo),
												Warmup: spec.Warmup, Measure: spec.Measure, Drain: spec.Drain,
												Seed: spec.Seed,
											}.Normalized()
											key := u.Key()
											if seen[key] {
												continue
											}
											seen[key] = true
											sp.Distinct++
											cost, err := candidateCost(tech, pt, u)
											if err != nil {
												return Space{}, err
											}
											if !cost.Synthesized {
												sp.Infeasible++
												continue
											}
											sp.Feasible = append(sp.Feasible, Candidate{Unit: u, Key: key, Cost: cost})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return sp, nil
}

// candidateCost estimates the router-level allocator cost of one unit: the
// VC-allocator and switch-allocator estimates combined.
func candidateCost(tech costmodel.Tech, pt experiments.Point, u sweep.UnitConfig) (costmodel.Estimate, error) {
	vaArch, err := sweep.ParseArch(u.VAArch)
	if err != nil {
		return costmodel.Estimate{}, err
	}
	vaArb, err := sweep.ParseArb(u.VAArb)
	if err != nil {
		return costmodel.Estimate{}, err
	}
	saArch, err := sweep.ParseArch(u.SAArch)
	if err != nil {
		return costmodel.Estimate{}, err
	}
	saArb, err := sweep.ParseArb(u.SAArb)
	if err != nil {
		return costmodel.Estimate{}, err
	}
	mode, err := sweep.ParseSpecMode(u.SpecMode)
	if err != nil {
		return costmodel.Estimate{}, err
	}
	va := costmodel.VCAllocCost(tech, core.VCAllocConfig{
		Ports: pt.Ports, Spec: pt.Spec, Arch: vaArch, ArbKind: vaArb, Sparse: u.VASparse,
	})
	sa := costmodel.SwitchAllocCost(tech, core.SwitchAllocConfig{
		Ports: pt.Ports, VCs: pt.Spec.V(), Arch: saArch, ArbKind: saArb, SpecMode: mode,
	})
	return costmodel.Combine(va, sa), nil
}

// evalGroup is the comparability class of a design point: dominance
// relations (pruning and the frontier) are only meaningful between points
// measured under the same evaluation condition — topology, injection
// workload, and offered load. Grouping by topology alone was sound when
// the workload was a fixed uniform/bernoulli singleton; with workload axes
// a point under benign traffic must never prune or dominate one under
// bursty or hotspot traffic. The string leads with the topology so sorting
// by group keeps per-topology blocks contiguous.
func evalGroup(u sweep.UnitConfig) string {
	hexf := func(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }
	hs := make([]string, len(u.Hotspots))
	for i, h := range u.Hotspots {
		hs[i] = strconv.Itoa(h)
	}
	return strings.Join([]string{
		u.Topo, u.Pattern, u.Process,
		hexf(u.BurstLen), hexf(u.Duty),
		strings.Join(hs, ","), hexf(u.HotspotFraction),
		hexf(u.Rate),
	}, "|")
}

// searchOrder returns the feasible candidates sorted so that points likely
// to establish prunes come first: descending count of same-evaluation-group
// candidates they strictly cost-dominate, ties broken by content key. The
// order affects only how much gets pruned, never the frontier.
func searchOrder(feasible []Candidate) []Candidate {
	groups := make([]string, len(feasible))
	for i := range feasible {
		groups[i] = evalGroup(feasible[i].Unit)
	}
	domCount := make([]int, len(feasible))
	for i := range feasible {
		for j := range feasible {
			if i != j &&
				groups[i] == groups[j] &&
				costDominates(feasible[i].Cost, feasible[j].Cost) {
				domCount[i]++
			}
		}
	}
	idx := make([]int, len(feasible))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if domCount[idx[a]] != domCount[idx[b]] {
			return domCount[idx[a]] > domCount[idx[b]]
		}
		return feasible[idx[a]].Key < feasible[idx[b]].Key
	})
	ordered := make([]Candidate, len(feasible))
	for i, j := range idx {
		ordered[i] = feasible[j]
	}
	return ordered
}
