package dse

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/traffic"
)

// Evaluator resolves one simulation unit; *sweep.Server satisfies it, so a
// search shares the server's memory/disk caches, in-flight coalescing and
// worker pool with live HTTP traffic.
type Evaluator interface {
	EvalUnit(ctx context.Context, u sweep.UnitConfig) (sweep.UnitResult, error)
}

// SearchOptions tunes a search's execution, never its answer.
type SearchOptions struct {
	// Workers bounds the search's own simulation fan-out per round
	// (default 1; the evaluator's pool bounds true parallelism below it).
	// The frontier is byte-identical for every worker count.
	Workers int
	// Progress, when non-nil, is called after every simulation round with
	// cumulative counts.
	Progress func(simulated, pruned, feasible int)
}

// FrontierPoint is one Pareto-optimal design point.
type FrontierPoint struct {
	// Key/Unit identify the design point (content-addressed).
	Key  string           `json:"key"`
	Unit sweep.UnitConfig `json:"unit"`
	// Label is a compact human-readable spelling of the point.
	Label string `json:"label"`
	// DelayNS/AreaUM2/PowerMW/GateEquivalents are the cost axes
	// (router-level allocator estimate).
	DelayNS         float64 `json:"delay_ns"`
	AreaUM2         float64 `json:"area_um2"`
	PowerMW         float64 `json:"power_mw"`
	GateEquivalents float64 `json:"gate_equivalents"`
	// Perf is the performance axis: accepted throughput at the evaluation
	// load, capped at the offered load (flits/cycle/terminal).
	Perf float64 `json:"perf"`
	// Latency/Throughput/Saturated report the underlying sim measurement.
	Latency    float64 `json:"latency"`
	Throughput float64 `json:"throughput"`
	Saturated  bool    `json:"saturated"`
}

// Result is the outcome of one design-space search.
type Result struct {
	SchemaVersion int  `json:"schema_version"`
	Spec          Spec `json:"spec"`
	// Enumerated raw points collapse to Distinct content keys; Infeasible
	// of those fail the synthesis budget; the remaining Feasible points
	// split into Simulated and Pruned (skipped with a dominance proof).
	Enumerated int `json:"enumerated"`
	Distinct   int `json:"distinct"`
	Infeasible int `json:"infeasible"`
	Feasible   int `json:"feasible"`
	Simulated  int `json:"simulated"`
	Pruned     int `json:"pruned"`
	// Frontier is the per-evaluation-group Pareto-optimal set over (delay,
	// area, power, −perf) — points compete only within one (topology,
	// workload, rate) condition — in canonical order: evaluation group
	// (topology first), then delay, area, power, key.
	Frontier []FrontierPoint `json:"frontier"`
}

// perfOf is the performance axis: sustained accepted throughput at the
// evaluation load, capped at the offered rate. An unsaturated network (its
// measured packets all drained, up to the sim's 2% tolerance) sustains the
// offered load by definition, so it scores the cap exactly — the
// finite-window throughput sample would sit a noise-hair below the rate
// otherwise, and no config can ever exceed its own offered load. A
// saturated network scores its measured accepted throughput. The reachable
// cap is what makes pruning exact: perf(·) ≤ rate for every config by
// construction, so a simulated config at the cap is a proven perf upper
// bound for every config it is compared against.
func perfOf(res sweep.UnitResult, rate float64) float64 {
	if !res.Saturated || res.Throughput > rate {
		return rate
	}
	return res.Throughput
}

// Search finds the Pareto frontier of the spec's design space, simulating
// as few points as it can prove safe.
//
// Pruning invariant (DESIGN.md §11): candidate A is skipped only when some
// already-simulated same-evaluation-group B (same topology, workload and
// offered load — see evalGroup) strictly cost-dominates A and achieved
// perf(B) == rate, the axis cap. Then B dominates A on every frontier axis
// (cost strictly, perf weakly since perf(A) ≤ rate), so A is not on the
// frontier; and by transitivity anything A would dominate, B dominates
// too, so removing A from the comparison set changes nothing. Hence the
// frontier computed over the simulated subset equals the brute-force
// frontier exactly — for every worker count and prune order.
func Search(ctx context.Context, eval Evaluator, spec Spec, opts SearchOptions) (Result, error) {
	spec = spec.Normalized()
	sp, err := Enumerate(spec)
	if err != nil {
		return Result{}, err
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	ordered := searchOrder(sp.Feasible)

	var (
		simulated []evaled
		pruned    = make([]bool, len(ordered))
		done      = make([]bool, len(ordered))
		nPruned   int
	)
	// prunableBy records, per evaluation group, the simulated cost vectors
	// that hit the perf cap — the only ones allowed to prune.
	prunableBy := map[string][]Candidate{}

	for {
		// Collect the next round: the first ≤Workers candidates neither
		// pruned nor simulated, in search order.
		var round []int
		for i := range ordered {
			if !done[i] && !pruned[i] {
				round = append(round, i)
				if len(round) == opts.Workers {
					break
				}
			}
		}
		if len(round) == 0 {
			break
		}
		// Simulate the round in parallel; results land by round position so
		// everything after this block is deterministic.
		results := make([]sweep.UnitResult, len(round))
		errs := make([]error, len(round))
		var wg sync.WaitGroup
		for ri, i := range round {
			ri, i := ri, i
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[ri], errs[ri] = eval.EvalUnit(ctx, ordered[i].Unit)
			}()
		}
		wg.Wait()
		for ri, i := range round {
			if errs[ri] != nil {
				return Result{}, fmt.Errorf("dse: %s: %w", ordered[i].Key, errs[ri])
			}
			done[i] = true
			cand := ordered[i]
			perf := perfOf(results[ri], cand.Unit.Rate)
			simulated = append(simulated, evaled{cand: cand, res: results[ri], perf: perf})
			if !spec.NoPrune && perf == cand.Unit.Rate {
				g := evalGroup(cand.Unit)
				prunableBy[g] = append(prunableBy[g], cand)
			}
		}
		// Apply prunes to everything still pending.
		if !spec.NoPrune {
			for i := range ordered {
				if done[i] || pruned[i] {
					continue
				}
				for _, p := range prunableBy[evalGroup(ordered[i].Unit)] {
					if costDominates(p.Cost, ordered[i].Cost) {
						pruned[i] = true
						nPruned++
						break
					}
				}
			}
		}
		if opts.Progress != nil {
			opts.Progress(len(simulated), nPruned, len(ordered))
		}
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}

	// Frontier: per-evaluation-group non-dominated set over (delay, area,
	// power, −perf) among the simulated points, in canonical order.
	simGroups := make([]string, len(simulated))
	for i := range simulated {
		simGroups[i] = evalGroup(simulated[i].cand.Unit)
	}
	var frontier []FrontierPoint
	for i, a := range simulated {
		dominated := false
		for j, b := range simulated {
			if i == j || simGroups[i] != simGroups[j] {
				continue
			}
			if dominates(b, a) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, FrontierPoint{
				Key:             a.cand.Key,
				Unit:            a.cand.Unit,
				Label:           labelOf(a.cand.Unit),
				DelayNS:         a.cand.Cost.DelayNS,
				AreaUM2:         a.cand.Cost.AreaUM2,
				PowerMW:         a.cand.Cost.PowerMW,
				GateEquivalents: a.cand.Cost.GateEquivalents,
				Perf:            a.perf,
				Latency:         a.res.Latency,
				Throughput:      a.res.Throughput,
				Saturated:       a.res.Saturated,
			})
		}
	}
	sort.Slice(frontier, func(i, j int) bool {
		a, b := frontier[i], frontier[j]
		if ga, gb := evalGroup(a.Unit), evalGroup(b.Unit); ga != gb {
			return ga < gb
		}
		if a.DelayNS != b.DelayNS {
			return a.DelayNS < b.DelayNS
		}
		if a.AreaUM2 != b.AreaUM2 {
			return a.AreaUM2 < b.AreaUM2
		}
		if a.PowerMW != b.PowerMW {
			return a.PowerMW < b.PowerMW
		}
		return a.Key < b.Key
	})

	return Result{
		SchemaVersion: sweep.SchemaVersion,
		Spec:          spec,
		Enumerated:    sp.Enumerated,
		Distinct:      sp.Distinct,
		Infeasible:    sp.Infeasible,
		Feasible:      len(sp.Feasible),
		Simulated:     len(simulated),
		Pruned:        nPruned,
		Frontier:      frontier,
	}, nil
}

// evaled pairs a simulated candidate with its measured performance.
type evaled struct {
	cand Candidate
	res  sweep.UnitResult
	perf float64
}

// dominates reports full frontier-axis domination: b weakly better than a
// on delay, area, power and perf, strictly on at least one.
func dominates(b, a evaled) bool {
	if b.cand.Cost.DelayNS > a.cand.Cost.DelayNS ||
		b.cand.Cost.AreaUM2 > a.cand.Cost.AreaUM2 ||
		b.cand.Cost.PowerMW > a.cand.Cost.PowerMW ||
		b.perf < a.perf {
		return false
	}
	return b.cand.Cost.DelayNS < a.cand.Cost.DelayNS ||
		b.cand.Cost.AreaUM2 < a.cand.Cost.AreaUM2 ||
		b.cand.Cost.PowerMW < a.cand.Cost.PowerMW ||
		b.perf > a.perf
}

// labelOf renders a compact design-point spelling, e.g.
// "mesh v2 va=sep_if/rr/sparse sa=wf/rr/spec_req". Non-baseline workloads
// get a suffix ("… wl=mmp(b32,d0.25)/hotspot(f0.2)") so frontier listings
// stay unambiguous when a search spans workload axes.
func labelOf(u sweep.UnitConfig) string {
	va := u.VAArch + "/" + u.VAArb
	if u.VASparse {
		va += "/sparse"
	}
	s := fmt.Sprintf("%s v%d va=%s sa=%s/%s/%s", u.Topo, u.VCsPerClass, va, u.SAArch, u.SAArb, u.SpecMode)
	if u.Process != "bernoulli" || u.Pattern != "uniform" {
		s += " wl=" + experiments.WorkloadName(workloadOf(u))
	}
	return s
}

// workloadOf rebuilds the traffic.Workload a unit's workload fields spell
// (mirrors sweep.UnitConfig's own unexported helper).
func workloadOf(u sweep.UnitConfig) traffic.Workload {
	return traffic.Workload{
		Process: u.Process, Rate: u.Rate, Pattern: u.Pattern,
		BurstLen: u.BurstLen, Duty: u.Duty,
		Hotspots: u.Hotspots, HotspotFraction: u.HotspotFraction,
	}
}
