package dse

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sweep"
)

// fakeEval is a deterministic pure-function evaluator: every unit's
// "measurement" derives from its content key, so results are stable across
// runs, orders and worker counts without running simulations. Saturation
// and throughput vary pseudo-randomly to exercise both pruning regimes.
type fakeEval struct {
	evals atomic.Int64
}

func (f *fakeEval) EvalUnit(_ context.Context, u sweep.UnitConfig) (sweep.UnitResult, error) {
	f.evals.Add(1)
	u = u.Normalized()
	sum := sha256.Sum256([]byte("fake:" + u.Key()))
	// ~1/3 of units saturate; saturated throughput lands in [0.5, 1.0)×rate.
	saturated := sum[0]%3 == 0
	thr := u.Rate
	if saturated {
		thr = u.Rate * (0.5 + float64(sum[1])/512)
	}
	return sweep.UnitResult{
		SchemaVersion: sweep.SchemaVersion,
		Key:           u.Key(),
		Config:        u,
		Rate:          u.Rate,
		Throughput:    thr,
		Saturated:     saturated,
		Latency:       20 + float64(sum[2]),
	}, nil
}

func frontierJSON(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestEnumerateFullSpace pins the design-space accounting: the full cross
// product, the canonical-hash dedup (VA wavefront arb collapse), and the
// synthesis-budget screen.
func TestEnumerateFullSpace(t *testing.T) {
	sp, err := Enumerate(Spec{})
	if err != nil {
		t.Fatal(err)
	}
	// 2 topos × 3 vcs × (3 VA archs × 2 arbs) × 2 sparse × (3 SA archs ×
	// 2 arbs) × 3 spec modes.
	if sp.Enumerated != 1296 {
		t.Fatalf("enumerated %d, want 1296", sp.Enumerated)
	}
	// VA wf/m and wf/rr collapse to one key: 6 VA combos become 5.
	if sp.Distinct != 1080 {
		t.Fatalf("distinct %d, want 1080", sp.Distinct)
	}
	if sp.Infeasible == 0 {
		t.Fatal("expected some infeasible points (dense wavefront VA at large P·V)")
	}
	if len(sp.Feasible)+sp.Infeasible != sp.Distinct {
		t.Fatalf("feasible %d + infeasible %d != distinct %d", len(sp.Feasible), sp.Infeasible, sp.Distinct)
	}
	for _, c := range sp.Feasible {
		if !c.Cost.Synthesized || c.Cost.DelayNS <= 0 || c.Cost.AreaUM2 <= 0 || c.Cost.PowerMW <= 0 {
			t.Fatalf("feasible candidate with degenerate cost: %+v", c)
		}
	}
}

// TestFrontierMatchesBruteForce is the pruning soundness golden: over the
// FULL design space (fake evaluator), the pruned search's frontier must be
// byte-identical to the brute-force (NoPrune) frontier, while simulating
// strictly fewer points.
func TestFrontierMatchesBruteForce(t *testing.T) {
	spec := Spec{}

	brute := &fakeEval{}
	bruteSpec := spec
	bruteSpec.NoPrune = true
	bruteRes, err := Search(context.Background(), brute, bruteSpec, SearchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bruteRes.Pruned != 0 || bruteRes.Simulated != bruteRes.Feasible {
		t.Fatalf("brute force pruned: %+v", bruteRes)
	}

	pruned := &fakeEval{}
	prunedRes, err := Search(context.Background(), pruned, spec, SearchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if prunedRes.Simulated >= bruteRes.Simulated {
		t.Fatalf("pruning saved nothing: %d vs %d sims", prunedRes.Simulated, bruteRes.Simulated)
	}
	if prunedRes.Simulated+prunedRes.Pruned != prunedRes.Feasible {
		t.Fatalf("accounting: %d simulated + %d pruned != %d feasible",
			prunedRes.Simulated, prunedRes.Pruned, prunedRes.Feasible)
	}
	if got, want := frontierJSON(t, prunedRes), frontierJSON(t, bruteRes); got != want {
		t.Fatalf("pruned frontier differs from brute force:\npruned: %s\nbrute:  %s", got, want)
	}
	t.Logf("brute %d sims, pruned %d sims (%d skipped), frontier %d points",
		bruteRes.Simulated, prunedRes.Simulated, prunedRes.Pruned, len(prunedRes.Frontier))
}

// TestFrontierWorkerInvariance pins that the frontier — content and order —
// is byte-identical for any worker count, even though the pruned set (and
// therefore the simulated set) may differ between schedules.
func TestFrontierWorkerInvariance(t *testing.T) {
	spec := Spec{}
	var golden string
	for _, workers := range []int{1, 2, 7, 16} {
		res, err := Search(context.Background(), &fakeEval{}, spec, SearchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		j := frontierJSON(t, res)
		if golden == "" {
			golden = j
			continue
		}
		if j != golden {
			t.Fatalf("workers=%d frontier differs:\n%s\nvs\n%s", workers, j, golden)
		}
	}
}

// TestSearchDeterministicRepeat pins that two identical searches produce
// identical full results (counts included) — same evaluator determinism,
// same order, same prunes.
func TestSearchDeterministicRepeat(t *testing.T) {
	spec := Spec{Topos: []string{"mesh"}}
	a, err := Search(context.Background(), &fakeEval{}, spec, SearchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(context.Background(), &fakeEval{}, spec, SearchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("identical searches produced different results")
	}
}

// TestPerfOf pins the performance-axis definition the pruning proof leans
// on: unsaturated ⇒ exactly the offered rate (the cap); saturated ⇒
// accepted throughput, still capped.
func TestPerfOf(t *testing.T) {
	if got := perfOf(sweep.UnitResult{Saturated: false, Throughput: 0.293}, 0.3); got != 0.3 {
		t.Fatalf("unsaturated perf = %g, want the 0.3 cap", got)
	}
	if got := perfOf(sweep.UnitResult{Saturated: true, Throughput: 0.21}, 0.3); got != 0.21 {
		t.Fatalf("saturated perf = %g, want measured 0.21", got)
	}
	if got := perfOf(sweep.UnitResult{Saturated: true, Throughput: 0.35}, 0.3); got != 0.3 {
		t.Fatalf("saturated above-rate perf = %g, want capped 0.3", got)
	}
}

// TestSpecID pins submission idempotence: the ID is normalization-invariant
// and spec-sensitive.
func TestSpecID(t *testing.T) {
	sparse := Spec{}
	explicit := Spec{Topos: []string{"mesh", "fbfly"}, VCs: []int{1, 2, 4}, MeshRate: 0.44, FbflyRate: 0.60, Seed: 42}
	if sparse.ID() != explicit.ID() {
		t.Fatal("default-filled and explicit specs hash differently")
	}
	other := Spec{Seed: 43}
	if sparse.ID() == other.ID() {
		t.Fatal("different specs collide")
	}
}

// TestCostDominates pins the strict-dominance predicate.
func TestCostDominates(t *testing.T) {
	base := Candidate{}.Cost
	base.DelayNS, base.AreaUM2, base.PowerMW = 1, 100, 10
	better := base
	better.AreaUM2 = 90
	if !costDominates(better, base) {
		t.Fatal("strictly better area should dominate")
	}
	if costDominates(base, better) || costDominates(base, base) {
		t.Fatal("equal or worse vectors must not dominate")
	}
	mixed := base
	mixed.AreaUM2, mixed.DelayNS = 90, 2
	if costDominates(mixed, base) {
		t.Fatal("trade-off vector must not dominate")
	}
}

// TestWorkloadAxes pins the workload dimension of the search space: the
// patterns × processes cross multiplies enumeration, every workload lands
// in its own evaluation group, dominance never crosses groups (the pruned
// frontier still matches brute force, and each group contributes frontier
// points), and non-baseline points carry a workload label suffix.
func TestWorkloadAxes(t *testing.T) {
	spec := Spec{
		Topos: []string{"mesh"}, VCs: []int{1},
		VAArchs: []string{"sep_if"}, VAArbs: []string{"rr"}, VASparse: []bool{false},
		SAArbs:    []string{"rr"},
		Patterns:  []string{"uniform", "hotspot"},
		Processes: []string{"bernoulli", "mmp"},
	}
	sp, err := Enumerate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 3 SA archs × 3 spec modes = 9 allocator points, × 4 workloads.
	if sp.Enumerated != 36 {
		t.Fatalf("enumerated %d, want 36", sp.Enumerated)
	}
	groups := map[string]int{}
	for _, c := range sp.Feasible {
		groups[evalGroup(c.Unit)]++
	}
	if len(groups) != 4 {
		t.Fatalf("feasible points span %d evaluation groups, want 4: %v", len(groups), groups)
	}

	brute := spec
	brute.NoPrune = true
	bruteRes, err := Search(context.Background(), &fakeEval{}, brute, SearchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	prunedRes, err := Search(context.Background(), &fakeEval{}, spec, SearchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := frontierJSON(t, prunedRes), frontierJSON(t, bruteRes); got != want {
		t.Fatalf("pruned frontier differs from brute force under workload axes:\npruned: %s\nbrute:  %s", got, want)
	}
	frontierGroups := map[string]bool{}
	for _, p := range prunedRes.Frontier {
		frontierGroups[evalGroup(p.Unit)] = true
		baseline := p.Unit.Process == "bernoulli" && p.Unit.Pattern == "uniform"
		if hasWL := len(p.Label) > 0 && strings.Contains(p.Label, " wl="); hasWL == baseline {
			t.Errorf("label %q: workload suffix present=%v for baseline=%v", p.Label, hasWL, baseline)
		}
	}
	if len(frontierGroups) != 4 {
		t.Fatalf("frontier spans %d evaluation groups, want all 4 (groups cannot dominate each other)", len(frontierGroups))
	}
}

// TestWorkloadSpecValidation pins the spec-level workload checks: trace is
// batch-only, and mmp/hotspot parameters are validated against the
// evaluation rates up front.
func TestWorkloadSpecValidation(t *testing.T) {
	if err := (Spec{Processes: []string{"trace"}}).Validate(); err == nil {
		t.Error("trace process accepted as a search axis")
	}
	if err := (Spec{Processes: []string{"mmp"}, Duty: 0.05}).Validate(); err == nil {
		t.Error("mmp with rate beyond duty capacity accepted (mesh rate 0.44 > 6×0.05)")
	}
	if err := (Spec{Patterns: []string{"hotspot"}, Hotspots: []int{64}}).Validate(); err == nil {
		t.Error("hotspot terminal 64 accepted over 64 terminals")
	}
	if err := (Spec{Patterns: []string{"hotspot"}, Processes: []string{"mmp"}}).Validate(); err != nil {
		t.Errorf("default-parameter mmp × hotspot rejected: %v", err)
	}
}
