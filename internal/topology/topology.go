// Package topology builds the two 64-node network topologies evaluated in
// Becker & Dally (SC '09) §3: an 8×8 mesh with one terminal per router
// (P = 5) and a two-dimensional 4×4 flattened butterfly with concentration
// four (P = 10).
//
// Conventions shared with the router and routing packages:
//   - Router ports [0, Concentration) attach terminals.
//   - Remaining ports carry inter-router channels; OutChannel/InChannel give
//     the port↔channel mapping.
//   - Terminal t attaches to router t/Concentration at port t%Concentration.
package topology

import "fmt"

// Channel is a unidirectional inter-router link.
type Channel struct {
	// ID is the channel's index in Topology.Channels.
	ID int
	// Src and Dst are router indices.
	Src, Dst int
	// SrcPort is the output port at Src; DstPort is the input port at Dst.
	SrcPort, DstPort int
	// Latency is the traversal time in cycles (1 for the mesh, 1–3 for the
	// flattened butterfly, §3.2).
	Latency int
}

// Topology describes a network of uniform-radix routers.
type Topology struct {
	// Name is "mesh" or "fbfly".
	Name string
	// Routers is the number of routers.
	Routers int
	// Ports is the router radix P (terminal + network ports).
	Ports int
	// Concentration is the number of terminals per router.
	Concentration int
	// Channels lists all unidirectional inter-router channels.
	Channels []Channel
	// OutChannel[r][p] is the channel leaving router r at output port p, or
	// -1 for terminal ports.
	OutChannel [][]int
	// InChannel[r][p] is the channel entering router r at input port p, or
	// -1 for terminal ports.
	InChannel [][]int
}

// Terminals returns the number of network terminals.
func (t *Topology) Terminals() int { return t.Routers * t.Concentration }

// TerminalRouter returns the router and local port a terminal attaches to.
func (t *Topology) TerminalRouter(term int) (router, port int) {
	if term < 0 || term >= t.Terminals() {
		panic(fmt.Sprintf("topology: terminal %d out of range", term))
	}
	return term / t.Concentration, term % t.Concentration
}

// RouterTerminal returns the terminal attached to router r's terminal port
// p (p < Concentration).
func (t *Topology) RouterTerminal(r, p int) int {
	if p >= t.Concentration {
		panic(fmt.Sprintf("topology: port %d is not a terminal port", p))
	}
	return r*t.Concentration + p
}

// IsTerminalPort reports whether port p attaches a terminal.
func (t *Topology) IsTerminalPort(p int) bool { return p < t.Concentration }

// Validate checks structural invariants; it is exercised by tests and cheap
// enough to call after construction.
func (t *Topology) Validate() error {
	if len(t.OutChannel) != t.Routers || len(t.InChannel) != t.Routers {
		return fmt.Errorf("topology: port map size mismatch")
	}
	for r := 0; r < t.Routers; r++ {
		if len(t.OutChannel[r]) != t.Ports || len(t.InChannel[r]) != t.Ports {
			return fmt.Errorf("topology: router %d port map has wrong width", r)
		}
		for p := 0; p < t.Ports; p++ {
			oc, ic := t.OutChannel[r][p], t.InChannel[r][p]
			if t.IsTerminalPort(p) {
				if oc != -1 || ic != -1 {
					return fmt.Errorf("topology: router %d terminal port %d mapped to channel", r, p)
				}
				continue
			}
			// Boundary routers (e.g. mesh edges) may leave network ports
			// unconnected; the radix stays uniform per the paper's design
			// points.
			if oc == -1 && ic == -1 {
				continue
			}
			if oc < 0 || oc >= len(t.Channels) || ic < 0 || ic >= len(t.Channels) {
				return fmt.Errorf("topology: router %d port %d half-mapped", r, p)
			}
			c := t.Channels[oc]
			if c.Src != r || c.SrcPort != p {
				return fmt.Errorf("topology: channel %d inconsistent with out map", oc)
			}
			c = t.Channels[ic]
			if c.Dst != r || c.DstPort != p {
				return fmt.Errorf("topology: channel %d inconsistent with in map", ic)
			}
		}
	}
	for _, c := range t.Channels {
		if c.Latency < 1 {
			return fmt.Errorf("topology: channel %d has latency %d", c.ID, c.Latency)
		}
	}
	return nil
}

func newEmpty(name string, routers, ports, conc int) *Topology {
	t := &Topology{Name: name, Routers: routers, Ports: ports, Concentration: conc}
	t.OutChannel = make([][]int, routers)
	t.InChannel = make([][]int, routers)
	for r := range t.OutChannel {
		t.OutChannel[r] = make([]int, ports)
		t.InChannel[r] = make([]int, ports)
		for p := range t.OutChannel[r] {
			t.OutChannel[r][p] = -1
			t.InChannel[r][p] = -1
		}
	}
	return t
}

func (t *Topology) addChannel(src, srcPort, dst, dstPort, latency int) {
	c := Channel{ID: len(t.Channels), Src: src, Dst: dst, SrcPort: srcPort, DstPort: dstPort, Latency: latency}
	t.Channels = append(t.Channels, c)
	t.OutChannel[src][srcPort] = c.ID
	t.InChannel[dst][dstPort] = c.ID
}

// Mesh port layout: port 0 = terminal, 1 = +x, 2 = -x, 3 = +y, 4 = -y.
const (
	MeshPortTerminal = 0
	MeshPortXPlus    = 1
	MeshPortXMinus   = 2
	MeshPortYPlus    = 3
	MeshPortYMinus   = 4
)

// Mesh builds a k×k mesh with one terminal per router (the paper's mesh is
// 8×8). All channels have unit latency.
func Mesh(k int) *Topology { return MeshWithLatency(k, 1) }

// MeshWithLatency builds a k×k mesh whose channels all have the given
// latency in cycles; latencies above one model repeated or long global
// wires between routers.
func MeshWithLatency(k, latency int) *Topology {
	if k < 2 {
		panic("topology: mesh requires k >= 2")
	}
	if latency < 1 {
		panic("topology: mesh channel latency must be >= 1")
	}
	t := newEmpty("mesh", k*k, 5, 1)
	id := func(x, y int) int { return y*k + x }
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			if x+1 < k {
				t.addChannel(id(x, y), MeshPortXPlus, id(x+1, y), MeshPortXMinus, latency)
				t.addChannel(id(x+1, y), MeshPortXMinus, id(x, y), MeshPortXPlus, latency)
			}
			if y+1 < k {
				t.addChannel(id(x, y), MeshPortYPlus, id(x, y+1), MeshPortYMinus, latency)
				t.addChannel(id(x, y+1), MeshPortYMinus, id(x, y), MeshPortYPlus, latency)
			}
		}
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}

// MeshCoord returns the (x, y) coordinate of router r in a k×k mesh.
func MeshCoord(k, r int) (x, y int) { return r % k, r / k }

// FlattenedButterfly builds a two-dimensional k×k flattened butterfly with
// the given concentration (the paper's network is 4×4 with concentration 4,
// P = 10). Routers in the same row or column are fully connected; channel
// latency equals the coordinate distance between the routers (1–3 cycles
// for k = 4, §3.2).
//
// Port layout for router (x, y): ports [0, conc) are terminals; the next
// k-1 ports connect to the other routers in the same row (ascending x,
// skipping self); the final k-1 ports connect to the other routers in the
// same column (ascending y, skipping self).
func FlattenedButterfly(k, conc int) *Topology {
	if k < 2 || conc < 1 {
		panic("topology: fbfly requires k >= 2, conc >= 1")
	}
	ports := conc + 2*(k-1)
	t := newEmpty("fbfly", k*k, ports, conc)
	id := func(x, y int) int { return y*k + x }
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			r := id(x, y)
			for ox := 0; ox < k; ox++ {
				if ox == x {
					continue
				}
				lat := ox - x
				if lat < 0 {
					lat = -lat
				}
				t.addChannel(r, FbflyRowPort(k, conc, x, ox), id(ox, y), FbflyRowPort(k, conc, ox, x), lat)
			}
			for oy := 0; oy < k; oy++ {
				if oy == y {
					continue
				}
				lat := oy - y
				if lat < 0 {
					lat = -lat
				}
				t.addChannel(r, FbflyColPort(k, conc, y, oy), id(x, oy), FbflyColPort(k, conc, oy, y), lat)
			}
		}
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}

// FbflyRowPort returns the output port at a router in column x leading to
// column ox in the same row.
func FbflyRowPort(k, conc, x, ox int) int {
	if ox == x {
		panic("topology: no self row port")
	}
	idx := ox
	if ox > x {
		idx--
	}
	return conc + idx
}

// FbflyColPort returns the output port at a router in row y leading to row
// oy in the same column.
func FbflyColPort(k, conc, y, oy int) int {
	if oy == y {
		panic("topology: no self column port")
	}
	idx := oy
	if oy > y {
		idx--
	}
	return conc + (k - 1) + idx
}

// Torus builds a k×k torus with one terminal per router: the mesh port
// layout plus wraparound channels, so every router has all four network
// ports connected. Tori are the §4.2 motivating example for resource
// classes (dateline routing). All channels have unit latency.
func Torus(k int) *Topology {
	if k < 3 {
		panic("topology: torus requires k >= 3 for distinct wrap links")
	}
	t := newEmpty("torus", k*k, 5, 1)
	id := func(x, y int) int { return y*k + x }
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			nx := (x + 1) % k
			t.addChannel(id(x, y), MeshPortXPlus, id(nx, y), MeshPortXMinus, 1)
			t.addChannel(id(nx, y), MeshPortXMinus, id(x, y), MeshPortXPlus, 1)
			ny := (y + 1) % k
			t.addChannel(id(x, y), MeshPortYPlus, id(x, ny), MeshPortYMinus, 1)
			t.addChannel(id(x, ny), MeshPortYMinus, id(x, y), MeshPortYPlus, 1)
		}
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	return t
}
