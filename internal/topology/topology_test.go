package topology

import "testing"

func TestMesh8x8Shape(t *testing.T) {
	m := Mesh(8)
	if m.Routers != 64 || m.Ports != 5 || m.Concentration != 1 {
		t.Fatalf("mesh: routers=%d ports=%d conc=%d", m.Routers, m.Ports, m.Concentration)
	}
	if m.Terminals() != 64 {
		t.Fatalf("terminals = %d, want 64", m.Terminals())
	}
	// 2 * (k*(k-1)) bidirectional links per dimension = 2*2*56 channels.
	if got, want := len(m.Channels), 2*2*8*7; got != want {
		t.Fatalf("channels = %d, want %d", got, want)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Channels {
		if c.Latency != 1 {
			t.Fatalf("mesh channel latency %d, want 1", c.Latency)
		}
	}
}

func TestMeshConnectivity(t *testing.T) {
	m := Mesh(4)
	// Router (1,1) = 5: +x to (2,1)=6, -x to (0,1)=4, +y to (1,2)=9, -y to (1,0)=1.
	cases := []struct{ port, dst int }{
		{MeshPortXPlus, 6}, {MeshPortXMinus, 4}, {MeshPortYPlus, 9}, {MeshPortYMinus, 1},
	}
	for _, c := range cases {
		ch := m.Channels[m.OutChannel[5][c.port]]
		if ch.Dst != c.dst {
			t.Errorf("port %d leads to %d, want %d", c.port, ch.Dst, c.dst)
		}
	}
	// Edge router 0 has no -x / -y channels.
	if m.OutChannel[0][MeshPortXMinus] != -1 || m.OutChannel[0][MeshPortYMinus] != -1 {
		t.Error("corner router should have unmapped minus ports")
	}
}

func TestMeshChannelsBidirectional(t *testing.T) {
	m := Mesh(8)
	for _, c := range m.Channels {
		found := false
		for _, rc := range m.Channels {
			if rc.Src == c.Dst && rc.Dst == c.Src {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("channel %d has no reverse", c.ID)
		}
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	for r := 0; r < 64; r++ {
		x, y := MeshCoord(8, r)
		if y*8+x != r {
			t.Fatalf("coord round trip failed for %d", r)
		}
	}
}

func TestFbflyShape(t *testing.T) {
	f := FlattenedButterfly(4, 4)
	if f.Routers != 16 || f.Ports != 10 || f.Concentration != 4 {
		t.Fatalf("fbfly: routers=%d ports=%d conc=%d", f.Routers, f.Ports, f.Concentration)
	}
	if f.Terminals() != 64 {
		t.Fatalf("terminals = %d, want 64", f.Terminals())
	}
	// Each router has 3 row + 3 column outgoing channels.
	if got, want := len(f.Channels), 16*6; got != want {
		t.Fatalf("channels = %d, want %d", got, want)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFbflyLatencies(t *testing.T) {
	f := FlattenedButterfly(4, 4)
	// Latency must equal coordinate distance, within [1, 3].
	for _, c := range f.Channels {
		sx, sy := c.Src%4, c.Src/4
		dx, dy := c.Dst%4, c.Dst/4
		want := abs(sx-dx) + abs(sy-dy)
		if c.Latency != want {
			t.Fatalf("channel %d->%d latency %d, want %d", c.Src, c.Dst, c.Latency, want)
		}
		if c.Latency < 1 || c.Latency > 3 {
			t.Fatalf("latency %d outside [1,3]", c.Latency)
		}
		// Row/column connectivity only.
		if sx != dx && sy != dy {
			t.Fatalf("channel %d->%d is diagonal", c.Src, c.Dst)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestFbflyFullRowColumnConnectivity(t *testing.T) {
	f := FlattenedButterfly(4, 4)
	for r := 0; r < 16; r++ {
		dsts := map[int]bool{}
		for p := f.Concentration; p < f.Ports; p++ {
			ch := f.Channels[f.OutChannel[r][p]]
			dsts[ch.Dst] = true
		}
		rx, ry := r%4, r/4
		for o := 0; o < 16; o++ {
			ox, oy := o%4, o/4
			sameLine := (ox == rx) != (oy == ry) // same row xor same column, not self
			if sameLine && !dsts[o] {
				t.Fatalf("router %d missing link to %d", r, o)
			}
		}
		if len(dsts) != 6 {
			t.Fatalf("router %d connects to %d routers, want 6", r, len(dsts))
		}
	}
}

func TestFbflyPortHelpers(t *testing.T) {
	// Router at column 1: row ports to columns 0,2,3 are conc+0, conc+1, conc+2.
	if FbflyRowPort(4, 4, 1, 0) != 4 || FbflyRowPort(4, 4, 1, 2) != 5 || FbflyRowPort(4, 4, 1, 3) != 6 {
		t.Error("row port mapping wrong")
	}
	if FbflyColPort(4, 4, 0, 1) != 7 || FbflyColPort(4, 4, 0, 3) != 9 {
		t.Error("column port mapping wrong")
	}
	for _, fn := range []func(){
		func() { FbflyRowPort(4, 4, 1, 1) },
		func() { FbflyColPort(4, 4, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for self port")
				}
			}()
			fn()
		}()
	}
}

func TestTerminalMapping(t *testing.T) {
	f := FlattenedButterfly(4, 4)
	for term := 0; term < 64; term++ {
		r, p := f.TerminalRouter(term)
		if !f.IsTerminalPort(p) {
			t.Fatalf("terminal %d mapped to non-terminal port %d", term, p)
		}
		if f.RouterTerminal(r, p) != term {
			t.Fatalf("terminal %d mapping not invertible", term)
		}
	}
	m := Mesh(8)
	for term := 0; term < 64; term++ {
		r, p := m.TerminalRouter(term)
		if r != term || p != 0 {
			t.Fatalf("mesh terminal %d -> (%d,%d), want (%d,0)", term, r, p, term)
		}
	}
}

func TestTerminalPanics(t *testing.T) {
	m := Mesh(4)
	for _, fn := range []func(){
		func() { m.TerminalRouter(16) },
		func() { m.TerminalRouter(-1) },
		func() { m.RouterTerminal(0, 1) },
		func() { Mesh(1) },
		func() { FlattenedButterfly(1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTorusShape(t *testing.T) {
	to := Torus(4)
	if to.Routers != 16 || to.Ports != 5 || to.Concentration != 1 {
		t.Fatalf("torus: routers=%d ports=%d conc=%d", to.Routers, to.Ports, to.Concentration)
	}
	// Every router has all 4 network ports connected: 16*4 directed channels.
	if got, want := len(to.Channels), 16*4; got != want {
		t.Fatalf("channels = %d, want %d", got, want)
	}
	if err := to.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		for p := 1; p < 5; p++ {
			if to.OutChannel[r][p] == -1 || to.InChannel[r][p] == -1 {
				t.Fatalf("torus router %d port %d unconnected", r, p)
			}
		}
	}
}

func TestTorusWrapLinks(t *testing.T) {
	to := Torus(4)
	// Router (3,0)=3: +x wraps to (0,0)=0.
	ch := to.Channels[to.OutChannel[3][MeshPortXPlus]]
	if ch.Dst != 0 {
		t.Fatalf("+x from router 3 leads to %d, want 0 (wrap)", ch.Dst)
	}
	// Router (0,0)=0: -x wraps to (3,0)=3.
	ch = to.Channels[to.OutChannel[0][MeshPortXMinus]]
	if ch.Dst != 3 {
		t.Fatalf("-x from router 0 leads to %d, want 3 (wrap)", ch.Dst)
	}
	// Router (1,3)=13: +y wraps to (1,0)=1.
	ch = to.Channels[to.OutChannel[13][MeshPortYPlus]]
	if ch.Dst != 1 {
		t.Fatalf("+y from router 13 leads to %d, want 1 (wrap)", ch.Dst)
	}
}

func TestTorusTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Torus(2)
}
