package costmodel

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/core"
)

var tech = Default45nm()

// Paper design points.
var (
	meshPoints = []core.VCSpec{core.NewVCSpec(2, 1, 1), core.NewVCSpec(2, 1, 2), core.NewVCSpec(2, 1, 4)}
	fbPoints   = []core.VCSpec{core.NewVCSpec(2, 2, 1), core.NewVCSpec(2, 2, 2), core.NewVCSpec(2, 2, 4)}
)

func vcCost(p int, s core.VCSpec, arch alloc.Arch, k arbiter.Kind, sparse bool) Estimate {
	return VCAllocCost(tech, core.VCAllocConfig{Ports: p, Spec: s, Arch: arch, ArbKind: k, Sparse: sparse})
}

func swCost(p, v int, arch alloc.Arch, k arbiter.Kind, mode core.SpecMode) Estimate {
	return SwitchAllocCost(tech, core.SwitchAllocConfig{Ports: p, VCs: v, Arch: arch, ArbKind: k, SpecMode: mode})
}

func TestArbiterCostMonotone(t *testing.T) {
	for _, k := range []arbiter.Kind{arbiter.RoundRobin, arbiter.Matrix} {
		for n := 2; n < 64; n *= 2 {
			if tech.ArbiterGE(k, 2*n) <= tech.ArbiterGE(k, n) {
				t.Errorf("%v: GE not monotone at n=%d", k, n)
			}
			if tech.ArbiterDelay(k, 2*n) < tech.ArbiterDelay(k, n) {
				t.Errorf("%v: delay not monotone at n=%d", k, n)
			}
		}
	}
}

func TestMatrixArbiterFasterButLarger(t *testing.T) {
	// §4.3.1: matrix arbiters trade area for (slightly) lower delay.
	for _, n := range []int{4, 8, 16, 32} {
		if tech.ArbiterDelay(arbiter.Matrix, n) >= tech.ArbiterDelay(arbiter.RoundRobin, n) {
			t.Errorf("n=%d: matrix arbiter should be faster", n)
		}
		if tech.ArbiterGE(arbiter.Matrix, n) <= tech.ArbiterGE(arbiter.RoundRobin, n) {
			t.Errorf("n=%d: matrix arbiter should be larger", n)
		}
	}
}

func TestArbiterDelayLogarithmic(t *testing.T) {
	// §2.1: arbiter delay scales approximately logarithmically.
	d8 := tech.ArbiterDelay(arbiter.RoundRobin, 8)
	d64 := tech.ArbiterDelay(arbiter.RoundRobin, 64)
	if d64 > 2.5*d8 {
		t.Fatalf("rr delay growth 8->64 too steep: %f -> %f", d8, d64)
	}
}

func TestWavefrontQuadraticCustomCubicSynth(t *testing.T) {
	// §2.2: full-custom area scales quadratically; the loop-free
	// synthesizable version replicates the array per diagonal (cubic).
	r1 := tech.WavefrontGE(20) / tech.WavefrontGE(10)
	if r1 < 7.5 || r1 > 8.5 {
		t.Errorf("synthesized wavefront GE ratio for 2x size = %.2f, want ~8 (cubic)", r1)
	}
	r2 := tech.WavefrontCustomGE(20) / tech.WavefrontCustomGE(10)
	if r2 < 3.5 || r2 > 4.5 {
		t.Errorf("custom wavefront GE ratio for 2x size = %.2f, want ~4 (quadratic)", r2)
	}
	if tech.WavefrontCustomGE(16) >= tech.WavefrontGE(16) {
		t.Error("custom layout must be smaller than replicated synthesis")
	}
	if tech.WavefrontCustomDelay(16) >= tech.WavefrontDelay(16) {
		t.Error("custom layout must be faster than replicated synthesis")
	}
}

func TestWavefrontDelayApproxLinear(t *testing.T) {
	d10 := tech.WavefrontDelay(10)
	d40 := tech.WavefrontDelay(40)
	if d40 < 2*d10 || d40 > 4.5*d10 {
		t.Fatalf("wavefront delay 10->40 scaled by %.2f, want roughly linear", d40/d10)
	}
}

func TestTreeArbiterFasterThanFlat(t *testing.T) {
	// §4.1: P×V-input arbiters are built as tree arbiters to reduce delay.
	flat := tech.ArbiterDelay(arbiter.RoundRobin, 160)
	tree := tech.TreeArbiterDelay(arbiter.RoundRobin, 10, 16)
	if tree >= flat {
		t.Fatalf("tree arbiter (%.3f) should beat flat 160-input arbiter (%.3f)", tree, flat)
	}
}

// --- Fig. 5 / Fig. 6: VC allocator cost --------------------------------------

func TestSparseImprovesEverything(t *testing.T) {
	// §4.3.1: "sparse VC allocation yields significant improvements across
	// the board": for every synthesizable dense/sparse pair, sparse has
	// lower delay, area and power.
	points := []struct {
		p    int
		spec core.VCSpec
	}{
		{5, meshPoints[0]}, {5, meshPoints[1]}, {5, meshPoints[2]},
		{10, fbPoints[0]}, {10, fbPoints[1]}, {10, fbPoints[2]},
	}
	for _, pt := range points {
		for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
			for _, k := range []arbiter.Kind{arbiter.RoundRobin, arbiter.Matrix} {
				if arch == alloc.Wavefront && k == arbiter.Matrix {
					continue
				}
				dense := vcCost(pt.p, pt.spec, arch, k, false)
				sparse := vcCost(pt.p, pt.spec, arch, k, true)
				if !dense.Synthesized || !sparse.Synthesized {
					continue
				}
				name := arch.String() + "/" + k.String()
				if sparse.DelayNS >= dense.DelayNS {
					t.Errorf("%s %s P=%d: sparse delay %.3f >= dense %.3f", name, pt.spec, pt.p, sparse.DelayNS, dense.DelayNS)
				}
				if sparse.AreaUM2 >= dense.AreaUM2 {
					t.Errorf("%s %s P=%d: sparse area not smaller", name, pt.spec, pt.p)
				}
				if sparse.PowerMW >= dense.PowerMW {
					t.Errorf("%s %s P=%d: sparse power not smaller", name, pt.spec, pt.p)
				}
			}
		}
	}
}

func TestSparseHeadlineSavings(t *testing.T) {
	// §4.3.1 headline: savings of up to 41% / 90% / 83% in delay / area /
	// power. Our 45nm-class model reproduces the direction with maxima of
	// the same order; assert substantial floors so regressions surface.
	var maxDelay, maxArea, maxPower float64
	for _, pt := range []struct {
		p    int
		spec core.VCSpec
	}{
		{5, meshPoints[0]}, {5, meshPoints[1]}, {5, meshPoints[2]},
		{10, fbPoints[0]}, {10, fbPoints[1]}, {10, fbPoints[2]},
	} {
		for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
			for _, k := range []arbiter.Kind{arbiter.RoundRobin, arbiter.Matrix} {
				if arch == alloc.Wavefront && k == arbiter.Matrix {
					continue
				}
				dense := vcCost(pt.p, pt.spec, arch, k, false)
				sparse := vcCost(pt.p, pt.spec, arch, k, true)
				if !dense.Synthesized || !sparse.Synthesized {
					continue
				}
				if s := 1 - sparse.DelayNS/dense.DelayNS; s > maxDelay {
					maxDelay = s
				}
				if s := 1 - sparse.AreaUM2/dense.AreaUM2; s > maxArea {
					maxArea = s
				}
				if s := 1 - sparse.PowerMW/dense.PowerMW; s > maxPower {
					maxPower = s
				}
			}
		}
	}
	t.Logf("max sparse savings: delay %.0f%%, area %.0f%%, power %.0f%% (paper: 41/90/83)",
		100*maxDelay, 100*maxArea, 100*maxPower)
	if maxDelay < 0.20 {
		t.Errorf("max delay saving %.2f below 20%% floor", maxDelay)
	}
	if maxArea < 0.60 {
		t.Errorf("max area saving %.2f below 60%% floor", maxArea)
	}
	if maxPower < 0.50 {
		t.Errorf("max power saving %.2f below 50%% floor", maxPower)
	}
}

func TestSparseWavefrontFastestForSingleVCMesh(t *testing.T) {
	// §4.3.1: for design points with a single VC per packet class, the
	// sparse wavefront allocator is the fastest implementation.
	spec := meshPoints[0] // 2x1x1
	wf := vcCost(5, spec, alloc.Wavefront, arbiter.RoundRobin, true)
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF} {
		for _, k := range []arbiter.Kind{arbiter.RoundRobin, arbiter.Matrix} {
			e := vcCost(5, spec, arch, k, true)
			if wf.DelayNS >= e.DelayNS {
				t.Errorf("sparse wf (%.3f) should beat sparse %s/%s (%.3f) at mesh 2x1x1",
					wf.DelayNS, arch, k, e.DelayNS)
			}
		}
	}
}

func TestWavefrontDelaySurpassesSeparableAtHighVC(t *testing.T) {
	// §4.3.1: "the wavefront allocator's delay quickly surpasses that of
	// the separable implementations as the number of VCs increases".
	spec := meshPoints[2] // 2x1x4
	wf := vcCost(5, spec, alloc.Wavefront, arbiter.RoundRobin, true)
	sif := vcCost(5, spec, alloc.SepIF, arbiter.Matrix, true)
	if wf.DelayNS <= sif.DelayNS {
		t.Fatalf("wf delay (%.3f) should exceed sep_if/m (%.3f) at mesh 2x1x4", wf.DelayNS, sif.DelayNS)
	}
	if wf.AreaUM2 <= sif.AreaUM2 || wf.PowerMW <= sif.PowerMW {
		t.Fatal("wf area/power should also exceed separable at mesh 2x1x4")
	}
}

func TestSeparableWinsAtHighRadix(t *testing.T) {
	// Conclusions: separable variants offer lower delay and cost for
	// networks with higher radix and more VCs.
	spec := fbPoints[0] // fbfly 2x2x1
	wf := vcCost(10, spec, alloc.Wavefront, arbiter.RoundRobin, true)
	sif := vcCost(10, spec, alloc.SepIF, arbiter.Matrix, true)
	if !wf.Synthesized {
		t.Fatal("sparse wf at fbfly 2x2x1 should synthesize")
	}
	if sif.DelayNS >= wf.DelayNS {
		t.Fatalf("sep_if/m (%.3f) should beat wf (%.3f) at fbfly radix", sif.DelayNS, wf.DelayNS)
	}
}

func TestSynthesisFailuresMatchPaper(t *testing.T) {
	// §4.3.1: DC ran out of memory for the un-optimized wavefront at
	// larger design points; even sparse wavefront failed for the two
	// larger fbfly configurations; at fbfly 2x2x4 only the rr-based
	// separable variants synthesized.
	cases := []struct {
		name   string
		e      Estimate
		expect bool
	}{
		{"dense wf mesh 2x1x1", vcCost(5, meshPoints[0], alloc.Wavefront, arbiter.RoundRobin, false), true},
		{"dense wf mesh 2x1x2", vcCost(5, meshPoints[1], alloc.Wavefront, arbiter.RoundRobin, false), true},
		{"dense wf mesh 2x1x4", vcCost(5, meshPoints[2], alloc.Wavefront, arbiter.RoundRobin, false), false},
		{"sparse wf mesh 2x1x4", vcCost(5, meshPoints[2], alloc.Wavefront, arbiter.RoundRobin, true), true},
		{"sparse wf fbfly 2x2x1", vcCost(10, fbPoints[0], alloc.Wavefront, arbiter.RoundRobin, true), true},
		{"sparse wf fbfly 2x2x2", vcCost(10, fbPoints[1], alloc.Wavefront, arbiter.RoundRobin, true), false},
		{"sparse wf fbfly 2x2x4", vcCost(10, fbPoints[2], alloc.Wavefront, arbiter.RoundRobin, true), false},
		{"sparse sep_if/rr fbfly 2x2x4", vcCost(10, fbPoints[2], alloc.SepIF, arbiter.RoundRobin, true), true},
		{"sparse sep_of/rr fbfly 2x2x4", vcCost(10, fbPoints[2], alloc.SepOF, arbiter.RoundRobin, true), true},
		{"sparse sep_if/m fbfly 2x2x4", vcCost(10, fbPoints[2], alloc.SepIF, arbiter.Matrix, true), false},
		{"sparse sep_of/m fbfly 2x2x4", vcCost(10, fbPoints[2], alloc.SepOF, arbiter.Matrix, true), false},
		{"dense sep_if/m fbfly 2x2x2", vcCost(10, fbPoints[1], alloc.SepIF, arbiter.Matrix, false), true},
	}
	for _, c := range cases {
		if c.e.Synthesized != c.expect {
			t.Errorf("%s: Synthesized = %v, want %v (%s)", c.name, c.e.Synthesized, c.expect, c.e.FailReason)
		}
		if !c.e.Synthesized && c.e.FailReason == "" {
			t.Errorf("%s: failed synthesis must carry a reason", c.name)
		}
	}
}

// --- Fig. 10 / Fig. 11: switch allocator cost --------------------------------

func TestSepIFLowestSwitchDelay(t *testing.T) {
	// §5.3.1: "the separable input-first allocator consistently offers the
	// lowest delay" (comparing like arbiter kinds).
	for _, pt := range []struct{ p, v int }{{5, 2}, {5, 4}, {5, 8}, {10, 4}, {10, 8}, {10, 16}} {
		for _, mode := range []core.SpecMode{core.SpecNone, core.SpecReq, core.SpecGnt} {
			sifM := swCost(pt.p, pt.v, alloc.SepIF, arbiter.Matrix, mode)
			sofM := swCost(pt.p, pt.v, alloc.SepOF, arbiter.Matrix, mode)
			wf := swCost(pt.p, pt.v, alloc.Wavefront, arbiter.RoundRobin, mode)
			if sifM.DelayNS >= sofM.DelayNS {
				t.Errorf("P=%d V=%d %v: sep_if/m (%.3f) should beat sep_of/m (%.3f)",
					pt.p, pt.v, mode, sifM.DelayNS, sofM.DelayNS)
			}
			if sifM.DelayNS >= wf.DelayNS {
				t.Errorf("P=%d V=%d %v: sep_if/m (%.3f) should beat wf (%.3f)",
					pt.p, pt.v, mode, sifM.DelayNS, wf.DelayNS)
			}
		}
	}
}

func TestWavefrontBetweenSepIFAndSepOF(t *testing.T) {
	// §5.3.1: wavefront approaches sep_if for mesh design points and more
	// generally falls between input-first and output-first.
	wfMesh := swCost(5, 2, alloc.Wavefront, arbiter.RoundRobin, core.SpecNone)
	sifMesh := swCost(5, 2, alloc.SepIF, arbiter.Matrix, core.SpecNone)
	if gap := wfMesh.DelayNS/sifMesh.DelayNS - 1; gap > 0.15 {
		t.Errorf("mesh wf should approach sep_if delay; gap %.0f%%", 100*gap)
	}
	for _, pt := range []struct{ p, v int }{{10, 4}, {10, 8}, {10, 16}} {
		wf := swCost(pt.p, pt.v, alloc.Wavefront, arbiter.RoundRobin, core.SpecNone)
		sof := swCost(pt.p, pt.v, alloc.SepOF, arbiter.RoundRobin, core.SpecNone)
		sif := swCost(pt.p, pt.v, alloc.SepIF, arbiter.Matrix, core.SpecNone)
		if !(wf.DelayNS > sif.DelayNS && wf.DelayNS < sof.DelayNS) {
			t.Errorf("P=%d V=%d: wf (%.3f) should fall between sep_if/m (%.3f) and sep_of/rr (%.3f)",
				pt.p, pt.v, wf.DelayNS, sif.DelayNS, sof.DelayNS)
		}
	}
}

func TestSpeculationDelayOrdering(t *testing.T) {
	// Fig. 9 / §5.3.1: nonspec < spec_req (pessimistic) < spec_gnt
	// (conventional) in delay, for every architecture and design point.
	for _, pt := range []struct{ p, v int }{{5, 2}, {5, 4}, {5, 8}, {10, 4}, {10, 8}, {10, 16}} {
		for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
			ns := swCost(pt.p, pt.v, arch, arbiter.RoundRobin, core.SpecNone)
			pr := swCost(pt.p, pt.v, arch, arbiter.RoundRobin, core.SpecReq)
			cg := swCost(pt.p, pt.v, arch, arbiter.RoundRobin, core.SpecGnt)
			if !(ns.DelayNS < pr.DelayNS && pr.DelayNS < cg.DelayNS) {
				t.Errorf("P=%d V=%d %s: delay ordering violated: %.3f / %.3f / %.3f",
					pt.p, pt.v, arch, ns.DelayNS, pr.DelayNS, cg.DelayNS)
			}
			if cg.AreaUM2 <= ns.AreaUM2 {
				t.Errorf("P=%d V=%d %s: speculative allocator should cost more area", pt.p, pt.v, arch)
			}
		}
	}
}

func TestPessimisticHeadlineSaving(t *testing.T) {
	// §5.3.1: pessimistic speculation reduces switch allocator delay by up
	// to 23% vs conventional, most pronounced for the wavefront allocator.
	var maxSave float64
	var maxArch alloc.Arch
	for _, pt := range []struct{ p, v int }{{5, 2}, {5, 4}, {5, 8}, {10, 4}, {10, 8}, {10, 16}} {
		for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
			pr := swCost(pt.p, pt.v, arch, arbiter.RoundRobin, core.SpecReq)
			cg := swCost(pt.p, pt.v, arch, arbiter.RoundRobin, core.SpecGnt)
			if s := 1 - pr.DelayNS/cg.DelayNS; s > maxSave {
				maxSave, maxArch = s, arch
			}
		}
	}
	t.Logf("max pessimistic delay saving: %.0f%% (%s; paper: up to 23%%, most pronounced for wf)",
		100*maxSave, maxArch)
	if maxSave < 0.15 || maxSave > 0.30 {
		t.Errorf("max pessimistic saving %.2f outside [0.15, 0.30]", maxSave)
	}
	if maxArch != alloc.Wavefront {
		t.Errorf("max saving arch = %s, want wf", maxArch)
	}
}

func TestPessimisticApproachesNonspecDelay(t *testing.T) {
	// §5.3.1: the pessimistic implementation "in many cases approaches
	// that of a non-speculative implementation".
	for _, pt := range []struct{ p, v int }{{5, 2}, {10, 8}} {
		ns := swCost(pt.p, pt.v, alloc.SepIF, arbiter.RoundRobin, core.SpecNone)
		pr := swCost(pt.p, pt.v, alloc.SepIF, arbiter.RoundRobin, core.SpecReq)
		if pr.DelayNS > 1.12*ns.DelayNS {
			t.Errorf("P=%d V=%d: spec_req delay %.3f too far above nonspec %.3f",
				pt.p, pt.v, pr.DelayNS, ns.DelayNS)
		}
	}
}

func TestEstimateInternalConsistency(t *testing.T) {
	e := swCost(5, 2, alloc.SepIF, arbiter.RoundRobin, core.SpecNone)
	if !e.Synthesized {
		t.Fatal("tiny design must synthesize")
	}
	wantArea := e.GateEquivalents * tech.AreaPerGE
	if e.AreaUM2 != wantArea {
		t.Errorf("area %.1f != GE*AreaPerGE %.1f", e.AreaUM2, wantArea)
	}
	wantPower := tech.Activity * tech.EnergyPerGE * e.GateEquivalents / e.DelayNS
	if e.PowerMW != wantPower {
		t.Errorf("power %.4f != expected %.4f", e.PowerMW, wantPower)
	}
}

func TestUnknownKindsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { tech.ArbiterGE(arbiter.Kind(9), 4) },
		func() { tech.ArbiterDelay(arbiter.Kind(9), 4) },
		func() {
			VCAllocCost(tech, core.VCAllocConfig{Ports: 5, Spec: core.NewVCSpec(1, 1, 1), Arch: alloc.Maximum})
		},
		func() {
			SwitchAllocCost(tech, core.SwitchAllocConfig{Ports: 5, VCs: 2, Arch: alloc.Maximum})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestORTreeEdges(t *testing.T) {
	if tech.ORTreeGE(1) != 0 || tech.ORTreeDelay(1) != 0 {
		t.Error("1-input OR tree should be free")
	}
	if tech.ORTreeGE(8) != 7 {
		t.Errorf("8-input OR tree GE = %f, want 7", tech.ORTreeGE(8))
	}
}

func TestWavefrontUnrolledTradeoff(t *testing.T) {
	// Hurt et al.'s unrolled implementation is far smaller than diagonal
	// replication at scale (quadratic vs cubic) but slower for the sizes
	// the paper considers (§2.2).
	for _, n := range []int{10, 20, 40, 80, 160} {
		if tech.WavefrontUnrolledGE(n) >= tech.WavefrontGE(n) {
			t.Errorf("n=%d: unrolled GE should undercut replicated", n)
		}
		if tech.WavefrontUnrolledDelay(n) <= tech.WavefrontDelay(n) {
			t.Errorf("n=%d: unrolled delay should exceed replicated", n)
		}
	}
	// Quadratic scaling check.
	r := tech.WavefrontUnrolledGE(40) / tech.WavefrontUnrolledGE(20)
	if r < 3.5 || r > 4.5 {
		t.Errorf("unrolled GE scaling for 2x size = %.2f, want ~4", r)
	}
}

func TestFreeQueueDelayBeatsSeparable(t *testing.T) {
	// Mullins et al.'s motivation: dropping the input arbitration stage
	// cuts VC allocation delay below the separable implementations at the
	// same design point.
	for _, pt := range []struct {
		p    int
		spec core.VCSpec
	}{{5, meshPoints[1]}, {5, meshPoints[2]}, {10, fbPoints[1]}} {
		fq := VCAllocCost(tech, core.VCAllocConfig{Ports: pt.p, Spec: pt.spec,
			ArbKind: arbiter.RoundRobin, FreeQueue: true})
		sif := vcCost(pt.p, pt.spec, alloc.SepIF, arbiter.RoundRobin, false)
		if !fq.Synthesized {
			t.Fatalf("%s: free queue failed synthesis", pt.spec)
		}
		if fq.DelayNS >= sif.DelayNS {
			t.Errorf("%s: free-queue delay %.3f should beat dense sep_if %.3f",
				pt.spec, fq.DelayNS, sif.DelayNS)
		}
		if fq.AreaUM2 >= sif.AreaUM2 {
			t.Errorf("%s: free-queue area %.0f should undercut dense sep_if %.0f",
				pt.spec, fq.AreaUM2, sif.AreaUM2)
		}
	}
}

func TestPrecomputedValidationBeatsAnyAllocator(t *testing.T) {
	// The point of pre-computation: the residual in-cycle delay undercuts
	// every single-cycle allocator at the same design point.
	for _, pt := range []struct{ p, v int }{{5, 2}, {10, 16}} {
		val := tech.PrecomputedValidationDelay(pt.p, pt.v)
		base := swCost(pt.p, pt.v, alloc.SepIF, arbiter.Matrix, core.SpecNone)
		if val >= base.DelayNS {
			t.Errorf("P=%d V=%d: validation delay %.3f should undercut sep_if/m %.3f",
				pt.p, pt.v, val, base.DelayNS)
		}
	}
	if tech.PrecomputedExtraGE(10, 16) <= 0 {
		t.Error("precomputation must cost area")
	}
}

func TestComponentBreakdownSumsToTotal(t *testing.T) {
	for _, pt := range []struct {
		p    int
		spec core.VCSpec
	}{{5, meshPoints[0]}, {5, meshPoints[2]}, {10, fbPoints[0]}} {
		for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
			e := vcCost(pt.p, pt.spec, arch, arbiter.RoundRobin, true)
			if !e.Synthesized {
				continue
			}
			if len(e.Components) == 0 {
				t.Fatalf("%v %s: no component breakdown", arch, pt.spec)
			}
			var sum float64
			onPath := false
			for _, c := range e.Components {
				if c.GE < 0 || c.Name == "" {
					t.Fatalf("%v: bad component %+v", arch, c)
				}
				sum += c.GE
				onPath = onPath || c.OnCriticalPath
			}
			if diff := sum - e.GateEquivalents; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("%v %s: components sum %.1f != total %.1f", arch, pt.spec, sum, e.GateEquivalents)
			}
			if !onPath {
				t.Fatalf("%v: no component marked on the critical path", arch)
			}
		}
	}
}
