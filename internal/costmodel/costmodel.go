// Package costmodel estimates critical-path delay, cell area and dynamic
// power for the allocator implementations of Becker & Dally (SC '09).
//
// It substitutes for the paper's synthesis flow (Synopsys Design Compiler
// with a commercial 45 nm low-power library at worst-case PVT). The model is
// structural: for every allocator variant it derives a gate-equivalent (GE)
// count and a logic-depth expression from the same block structure the
// functional models in internal/core implement (Figs. 1–3, 8, 9), then maps
//
//	delay  = logic depth × per-level delay (+ fanout terms)
//	area   = GE × area per GE
//	power  = activity-weighted switching energy × GE / cycle time
//
// Absolute numbers are calibrated to a plausible 45 nm-class low-power
// process, not to the authors' proprietary library; the comparisons the
// paper draws (orderings, scaling trends, sparse-VC and speculation savings)
// derive from the structural terms and are preserved.
//
// Like the paper's flow, the model enforces a synthesis complexity budget:
// design points whose flattened netlist exceeds the budget report
// Synthesized=false, mirroring the configurations for which Design Compiler
// ran out of memory (§4.3.1).
package costmodel

import (
	"fmt"
	"math"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/core"
)

// Tech holds technology and flow parameters.
type Tech struct {
	// LevelDelayNS is the delay of one typical logic level (≈FO4) in ns at
	// worst-case PVT.
	LevelDelayNS float64
	// FanoutDelayNS is the additional delay per log2 of fanout for
	// high-fanout nets (request broadcast, diagonal select).
	FanoutDelayNS float64
	// AreaPerGE is cell area in µm² per gate equivalent (NAND2 = 1 GE).
	AreaPerGE float64
	// EnergyPerGE is the switching energy per gate equivalent per cycle at
	// the reference activity factor, expressed in mW·ns (pJ).
	EnergyPerGE float64
	// Activity is the input activity factor applied during power analysis
	// (the paper uses 0.5).
	Activity float64
	// SynthesisBudgetGE is the largest flattened netlist the flow can
	// process; larger designs fail to synthesize.
	SynthesisBudgetGE float64
	// WavefrontTileFactor scales the wavefront array's per-tile delay
	// relative to a plain logic level (wave propagation crosses pass-style
	// tiles faster than full standard-cell levels).
	WavefrontTileFactor float64
}

// Default45nm returns the technology model used throughout the repository:
// a 45 nm-class low-power library at 0.9 V / 125 °C worst-case corner.
func Default45nm() Tech {
	return Tech{
		LevelDelayNS:        0.045,
		FanoutDelayNS:       0.030,
		AreaPerGE:           0.80,
		EnergyPerGE:         0.0004,
		Activity:            0.5,
		SynthesisBudgetGE:   250_000,
		WavefrontTileFactor: 0.68,
	}
}

// Estimate is the synthesis result for one design point.
type Estimate struct {
	// Synthesized reports whether the design fit the flow's complexity
	// budget. When false, the remaining fields are zero and FailReason
	// explains the failure, mirroring the paper's missing data points.
	Synthesized bool
	// FailReason is non-empty when Synthesized is false.
	FailReason string
	// DelayNS is the minimum cycle time in ns.
	DelayNS float64
	// AreaUM2 is the cell area in µm².
	AreaUM2 float64
	// PowerMW is the average dynamic power in mW at the minimum cycle time.
	PowerMW float64
	// GateEquivalents is the flattened netlist size driving area and the
	// synthesis budget.
	GateEquivalents float64
	// Components breaks GateEquivalents down by structural block (input
	// arbiters, output arbiters, wavefront array, glue, ...).
	Components []Component
}

// Component is one structural block's contribution to an estimate.
type Component struct {
	// Name identifies the block ("input arbiters", "wavefront array", ...).
	Name string
	// GE is the block's gate-equivalent count.
	GE float64
	// OnCriticalPath reports whether the block contributes to DelayNS.
	OnCriticalPath bool
}

func (t Tech) finish(ge, delay float64, what string, components ...Component) Estimate {
	if ge > t.SynthesisBudgetGE {
		return Estimate{
			Synthesized: false,
			FailReason: fmt.Sprintf("costmodel: %s requires %.0f GE, exceeding the %.0f GE synthesis budget",
				what, ge, t.SynthesisBudgetGE),
		}
	}
	return Estimate{
		Synthesized:     true,
		DelayNS:         delay,
		AreaUM2:         ge * t.AreaPerGE,
		PowerMW:         t.Activity * t.EnergyPerGE * ge / delay,
		GateEquivalents: ge,
		Components:      components,
	}
}

func log2ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// --- Primitive blocks -------------------------------------------------------

// ORTreeDelay returns the depth-based delay of an n-input OR reduction.
func (t Tech) ORTreeDelay(n int) float64 { return log2ceil(n) * t.LevelDelayNS }

// ORTreeGE returns the gate count of an n-input OR reduction.
func (t Tech) ORTreeGE(n int) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n - 1)
}

// ArbiterGE returns the gate-equivalent count of an n-input arbiter of the
// given kind. Round-robin arbiters comprise a rotating pointer, thermometer
// mask and two priority-encode chains (linear in n). Matrix arbiters hold a
// triangular matrix of priority flip-flops plus per-output wide AND terms
// (quadratic in n).
func (t Tech) ArbiterGE(k arbiter.Kind, n int) float64 {
	if n <= 1 {
		return 2 // request latch / pass-through
	}
	switch k {
	case arbiter.RoundRobin:
		return 6*float64(n) + 8
	case arbiter.Matrix:
		nf := float64(n)
		return 2*nf*nf + 4*nf
	default:
		panic(fmt.Sprintf("costmodel: unknown arbiter kind %v", k))
	}
}

// ArbiterDelay returns the critical-path delay of an n-input arbiter.
// Matrix arbiters resolve in a single wide-AND stage and are slightly
// faster than round-robin arbiters, whose masked/unmasked priority encoders
// add a second logarithmic chain (paper §4.3.1).
func (t Tech) ArbiterDelay(k arbiter.Kind, n int) float64 {
	if n <= 1 {
		return t.LevelDelayNS
	}
	switch k {
	case arbiter.RoundRobin:
		return (2*log2ceil(n) + 5) * t.LevelDelayNS
	case arbiter.Matrix:
		return (log2ceil(n) + 4) * t.LevelDelayNS
	default:
		panic(fmt.Sprintf("costmodel: unknown arbiter kind %v", k))
	}
}

// TreeArbiterGE returns the gate count of a (groups × width)-input tree
// arbiter: one width-input leaf arbiter per group, per-group any-request OR
// reductions, a groups-input root arbiter, and the combining AND stage.
func (t Tech) TreeArbiterGE(k arbiter.Kind, groups, width int) float64 {
	return float64(groups)*t.ArbiterGE(k, width) +
		float64(groups)*t.ORTreeGE(width) +
		t.ArbiterGE(k, groups) +
		float64(groups*width) // combine ANDs
}

// TreeArbiterDelay returns the tree arbiter's critical path: the root
// arbiter consumes per-group OR reductions in parallel with the leaf
// arbiters, followed by one combining level.
func (t Tech) TreeArbiterDelay(k arbiter.Kind, groups, width int) float64 {
	leaf := t.ArbiterDelay(k, width)
	root := t.ORTreeDelay(width) + t.ArbiterDelay(k, groups)
	return math.Max(leaf, root) + t.LevelDelayNS
}

// WavefrontGE returns the gate count of an n-input wavefront allocator
// synthesized with the loop-free diagonal-replication strategy of §2.2: n
// copies of the n×n tile array plus the per-output n:1 selection muxes.
// The cubic growth is what exhausts the synthesis budget at large sizes.
func (t Tech) WavefrontGE(n int) float64 {
	nf := float64(n)
	const tileGE = 5
	return nf*nf*nf*tileGE + // replicated arrays
		nf*nf*nf // n² grant bits × n:1 output muxes (n GE each)
}

// WavefrontDelay returns the wavefront allocator's critical path: the wave
// traverses up to ~2n tiles within the active diagonal's array, plus the
// priority-diagonal fanout and the output mux.
func (t Tech) WavefrontDelay(n int) float64 {
	// The wave propagates through the active diagonal's array with
	// approximately linear delay (§2.2); the effective slope is well below
	// one full logic level per tile because grant kills ripple through
	// single-gate x/y paths.
	wave := (0.8*float64(n) + 6) * t.LevelDelayNS * t.WavefrontTileFactor
	sel := log2ceil(n) * t.LevelDelayNS // output mux selecting the active diagonal's grants
	fan := log2ceil(n) * t.FanoutDelayNS
	return wave + sel + fan
}

// WavefrontCustomGE returns the gate count of a full-custom single-array
// wavefront implementation (combinational loop left intact, n² tiles). Used
// by the ablation comparing the paper's synthesis strategy against a
// full-custom bound (§2.2, [5]).
func (t Tech) WavefrontCustomGE(n int) float64 {
	nf := float64(n)
	const tileGE = 5
	return nf * nf * tileGE
}

// WavefrontCustomDelay returns the full-custom wavefront delay: the wave
// itself, without replication fanout or output muxes.
func (t Tech) WavefrontCustomDelay(n int) float64 {
	return (0.8*float64(n) + 6) * t.LevelDelayNS * t.WavefrontTileFactor
}

// WavefrontUnrolledGE returns the gate count of the loop-free wavefront
// implementation of Hurt et al. [9]: instead of replicating the array per
// priority diagonal, the array is unrolled once (2n-1 diagonals of tiles)
// so the wave never wraps. Area grows quadratically — far cheaper than the
// replicated scheme at large sizes.
func (t Tech) WavefrontUnrolledGE(n int) float64 {
	nf := float64(n)
	const tileGE = 5
	return 2*nf*nf*tileGE + // unrolled (2n-1 diagonal) tile array
		nf*nf // priority-rotation input muxes
}

// WavefrontUnrolledDelay returns the unrolled implementation's critical
// path: the wave traverses up to 2n-1 diagonals of the unrolled array, so
// for the allocator sizes in the paper it is slower than the replicated
// scheme (§2.2: "the implementation described earlier tends to yield lower
// delay for the allocator sizes considered in this paper").
func (t Tech) WavefrontUnrolledDelay(n int) float64 {
	wave := (1.5*float64(n) + 6) * t.LevelDelayNS * t.WavefrontTileFactor
	rot := log2ceil(n) * t.LevelDelayNS // input rotation muxes
	return wave + rot
}

// --- VC allocators (Fig. 3, §4) ---------------------------------------------

// vcGeometry captures the arbiter widths implied by a VC allocator
// configuration: dense allocators handle the full V-wide VC range at every
// stage, sparse allocators shrink each stage per §4.2.
type vcGeometry struct {
	blocks      int // independent allocator blocks (M if sparse, else 1)
	vcsPerBlock int // output VCs handled per block, per port
	inWidth     int // input-stage arbiter width (candidate output VCs)
	outWidth    int // output-stage leaf arbiter width (per-port input VCs)
	reqFanout   int // request wiring fanout per input VC
}

func vcGeom(cfg core.VCAllocConfig) vcGeometry {
	s := cfg.Spec
	v := s.V()
	if !cfg.Sparse {
		return vcGeometry{
			blocks:      1,
			vcsPerBlock: v,
			inWidth:     v,
			outWidth:    v,
			reqFanout:   v,
		}
	}
	// Sparse (§4.2): one block per message class; input arbiters span only
	// successor resource classes × C; output arbiters span only predecessor
	// resource classes × C; requests select whole classes.
	perMsg := s.ResourceClasses * s.VCsPerClass
	return vcGeometry{
		blocks:      s.MessageClasses,
		vcsPerBlock: perMsg,
		inWidth:     s.MaxSuccessorClasses() * s.VCsPerClass,
		outWidth:    s.MaxPredecessorClasses() * s.VCsPerClass,
		reqFanout:   s.MaxSuccessorClasses(),
	}
}

// VCAllocCost estimates delay, area and power for a VC allocator
// configuration (Figs. 5 and 6).
func VCAllocCost(t Tech, cfg core.VCAllocConfig) Estimate {
	if err := cfg.Spec.Validate(); err != nil {
		panic(err)
	}
	if cfg.FreeQueue {
		return freeQueueCost(t, cfg)
	}
	p := cfg.Ports
	g := vcGeom(cfg)
	what := fmt.Sprintf("VC allocator %v P=%d V=%s sparse=%v", cfg.Arch, p, cfg.Spec, cfg.Sparse)

	// Request-generation and grant-reduction glue shared by all
	// architectures (Fig. 3): per input VC, candidate decode over the
	// request fanout plus the V-wide (dense) or class-wide (sparse) grant
	// reduction back to a V-vector.
	inputVCs := float64(p * cfg.Spec.V())
	glueGE := inputVCs * (float64(g.inWidth) + float64(g.reqFanout)*2)
	glueDelay := 3 * t.LevelDelayNS
	// Request broadcast fanout: each input VC's request reaches the output
	// logic of every output VC in its block.
	fanDelay := log2ceil(p*g.vcsPerBlock) * t.FanoutDelayNS

	switch cfg.Arch {
	case alloc.SepIF:
		inGE := inputVCs * t.ArbiterGE(cfg.ArbKind, g.inWidth)
		outGE := float64(g.blocks) * float64(p*g.vcsPerBlock) *
			t.TreeArbiterGE(cfg.ArbKind, p, g.outWidth)
		delay := t.ArbiterDelay(cfg.ArbKind, g.inWidth) +
			t.TreeArbiterDelay(cfg.ArbKind, p, g.outWidth) +
			glueDelay + fanDelay
		return t.finish(inGE+outGE+glueGE, delay, what,
			Component{Name: "input arbiters", GE: inGE, OnCriticalPath: true},
			Component{Name: "output tree arbiters", GE: outGE, OnCriticalPath: true},
			Component{Name: "request/grant glue", GE: glueGE, OnCriticalPath: true})

	case alloc.SepOF:
		// Output-first broadcasts all candidate requests, needing wider
		// request wiring, then adds the final input-stage arbitration after
		// grant grouping (Fig. 3b).
		inGE := inputVCs * t.ArbiterGE(cfg.ArbKind, g.inWidth)
		outGE := float64(g.blocks) * float64(p*g.vcsPerBlock) *
			t.TreeArbiterGE(cfg.ArbKind, p, g.outWidth)
		bcastGE := inputVCs * float64(g.inWidth) // eager request broadcast
		delay := t.TreeArbiterDelay(cfg.ArbKind, p, g.outWidth) +
			t.LevelDelayNS + // grant grouping
			t.ArbiterDelay(cfg.ArbKind, g.inWidth) +
			glueDelay + fanDelay
		return t.finish(inGE+outGE+glueGE+bcastGE, delay, what,
			Component{Name: "output tree arbiters", GE: outGE, OnCriticalPath: true},
			Component{Name: "input arbiters", GE: inGE, OnCriticalPath: true},
			Component{Name: "request broadcast", GE: bcastGE, OnCriticalPath: false},
			Component{Name: "request/grant glue", GE: glueGE, OnCriticalPath: true})

	case alloc.Wavefront:
		// One (p·vcsPerBlock)-input wavefront block per message class, with
		// sep_of-style request generation and sep_if-style grant reduction
		// (Fig. 3c).
		// The wavefront block's request generation and grant reduction are
		// single OR/AND levels folded around the array, cheaper than the
		// separable allocators' multi-stage glue.
		n := p * g.vcsPerBlock
		wfGE := float64(g.blocks) * t.WavefrontGE(n)
		delay := t.WavefrontDelay(n) + t.LevelDelayNS
		return t.finish(wfGE+glueGE, delay, what,
			Component{Name: "wavefront arrays", GE: wfGE, OnCriticalPath: true},
			Component{Name: "request/grant glue", GE: glueGE, OnCriticalPath: false})

	default:
		panic(fmt.Sprintf("costmodel: unsupported VC allocator arch %v", cfg.Arch))
	}
}

// freeQueueCost estimates the free-VC-queue scheme of Mullins et al. [15]:
// one (P·V)-input tree arbiter and one small FIFO per (port, class), and no
// input-side arbitration stage at all — the delay win that motivates the
// scheme, paid for with the one-grant-per-class quality limit.
func freeQueueCost(t Tech, cfg core.VCAllocConfig) Estimate {
	s := cfg.Spec
	p, v := cfg.Ports, s.V()
	classes := s.Classes()
	what := fmt.Sprintf("free-queue VC allocator P=%d V=%s", p, s)

	perQueue := t.TreeArbiterGE(cfg.ArbKind, p, v) + // requester arbitration
		float64(s.VCsPerClass)*8 + // VC-id FIFO registers
		float64(s.VCsPerClass) // head mux
	glueGE := float64(p*v) * 2 // request decode / grant fanin
	ge := float64(p*classes)*perQueue + glueGE

	delay := t.TreeArbiterDelay(cfg.ArbKind, p, v) +
		t.LevelDelayNS + // queue-head select
		log2ceil(p*v)*t.FanoutDelayNS
	return t.finish(ge, delay, what)
}

// --- Switch allocators (Figs. 8 and 9, §5) ----------------------------------

// switchBaseCost returns the non-speculative switch allocator cost
// components (GE and delay) for one allocation datapath.
func switchBaseCost(t Tech, cfg core.SwitchAllocConfig) (ge, delay float64) {
	p, v := cfg.Ports, cfg.VCs
	pf, vf := float64(p), float64(v)
	switch cfg.Arch {
	case alloc.SepIF:
		// Fig. 8(a): V-input arbiter per input port, P-input arbiter per
		// output port; output arbiters drive the crossbar directly.
		ge = pf*t.ArbiterGE(cfg.ArbKind, v) +
			pf*t.ArbiterGE(cfg.ArbKind, p) +
			pf*vf // request muxing
		delay = t.ArbiterDelay(cfg.ArbKind, v) +
			t.ArbiterDelay(cfg.ArbKind, p) +
			t.LevelDelayNS
	case alloc.SepOF:
		// Fig. 8(b): per-(input, output) request OR-combining, P-input
		// output arbiters, V-input VC arbiters, and crossbar controls
		// generated from the winning VC's port select.
		ge = pf*pf*t.ORTreeGE(v) +
			pf*t.ArbiterGE(cfg.ArbKind, p) +
			pf*t.ArbiterGE(cfg.ArbKind, v) +
			pf*vf + // grant gating per VC
			pf*pf*2 // crossbar control muxes
		delay = t.ORTreeDelay(v) +
			t.ArbiterDelay(cfg.ArbKind, p) +
			t.LevelDelayNS + // grant grouping
			t.ArbiterDelay(cfg.ArbKind, v) +
			2*t.LevelDelayNS // port-select to crossbar controls
	case alloc.Wavefront:
		// Fig. 8(c): request combining, P×P wavefront block driving the
		// crossbar directly, VC pre-selection arbiters in parallel.
		ge = pf*pf*t.ORTreeGE(v) +
			t.WavefrontGE(p) +
			pf*t.ArbiterGE(arbiter.RoundRobin, v) + // parallel pre-selection
			pf*vf
		delay = t.ORTreeDelay(v) +
			t.WavefrontDelay(p) +
			t.LevelDelayNS
	default:
		panic(fmt.Sprintf("costmodel: unsupported switch allocator arch %v", cfg.Arch))
	}
	return ge, delay
}

// SwitchAllocCost estimates delay, area and power for a switch allocator
// configuration including its speculation scheme (Figs. 10 and 11; the
// three points per curve in the paper are SpecNone, SpecReq, SpecGnt).
func SwitchAllocCost(t Tech, cfg core.SwitchAllocConfig) Estimate {
	p := float64(cfg.Ports)
	baseGE, baseDelay := switchBaseCost(t, cfg)
	what := fmt.Sprintf("switch allocator %v P=%d V=%d %v", cfg.Arch, cfg.Ports, cfg.VCs, cfg.SpecMode)

	switch cfg.SpecMode {
	case core.SpecNone:
		return t.finish(baseGE, baseDelay, what)
	case core.SpecGnt:
		// Fig. 9(a): duplicate allocator plus 2P P-input grant-reduction
		// ORs, NOR and AND masking — reductions and masking sit on the
		// critical path after the non-speculative allocator.
		maskGE := 2*p*t.ORTreeGE(cfg.Ports) + 2*p + p*p
		delay := baseDelay + t.ORTreeDelay(cfg.Ports) + 2*t.LevelDelayNS
		return t.finish(2*baseGE+maskGE, delay, what)
	case core.SpecReq:
		// Fig. 9(b): the pessimistic scheme masks on requests, whose
		// reductions are computed in parallel with allocation; only the
		// final AND stage remains on the critical path.
		maskGE := 2*p*t.ORTreeGE(cfg.Ports) + p*p
		delay := baseDelay + t.LevelDelayNS
		return t.finish(2*baseGE+maskGE, delay, what)
	default:
		panic(fmt.Sprintf("costmodel: unknown spec mode %v", cfg.SpecMode))
	}
}

// Combine merges per-block estimates into a router-level allocator
// estimate. The blocks (VC allocator, switch allocator) are physically
// separate units operating in parallel pipeline stages, so the combined
// minimum cycle time is the slowest block's delay, while area, power and
// netlist size are additive. The combination synthesizes only if every
// block does; the first failure's reason is reported.
func Combine(parts ...Estimate) Estimate {
	var out Estimate
	out.Synthesized = true
	for _, p := range parts {
		if !p.Synthesized {
			return Estimate{Synthesized: false, FailReason: p.FailReason}
		}
		out.DelayNS = math.Max(out.DelayNS, p.DelayNS)
		out.AreaUM2 += p.AreaUM2
		out.GateEquivalents += p.GateEquivalents
		out.Components = append(out.Components, p.Components...)
	}
	// Power is activity-weighted energy over the combined cycle time, not
	// the sum of per-block powers at their own (shorter) cycle times.
	for _, p := range parts {
		if out.DelayNS > 0 {
			out.PowerMW += p.PowerMW * p.DelayNS / out.DelayNS
		}
	}
	return out
}

// PrecomputedValidationDelay returns the critical-path delay of a
// pre-computed switch allocator's in-cycle logic (Mullins et al. [15]): the
// allocator itself runs a cycle ahead, leaving only the per-grant request
// validation (compare + AND) on the path.
func (t Tech) PrecomputedValidationDelay(p, v int) float64 {
	return (log2ceil(v) + 2) * t.LevelDelayNS
}

// PrecomputedExtraGE returns the additional area of pre-computation: a
// register stage holding the previous cycle's P·V requests plus the
// validation comparators.
func (t Tech) PrecomputedExtraGE(p, v int) float64 {
	pv := float64(p * v)
	return pv*6 /* request registers */ + float64(p)*4 /* validators */
}
