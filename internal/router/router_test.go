package router

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// staticRoute sends every packet to a fixed output port with class 0.
type staticRoute struct{ port int }

func (s staticRoute) Name() string                                                            { return "static" }
func (s staticRoute) ResourceClasses() int                                                    { return 1 }
func (s staticRoute) Inject(int, *routing.PacketRoute, routing.QueueEstimator, *xrand.Source) {}
func (s staticRoute) NextHop(int, *routing.PacketRoute) (int, int)                            { return s.port, 0 }

func testConfig(mode core.SpecMode) Config {
	return Config{
		ID:       0,
		Ports:    4,
		Spec:     core.NewVCSpec(2, 1, 2),
		BufDepth: 8,
		Routing:  staticRoute{port: 3},
		VA:       core.VCAllocConfig{Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin},
		SA:       core.SwitchAllocConfig{Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin, SpecMode: mode},
	}
}

func mkPacket(id int64, typ traffic.PacketType, dst int) *Packet {
	return &Packet{ID: id, Type: typ, Src: 0, Dst: dst, Size: typ.Flits(),
		Route: routing.PacketRoute{DestTerminal: dst, Intermediate: -1}}
}

func TestMakeFlits(t *testing.T) {
	p := mkPacket(1, traffic.WriteRequest, 3)
	fs := MakeFlits(p)
	if len(fs) != 5 {
		t.Fatalf("flits = %d, want 5", len(fs))
	}
	if !fs[0].Head || fs[0].Tail {
		t.Error("first flit must be head only")
	}
	if fs[4].Head || !fs[4].Tail {
		t.Error("last flit must be tail only")
	}
	for i, f := range fs {
		if f.Seq != i || f.Pkt != p {
			t.Error("bad flit linkage")
		}
	}
	single := MakeFlits(mkPacket(2, traffic.ReadRequest, 3))
	if len(single) != 1 || !single[0].Head || !single[0].Tail {
		t.Error("single-flit packet must be head and tail")
	}
}

func TestSpeculativeHeadDepartsInOneCycle(t *testing.T) {
	r := New(testConfig(core.SpecReq))
	f := MakeFlits(mkPacket(1, traffic.ReadRequest, 0))[0]
	r.AcceptFlit(0, 0, f)
	deps, credits := r.Step()
	if len(deps) != 1 {
		t.Fatalf("speculative head should depart in the first cycle, got %d departures", len(deps))
	}
	d := deps[0]
	if d.OutPort != 3 || d.Flit != f {
		t.Fatalf("bad departure %+v", d)
	}
	// Message class 0 (request) must map to a class-0 output VC.
	if m, _, _ := r.cfg.Spec.Decompose(d.OutVC); m != 0 {
		t.Fatalf("request granted reply-class VC %d", d.OutVC)
	}
	if len(credits) != 1 || credits[0].InPort != 0 || credits[0].InVC != 0 {
		t.Fatalf("bad credit %+v", credits)
	}
	// Single-flit packet: both VCs free again.
	if !r.OutputVCFree(3, d.OutVC) {
		t.Error("output VC not freed after tail departure")
	}
}

func TestNonSpeculativeHeadTakesTwoCycles(t *testing.T) {
	r := New(testConfig(core.SpecNone))
	f := MakeFlits(mkPacket(1, traffic.ReadRequest, 0))[0]
	r.AcceptFlit(0, 0, f)
	deps, _ := r.Step()
	if len(deps) != 0 {
		t.Fatal("nonspec head must wait a cycle for VC allocation")
	}
	deps, _ = r.Step()
	if len(deps) != 1 {
		t.Fatal("nonspec head should depart in the second cycle")
	}
}

func TestMultiFlitPacketStreams(t *testing.T) {
	r := New(testConfig(core.SpecReq))
	fs := MakeFlits(mkPacket(1, traffic.WriteRequest, 0))
	for _, f := range fs {
		r.AcceptFlit(0, 0, f)
	}
	var got []*Flit
	for cycle := 0; cycle < 6; cycle++ {
		deps, _ := r.Step()
		for _, d := range deps {
			got = append(got, d.Flit)
		}
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d flits, want 5", len(got))
	}
	for i, f := range got {
		if f.Seq != i {
			t.Fatalf("out-of-order delivery: %d at position %d", f.Seq, i)
		}
	}
}

func TestCreditExhaustionBlocks(t *testing.T) {
	cfg := testConfig(core.SpecReq)
	cfg.BufDepth = 2
	r := New(cfg)
	fs := MakeFlits(mkPacket(1, traffic.WriteRequest, 0))
	r.AcceptFlit(0, 0, fs[0])
	r.AcceptFlit(0, 0, fs[1])
	n := 0
	for cycle := 0; cycle < 4; cycle++ {
		deps, _ := r.Step()
		n += len(deps)
	}
	if n != 2 {
		t.Fatalf("only 2 credits available downstream, but %d flits departed", n)
	}
	// Returning credits unblocks the stream.
	r.AcceptFlit(0, 0, fs[2])
	dep0, _ := r.Step()
	if len(dep0) != 0 {
		t.Fatal("no credits: flit must stall")
	}
	r.AcceptCredit(3, 0) // the packet's out VC is (3, 0) for class 0
	deps, _ := r.Step()
	if len(deps) != 1 {
		t.Fatalf("credit return should release one flit, got %d", len(deps))
	}
}

func TestOutputVCHeldUntilTail(t *testing.T) {
	r := New(testConfig(core.SpecReq))
	fs := MakeFlits(mkPacket(1, traffic.WriteRequest, 0))
	r.AcceptFlit(0, 0, fs[0])
	deps, _ := r.Step()
	if len(deps) != 1 {
		t.Fatal("head should depart")
	}
	ovc := deps[0].OutVC
	if r.OutputVCFree(3, ovc) {
		t.Fatal("output VC must stay allocated until the tail departs")
	}
	for _, f := range fs[1:] {
		r.AcceptFlit(0, 0, f)
	}
	for cycle := 0; cycle < 6; cycle++ {
		r.Step()
	}
	if !r.OutputVCFree(3, ovc) {
		t.Fatal("output VC not freed after tail")
	}
}

func TestTwoPacketsShareOutputPortViaDistinctVCs(t *testing.T) {
	r := New(testConfig(core.SpecReq))
	a := MakeFlits(mkPacket(1, traffic.WriteRequest, 0))
	b := MakeFlits(mkPacket(2, traffic.WriteRequest, 0))
	for _, f := range a {
		r.AcceptFlit(0, 0, f)
	}
	for _, f := range b {
		r.AcceptFlit(1, 0, f)
	}
	seen := map[int64]int{}
	vcs := map[int64]int{}
	for cycle := 0; cycle < 15; cycle++ {
		deps, _ := r.Step()
		for _, d := range deps {
			seen[d.Flit.Pkt.ID]++
			if prev, ok := vcs[d.Flit.Pkt.ID]; ok && prev != d.OutVC {
				t.Fatal("packet switched output VC mid-flight")
			}
			vcs[d.Flit.Pkt.ID] = d.OutVC
		}
	}
	if seen[1] != 5 || seen[2] != 5 {
		t.Fatalf("delivery counts %v, want 5 each", seen)
	}
	if vcs[1] == vcs[2] {
		t.Fatal("concurrent packets must occupy distinct output VCs")
	}
}

func TestVCExhaustionSerializesPackets(t *testing.T) {
	// Class 0 has 1 VC in a 2x1x1 spec: two packets to the same output
	// must serialize on the single output VC.
	cfg := testConfig(core.SpecReq)
	cfg.Spec = core.NewVCSpec(2, 1, 1)
	r := New(cfg)
	a := MakeFlits(mkPacket(1, traffic.WriteRequest, 0))
	b := MakeFlits(mkPacket(2, traffic.WriteRequest, 0))
	for _, f := range a {
		r.AcceptFlit(0, 0, f)
	}
	for _, f := range b {
		r.AcceptFlit(1, 0, f)
	}
	var order []int64
	for cycle := 0; cycle < 20; cycle++ {
		deps, _ := r.Step()
		for _, d := range deps {
			order = append(order, d.Flit.Pkt.ID)
			// Instant downstream consumption: return the credit so the
			// stream is limited by VC serialization only.
			r.AcceptCredit(d.OutPort, d.OutVC)
		}
	}
	if len(order) != 10 {
		t.Fatalf("delivered %d flits, want 10", len(order))
	}
	// All five flits of the first packet must precede the second's.
	first := order[0]
	for i := 0; i < 5; i++ {
		if order[i] != first {
			t.Fatalf("packets interleaved on a single VC: %v", order)
		}
	}
}

func TestMessageClassSeparation(t *testing.T) {
	// Requests and replies must use disjoint VC classes end to end.
	r := New(testConfig(core.SpecReq))
	req := MakeFlits(mkPacket(1, traffic.ReadRequest, 0))[0]
	rep := MakeFlits(mkPacket(2, traffic.ReadReply, 0))[0]
	r.AcceptFlit(0, 0, req) // class-0 input VC
	r.AcceptFlit(0, 2, rep) // class-1 input VC (V=4: VCs 2,3 are class 1)
	deps := []Departure{}
	for cycle := 0; cycle < 3; cycle++ {
		d, _ := r.Step()
		deps = append(deps, d...)
	}
	if len(deps) != 2 {
		t.Fatalf("both flits should depart, got %d", len(deps))
	}
	for _, d := range deps {
		m, _, _ := r.cfg.Spec.Decompose(d.OutVC)
		if m != d.Flit.Pkt.Type.MessageClass() {
			t.Fatalf("%v granted class-%d VC", d.Flit.Pkt.Type, m)
		}
	}
}

func TestBufferOverflowPanics(t *testing.T) {
	cfg := testConfig(core.SpecNone)
	cfg.BufDepth = 2
	cfg.Routing = staticRoute{port: 2}
	r := New(cfg)
	fs := MakeFlits(mkPacket(1, traffic.WriteRequest, 0))
	r.AcceptFlit(0, 0, fs[0])
	r.AcceptFlit(0, 0, fs[1])
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	r.AcceptFlit(0, 0, fs[2])
}

func TestCreditOverflowPanics(t *testing.T) {
	r := New(testConfig(core.SpecNone))
	defer func() {
		if recover() == nil {
			t.Fatal("expected credit overflow panic")
		}
	}()
	r.AcceptCredit(3, 0) // already at BufDepth
}

func TestBadConfigPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(Config{Ports: 0, BufDepth: 8, Spec: core.NewVCSpec(2, 1, 1), Routing: staticRoute{}}) },
		func() { New(Config{Ports: 4, BufDepth: 0, Spec: core.NewVCSpec(2, 1, 1), Routing: staticRoute{}}) },
		func() { New(Config{Ports: 4, BufDepth: 8, Spec: core.VCSpec{}, Routing: staticRoute{}}) },
		func() { New(Config{Ports: 4, BufDepth: 8, Spec: core.NewVCSpec(2, 1, 1)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestOccupancyTracking(t *testing.T) {
	r := New(testConfig(core.SpecNone))
	if r.OutputOccupancy(3) != 0 {
		t.Fatal("fresh router should report zero occupancy")
	}
	fs := MakeFlits(mkPacket(1, traffic.WriteRequest, 0))
	for _, f := range fs {
		r.AcceptFlit(0, 0, f)
	}
	if r.InputOccupancy(0, 0) != 5 {
		t.Fatalf("input occupancy %d, want 5", r.InputOccupancy(0, 0))
	}
	for cycle := 0; cycle < 7; cycle++ {
		r.Step()
	}
	// All 5 flits departed and consumed downstream credits.
	if got := r.OutputOccupancy(3); got != 5 {
		t.Fatalf("output occupancy %d, want 5", got)
	}
}

func TestAllArchitecturesMoveTraffic(t *testing.T) {
	for _, va := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		for _, sa := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
			for _, mode := range []core.SpecMode{core.SpecNone, core.SpecGnt, core.SpecReq} {
				cfg := testConfig(mode)
				cfg.VA.Arch = va
				cfg.SA.Arch = sa
				r := New(cfg)
				f := MakeFlits(mkPacket(1, traffic.ReadRequest, 0))[0]
				r.AcceptFlit(0, 0, f)
				delivered := false
				for cycle := 0; cycle < 5; cycle++ {
					deps, _ := r.Step()
					if len(deps) == 1 && deps[0].Flit == f {
						delivered = true
					}
				}
				if !delivered {
					t.Errorf("va=%v sa=%v mode=%v: flit stuck", va, sa, mode)
				}
			}
		}
	}
}

func TestSpeculativeGrantNeedsCreditSameCycle(t *testing.T) {
	// A head flit that wins both VA and speculative SA in the same cycle
	// still stalls when the freshly assigned output VC has no credit; the
	// crossbar slot is wasted and counted as a misspeculation.
	cfg := testConfig(core.SpecReq)
	cfg.Spec = core.NewVCSpec(2, 1, 1) // one VC per class
	r := New(cfg)
	// Exhaust the class-0 output VC's credits at port 3 with a first
	// packet (5 flits of an 8-deep buffer, then let it finish... simpler:
	// drain all 8 credits with two packets back to back).
	a := MakeFlits(mkPacket(1, traffic.WriteRequest, 0))
	for _, f := range a {
		r.AcceptFlit(0, 0, f)
	}
	b := MakeFlits(mkPacket(2, traffic.ReadRequest, 0))
	for cycle := 0; cycle < 6; cycle++ {
		r.Step() // packet 1 streams out, consuming 5 credits
	}
	// Consume the remaining 3 credits with another 5-flit packet; its last
	// two flits stall inside.
	c := MakeFlits(mkPacket(3, traffic.WriteRequest, 0))
	for _, f := range c {
		r.AcceptFlit(1, 0, f)
	}
	for cycle := 0; cycle < 6; cycle++ {
		r.Step()
	}
	if r.OutputOccupancy(3) != 8 {
		t.Fatalf("setup failed: %d credits consumed, want 8", r.OutputOccupancy(3))
	}
	// Packet 3's tail hasn't left, so the output VC is still allocated and
	// packet 2 cannot even win VA. Finish packet 3 by returning credits.
	for i := 0; i < 2; i++ {
		r.AcceptCredit(3, 0)
		r.Step()
	}
	// Now the VC frees but zero credits remain outstanding... return none
	// and inject packet 2: VA can grant (VC free is what matters), but the
	// speculative switch grant must be wasted for lack of credit.
	r.AcceptFlit(2, 0, b[0])
	before := r.Stats().Misspeculations
	deps, _ := r.Step()
	if len(deps) != 0 {
		t.Fatalf("flit departed without credit: %+v", deps)
	}
	if r.Stats().Misspeculations != before+1 {
		t.Fatalf("credit-starved speculation not counted: %d -> %d",
			before, r.Stats().Misspeculations)
	}
	// Returning a credit releases it as a non-speculative flit.
	r.AcceptCredit(3, 0)
	deps, _ = r.Step()
	if len(deps) != 1 || deps[0].Flit != b[0] {
		t.Fatalf("flit not released after credit return: %+v", deps)
	}
}

func TestBackToBackPacketsOnOneInputVC(t *testing.T) {
	// The input VC FIFO may hold the tail of one packet and the head of
	// the next; the router must route and allocate for the second packet
	// after the first completes.
	r := New(testConfig(core.SpecReq))
	a := MakeFlits(mkPacket(1, traffic.ReadRequest, 0))
	b := MakeFlits(mkPacket(2, traffic.ReadRequest, 0))
	r.AcceptFlit(0, 0, a[0])
	r.AcceptFlit(0, 0, b[0])
	var got []int64
	for cycle := 0; cycle < 5; cycle++ {
		deps, _ := r.Step()
		for _, d := range deps {
			got = append(got, d.Flit.Pkt.ID)
		}
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("back-to-back packets mishandled: %v", got)
	}
}

func TestRouterStatsAccumulate(t *testing.T) {
	r := New(testConfig(core.SpecReq))
	fs := MakeFlits(mkPacket(1, traffic.WriteRequest, 0))
	for _, f := range fs {
		r.AcceptFlit(0, 0, f)
	}
	for cycle := 0; cycle < 7; cycle++ {
		r.Step()
	}
	s := r.Stats()
	if s.FlitsRouted != 5 {
		t.Fatalf("FlitsRouted = %d, want 5", s.FlitsRouted)
	}
	if s.SpecGrantsUsed != 1 {
		t.Fatalf("SpecGrantsUsed = %d, want 1 (the head's bypass)", s.SpecGrantsUsed)
	}
}

func TestValidateModeCleanOnHealthyRouter(t *testing.T) {
	cfg := testConfig(core.SpecReq)
	cfg.Validate = true
	r := New(cfg)
	rng := xrand.New(881)
	nextID := int64(1)
	for cycle := 0; cycle < 300; cycle++ {
		// Random injection into free input VCs.
		for port := 0; port < 4; port++ {
			for vc := 0; vc < 4; vc++ {
				if r.InputOccupancy(port, vc) == 0 && rng.Bool(0.2) {
					p := mkPacket(nextID, traffic.ReadRequest, 0)
					nextID++
					r.AcceptFlit(port, vc, MakeFlits(p)[0])
				}
			}
		}
		deps, _ := r.Step()
		for _, d := range deps {
			r.AcceptCredit(d.OutPort, d.OutVC)
		}
	}
}
