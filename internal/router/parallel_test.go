package router

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// TestRoutersStepConcurrently certifies the concurrency contract documented
// on Step: distinct Router instances built from the same Spec and Routing
// share no mutable state, so a fleet of routers may be stepped in parallel
// within a cycle. Run under `go test -race` (CI does) this catches any
// shared allocator, arbiter or class-mask state; the per-router departure
// tallies double as a determinism check against a serial replay.
func TestRoutersStepConcurrently(t *testing.T) {
	const routers = 8
	const cycles = 40

	build := func() []*Router {
		rs := make([]*Router, routers)
		base := testConfig(core.SpecReq)
		base.Validate = true
		for i := range rs {
			cfg := base // same Spec value, same Routing instance
			cfg.ID = i
			rs[i] = New(cfg)
			// Stagger each router's traffic so the fleets aren't trivially
			// identical: i+1 single-flit packets on distinct input VCs.
			for p := 0; p <= i%2; p++ {
				f := MakeFlits(mkPacket(int64(i*10+p+1), traffic.ReadRequest, 0))[0]
				rs[i].AcceptFlit(p, 0, f)
			}
		}
		return rs
	}

	run := func(rs []*Router, parallel bool) []int64 {
		deps := make([]int64, len(rs))
		for c := 0; c < cycles; c++ {
			if parallel {
				var wg sync.WaitGroup
				for i, r := range rs {
					wg.Add(1)
					go func(i int, r *Router) {
						defer wg.Done()
						d, _ := r.Step()
						deps[i] += int64(len(d))
					}(i, r)
				}
				wg.Wait()
			} else {
				for i, r := range rs {
					d, _ := r.Step()
					deps[i] += int64(len(d))
				}
			}
		}
		return deps
	}

	parallel := run(build(), true)
	serial := run(build(), false)
	moved := false
	for i := range parallel {
		if parallel[i] != serial[i] {
			t.Fatalf("router %d: parallel stepping saw %d departures, serial %d", i, parallel[i], serial[i])
		}
		moved = moved || parallel[i] > 0
	}
	if !moved {
		t.Fatal("no departures anywhere; test exercised nothing")
	}
}
