package router

import (
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// Router microbenchmarks for the change-driven request schedule. Each
// benchmark runs at two operating points — low load (a single trickling VC,
// the regime where the dirty mask skips nearly everything) and saturation
// (every input VC backed up behind one output port, the regime where the
// masked allocators earn their keep) — and under both schedules, so the
// dirty-vs-dense cost ratio is tracked directly alongside the JSON
// snapshots. All benchmarks report allocations: the steady-state router
// cycle must stay heap-free (see TestStepSteadyStateZeroAlloc).

// benchFeeder recycles a fixed set of single-flit packets through the
// router so the measured loop performs no packet construction of its own.
type benchFeeder struct {
	r     *Router
	flits []*Flit
	next  int
	ports int // input ports fed each cycle (1 = low load, all = saturation)
}

func newBenchFeeder(r *Router, ports int) *benchFeeder {
	f := &benchFeeder{r: r, ports: ports}
	for i := 0; i < 32; i++ {
		f.flits = append(f.flits, MakeFlits(mkPacket(int64(i), traffic.ReadRequest, 0))[0])
	}
	return f
}

// feed tops up the fed input ports; at saturation every port's VC 0 stays
// backed up behind the single routed output, at low load port 0 trickles.
func (f *benchFeeder) feed() {
	for port := 0; port < f.ports; port++ {
		if f.r.InputOccupancy(port, 0) < 4 {
			f.r.AcceptFlit(port, 0, f.flits[f.next%len(f.flits)])
			f.next++
		}
	}
}

// cycle runs one full accept/Step/credit-return round.
func (f *benchFeeder) cycle() {
	f.feed()
	deps, _ := f.r.Step()
	for _, d := range deps {
		f.r.AcceptCredit(d.OutPort, d.OutVC)
	}
}

func benchStep(b *testing.B, fedPorts int, dense bool) {
	cfg := testConfig(core.SpecReq)
	cfg.DenseRequests = dense
	r := New(cfg)
	f := newBenchFeeder(r, fedPorts)
	for i := 0; i < 200; i++ { // reach steady state first
		f.cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.cycle()
	}
}

func BenchmarkStepLowLoadDirty(b *testing.B)    { benchStep(b, 1, false) }
func BenchmarkStepLowLoadDense(b *testing.B)    { benchStep(b, 1, true) }
func BenchmarkStepSaturationDirty(b *testing.B) { benchStep(b, 4, false) }
func BenchmarkStepSaturationDense(b *testing.B) { benchStep(b, 4, true) }

// benchBuildRequests isolates the request-assembly phase. Under the dirty
// schedule the benchmark re-marks the fed VCs every iteration (the mask a
// flit arrival would set); under DenseRequests every entry is rebuilt, which
// is exactly what the change-driven schedule avoids.
func benchBuildRequests(b *testing.B, fedPorts int, dense bool) {
	cfg := testConfig(core.SpecReq)
	cfg.DenseRequests = dense
	r := New(cfg)
	f := newBenchFeeder(r, fedPorts)
	for i := 0; i < 200; i++ {
		f.cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !dense {
			for port := 0; port < fedPorts; port++ {
				r.dirty.Set(port * r.v)
			}
		}
		r.buildRequests()
	}
	b.StopTimer()
	r.dirty.Reset() // leave the router consistent for any follow-on use
}

func BenchmarkBuildRequestsLowLoadDirty(b *testing.B)    { benchBuildRequests(b, 1, false) }
func BenchmarkBuildRequestsLowLoadDense(b *testing.B)    { benchBuildRequests(b, 1, true) }
func BenchmarkBuildRequestsSaturationDirty(b *testing.B) { benchBuildRequests(b, 4, false) }
func BenchmarkBuildRequestsSaturationDense(b *testing.B) { benchBuildRequests(b, 4, true) }

// benchCommitSA times only the switch-traversal commit: the accept, request
// build, allocation and VA commit phases run with the timer stopped, then
// the timer covers the commitSA call that pops winning flits, emits
// departures and credits, and marks next-cycle dirty bits.
func benchCommitSA(b *testing.B, fedPorts int) {
	r := New(testConfig(core.SpecReq))
	f := newBenchFeeder(r, fedPorts)
	for i := 0; i < 200; i++ {
		f.cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f.feed()
		r.deps = r.deps[:0]
		r.credits = r.credits[:0]
		r.buildRequests()
		copy(r.vaGranted, r.vaMasked(r.vaReqs, r.dirty))
		saGrants := r.saMasked(r.saReqs, r.dirty)
		r.dirty.Reset()
		r.commitVA()
		b.StartTimer()
		r.commitSA(saGrants)
		b.StopTimer()
		for _, d := range r.deps {
			r.AcceptCredit(d.OutPort, d.OutVC)
		}
		b.StartTimer()
	}
}

func BenchmarkCommitSALowLoad(b *testing.B)    { benchCommitSA(b, 1) }
func BenchmarkCommitSASaturation(b *testing.B) { benchCommitSA(b, 4) }
