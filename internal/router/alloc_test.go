package router

import (
	"testing"

	"repro/internal/core"
	"repro/internal/traffic"
)

// TestStepSteadyStateZeroAlloc locks in the zero-allocation steady state:
// once warmed up, a router cycle (accept, Step, credit return) must not touch
// the heap, so simulation throughput is not GC-bound. Both request schedules
// are covered: the default change-driven path (dirty masks, cached request
// vectors) and the DenseRequests reference rebuild.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	for _, mode := range []core.SpecMode{core.SpecNone, core.SpecReq, core.SpecGnt} {
		for _, dense := range []bool{false, true} {
			name := mode.String() + "/dirty"
			if dense {
				name = mode.String() + "/denserequests"
			}
			t.Run(name, func(t *testing.T) {
				cfg := testConfig(mode)
				cfg.DenseRequests = dense
				r := New(cfg)
				// Pre-built single-flit packets, recycled through the router so
				// the measured loop performs no packet construction of its own.
				flits := make([]*Flit, 16)
				for i := range flits {
					flits[i] = MakeFlits(mkPacket(int64(i), traffic.ReadRequest, 0))[0]
				}
				next := 0
				cycle := func() {
					if r.InputOccupancy(0, 0) < 4 {
						r.AcceptFlit(0, 0, flits[next%len(flits)])
						next++
					}
					deps, _ := r.Step()
					for _, d := range deps {
						r.AcceptCredit(d.OutPort, d.OutVC)
					}
				}
				for i := 0; i < 100; i++ { // reach steady state first
					cycle()
				}
				if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
					t.Fatalf("steady-state router cycle allocates %.2f times, want 0", avg)
				}
			})
		}
	}
}
