// Package router implements the input-queued virtual-channel router
// microarchitecture of Becker & Dally (SC '09) §3.2: a two-stage pipeline in
// which VC allocation and switch allocation happen in the first stage
// (optionally with speculative switch allocation so head flits bypass a
// dedicated VA stage) and switch traversal in the second, with lookahead
// routing keeping route computation off the critical path, credit-based
// flow control, and statically partitioned input buffers.
package router

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Packet is a multi-flit network packet.
type Packet struct {
	// ID is a globally unique packet identifier.
	ID int64
	// Type determines size and message class.
	Type traffic.PacketType
	// Src and Dst are terminal indices.
	Src, Dst int
	// Size is the flit count.
	Size int
	// CreatedAt is the cycle the packet entered its source queue.
	CreatedAt int64
	// Route is the packet's routing state (destination, UGAL phase).
	Route routing.PacketRoute
	// Hops counts the routers the packet's head flit has traversed.
	Hops int
}

// Flit is one flow-control unit of a packet.
type Flit struct {
	// Pkt is the owning packet.
	Pkt *Packet
	// Seq is the flit's position within the packet.
	Seq int
	// Head and Tail mark the first and last flits (both set for
	// single-flit packets).
	Head, Tail bool
}

// MakeFlits expands a packet into its flits.
func MakeFlits(p *Packet) []*Flit {
	fs := make([]*Flit, p.Size)
	for i := range fs {
		fs[i] = &Flit{Pkt: p, Seq: i, Head: i == 0, Tail: i == p.Size-1}
	}
	return fs
}

// Departure reports a flit that won switch traversal this cycle.
type Departure struct {
	// OutPort and OutVC identify the output the flit leaves through.
	OutPort, OutVC int
	// Flit is the departing flit.
	Flit *Flit
}

// Credit reports a freed input buffer slot to be returned upstream.
type Credit struct {
	// InPort and InVC identify the input VC that released a slot.
	InPort, InVC int
}

// Config parameterizes a router.
type Config struct {
	// ID is the router's index in the network.
	ID int
	// Ports is the radix P.
	Ports int
	// Spec is the VC organization.
	Spec core.VCSpec
	// BufDepth is the statically partitioned per-VC input buffer depth in
	// flits (the paper uses 8).
	BufDepth int
	// Routing supplies lookahead route decisions.
	Routing routing.Function
	// VA configures the VC allocator (Ports and Spec are overridden).
	VA core.VCAllocConfig
	// SA configures the switch allocator (Ports and VCs are overridden);
	// SA.SpecMode selects the speculation scheme.
	SA core.SwitchAllocConfig
	// Trace, when non-nil, receives pipeline events (route computation,
	// VA/SA grants, misspeculations).
	Trace trace.Recorder
	// Validate enables per-cycle allocation checking: every VC and switch
	// allocation result is verified against its requests and violations
	// panic. Intended for tests and debugging; roughly doubles Step cost.
	Validate bool
}

type vcState int

const (
	vcIdle   vcState = iota // no packet, or body flits not yet at front
	vcWaitVA                // head flit at front, awaiting an output VC
	vcActive                // output VC assigned; flits compete for the switch
)

// inputVC holds one input VC's buffer as a fixed-capacity ring: head indexes
// the front flit and count the occupancy, so dequeue is O(1) instead of the
// O(depth) slice shift it replaces.
type inputVC struct {
	fifo    []*Flit // ring storage, len == BufDepth
	head    int
	count   int
	state   vcState
	outPort int
	class   int // resource class requested at this router
	outVC   int // local VC index at outPort, valid when vcActive
}

func (q *inputVC) front() *Flit { return q.fifo[q.head] }

func (q *inputVC) push(f *Flit) {
	q.fifo[(q.head+q.count)%len(q.fifo)] = f
	q.count++
}

func (q *inputVC) pop() *Flit {
	f := q.fifo[q.head]
	q.fifo[q.head] = nil
	q.head = (q.head + 1) % len(q.fifo)
	q.count--
	return f
}

type outputVC struct {
	allocated bool
	credits   int
}

// Router is one router instance. It is not safe for concurrent use.
type Router struct {
	cfg  Config
	p, v int

	va core.VCAllocator
	sa core.SwitchAllocator

	in  []inputVC  // p*v
	out []outputVC // p*v

	vaReqs     []core.VCRequest
	saReqs     []core.SwitchRequest
	candidates []*bitvec.Vec // per input VC, width v
	classMasks []*bitvec.Vec // per (m,r) class, width v
	vaGranted  []int         // per input VC: granted global out VC this cycle, -1

	deps    []Departure
	credits []Credit
	stats   Stats

	// occupied counts input VCs currently holding at least one flit; it is
	// maintained by AcceptFlit and commitSA and backs Quiescent.
	occupied int
	// skipVA and skipSA are the allocators' idle catch-up hooks, resolved
	// once at construction (nil when the allocator is idle-invariant).
	skipVA, skipSA func(int64)
}

// idleSkipper mirrors alloc.IdleSkipper structurally; see Router.SkipIdle.
type idleSkipper interface {
	SkipIdle(idleCycles int64)
}

// Stats counts per-router pipeline events since construction.
type Stats struct {
	// FlitsRouted counts flits that traversed the crossbar.
	FlitsRouted int64
	// SpecGrantsUsed counts speculative switch grants that moved a flit
	// (successful VA+SA bypass).
	SpecGrantsUsed int64
	// Misspeculations counts speculative switch grants wasted because VC
	// allocation failed in the same cycle or the fresh VC had no credit.
	Misspeculations int64
	// SpecMasked counts speculative proposals the allocator's conflict
	// masking discarded (higher for the pessimistic scheme under load).
	SpecMasked int64
}

// New builds a router.
func New(cfg Config) *Router {
	if cfg.Ports <= 0 || cfg.BufDepth <= 0 {
		panic("router: Ports and BufDepth must be positive")
	}
	if err := cfg.Spec.Validate(); err != nil {
		panic(err)
	}
	if cfg.Routing == nil {
		panic("router: Routing required")
	}
	v := cfg.Spec.V()
	cfg.VA.Ports = cfg.Ports
	cfg.VA.Spec = cfg.Spec
	cfg.SA.Ports = cfg.Ports
	cfg.SA.VCs = v
	r := &Router{
		cfg:        cfg,
		p:          cfg.Ports,
		v:          v,
		va:         core.NewVCAllocator(cfg.VA),
		sa:         core.NewSwitchAllocator(cfg.SA),
		in:         make([]inputVC, cfg.Ports*v),
		out:        make([]outputVC, cfg.Ports*v),
		vaReqs:     make([]core.VCRequest, cfg.Ports*v),
		saReqs:     make([]core.SwitchRequest, cfg.Ports*v),
		candidates: make([]*bitvec.Vec, cfg.Ports*v),
		vaGranted:  make([]int, cfg.Ports*v),
	}
	for i := range r.in {
		r.in[i].fifo = make([]*Flit, cfg.BufDepth)
		r.out[i].credits = cfg.BufDepth
		r.candidates[i] = bitvec.New(v)
	}
	for m := 0; m < cfg.Spec.MessageClasses; m++ {
		for rc := 0; rc < cfg.Spec.ResourceClasses; rc++ {
			r.classMasks = append(r.classMasks, cfg.Spec.ClassMask(m, rc))
		}
	}
	if s, ok := r.va.(idleSkipper); ok {
		r.skipVA = s.SkipIdle
	}
	if s, ok := r.sa.(idleSkipper); ok {
		r.skipSA = s.SkipIdle
	}
	return r
}

// ID returns the router's network index.
func (r *Router) ID() int { return r.cfg.ID }

// Ports returns the radix.
func (r *Router) Ports() int { return r.p }

// VCs returns the per-port VC count.
func (r *Router) VCs() int { return r.v }

// AcceptFlit delivers a flit into input buffer (port, vc). The caller is
// responsible for honoring credits; overflow panics, as it indicates a
// flow-control bug rather than a recoverable condition.
func (r *Router) AcceptFlit(port, vc int, f *Flit) {
	ivc := &r.in[port*r.v+vc]
	if ivc.count >= r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: input buffer (%d,%d) overflow", r.cfg.ID, port, vc))
	}
	if ivc.count == 0 {
		r.occupied++
	}
	ivc.push(f)
}

// AcceptCredit returns one credit for output VC (port, vc).
func (r *Router) AcceptCredit(port, vc int) {
	ovc := &r.out[port*r.v+vc]
	if ovc.credits >= r.cfg.BufDepth {
		panic(fmt.Sprintf("router %d: credit overflow at output (%d,%d)", r.cfg.ID, port, vc))
	}
	ovc.credits++
}

// OutputOccupancy estimates the flits queued downstream of output port p as
// consumed credits across its VCs; UGAL consults this at injection time.
func (r *Router) OutputOccupancy(port int) int {
	occ := 0
	for vc := 0; vc < r.v; vc++ {
		occ += r.cfg.BufDepth - r.out[port*r.v+vc].credits
	}
	return occ
}

// InputOccupancy returns the number of buffered flits at input (port, vc);
// exposed for tests and statistics.
func (r *Router) InputOccupancy(port, vc int) int { return r.in[port*r.v+vc].count }

// OutputVCFree reports whether output VC (port, vc) is unallocated.
func (r *Router) OutputVCFree(port, vc int) bool { return !r.out[port*r.v+vc].allocated }

// Stats returns the router's pipeline event counters, folding in the switch
// allocator's masking statistics.
func (r *Router) Stats() Stats {
	s := r.stats
	s.SpecMasked = r.sa.Stats().SpecMasked
	return s
}

// Quiescent reports whether a Step would be a guaranteed no-op: with no
// occupied input VC there are no routes to refresh and no VC or switch
// requests, so no grants, departures or credits can be produced. (Idle
// cycles still advance wavefront allocator priority in the dense stepper;
// SkipIdle replays that state change without the full Step.) Credits alone
// never un-quiesce a router: they enable no work until a flit arrives, and
// AcceptFlit raises occupancy.
func (r *Router) Quiescent() bool { return r.occupied == 0 }

// SkipIdle catches up the allocator state for idleCycles consecutive
// quiescent cycles that the caller elided, keeping an event-driven schedule
// bit-exact with stepping the router every cycle.
func (r *Router) SkipIdle(idleCycles int64) {
	if r.skipVA != nil {
		r.skipVA(idleCycles)
	}
	if r.skipSA != nil {
		r.skipSA(idleCycles)
	}
}

// Step advances the router by one cycle: route refresh, VC allocation and
// (speculative) switch allocation, then switch traversal commits. The
// returned slices are reused across calls.
//
// Concurrency contract: distinct Router instances share no mutable state,
// so Step (and AcceptFlit/AcceptCredit/SkipIdle for the same router's
// events) may run concurrently across routers — the sim package's sharded
// stepper relies on this. Everything a router shares with its siblings is
// read-only after New: Config carries the Spec by value and the Routing
// function (NextHop mutates only the packet's own Route), VCSpec.ClassMask
// returns freshly built bit vectors so per-router class masks never alias,
// and each router constructs its own allocator and arbiter instances. A
// single Router is not safe for concurrent use; the Trace collector is the
// one shared mutable sink, which is why tracing forces serial stepping.
func (r *Router) Step() ([]Departure, []Credit) {
	r.deps = r.deps[:0]
	r.credits = r.credits[:0]

	r.refreshRoutes()
	r.buildVARequests()
	vaGrants := r.va.Allocate(r.vaReqs)
	copy(r.vaGranted, vaGrants)
	r.buildSARequests()
	saGrants := r.sa.Allocate(r.saReqs)
	if r.cfg.Validate {
		if err := core.CheckVCGrants(r.p, r.cfg.Spec, r.vaReqs, r.vaGranted); err != nil {
			panic(fmt.Sprintf("router %d: %v", r.cfg.ID, err))
		}
		if err := core.CheckSwitchGrants(r.p, r.v, r.saReqs, saGrants); err != nil {
			panic(fmt.Sprintf("router %d: %v", r.cfg.ID, err))
		}
	}
	r.commitVA()
	r.commitSA(saGrants)
	return r.deps, r.credits
}

// refreshRoutes applies lookahead routing: any idle input VC whose front
// flit is a head computes its output port and resource class immediately.
func (r *Router) refreshRoutes() {
	for i := range r.in {
		ivc := &r.in[i]
		if ivc.state != vcIdle || ivc.count == 0 {
			continue
		}
		f := ivc.front()
		if !f.Head {
			panic(fmt.Sprintf("router %d: body flit at front of idle VC %d", r.cfg.ID, i))
		}
		outPort, class := r.cfg.Routing.NextHop(r.cfg.ID, &f.Pkt.Route)
		ivc.outPort = outPort
		ivc.class = class
		ivc.state = vcWaitVA
		if r.cfg.Trace != nil {
			r.cfg.Trace.Record(trace.Event{Kind: trace.RouteComputed, Router: r.cfg.ID,
				Port: i / r.v, VC: i % r.v, OutPort: outPort, OutVC: -1,
				Packet: f.Pkt.ID, Seq: f.Seq})
		}
	}
}

// buildVARequests assembles this cycle's VC allocation requests: one per
// input VC holding a head flit, restricted to free output VCs of the
// packet's message class and the routing function's resource class.
func (r *Router) buildVARequests() {
	for i := range r.in {
		ivc := &r.in[i]
		r.vaReqs[i] = core.VCRequest{}
		if ivc.state != vcWaitVA {
			continue
		}
		m := ivc.front().Pkt.Type.MessageClass()
		mask := r.classMasks[r.cfg.Spec.ClassIndex(m, ivc.class)]
		cand := r.candidates[i]
		cand.CopyFrom(mask)
		base := ivc.outPort * r.v
		cand.ForEach(func(c int) {
			if r.out[base+c].allocated {
				cand.Clear(c)
			}
		})
		if !cand.Any() {
			continue
		}
		r.vaReqs[i] = core.VCRequest{Active: true, OutPort: ivc.outPort, Candidates: cand}
	}
}

// buildSARequests assembles switch requests: non-speculative for active VCs
// with a buffered flit and downstream credit, speculative for head flits
// that issued a VC request this cycle (when speculation is enabled).
func (r *Router) buildSARequests() {
	speculate := r.cfg.SA.SpecMode != core.SpecNone
	for i := range r.in {
		ivc := &r.in[i]
		r.saReqs[i] = core.SwitchRequest{}
		switch ivc.state {
		case vcActive:
			if ivc.count == 0 {
				continue
			}
			if r.out[ivc.outPort*r.v+ivc.outVC].credits <= 0 {
				continue
			}
			r.saReqs[i] = core.SwitchRequest{Active: true, OutPort: ivc.outPort}
		case vcWaitVA:
			if speculate && r.vaReqs[i].Active {
				r.saReqs[i] = core.SwitchRequest{Active: true, OutPort: ivc.outPort, Spec: true}
			}
		}
	}
}

// commitVA applies VC allocation grants.
func (r *Router) commitVA() {
	for i, g := range r.vaGranted {
		if g < 0 {
			continue
		}
		ivc := &r.in[i]
		if ivc.state != vcWaitVA {
			panic(fmt.Sprintf("router %d: VA grant to VC %d in state %d", r.cfg.ID, i, ivc.state))
		}
		outPort, outVC := g/r.v, g%r.v
		if outPort != ivc.outPort {
			panic(fmt.Sprintf("router %d: VA grant port mismatch", r.cfg.ID))
		}
		if r.out[g].allocated {
			panic(fmt.Sprintf("router %d: VA granted busy output VC", r.cfg.ID))
		}
		r.out[g].allocated = true
		ivc.outVC = outVC
		ivc.state = vcActive
		if r.cfg.Trace != nil {
			r.cfg.Trace.Record(trace.Event{Kind: trace.VAGrant, Router: r.cfg.ID,
				Port: i / r.v, VC: i % r.v, OutPort: outPort, OutVC: outVC,
				Packet: ivc.front().Pkt.ID, Seq: ivc.front().Seq})
		}
	}
}

// commitSA applies switch grants and performs switch traversal: winning
// flits leave their input buffers, consume a downstream credit and return
// an upstream credit. Speculative grants are validated against this cycle's
// VC allocation outcome and downstream credit availability; failed
// speculation simply wastes the crossbar slot (§5.2).
func (r *Router) commitSA(grants []core.SwitchGrant) {
	for port, g := range grants {
		if g.OutPort < 0 {
			continue
		}
		i := port*r.v + g.VC
		ivc := &r.in[i]
		if g.Spec {
			// Misspeculation: the head flit failed to acquire an output VC
			// this cycle, so the crossbar slot is wasted.
			if r.vaGranted[i] < 0 {
				r.stats.Misspeculations++
				r.traceMisspec(port, g.VC, ivc)
				continue
			}
			// The output VC was assigned this very cycle; it must also have
			// a credit for the flit to proceed.
			if r.out[ivc.outPort*r.v+ivc.outVC].credits <= 0 {
				r.stats.Misspeculations++
				r.traceMisspec(port, g.VC, ivc)
				continue
			}
			r.stats.SpecGrantsUsed++
		}
		if ivc.count == 0 || ivc.state != vcActive {
			panic(fmt.Sprintf("router %d: switch grant to empty/idle VC %d", r.cfg.ID, i))
		}
		f := ivc.pop()
		if ivc.count == 0 {
			r.occupied--
		}
		r.stats.FlitsRouted++
		if f.Head {
			f.Pkt.Hops++
		}
		ovcIdx := ivc.outPort*r.v + ivc.outVC
		r.out[ovcIdx].credits--
		if r.out[ovcIdx].credits < 0 {
			panic(fmt.Sprintf("router %d: credit underflow at output VC %d", r.cfg.ID, ovcIdx))
		}
		r.deps = append(r.deps, Departure{OutPort: ivc.outPort, OutVC: ivc.outVC, Flit: f})
		r.credits = append(r.credits, Credit{InPort: port, InVC: g.VC})
		if r.cfg.Trace != nil {
			r.cfg.Trace.Record(trace.Event{Kind: trace.SAGrant, Router: r.cfg.ID,
				Port: port, VC: g.VC, OutPort: ivc.outPort, OutVC: ivc.outVC,
				Packet: f.Pkt.ID, Seq: f.Seq, Spec: g.Spec})
		}
		if f.Tail {
			r.out[ovcIdx].allocated = false
			ivc.state = vcIdle
		}
	}
}

// traceMisspec records a wasted speculative grant.
func (r *Router) traceMisspec(port, vc int, ivc *inputVC) {
	if r.cfg.Trace == nil {
		return
	}
	e := trace.Event{Kind: trace.Misspec, Router: r.cfg.ID, Port: port, VC: vc,
		OutPort: ivc.outPort, OutVC: -1, Packet: -1, Seq: -1}
	if ivc.count > 0 {
		e.Packet = ivc.front().Pkt.ID
		e.Seq = ivc.front().Seq
	}
	r.cfg.Trace.Record(e)
}
