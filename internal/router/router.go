// Package router implements the input-queued virtual-channel router
// microarchitecture of Becker & Dally (SC '09) §3.2: a two-stage pipeline in
// which VC allocation and switch allocation happen in the first stage
// (optionally with speculative switch allocation so head flits bypass a
// dedicated VA stage) and switch traversal in the second, with lookahead
// routing keeping route computation off the critical path, credit-based
// flow control, and statically partitioned input buffers.
package router

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Packet is a multi-flit network packet.
type Packet struct {
	// ID is a globally unique packet identifier.
	ID int64
	// Type determines size and message class.
	Type traffic.PacketType
	// Src and Dst are terminal indices.
	Src, Dst int
	// Size is the flit count.
	Size int
	// CreatedAt is the cycle the packet entered its source queue.
	CreatedAt int64
	// Route is the packet's routing state (destination, UGAL phase).
	Route routing.PacketRoute
	// Hops counts the routers the packet's head flit has traversed.
	Hops int
}

// Flit is one flow-control unit of a packet.
type Flit struct {
	// Pkt is the owning packet.
	Pkt *Packet
	// Seq is the flit's position within the packet.
	Seq int
	// Head and Tail mark the first and last flits (both set for
	// single-flit packets).
	Head, Tail bool
}

// MakeFlits expands a packet into its flits.
func MakeFlits(p *Packet) []*Flit {
	fs := make([]*Flit, p.Size)
	for i := range fs {
		fs[i] = &Flit{Pkt: p, Seq: i, Head: i == 0, Tail: i == p.Size-1}
	}
	return fs
}

// Departure reports a flit that won switch traversal this cycle.
type Departure struct {
	// OutPort and OutVC identify the output the flit leaves through.
	OutPort, OutVC int
	// Flit is the departing flit.
	Flit *Flit
}

// Credit reports a freed input buffer slot to be returned upstream.
type Credit struct {
	// InPort and InVC identify the input VC that released a slot.
	InPort, InVC int
}

// Config parameterizes a router.
type Config struct {
	// ID is the router's index in the network.
	ID int
	// Ports is the radix P.
	Ports int
	// Spec is the VC organization.
	Spec core.VCSpec
	// BufDepth is the statically partitioned per-VC input buffer depth in
	// flits (the paper uses 8).
	BufDepth int
	// Routing supplies lookahead route decisions.
	Routing routing.Function
	// ClassMasks, when non-nil, supplies the per-(message class, resource
	// class) output-VC candidate masks in ClassIndex order, replacing the
	// per-router Spec.ClassMask build. The router only ever reads them
	// (computeVAReq consumes a mask via AndNotInto), so one slice may be
	// shared by every router of every concurrently running simulation with
	// the same Spec; callers must never mutate the vectors after handoff.
	// nil keeps the per-router build.
	ClassMasks []*bitvec.Vec
	// VA configures the VC allocator (Ports and Spec are overridden).
	VA core.VCAllocConfig
	// SA configures the switch allocator (Ports and VCs are overridden);
	// SA.SpecMode selects the speculation scheme.
	SA core.SwitchAllocConfig
	// Trace, when non-nil, receives pipeline events (route computation,
	// VA/SA grants, misspeculations).
	Trace trace.Recorder
	// Validate enables per-cycle allocation checking: every VC and switch
	// allocation result is verified against its requests, the cached
	// request vectors are cross-checked against a dense rebuild, and
	// violations panic. Intended for tests and debugging; roughly doubles
	// Step cost.
	Validate bool
	// DenseRequests disables change-driven request caching: every cycle the
	// router recomputes all VA and switch requests from scratch instead of
	// rebuilding only the entries of input VCs touched by an event since
	// the last cycle. Kept as the golden reference for the equivalence
	// tests; the default change-driven path is bit-identical.
	DenseRequests bool
}

type vcState uint8

const (
	vcIdle   vcState = iota // no packet, or body flits not yet at front
	vcWaitVA                // head flit at front, awaiting an output VC
	vcActive                // output VC assigned; flits compete for the switch
)

// Router is one router instance. It is not safe for concurrent use.
//
// Input and output VC state lives in flat struct-of-arrays slices indexed by
// global VC index port*v+vc rather than in per-VC structs: the change-driven
// request rebuild walks only the dirty VCs, and the SoA layout keeps each
// field it touches (state, count, route) in its own contiguous run of memory
// instead of striding over full per-VC records.
type Router struct {
	cfg   Config
	p, v  int
	depth int

	va core.VCAllocator
	sa core.SwitchAllocator
	// vaMasked and saMasked are the allocators' incremental entry points,
	// resolved once at construction; nil when the allocator keeps no derived
	// request cache (free queue, precomputed) or under DenseRequests.
	vaMasked func([]core.VCRequest, *bitvec.Vec) []int
	saMasked func([]core.SwitchRequest, *bitvec.Vec) []core.SwitchGrant

	// Input VC state (SoA, indexed port*v+vc). fifo holds all input
	// buffers back to back: VC i's ring is fifo[i*depth : (i+1)*depth],
	// fronted by head[i] with count[i] occupied slots.
	fifo    []*Flit
	head    []int32
	count   []int32
	state   []vcState
	outPort []int32 // route: output port, valid from vcWaitVA on
	class   []int32 // route: resource class requested at this router
	outVC   []int32 // local VC index at outPort, valid when vcActive
	// Output VC state (SoA). outAlloc holds one v-wide allocation mask per
	// output port, so candidate masking is a word operation; outOwner maps
	// an allocated output VC back to the input VC holding it (-1 when
	// free), which is how a credit return finds the one cached switch
	// request it can invalidate.
	outAlloc   []*bitvec.Vec // per output port, width v
	outCredits []int32       // per output VC
	outOwner   []int32       // per output VC: owning input VC or -1

	vaReqs     []core.VCRequest
	saReqs     []core.SwitchRequest
	candidates []*bitvec.Vec // per input VC, width v
	classMasks []*bitvec.Vec // per (m,r) class, width v
	vaGranted  []int         // per input VC: granted global out VC this cycle, -1

	// dirty marks the input VCs whose cached VA/SA request entries must be
	// rebuilt this cycle; every other entry is byte-identical to what a
	// dense rebuild would produce (see DESIGN.md for the event inventory).
	// waiters[o] marks the input VCs in vcWaitVA routed to output port o —
	// the set whose candidate masks depend on port o's allocation state.
	dirty   *bitvec.Vec
	waiters []*bitvec.Vec

	// chkCand is Validate-mode scratch for the dense request cross-check.
	chkCand *bitvec.Vec

	speculate bool

	deps    []Departure
	credits []Credit
	stats   Stats

	// occupied counts input VCs currently holding at least one flit; it is
	// maintained by AcceptFlit and commitSA and backs Quiescent.
	occupied int
	// skipVA and skipSA are the allocators' idle catch-up hooks, resolved
	// once at construction (nil when the allocator is idle-invariant).
	skipVA, skipSA func(int64)
}

// idleSkipper mirrors alloc.IdleSkipper structurally; see Router.SkipIdle.
type idleSkipper interface {
	SkipIdle(idleCycles int64)
}

// Stats counts per-router pipeline events since construction.
type Stats struct {
	// FlitsRouted counts flits that traversed the crossbar.
	FlitsRouted int64
	// SpecGrantsUsed counts speculative switch grants that moved a flit
	// (successful VA+SA bypass).
	SpecGrantsUsed int64
	// Misspeculations counts speculative switch grants wasted because VC
	// allocation failed in the same cycle or the fresh VC had no credit.
	Misspeculations int64
	// SpecMasked counts speculative proposals the allocator's conflict
	// masking discarded (higher for the pessimistic scheme under load).
	SpecMasked int64
}

// New builds a router.
func New(cfg Config) *Router {
	if cfg.Ports <= 0 || cfg.BufDepth <= 0 {
		panic("router: Ports and BufDepth must be positive")
	}
	if err := cfg.Spec.Validate(); err != nil {
		panic(err)
	}
	if cfg.Routing == nil {
		panic("router: Routing required")
	}
	v := cfg.Spec.V()
	cfg.VA.Ports = cfg.Ports
	cfg.VA.Spec = cfg.Spec
	cfg.SA.Ports = cfg.Ports
	cfg.SA.VCs = v
	n := cfg.Ports * v
	r := &Router{
		cfg:        cfg,
		p:          cfg.Ports,
		v:          v,
		depth:      cfg.BufDepth,
		va:         core.NewVCAllocator(cfg.VA),
		sa:         core.NewSwitchAllocator(cfg.SA),
		fifo:       make([]*Flit, n*cfg.BufDepth),
		head:       make([]int32, n),
		count:      make([]int32, n),
		state:      make([]vcState, n),
		outPort:    make([]int32, n),
		class:      make([]int32, n),
		outVC:      make([]int32, n),
		outAlloc:   make([]*bitvec.Vec, cfg.Ports),
		outCredits: make([]int32, n),
		outOwner:   make([]int32, n),
		vaReqs:     make([]core.VCRequest, n),
		saReqs:     make([]core.SwitchRequest, n),
		candidates: make([]*bitvec.Vec, n),
		vaGranted:  make([]int, n),
		dirty:      bitvec.New(n),
		waiters:    make([]*bitvec.Vec, cfg.Ports),
		chkCand:    bitvec.New(v),
		speculate:  cfg.SA.SpecMode != core.SpecNone,
	}
	for i := 0; i < n; i++ {
		r.outCredits[i] = int32(cfg.BufDepth)
		r.outOwner[i] = -1
		r.candidates[i] = bitvec.New(v)
	}
	for p := 0; p < cfg.Ports; p++ {
		r.outAlloc[p] = bitvec.New(v)
		r.waiters[p] = bitvec.New(n)
	}
	if cfg.ClassMasks != nil {
		r.classMasks = cfg.ClassMasks
	} else {
		for m := 0; m < cfg.Spec.MessageClasses; m++ {
			for rc := 0; rc < cfg.Spec.ResourceClasses; rc++ {
				r.classMasks = append(r.classMasks, cfg.Spec.ClassMask(m, rc))
			}
		}
	}
	if s, ok := r.va.(idleSkipper); ok {
		r.skipVA = s.SkipIdle
	}
	if s, ok := r.sa.(idleSkipper); ok {
		r.skipSA = s.SkipIdle
	}
	if !cfg.DenseRequests {
		if m, ok := r.va.(core.MaskedVCAllocator); ok {
			r.vaMasked = m.AllocateMasked
		}
		if m, ok := r.sa.(core.MaskedSwitchAllocator); ok {
			r.saMasked = m.AllocateMasked
		}
	}
	return r
}

// ID returns the router's network index.
func (r *Router) ID() int { return r.cfg.ID }

// Ports returns the radix.
func (r *Router) Ports() int { return r.p }

// VCs returns the per-port VC count.
func (r *Router) VCs() int { return r.v }

// front returns the flit at the head of input VC i's ring buffer.
func (r *Router) front(i int) *Flit { return r.fifo[i*r.depth+int(r.head[i])] }

// AcceptFlit delivers a flit into input buffer (port, vc). The caller is
// responsible for honoring credits; overflow panics, as it indicates a
// flow-control bug rather than a recoverable condition.
func (r *Router) AcceptFlit(port, vc int, f *Flit) {
	i := port*r.v + vc
	c := int(r.count[i])
	if c >= r.depth {
		panic(fmt.Sprintf("router %d: input buffer (%d,%d) overflow", r.cfg.ID, port, vc))
	}
	if c == 0 {
		r.occupied++
	}
	// head < depth and c < depth, so one conditional subtract replaces the
	// modulo's hardware divide on this per-flit path.
	pos := int(r.head[i]) + c
	if pos >= r.depth {
		pos -= r.depth
	}
	r.fifo[i*r.depth+pos] = f
	r.count[i] = int32(c + 1)
	r.dirty.Set(i)
}

// AcceptCredit returns one credit for output VC (port, vc).
func (r *Router) AcceptCredit(port, vc int) {
	g := port*r.v + vc
	if int(r.outCredits[g]) >= r.depth {
		panic(fmt.Sprintf("router %d: credit overflow at output (%d,%d)", r.cfg.ID, port, vc))
	}
	r.outCredits[g]++
	// Only the input VC holding this output VC has a cached switch request
	// gated on its credit count.
	if o := r.outOwner[g]; o >= 0 {
		r.dirty.Set(int(o))
	}
}

// OutputOccupancy estimates the flits queued downstream of output port p as
// consumed credits across its VCs; UGAL consults this at injection time.
func (r *Router) OutputOccupancy(port int) int {
	occ := 0
	for vc := 0; vc < r.v; vc++ {
		occ += r.depth - int(r.outCredits[port*r.v+vc])
	}
	return occ
}

// InputOccupancy returns the number of buffered flits at input (port, vc);
// exposed for tests and statistics.
func (r *Router) InputOccupancy(port, vc int) int { return int(r.count[port*r.v+vc]) }

// OutputVCFree reports whether output VC (port, vc) is unallocated.
func (r *Router) OutputVCFree(port, vc int) bool { return !r.outAlloc[port].Get(vc) }

// Stats returns the router's pipeline event counters, folding in the switch
// allocator's masking statistics.
func (r *Router) Stats() Stats {
	s := r.stats
	s.SpecMasked = r.sa.Stats().SpecMasked
	return s
}

// Quiescent reports whether a Step would be a guaranteed no-op: with no
// occupied input VC there are no routes to refresh and no VC or switch
// requests, so no grants, departures or credits can be produced. (Idle
// cycles still advance wavefront allocator priority in the dense stepper;
// SkipIdle replays that state change without the full Step.) Credits alone
// never un-quiesce a router: they enable no work until a flit arrives, and
// AcceptFlit raises occupancy.
func (r *Router) Quiescent() bool { return r.occupied == 0 }

// SkipIdle catches up the allocator state for idleCycles consecutive
// quiescent cycles that the caller elided, keeping an event-driven schedule
// bit-exact with stepping the router every cycle.
func (r *Router) SkipIdle(idleCycles int64) {
	if r.skipVA != nil {
		r.skipVA(idleCycles)
	}
	if r.skipSA != nil {
		r.skipSA(idleCycles)
	}
}

// Step advances the router by one cycle: route refresh, VC allocation and
// (speculative) switch allocation, then switch traversal commits. The
// returned slices are reused across calls.
//
// The default schedule is change-driven: the VA and switch request entries
// handed to the allocators are cached across cycles and only the entries of
// input VCs marked dirty — by flit arrival, credit return, a VA or SA grant
// commit, or an allocation-state change at their output port — are rebuilt.
// Clean entries are byte-identical to what a full rebuild would produce, so
// the allocators (which treat the request slice as read-only input) cannot
// distinguish the two schedules; Config.DenseRequests selects the full
// rebuild as a golden reference and Config.Validate cross-checks the cache
// against it every cycle.
//
// Concurrency contract: distinct Router instances share no mutable state,
// so Step (and AcceptFlit/AcceptCredit/SkipIdle for the same router's
// events) may run concurrently across routers — the sim package's sharded
// stepper relies on this. Everything a router shares with its siblings is
// read-only after New: Config carries the Spec by value and the Routing
// function (NextHop mutates only the packet's own Route), VCSpec.ClassMask
// returns freshly built bit vectors so per-router class masks never alias,
// and each router constructs its own allocator and arbiter instances. A
// single Router is not safe for concurrent use; the Trace collector is the
// one shared mutable sink, which is why tracing forces serial stepping.
func (r *Router) Step() ([]Departure, []Credit) {
	r.deps = r.deps[:0]
	r.credits = r.credits[:0]

	r.buildRequests()
	// The dirty mask doubles as the allocators' changed-entry set: the
	// entries just rebuilt are exactly the ones that may differ from what
	// the allocator saw last cycle, so masked allocators refresh only the
	// derived state of those entries.
	var vaGrants []int
	if r.vaMasked != nil {
		vaGrants = r.vaMasked(r.vaReqs, r.dirty)
	} else {
		vaGrants = r.va.Allocate(r.vaReqs)
	}
	copy(r.vaGranted, vaGrants)
	var saGrants []core.SwitchGrant
	if r.saMasked != nil {
		saGrants = r.saMasked(r.saReqs, r.dirty)
	} else {
		saGrants = r.sa.Allocate(r.saReqs)
	}
	r.dirty.Reset()
	if r.cfg.Validate {
		if err := core.CheckVCGrants(r.p, r.cfg.Spec, r.vaReqs, r.vaGranted); err != nil {
			panic(fmt.Sprintf("router %d: %v", r.cfg.ID, err))
		}
		if err := core.CheckSwitchGrants(r.p, r.v, r.saReqs, saGrants); err != nil {
			panic(fmt.Sprintf("router %d: %v", r.cfg.ID, err))
		}
	}
	r.commitVA()
	r.commitSA(saGrants)
	return r.deps, r.credits
}

// buildRequests refreshes routes and assembles this cycle's VA and switch
// request entries: for every input VC under DenseRequests, otherwise only
// for the dirty ones. The dirty mask survives until after the allocators
// run — Step hands it to them as the changed-entry set — and is reset before
// the commit phase starts marking VCs for the next cycle.
func (r *Router) buildRequests() {
	if r.cfg.DenseRequests {
		for i := range r.state {
			r.buildRequest(i)
		}
		return
	}
	// Word-at-a-time scan: buildRequest never touches the dirty mask (bits
	// are only set again during the commit phase), so iterating a snapshot
	// of each word is safe and skips the per-bit NextSet re-entry.
	for wi, w := range r.dirty.Words() {
		for base := wi * 64; w != 0; w &= w - 1 {
			r.buildRequest(base + bits.TrailingZeros64(w))
		}
	}
	if r.cfg.Validate {
		r.checkRequestCache()
	}
}

// buildRequest recomputes input VC i's route (lookahead routing: an idle VC
// whose front flit is a head computes its output port and resource class
// immediately) and its VA and switch request entries.
func (r *Router) buildRequest(i int) {
	if r.state[i] == vcIdle && r.count[i] > 0 {
		f := r.front(i)
		if !f.Head {
			panic(fmt.Sprintf("router %d: body flit at front of idle VC %d", r.cfg.ID, i))
		}
		outPort, class := r.cfg.Routing.NextHop(r.cfg.ID, &f.Pkt.Route)
		r.outPort[i] = int32(outPort)
		r.class[i] = int32(class)
		r.state[i] = vcWaitVA
		r.waiters[outPort].Set(i)
		if r.cfg.Trace != nil {
			r.cfg.Trace.Record(trace.Event{Kind: trace.RouteComputed, Router: r.cfg.ID,
				Port: i / r.v, VC: i % r.v, OutPort: outPort, OutVC: -1,
				Packet: f.Pkt.ID, Seq: f.Seq})
		}
	}
	r.vaReqs[i] = r.computeVAReq(i, r.candidates[i])
	r.saReqs[i] = r.computeSAReq(i, r.vaReqs[i].Active)
}

// computeVAReq assembles input VC i's VC allocation request into cand: a
// request is issued for a head flit awaiting an output VC, restricted to
// free output VCs of the packet's message class and the routing function's
// resource class.
func (r *Router) computeVAReq(i int, cand *bitvec.Vec) core.VCRequest {
	if r.state[i] != vcWaitVA {
		return core.VCRequest{}
	}
	m := r.front(i).Pkt.Type.MessageClass()
	mask := r.classMasks[r.cfg.Spec.ClassIndex(m, int(r.class[i]))]
	if !cand.AndNotInto(mask, r.outAlloc[r.outPort[i]]) {
		return core.VCRequest{}
	}
	return core.VCRequest{Active: true, OutPort: int(r.outPort[i]), Candidates: cand}
}

// computeSAReq assembles input VC i's switch request: non-speculative for an
// active VC with a buffered flit and downstream credit, speculative for a
// head flit that issued a VC request this cycle (when speculation is
// enabled).
func (r *Router) computeSAReq(i int, vaActive bool) core.SwitchRequest {
	switch r.state[i] {
	case vcActive:
		if r.count[i] == 0 {
			return core.SwitchRequest{}
		}
		if r.outCredits[int(r.outPort[i])*r.v+int(r.outVC[i])] <= 0 {
			return core.SwitchRequest{}
		}
		return core.SwitchRequest{Active: true, OutPort: int(r.outPort[i])}
	case vcWaitVA:
		if r.speculate && vaActive {
			return core.SwitchRequest{Active: true, OutPort: int(r.outPort[i]), Spec: true}
		}
	}
	return core.SwitchRequest{}
}

// checkRequestCache panics unless every cached request entry — clean or
// dirty — matches a dense rebuild of the current state, and the waiter and
// owner indexes agree with the VC state machine. Run under Validate, it
// turns any missed dirty bit into a deterministic failure at the cycle it
// first happens instead of a silent divergence.
func (r *Router) checkRequestCache() {
	for i := range r.state {
		if r.state[i] == vcIdle && r.count[i] > 0 {
			panic(fmt.Sprintf("router %d: VC %d holds flits but was never routed (missed dirty bit)", r.cfg.ID, i))
		}
		wantVA := r.computeVAReq(i, r.chkCand)
		gotVA := r.vaReqs[i]
		if wantVA.Active != gotVA.Active ||
			(wantVA.Active && (wantVA.OutPort != gotVA.OutPort || !r.chkCand.Equal(gotVA.Candidates))) {
			panic(fmt.Sprintf("router %d: stale cached VA request for VC %d (missed dirty bit)", r.cfg.ID, i))
		}
		if want := r.computeSAReq(i, gotVA.Active); want != r.saReqs[i] {
			panic(fmt.Sprintf("router %d: stale cached switch request for VC %d (missed dirty bit)", r.cfg.ID, i))
		}
		if r.state[i] == vcWaitVA && !r.waiters[r.outPort[i]].Get(i) {
			panic(fmt.Sprintf("router %d: waiting VC %d missing from waiter mask of port %d", r.cfg.ID, i, r.outPort[i]))
		}
		if r.state[i] == vcActive {
			if g := int(r.outPort[i])*r.v + int(r.outVC[i]); int(r.outOwner[g]) != i {
				panic(fmt.Sprintf("router %d: output VC %d owner index does not name holder %d", r.cfg.ID, g, i))
			}
		}
	}
	for p := 0; p < r.p; p++ {
		for c := 0; c < r.v; c++ {
			if r.outAlloc[p].Get(c) != (r.outOwner[p*r.v+c] >= 0) {
				panic(fmt.Sprintf("router %d: output VC (%d,%d) allocation/owner mismatch", r.cfg.ID, p, c))
			}
		}
	}
}

// commitVA applies VC allocation grants. Allocating an output VC shrinks
// the candidate sets of every other VC waiting on that port, so the port's
// whole waiter set is marked dirty (the grantee is in it until cleared).
func (r *Router) commitVA() {
	for i, g := range r.vaGranted {
		if g < 0 {
			continue
		}
		if r.state[i] != vcWaitVA {
			panic(fmt.Sprintf("router %d: VA grant to VC %d in state %d", r.cfg.ID, i, r.state[i]))
		}
		outPort, outVC := g/r.v, g%r.v
		if int32(outPort) != r.outPort[i] {
			panic(fmt.Sprintf("router %d: VA grant port mismatch", r.cfg.ID))
		}
		if r.outAlloc[outPort].Get(outVC) {
			panic(fmt.Sprintf("router %d: VA granted busy output VC", r.cfg.ID))
		}
		r.outAlloc[outPort].Set(outVC)
		r.outOwner[g] = int32(i)
		r.outVC[i] = int32(outVC)
		r.state[i] = vcActive
		r.dirty.Or(r.waiters[outPort])
		r.waiters[outPort].Clear(i)
		if r.cfg.Trace != nil {
			f := r.front(i)
			r.cfg.Trace.Record(trace.Event{Kind: trace.VAGrant, Router: r.cfg.ID,
				Port: i / r.v, VC: i % r.v, OutPort: outPort, OutVC: outVC,
				Packet: f.Pkt.ID, Seq: f.Seq})
		}
	}
}

// commitSA applies switch grants and performs switch traversal: winning
// flits leave their input buffers, consume a downstream credit and return
// an upstream credit. Speculative grants are validated against this cycle's
// VC allocation outcome and downstream credit availability; failed
// speculation simply wastes the crossbar slot (§5.2). Every pop dirties its
// own VC (occupancy, credits and possibly state changed); a departing tail
// frees the output VC, which re-enlarges the candidate sets of that port's
// waiters, so they are dirtied too.
func (r *Router) commitSA(grants []core.SwitchGrant) {
	for port, g := range grants {
		if g.OutPort < 0 {
			continue
		}
		i := port*r.v + g.VC
		if g.Spec {
			// Misspeculation: the head flit failed to acquire an output VC
			// this cycle, so the crossbar slot is wasted.
			if r.vaGranted[i] < 0 {
				r.stats.Misspeculations++
				r.traceMisspec(port, g.VC, i)
				continue
			}
			// The output VC was assigned this very cycle; it must also have
			// a credit for the flit to proceed.
			if r.outCredits[int(r.outPort[i])*r.v+int(r.outVC[i])] <= 0 {
				r.stats.Misspeculations++
				r.traceMisspec(port, g.VC, i)
				continue
			}
			r.stats.SpecGrantsUsed++
		}
		if r.count[i] == 0 || r.state[i] != vcActive {
			panic(fmt.Sprintf("router %d: switch grant to empty/idle VC %d", r.cfg.ID, i))
		}
		base := i * r.depth
		h := int(r.head[i])
		f := r.fifo[base+h]
		r.fifo[base+h] = nil
		if h++; h == r.depth {
			h = 0
		}
		r.head[i] = int32(h)
		r.count[i]--
		r.dirty.Set(i)
		if r.count[i] == 0 {
			r.occupied--
		}
		r.stats.FlitsRouted++
		if f.Head {
			f.Pkt.Hops++
		}
		op, ov := int(r.outPort[i]), int(r.outVC[i])
		ovcIdx := op*r.v + ov
		r.outCredits[ovcIdx]--
		if r.outCredits[ovcIdx] < 0 {
			panic(fmt.Sprintf("router %d: credit underflow at output VC %d", r.cfg.ID, ovcIdx))
		}
		r.deps = append(r.deps, Departure{OutPort: op, OutVC: ov, Flit: f})
		r.credits = append(r.credits, Credit{InPort: port, InVC: g.VC})
		if r.cfg.Trace != nil {
			r.cfg.Trace.Record(trace.Event{Kind: trace.SAGrant, Router: r.cfg.ID,
				Port: port, VC: g.VC, OutPort: op, OutVC: ov,
				Packet: f.Pkt.ID, Seq: f.Seq, Spec: g.Spec})
		}
		if f.Tail {
			r.outAlloc[op].Clear(ov)
			r.outOwner[ovcIdx] = -1
			r.state[i] = vcIdle
			r.dirty.Or(r.waiters[op])
		}
	}
}

// traceMisspec records a wasted speculative grant.
func (r *Router) traceMisspec(port, vc, i int) {
	if r.cfg.Trace == nil {
		return
	}
	e := trace.Event{Kind: trace.Misspec, Router: r.cfg.ID, Port: port, VC: vc,
		OutPort: int(r.outPort[i]), OutVC: -1, Packet: -1, Seq: -1}
	if r.count[i] > 0 {
		f := r.front(i)
		e.Packet = f.Pkt.ID
		e.Seq = f.Seq
	}
	r.cfg.Trace.Record(e)
}
