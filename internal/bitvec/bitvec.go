// Package bitvec provides dense bit vectors and bit matrices sized for
// allocator request/grant bookkeeping.
//
// Allocators in this repository operate on request matrices with up to
// a few hundred rows and columns (P×V reaches 160 for the largest
// flattened-butterfly design point), so the representation favors
// simplicity and cache friendliness over large-scale sparse tricks.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a fixed-size dense bit vector. The zero value is unusable; create
// vectors with New. All indices must be in [0, Len()).
type Vec struct {
	n     int
	words []uint64
}

// New returns a zeroed bit vector with n bits.
func New(n int) *Vec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBools builds a vector from a bool slice.
func FromBools(b []bool) *Vec {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.Set(i)
		}
	}
	return v
}

// Len returns the number of bits in the vector.
func (v *Vec) Len() int { return v.n }

// Words exposes the backing word slice for read-only word-at-a-time
// iteration in hot loops:
//
//	for wi, w := range v.Words() {
//		for base := wi * 64; w != 0; w &= w - 1 {
//			i := base + bits.TrailingZeros64(w)
//			...
//		}
//	}
//
// This visits set bits in the same ascending order as NextSet iteration
// without re-entering the scan for every bit. Callers must not mutate the
// returned slice, and must not change v's bits while ranging over a word
// already loaded into a local (loading w snapshots that word).
func (v *Vec) Words() []uint64 { return v.words }

func (v *Vec) check(i int) {
	// Single unsigned compare: a negative index wraps to a huge uint.
	if uint(i) >= uint(v.n) {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Get reports whether bit i is set.
func (v *Vec) Get(i int) bool {
	v.check(i)
	return v.words[uint(i)/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i.
func (v *Vec) Set(i int) {
	v.check(i)
	v.words[uint(i)/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (v *Vec) Clear(i int) {
	v.check(i)
	v.words[uint(i)/wordBits] &^= 1 << (uint(i) % wordBits)
}

// SetTo sets bit i to b.
func (v *Vec) SetTo(i int, b bool) {
	if b {
		v.Set(i)
	} else {
		v.Clear(i)
	}
}

// Reset clears all bits.
func (v *Vec) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Any reports whether any bit is set.
func (v *Vec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of set bits.
func (v *Vec) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// First returns the index of the lowest set bit, or -1 if none.
func (v *Vec) First() int {
	for wi, w := range v.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextSet returns the index of the lowest set bit >= i, or -1 if no set bit
// exists at or above i. Unlike NextFrom it does not wrap. Together with
// TrailingZeros64 word scans it is the primitive for iterating set bits
// without per-bit Get calls:
//
//	for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) { ... }
func (v *Vec) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := int(uint(i) / wordBits)
	if w := v.words[wi] >> (uint(i) % wordBits); w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if w := v.words[wi]; w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextFrom returns the index of the lowest set bit >= i, wrapping around to
// the start of the vector if none is found at or above i. Returns -1 if the
// vector is empty of set bits. This is the primitive behind round-robin
// arbitration.
func (v *Vec) NextFrom(i int) int {
	if v.n == 0 {
		return -1
	}
	if i < 0 || i >= v.n {
		i = 0
	}
	if b := v.NextSet(i); b >= 0 {
		return b
	}
	// Wrap: lowest set bit strictly below i.
	wi := i / wordBits
	for k := 0; k < wi; k++ {
		if w := v.words[k]; w != 0 {
			return k*wordBits + bits.TrailingZeros64(w)
		}
	}
	if w := v.words[wi] & (1<<(uint(i)%wordBits) - 1); w != 0 {
		return wi*wordBits + bits.TrailingZeros64(w)
	}
	return -1
}

// ForEach calls fn for every set bit, in increasing index order.
func (v *Vec) ForEach(fn func(i int)) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Or sets v = v | o. Panics if lengths differ.
func (v *Vec) Or(o *Vec) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// And sets v = v & o. Panics if lengths differ.
func (v *Vec) And(o *Vec) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// AndNot sets v = v &^ o. Panics if lengths differ.
func (v *Vec) AndNot(o *Vec) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
}

// AndInto sets v = a & b in a single pass and reports whether any bit is
// set, fusing the CopyFrom+And+Any sequence allocator hot loops otherwise
// need. Panics if lengths differ.
func (v *Vec) AndInto(a, b *Vec) bool {
	if v.n != a.n || v.n != b.n {
		panic("bitvec: length mismatch")
	}
	var acc uint64
	for i := range v.words {
		w := a.words[i] & b.words[i]
		v.words[i] = w
		acc |= w
	}
	return acc != 0
}

// AndNotInto sets v = a &^ b in a single pass and reports whether any bit is
// set. Panics if lengths differ.
func (v *Vec) AndNotInto(a, b *Vec) bool {
	if v.n != a.n || v.n != b.n {
		panic("bitvec: length mismatch")
	}
	var acc uint64
	for i := range v.words {
		w := a.words[i] &^ b.words[i]
		v.words[i] = w
		acc |= w
	}
	return acc != 0
}

// SetAll sets every bit in [0, Len()).
func (v *Vec) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
}

// maskTail clears the unused high bits of the last word so that word-level
// reductions (Any, Count, acc |= ...) never see bits beyond Len().
func (v *Vec) maskTail() {
	if tail := uint(v.n) % wordBits; tail != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= 1<<tail - 1
	}
}

// SliceFrom fills v with bits [off, off+v.Len()) of src using word shifts
// and reports whether any bit is set. Panics when the range does not fit in
// src. It is the word-parallel form of the per-bit Get/Set copy loops used
// to extract a class window from a wider candidate vector.
func (v *Vec) SliceFrom(src *Vec, off int) bool {
	if off < 0 || off+v.n > src.n {
		panic(fmt.Sprintf("bitvec: slice [%d,%d) out of range [0,%d)", off, off+v.n, src.n))
	}
	sw := off / wordBits
	shift := uint(off) % wordBits
	if shift == 0 {
		copy(v.words, src.words[sw:sw+len(v.words)])
	} else {
		for i := range v.words {
			w := src.words[sw+i] >> shift
			if sw+i+1 < len(src.words) {
				w |= src.words[sw+i+1] << (wordBits - shift)
			}
			v.words[i] = w
		}
	}
	v.maskTail()
	var acc uint64
	for _, w := range v.words {
		acc |= w
	}
	return acc != 0
}

// Equal reports whether v and o have identical length and contents.
func (v *Vec) Equal(o *Vec) bool {
	if v.n != o.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of v.
func (v *Vec) Clone() *Vec {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites v with the contents of o. Panics if lengths differ.
func (v *Vec) CopyFrom(o *Vec) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
	copy(v.words, o.words)
}

// String renders the vector as a bit string, index 0 leftmost.
func (v *Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Matrix is a dense rows×cols bit matrix used for allocator request and
// grant matrices: rows index requesters, columns index resources.
type Matrix struct {
	rows, cols int
	bits       []*Vec // one Vec per row
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("bitvec: negative matrix dimension")
	}
	m := &Matrix{rows: rows, cols: cols, bits: make([]*Vec, rows)}
	for i := range m.bits {
		m.bits[i] = New(cols)
	}
	return m
}

// Rows returns the number of rows (requesters).
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (resources).
func (m *Matrix) Cols() int { return m.cols }

// Get reports whether entry (r, c) is set.
func (m *Matrix) Get(r, c int) bool { return m.bits[r].Get(c) }

// Set sets entry (r, c).
func (m *Matrix) Set(r, c int) { m.bits[r].Set(c) }

// Clear clears entry (r, c).
func (m *Matrix) Clear(r, c int) { m.bits[r].Clear(c) }

// SetTo sets entry (r, c) to b.
func (m *Matrix) SetTo(r, c int, b bool) { m.bits[r].SetTo(c, b) }

// Row returns the live Vec backing row r. Mutations are visible in m.
func (m *Matrix) Row(r int) *Vec { return m.bits[r] }

// Reset clears all entries.
func (m *Matrix) Reset() {
	for _, row := range m.bits {
		row.Reset()
	}
}

// Count returns the total number of set entries.
func (m *Matrix) Count() int {
	c := 0
	for _, row := range m.bits {
		c += row.Count()
	}
	return c
}

// Any reports whether any entry is set.
func (m *Matrix) Any() bool {
	for _, row := range m.bits {
		if row.Any() {
			return true
		}
	}
	return false
}

// ColCount returns the number of set entries in column c.
func (m *Matrix) ColCount(c int) int {
	n := 0
	for _, row := range m.bits {
		if row.Get(c) {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	for i, row := range m.bits {
		c.bits[i].CopyFrom(row)
	}
	return c
}

// Equal reports whether m and o have identical dimensions and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.bits {
		if !m.bits[i].Equal(o.bits[i]) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every set entry of m is also set in o.
func (m *Matrix) SubsetOf(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.bits {
		t := m.bits[i].Clone()
		t.AndNot(o.bits[i])
		if t.Any() {
			return false
		}
	}
	return true
}

// IsMatching reports whether m has at most one set entry per row and per
// column, i.e. whether it is a valid matching.
func (m *Matrix) IsMatching() bool {
	for _, row := range m.bits {
		if row.Count() > 1 {
			return false
		}
	}
	for c := 0; c < m.cols; c++ {
		if m.ColCount(c) > 1 {
			return false
		}
	}
	return true
}

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i, row := range m.bits {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(row.String())
	}
	return sb.String()
}
