package bitvec

import (
	"testing"
	"testing/quick"
)

func TestVecBasics(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d, want 130", v.Len())
	}
	if v.Any() {
		t.Fatal("new vector should be empty")
	}
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(129)
	for _, i := range []int{0, 63, 64, 129} {
		if !v.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Count() != 4 {
		t.Fatalf("Count = %d, want 4", v.Count())
	}
	v.Clear(63)
	if v.Get(63) {
		t.Error("bit 63 should be clear")
	}
	if v.Count() != 3 {
		t.Fatalf("Count = %d, want 3", v.Count())
	}
	v.Reset()
	if v.Any() {
		t.Fatal("Reset should clear all bits")
	}
}

func TestVecSetTo(t *testing.T) {
	v := New(10)
	v.SetTo(3, true)
	if !v.Get(3) {
		t.Fatal("SetTo(true) did not set")
	}
	v.SetTo(3, false)
	if v.Get(3) {
		t.Fatal("SetTo(false) did not clear")
	}
}

func TestVecOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(5).Get(5)
}

func TestVecFirst(t *testing.T) {
	v := New(200)
	if v.First() != -1 {
		t.Fatal("empty vector First should be -1")
	}
	v.Set(150)
	v.Set(70)
	if got := v.First(); got != 70 {
		t.Fatalf("First = %d, want 70", got)
	}
}

func TestVecNextFrom(t *testing.T) {
	v := New(100)
	if v.NextFrom(10) != -1 {
		t.Fatal("empty vector NextFrom should be -1")
	}
	v.Set(5)
	v.Set(80)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 80}, {80, 80}, {81, 5}, {99, 5}, {-1, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := v.NextFrom(c.from); got != c.want {
			t.Errorf("NextFrom(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestVecNextFromWrapWithinWord(t *testing.T) {
	v := New(64)
	v.Set(3)
	if got := v.NextFrom(10); got != 3 {
		t.Fatalf("NextFrom(10) = %d, want wrap to 3", got)
	}
}

func TestVecForEachOrder(t *testing.T) {
	v := New(130)
	want := []int{1, 63, 64, 100, 129}
	for _, i := range want {
		v.Set(i)
	}
	var got []int
	v.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestVecBoolOps(t *testing.T) {
	a := FromBools([]bool{true, false, true, false})
	b := FromBools([]bool{true, true, false, false})

	or := a.Clone()
	or.Or(b)
	if or.String() != "1110" {
		t.Errorf("Or = %s, want 1110", or)
	}
	and := a.Clone()
	and.And(b)
	if and.String() != "1000" {
		t.Errorf("And = %s, want 1000", and)
	}
	andNot := a.Clone()
	andNot.AndNot(b)
	if andNot.String() != "0010" {
		t.Errorf("AndNot = %s, want 0010", andNot)
	}
}

func TestVecEqualCloneCopy(t *testing.T) {
	a := New(77)
	a.Set(5)
	a.Set(76)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should equal original")
	}
	b.Clear(5)
	if a.Equal(b) {
		t.Fatal("mutated clone should differ")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom should restore equality")
	}
	if a.Equal(New(78)) {
		t.Fatal("different lengths should not be equal")
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(5).Or(New(6))
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	m.Set(0, 0)
	m.Set(1, 2)
	m.Set(2, 3)
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	if !m.Get(1, 2) {
		t.Fatal("(1,2) should be set")
	}
	if m.ColCount(2) != 1 || m.ColCount(1) != 0 {
		t.Fatal("ColCount wrong")
	}
	m.Clear(1, 2)
	if m.Get(1, 2) {
		t.Fatal("(1,2) should be clear")
	}
	m.Reset()
	if m.Any() {
		t.Fatal("Reset should empty matrix")
	}
}

func TestMatrixMatchingPredicate(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 1)
	m.Set(1, 0)
	m.Set(2, 2)
	if !m.IsMatching() {
		t.Fatal("permutation should be a matching")
	}
	m.Set(0, 2) // two in row 0
	if m.IsMatching() {
		t.Fatal("two grants in one row is not a matching")
	}
	m.Clear(0, 2)
	m.Set(1, 1) // two in row 1? no: (1,0) and (1,1) -> row violation
	if m.IsMatching() {
		t.Fatal("two grants in one row is not a matching")
	}
	m.Clear(1, 0)
	// now rows fine: (0,1),(1,1),(2,2) -> column 1 has two
	if m.IsMatching() {
		t.Fatal("two grants in one column is not a matching")
	}
}

func TestMatrixSubsetEqualClone(t *testing.T) {
	m := NewMatrix(4, 4)
	m.Set(0, 0)
	m.Set(3, 2)
	c := m.Clone()
	if !m.Equal(c) || !c.SubsetOf(m) || !m.SubsetOf(c) {
		t.Fatal("clone should be equal and mutual subset")
	}
	c.Set(1, 1)
	if c.SubsetOf(m) {
		t.Fatal("superset should not be subset")
	}
	if !m.SubsetOf(c) {
		t.Fatal("m should be subset of extended c")
	}
	if m.Equal(NewMatrix(4, 5)) {
		t.Fatal("different dims should not be equal")
	}
	if m.SubsetOf(NewMatrix(5, 4)) {
		t.Fatal("SubsetOf with different dims should be false")
	}
}

func TestMatrixRowAliasing(t *testing.T) {
	m := NewMatrix(2, 8)
	m.Row(1).Set(5)
	if !m.Get(1, 5) {
		t.Fatal("Row must alias the matrix storage")
	}
}

func TestVecString(t *testing.T) {
	v := New(5)
	v.Set(1)
	v.Set(4)
	if v.String() != "01001" {
		t.Fatalf("String = %q, want 01001", v.String())
	}
}

// Property: Count equals the number of indices reported by ForEach, and each
// reported index is Get-true.
func TestQuickCountForEachConsistency(t *testing.T) {
	f := func(raw []bool) bool {
		v := FromBools(raw)
		n := 0
		ok := true
		v.ForEach(func(i int) {
			n++
			if !v.Get(i) {
				ok = false
			}
		})
		return ok && n == v.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NextFrom(i) always returns a set bit when the vector is
// non-empty, and the bit returned is the nearest set bit in cyclic order.
func TestQuickNextFromCyclicNearest(t *testing.T) {
	f := func(raw []bool, start uint8) bool {
		v := FromBools(raw)
		if v.Len() == 0 {
			return v.NextFrom(int(start)) == -1
		}
		i := int(start) % v.Len()
		got := v.NextFrom(i)
		if !v.Any() {
			return got == -1
		}
		if got < 0 || !v.Get(got) {
			return false
		}
		// brute-force expected
		for k := 0; k < v.Len(); k++ {
			idx := (i + k) % v.Len()
			if v.Get(idx) {
				return got == idx
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
