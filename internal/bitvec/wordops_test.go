package bitvec

import (
	"math/rand"
	"testing"
)

func TestVecNextSet(t *testing.T) {
	v := New(200)
	if v.NextSet(0) != -1 {
		t.Fatal("empty vector NextSet should be -1")
	}
	for _, i := range []int{0, 63, 64, 130, 199} {
		v.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 0}, {1, 63}, {63, 63}, {64, 64}, {65, 130}, {131, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := v.NextSet(-5); got != 0 {
		t.Errorf("NextSet(-5) = %d, want 0", got)
	}
}

func TestVecNextSetMatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v.Set(i)
			}
		}
		var want []int
		v.ForEach(func(i int) { want = append(want, i) })
		var got []int
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: NextSet visited %d bits, ForEach %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: NextSet order %v, want %v", n, got, want)
			}
		}
	}
}

func TestVecSetAll(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		v := New(n)
		v.SetAll()
		if v.Count() != n {
			t.Fatalf("n=%d: SetAll Count = %d", n, v.Count())
		}
		// The tail word must stay masked so Count/Any remain correct.
		v.Clear(n - 1)
		if v.Count() != n-1 {
			t.Fatalf("n=%d: Count after Clear = %d, want %d", n, v.Count(), n-1)
		}
	}
}

func TestVecAndIntoAndNotInto(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		wantAnd := a.Clone()
		wantAnd.And(b)
		wantAndNot := a.Clone()
		wantAndNot.AndNot(b)

		dst := New(n)
		if any := dst.AndInto(a, b); any != wantAnd.Any() {
			t.Fatalf("n=%d: AndInto any = %v, want %v", n, any, wantAnd.Any())
		}
		if !dst.Equal(wantAnd) {
			t.Fatalf("n=%d: AndInto = %s, want %s", n, dst, wantAnd)
		}
		if any := dst.AndNotInto(a, b); any != wantAndNot.Any() {
			t.Fatalf("n=%d: AndNotInto any = %v, want %v", n, any, wantAndNot.Any())
		}
		if !dst.Equal(wantAndNot) {
			t.Fatalf("n=%d: AndNotInto = %s, want %s", n, dst, wantAndNot)
		}
	}
}

func TestVecSliceFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		srcN := 1 + rng.Intn(400)
		src := New(srcN)
		for i := 0; i < srcN; i++ {
			if rng.Intn(3) == 0 {
				src.Set(i)
			}
		}
		w := 1 + rng.Intn(srcN)
		off := rng.Intn(srcN - w + 1)
		dst := New(w)
		any := dst.SliceFrom(src, off)
		wantAny := false
		for c := 0; c < w; c++ {
			want := src.Get(off + c)
			wantAny = wantAny || want
			if dst.Get(c) != want {
				t.Fatalf("srcN=%d off=%d w=%d: bit %d = %v, want %v",
					srcN, off, w, c, dst.Get(c), want)
			}
		}
		if any != wantAny {
			t.Fatalf("srcN=%d off=%d w=%d: any = %v, want %v", srcN, off, w, any, wantAny)
		}
		if got := dst.Count(); got > w {
			t.Fatalf("tail word not masked: Count = %d > width %d", got, w)
		}
	}
}

// FuzzWordOps differentially checks every word-parallel operation against a
// naive per-bit reference model. The fuzzer chooses the vector length, the
// bit patterns (drawn cyclically from raw byte strings), and the offsets fed
// to the windowed and iterator operations, so word-boundary and tail-masking
// edge cases (n = 64k, 64k±1) are reached without being enumerated by hand.
func FuzzWordOps(f *testing.F) {
	f.Add([]byte{0xff}, []byte{0x0f}, uint16(64), uint16(0), uint16(0))
	f.Add([]byte{0xaa, 0x55}, []byte{0x01}, uint16(65), uint16(3), uint16(64))
	f.Add([]byte{}, []byte{0x80}, uint16(129), uint16(70), uint16(128))
	f.Add([]byte{0x01, 0x00, 0x80}, []byte{0xff, 0xff}, uint16(200), uint16(190), uint16(199))
	f.Add([]byte{0x10}, []byte{}, uint16(63), uint16(62), uint16(1))
	f.Fuzz(func(t *testing.T, aBytes, bBytes []byte, n16, off16, from16 uint16) {
		n := int(n16)%512 + 1
		bitAt := func(pattern []byte, i int) bool {
			if len(pattern) == 0 {
				return false
			}
			return pattern[(i/8)%len(pattern)]&(1<<(i%8)) != 0
		}
		refA := make([]bool, n)
		refB := make([]bool, n)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			refA[i] = bitAt(aBytes, i)
			refB[i] = bitAt(bBytes, i)
			a.SetTo(i, refA[i])
			b.SetTo(i, refB[i])
		}

		// Point queries and reductions.
		wantCount, wantFirst := 0, -1
		for i := 0; i < n; i++ {
			if a.Get(i) != refA[i] {
				t.Fatalf("n=%d: Get(%d) = %v, want %v", n, i, a.Get(i), refA[i])
			}
			if refA[i] {
				wantCount++
				if wantFirst < 0 {
					wantFirst = i
				}
			}
		}
		if a.Count() != wantCount || a.Any() != (wantCount > 0) || a.First() != wantFirst {
			t.Fatalf("n=%d: Count/Any/First = %d/%v/%d, want %d/%v/%d",
				n, a.Count(), a.Any(), a.First(), wantCount, wantCount > 0, wantFirst)
		}

		// Iterators: NextSet from an arbitrary start, the full NextSet scan
		// against ForEach, and NextFrom's wrap-around.
		from := int(from16) % (n + 2) // may equal n or n+1: past-the-end must return -1
		wantNext := -1
		for i := from; i < n; i++ {
			if i >= 0 && refA[i] {
				wantNext = i
				break
			}
		}
		if got := a.NextSet(from); got != wantNext {
			t.Fatalf("n=%d: NextSet(%d) = %d, want %d", n, from, got, wantNext)
		}
		var scan []int
		for i := a.NextSet(0); i >= 0; i = a.NextSet(i + 1) {
			scan = append(scan, i)
		}
		var walked []int
		a.ForEach(func(i int) { walked = append(walked, i) })
		if len(scan) != len(walked) {
			t.Fatalf("n=%d: NextSet scan %d bits, ForEach %d", n, len(scan), len(walked))
		}
		for i := range scan {
			if scan[i] != walked[i] {
				t.Fatalf("n=%d: NextSet scan %v != ForEach %v", n, scan, walked)
			}
		}
		start := from
		if start >= n || start < 0 {
			start = 0
		}
		wantWrap := -1
		for k := 0; k < n; k++ {
			if i := (start + k) % n; refA[i] {
				wantWrap = i
				break
			}
		}
		if got := a.NextFrom(from); got != wantWrap {
			t.Fatalf("n=%d: NextFrom(%d) = %d, want %d", n, from, got, wantWrap)
		}

		// Boolean combinations, in-place and fused destination forms.
		for _, op := range []struct {
			name string
			word func() *Vec
			bit  func(x, y bool) bool
		}{
			{"Or", func() *Vec { c := a.Clone(); c.Or(b); return c }, func(x, y bool) bool { return x || y }},
			{"And", func() *Vec { c := a.Clone(); c.And(b); return c }, func(x, y bool) bool { return x && y }},
			{"AndNot", func() *Vec { c := a.Clone(); c.AndNot(b); return c }, func(x, y bool) bool { return x && !y }},
			{"AndInto", func() *Vec { c := New(n); c.AndInto(a, b); return c }, func(x, y bool) bool { return x && y }},
			{"AndNotInto", func() *Vec { c := New(n); c.AndNotInto(a, b); return c }, func(x, y bool) bool { return x && !y }},
		} {
			got := op.word()
			anyRef := false
			for i := 0; i < n; i++ {
				want := op.bit(refA[i], refB[i])
				anyRef = anyRef || want
				if got.Get(i) != want {
					t.Fatalf("n=%d: %s bit %d = %v, want %v", n, op.name, i, got.Get(i), want)
				}
			}
			if got.Any() != anyRef || got.Count() > n {
				t.Fatalf("n=%d: %s Any/Count = %v/%d, want any=%v within width",
					n, op.name, got.Any(), got.Count(), anyRef)
			}
		}
		gotAny := New(n).AndInto(a, b)
		wantAny := false
		for i := 0; i < n; i++ {
			wantAny = wantAny || (refA[i] && refB[i])
		}
		if gotAny != wantAny {
			t.Fatalf("n=%d: AndInto reported any=%v, want %v", n, gotAny, wantAny)
		}

		// Windowed extraction at a fuzzer-chosen offset, including the
		// shift==0 fast path when off lands on a word boundary.
		off := int(off16) % n
		w := n - off
		dst := New(w)
		sliceAny := dst.SliceFrom(a, off)
		wantSliceAny := false
		for c := 0; c < w; c++ {
			want := refA[off+c]
			wantSliceAny = wantSliceAny || want
			if dst.Get(c) != want {
				t.Fatalf("n=%d off=%d: SliceFrom bit %d = %v, want %v", n, off, c, dst.Get(c), want)
			}
		}
		if sliceAny != wantSliceAny || dst.Count() > w {
			t.Fatalf("n=%d off=%d: SliceFrom any/Count = %v/%d, want any=%v within width %d",
				n, off, sliceAny, dst.Count(), wantSliceAny, w)
		}

		// Tail masking: SetAll must not leak bits past Len into reductions.
		full := New(n)
		full.SetAll()
		if full.Count() != n {
			t.Fatalf("n=%d: SetAll Count = %d", n, full.Count())
		}
		full.Clear(n - 1)
		if full.Count() != n-1 || full.NextSet(n-1) != -1 {
			t.Fatalf("n=%d: tail word leaked bits past Len", n)
		}

		// Copy semantics: Clone and CopyFrom round-trip through Equal.
		c := a.Clone()
		if !c.Equal(a) || !a.Equal(c) {
			t.Fatalf("n=%d: Clone not Equal to source", n)
		}
		c.Reset()
		if c.Any() {
			t.Fatalf("n=%d: Reset left bits set", n)
		}
		c.CopyFrom(a)
		if !c.Equal(a) {
			t.Fatalf("n=%d: CopyFrom diverged from source", n)
		}
	})
}
