package bitvec

import (
	"math/rand"
	"testing"
)

func TestVecNextSet(t *testing.T) {
	v := New(200)
	if v.NextSet(0) != -1 {
		t.Fatal("empty vector NextSet should be -1")
	}
	for _, i := range []int{0, 63, 64, 130, 199} {
		v.Set(i)
	}
	cases := []struct{ from, want int }{
		{0, 0}, {1, 63}, {63, 63}, {64, 64}, {65, 130}, {131, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := v.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := v.NextSet(-5); got != 0 {
		t.Errorf("NextSet(-5) = %d, want 0", got)
	}
}

func TestVecNextSetMatchesForEach(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		v := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v.Set(i)
			}
		}
		var want []int
		v.ForEach(func(i int) { want = append(want, i) })
		var got []int
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: NextSet visited %d bits, ForEach %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: NextSet order %v, want %v", n, got, want)
			}
		}
	}
}

func TestVecSetAll(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130} {
		v := New(n)
		v.SetAll()
		if v.Count() != n {
			t.Fatalf("n=%d: SetAll Count = %d", n, v.Count())
		}
		// The tail word must stay masked so Count/Any remain correct.
		v.Clear(n - 1)
		if v.Count() != n-1 {
			t.Fatalf("n=%d: Count after Clear = %d, want %d", n, v.Count(), n-1)
		}
	}
}

func TestVecAndIntoAndNotInto(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		wantAnd := a.Clone()
		wantAnd.And(b)
		wantAndNot := a.Clone()
		wantAndNot.AndNot(b)

		dst := New(n)
		if any := dst.AndInto(a, b); any != wantAnd.Any() {
			t.Fatalf("n=%d: AndInto any = %v, want %v", n, any, wantAnd.Any())
		}
		if !dst.Equal(wantAnd) {
			t.Fatalf("n=%d: AndInto = %s, want %s", n, dst, wantAnd)
		}
		if any := dst.AndNotInto(a, b); any != wantAndNot.Any() {
			t.Fatalf("n=%d: AndNotInto any = %v, want %v", n, any, wantAndNot.Any())
		}
		if !dst.Equal(wantAndNot) {
			t.Fatalf("n=%d: AndNotInto = %s, want %s", n, dst, wantAndNot)
		}
	}
}

func TestVecSliceFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		srcN := 1 + rng.Intn(400)
		src := New(srcN)
		for i := 0; i < srcN; i++ {
			if rng.Intn(3) == 0 {
				src.Set(i)
			}
		}
		w := 1 + rng.Intn(srcN)
		off := rng.Intn(srcN - w + 1)
		dst := New(w)
		any := dst.SliceFrom(src, off)
		wantAny := false
		for c := 0; c < w; c++ {
			want := src.Get(off + c)
			wantAny = wantAny || want
			if dst.Get(c) != want {
				t.Fatalf("srcN=%d off=%d w=%d: bit %d = %v, want %v",
					srcN, off, w, c, dst.Get(c), want)
			}
		}
		if any != wantAny {
			t.Fatalf("srcN=%d off=%d w=%d: any = %v, want %v", srcN, off, w, any, wantAny)
		}
		if got := dst.Count(); got > w {
			t.Fatalf("tail word not masked: Count = %d > width %d", got, w)
		}
	}
}
