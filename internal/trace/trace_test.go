package trace

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Inject, RouteComputed, VAGrant, SAGrant, Misspec, Eject} {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d missing a name", int(k))
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestTracerStampsCycle(t *testing.T) {
	c := NewCollector(8)
	tr := New(c, nil)
	tr.SetCycle(41)
	tr.Record(Event{Kind: VAGrant, Router: 3})
	tr.SetCycle(42)
	tr.Record(Event{Kind: SAGrant, Router: 3})
	evs := c.Events()
	if len(evs) != 2 || evs[0].Cycle != 41 || evs[1].Cycle != 42 {
		t.Fatalf("bad stamping: %v", evs)
	}
}

func TestTracerFilter(t *testing.T) {
	c := NewCollector(8)
	tr := New(c, FilterKind(Misspec))
	tr.Record(Event{Kind: VAGrant})
	tr.Record(Event{Kind: Misspec})
	tr.Record(Event{Kind: SAGrant})
	if c.Total() != 1 || c.Events()[0].Kind != Misspec {
		t.Fatalf("filter failed: %v", c.Events())
	}
}

func TestCollectorRingBuffer(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 5; i++ {
		c.Record(Event{Seq: i})
	}
	if c.Total() != 5 {
		t.Fatalf("Total = %d", c.Total())
	}
	evs := c.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Seq != i+2 {
			t.Fatalf("retention order wrong: %v", evs)
		}
	}
}

func TestCollectorPacketEvents(t *testing.T) {
	c := NewCollector(16)
	c.Record(Event{Packet: 1, Seq: 0})
	c.Record(Event{Packet: 2, Seq: 0})
	c.Record(Event{Packet: 1, Seq: 1})
	evs := c.PacketEvents(1)
	if len(evs) != 2 || evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("packet filter wrong: %v", evs)
	}
}

func TestWriterRendersLines(t *testing.T) {
	var sb strings.Builder
	w := Writer{W: &sb}
	w.Record(Event{Cycle: 7, Kind: SAGrant, Router: 2, Port: 1, VC: 0, OutPort: 3, OutVC: 1, Packet: 9, Seq: 2, Spec: true})
	out := sb.String()
	for _, want := range []string{"cycle=7", "sa_grant", "router=2", "pkt=9", "spec=true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("line %q missing %q", out, want)
		}
	}
}

func TestFilters(t *testing.T) {
	if !FilterPacket(5)(Event{Packet: 5}) || FilterPacket(5)(Event{Packet: 6}) {
		t.Error("FilterPacket wrong")
	}
	if !FilterRouter(2)(Event{Router: 2}) || FilterRouter(2)(Event{Router: 3}) {
		t.Error("FilterRouter wrong")
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(nil, nil) },
		func() { NewCollector(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
