package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/traffic"
)

func sampleTrace() *traffic.PacketTrace {
	return &traffic.PacketTrace{Terminals: 4, Arrivals: []traffic.Arrival{
		{Cycle: 0, Src: 2, Dst: 0, Type: traffic.ReadRequest},
		{Cycle: 3, Src: 0, Dst: 3, Type: traffic.WriteRequest},
		{Cycle: 3, Src: 1, Dst: 2, Type: traffic.ReadRequest},
		{Cycle: 9, Src: 0, Dst: 1, Type: traffic.ReadRequest},
	}}
}

// TestArrivalsRoundTrip pins the serialization contract: write → read
// reproduces the trace exactly, and re-serializing yields byte-identical
// output (the format is canonical, so the digest is a content address).
func TestArrivalsRoundTrip(t *testing.T) {
	pt := sampleTrace()
	var buf bytes.Buffer
	if err := WriteArrivals(&buf, pt); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := ReadArrivals(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pt) {
		t.Fatalf("round trip changed the trace:\nwant %+v\ngot  %+v", pt, got)
	}
	var buf2 bytes.Buffer
	if err := WriteArrivals(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("re-serialization is not byte-identical")
	}
	if ArrivalsDigest(pt) != ArrivalsDigest(got) {
		t.Fatal("digest changed across a round trip")
	}
}

// TestArrivalsFormat pins the on-disk spelling so the format cannot drift
// silently under the digest.
func TestArrivalsFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteArrivals(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	want := "noc-ptrace/v1 terminals=4 arrivals=4\n" +
		"0 2 0 read_req\n" +
		"3 0 3 write_req\n" +
		"3 1 2 read_req\n" +
		"9 0 1 read_req\n"
	if got := buf.String(); got != want {
		t.Fatalf("serialized form drifted:\nwant %q\ngot  %q", want, got)
	}
}

// TestDigestSensitivity pins that the digest moves with the workload: any
// change to an arrival or the terminal count produces a different address.
func TestDigestSensitivity(t *testing.T) {
	base := ArrivalsDigest(sampleTrace())
	mutants := []func(*traffic.PacketTrace){
		func(pt *traffic.PacketTrace) { pt.Terminals = 8 },
		func(pt *traffic.PacketTrace) { pt.Arrivals[1].Cycle = 4 },
		func(pt *traffic.PacketTrace) { pt.Arrivals[1].Dst = 2 },
		func(pt *traffic.PacketTrace) { pt.Arrivals[1].Type = traffic.ReadRequest },
		func(pt *traffic.PacketTrace) { pt.Arrivals = pt.Arrivals[:3] },
	}
	for i, mutate := range mutants {
		pt := sampleTrace()
		mutate(pt)
		if ArrivalsDigest(pt) == base {
			t.Errorf("mutation %d left the digest unchanged", i)
		}
	}
}

// TestReadArrivalsRejects pins the parser's rejection surface: malformed
// headers and lines, count mismatches, and traces that fail structural
// validation (so a successfully read trace is always replayable).
func TestReadArrivalsRejects(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad magic", "noc-ptrace/v9 terminals=4 arrivals=0\n"},
		{"short line", "noc-ptrace/v1 terminals=4 arrivals=1\n1 2 3\n"},
		{"bad type", "noc-ptrace/v1 terminals=4 arrivals=1\n1 0 1 read_reply\n"},
		{"count mismatch", "noc-ptrace/v1 terminals=4 arrivals=2\n1 0 1 read_req\n"},
		{"self traffic", "noc-ptrace/v1 terminals=4 arrivals=1\n1 2 2 read_req\n"},
		{"out of order", "noc-ptrace/v1 terminals=4 arrivals=2\n5 0 1 read_req\n1 2 3 read_req\n"},
		{"double inject", "noc-ptrace/v1 terminals=4 arrivals=2\n1 0 1 read_req\n1 0 2 read_req\n"},
	}
	for _, tc := range cases {
		if _, err := ReadArrivals(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: parser accepted %q", tc.name, tc.in)
		}
	}
}
