package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/traffic"
)

// Packet-trace serialization: a traffic.PacketTrace — every request
// transaction a run injected, in canonical (cycle, src) order — renders as
// a line-oriented text format so recorded workloads survive on disk and
// replay across tools:
//
//	noc-ptrace/v1 terminals=<n> arrivals=<count>
//	<cycle> <src> <dst> <type>
//	...
//
// The format is canonical (one spelling per trace), so the content digest
// of the serialized bytes identifies the workload; the sweep schema keys
// trace-driven units by that digest.

// ptraceMagic is the header tag of packet-trace files; the version suffix
// bumps with any format change.
const ptraceMagic = "noc-ptrace/v1"

// WriteArrivals serializes a packet trace in the canonical text format.
func WriteArrivals(w io.Writer, pt *traffic.PacketTrace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s terminals=%d arrivals=%d\n", ptraceMagic, pt.Terminals, len(pt.Arrivals))
	for _, a := range pt.Arrivals {
		fmt.Fprintf(bw, "%d %d %d %s\n", a.Cycle, a.Src, a.Dst, a.Type)
	}
	return bw.Flush()
}

// ReadArrivals parses the canonical text format and validates the trace's
// structural invariants, so a successfully read trace is always replayable.
func ReadArrivals(r io.Reader) (*traffic.PacketTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty packet trace (want %s header)", ptraceMagic)
	}
	var terminals, count int
	if _, err := fmt.Sscanf(sc.Text(), ptraceMagic+" terminals=%d arrivals=%d", &terminals, &count); err != nil {
		return nil, fmt.Errorf("trace: bad packet-trace header %q: %w", sc.Text(), err)
	}
	pt := &traffic.PacketTrace{Terminals: terminals, Arrivals: make([]traffic.Arrival, 0, count)}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 4 {
			return nil, fmt.Errorf("trace: arrival line %d: want 4 fields, got %q", len(pt.Arrivals)+1, line)
		}
		cycle, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: arrival line %d: cycle: %w", len(pt.Arrivals)+1, err)
		}
		src, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("trace: arrival line %d: src: %w", len(pt.Arrivals)+1, err)
		}
		dst, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("trace: arrival line %d: dst: %w", len(pt.Arrivals)+1, err)
		}
		typ, err := parsePacketType(f[3])
		if err != nil {
			return nil, fmt.Errorf("trace: arrival line %d: %w", len(pt.Arrivals)+1, err)
		}
		pt.Arrivals = append(pt.Arrivals, traffic.Arrival{Cycle: cycle, Src: src, Dst: dst, Type: typ})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pt.Arrivals) != count {
		return nil, fmt.Errorf("trace: header promises %d arrivals, file has %d", count, len(pt.Arrivals))
	}
	if err := pt.Validate(); err != nil {
		return nil, err
	}
	return pt, nil
}

// ArrivalsDigest returns the trace's content address: the hex SHA-256 of
// its canonical serialization. Two traces digest equal iff they replay the
// same workload.
func ArrivalsDigest(pt *traffic.PacketTrace) string {
	h := sha256.New()
	if err := WriteArrivals(h, pt); err != nil {
		panic(err) // hash.Hash never errors on Write
	}
	return hex.EncodeToString(h.Sum(nil))
}

// parsePacketType inverts traffic.PacketType.String for request types.
func parsePacketType(s string) (traffic.PacketType, error) {
	for _, t := range []traffic.PacketType{traffic.ReadRequest, traffic.WriteRequest} {
		if s == t.String() {
			return t, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown request packet type %q", s)
}
