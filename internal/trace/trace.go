// Package trace provides cycle-stamped event tracing for the router
// pipeline and network simulation: VC allocation grants, switch grants,
// misspeculations, flit movements and terminal activity. Traces are the
// debugging substrate for the simulator — when a latency curve looks wrong,
// the per-packet event log says which router and which pipeline decision is
// responsible.
package trace

import (
	"fmt"
	"io"
)

// Kind classifies trace events.
type Kind int

const (
	// Inject marks a flit leaving a terminal's source queue toward its
	// router.
	Inject Kind = iota
	// RouteComputed marks lookahead route computation for a head flit.
	RouteComputed
	// VAGrant marks an output-VC assignment.
	VAGrant
	// SAGrant marks a switch grant (crossbar traversal of one flit).
	SAGrant
	// Misspec marks a wasted speculative switch grant (§5.2).
	Misspec
	// Eject marks a flit consumed by its destination terminal.
	Eject
)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case Inject:
		return "inject"
	case RouteComputed:
		return "route"
	case VAGrant:
		return "va_grant"
	case SAGrant:
		return "sa_grant"
	case Misspec:
		return "misspec"
	case Eject:
		return "eject"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one pipeline occurrence.
type Event struct {
	// Cycle is the simulation cycle (stamped by the Tracer).
	Cycle int64
	// Kind classifies the event.
	Kind Kind
	// Router is the router index, or -1 for terminal events.
	Router int
	// Port and VC locate the input VC involved (-1 when not applicable).
	Port, VC int
	// OutPort and OutVC locate the granted output (-1 when not applicable).
	OutPort, OutVC int
	// Packet and Seq identify the flit (-1 when not applicable).
	Packet int64
	Seq    int
	// Spec marks speculative switch grants.
	Spec bool
}

// String renders one line per event.
func (e Event) String() string {
	return fmt.Sprintf("cycle=%d %s router=%d in=(%d,%d) out=(%d,%d) pkt=%d seq=%d spec=%v",
		e.Cycle, e.Kind, e.Router, e.Port, e.VC, e.OutPort, e.OutVC, e.Packet, e.Seq, e.Spec)
}

// Recorder receives events; implementations must be cheap when disabled.
type Recorder interface {
	Record(Event)
}

// Tracer stamps events with the current cycle and forwards them to a sink,
// optionally filtered. The zero value is unusable; create with New.
type Tracer struct {
	sink   Recorder
	cycle  int64
	filter func(Event) bool
}

// New returns a tracer forwarding to sink. filter may be nil (record all).
func New(sink Recorder, filter func(Event) bool) *Tracer {
	if sink == nil {
		panic("trace: nil sink")
	}
	return &Tracer{sink: sink, filter: filter}
}

// SetCycle sets the timestamp applied to subsequent events; the simulator
// calls it once per cycle.
func (t *Tracer) SetCycle(c int64) { t.cycle = c }

// Record stamps and forwards an event.
func (t *Tracer) Record(e Event) {
	e.Cycle = t.cycle
	if t.filter != nil && !t.filter(e) {
		return
	}
	t.sink.Record(e)
}

// Collector is a bounded in-memory sink: it retains the most recent
// capacity events.
type Collector struct {
	cap    int
	events []Event
	start  int
	total  int64
}

// NewCollector returns a sink retaining up to capacity events.
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Collector{cap: capacity}
}

// Record implements Recorder.
func (c *Collector) Record(e Event) {
	c.total++
	if len(c.events) < c.cap {
		c.events = append(c.events, e)
		return
	}
	c.events[c.start] = e
	c.start = (c.start + 1) % c.cap
}

// Total returns the number of events recorded (including evicted ones).
func (c *Collector) Total() int64 { return c.total }

// Events returns the retained events in arrival order.
func (c *Collector) Events() []Event {
	out := make([]Event, 0, len(c.events))
	for i := 0; i < len(c.events); i++ {
		out = append(out, c.events[(c.start+i)%len(c.events)])
	}
	return out
}

// PacketEvents returns the retained events for one packet, in order.
func (c *Collector) PacketEvents(pkt int64) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.Packet == pkt {
			out = append(out, e)
		}
	}
	return out
}

// Writer is a sink that renders each event as one text line.
type Writer struct {
	W io.Writer
}

// Record implements Recorder; write errors are intentionally dropped
// (tracing must never perturb the simulation).
func (w Writer) Record(e Event) {
	fmt.Fprintln(w.W, e.String())
}

// FilterPacket returns a filter matching a single packet id plus all
// terminal events for it.
func FilterPacket(pkt int64) func(Event) bool {
	return func(e Event) bool { return e.Packet == pkt }
}

// FilterRouter returns a filter matching events at one router.
func FilterRouter(r int) func(Event) bool {
	return func(e Event) bool { return e.Router == r }
}

// FilterKind returns a filter matching a set of event kinds.
func FilterKind(kinds ...Kind) func(Event) bool {
	set := map[Kind]bool{}
	for _, k := range kinds {
		set[k] = true
	}
	return func(e Event) bool { return set[e.Kind] }
}
