// Package stats provides the streaming statistics used by the network
// simulator: running mean/variance (Welford), exact order statistics over
// bounded integer domains (cycle-count histograms), and simple saturation
// detection helpers.
//
// Packet latencies in a cycle-accurate simulation are small non-negative
// integers, so quantiles are computed exactly from a sparse histogram
// instead of an approximation sketch.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates mean and variance online (Welford's algorithm).
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Count returns the number of samples.
func (r *Running) Count() int64 { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with <2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min and Max return the observed extrema (0 with no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observed sample.
func (r *Running) Max() float64 { return r.max }

// Hist is a sparse histogram over non-negative integers, supporting exact
// quantiles. The zero value is ready to use.
type Hist struct {
	counts map[int]int64
	total  int64
}

// Add records one observation of value v (v < 0 panics).
func (h *Hist) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram value %d", v))
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	h.counts[v]++
	h.total++
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.total }

// Mean returns the mean observation.
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Quantile returns the smallest value v such that at least q of the mass is
// <= v, for q in [0, 1]. With no samples it returns 0.
func (h *Hist) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	keys := make([]int, 0, len(h.counts))
	for v := range h.counts {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	need := int64(math.Ceil(q * float64(h.total)))
	if need == 0 {
		need = 1
	}
	var acc int64
	for _, v := range keys {
		acc += h.counts[v]
		if acc >= need {
			return v
		}
	}
	return keys[len(keys)-1]
}

// Median is Quantile(0.5).
func (h *Hist) Median() int { return h.Quantile(0.5) }

// P99 is Quantile(0.99).
func (h *Hist) P99() int { return h.Quantile(0.99) }

// Max returns the largest observed value (0 with no samples).
func (h *Hist) Max() int {
	max := 0
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.counts == nil {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	for v, c := range o.counts {
		h.counts[v] += c
		h.total += c
	}
}

// SaturationEstimate locates the saturation throughput from a monotone
// offered-load sweep: the highest accepted throughput observed before (or
// at) the point where accepted throughput stops tracking offered load
// within tolerance. The inputs are parallel slices of offered and accepted
// rates; it returns the estimate and the index of the last tracking point
// (-1 if none track).
func SaturationEstimate(offered, accepted []float64, tolerance float64) (float64, int) {
	if len(offered) != len(accepted) {
		panic("stats: slice length mismatch")
	}
	best := 0.0
	lastTracking := -1
	for i := range offered {
		if accepted[i] > best {
			best = accepted[i]
		}
		if offered[i] > 0 && accepted[i] >= offered[i]*(1-tolerance) {
			lastTracking = i
		}
	}
	return best, lastTracking
}
