package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Count() != 0 || r.Mean() != 0 || r.Variance() != 0 {
		t.Fatal("zero value should be empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Fatalf("Count = %d", r.Count())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %f, want 5", r.Mean())
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if math.Abs(r.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %f, want %f", r.Variance(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("extrema (%f, %f), want (2, 9)", r.Min(), r.Max())
	}
	if math.Abs(r.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatal("StdDev inconsistent with Variance")
	}
}

func TestRunningSingleSample(t *testing.T) {
	var r Running
	r.Add(3)
	if r.Mean() != 3 || r.Variance() != 0 || r.Min() != 3 || r.Max() != 3 {
		t.Fatal("single-sample stats wrong")
	}
}

// Property: Welford matches the two-pass formula.
func TestQuickRunningMatchesTwoPass(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var r Running
		var sum float64
		for _, v := range raw {
			r.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		wantVar := m2 / float64(len(raw)-1)
		return math.Abs(r.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(r.Variance()-wantVar) < 1e-6*(1+wantVar)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistBasics(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("zero value should be empty")
	}
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Median() != 50 {
		t.Fatalf("Median = %d, want 50", h.Median())
	}
	if h.P99() != 99 {
		t.Fatalf("P99 = %d, want 99", h.P99())
	}
	if h.Quantile(1) != 100 || h.Max() != 100 {
		t.Fatalf("Quantile(1) = %d, Max = %d, want 100", h.Quantile(1), h.Max())
	}
	if h.Quantile(0) != 1 {
		t.Fatalf("Quantile(0) = %d, want 1", h.Quantile(0))
	}
	if math.Abs(h.Mean()-50.5) > 1e-12 {
		t.Fatalf("Mean = %f, want 50.5", h.Mean())
	}
}

func TestHistClamping(t *testing.T) {
	var h Hist
	h.Add(7)
	if h.Quantile(-1) != 7 || h.Quantile(2) != 7 {
		t.Fatal("out-of-range quantiles should clamp")
	}
}

func TestHistNegativePanics(t *testing.T) {
	var h Hist
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Add(-1)
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	a.Merge(&b)
	if a.Count() != 4 {
		t.Fatalf("merged count = %d, want 4", a.Count())
	}
	if a.Median() != 2 {
		t.Fatalf("merged median = %d, want 2", a.Median())
	}
	a.Merge(nil)
	a.Merge(&Hist{})
	if a.Count() != 4 {
		t.Fatal("merging empty changed count")
	}
	var empty Hist
	empty.Merge(&a)
	if empty.Count() != 4 {
		t.Fatal("merge into zero value failed")
	}
}

// Property: histogram quantiles agree with sorting the raw samples.
func TestQuickHistQuantileExact(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(200)
		samples := make([]int, n)
		var h Hist
		for i := range samples {
			samples[i] = rng.Intn(50)
			h.Add(samples[i])
		}
		// brute-force quantile
		sorted := append([]int(nil), samples...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			idx := int(math.Ceil(q*float64(n))) - 1
			if idx < 0 {
				idx = 0
			}
			if got, want := h.Quantile(q), sorted[idx]; got != want {
				t.Fatalf("trial %d q=%.2f: hist %d, sorted %d", trial, q, got, want)
			}
		}
	}
}

func TestSaturationEstimate(t *testing.T) {
	offered := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	accepted := []float64{0.1, 0.2, 0.3, 0.34, 0.33}
	sat, last := SaturationEstimate(offered, accepted, 0.05)
	if sat != 0.34 {
		t.Fatalf("saturation = %f, want 0.34", sat)
	}
	if last != 2 {
		t.Fatalf("last tracking index = %d, want 2", last)
	}
	// Fully tracking sweep.
	sat, last = SaturationEstimate(offered, offered, 0.01)
	if sat != 0.5 || last != 4 {
		t.Fatalf("tracking sweep gave (%f, %d)", sat, last)
	}
	// Nothing tracks.
	_, last = SaturationEstimate([]float64{0.5}, []float64{0.1}, 0.05)
	if last != -1 {
		t.Fatalf("last = %d, want -1", last)
	}
}

func TestSaturationEstimateMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SaturationEstimate([]float64{1}, nil, 0.1)
}
