package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// Benchmarks for the simulation core: each target runs one Fig.13-style
// mesh (C=1) simulation per iteration under both the active-set scheduler
// and the dense reference stepper, reporting simulated cycles per second
// of wall-clock time. The drain-dominated low-rate point is where skipping
// quiescent routers pays off most; the near-saturation point bounds the
// scheduler's overhead when almost nothing is skippable.

func benchNetwork(b *testing.B, rate float64, dense bool) {
	benchNetworkShards(b, rate, dense, 0)
}

func benchNetworkShards(b *testing.B, rate float64, dense bool, shards int) {
	benchNetworkSpec(b, rate, dense, shards, core.SpecReq)
}

func benchNetworkSpec(b *testing.B, rate float64, dense bool, shards int, spec core.SpecMode) {
	benchNetworkCfg(b, rate, func(cfg *Config) {
		cfg.Dense = dense
		cfg.Shards = shards
		cfg.SA.SpecMode = spec
	})
}

func benchNetworkCfg(b *testing.B, rate float64, mut func(*Config)) {
	b.ReportAllocs()
	var cycles int64
	for i := 0; i < b.N; i++ {
		cfg := meshConfig(1, rate)
		cfg.Seed = 42
		cfg.SA.SpecMode = core.SpecReq
		mut(&cfg)
		res := New(cfg).Run()
		if res.FlitsDelivered == 0 {
			b.Fatal("no traffic moved")
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

func BenchmarkNetworkLowRate(b *testing.B) {
	// Fig. 13 mesh 2x1x1 at 0.05 flits/cycle/terminal: mostly idle routers
	// and a long drain tail.
	b.Run("active", func(b *testing.B) { benchNetwork(b, 0.05, false) })
	b.Run("dense", func(b *testing.B) { benchNetwork(b, 0.05, true) })
}

func BenchmarkNetworkNearSaturation(b *testing.B) {
	// Fig. 13 mesh 2x1x1 near its saturation rate: every router busy almost
	// every cycle, so this measures active-set bookkeeping overhead.
	b.Run("active", func(b *testing.B) { benchNetwork(b, 0.30, false) })
	b.Run("dense", func(b *testing.B) { benchNetwork(b, 0.30, true) })
}

// BenchmarkNetworkLeap compares the event-leaping fast path against ticked
// active-set stepping at drain-dominated rates, where long fully-idle
// stretches separate transactions. Results are bit-identical either way
// (TestLeapGolden); only wall-clock differs.
func BenchmarkNetworkLeap(b *testing.B) {
	for _, rate := range []float64{0.0005, 0.005} {
		for _, leap := range []bool{false, true} {
			name := fmt.Sprintf("rate=%g/leap=%t", rate, leap)
			b.Run(name, func(b *testing.B) {
				benchNetworkCfg(b, rate, func(cfg *Config) { cfg.Leap = leap })
			})
		}
	}
}

// BenchmarkNetworkSharded measures the sharded stepper at the
// near-saturation point, where intra-run parallelism is the only speedup
// left (the active-set scheduler skips almost nothing there). shards=1
// bounds the restructuring overhead of the two-phase cycle itself; higher
// counts scale with available cores and degrade only by the per-cycle
// barrier cost when cores are scarce. The 8- and 16-shard points exist to
// profile the serial commit barrier (run with -blockprofile/-mutexprofile);
// on the Fig.13 mesh they oversubscribe most hosts and are expected to
// regress wall-clock there.
func BenchmarkNetworkSharded(b *testing.B) {
	for _, s := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			benchNetworkShards(b, 0.30, false, s)
		})
	}
}

// BenchmarkNetworkShardedFig14 is the same near-saturation point under the
// conventional speculation scheme (spec_gnt, a Fig. 14 series), pinning the
// sharded stepper's scaling on a second allocator configuration.
func BenchmarkNetworkShardedFig14(b *testing.B) {
	for _, s := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			benchNetworkSpec(b, 0.30, false, s, core.SpecGnt)
		})
	}
}
