// Package sim assembles routers, channels and terminals into the
// cycle-accurate network simulations of Becker & Dally (SC '09) §3.2 and
// drives them through warmup, measurement and drain phases to produce the
// latency/throughput curves of Figs. 13 and 14.
//
// Timing model (cycles):
//   - Router pipeline: VC+switch allocation in the cycle a flit is at the
//     buffer front, switch traversal in the next cycle; a flit departing a
//     router at cycle t becomes processable at the downstream router at
//     t + 2 + L for a channel of latency L. With speculation a head flit
//     spends the minimum 2 cycles per router; without it, VC allocation
//     adds one cycle per hop for head flits.
//   - Credits travel back with the same channel latency plus one processing
//     cycle.
//   - Terminal injection/ejection links have latency 1.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// Config describes one simulation run.
type Config struct {
	// Topology is the network graph.
	Topology *topology.Topology
	// Routing is the routing function (must match the topology).
	Routing routing.Function
	// Spec is the router VC organization; Spec.ResourceClasses must equal
	// Routing.ResourceClasses() and Spec.MessageClasses must be 2 for the
	// request/reply protocol.
	Spec core.VCSpec
	// BufDepth is the per-VC buffer depth in flits (paper: 8).
	BufDepth int
	// VA selects the VC allocator microarchitecture (Arch, ArbKind,
	// Sparse); Ports/Spec are filled in per router.
	VA core.VCAllocConfig
	// SA selects the switch allocator microarchitecture and speculation
	// scheme; Ports/VCs are filled in per router.
	SA core.SwitchAllocConfig
	// Pattern chooses packet destinations (default: uniform).
	Pattern traffic.Pattern
	// InjectionRate is the offered load in flits/cycle/terminal.
	InjectionRate float64
	// ReadFraction is the probability a transaction is a read. Nil selects
	// the paper's default of 0.5; point at 0 for an all-write workload.
	ReadFraction *float64
	// Seed makes the run deterministic.
	Seed uint64
	// Warmup, Measure and Drain are the phase lengths in cycles.
	Warmup, Measure, Drain int
	// Trace, when non-nil, receives pipeline and terminal events stamped
	// with the simulation cycle.
	Trace *trace.Tracer
	// Validate enables per-cycle allocation checking in every router
	// (panics on any invariant violation); used by tests.
	Validate bool
	// Dense disables the active-set scheduler and steps every router and
	// terminal every cycle. Results are bit-identical either way; the dense
	// stepper is kept as the golden reference for that equivalence.
	Dense bool
}

func (c *Config) applyDefaults() {
	if c.BufDepth == 0 {
		c.BufDepth = 8
	}
	if c.ReadFraction == nil {
		rf := 0.5
		c.ReadFraction = &rf
	}
	if c.Pattern == nil {
		p, err := traffic.NewPattern("uniform", c.Topology.Terminals())
		if err != nil {
			panic(err)
		}
		c.Pattern = p
	}
	if c.Warmup == 0 {
		c.Warmup = 2000
	}
	if c.Measure == 0 {
		c.Measure = 5000
	}
	if c.Drain == 0 {
		c.Drain = 20000
	}
}

// Result summarizes one run.
type Result struct {
	// AvgLatency is the mean packet latency in cycles over packets created
	// during the measurement window and delivered before the drain limit.
	AvgLatency float64
	// Throughput is accepted flits per cycle per terminal during the
	// measurement window.
	Throughput float64
	// MeasuredPackets counts packets created during measurement.
	MeasuredPackets int
	// Unfinished counts measured packets not delivered by the drain limit.
	Unfinished int
	// Saturated is set when the network failed to deliver a meaningful
	// fraction of measured packets, i.e. the offered load exceeds the
	// saturation throughput.
	Saturated bool
	// Cycles is the total simulated cycle count.
	Cycles int64
	// FlitsDelivered counts all flits ejected over the whole run.
	FlitsDelivered int64
	// LatencyP50, LatencyP99 and LatencyMax are exact order statistics of
	// measured packet latency in cycles.
	LatencyP50, LatencyP99, LatencyMax int
	// RequestLatency and ReplyLatency split AvgLatency by message class.
	RequestLatency, ReplyLatency float64
	// AvgHops is the mean router-traversal count of measured packets.
	AvgHops float64
	// SpecGrantsUsed, Misspeculations and SpecMasked aggregate the routers'
	// speculation outcomes over the whole run (§5.2): grants that moved a
	// flit, grants wasted on failed VC allocation, and proposals the
	// conflict masking discarded.
	SpecGrantsUsed, Misspeculations, SpecMasked int64
}

// event kinds scheduled on the timing wheel.
type event struct {
	kind     eventKind
	router   int
	port, vc int
	terminal int
	flit     *router.Flit
}

type eventKind int

const (
	evFlitToRouter eventKind = iota
	evCreditToRouter
	evFlitToTerminal
	evCreditToTerminal
)

// Network is an instantiated simulation.
type Network struct {
	cfg       Config
	routers   []*router.Router
	terminals []*terminal
	wheel     [][]event
	wheelSize int64
	now       int64

	// lastStep[r] is the last cycle router r was stepped; the active-set
	// scheduler uses it to replay skipped idle cycles into the allocators.
	lastStep []int64

	// Free lists recycle flit and packet objects between ejection and the
	// next injection; a Network is single-goroutine so no locking is needed.
	flitPool []*router.Flit
	pktPool  []*router.Packet

	nextPktID int64
	created   int64 // flits injected into source queues (for conservation)
	delivered int64

	// measurement
	measStart, measEnd int64
	latencySum         float64
	latencyCount       int
	measuredCreated    int
	measFlits          int64
	inFlight           int // measured packets not yet delivered
	latHist            stats.Hist
	reqLat, repLat     stats.Running
	hops               stats.Running
}

// wheelSizeFor sizes the timing wheel for a topology: the largest delay
// ever scheduled is max(channel flit/credit delay 2+L, terminal credit
// round trip 4), and a wheel of maxDelay+1 slots distinguishes all of them
// from "now".
func wheelSizeFor(t *topology.Topology) int64 {
	maxDelay := int64(4)
	for _, ch := range t.Channels {
		if d := int64(2 + ch.Latency); d > maxDelay {
			maxDelay = d
		}
	}
	return maxDelay + 1
}

// New builds a network simulation.
func New(cfg Config) *Network {
	cfg.applyDefaults()
	if cfg.Topology == nil || cfg.Routing == nil {
		panic("sim: Topology and Routing required")
	}
	if err := cfg.Spec.Validate(); err != nil {
		panic(err)
	}
	if cfg.Spec.MessageClasses != 2 {
		panic("sim: request/reply traffic needs 2 message classes")
	}
	if cfg.Spec.ResourceClasses != cfg.Routing.ResourceClasses() {
		panic(fmt.Sprintf("sim: spec has %d resource classes, routing needs %d",
			cfg.Spec.ResourceClasses, cfg.Routing.ResourceClasses()))
	}
	ws := wheelSizeFor(cfg.Topology)
	n := &Network{
		cfg:       cfg,
		wheel:     make([][]event, ws),
		wheelSize: ws,
		lastStep:  make([]int64, cfg.Topology.Routers),
	}
	for i := range n.lastStep {
		n.lastStep[i] = -1
	}
	root := xrand.New(cfg.Seed)
	for r := 0; r < cfg.Topology.Routers; r++ {
		rcfg := router.Config{
			ID:       r,
			Ports:    cfg.Topology.Ports,
			Spec:     cfg.Spec,
			BufDepth: cfg.BufDepth,
			Routing:  cfg.Routing,
			VA:       cfg.VA,
			SA:       cfg.SA,
		}
		if cfg.Trace != nil {
			rcfg.Trace = cfg.Trace
		}
		rcfg.Validate = cfg.Validate
		n.routers = append(n.routers, router.New(rcfg))
	}
	for t := 0; t < cfg.Topology.Terminals(); t++ {
		rid, port := cfg.Topology.TerminalRouter(t)
		n.terminals = append(n.terminals, newTerminal(t, rid, port, cfg, root.Split(uint64(t)+1)))
	}
	return n
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Router returns router r (exposed for tests).
func (n *Network) Router(r int) *router.Router { return n.routers[r] }

func (n *Network) schedule(delay int64, e event) {
	if delay < 1 || delay >= n.wheelSize {
		panic(fmt.Sprintf("sim: bad event delay %d (wheel size %d)", delay, n.wheelSize))
	}
	slot := (n.now + delay) % n.wheelSize
	n.wheel[slot] = append(n.wheel[slot], e)
}

// Occupancy implements routing.QueueEstimator for UGAL.
func (n *Network) Occupancy(r, p int) int { return n.routers[r].OutputOccupancy(p) }

// stepCycle advances the simulation by one cycle.
//
// The default schedule is active-set: terminals that cannot make progress
// (no offered load, no open packet, empty source queues) and quiescent
// routers (no occupied input VC) are skipped. Skipping is bit-exact with
// the dense schedule because a dormant terminal draws no randomness (the
// injection process consumes no RNG at zero rate) and a quiescent router's
// Step is a state no-op apart from idle-variant allocator priority, which
// SkipIdle replays on wake-up. Iteration stays in id order in both modes,
// so packet IDs and RNG streams are identical.
func (n *Network) stepCycle() {
	if n.cfg.Trace != nil {
		n.cfg.Trace.SetCycle(n.now)
	}
	// 1. Deliver events scheduled for this cycle.
	slot := n.now % n.wheelSize
	for _, e := range n.wheel[slot] {
		switch e.kind {
		case evFlitToRouter:
			n.routers[e.router].AcceptFlit(e.port, e.vc, e.flit)
		case evCreditToRouter:
			n.routers[e.router].AcceptCredit(e.port, e.vc)
		case evFlitToTerminal:
			n.terminals[e.terminal].receive(n, e.flit)
		case evCreditToTerminal:
			n.terminals[e.terminal].credit(e.vc)
		}
	}
	n.wheel[slot] = n.wheel[slot][:0]

	// 2. Terminals: new transactions and flit injection.
	// 3. Routers: one pipeline cycle each.
	if n.cfg.Dense {
		for _, t := range n.terminals {
			t.generate(n)
			t.send(n)
		}
		for _, r := range n.routers {
			n.stepRouter(r)
		}
	} else {
		for _, t := range n.terminals {
			if t.dormant() {
				continue
			}
			t.generate(n)
			t.send(n)
		}
		for i, r := range n.routers {
			if r.Quiescent() {
				continue
			}
			if gap := n.now - n.lastStep[i] - 1; gap > 0 {
				r.SkipIdle(gap)
			}
			n.lastStep[i] = n.now
			n.stepRouter(r)
		}
	}
	n.now++
}

// stepRouter advances one router and schedules its departures and credits.
func (n *Network) stepRouter(r *router.Router) {
	topo := n.cfg.Topology
	deps, credits := r.Step()
	for _, d := range deps {
		if topo.IsTerminalPort(d.OutPort) {
			term := topo.RouterTerminal(r.ID(), d.OutPort)
			// ST (1) + ejection link (1).
			n.schedule(2, event{kind: evFlitToTerminal, terminal: term, flit: d.Flit})
			// Sink consumes instantly; credit returns after the round
			// trip (ejection link + credit processing).
			n.schedule(4, event{kind: evCreditToRouter, router: r.ID(), port: d.OutPort, vc: d.OutVC})
			continue
		}
		ch := topo.Channels[topo.OutChannel[r.ID()][d.OutPort]]
		n.schedule(int64(2+ch.Latency), event{
			kind: evFlitToRouter, router: ch.Dst, port: ch.DstPort, vc: d.OutVC, flit: d.Flit,
		})
	}
	for _, c := range credits {
		if topo.IsTerminalPort(c.InPort) {
			term := topo.RouterTerminal(r.ID(), c.InPort)
			n.schedule(2, event{kind: evCreditToTerminal, terminal: term, vc: c.InVC})
			continue
		}
		ch := topo.Channels[topo.InChannel[r.ID()][c.InPort]]
		n.schedule(int64(2+ch.Latency), event{
			kind: evCreditToRouter, router: ch.Src, port: ch.SrcPort, vc: c.InVC,
		})
	}
}

// Run executes warmup, measurement and drain and returns the result.
func (n *Network) Run() Result {
	cfg := n.cfg
	n.measStart = int64(cfg.Warmup)
	n.measEnd = int64(cfg.Warmup + cfg.Measure)
	for n.now < n.measEnd {
		n.stepCycle()
	}
	drainEnd := n.measEnd + int64(cfg.Drain)
	for n.now < drainEnd && n.inFlight > 0 {
		n.stepCycle()
	}
	res := Result{
		MeasuredPackets: n.measuredCreated,
		Unfinished:      n.inFlight,
		Cycles:          n.now,
		FlitsDelivered:  n.delivered,
		Throughput:      float64(n.measFlits) / float64(cfg.Measure) / float64(cfg.Topology.Terminals()),
		LatencyP50:      n.latHist.Median(),
		LatencyP99:      n.latHist.P99(),
		LatencyMax:      n.latHist.Max(),
		RequestLatency:  n.reqLat.Mean(),
		ReplyLatency:    n.repLat.Mean(),
		AvgHops:         n.hops.Mean(),
	}
	for _, r := range n.routers {
		s := r.Stats()
		res.SpecGrantsUsed += s.SpecGrantsUsed
		res.Misspeculations += s.Misspeculations
		res.SpecMasked += s.SpecMasked
	}
	if n.latencyCount > 0 {
		res.AvgLatency = n.latencySum / float64(n.latencyCount)
	}
	// The network is saturated when a non-negligible fraction of measured
	// packets never drained.
	if n.measuredCreated > 0 && float64(res.Unfinished) > 0.02*float64(n.measuredCreated) {
		res.Saturated = true
	}
	return res
}

// packetDelivered records statistics when a packet's tail reaches its
// destination terminal.
func (n *Network) packetDelivered(p *router.Packet) {
	if p.CreatedAt >= n.measStart && p.CreatedAt < n.measEnd {
		lat := n.now - p.CreatedAt
		n.latencySum += float64(lat)
		n.latencyCount++
		n.latHist.Add(int(lat))
		if p.Type.IsRequest() {
			n.reqLat.Add(float64(lat))
		} else {
			n.repLat.Add(float64(lat))
		}
		n.hops.Add(float64(p.Hops))
		n.inFlight--
	}
}

// flitDelivered counts ejected flits for throughput accounting.
func (n *Network) flitDelivered() {
	n.delivered++
	if n.now >= n.measStart && n.now < n.measEnd {
		n.measFlits++
	}
}

// newPacket registers a freshly created packet, reusing a recycled object
// when one is available.
func (n *Network) newPacket(t traffic.PacketType, src, dst int, createdAt int64) *router.Packet {
	n.nextPktID++
	var p *router.Packet
	if k := len(n.pktPool); k > 0 {
		p = n.pktPool[k-1]
		n.pktPool = n.pktPool[:k-1]
	} else {
		p = new(router.Packet)
	}
	*p = router.Packet{
		ID:        n.nextPktID,
		Type:      t,
		Src:       src,
		Dst:       dst,
		Size:      t.Flits(),
		CreatedAt: createdAt,
		Route:     routing.PacketRoute{DestTerminal: dst, Intermediate: -1},
	}
	n.created += int64(p.Size)
	if createdAt >= n.measStart && createdAt < n.measEnd {
		n.measuredCreated++
		n.inFlight++
	}
	return p
}

// makeFlits expands a packet into flits appended to buf[:0], drawing from
// the free list; it replaces router.MakeFlits on the injection path.
func (n *Network) makeFlits(p *router.Packet, buf []*router.Flit) []*router.Flit {
	buf = buf[:0]
	for i := 0; i < p.Size; i++ {
		var f *router.Flit
		if k := len(n.flitPool); k > 0 {
			f = n.flitPool[k-1]
			n.flitPool = n.flitPool[:k-1]
		} else {
			f = new(router.Flit)
		}
		f.Pkt, f.Seq, f.Head, f.Tail = p, i, i == 0, i == p.Size-1
		buf = append(buf, f)
	}
	return buf
}

// recycleFlit returns an ejected flit to the free list.
func (n *Network) recycleFlit(f *router.Flit) {
	f.Pkt = nil
	n.flitPool = append(n.flitPool, f)
}

// recyclePacket returns a fully delivered packet to the free list.
func (n *Network) recyclePacket(p *router.Packet) {
	n.pktPool = append(n.pktPool, p)
}

// Conservation reports (flits injected into source queues and sent,
// flits delivered); exposed for invariant tests.
func (n *Network) Conservation() (sent, delivered int64) {
	return n.created, n.delivered
}
