// Package sim assembles routers, channels and terminals into the
// cycle-accurate network simulations of Becker & Dally (SC '09) §3.2 and
// drives them through warmup, measurement and drain phases to produce the
// latency/throughput curves of Figs. 13 and 14.
//
// Timing model (cycles):
//   - Router pipeline: VC+switch allocation in the cycle a flit is at the
//     buffer front, switch traversal in the next cycle; a flit departing a
//     router at cycle t becomes processable at the downstream router at
//     t + 2 + L for a channel of latency L. With speculation a head flit
//     spends the minimum 2 cycles per router; without it, VC allocation
//     adds one cycle per hop for head flits.
//   - Credits travel back with the same channel latency plus one processing
//     cycle.
//   - Terminal injection/ejection links have latency 1.
package sim

import (
	"context"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sharecache"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// Config describes one simulation run.
type Config struct {
	// Topology is the network graph.
	Topology *topology.Topology
	// Routing is the routing function (must match the topology).
	Routing routing.Function
	// Spec is the router VC organization; Spec.ResourceClasses must equal
	// Routing.ResourceClasses() and Spec.MessageClasses must be 2 for the
	// request/reply protocol.
	Spec core.VCSpec
	// BufDepth is the per-VC buffer depth in flits (paper: 8).
	BufDepth int
	// VA selects the VC allocator microarchitecture (Arch, ArbKind,
	// Sparse); Ports/Spec are filled in per router.
	VA core.VCAllocConfig
	// SA selects the switch allocator microarchitecture and speculation
	// scheme; Ports/VCs are filled in per router.
	SA core.SwitchAllocConfig
	// Workload selects the injection workload: arrival process, traffic
	// pattern and their parameters (traffic.Workload). The zero value is
	// the paper default (Bernoulli over uniform), with the legacy Pattern /
	// InjectionRate fields below feeding its zero fields for backward
	// compatibility; applyDefaults normalizes the three into one coherent
	// spec.
	Workload traffic.Workload
	// Pattern chooses packet destinations (default: built from
	// Workload.Pattern; an explicitly set Pattern object wins over the
	// workload's pattern name).
	Pattern traffic.Pattern
	// InjectionRate is the offered load in flits/cycle/terminal (legacy
	// field: used when Workload.Rate is zero, and kept in sync with it).
	InjectionRate float64
	// RecordArrivals makes every terminal record its injected request
	// transactions; Network.ArrivalTrace returns the merged trace after a
	// run, ready for trace-replay workloads.
	RecordArrivals bool
	// ReadFraction is the probability a transaction is a read. Nil selects
	// the paper's default of 0.5; point at 0 for an all-write workload.
	ReadFraction *float64
	// Seed makes the run deterministic.
	Seed uint64
	// Warmup, Measure and Drain are the phase lengths in cycles.
	Warmup, Measure, Drain int
	// Shards partitions the routers (each with its attached terminals) into
	// this many groups that step concurrently within each cycle; a serial
	// end-of-cycle merge keeps results bit-identical to the serial stepper
	// for any value. 0 or 1 selects the serial stepper; values above the
	// router count are clamped; tracing forces serial (collectors are not
	// concurrency-safe, and same-cycle trace events need inline packet IDs).
	Shards int
	// Trace, when non-nil, receives pipeline and terminal events stamped
	// with the simulation cycle.
	Trace *trace.Tracer
	// Validate enables per-cycle allocation checking in every router
	// (panics on any invariant violation); used by tests.
	Validate bool
	// Dense disables the active-set scheduler and steps every router and
	// terminal every cycle. Results are bit-identical either way; the dense
	// stepper is kept as the golden reference for that equivalence.
	Dense bool
	// DenseRequests disables the routers' change-driven request caching:
	// every stepped router rebuilds all VA/SA requests from scratch each
	// cycle. Results are bit-identical either way; the dense rebuild is
	// kept as the golden reference for that equivalence (it is a separate
	// axis from Dense, which governs which routers are stepped at all).
	DenseRequests bool
	// Leap enables event leaping (see leap.go): when every router is
	// quiescent, every terminal is dormant and no event is due, the clock
	// jumps directly to the earliest pending timing-wheel event or
	// presampled terminal arrival instead of ticking empty cycles. Results
	// are bit-identical either way; the per-cycle stepper is kept as the
	// golden reference for that equivalence. Dense or tracing forces the
	// leap path off (the dense schedule steps every entity every cycle by
	// definition, and traces record per-cycle state).
	Leap bool
}

func (c *Config) applyDefaults() {
	if c.BufDepth == 0 {
		c.BufDepth = 8
	}
	if c.ReadFraction == nil {
		rf := 0.5
		c.ReadFraction = &rf
	}
	// Unify the workload spec with the legacy fields: the legacy rate feeds
	// a zero Workload.Rate, normalization fills process/pattern defaults,
	// and the legacy field is re-synced so old readers stay coherent.
	if c.Workload.Rate == 0 {
		c.Workload.Rate = c.InjectionRate
	}
	c.Workload = c.Workload.Normalized()
	c.InjectionRate = c.Workload.Rate
	if err := c.Workload.Validate(c.Topology.Terminals()); err != nil {
		panic(err)
	}
	if c.Pattern == nil {
		p, err := c.Workload.NewPattern(c.Topology.Terminals())
		if err != nil {
			panic(err)
		}
		c.Pattern = p
	}
	if c.Warmup == 0 {
		c.Warmup = 2000
	}
	if c.Measure == 0 {
		c.Measure = 5000
	}
	if c.Drain == 0 {
		c.Drain = 20000
	}
}

// Result summarizes one run.
type Result struct {
	// AvgLatency is the mean packet latency in cycles over packets created
	// during the measurement window and delivered before the drain limit.
	AvgLatency float64
	// Throughput is accepted flits per cycle per terminal during the
	// measurement window.
	Throughput float64
	// MeasuredPackets counts packets created during measurement.
	MeasuredPackets int
	// Unfinished counts measured packets not delivered by the drain limit.
	Unfinished int
	// Saturated is set when the network failed to deliver a meaningful
	// fraction of measured packets, i.e. the offered load exceeds the
	// saturation throughput.
	Saturated bool
	// Aborted is set when RunCtx observed its context cancelled and stopped
	// early; every other field then describes the partial run and must not
	// be compared against a completed one.
	Aborted bool
	// Cycles is the total simulated cycle count.
	Cycles int64
	// FlitsDelivered counts all flits ejected over the whole run.
	FlitsDelivered int64
	// LatencyP50, LatencyP99 and LatencyMax are exact order statistics of
	// measured packet latency in cycles.
	LatencyP50, LatencyP99, LatencyMax int
	// RequestLatency and ReplyLatency split AvgLatency by message class.
	RequestLatency, ReplyLatency float64
	// AvgHops is the mean router-traversal count of measured packets.
	AvgHops float64
	// SpecGrantsUsed, Misspeculations and SpecMasked aggregate the routers'
	// speculation outcomes over the whole run (§5.2): grants that moved a
	// flit, grants wasted on failed VC allocation, and proposals the
	// conflict masking discarded.
	SpecGrantsUsed, Misspeculations, SpecMasked int64
}

// event kinds scheduled on the timing wheels.
type event struct {
	kind     eventKind
	router   int
	port, vc int
	terminal int
	flit     *router.Flit
}

type eventKind int

const (
	evFlitToRouter eventKind = iota
	evCreditToRouter
	evFlitToTerminal
	evCreditToTerminal
)

// Network is an instantiated simulation.
type Network struct {
	cfg       Config
	routers   []*router.Router
	terminals []*terminal
	now       int64
	// nowSlot tracks now % wheelSize incrementally, so the per-event wheel
	// indexing in slotFor/phase1 never pays a hardware divide.
	nowSlot int64

	// shards partition the routers and terminals; shardOfRouter maps a
	// router id to its owner. The serial stepper is the one-shard case.
	shards        []*shard
	shardOfRouter []int32
	wheelSize     int64
	serial        bool

	// Worker pool for the sharded stepper (see shard.go); started lazily on
	// the first parallel cycle, stopped by Close.
	workersUp bool
	startCh   []chan struct{}
	doneCh    chan workerResult

	nextPktID int64

	// Event-leaping state (leap.go): leapOn caches the effective Leap
	// setting after the Dense/Trace clamps; the counters feed LeapStats.
	leapOn      bool
	leapEvents  int64
	cyclesLeapt int64

	// Measurement state. Only the serial commit phase mutates it, so the
	// floating-point accumulation order — the one place where reordering
	// would leak into results — is independent of the shard layout.
	measStart, measEnd int64
	latencySum         float64
	latencyCount       int
	measuredCreated    int
	inFlight           int // measured packets not yet delivered
	latHist            stats.Hist
	reqLat, repLat     stats.Running
	hops               stats.Running
}

// wheelSizeFor sizes the timing wheels for a topology: the largest delay
// ever scheduled is max(channel flit/credit delay 2+L, terminal credit
// round trip 4), and a wheel of maxDelay+1 slots distinguishes all of them
// from "now".
func wheelSizeFor(t *topology.Topology) int64 {
	maxDelay := int64(4)
	for _, ch := range t.Channels {
		if d := int64(2 + ch.Latency); d > maxDelay {
			maxDelay = d
		}
	}
	return maxDelay + 1
}

// New builds a network simulation.
func New(cfg Config) *Network {
	cfg.applyDefaults()
	if cfg.Topology == nil || cfg.Routing == nil {
		panic("sim: Topology and Routing required")
	}
	if err := cfg.Spec.Validate(); err != nil {
		panic(err)
	}
	if cfg.Spec.MessageClasses != 2 {
		panic("sim: request/reply traffic needs 2 message classes")
	}
	if cfg.Spec.ResourceClasses != cfg.Routing.ResourceClasses() {
		panic(fmt.Sprintf("sim: spec has %d resource classes, routing needs %d",
			cfg.Spec.ResourceClasses, cfg.Routing.ResourceClasses()))
	}
	n := &Network{
		cfg:       cfg,
		wheelSize: wheelSizeFor(cfg.Topology),
		leapOn:    cfg.Leap && !cfg.Dense && cfg.Trace == nil,
	}
	root := xrand.New(cfg.Seed)
	masks := sharedClassMasks(cfg.Spec)
	for r := 0; r < cfg.Topology.Routers; r++ {
		rcfg := router.Config{
			ID:         r,
			Ports:      cfg.Topology.Ports,
			Spec:       cfg.Spec,
			BufDepth:   cfg.BufDepth,
			Routing:    cfg.Routing,
			VA:         cfg.VA,
			SA:         cfg.SA,
			ClassMasks: masks,
		}
		if cfg.Trace != nil {
			rcfg.Trace = cfg.Trace
		}
		rcfg.Validate = cfg.Validate
		rcfg.DenseRequests = cfg.DenseRequests
		n.routers = append(n.routers, router.New(rcfg))
	}
	procs, err := cfg.Workload.Processes(cfg.Topology.Terminals())
	if err != nil {
		panic(err)
	}
	for t := 0; t < cfg.Topology.Terminals(); t++ {
		rid, port := cfg.Topology.TerminalRouter(t)
		n.terminals = append(n.terminals, newTerminal(t, rid, port, cfg, root.Split(uint64(t)+1), procs[t]))
	}
	n.buildShards()
	return n
}

// sharedClassMasks returns the per-(message class, resource class) output-VC
// candidate masks for a spec through the share cache: every router of every
// concurrently running simulation with the same VC organization reads one
// slice instead of building its own (routers only consume the masks via
// AndNotInto, so sharing is read-only — see router.Config.ClassMasks). When
// sharing is disabled it returns nil, which keeps the original per-router
// build as the cold reference path.
func sharedClassMasks(spec core.VCSpec) []*bitvec.Vec {
	if !sharecache.Default.Enabled() {
		return nil
	}
	// The masks depend only on the class geometry (ClassMask marks the VCs
	// of one (m, r) class); ResourceSucc is included in the key anyway so a
	// custom successor relation can never alias a default one.
	key := fmt.Sprintf("classmasks/%dx%dx%d/%v",
		spec.MessageClasses, spec.ResourceClasses, spec.VCsPerClass, spec.ResourceSucc)
	return sharecache.Get(sharecache.Default, key, func() []*bitvec.Vec {
		var ms []*bitvec.Vec
		for m := 0; m < spec.MessageClasses; m++ {
			for rc := 0; rc < spec.ResourceClasses; rc++ {
				ms = append(ms, spec.ClassMask(m, rc))
			}
		}
		return ms
	})
}

// buildShards partitions the routers into contiguous balanced ranges, each
// taking its attached terminals along (terminal t lives on router t/conc,
// so terminal ranges are contiguous too and shard-order concatenation of
// per-shard terminal iteration preserves global terminal-id order — the
// property the commit phase's ID assignment relies on).
func (n *Network) buildShards() {
	R := n.cfg.Topology.Routers
	conc := n.cfg.Topology.Concentration
	S := n.cfg.Shards
	if S < 1 || n.cfg.Trace != nil {
		S = 1
	}
	if S > R {
		S = R
	}
	n.serial = S == 1
	n.shardOfRouter = make([]int32, R)
	for i := 0; i < S; i++ {
		r0, r1 := i*R/S, (i+1)*R/S
		s := &shard{
			id:  i,
			net: n,
			r0:  r0, r1: r1,
			t0: r0 * conc, t1: r1 * conc,
			wheel:    make([][]event, n.wheelSize),
			slotLow:  make([]int32, n.wheelSize),
			occ:      make([]uint64, (n.wheelSize+63)/64),
			outCur:   make([][]outEvent, S),
			outPrev:  make([][]outEvent, S),
			lastStep: make([]int64, r1-r0),
		}
		for j := range s.lastStep {
			s.lastStep[j] = -1
		}
		for r := r0; r < r1; r++ {
			n.shardOfRouter[r] = int32(i)
		}
		n.shards = append(n.shards, s)
	}
}

// Now returns the current cycle.
func (n *Network) Now() int64 { return n.now }

// Router returns router r (exposed for tests).
func (n *Network) Router(r int) *router.Router { return n.routers[r] }

// Shards returns the number of shards the network actually runs with
// (after clamping), for tests and tools reporting their configuration.
func (n *Network) Shards() int { return len(n.shards) }

// Occupancy implements routing.QueueEstimator for UGAL. During phase 1 it
// is only ever invoked for a terminal's own router (UGAL estimates queue
// delay at the source), which lives on the terminal's shard, so the read
// races with no other shard's writes.
func (n *Network) Occupancy(r, p int) int { return n.routers[r].OutputOccupancy(p) }

// stepCycle advances the simulation by one cycle in two phases: every
// shard delivers its due events and steps its terminals and routers
// (concurrently when Shards > 1), then a serial merge commits cross-shard
// events, new-packet IDs and delivery statistics in a canonical order (see
// shard.go for why that makes results bit-identical for any shard count).
//
// Within a shard the default schedule is active-set: terminals that cannot
// make progress (no offered load, no open packet, empty source queues) and
// quiescent routers (no occupied input VC) are skipped. Skipping is
// bit-exact with the dense schedule because a dormant terminal draws no
// randomness (the injection process consumes no RNG at zero rate) and a
// quiescent router's Step is a state no-op apart from idle-variant
// allocator priority, which SkipIdle replays on wake-up. Iteration stays
// in id order in both modes, so packet IDs and RNG streams are identical.
func (n *Network) stepCycle() {
	if n.cfg.Trace != nil {
		n.cfg.Trace.SetCycle(n.now)
	}
	if n.serial {
		n.shards[0].phase1()
	} else {
		n.runShardsParallel()
	}
	n.mergeAndCommit()
	n.now++
	if n.nowSlot++; n.nowSlot == n.wheelSize {
		n.nowSlot = 0
	}
}

// AbortCheckInterval is the number of run-loop iterations between
// cancellation checks in RunCtx. A cancelled context is observed within one
// interval: at most AbortCheckInterval stepped cycles (leap iterations also
// count, so wall-clock latency is bounded even when leaps cover long
// stretches). Tests pin worker-release latency against this constant.
const AbortCheckInterval = 256

// Run executes warmup, measurement and drain and returns the result. With
// Config.Leap the loops first offer each cycle to the leap gate (leap.go),
// which jumps the clock over provably empty stretches; tryLeap never
// advances past the phase horizon, so phase boundaries land on exactly the
// cycles per-cycle ticking would visit.
func (n *Network) Run() Result {
	return n.RunCtx(context.Background())
}

// RunCtx is Run with cooperative cancellation: every AbortCheckInterval
// loop iterations the context's done channel is polled (a counter decrement
// and an empty select in the steady state, so the zero-alloc hot loop and
// bit-identical goldens are unaffected), and a cancelled run returns early
// with Result.Aborted set. Abort never lands mid-cycle — the check sits
// between cycles, when no shard worker is running — so a partial run is
// internally consistent, just incomplete.
func (n *Network) RunCtx(ctx context.Context) Result {
	defer n.Close()
	done := ctx.Done()
	checkIn := AbortCheckInterval
	aborted := false
	cfg := n.cfg
	n.measStart = int64(cfg.Warmup)
	n.measEnd = int64(cfg.Warmup + cfg.Measure)
	for n.now < n.measEnd {
		if checkIn--; checkIn <= 0 {
			checkIn = AbortCheckInterval
			select {
			case <-done:
				aborted = true
			default:
			}
			if aborted {
				break
			}
		}
		if n.tryLeap(n.measEnd) {
			continue
		}
		n.stepCycle()
	}
	drainEnd := n.measEnd + int64(cfg.Drain)
	for !aborted && n.now < drainEnd && n.inFlight > 0 {
		if checkIn--; checkIn <= 0 {
			checkIn = AbortCheckInterval
			select {
			case <-done:
				aborted = true
			default:
			}
			if aborted {
				break
			}
		}
		if n.tryLeap(drainEnd) {
			continue
		}
		n.stepCycle()
	}
	var measFlits int64
	for _, s := range n.shards {
		measFlits += s.measFlits
	}
	res := Result{
		Aborted:         aborted,
		MeasuredPackets: n.measuredCreated,
		Unfinished:      n.inFlight,
		Cycles:          n.now,
		FlitsDelivered:  n.deliveredFlits(),
		Throughput:      float64(measFlits) / float64(cfg.Measure) / float64(cfg.Topology.Terminals()),
		LatencyP50:      n.latHist.Median(),
		LatencyP99:      n.latHist.P99(),
		LatencyMax:      n.latHist.Max(),
		RequestLatency:  n.reqLat.Mean(),
		ReplyLatency:    n.repLat.Mean(),
		AvgHops:         n.hops.Mean(),
	}
	for _, r := range n.routers {
		s := r.Stats()
		res.SpecGrantsUsed += s.SpecGrantsUsed
		res.Misspeculations += s.Misspeculations
		res.SpecMasked += s.SpecMasked
	}
	if n.latencyCount > 0 {
		res.AvgLatency = n.latencySum / float64(n.latencyCount)
	}
	// The network is saturated when a non-negligible fraction of measured
	// packets never drained.
	if n.measuredCreated > 0 && float64(res.Unfinished) > 0.02*float64(n.measuredCreated) {
		res.Saturated = true
	}
	return res
}

// packetDelivered records statistics when a packet's tail reaches its
// destination terminal; called only from the serial commit phase, in
// destination-terminal order.
func (n *Network) packetDelivered(p *router.Packet) {
	if p.CreatedAt >= n.measStart && p.CreatedAt < n.measEnd {
		lat := n.now - p.CreatedAt
		n.latencySum += float64(lat)
		n.latencyCount++
		n.latHist.Add(int(lat))
		if p.Type.IsRequest() {
			n.reqLat.Add(float64(lat))
		} else {
			n.repLat.Add(float64(lat))
		}
		n.hops.Add(float64(p.Hops))
		n.inFlight--
	}
}

// deliveredFlits sums the per-shard ejected-flit counters.
func (n *Network) deliveredFlits() int64 {
	var d int64
	for _, s := range n.shards {
		d += s.delivered
	}
	return d
}

// Conservation reports (flits injected into source queues and sent,
// flits delivered); exposed for invariant tests.
func (n *Network) Conservation() (sent, delivered int64) {
	var c int64
	for _, s := range n.shards {
		c += s.created
	}
	return c, n.deliveredFlits()
}
