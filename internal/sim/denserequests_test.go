package sim

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
)

// TestDenseRequestsGolden is the core contract of the change-driven request
// cache: rebuilding only dirty VCs' VA/SA request entries must reproduce the
// dense per-cycle rebuild bit for bit — same grants, same packet IDs, same
// floating-point latency sums — at seed 42 on both paper topologies and all
// three speculation modes, composed with the active-set scheduler and both
// shard counts. Validate is on for the change-driven runs, so every cycle
// also cross-checks the cached request vectors against a dense rebuild
// inside the router; under `go test -race` (CI does) this doubles as the
// data-race certification of the dirty-mask bookkeeping.
func TestDenseRequestsGolden(t *testing.T) {
	for _, mk := range []func(int, float64) Config{meshConfig, fbflyConfig} {
		for _, mode := range []core.SpecMode{core.SpecNone, core.SpecGnt, core.SpecReq} {
			base := mk(2, 0.3)
			base.Seed = 42
			base.SA.SpecMode = mode
			base.Warmup, base.Measure, base.Drain = 200, 500, 5000
			ref := base
			ref.DenseRequests = true
			want := New(ref).Run()
			for _, shards := range []int{1, 4} {
				cfg := base
				cfg.Shards = shards
				cfg.Validate = true
				if got := New(cfg).Run(); got != want {
					t.Errorf("%s %v shards=%d: change-driven requests diverged from dense rebuild:\ndense: %+v\ndirty: %+v",
						base.Topology.Name, mode, shards, want, got)
				}
			}
		}
	}
}

// TestDenseRequestsComposesWithVariants pins the cache's bit-exactness for
// the allocator variants with cross-cycle request-derived state — the
// free-queue VC allocator re-infers freed VCs from the candidate vectors it
// is shown, and the precomputed switch allocator latches a full request
// snapshot — plus the wavefront architectures whose engines keep dirty-row
// scratch between calls.
func TestDenseRequestsComposesWithVariants(t *testing.T) {
	variants := []struct {
		name string
		set  func(*Config)
	}{
		{"freequeue", func(c *Config) { c.VA.FreeQueue = true }},
		{"precomputed", func(c *Config) {
			c.SA.Precomputed = true
			c.SA.SpecMode = core.SpecNone
		}},
		{"wavefront", func(c *Config) {
			c.VA.Arch = alloc.Wavefront
			c.SA.Arch = alloc.Wavefront
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			base := meshConfig(2, 0.3)
			base.Seed = 42
			base.Warmup, base.Measure, base.Drain = 200, 400, 4000
			v.set(&base)
			ref := base
			ref.DenseRequests = true
			want := New(ref).Run()
			cfg := base
			cfg.Validate = true
			if got := New(cfg).Run(); got != want {
				t.Errorf("%s: change-driven requests diverged from dense rebuild:\ndense: %+v\ndirty: %+v",
					v.name, want, got)
			}
		})
	}
}
