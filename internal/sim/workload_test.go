package sim

import (
	"bytes"
	"testing"

	"repro/internal/trace"
	"repro/internal/traffic"
)

// workloadConfig builds a paper-style config at seed 42 with fast phases
// and the given workload spec.
func workloadConfig(mk func(int, float64) Config, rate float64, w traffic.Workload) Config {
	cfg := mk(2, rate)
	cfg.Seed = 42
	cfg.Warmup, cfg.Measure, cfg.Drain = 200, 500, 5000
	cfg.Workload = w
	return cfg
}

// assertExecutionGolden runs the dense per-cycle reference and requires the
// ticked active-set and event-leaped schedules (shards 1 and 4) to
// reproduce it bit for bit — the same equivalence matrix TestLeapGolden
// pins for the bernoulli/uniform baseline, extended to the new workloads.
func assertExecutionGolden(t *testing.T, name string, base Config) {
	t.Helper()
	ref := base
	ref.Dense = true
	want := New(ref).Run()
	if want.MeasuredPackets == 0 {
		t.Fatalf("%s: no measured packets; the golden is vacuous", name)
	}
	for _, shards := range []int{1, 4} {
		ticked := base
		ticked.Shards = shards
		if got := New(ticked).Run(); got != want {
			t.Errorf("%s shards=%d: ticked active-set diverged from dense:\ndense:  %+v\nticked: %+v",
				name, shards, want, got)
		}
		leap := base
		leap.Shards = shards
		leap.Leap = true
		leap.Validate = true
		if got := New(leap).Run(); got != want {
			t.Errorf("%s shards=%d: leaped run diverged from dense:\ndense: %+v\nleap:  %+v",
				name, shards, want, got)
		}
	}
}

// TestWorkloadGoldenMMP pins the execution-equivalence matrix for the
// bursty MMP arrival process on both paper topologies. The fbfly leg also
// exercises the presample rewind under UGAL's terminal-stream routing
// draws, now with phase state in the process snapshot.
func TestWorkloadGoldenMMP(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int, float64) Config
	}{
		{"mesh", meshConfig},
		{"fbfly", fbflyConfig},
	} {
		w := traffic.Workload{Process: "mmp", BurstLen: 16, Duty: 0.25}
		assertExecutionGolden(t, tc.name+"/mmp", workloadConfig(tc.mk, 0.1, w))
	}
}

// TestWorkloadGoldenHotspot pins the matrix for the hotspot spatial
// pattern, which adds destination-draw randomness to the terminal streams.
func TestWorkloadGoldenHotspot(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int, float64) Config
	}{
		{"mesh", meshConfig},
		{"fbfly", fbflyConfig},
	} {
		w := traffic.Workload{Pattern: "hotspot", Hotspots: []int{0, 9}, HotspotFraction: 0.2}
		assertExecutionGolden(t, tc.name+"/hotspot", workloadConfig(tc.mk, 0.1, w))
	}
}

// recordedTrace runs one dense recording pass and returns its trace.
func recordedTrace(t *testing.T, mk func(int, float64) Config, rate float64) *traffic.PacketTrace {
	t.Helper()
	cfg := workloadConfig(mk, rate, traffic.Workload{})
	cfg.Dense = true
	cfg.RecordArrivals = true
	n := New(cfg)
	n.Run()
	pt := n.ArrivalTrace()
	if len(pt.Arrivals) == 0 {
		t.Fatal("recording pass produced an empty trace")
	}
	return pt
}

// TestWorkloadGoldenReplay pins the matrix for trace replay on both
// topologies: a trace recorded on each network replays through the dense,
// active-set and leaped schedules bit-identically. Replay consumes no
// terminal randomness at all, so this exercises the quiet-terminal and
// exhausted-replay paths of the scheduler.
func TestWorkloadGoldenReplay(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int, float64) Config
	}{
		{"mesh", meshConfig},
		{"fbfly", fbflyConfig},
	} {
		pt := recordedTrace(t, tc.mk, 0.1)
		assertExecutionGolden(t, tc.name+"/replay", workloadConfig(tc.mk, 0, traffic.Workload{Trace: pt}))
	}
}

// TestRecordReplayRoundTrip is the end-to-end workload round trip on the
// mesh (DOR consumes no routing randomness, so the replay run is the
// recorded run): record → replay must reproduce the recording run's Result
// exactly, and re-recording during the replay must serialize byte-identical
// to the original trace.
func TestRecordReplayRoundTrip(t *testing.T) {
	rec := workloadConfig(meshConfig, 0.1, traffic.Workload{})
	rec.RecordArrivals = true
	n := New(rec)
	want := n.Run()
	pt := n.ArrivalTrace()

	var orig bytes.Buffer
	if err := trace.WriteArrivals(&orig, pt); err != nil {
		t.Fatal(err)
	}

	rep := workloadConfig(meshConfig, 0, traffic.Workload{Trace: pt})
	rep.RecordArrivals = true
	rn := New(rep)
	got := rn.Run()
	if got != want {
		t.Errorf("replay diverged from the recording run:\nrecord: %+v\nreplay: %+v", want, got)
	}
	var again bytes.Buffer
	if err := trace.WriteArrivals(&again, rn.ArrivalTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), again.Bytes()) {
		t.Error("re-recorded trace is not byte-identical to the original")
	}
}

// TestLeapEngagesDuringBurstOFF guards the bursty golden against passing
// vacuously: at a drain-dominated rate with long OFF silences (duty 0.05,
// mean OFF stretch ~1200 cycles) the leap gate must fire and actually skip
// cycles while every terminal sits in its OFF phase.
func TestLeapEngagesDuringBurstOFF(t *testing.T) {
	cfg := workloadConfig(meshConfig, 0.002, traffic.Workload{Process: "mmp", BurstLen: 64, Duty: 0.05})
	cfg.Leap = true
	cfg.Validate = true
	n := New(cfg)
	res := n.Run()
	events, cycles := n.LeapStats()
	if events == 0 {
		t.Fatal("leap gate never fired under bursty OFF periods")
	}
	if cycles == 0 {
		t.Fatal("leap gate fired but skipped zero cycles")
	}
	if res.MeasuredPackets == 0 {
		t.Error("no measured packets; the run exercised nothing")
	}
}

// TestMMPRateChangeRewind extends the SetInjectionRate presample-rewind
// invariant to the stateful MMP process: the already-elapsed cycles replay
// at the old rate in the old phase, and the new rate takes effect at the
// current cycle, exactly as per-cycle ticking has it.
func TestMMPRateChangeRewind(t *testing.T) {
	mk := func(leap bool) *Network {
		cfg := workloadConfig(meshConfig, 0.05, traffic.Workload{Process: "mmp", BurstLen: 16, Duty: 0.25})
		cfg.Leap = leap
		return New(cfg)
	}
	a, b := mk(true), mk(false)
	step := func(n *Network, cycles int) {
		for i := 0; i < cycles; i++ {
			n.stepCycle()
		}
	}
	for phase, rate := range []float64{0.2, 0, 0.1} {
		step(a, 150)
		step(b, 150)
		a.SetInjectionRate(rate)
		b.SetInjectionRate(rate)
		if as, bs := a.SentFlits(), b.SentFlits(); as != bs {
			t.Fatalf("phase %d: presampling run sent %d flits, per-cycle run %d", phase, as, bs)
		}
	}
	step(a, 300)
	step(b, 300)
	ac, ad := a.Conservation()
	bc, bd := b.Conservation()
	if ac != bc || ad != bd {
		t.Errorf("after rate changes: presampling (created %d delivered %d) != per-cycle (created %d delivered %d)",
			ac, ad, bc, bd)
	}
}
