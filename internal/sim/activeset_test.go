package sim

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// runBoth runs the same configuration under the active-set scheduler and the
// dense reference stepper and returns both results.
func runBoth(cfg Config) (active, dense Result) {
	cfg.Dense = false
	active = New(cfg).Run()
	cfg.Dense = true
	dense = New(cfg).Run()
	return active, dense
}

// TestActiveSchedulerBitExact is the core contract of the active-set
// scheduler: skipping dormant terminals and quiescent routers must reproduce
// the dense stepper bit for bit — same RNG draw order, same packet IDs, same
// latencies and counters — across topologies, speculation modes and the
// allocator microarchitectures with idle-variant state (wavefront priority
// diagonals, precomputed request latches).
func TestActiveSchedulerBitExact(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"mesh/spec_none", func() Config { c := meshConfig(2, 0.25); c.SA.SpecMode = core.SpecNone; return c }()},
		{"mesh/spec_gnt", func() Config { c := meshConfig(2, 0.25); c.SA.SpecMode = core.SpecGnt; return c }()},
		{"mesh/spec_req", meshConfig(2, 0.25)},
		{"mesh/low-rate", meshConfig(1, 0.05)},
		{"mesh/wavefront-va-sa", func() Config {
			c := meshConfig(2, 0.3)
			c.VA.Arch = alloc.Wavefront
			c.SA.Arch = alloc.Wavefront
			return c
		}()},
		{"mesh/sparse-wf-va", func() Config {
			c := meshConfig(2, 0.3)
			c.VA.Arch = alloc.Wavefront
			c.VA.Sparse = true
			return c
		}()},
		{"mesh/precomputed-sa", func() Config {
			c := meshConfig(2, 0.2)
			c.SA.SpecMode = core.SpecNone
			c.SA.Precomputed = true
			return c
		}()},
		{"mesh/precomputed-wf-sa", func() Config {
			c := meshConfig(2, 0.2)
			c.SA.Arch = alloc.Wavefront
			c.SA.SpecMode = core.SpecNone
			c.SA.Precomputed = true
			return c
		}()},
		{"mesh/freequeue-va", func() Config {
			c := meshConfig(2, 0.2)
			c.VA = core.VCAllocConfig{ArbKind: arbiter.RoundRobin, FreeQueue: true}
			return c
		}()},
		{"fbfly/spec_req", fbflyConfig(2, 0.3)},
		{"fbfly/wavefront-sa", func() Config { c := fbflyConfig(2, 0.3); c.SA.Arch = alloc.Wavefront; return c }()},
		{"torus/dateline", torusConfig(1, 0.2)},
	}
	for _, tc := range cases {
		tc.cfg.Warmup, tc.cfg.Measure, tc.cfg.Drain = 300, 700, 6000
		active, dense := runBoth(tc.cfg)
		if active != dense {
			t.Errorf("%s: active scheduler diverged from dense reference:\nactive: %+v\ndense:  %+v",
				tc.name, active, dense)
		}
	}
}

// TestActiveSchedulerBitExactValidated re-runs the equivalence with per-cycle
// allocation checking enabled in every router across all three speculation
// modes and both paper topologies (satellite: Validate-mode invariant tests
// on the active-set scheduler).
func TestActiveSchedulerBitExactValidated(t *testing.T) {
	for _, mk := range []func(int, float64) Config{meshConfig, fbflyConfig} {
		for _, mode := range []core.SpecMode{core.SpecNone, core.SpecGnt, core.SpecReq} {
			cfg := mk(2, 0.3)
			cfg.SA.SpecMode = mode
			cfg.Validate = true
			cfg.Warmup, cfg.Measure, cfg.Drain = 200, 400, 4000
			active, dense := runBoth(cfg)
			if active != dense {
				t.Errorf("%s %v validated: active %+v != dense %+v", cfg.Topology.Name, mode, active, dense)
			}
			if active.FlitsDelivered == 0 {
				t.Errorf("%s %v validated: no flits moved", cfg.Topology.Name, mode)
			}
		}
	}
}

// TestFlitConservationActiveAllSpecModes drains a loaded network under the
// active-set scheduler for every speculation mode on both topologies: every
// flit handed to a router must eventually reach a terminal, exercising the
// dormant-terminal path once injection is cut to zero.
func TestFlitConservationActiveAllSpecModes(t *testing.T) {
	for _, mk := range []func(int, float64) Config{meshConfig, fbflyConfig} {
		for _, mode := range []core.SpecMode{core.SpecNone, core.SpecGnt, core.SpecReq} {
			cfg := mk(2, 0.3)
			cfg.SA.SpecMode = mode
			n := New(cfg)
			for i := 0; i < 2500; i++ {
				n.stepCycle()
			}
			n.SetInjectionRate(0)
			for i := 0; i < 10000; i++ {
				n.stepCycle()
				if sent, delivered := n.SentFlits(), n.deliveredFlits(); sent == delivered && i > 100 {
					break
				}
			}
			sent, delivered := n.SentFlits(), n.deliveredFlits()
			if sent != delivered {
				t.Errorf("%s %v: flit conservation violated: sent %d, delivered %d",
					cfg.Topology.Name, mode, sent, delivered)
			}
			if sent == 0 {
				t.Errorf("%s %v: no traffic moved", cfg.Topology.Name, mode)
			}
		}
	}
}

// TestSteadyStateStepAllocs verifies the recycled flit/packet path: once the
// free lists are primed, advancing a loaded simulation allocates nothing per
// cycle on average.
func TestSteadyStateStepAllocs(t *testing.T) {
	n := New(meshConfig(2, 0.3))
	for i := 0; i < 3000; i++ {
		n.stepCycle()
	}
	if avg := testing.AllocsPerRun(2000, func() { n.stepCycle() }); avg >= 1 {
		t.Fatalf("steady-state stepCycle allocates %.1f objects/cycle, want amortized zero", avg)
	}
	if n.shards[0].flitPool.free() == 0 && n.shards[0].pktPool.free() == 0 {
		t.Fatal("free lists never populated; recycling path is dead")
	}
}

// TestReadFractionZero verifies the applyDefaults bugfix: pointing
// ReadFraction at zero must yield an all-write workload (no read requests,
// no read replies), which the old float-zero-means-default config could not
// express.
func TestReadFractionZero(t *testing.T) {
	zero := 0.0
	cfg := meshConfig(1, 0.3)
	cfg.ReadFraction = &zero
	n := New(cfg)
	seen := map[traffic.PacketType]bool{}
	scan := func(p *router.Packet) {
		if p != nil {
			seen[p.Type] = true
		}
	}
	for i := 0; i < 1500; i++ {
		n.stepCycle()
		for _, term := range n.terminals {
			scan(term.cur)
			for _, q := range []*pktQueue{&term.reqQ, &term.replyQ} {
				for j := q.head; j < len(q.buf); j++ {
					scan(q.buf[j])
				}
			}
		}
	}
	if seen[traffic.ReadRequest] || seen[traffic.ReadReply] {
		t.Fatalf("ReadFraction 0 still produced read packets: %v", seen)
	}
	if !seen[traffic.WriteRequest] || !seen[traffic.WriteReply] {
		t.Fatalf("all-write workload moved no write traffic: %v", seen)
	}
}

// TestReadFractionDefault checks that leaving ReadFraction nil still applies
// the paper's 0.5 default.
func TestReadFractionDefault(t *testing.T) {
	n := New(meshConfig(1, 0.1))
	if got := n.terminals[0].gen.ReadFraction; got != 0.5 {
		t.Fatalf("default ReadFraction = %v, want 0.5", got)
	}
}

// TestLongLatencyChannels covers the wheel-sizing satellite: channel
// latencies at or above the old fixed wheel size of 16 used to panic in
// schedule; the wheel is now sized from the topology's maximum channel
// latency at New time.
func TestLongLatencyChannels(t *testing.T) {
	topo := topology.MeshWithLatency(4, 20)
	cfg := Config{
		Topology:      topo,
		Routing:       routing.NewDOR(topo),
		Spec:          core.NewVCSpec(2, 1, 2),
		VA:            core.VCAllocConfig{Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin},
		SA:            core.SwitchAllocConfig{Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin, SpecMode: core.SpecReq},
		InjectionRate: 0.05,
		Seed:          7,
		Warmup:        300,
		Measure:       700,
		Drain:         8000,
	}
	n := New(cfg)
	if want := int64(2 + 20 + 1); n.wheelSize != want {
		t.Fatalf("wheel size %d, want %d for max channel latency 20", n.wheelSize, want)
	}
	res := n.Run()
	if res.Saturated || res.Unfinished != 0 {
		t.Fatalf("long-latency mesh did not drain: %+v", res)
	}
	// A 4x4 mesh averages well over one hop, so 20-cycle channels push
	// zero-load latency far beyond the unit-latency mesh's.
	if res.AvgLatency < 40 {
		t.Fatalf("latency %.1f implausibly low for 20-cycle channels", res.AvgLatency)
	}
	// The equivalence contract holds for long-latency wheels too.
	active, dense := runBoth(cfg)
	if active != dense {
		t.Fatalf("long-latency active %+v != dense %+v", active, dense)
	}
}

// TestWheelSizedFromTopology pins the wheel sizing rule for the paper's two
// topologies: max scheduled delay is max(4, 2+maxChannelLatency), plus one
// slot to distinguish it from the current cycle.
func TestWheelSizedFromTopology(t *testing.T) {
	if ws := New(meshConfig(1, 0.1)).wheelSize; ws != 5 {
		t.Errorf("mesh wheel size %d, want 5", ws)
	}
	if ws := New(fbflyConfig(1, 0.1)).wheelSize; ws != 6 {
		t.Errorf("fbfly wheel size %d, want 6", ws)
	}
}
