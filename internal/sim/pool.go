package sim

// Free-list shrink policy, mirroring the wheel-slot policy in shard.go: a
// saturation burst can fill the recycle pools with far more flit and packet
// objects than the steady state ever redraws, and a plain append/pop free
// list would pin that peak for the rest of the run. Each cycle the pool
// records its low-water mark; after poolShrinkAfter consecutive cycles in
// which more than poolShrinkMin objects were never drawn, half of that idle
// surplus is released to the garbage collector, stepping down geometrically
// toward actual usage without thrashing at the boundary.
const (
	poolShrinkMin   = 64
	poolShrinkAfter = 64
)

// pool is a LIFO free list of recycled objects with burst decay. It follows
// the shard ownership discipline: only the owning shard touches it in
// phase 1 and only the single-threaded commit in phase 2.
type pool[T any] struct {
	items []T
	low   int // smallest len since the last trim (the never-drawn surplus)
	idle  int // consecutive trims that observed a surplus above poolShrinkMin
}

// get pops a recycled object, or returns the zero value and false.
func (p *pool[T]) get() (T, bool) {
	k := len(p.items) - 1
	if k < 0 {
		var zero T
		return zero, false
	}
	it := p.items[k]
	var zero T
	p.items[k] = zero // drop the pool's reference; the object is in flight now
	p.items = p.items[:k]
	if k < p.low {
		p.low = k
	}
	return it, true
}

// put returns an object to the free list.
func (p *pool[T]) put(it T) { p.items = append(p.items, it) }

// trim applies the shrink policy; the simulator calls it once per cycle.
func (p *pool[T]) trim() {
	if p.low > poolShrinkMin {
		if p.idle++; p.idle >= poolShrinkAfter {
			keep := len(p.items) - p.low/2
			var zero T
			for i := keep; i < len(p.items); i++ {
				p.items[i] = zero
			}
			p.items = p.items[:keep]
			if c := cap(p.items); c > poolShrinkMin && len(p.items)*4 < c {
				p.items = append(make([]T, 0, c/2), p.items...)
			}
			p.idle = 0
		}
	} else {
		p.idle = 0
	}
	p.low = len(p.items)
}

// free returns the number of pooled objects; exposed for tests.
func (p *pool[T]) free() int { return len(p.items) }
