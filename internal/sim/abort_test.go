package sim

import (
	"context"
	"testing"
	"time"
)

// TestRunCtxBackgroundMatchesRun pins that threading a never-cancelled
// context through the run loop is invisible: the result is bit-identical to
// the plain Run path for the same configuration and seed.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	cfg := meshConfig(1, 0.2)
	plain := New(cfg).Run()
	ctxed := New(cfg).RunCtx(context.Background())
	if plain != ctxed {
		t.Fatalf("RunCtx(Background) diverged from Run:\n%+v\nvs\n%+v", plain, ctxed)
	}
	if plain.Aborted {
		t.Fatalf("uncancelled run reported Aborted")
	}
}

// TestRunCtxPreCancelledAbortsWithinInterval pins the worker-release
// latency contract: a context that is already cancelled when the run starts
// is observed within one abort-check interval, i.e. at most
// AbortCheckInterval cycles are simulated before RunCtx returns.
func TestRunCtxPreCancelledAbortsWithinInterval(t *testing.T) {
	cfg := meshConfig(1, 0.3)
	cfg.Measure = 10_000_000 // far beyond what an unaborted run would tolerate
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := New(cfg).RunCtx(ctx)
	if !res.Aborted {
		t.Fatalf("pre-cancelled run did not report Aborted: %+v", res)
	}
	if res.Cycles > AbortCheckInterval {
		t.Fatalf("abort took %d cycles, want <= %d (one check interval)", res.Cycles, AbortCheckInterval)
	}
}

// TestRunCtxCancelStopsLongRun cancels a run that would otherwise simulate
// tens of millions of cycles and requires it to return promptly with the
// Aborted flag set, on both the serial and the sharded stepper.
func TestRunCtxCancelStopsLongRun(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cfg := meshConfig(1, 0.3)
		cfg.Measure = 50_000_000
		cfg.Shards = shards
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan Result, 1)
		start := time.Now()
		go func() { done <- New(cfg).RunCtx(ctx) }()
		time.Sleep(30 * time.Millisecond)
		cancel()
		select {
		case res := <-done:
			if !res.Aborted {
				t.Fatalf("shards=%d: cancelled run did not report Aborted: %+v", shards, res)
			}
			if res.Cycles <= 0 {
				t.Fatalf("shards=%d: run aborted before doing any work", shards)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("shards=%d: cancelled run still going after 30s (started %v ago)", shards, time.Since(start))
		}
	}
}
