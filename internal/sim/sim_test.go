package sim

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// meshConfig returns a full paper-style mesh configuration at the given VCs
// per class and rate, with fast test-sized phases.
func meshConfig(c int, rate float64) Config {
	topo := topology.Mesh(8)
	return Config{
		Topology:      topo,
		Routing:       routing.NewDOR(topo),
		Spec:          core.NewVCSpec(2, 1, c),
		VA:            core.VCAllocConfig{Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin},
		SA:            core.SwitchAllocConfig{Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin, SpecMode: core.SpecReq},
		InjectionRate: rate,
		Seed:          11,
		Warmup:        500,
		Measure:       1500,
		Drain:         8000,
	}
}

func fbflyConfig(c int, rate float64) Config {
	topo := topology.FlattenedButterfly(4, 4)
	cfg := meshConfig(c, rate)
	cfg.Topology = topo
	cfg.Routing = routing.NewUGAL(topo, 1)
	cfg.Spec = core.NewVCSpec(2, 2, c)
	return cfg
}

func TestLowLoadDeliversEverything(t *testing.T) {
	for _, cfg := range []Config{meshConfig(1, 0.1), fbflyConfig(1, 0.1)} {
		res := New(cfg).Run()
		if res.Saturated || res.Unfinished != 0 {
			t.Fatalf("%s: low load should drain fully: %+v", cfg.Topology.Name, res)
		}
		if res.MeasuredPackets == 0 {
			t.Fatalf("%s: no packets measured", cfg.Topology.Name)
		}
		if res.AvgLatency <= 0 {
			t.Fatalf("%s: bad latency %f", cfg.Topology.Name, res.AvgLatency)
		}
	}
}

func TestZeroLoadLatencyMesh(t *testing.T) {
	// Analytic check: with speculation, per-router latency is 2 cycles and
	// per-link 1; the 8x8 mesh under uniform traffic averages 16/3 hops,
	// so zero-load packet latency lands in the low twenties including
	// injection/ejection and serialization.
	res := New(meshConfig(1, 0.02)).Run()
	if res.AvgLatency < 18 || res.AvgLatency > 28 {
		t.Fatalf("mesh zero-load latency %.1f outside [18, 28]", res.AvgLatency)
	}
}

func TestZeroLoadLatencyFbfly(t *testing.T) {
	// The flattened butterfly's diameter is 2 hops; zero-load latency is
	// dominated by channel and serialization latency (§5.3.3).
	res := New(fbflyConfig(1, 0.02)).Run()
	if res.AvgLatency < 9 || res.AvgLatency > 17 {
		t.Fatalf("fbfly zero-load latency %.1f outside [9, 17]", res.AvgLatency)
	}
	mesh := New(meshConfig(1, 0.02)).Run()
	if res.AvgLatency >= mesh.AvgLatency {
		t.Fatalf("fbfly (%.1f) must have lower zero-load latency than mesh (%.1f)",
			res.AvgLatency, mesh.AvgLatency)
	}
}

func TestThroughputTracksOfferedLoad(t *testing.T) {
	res := New(meshConfig(2, 0.2)).Run()
	if res.Throughput < 0.18 || res.Throughput > 0.22 {
		t.Fatalf("throughput %.3f should track offered load 0.2", res.Throughput)
	}
}

func TestFlitConservation(t *testing.T) {
	// Run under load, then cut injection and drain: every flit handed to a
	// router must eventually be delivered to a terminal.
	cfg := meshConfig(2, 0.3)
	n := New(cfg)
	for i := 0; i < 3000; i++ {
		n.stepCycle()
	}
	n.SetInjectionRate(0)
	for i := 0; i < 10000; i++ {
		n.stepCycle()
		if sent, delivered := n.SentFlits(), n.deliveredFlits(); sent == delivered && i > 100 {
			break
		}
	}
	sent, delivered := n.SentFlits(), n.deliveredFlits()
	if sent != delivered {
		t.Fatalf("flit conservation violated: sent %d, delivered %d", sent, delivered)
	}
	if sent == 0 {
		t.Fatal("no traffic moved")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(meshConfig(2, 0.25)).Run()
	b := New(meshConfig(2, 0.25)).Run()
	if a.AvgLatency != b.AvgLatency || a.Throughput != b.Throughput || a.FlitsDelivered != b.FlitsDelivered {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
	c := meshConfig(2, 0.25)
	c.Seed = 12
	other := New(c).Run()
	if other.FlitsDelivered == a.FlitsDelivered && other.AvgLatency == a.AvgLatency {
		t.Fatal("different seeds suspiciously identical")
	}
}

func TestRequestReplyBalance(t *testing.T) {
	// Every delivered request elicits a reply, so over a drained run the
	// delivered flit count splits ~50/50 between 1-flit and 5-flit packet
	// types and total flits = 6 × transactions.
	cfg := meshConfig(2, 0.2)
	n := New(cfg)
	res := n.Run()
	if res.Unfinished != 0 {
		t.Fatal("run should drain")
	}
	// Measured packets include requests and replies; replies are created
	// at request delivery, so the measured population is roughly half
	// requests and half replies.
	if res.MeasuredPackets < 100 {
		t.Fatalf("too few packets measured: %d", res.MeasuredPackets)
	}
}

func TestSpeculationReducesZeroLoadLatency(t *testing.T) {
	// §5.3.3: speculation improves mesh zero-load latency by up to ~23%
	// and fbfly by ~14%.
	meshSpec := New(meshConfig(1, 0.05)).Run()
	cfgNS := meshConfig(1, 0.05)
	cfgNS.SA.SpecMode = core.SpecNone
	meshNS := New(cfgNS).Run()
	gain := 1 - meshSpec.AvgLatency/meshNS.AvgLatency
	if gain < 0.15 || gain > 0.30 {
		t.Errorf("mesh speculation gain %.2f outside [0.15, 0.30] (paper: up to 23%%)", gain)
	}

	fbSpec := New(fbflyConfig(1, 0.05)).Run()
	fbCfgNS := fbflyConfig(1, 0.05)
	fbCfgNS.SA.SpecMode = core.SpecNone
	fbNS := New(fbCfgNS).Run()
	fbGain := 1 - fbSpec.AvgLatency/fbNS.AvgLatency
	if fbGain < 0.08 || fbGain > 0.25 {
		t.Errorf("fbfly speculation gain %.2f outside [0.08, 0.25] (paper: ~14%%)", fbGain)
	}
	if fbGain >= gain {
		t.Errorf("speculation should help the mesh (%.2f) more than the fbfly (%.2f)", gain, fbGain)
	}
}

func TestSpecSchemesEquivalentAtLowLoad(t *testing.T) {
	// §5.3.3: both speculative variants yield virtually identical
	// performance at low to medium injection rates.
	for _, rate := range []float64{0.05, 0.2} {
		cfgG := meshConfig(1, rate)
		cfgG.SA.SpecMode = core.SpecGnt
		cfgR := meshConfig(1, rate)
		cfgR.SA.SpecMode = core.SpecReq
		g := New(cfgG).Run()
		r := New(cfgR).Run()
		diff := (r.AvgLatency - g.AvgLatency) / g.AvgLatency
		if diff < -0.02 || diff > 0.05 {
			t.Errorf("rate %.2f: spec_req latency %.2f vs spec_gnt %.2f (diff %.3f)",
				rate, r.AvgLatency, g.AvgLatency, diff)
		}
	}
}

func TestPessimisticBetweenNonspecAndConventionalNearSaturation(t *testing.T) {
	// §5.3.3: as load approaches saturation, spec_req latency approaches
	// the non-speculative implementation's.
	rate := 0.4
	lat := func(mode core.SpecMode) float64 {
		cfg := meshConfig(4, rate)
		cfg.SA.SpecMode = mode
		cfg.Measure = 2500
		return New(cfg).Run().AvgLatency
	}
	ns, pr, cg := lat(core.SpecNone), lat(core.SpecReq), lat(core.SpecGnt)
	if !(cg < pr) {
		t.Errorf("near saturation spec_gnt (%.1f) should beat spec_req (%.1f)", cg, pr)
	}
	if !(pr < ns*1.05) {
		t.Errorf("spec_req (%.1f) should not exceed nonspec (%.1f)", pr, ns)
	}
}

func TestWavefrontSwitchAllocatorWinsOnFbflyHighVC(t *testing.T) {
	// §5.3.3 / conclusions: the wavefront switch allocator sustains higher
	// throughput than sep_if on the flattened butterfly as VC count grows.
	thr := func(arch alloc.Arch) float64 {
		cfg := fbflyConfig(4, 0.62)
		cfg.SA.Arch = arch
		cfg.Measure = 2500
		cfg.Drain = 3000
		return New(cfg).Run().Throughput
	}
	wf, sif := thr(alloc.Wavefront), thr(alloc.SepIF)
	if wf <= sif {
		t.Fatalf("fbfly 2x2x4: wf throughput (%.3f) should beat sep_if (%.3f)", wf, sif)
	}
	if (wf-sif)/sif < 0.03 {
		t.Fatalf("fbfly 2x2x4 wf advantage only %.1f%%, expected a clear gap", 100*(wf-sif)/sif)
	}
}

func TestSwitchAllocatorsEquivalentOnMeshFewVCs(t *testing.T) {
	// §5.3.3: for the mesh with 2x1x1 VCs the saturation-rate difference
	// between allocators is negligible; check mid-load latency closeness.
	lat := func(arch alloc.Arch) float64 {
		cfg := meshConfig(1, 0.25)
		cfg.SA.Arch = arch
		return New(cfg).Run().AvgLatency
	}
	sif, sof, wf := lat(alloc.SepIF), lat(alloc.SepOF), lat(alloc.Wavefront)
	for _, pair := range [][2]float64{{sif, sof}, {sif, wf}} {
		diff := (pair[1] - pair[0]) / pair[0]
		if diff < -0.05 || diff > 0.05 {
			t.Errorf("mesh 2x1x1 mid-load latencies diverge: sep_if %.2f sep_of %.2f wf %.2f", sif, sof, wf)
		}
	}
}

func TestVCAllocatorChoiceInsensitive(t *testing.T) {
	// §4.3.3: network performance is largely insensitive to the VC
	// allocator; zero-load latency and mid-load latency nearly unchanged.
	lat := func(arch alloc.Arch, sparse bool, rate float64) float64 {
		cfg := meshConfig(2, rate)
		cfg.VA.Arch = arch
		cfg.VA.Sparse = sparse
		return New(cfg).Run().AvgLatency
	}
	for _, rate := range []float64{0.05, 0.3} {
		base := lat(alloc.SepIF, false, rate)
		for _, v := range []struct {
			arch   alloc.Arch
			sparse bool
		}{{alloc.SepOF, false}, {alloc.Wavefront, false}, {alloc.SepIF, true}, {alloc.Wavefront, true}} {
			l := lat(v.arch, v.sparse, rate)
			diff := (l - base) / base
			if diff < -0.06 || diff > 0.06 {
				t.Errorf("rate %.2f: VC allocator %v sparse=%v latency %.2f deviates from sep_if %.2f",
					rate, v.arch, v.sparse, l, base)
			}
		}
	}
}

func TestSparseVCAllocatorSameNetworkBehavior(t *testing.T) {
	// The sparse VC allocator is a logic optimization; network results
	// must remain plausible and fully drained on both topologies.
	for _, mk := range []func(int, float64) Config{meshConfig, fbflyConfig} {
		cfg := mk(2, 0.2)
		cfg.VA.Sparse = true
		res := New(cfg).Run()
		if res.Saturated || res.Unfinished != 0 {
			t.Fatalf("%s sparse VA run did not drain: %+v", cfg.Topology.Name, res)
		}
	}
}

func TestUGALUnderAdversarialPattern(t *testing.T) {
	// Tornado-like traffic benefits from UGAL's non-minimal paths; the run
	// must stay deadlock-free and drain.
	cfg := fbflyConfig(2, 0.3)
	p, err := traffic.NewPattern("tornado", cfg.Topology.Terminals())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = p
	res := New(cfg).Run()
	if res.Unfinished != 0 {
		t.Fatalf("tornado run did not drain: %+v", res)
	}
}

func TestHighLoadNoDeadlockAllArchCombos(t *testing.T) {
	// Overdrive the network; regardless of allocator combination the
	// simulation must keep moving flits (protocol + routing deadlock
	// freedom) and never violate flow control (router panics).
	for _, va := range []alloc.Arch{alloc.SepIF, alloc.SepOF} {
		for _, sa := range []alloc.Arch{alloc.SepIF, alloc.Wavefront} {
			for _, mode := range []core.SpecMode{core.SpecNone, core.SpecGnt, core.SpecReq} {
				cfg := meshConfig(1, 0.9)
				cfg.VA.Arch = va
				cfg.SA.Arch = sa
				cfg.SA.SpecMode = mode
				cfg.Warmup, cfg.Measure, cfg.Drain = 200, 400, 0
				n := New(cfg)
				res := n.Run()
				if res.FlitsDelivered == 0 {
					t.Errorf("va=%v sa=%v mode=%v: network wedged", va, sa, mode)
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	topo := topology.Mesh(4)
	for _, fn := range []func(){
		func() { New(Config{}) },
		func() {
			New(Config{Topology: topo, Routing: routing.NewDOR(topo), Spec: core.NewVCSpec(1, 1, 2)})
		},
		func() {
			New(Config{Topology: topo, Routing: routing.NewDOR(topo), Spec: core.NewVCSpec(2, 2, 1)})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestOccupancyEstimator(t *testing.T) {
	cfg := meshConfig(1, 0.3)
	n := New(cfg)
	for i := 0; i < 500; i++ {
		n.stepCycle()
	}
	// Under load, some router must report non-zero occupancy.
	total := 0
	for r := 0; r < cfg.Topology.Routers; r++ {
		for p := 0; p < cfg.Topology.Ports; p++ {
			total += n.Occupancy(r, p)
		}
	}
	if total == 0 {
		t.Fatal("occupancy estimator reports an empty loaded network")
	}
}

func TestResultExtendedStatistics(t *testing.T) {
	res := New(meshConfig(2, 0.2)).Run()
	if res.LatencyP50 <= 0 || res.LatencyP99 < res.LatencyP50 || res.LatencyMax < res.LatencyP99 {
		t.Fatalf("order statistics inconsistent: p50=%d p99=%d max=%d",
			res.LatencyP50, res.LatencyP99, res.LatencyMax)
	}
	if res.RequestLatency <= 0 || res.ReplyLatency <= 0 {
		t.Fatalf("per-class latencies missing: req=%f rep=%f", res.RequestLatency, res.ReplyLatency)
	}
	// The mean must lie between the per-class means.
	lo, hi := res.RequestLatency, res.ReplyLatency
	if lo > hi {
		lo, hi = hi, lo
	}
	if res.AvgLatency < lo-1 || res.AvgLatency > hi+1 {
		t.Fatalf("avg %.1f outside class means [%.1f, %.1f]", res.AvgLatency, lo, hi)
	}
	// 8x8 mesh uniform traffic: mean hop count (router traversals) is
	// mean Manhattan distance (16/3 between distinct uniform pairs is
	// ~5.33; conditioned on src != dst slightly higher) plus one for the
	// destination router.
	if res.AvgHops < 5.8 || res.AvgHops > 7.2 {
		t.Fatalf("mesh AvgHops %.2f outside plausible [5.8, 7.2]", res.AvgHops)
	}
}

func TestSpeculationCountersExposed(t *testing.T) {
	spec := New(meshConfig(1, 0.2)).Run()
	if spec.SpecGrantsUsed == 0 {
		t.Fatal("speculative run recorded no used speculative grants")
	}
	cfg := meshConfig(1, 0.2)
	cfg.SA.SpecMode = core.SpecNone
	ns := New(cfg).Run()
	if ns.SpecGrantsUsed != 0 || ns.Misspeculations != 0 || ns.SpecMasked != 0 {
		t.Fatalf("nonspec run recorded speculation stats: %+v", ns)
	}
}

func TestPessimisticMasksMoreInNetwork(t *testing.T) {
	// §5.3.3: approaching saturation, spec_req discards more speculation
	// opportunities than spec_gnt.
	masked := func(mode core.SpecMode) int64 {
		cfg := meshConfig(2, 0.35)
		cfg.SA.SpecMode = mode
		return New(cfg).Run().SpecMasked
	}
	if pr, cg := masked(core.SpecReq), masked(core.SpecGnt); pr <= cg {
		t.Fatalf("spec_req masked %d, want more than spec_gnt's %d", pr, cg)
	}
}

func TestFbflyHopCountsReflectUGAL(t *testing.T) {
	res := New(fbflyConfig(1, 0.1)).Run()
	// Minimal fbfly paths traverse 1-3 routers (incl. source and dest);
	// occasional Valiant detours can add up to 2 more.
	if res.AvgHops < 1.5 || res.AvgHops > 4 {
		t.Fatalf("fbfly AvgHops %.2f outside [1.5, 4]", res.AvgHops)
	}
}

func torusConfig(c int, rate float64) Config {
	topo := topology.Torus(8)
	cfg := meshConfig(c, rate)
	cfg.Topology = topo
	cfg.Routing = routing.NewTorusDateline(topo)
	spec := core.NewVCSpec(2, 2, c)
	spec.ResourceSucc = routing.TorusResourceSucc()
	cfg.Spec = spec
	return cfg
}

func TestTorusDatelineLowLoadDelivers(t *testing.T) {
	res := New(torusConfig(1, 0.1)).Run()
	if res.Saturated || res.Unfinished != 0 {
		t.Fatalf("torus low-load run did not drain: %+v", res)
	}
	// Wraparound halves the average distance vs the mesh: torus zero-load
	// latency must undercut the mesh's at the same rate.
	mesh := New(meshConfig(1, 0.1)).Run()
	if res.AvgLatency >= mesh.AvgLatency {
		t.Fatalf("torus latency %.1f should undercut mesh %.1f", res.AvgLatency, mesh.AvgLatency)
	}
	if res.AvgHops >= mesh.AvgHops {
		t.Fatalf("torus hops %.2f should undercut mesh %.2f", res.AvgHops, mesh.AvgHops)
	}
}

func TestTorusDatelineNoDeadlockUnderTornado(t *testing.T) {
	// Tornado traffic concentrates load on the rings and is the classic
	// deadlock trigger for tori without dateline VC discipline. Overdrive
	// the network and verify flits keep moving and flow control never
	// trips (router panics).
	cfg := torusConfig(2, 0.9)
	p, err := traffic.NewPattern("tornado", cfg.Topology.Terminals())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = p
	cfg.Warmup, cfg.Measure, cfg.Drain = 500, 1500, 0
	res := New(cfg).Run()
	if res.FlitsDelivered == 0 {
		t.Fatal("torus wedged under tornado traffic")
	}
	if res.Throughput <= 0.05 {
		t.Fatalf("torus tornado throughput %.3f implausibly low", res.Throughput)
	}
}

func TestTorusDatelineDrainsUnderTornadoModerateLoad(t *testing.T) {
	cfg := torusConfig(2, 0.25)
	p, err := traffic.NewPattern("tornado", cfg.Topology.Terminals())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pattern = p
	res := New(cfg).Run()
	if res.Unfinished != 0 {
		t.Fatalf("torus tornado moderate load did not drain: %+v", res)
	}
}

func TestFreeQueueVCAllocatorInNetwork(t *testing.T) {
	// §4.3.3's insensitivity extends to the free-VC-queue scheme at
	// moderate load: VC allocation happens once per packet, so the
	// one-grant-per-class limit rarely binds.
	cfg := meshConfig(2, 0.2)
	cfg.VA = core.VCAllocConfig{ArbKind: arbiter.RoundRobin, FreeQueue: true}
	res := New(cfg).Run()
	if res.Saturated || res.Unfinished != 0 {
		t.Fatalf("free-queue VA run did not drain: %+v", res)
	}
	base := New(meshConfig(2, 0.2)).Run()
	diff := (res.AvgLatency - base.AvgLatency) / base.AvgLatency
	if diff < -0.06 || diff > 0.06 {
		t.Fatalf("free-queue VA latency %.1f deviates from sep_if %.1f by %.3f",
			res.AvgLatency, base.AvgLatency, diff)
	}
}

func TestPrecomputedSwitchAllocatorInNetwork(t *testing.T) {
	// Mullins-style precomputation trades one cycle of request age per
	// allocation for cycle time: in cycle-level simulation the zero-load
	// latency is therefore a little above the plain nonspec baseline and
	// the network must still drain cleanly.
	cfg := meshConfig(2, 0.15)
	cfg.SA.SpecMode = core.SpecNone
	cfg.SA.Precomputed = true
	res := New(cfg).Run()
	if res.Saturated || res.Unfinished != 0 {
		t.Fatalf("precomputed run did not drain: %+v", res)
	}
	base := meshConfig(2, 0.15)
	base.SA.SpecMode = core.SpecNone
	baseRes := New(base).Run()
	if res.AvgLatency <= baseRes.AvgLatency {
		t.Fatalf("precomputed latency %.1f should exceed nonspec %.1f (request-age penalty)",
			res.AvgLatency, baseRes.AvgLatency)
	}
	if res.AvgLatency > baseRes.AvgLatency*1.5 {
		t.Fatalf("precomputed latency %.1f implausibly above nonspec %.1f",
			res.AvgLatency, baseRes.AvgLatency)
	}
}

func TestTracedSimulationTellsPacketStory(t *testing.T) {
	// A traced run must show, for some packet, the full lifecycle in
	// order: inject, route, VA grant, switch grants, eject.
	collector := trace.NewCollector(200000)
	cfg := meshConfig(1, 0.05)
	cfg.Warmup, cfg.Measure, cfg.Drain = 100, 200, 2000
	cfg.Trace = trace.New(collector, nil)
	res := New(cfg).Run()
	if res.Unfinished != 0 {
		t.Fatalf("traced run did not drain: %+v", res)
	}
	if collector.Total() == 0 {
		t.Fatal("no events recorded")
	}
	// Find a packet with a complete retained story.
	var story []trace.Event
	for pkt := int64(1); pkt < 200; pkt++ {
		evs := collector.PacketEvents(pkt)
		if len(evs) >= 4 && evs[0].Kind == trace.Inject && evs[len(evs)-1].Kind == trace.Eject {
			story = append(story, evs...)
			break
		}
	}
	if len(story) == 0 {
		t.Fatal("no complete packet story in trace")
	}
	sawVA, sawSA := false, false
	lastCycle := int64(-1)
	for _, e := range story {
		if e.Cycle < lastCycle {
			t.Fatalf("events out of order: %v", story)
		}
		lastCycle = e.Cycle
		switch e.Kind {
		case trace.VAGrant:
			sawVA = true
		case trace.SAGrant:
			sawSA = true
		}
	}
	if !sawVA || !sawSA {
		t.Fatalf("story missing pipeline events: %v", story)
	}
}

func TestTraceFilterMisspecOnly(t *testing.T) {
	collector := trace.NewCollector(10000)
	cfg := meshConfig(1, 0.3)
	cfg.Warmup, cfg.Measure, cfg.Drain = 200, 600, 0
	cfg.Trace = trace.New(collector, trace.FilterKind(trace.Misspec))
	New(cfg).Run()
	for _, e := range collector.Events() {
		if e.Kind != trace.Misspec {
			t.Fatalf("filter leaked event %v", e)
		}
	}
	if collector.Total() == 0 {
		t.Fatal("a loaded speculative run should record misspeculations")
	}
}

func TestValidatedRunsAllArchCombos(t *testing.T) {
	// Per-cycle allocation checking across architecture combinations and
	// both topologies: any matching violation panics inside the run.
	for _, mk := range []func(int, float64) Config{meshConfig, fbflyConfig} {
		for _, va := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
			for _, sa := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
				cfg := mk(2, 0.4)
				cfg.VA.Arch = va
				cfg.SA.Arch = sa
				cfg.Validate = true
				cfg.Warmup, cfg.Measure, cfg.Drain = 150, 300, 0
				if res := New(cfg).Run(); res.FlitsDelivered == 0 {
					t.Fatalf("%s va=%v sa=%v: wedged", cfg.Topology.Name, va, sa)
				}
			}
		}
	}
}

func TestWavefrontAdvantageGrowsWithVCCount(t *testing.T) {
	// Fig. 13's central shape: the wavefront switch allocator's throughput
	// advantage over sep_if grows from fbfly 2x2x1 to 2x2x4.
	gap := func(c int, rate float64) float64 {
		thr := func(arch alloc.Arch) float64 {
			cfg := fbflyConfig(c, rate)
			cfg.SA.Arch = arch
			cfg.Measure = 2500
			cfg.Drain = 2500
			return New(cfg).Run().Throughput
		}
		return thr(alloc.Wavefront)/thr(alloc.SepIF) - 1
	}
	small := gap(1, 0.46) // just past sep_if saturation at C=1
	large := gap(4, 0.62)
	if large <= small {
		t.Fatalf("wf advantage should grow with VCs: C=1 %+.3f vs C=4 %+.3f", small, large)
	}
	if large < 0.03 {
		t.Fatalf("wf advantage at fbfly 2x2x4 only %+.3f, expected a clear gap", large)
	}
}
