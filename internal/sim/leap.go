package sim

import "fmt"

// Event leaping: the active-set scheduler (PR 2) skips dormant terminals and
// quiescent routers within a cycle, but the stepper still visits every cycle
// — at low injection rates and in the drain tail most of those visits find
// nothing to do. This file adds the complementary optimization: when the
// whole network is provably idle, jump the clock straight to the next cycle
// in which anything can happen.
//
// A leap from cycle c to cycle e is safe iff no entity could have made
// progress in any cycle of (c, e):
//
//   - Every router is Quiescent() (no occupied input VC). A quiescent
//     router's Step is a state no-op apart from idle-variant allocator
//     priority, which SkipIdle replays on wake-up — and the active-set
//     lastStep bookkeeping is keyed to absolute cycles, so the existing
//     wake-up path replays leapt cycles without any extra work here.
//   - Every terminal is dormant. A terminal with offered load exposes its
//     next arrival cycle by presampling the Bernoulli gate draws (see
//     terminal.go); the earliest such arrival bounds the leap.
//   - No timing-wheel event lands in the skipped span. Each shard keeps an
//     occupancy bitmask over its wheel slots, making the earliest-pending-
//     event query O(wheelSize/64); the leap target is the min over shards
//     (plus, in sharded mode, a refusal to leap while any cross-shard event
//     awaits import — those become wheel events one cycle later).
//
// The target is clamped to the caller's phase horizon so warmup/measure/
// drain boundaries land on exactly the cycles per-cycle ticking would
// visit, and a leap only moves now/nowSlot — it runs no cycle — so the
// first stepped cycle after a leap is the exact cycle the ticked schedule
// would next have done work in. That is what keeps leaped results
// bit-identical to the per-cycle stepper.

// tryLeap advances the clock to the earliest cycle (at most horizon) in
// which any work is pending, if the network is provably idle until then.
// It reports whether it moved the clock. Called between cycles only, when
// no shard worker is running.
func (n *Network) tryLeap(horizon int64) bool {
	if !n.leapOn {
		return false
	}
	// O(shards) pre-gate: any live packet means some terminal queue, router
	// VC or in-flight flit is non-idle, so the full scan below would fail.
	// Ruling that out first keeps the gate's cost negligible on busy cycles
	// (the common case anywhere near saturation). The only leaps this
	// forgoes are packets-in-the-wheel-only states, which are bounded by
	// the few-cycle link latency and not worth scanning every cycle for.
	live := 0
	for _, s := range n.shards {
		live += s.livePkts
	}
	if live > 0 {
		return false
	}
	for _, r := range n.routers {
		if !r.Quiescent() {
			return false
		}
	}
	target := horizon
	for _, t := range n.terminals {
		if !t.dormant(n) {
			return false
		}
		// A pending presampled arrival bounds the leap even when the process
		// has gone quiet since it was drawn (trace replay's rate drops to 0
		// once its last arrival is presampled).
		if next := t.gen.PresampledArrival(); next < target && (t.gen.Rate() > 0 || t.gen.PendingArrival()) {
			target = next
		}
	}
	for _, s := range n.shards {
		if s.outboxPending() {
			return false
		}
		if d := s.nextEventDelta(); d >= 0 && n.now+d < target {
			target = n.now + d
		}
	}
	skip := target - n.now
	if skip <= 0 {
		return false
	}
	if n.cfg.Validate {
		n.validateLeap(target)
	}
	n.now = target
	n.nowSlot = (n.nowSlot + skip) % n.wheelSize
	n.leapEvents++
	n.cyclesLeapt += skip
	return true
}

// validateLeap cross-checks a proposed leap before it is taken: every
// shard's occupancy bitmask must agree with its raw wheel slots, no slot in
// the skipped span may hold an event, and no presampled terminal arrival
// may precede the target — i.e. the leap skips no cycle in which any router
// or terminal could have made progress (router quiescence and terminal
// dormancy were established by the caller immediately before).
func (n *Network) validateLeap(target int64) {
	skip := target - n.now
	for _, s := range n.shards {
		for slot := int64(0); slot < n.wheelSize; slot++ {
			occupied := s.occ[slot>>6]&(1<<(uint(slot)&63)) != 0
			if occupied != (len(s.wheel[slot]) > 0) {
				panic(fmt.Sprintf("sim: shard %d wheel slot %d occupancy bit %v disagrees with %d queued events",
					s.id, slot, occupied, len(s.wheel[slot])))
			}
		}
		span := skip
		if span > n.wheelSize {
			span = n.wheelSize
		}
		for d := int64(0); d < span; d++ {
			slot := (n.nowSlot + d) % n.wheelSize
			if len(s.wheel[slot]) > 0 {
				panic(fmt.Sprintf("sim: leap of %d cycles would skip shard %d events due in %d cycles", skip, s.id, d))
			}
		}
	}
	for _, t := range n.terminals {
		if next := t.gen.PresampledArrival(); next < target && (t.gen.Rate() > 0 || t.gen.PendingArrival()) {
			panic(fmt.Sprintf("sim: leap to cycle %d would skip terminal %d arrival at %d", target, t.id, next))
		}
	}
}

// LeapStats reports how many leaps the run performed and how many cycles
// they skipped in total; exposed for benchmarks and the JSON snapshot tools.
func (n *Network) LeapStats() (events, cycles int64) {
	return n.leapEvents, n.cyclesLeapt
}
