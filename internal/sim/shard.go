package sim

import (
	"fmt"
	"math/bits"
	"runtime/debug"

	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/traffic"
)

// This file implements the sharded cycle stepper. Routers and terminals are
// partitioned into contiguous shards (a terminal always lives with its
// router, so injection, ejection and UGAL's occupancy reads stay
// shard-local), and every simulation cycle runs in two phases:
//
//  1. All shards concurrently import the cross-shard events published for
//     them last cycle into their own timing wheels, deliver the cycle's due
//     events, and step their terminals and routers. Events for entities
//     owned by another shard — only inter-router channel flits and credits
//     ever are — go to a per-destination outbox instead of a wheel.
//  2. A single-threaded merge publishes the outboxes (a buffer swap; the
//     copying itself happens in the destinations' next phase 1, in
//     parallel), then commits the cycle's packet births and deliveries in
//     destination-terminal order.
//
// Cross-shard events are emitted with a delay of at least 2 cycles (channel
// traversal is 2+latency), so deferring their wheel insertion to the start
// of the next cycle's phase 1 never misses a due slot, and each importer
// scanning source shards in index order reproduces the (source shard,
// emission) append order a serial merge would have used.
//
// Phase 2 is what makes results bit-identical for any shard count: within
// one cycle every per-router and per-terminal mutation in phase 1 is
// commutative (each input VC, credit counter and terminal receives at most
// one event per cycle, and each RNG stream belongs to exactly one
// terminal), so the only order-sensitive state is the global packet ID
// counter and the floating-point measurement accumulators — and those are
// only touched in phase 2, in an order that is a pure function of the
// cycle's logical event set.

// shard owns a contiguous range of routers and their terminals.
type shard struct {
	id  int
	net *Network

	r0, r1 int // owned routers [r0, r1)
	t0, t1 int // owned terminals [t0, t1)

	// wheel is the shard-local timing wheel; slot (now+delay)%wheelSize
	// holds the events due at cycle now+delay for entities owned by this
	// shard. slotLow counts consecutive drains that used far less than a
	// slot's capacity, backing the shrink policy in recycleSlot. occ is a
	// bitmask over slots (bit set iff the slot holds events), giving the
	// event-leaping gate an O(wheelSize/64) earliest-pending-event query
	// (nextEventDelta).
	wheel   [][]event
	slotLow []int32
	occ     []uint64

	// outCur[d] collects events emitted this cycle for routers owned by
	// shard d; outPrev[d] holds last cycle's batch, which shard d imports
	// into its wheel at the start of its next phase 1. The commit phase
	// only swaps the two buffer sets, so the actual event copying runs in
	// the destinations' (parallel) phase 1 instead of the serial barrier.
	outCur  [][]outEvent
	outPrev [][]outEvent

	// lastStep[r-r0] is the last cycle router r was stepped; the active-set
	// scheduler uses it to replay skipped idle cycles into the allocators.
	lastStep []int64

	// Free lists recycle flit and packet objects, with burst decay (see
	// pool.go). A flit is drawn at its source terminal's shard and recycled
	// at its destination's, so objects migrate between pools, but each pool
	// is only touched by its own shard in phase 1 and by the single-threaded
	// commit in phase 2.
	flitPool pool[*router.Flit]
	pktPool  pool[*router.Packet]

	// newPkts are the requests created this cycle, in terminal order,
	// awaiting ID assignment at commit (sharded mode only; serial mode
	// assigns inline and leaves this empty).
	newPkts []*router.Packet
	// newMeasured counts this cycle's requests created inside the
	// measurement window; committed into Network.measuredCreated/inFlight.
	newMeasured int
	// deliveries are the packets whose tail flit reached one of this
	// shard's terminals this cycle; stats and replies commit in phase 2.
	deliveries []delivery

	// Cumulative flit counters, summed by the Network accessors.
	created   int64
	delivered int64
	measFlits int64

	// livePkts is this shard's net packet balance (allocated here minus
	// retired here). A packet allocates at its source shard and retires at
	// its destination's, so one shard's balance can go negative; the sum
	// over shards is the number of packets anywhere in the network —
	// queued, streaming, or in flight — and is the leap gate's O(shards)
	// busy check (tryLeap).
	livePkts int
}

// outEvent is a cross-shard event awaiting import by its destination shard
// (the destination is the outCur/outPrev index it is filed under).
type outEvent struct {
	slot int32
	e    event
}

// delivery records a packet completion awaiting the commit phase. At most
// one packet per terminal completes per cycle (a terminal's ejection port
// is a switch output, granted at most once per cycle), so the destination
// terminal is a unique, shard-layout-independent sort key.
type delivery struct {
	terminal int
	pkt      *router.Packet
}

// Wheel slot shrink policy: a saturation burst can grow a slot's backing
// array far beyond steady-state needs, and plain slot[:0] recycling would
// pin that peak capacity for the rest of the run. After slotShrinkAfter
// consecutive drains each using less than a quarter of a capacity above
// slotShrinkMin, the slot is reallocated at half capacity, stepping down
// geometrically toward actual usage without thrashing at the boundary.
const (
	slotShrinkMin   = 64
	slotShrinkAfter = 64
)

// recycleSlot empties a drained wheel slot, shrinking persistently
// oversized backing arrays. The slot's occupancy bit clears here and
// nowhere else: slotFor rejects zero delays, so nothing can re-enter the
// slot being drained within the same cycle.
func (s *shard) recycleSlot(slot int64, used int) {
	s.occ[slot>>6] &^= 1 << (uint(slot) & 63)
	w := s.wheel[slot]
	if c := cap(w); c > slotShrinkMin && used*4 < c {
		if s.slotLow[slot]++; s.slotLow[slot] >= slotShrinkAfter {
			s.wheel[slot] = make([]event, 0, c/2)
			s.slotLow[slot] = 0
			return
		}
	} else {
		s.slotLow[slot] = 0
	}
	s.wheel[slot] = w[:0]
}

func (s *shard) slotFor(delay int64) int64 {
	n := s.net
	if delay < 1 || delay >= n.wheelSize {
		panic(fmt.Sprintf("sim: bad event delay %d (wheel size %d)", delay, n.wheelSize))
	}
	// nowSlot < wheelSize and delay < wheelSize, so one conditional
	// subtract replaces the modulo on this per-event path.
	slot := n.nowSlot + delay
	if slot >= n.wheelSize {
		slot -= n.wheelSize
	}
	return slot
}

// enqueue appends an event to a wheel slot and marks the slot occupied.
func (s *shard) enqueue(slot int64, e event) {
	s.wheel[slot] = append(s.wheel[slot], e)
	s.occ[slot>>6] |= 1 << (uint(slot) & 63)
}

// scheduleLocal inserts an event for an entity owned by this shard. All
// terminal-link events are local by construction (a terminal shares its
// router's shard).
func (s *shard) scheduleLocal(delay int64, e event) {
	s.enqueue(s.slotFor(delay), e)
}

// scheduleRouter inserts an event destined for an arbitrary router,
// diverting cross-shard events to the destination's outbox.
func (s *shard) scheduleRouter(delay int64, e event) {
	slot := s.slotFor(delay)
	if d := s.net.shardOfRouter[e.router]; d != int32(s.id) {
		s.outCur[d] = append(s.outCur[d], outEvent{slot: int32(slot), e: e})
		return
	}
	s.enqueue(slot, e)
}

// importOutboxes moves the cross-shard events published for this shard last
// cycle into its wheel. Scanning source shards in index order reproduces
// the append order of a serial merge; the sources' outPrev buffers are
// read-only during phase 1 (each source now appends to its outCur), so
// concurrent importers never race.
func (s *shard) importOutboxes() {
	for _, src := range s.net.shards {
		for _, oe := range src.outPrev[s.id] {
			s.enqueue(int64(oe.slot), oe.e)
		}
	}
}

// outboxPending reports whether any shard has published events this shard
// has not yet imported; the leap gate refuses to jump over them.
func (s *shard) outboxPending() bool {
	for _, src := range s.net.shards {
		if len(src.outPrev[s.id]) > 0 {
			return true
		}
	}
	return false
}

// nextEventDelta returns the number of cycles until this shard's earliest
// pending wheel event (0 = due this cycle), or -1 for an empty wheel, by
// scanning the slot-occupancy bitmask from nowSlot with a wrap.
func (s *shard) nextEventDelta() int64 {
	n := s.net
	nowSlot := n.nowSlot
	w0 := int(nowSlot >> 6)
	for wi := w0; wi < len(s.occ); wi++ {
		w := s.occ[wi]
		if wi == w0 {
			w &= ^uint64(0) << (uint(nowSlot) & 63)
		}
		if w != 0 {
			return int64(wi<<6+bits.TrailingZeros64(w)) - nowSlot
		}
	}
	for wi := 0; wi <= w0; wi++ {
		w := s.occ[wi]
		if wi == w0 {
			w &= 1<<(uint(nowSlot)&63) - 1
		}
		if w != 0 {
			return int64(wi<<6+bits.TrailingZeros64(w)) + n.wheelSize - nowSlot
		}
	}
	return -1
}

// phase1 advances this shard by one cycle: deliver due events, then step
// terminals and routers. Safe to run concurrently with other shards'
// phase1; it touches only shard-owned state plus the read-only topology,
// routing and config structures.
func (s *shard) phase1() {
	n := s.net
	if !n.serial {
		s.importOutboxes()
	}
	slot := n.nowSlot
	evs := s.wheel[slot]
	for i := range evs {
		e := &evs[i]
		switch e.kind {
		case evFlitToRouter:
			n.routers[e.router].AcceptFlit(e.port, e.vc, e.flit)
		case evCreditToRouter:
			n.routers[e.router].AcceptCredit(e.port, e.vc)
		case evFlitToTerminal:
			n.terminals[e.terminal].receive(s, e.flit)
		case evCreditToTerminal:
			n.terminals[e.terminal].credit(e.vc)
		}
	}
	s.recycleSlot(slot, len(evs))
	s.flitPool.trim()
	s.pktPool.trim()

	if n.cfg.Dense {
		for t := s.t0; t < s.t1; t++ {
			term := n.terminals[t]
			term.generate(s)
			term.send(s)
		}
		for r := s.r0; r < s.r1; r++ {
			s.stepRouter(n.routers[r])
		}
	} else {
		for t := s.t0; t < s.t1; t++ {
			term := n.terminals[t]
			if term.dormant(n) {
				continue
			}
			term.generate(s)
			term.send(s)
		}
		for r := s.r0; r < s.r1; r++ {
			rt := n.routers[r]
			if rt.Quiescent() {
				continue
			}
			if gap := n.now - s.lastStep[r-s.r0] - 1; gap > 0 {
				rt.SkipIdle(gap)
			}
			s.lastStep[r-s.r0] = n.now
			s.stepRouter(rt)
		}
	}
}

// stepRouter advances one router and schedules its departures and credits.
func (s *shard) stepRouter(r *router.Router) {
	topo := s.net.cfg.Topology
	deps, credits := r.Step()
	for _, d := range deps {
		if topo.IsTerminalPort(d.OutPort) {
			term := topo.RouterTerminal(r.ID(), d.OutPort)
			// ST (1) + ejection link (1).
			s.scheduleLocal(2, event{kind: evFlitToTerminal, terminal: term, flit: d.Flit})
			// Sink consumes instantly; credit returns after the round
			// trip (ejection link + credit processing).
			s.scheduleLocal(4, event{kind: evCreditToRouter, router: r.ID(), port: d.OutPort, vc: d.OutVC})
			continue
		}
		ch := topo.Channels[topo.OutChannel[r.ID()][d.OutPort]]
		s.scheduleRouter(int64(2+ch.Latency), event{
			kind: evFlitToRouter, router: ch.Dst, port: ch.DstPort, vc: d.OutVC, flit: d.Flit,
		})
	}
	for _, c := range credits {
		if topo.IsTerminalPort(c.InPort) {
			term := topo.RouterTerminal(r.ID(), c.InPort)
			s.scheduleLocal(2, event{kind: evCreditToTerminal, terminal: term, vc: c.InVC})
			continue
		}
		ch := topo.Channels[topo.InChannel[r.ID()][c.InPort]]
		s.scheduleRouter(int64(2+ch.Latency), event{
			kind: evCreditToRouter, router: ch.Src, port: ch.SrcPort, vc: c.InVC,
		})
	}
}

// flitDelivered counts an ejected flit for throughput accounting.
func (s *shard) flitDelivered() {
	s.delivered++
	n := s.net
	if n.now >= n.measStart && n.now < n.measEnd {
		s.measFlits++
	}
}

// allocPacket draws a recycled packet object (or allocates one) and
// initializes its fields. ID assignment and measurement accounting are the
// caller's responsibility.
func (s *shard) allocPacket(t traffic.PacketType, src, dst int, createdAt int64) *router.Packet {
	p, ok := s.pktPool.get()
	if !ok {
		p = new(router.Packet)
	}
	*p = router.Packet{
		Type:      t,
		Src:       src,
		Dst:       dst,
		Size:      t.Flits(),
		CreatedAt: createdAt,
		Route:     routing.PacketRoute{DestTerminal: dst, Intermediate: -1},
	}
	s.created += int64(p.Size)
	s.livePkts++
	return p
}

// newRequest registers a freshly created request packet. Serial mode takes
// the next global ID immediately; sharded phase 1 defers assignment to the
// commit, which hands out the same IDs in the same terminal-order sequence.
func (s *shard) newRequest(t traffic.PacketType, src, dst int, createdAt int64) *router.Packet {
	p := s.allocPacket(t, src, dst, createdAt)
	n := s.net
	if n.serial {
		n.nextPktID++
		p.ID = n.nextPktID
	} else {
		s.newPkts = append(s.newPkts, p)
	}
	if createdAt >= n.measStart && createdAt < n.measEnd {
		s.newMeasured++
	}
	return p
}

// makeFlits expands a packet into flits appended to buf[:0], drawing from
// the shard's free list; it replaces router.MakeFlits on the injection path.
func (s *shard) makeFlits(p *router.Packet, buf []*router.Flit) []*router.Flit {
	buf = buf[:0]
	for i := 0; i < p.Size; i++ {
		f, ok := s.flitPool.get()
		if !ok {
			f = new(router.Flit)
		}
		f.Pkt, f.Seq, f.Head, f.Tail = p, i, i == 0, i == p.Size-1
		buf = append(buf, f)
	}
	return buf
}

// recycleFlit returns an ejected flit to the shard's free list.
func (s *shard) recycleFlit(f *router.Flit) {
	f.Pkt = nil
	s.flitPool.put(f)
}

// mergeAndCommit is phase 2 of a cycle: single-threaded, it publishes the
// cycle's cross-shard events and commits packet births and deliveries in a
// canonical order, making results bit-identical for any shard count. Block
// profiling at 8–16 shards showed the barrier's serial span dominated by
// the old per-event outbox copy; publishing is now a buffer swap and the
// copy runs in the destinations' next (parallel) phase 1.
func (n *Network) mergeAndCommit() {
	// 1. Publish outboxes: this cycle's outCur becomes next cycle's
	// outPrev, which destination shards import concurrently; the buffers
	// they just drained are truncated for reuse. Serial mode never routes
	// through outboxes (every router is shard-local), so it skips the swap.
	if !n.serial {
		for _, s := range n.shards {
			s.outCur, s.outPrev = s.outPrev, s.outCur
			for i := range s.outCur {
				s.outCur[i] = s.outCur[i][:0]
			}
		}
	}
	// 2. IDs for this cycle's new requests, in terminal order (shards own
	// contiguous terminal ranges and append in id order). Serial mode
	// assigned them inline in newRequest — same order, since replies are
	// only created below, after every request of the cycle.
	for _, s := range n.shards {
		for _, p := range s.newPkts {
			n.nextPktID++
			p.ID = n.nextPktID
		}
		s.newPkts = s.newPkts[:0]
		n.measuredCreated += s.newMeasured
		n.inFlight += s.newMeasured
		s.newMeasured = 0
	}
	// 3. Deliveries, in destination-terminal order. Each shard's list is in
	// wheel-slot order, which depends on the shard layout; the terminal is
	// unique per cycle and layout-independent, so sort by it (insertion
	// sort: the lists are tiny and this path must not allocate).
	for _, s := range n.shards {
		d := s.deliveries
		for i := 1; i < len(d); i++ {
			for j := i; j > 0 && d[j].terminal < d[j-1].terminal; j-- {
				d[j], d[j-1] = d[j-1], d[j]
			}
		}
		for _, dv := range d {
			n.commitDelivery(s, dv)
		}
		s.deliveries = s.deliveries[:0]
	}
}

// commitDelivery records a completed packet's statistics and generates the
// reply its delivery elicits (§3.2: replies are created in the next cycle
// and take priority over new request injections).
func (n *Network) commitDelivery(s *shard, d delivery) {
	p := d.pkt
	n.packetDelivered(p)
	if p.Type.IsRequest() {
		reply := s.allocPacket(p.Type.ReplyType(), d.terminal, p.Src, n.now+1)
		n.nextPktID++
		reply.ID = n.nextPktID
		if reply.CreatedAt >= n.measStart && reply.CreatedAt < n.measEnd {
			n.measuredCreated++
			n.inFlight++
		}
		n.terminals[d.terminal].replyQ.push(reply)
	}
	s.pktPool.put(p)
	s.livePkts--
}

// --- worker pool ---------------------------------------------------------------

// workerResult carries a phase-1 panic from a worker back to the stepping
// goroutine, so Validate-mode violations and flow-control bugs surface as
// ordinary panics there instead of crashing the process from a worker.
type workerResult struct {
	panicVal any
	stack    []byte
}

// runShardsParallel executes phase 1 on every shard concurrently: shards
// 1..S-1 on persistent worker goroutines, shard 0 inline on the caller.
func (n *Network) runShardsParallel() {
	if !n.workersUp {
		n.startWorkers()
	}
	for _, ch := range n.startCh {
		ch <- struct{}{}
	}
	n.shards[0].phase1()
	var failed workerResult
	for range n.startCh {
		if r := <-n.doneCh; r.panicVal != nil {
			failed = r
		}
	}
	if failed.panicVal != nil {
		panic(fmt.Sprintf("sim: shard worker panicked: %v\n%s", failed.panicVal, failed.stack))
	}
}

func (n *Network) startWorkers() {
	n.startCh = make([]chan struct{}, len(n.shards)-1)
	n.doneCh = make(chan workerResult, len(n.shards)-1)
	for i := range n.startCh {
		n.startCh[i] = make(chan struct{}, 1)
		go n.shardWorker(n.shards[i+1], n.startCh[i])
	}
	n.workersUp = true
}

func (n *Network) shardWorker(s *shard, start <-chan struct{}) {
	for range start {
		n.doneCh <- runShardGuarded(s)
	}
}

func runShardGuarded(s *shard) (res workerResult) {
	defer func() {
		if r := recover(); r != nil {
			res = workerResult{panicVal: r, stack: debug.Stack()}
		}
	}()
	s.phase1()
	return res
}

// Close stops the shard worker goroutines. Run calls it on return; callers
// driving stepCycle directly with Shards > 1 should defer it. Idempotent,
// and stepping again after Close transparently restarts the workers.
func (n *Network) Close() {
	if !n.workersUp {
		return
	}
	for _, ch := range n.startCh {
		close(ch)
	}
	n.startCh = nil
	n.workersUp = false
}
