package sim

import "testing"

// creditEv builds a harmless wheel event (a terminal credit bump) for
// scheduling machinery tests.
func creditEv() event { return event{kind: evCreditToTerminal, terminal: 0, vc: 0} }

// TestNextEventDelta pins the occupancy-bitmask earliest-event query,
// including the wrap around the circular wheel: the mesh wheel has 5 slots,
// so advancing nowSlot past the middle forces the wrapped scan path.
func TestNextEventDelta(t *testing.T) {
	cfg := meshConfig(2, 0) // no traffic: the wheel stays empty unless we fill it
	n := New(cfg)
	s := n.shards[0]
	if d := s.nextEventDelta(); d != -1 {
		t.Fatalf("empty wheel: nextEventDelta = %d, want -1", d)
	}
	for i := 0; i < 3; i++ {
		n.stepCycle()
	}
	if n.nowSlot != 3 {
		t.Fatalf("nowSlot = %d after 3 cycles, want 3", n.nowSlot)
	}
	s.scheduleLocal(3, creditEv()) // slot (3+3)%5 = 1: only reachable via wrap
	if d := s.nextEventDelta(); d != 3 {
		t.Fatalf("wrapped event: nextEventDelta = %d, want 3", d)
	}
	s.scheduleLocal(1, creditEv()) // slot 4: ahead of nowSlot, no wrap
	if d := s.nextEventDelta(); d != 1 {
		t.Fatalf("near event: nextEventDelta = %d, want 1", d)
	}
	n.stepCycle() // drains slot 3 (empty), lands on slot 4
	if d := s.nextEventDelta(); d != 0 {
		t.Fatalf("due event: nextEventDelta = %d, want 0", d)
	}
	n.stepCycle() // delivers the slot-4 credit
	if d := s.nextEventDelta(); d != 1 {
		t.Fatalf("after drain: nextEventDelta = %d, want 1 (the wrapped event)", d)
	}
	n.stepCycle()
	if d := s.nextEventDelta(); d != 0 {
		t.Fatalf("wrapped event now due: nextEventDelta = %d, want 0", d)
	}
	n.stepCycle()
	if d := s.nextEventDelta(); d != -1 {
		t.Fatalf("all drained: nextEventDelta = %d, want -1", d)
	}
}

// occConsistent verifies every shard's occupancy bit agrees with the raw
// slot contents.
func occConsistent(t *testing.T, n *Network, when string) {
	t.Helper()
	for _, s := range n.shards {
		for slot := int64(0); slot < n.wheelSize; slot++ {
			occupied := s.occ[slot>>6]&(1<<(uint(slot)&63)) != 0
			if occupied != (len(s.wheel[slot]) > 0) {
				t.Fatalf("%s: shard %d slot %d: occupancy bit %v, %d events",
					when, s.id, slot, occupied, len(s.wheel[slot]))
			}
		}
	}
}

// TestWheelOccupancyTracksSlots drives a loaded sharded simulation and
// cross-checks the occupancy bitmask against the raw wheel every cycle —
// covering local schedules, cross-shard imports and slot drains.
func TestWheelOccupancyTracksSlots(t *testing.T) {
	cfg := meshConfig(2, 0.3)
	cfg.Shards = 4
	n := New(cfg)
	defer n.Close()
	for i := 0; i < 400; i++ {
		n.stepCycle()
		occConsistent(t, n, "cycle")
	}
}

// TestNextEventSlotShrinkInteraction pins the occupancy bits across the
// slot-shrink policy (slotShrinkMin/After): a saturation burst balloons the
// slots, the idle period afterwards reallocates them at smaller capacity
// via recycleSlot, and the bitmask must stay consistent throughout — ending
// all-clear on a fully drained wheel and still accepting new events into
// the shrunk slots.
func TestNextEventSlotShrinkInteraction(t *testing.T) {
	cfg := meshConfig(2, 0.9) // well past saturation: slots fill up
	n := New(cfg)
	for i := 0; i < 1500; i++ {
		n.stepCycle()
	}
	n.SetInjectionRate(0)
	for i := 0; i < 12000; i++ {
		n.stepCycle()
	}
	occConsistent(t, n, "after shrink")
	s := n.shards[0]
	if d := s.nextEventDelta(); d != -1 {
		t.Fatalf("drained wheel: nextEventDelta = %d, want -1", d)
	}
	s.scheduleLocal(2, creditEv())
	if d := s.nextEventDelta(); d != 2 {
		t.Fatalf("event in shrunk slot: nextEventDelta = %d, want 2", d)
	}
	occConsistent(t, n, "after reschedule")
}
