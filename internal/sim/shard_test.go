package sim

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/trace"
)

// TestShardInvarianceGolden is the core contract of the sharded stepper:
// for any shard count the two-phase schedule must reproduce the serial
// stepper bit for bit — same RNG draw order, same packet IDs, same
// floating-point latency sums — at seed 42 on both paper topologies and
// all three speculation modes.
func TestShardInvarianceGolden(t *testing.T) {
	counts := []int{2, 4, runtime.NumCPU()}
	for _, mk := range []func(int, float64) Config{meshConfig, fbflyConfig} {
		for _, mode := range []core.SpecMode{core.SpecNone, core.SpecGnt, core.SpecReq} {
			base := mk(2, 0.3)
			base.Seed = 42
			base.SA.SpecMode = mode
			base.Warmup, base.Measure, base.Drain = 200, 500, 5000
			serial := New(base).Run()
			for _, s := range counts {
				cfg := base
				cfg.Shards = s
				if got := New(cfg).Run(); got != serial {
					t.Errorf("%s %v shards=%d diverged from serial:\nserial:  %+v\nsharded: %+v",
						base.Topology.Name, mode, s, serial, got)
				}
			}
		}
	}
}

// TestShardInvarianceComposesWithDense checks the sharded stepper against
// the dense reference: sharding and the active-set scheduler are
// independent axes, and all four combinations must agree.
func TestShardInvarianceComposesWithDense(t *testing.T) {
	base := meshConfig(2, 0.3)
	base.Seed = 42
	base.Warmup, base.Measure, base.Drain = 200, 500, 5000
	want := New(base).Run()
	for _, dense := range []bool{false, true} {
		for _, s := range []int{1, 4} {
			cfg := base
			cfg.Dense = dense
			cfg.Shards = s
			if got := New(cfg).Run(); got != want {
				t.Errorf("dense=%v shards=%d diverged:\nwant: %+v\ngot:  %+v", dense, s, want, got)
			}
		}
	}
}

// TestShardFlitConservation drains a loaded network stepped with an uneven
// shard split (64 routers over 3 shards): every flit handed to a router
// must still reach a terminal, and Close must shut the workers down.
func TestShardFlitConservation(t *testing.T) {
	cfg := meshConfig(2, 0.3)
	cfg.Shards = 3
	n := New(cfg)
	defer n.Close()
	for i := 0; i < 2500; i++ {
		n.stepCycle()
	}
	n.SetInjectionRate(0)
	for i := 0; i < 10000; i++ {
		n.stepCycle()
		if sent, delivered := n.SentFlits(), n.deliveredFlits(); sent == delivered && i > 100 {
			break
		}
	}
	sent, delivered := n.SentFlits(), n.deliveredFlits()
	if sent != delivered {
		t.Fatalf("shards=3: flit conservation violated: sent %d, delivered %d", sent, delivered)
	}
	if sent == 0 {
		t.Fatal("no traffic moved")
	}
}

// TestShardValidateParallel runs the parallel stepper with per-cycle
// allocation checking in every router on both topologies; under `go test
// -race` this doubles as the data-race certification of phase 1, and any
// worker panic must surface on the stepping goroutine.
func TestShardValidateParallel(t *testing.T) {
	for _, mk := range []func(int, float64) Config{meshConfig, fbflyConfig} {
		cfg := mk(2, 0.35)
		cfg.Shards = 4
		cfg.Validate = true
		cfg.Warmup, cfg.Measure, cfg.Drain = 200, 400, 4000
		if res := New(cfg).Run(); res.FlitsDelivered == 0 {
			t.Errorf("%s shards=4 validated: no flits moved", cfg.Topology.Name)
		}
	}
}

// TestShardWorkerPanicPropagates proves a panic inside a worker-owned
// shard (Validate tripping, flow-control bugs) reaches the caller of Run
// instead of crashing the process from a worker goroutine.
func TestShardWorkerPanicPropagates(t *testing.T) {
	cfg := meshConfig(1, 0.2)
	cfg.Shards = 4
	n := New(cfg)
	defer n.Close()
	for i := 0; i < 50; i++ {
		n.stepCycle()
	}
	// Plant a malformed event in a worker-owned shard's wheel: delivering a
	// flit to an out-of-range VC panics inside that worker's phase 1, and
	// the pool must re-raise it here.
	last := n.shards[len(n.shards)-1]
	slot := (n.now + 1) % n.wheelSize
	last.wheel[slot] = append(last.wheel[slot], event{
		kind: evFlitToRouter, router: last.r0, port: 0, vc: 1 << 20,
		flit: &router.Flit{Pkt: &router.Packet{Size: 1}, Head: true, Tail: true},
	})
	defer func() {
		if recover() == nil {
			t.Fatal("corrupted shard did not panic on the stepping goroutine")
		}
	}()
	for i := 0; i < 10; i++ {
		n.stepCycle()
	}
}

// TestShardTraceForcesSerial pins the documented clamp: tracing collectors
// are not concurrency-safe and same-cycle trace events need inline packet
// IDs, so a traced run must fall back to one shard and still drain.
func TestShardTraceForcesSerial(t *testing.T) {
	collector := trace.NewCollector(100000)
	cfg := meshConfig(1, 0.05)
	cfg.Shards = 4
	cfg.Warmup, cfg.Measure, cfg.Drain = 100, 200, 2000
	cfg.Trace = trace.New(collector, nil)
	n := New(cfg)
	if n.Shards() != 1 {
		t.Fatalf("traced network runs %d shards, want 1", n.Shards())
	}
	if res := n.Run(); res.Unfinished != 0 || collector.Total() == 0 {
		t.Fatalf("traced sharded-config run broken: %+v, %d events", n.Run(), collector.Total())
	}
}

// TestShardPartition checks the router/terminal partition: contiguous,
// balanced within one router, covering, terminals co-resident with their
// routers, and shard counts clamped to the router count.
func TestShardPartition(t *testing.T) {
	cfg := meshConfig(1, 0)
	cfg.Shards = 3
	n := New(cfg)
	conc := cfg.Topology.Concentration
	prevR, prevT := 0, 0
	for i, s := range n.shards {
		if s.r0 != prevR || s.t0 != prevT {
			t.Fatalf("shard %d not contiguous: r0=%d t0=%d, want %d/%d", i, s.r0, s.t0, prevR, prevT)
		}
		if s.t1 != s.r1*conc {
			t.Fatalf("shard %d terminals [%d,%d) not aligned to routers [%d,%d)", i, s.t0, s.t1, s.r0, s.r1)
		}
		if size := s.r1 - s.r0; size < cfg.Topology.Routers/3 || size > cfg.Topology.Routers/3+1 {
			t.Fatalf("shard %d unbalanced: %d routers", i, size)
		}
		for r := s.r0; r < s.r1; r++ {
			if n.shardOfRouter[r] != int32(i) {
				t.Fatalf("shardOfRouter[%d] = %d, want %d", r, n.shardOfRouter[r], i)
			}
		}
		prevR, prevT = s.r1, s.t1
	}
	if prevR != cfg.Topology.Routers || prevT != cfg.Topology.Terminals() {
		t.Fatalf("partition covers %d routers / %d terminals, want %d / %d",
			prevR, prevT, cfg.Topology.Routers, cfg.Topology.Terminals())
	}

	over := meshConfig(1, 0)
	over.Shards = 10000
	if got := New(over).Shards(); got != over.Topology.Routers {
		t.Fatalf("oversized shard count clamped to %d, want %d", got, over.Topology.Routers)
	}
}

// TestWheelSlotCapacityDecay covers the slot-retention fix: a saturation
// burst balloons the wheel slots' backing arrays, and sustained
// low-occupancy cycles afterwards must shrink them back down instead of
// pinning the peak capacity for the rest of the run.
func TestWheelSlotCapacityDecay(t *testing.T) {
	cfg := meshConfig(2, 0.9) // well past saturation: slots fill up
	n := New(cfg)
	for i := 0; i < 1500; i++ {
		n.stepCycle()
	}
	maxCap := func() int {
		m := 0
		for _, s := range n.shards {
			for _, w := range s.wheel {
				if cap(w) > m {
					m = cap(w)
				}
			}
		}
		return m
	}
	peak := maxCap()
	if peak <= slotShrinkMin {
		t.Fatalf("saturation burst never grew a slot past %d (peak %d); test is vacuous", slotShrinkMin, peak)
	}
	// Cut injection, drain, then idle long enough for the hysteresis to
	// halve the slots repeatedly.
	n.SetInjectionRate(0)
	for i := 0; i < 12000; i++ {
		n.stepCycle()
	}
	if got := maxCap(); got > 2*slotShrinkMin {
		t.Fatalf("idle wheel slots retain capacity %d (burst peak %d), want <= %d",
			got, peak, 2*slotShrinkMin)
	}
}

// TestPoolShrinkAfterBurst covers the free-list analogue of the wheel-slot
// policy: a saturation burst floods the flit/packet pools with recycled
// objects when it drains, and a sustained low-usage period afterwards must
// release the idle surplus instead of pinning the burst peak for the rest
// of the run.
func TestPoolShrinkAfterBurst(t *testing.T) {
	cfg := meshConfig(2, 0.9) // well past saturation: deep in-flight backlog
	n := New(cfg)
	for i := 0; i < 1500; i++ {
		n.stepCycle()
	}
	poolSizes := func() (flits, pkts int) {
		for _, s := range n.shards {
			flits += s.flitPool.free()
			pkts += s.pktPool.free()
		}
		return
	}
	// Cut injection and drain: every in-flight object lands in a pool. The
	// trim policy already fires during the drain, so the peak must be
	// sampled along the way rather than at the end.
	n.SetInjectionRate(0)
	peakFlits, peakPkts := 0, 0
	for i := 0; i < 2000; i++ {
		n.stepCycle()
		if f, p := poolSizes(); f > peakFlits {
			peakFlits, peakPkts = f, p
		}
	}
	if peakFlits <= len(n.shards)*poolShrinkMin {
		t.Fatalf("burst drain peaked at only %d pooled flits; test is vacuous", peakFlits)
	}
	// Idle long enough for the hysteresis to halve the surplus repeatedly.
	// The geometric step-down sheds half the idle surplus every
	// poolShrinkAfter cycles, so the surplus above the vacuity floor decays
	// by ~2^-10 over 10 windows.
	for i := 0; i < 10*poolShrinkAfter*poolShrinkAfter; i++ {
		n.stepCycle()
	}
	flits, pkts := poolSizes()
	bound := 2 * len(n.shards) * poolShrinkMin
	if flits > bound {
		t.Fatalf("idle flit pools retain %d objects (burst peak %d), want <= %d", flits, peakFlits, bound)
	}
	if pkts > bound {
		t.Fatalf("idle packet pools retain %d objects (burst peak %d), want <= %d", pkts, peakPkts, bound)
	}
}
