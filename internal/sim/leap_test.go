package sim

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
)

// TestLeapGolden is the core contract of event leaping: jumping the clock
// over provably idle stretches must reproduce the per-cycle stepper bit for
// bit — same grants, same packet IDs, same floating-point latency sums — at
// seed 42 on both paper topologies, all three speculation modes and both
// shard counts, against both the dense reference schedule and the ticked
// active-set schedule. The low-rate points are where leaping actually
// engages (the network is fully idle between transactions); the fbfly ones
// further pin the presample rewind path, because UGAL draws routing
// randomness from the terminal's stream when a reply wakes it before its
// presampled arrival. Validate is on for the leap runs, so every leap also
// cross-checks the occupancy bitmask and the skipped span (validateLeap).
func TestLeapGolden(t *testing.T) {
	for _, mk := range []func(int, float64) Config{meshConfig, fbflyConfig} {
		for _, mode := range []core.SpecMode{core.SpecNone, core.SpecGnt, core.SpecReq} {
			for _, rate := range []float64{0.3, 0.002} {
				base := mk(2, rate)
				base.Seed = 42
				base.SA.SpecMode = mode
				base.Warmup, base.Measure, base.Drain = 200, 500, 5000
				ref := base
				ref.Dense = true
				want := New(ref).Run()
				for _, shards := range []int{1, 4} {
					ticked := base
					ticked.Shards = shards
					if got := New(ticked).Run(); got != want {
						t.Errorf("%s %v rate=%g shards=%d: ticked active-set diverged from dense:\ndense:  %+v\nticked: %+v",
							base.Topology.Name, mode, rate, shards, want, got)
					}
					leap := base
					leap.Shards = shards
					leap.Leap = true
					leap.Validate = true
					n := New(leap)
					if got := n.Run(); got != want {
						t.Errorf("%s %v rate=%g shards=%d: leaped run diverged from dense:\ndense: %+v\nleap:  %+v",
							base.Topology.Name, mode, rate, shards, want, got)
					}
				}
			}
		}
	}
}

// TestLeapEngages guards against the golden equivalence passing vacuously:
// at a drain-dominated low rate the leap gate must actually fire and skip
// the bulk of the simulated cycles.
func TestLeapEngages(t *testing.T) {
	cfg := meshConfig(2, 0.001)
	cfg.Seed = 42
	cfg.Warmup, cfg.Measure, cfg.Drain = 200, 500, 5000
	cfg.Leap = true
	cfg.Validate = true
	n := New(cfg)
	res := n.Run()
	events, cycles := n.LeapStats()
	if events == 0 {
		t.Fatal("leap gate never fired at rate 0.001")
	}
	if cycles*2 < res.Cycles {
		t.Errorf("leapt only %d of %d cycles; want the majority at rate 0.001", cycles, res.Cycles)
	}
	if res.MeasuredPackets == 0 {
		t.Error("no measured packets; the run exercised nothing")
	}
}

// TestLeapComposesWithVariants pins leap bit-exactness for the allocator
// variants with cross-cycle idle-priority state — wavefront's SkipIdle is a
// modular priority advance, the free-queue VC allocator re-infers state
// from request vectors, and the precomputed switch allocator latches a
// request snapshot — exactly the machinery a multi-thousand-cycle leap
// must compose with through the existing lastStep wake-up replay.
func TestLeapComposesWithVariants(t *testing.T) {
	variants := []struct {
		name string
		set  func(*Config)
	}{
		{"freequeue", func(c *Config) { c.VA.FreeQueue = true }},
		{"precomputed", func(c *Config) {
			c.SA.Precomputed = true
			c.SA.SpecMode = core.SpecNone
		}},
		{"wavefront", func(c *Config) {
			c.VA.Arch = alloc.Wavefront
			c.SA.Arch = alloc.Wavefront
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			for _, rate := range []float64{0.3, 0.002} {
				base := meshConfig(2, rate)
				base.Seed = 42
				base.Warmup, base.Measure, base.Drain = 200, 400, 4000
				v.set(&base)
				ref := base
				ref.Dense = true
				want := New(ref).Run()
				cfg := base
				cfg.Leap = true
				cfg.Validate = true
				if got := New(cfg).Run(); got != want {
					t.Errorf("%s rate=%g: leaped run diverged from dense:\ndense: %+v\nleap:  %+v",
						v.name, rate, want, got)
				}
			}
		})
	}
}

// TestLeapTorusGolden extends the golden matrix to the torus dateline
// extension (distinct resource-class structure and routing).
func TestLeapTorusGolden(t *testing.T) {
	base := torusConfig(2, 0.002)
	base.Seed = 42
	base.Warmup, base.Measure, base.Drain = 200, 500, 5000
	ref := base
	ref.Dense = true
	want := New(ref).Run()
	for _, shards := range []int{1, 4} {
		cfg := base
		cfg.Shards = shards
		cfg.Leap = true
		cfg.Validate = true
		if got := New(cfg).Run(); got != want {
			t.Errorf("torus shards=%d: leaped run diverged from dense:\ndense: %+v\nleap:  %+v",
				shards, want, got)
		}
	}
}

// TestLeapRateChangeRewind pins the presample invalidation on
// SetInjectionRate: the already-elapsed cycles must be replayed at the old
// rate and the new rate take effect at the current cycle, exactly as
// per-cycle ticking would have it. The two networks are stepped manually
// (no leaping), so this isolates the presample/rewind bookkeeping itself.
func TestLeapRateChangeRewind(t *testing.T) {
	mk := func(leap bool) *Network {
		cfg := meshConfig(2, 0.05)
		cfg.Seed = 42
		cfg.Leap = leap
		return New(cfg)
	}
	a, b := mk(true), mk(false)
	step := func(n *Network, cycles int) {
		for i := 0; i < cycles; i++ {
			n.stepCycle()
		}
	}
	for phase, rate := range []float64{0.2, 0, 0.1} {
		step(a, 150)
		step(b, 150)
		a.SetInjectionRate(rate)
		b.SetInjectionRate(rate)
		if as, bs := a.SentFlits(), b.SentFlits(); as != bs {
			t.Fatalf("phase %d: presampling run sent %d flits, per-cycle run %d", phase, as, bs)
		}
	}
	step(a, 300)
	step(b, 300)
	ac, ad := a.Conservation()
	bc, bd := b.Conservation()
	if ac != bc || ad != bd {
		t.Errorf("after rate changes: presampling (created %d delivered %d) != per-cycle (created %d delivered %d)",
			ac, ad, bc, bd)
	}
}
