package sim

import (
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// pktQueue is a FIFO of packets with a head index, so dequeues neither
// shift elements nor shrink the backing array's reusable capacity.
type pktQueue struct {
	buf  []*router.Packet
	head int
}

func (q *pktQueue) empty() bool           { return q.head >= len(q.buf) }
func (q *pktQueue) front() *router.Packet { return q.buf[q.head] }
func (q *pktQueue) push(p *router.Packet) { q.buf = append(q.buf, p) }

func (q *pktQueue) pop() *router.Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// terminal models one network endpoint: it generates request transactions,
// streams packet flits into its router's terminal-port input VCs (one flit
// per cycle, credit flow-controlled), consumes ejected flits, and generates
// replies for received requests with priority over new injections (§3.2).
type terminal struct {
	id       int
	routerID int
	port     int
	gen      *traffic.Generator
	rng      *xrand.Source
	spec     core.VCSpec

	// Source queues: replies take strict priority over requests.
	replyQ pktQueue
	reqQ   pktQueue

	// Open packet being streamed and its flits.
	cur      *router.Packet
	curFlits []*router.Flit
	curSeq   int
	curVC    int

	// Terminal-side view of the router's terminal-port input VCs: which
	// are occupied by one of our packets, and how many credits remain.
	vcBusy  []bool
	credits []int

	classMasks []*bitvec.Vec

	sentFlits int64
}

func newTerminal(id, routerID, port int, cfg Config, rng *xrand.Source) *terminal {
	v := cfg.Spec.V()
	t := &terminal{
		id:       id,
		routerID: routerID,
		port:     port,
		gen:      traffic.NewGenerator(cfg.Pattern, cfg.InjectionRate),
		rng:      rng,
		spec:     cfg.Spec,
		vcBusy:   make([]bool, v),
		credits:  make([]int, v),
		curVC:    -1,
	}
	t.gen.ReadFraction = *cfg.ReadFraction
	for i := range t.credits {
		t.credits[i] = cfg.BufDepth
	}
	for m := 0; m < cfg.Spec.MessageClasses; m++ {
		for r := 0; r < cfg.Spec.ResourceClasses; r++ {
			t.classMasks = append(t.classMasks, cfg.Spec.ClassMask(m, r))
		}
	}
	return t
}

// dormant reports whether the terminal can be skipped this cycle: with no
// offered load the injection process draws no randomness, and with no open
// packet and empty source queues both generate and send are no-ops. A reply
// elicited by a delivery this cycle is enqueued by the end-of-cycle commit,
// so the predicate sees it — and wakes the terminal — from the next cycle
// on; that is exactly when the reply first becomes sendable (its CreatedAt
// is the following cycle, which the open gate already enforced when receive
// pushed replies mid-cycle).
func (t *terminal) dormant() bool {
	return t.gen.InjectionRate <= 0 && t.cur == nil && t.replyQ.empty() && t.reqQ.empty()
}

// generate rolls the geometric injection process for this cycle.
func (t *terminal) generate(s *shard) {
	typ, dst, ok := t.gen.NextRequest(t.id, t.rng)
	if !ok {
		return
	}
	p := s.newRequest(typ, t.id, dst, s.net.now)
	t.reqQ.push(p)
}

// receive consumes an ejected flit; flits return to the shard's free list
// and a tail records the completed packet for the end-of-cycle commit,
// which takes the delivery statistics and generates the reply (§3.2: in
// the next cycle, with priority over new request injections).
func (t *terminal) receive(s *shard, f *router.Flit) {
	s.flitDelivered()
	if tr := s.net.cfg.Trace; tr != nil {
		tr.Record(trace.Event{Kind: trace.Eject, Router: t.routerID,
			Port: t.port, VC: -1, OutPort: -1, OutVC: -1, Packet: f.Pkt.ID, Seq: f.Seq})
	}
	tail, p := f.Tail, f.Pkt
	s.recycleFlit(f)
	if !tail {
		return
	}
	s.deliveries = append(s.deliveries, delivery{terminal: t.id, pkt: p})
}

// credit restores one credit for input VC vc at the router's terminal port.
func (t *terminal) credit(vc int) {
	t.credits[vc]++
}

// send streams at most one flit into the router this cycle, opening a new
// packet when the previous one finished and an input VC of the packet's
// class is available.
func (t *terminal) send(s *shard) {
	if t.cur == nil {
		t.open(s)
	}
	if t.cur == nil {
		return
	}
	if t.credits[t.curVC] <= 0 {
		return
	}
	f := t.curFlits[t.curSeq]
	t.credits[t.curVC]--
	t.sentFlits++
	if tr := s.net.cfg.Trace; tr != nil {
		tr.Record(trace.Event{Kind: trace.Inject, Router: t.routerID,
			Port: t.port, VC: t.curVC, OutPort: -1, OutVC: -1, Packet: f.Pkt.ID, Seq: f.Seq})
	}
	// Injection link: 1 cycle of terminal processing + 1 cycle of wire. The
	// terminal's router is on its own shard by construction.
	s.scheduleLocal(2, event{kind: evFlitToRouter, router: t.routerID, port: t.port, vc: t.curVC, flit: f})
	t.curSeq++
	if t.curSeq == len(t.curFlits) {
		t.vcBusy[t.curVC] = false
		t.cur, t.curSeq, t.curVC = nil, 0, -1
		t.curFlits = t.curFlits[:0]
	}
}

// open starts streaming the next queued packet if an input VC is free.
// Replies are strictly prioritized: while a reply waits, request injection
// stalls.
func (t *terminal) open(s *shard) {
	n := s.net
	var q *pktQueue
	switch {
	case !t.replyQ.empty() && t.replyQ.front().CreatedAt <= n.now:
		q = &t.replyQ
	case !t.reqQ.empty() && t.reqQ.front().CreatedAt <= n.now:
		q = &t.reqQ
	default:
		return
	}
	p := q.front()
	// Routing decision at injection (UGAL consults local queue state).
	n.cfg.Routing.Inject(t.routerID, &p.Route, n, t.rng)
	// The packet must occupy an input VC matching its message class and
	// initial resource class.
	mask := t.classMasks[t.spec.ClassIndex(p.Type.MessageClass(), p.Route.Phase)]
	vc := -1
	mask.ForEach(func(c int) {
		if vc < 0 && !t.vcBusy[c] {
			vc = c
		}
	})
	if vc < 0 {
		return // head-of-line blocked until a VC frees up
	}
	q.pop()
	t.cur = p
	t.curFlits = s.makeFlits(p, t.curFlits)
	t.curSeq = 0
	t.curVC = vc
	t.vcBusy[vc] = true
}

// SetInjectionRate changes the offered load of every terminal; used by
// drain-style tests.
func (n *Network) SetInjectionRate(rate float64) {
	for _, t := range n.terminals {
		t.gen.InjectionRate = rate
	}
}

// SentFlits returns the total flits handed to routers by all terminals.
func (n *Network) SentFlits() int64 {
	var s int64
	for _, t := range n.terminals {
		s += t.sentFlits
	}
	return s
}
