package sim

import (
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// pktQueue is a FIFO of packets with a head index, so dequeues neither
// shift elements nor shrink the backing array's reusable capacity.
type pktQueue struct {
	buf  []*router.Packet
	head int
}

func (q *pktQueue) empty() bool           { return q.head >= len(q.buf) }
func (q *pktQueue) front() *router.Packet { return q.buf[q.head] }
func (q *pktQueue) push(p *router.Packet) { q.buf = append(q.buf, p) }

func (q *pktQueue) pop() *router.Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// terminal models one network endpoint: it generates request transactions,
// streams packet flits into its router's terminal-port input VCs (one flit
// per cycle, credit flow-controlled), consumes ejected flits, and generates
// replies for received requests with priority over new injections (§3.2).
type terminal struct {
	id       int
	routerID int
	port     int
	gen      *traffic.Generator
	rng      *xrand.Source
	spec     core.VCSpec

	// Source queues: replies take strict priority over requests.
	replyQ pktQueue
	reqQ   pktQueue

	// Open packet being streamed and its flits.
	cur      *router.Packet
	curFlits []*router.Flit
	curSeq   int
	curVC    int

	// Terminal-side view of the router's terminal-port input VCs: which
	// are occupied by one of our packets, and how many credits remain.
	vcBusy  []bool
	credits []int

	classMasks []*bitvec.Vec

	// Event-leaping injection state (Config.Leap): nextArrival is the
	// presampled wake-up cycle (-1 = not sampled) — the next transaction
	// arrival when arrivalReal, otherwise a chunk checkpoint at which
	// sampling resumes (see presampleChunk); snap/snapCycle record the RNG
	// state and cycle at presample time so a wake-up before the arrival can
	// rewind and replay the per-cycle gate draws the dense reference would
	// have made (rewindPresample).
	nextArrival int64
	arrivalReal bool
	snap        xrand.Source
	snapCycle   int64

	sentFlits int64
}

func newTerminal(id, routerID, port int, cfg Config, rng *xrand.Source) *terminal {
	v := cfg.Spec.V()
	t := &terminal{
		id:       id,
		routerID: routerID,
		port:     port,
		gen:      traffic.NewGenerator(cfg.Pattern, cfg.InjectionRate),
		rng:      rng,
		spec:     cfg.Spec,
		vcBusy:   make([]bool, v),
		credits:  make([]int, v),
		curVC:    -1,

		nextArrival: -1,
	}
	t.gen.ReadFraction = *cfg.ReadFraction
	for i := range t.credits {
		t.credits[i] = cfg.BufDepth
	}
	for m := 0; m < cfg.Spec.MessageClasses; m++ {
		for r := 0; r < cfg.Spec.ResourceClasses; r++ {
			t.classMasks = append(t.classMasks, cfg.Spec.ClassMask(m, r))
		}
	}
	return t
}

// dormant reports whether the terminal can be skipped this cycle: with no
// offered load the injection process draws no randomness, and with no open
// packet and empty source queues both generate and send are no-ops. A reply
// elicited by a delivery this cycle is enqueued by the end-of-cycle commit,
// so the predicate sees it — and wakes the terminal — from the next cycle
// on; that is exactly when the reply first becomes sendable (its CreatedAt
// is the following cycle, which the open gate already enforced when receive
// pushed replies mid-cycle).
//
// With event leaping an idle terminal that has presampled its next arrival
// (generate) is dormant until that cycle: the per-cycle gate draws it would
// have made were consumed in one batch at presample time, and any earlier
// wake-up rewinds and replays them, so skipping the terminal neither skips
// work nor desynchronizes its RNG stream.
func (t *terminal) dormant(n *Network) bool {
	if t.cur != nil || !t.replyQ.empty() || !t.reqQ.empty() {
		return false
	}
	if t.gen.InjectionRate <= 0 {
		return true
	}
	return n.leapOn && t.nextArrival > n.now
}

// generate rolls the injection process for this cycle. With event leaping
// an idle terminal consumes the whole run of per-cycle Bernoulli failures
// up to the next success in one batch, exposing the arrival cycle to the
// leap gate; the batch is the exact same draw sequence the dense reference
// consumes one cycle at a time.
func (t *terminal) generate(s *shard) {
	n := s.net
	if n.leapOn && t.gen.InjectionRate > 0 {
		t.generateLeap(s)
		return
	}
	typ, dst, ok := t.gen.NextRequest(t.id, t.rng)
	if !ok {
		return
	}
	p := s.newRequest(typ, t.id, dst, n.now)
	t.reqQ.push(p)
}

// presampleChunk bounds one presampling batch: an idle terminal consumes
// at most this many per-cycle gate draws ahead of the clock, so ultra-low
// rates don't eagerly burn an entire geometric run (mean 1/p cycles, vastly
// past the end of the run at low p). A batch that ends without an arrival
// parks nextArrival at the chunk boundary as a checkpoint (arrivalReal
// false); the leap gate may jump there, and sampling resumes. The rewind
// replay cost on an early wake-up is bounded by the same constant.
const presampleChunk = 1024

// generateLeap is the presampling injection path (see generate).
func (t *terminal) generateLeap(s *shard) {
	n := s.net
	if t.nextArrival >= 0 {
		switch {
		case n.now < t.nextArrival:
			// Woken before the presampled arrival (a reply arrived this
			// cycle): rewind and replay the gate draws through this cycle
			// so the stream position matches dense ticking before open()
			// consumes any routing randomness.
			t.rewindPresample(n.now)
			return
		case t.arrivalReal:
			// now == nextArrival: the gate draw was consumed at presample
			// time; draw the rest of the transaction and emit. A leaped
			// schedule cannot overshoot: the leap gate never jumps past a
			// presampled wake-up.
			t.nextArrival = -1
			typ, dst := t.gen.RequestAt(t.id, t.rng)
			t.reqQ.push(s.newRequest(typ, t.id, dst, n.now))
			return
		default:
			// Chunk checkpoint: the previous batch held no arrival, and its
			// draws covered exactly the cycles before this one. Resume
			// sampling below as if freshly idle (or tick per-cycle if a
			// reply arrived at this very cycle).
			t.nextArrival = -1
		}
	}
	if t.cur != nil || !t.replyQ.empty() || !t.reqQ.empty() {
		// Busy terminals tick the per-cycle process: send has to run
		// every cycle anyway, so presampling would buy nothing and the
		// adaptive-routing draws interleaved by open() make the stream
		// cheapest to keep aligned one cycle at a time.
		typ, dst, ok := t.gen.NextRequest(t.id, t.rng)
		if ok {
			t.reqQ.push(s.newRequest(typ, t.id, dst, n.now))
		}
		return
	}
	t.snap, t.snapCycle = t.rng.State(), n.now
	if d := t.gen.NextArrivalDelta(t.rng, presampleChunk); d < 0 {
		t.nextArrival, t.arrivalReal = n.now+presampleChunk, false
		return
	} else if d > 0 {
		t.nextArrival, t.arrivalReal = n.now+int64(d), true
		return
	}
	// The batch's first draw succeeded: the arrival is this cycle; emit.
	typ, dst := t.gen.RequestAt(t.id, t.rng)
	t.reqQ.push(s.newRequest(typ, t.id, dst, n.now))
}

// rewindPresample rewinds the RNG to the presample point and replays the
// per-cycle gate draws for cycles snapCycle..through — all failures by
// construction, since through precedes the presampled arrival — leaving
// the stream exactly where dense per-cycle ticking would have it after
// cycle through's draw, and the terminal unsampled.
func (t *terminal) rewindPresample(through int64) {
	t.rng.Restore(t.snap)
	p := t.gen.TransactionRate()
	for c := t.snapCycle; c <= through; c++ {
		if t.rng.Bool(p) {
			panic("sim: presample replay produced an arrival before the sampled one")
		}
	}
	t.nextArrival = -1
}

// receive consumes an ejected flit; flits return to the shard's free list
// and a tail records the completed packet for the end-of-cycle commit,
// which takes the delivery statistics and generates the reply (§3.2: in
// the next cycle, with priority over new request injections).
func (t *terminal) receive(s *shard, f *router.Flit) {
	s.flitDelivered()
	if tr := s.net.cfg.Trace; tr != nil {
		tr.Record(trace.Event{Kind: trace.Eject, Router: t.routerID,
			Port: t.port, VC: -1, OutPort: -1, OutVC: -1, Packet: f.Pkt.ID, Seq: f.Seq})
	}
	tail, p := f.Tail, f.Pkt
	s.recycleFlit(f)
	if !tail {
		return
	}
	s.deliveries = append(s.deliveries, delivery{terminal: t.id, pkt: p})
}

// credit restores one credit for input VC vc at the router's terminal port.
func (t *terminal) credit(vc int) {
	t.credits[vc]++
}

// send streams at most one flit into the router this cycle, opening a new
// packet when the previous one finished and an input VC of the packet's
// class is available.
func (t *terminal) send(s *shard) {
	if t.cur == nil {
		t.open(s)
	}
	if t.cur == nil {
		return
	}
	if t.credits[t.curVC] <= 0 {
		return
	}
	f := t.curFlits[t.curSeq]
	t.credits[t.curVC]--
	t.sentFlits++
	if tr := s.net.cfg.Trace; tr != nil {
		tr.Record(trace.Event{Kind: trace.Inject, Router: t.routerID,
			Port: t.port, VC: t.curVC, OutPort: -1, OutVC: -1, Packet: f.Pkt.ID, Seq: f.Seq})
	}
	// Injection link: 1 cycle of terminal processing + 1 cycle of wire. The
	// terminal's router is on its own shard by construction.
	s.scheduleLocal(2, event{kind: evFlitToRouter, router: t.routerID, port: t.port, vc: t.curVC, flit: f})
	t.curSeq++
	if t.curSeq == len(t.curFlits) {
		t.vcBusy[t.curVC] = false
		t.cur, t.curSeq, t.curVC = nil, 0, -1
		t.curFlits = t.curFlits[:0]
	}
}

// open starts streaming the next queued packet if an input VC is free.
// Replies are strictly prioritized: while a reply waits, request injection
// stalls.
func (t *terminal) open(s *shard) {
	n := s.net
	var q *pktQueue
	switch {
	case !t.replyQ.empty() && t.replyQ.front().CreatedAt <= n.now:
		q = &t.replyQ
	case !t.reqQ.empty() && t.reqQ.front().CreatedAt <= n.now:
		q = &t.reqQ
	default:
		return
	}
	p := q.front()
	// Routing decision at injection (UGAL consults local queue state).
	n.cfg.Routing.Inject(t.routerID, &p.Route, n, t.rng)
	// The packet must occupy an input VC matching its message class and
	// initial resource class.
	mask := t.classMasks[t.spec.ClassIndex(p.Type.MessageClass(), p.Route.Phase)]
	vc := -1
	mask.ForEach(func(c int) {
		if vc < 0 && !t.vcBusy[c] {
			vc = c
		}
	})
	if vc < 0 {
		return // head-of-line blocked until a VC frees up
	}
	q.pop()
	t.cur = p
	t.curFlits = s.makeFlits(p, t.curFlits)
	t.curSeq = 0
	t.curVC = vc
	t.vcBusy[vc] = true
}

// SetInjectionRate changes the offered load of every terminal; used by
// drain-style tests. A presampled arrival was drawn at the old rate, so it
// is rewound — replaying the already-elapsed cycles at that old rate —
// before the new rate takes effect at the current cycle, exactly as
// per-cycle ticking would have it.
func (n *Network) SetInjectionRate(rate float64) {
	for _, t := range n.terminals {
		if t.nextArrival >= 0 {
			t.rewindPresample(n.now - 1)
		}
		t.gen.InjectionRate = rate
	}
}

// SentFlits returns the total flits handed to routers by all terminals.
func (n *Network) SentFlits() int64 {
	var s int64
	for _, t := range n.terminals {
		s += t.sentFlits
	}
	return s
}
