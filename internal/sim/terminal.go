package sim

import (
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/router"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/xrand"
)

// pktQueue is a FIFO of packets with a head index, so dequeues neither
// shift elements nor shrink the backing array's reusable capacity.
type pktQueue struct {
	buf  []*router.Packet
	head int
}

func (q *pktQueue) empty() bool           { return q.head >= len(q.buf) }
func (q *pktQueue) front() *router.Packet { return q.buf[q.head] }
func (q *pktQueue) push(p *router.Packet) { q.buf = append(q.buf, p) }

func (q *pktQueue) pop() *router.Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p
}

// terminal models one network endpoint: it generates request transactions,
// streams packet flits into its router's terminal-port input VCs (one flit
// per cycle, credit flow-controlled), consumes ejected flits, and generates
// replies for received requests with priority over new injections (§3.2).
type terminal struct {
	id       int
	routerID int
	port     int
	gen      *traffic.Generator
	rng      *xrand.Source
	spec     core.VCSpec

	// Source queues: replies take strict priority over requests.
	replyQ pktQueue
	reqQ   pktQueue

	// Open packet being streamed and its flits.
	cur      *router.Packet
	curFlits []*router.Flit
	curSeq   int
	curVC    int

	// Terminal-side view of the router's terminal-port input VCs: which
	// are occupied by one of our packets, and how many credits remain.
	vcBusy  []bool
	credits []int

	classMasks []*bitvec.Vec

	// recorded accumulates this terminal's injected request transactions
	// when Config.RecordArrivals is set (nil otherwise); the per-terminal
	// buffers are merged into one canonical trace by Network.ArrivalTrace,
	// which keeps recording deterministic for any shard count.
	recorded []traffic.Arrival
	record   bool

	sentFlits int64
}

func newTerminal(id, routerID, port int, cfg Config, rng *xrand.Source, proc traffic.ArrivalProcess) *terminal {
	v := cfg.Spec.V()
	t := &terminal{
		id:       id,
		routerID: routerID,
		port:     port,
		gen:      traffic.NewGeneratorProcess(cfg.Pattern, proc),
		rng:      rng,
		spec:     cfg.Spec,
		vcBusy:   make([]bool, v),
		credits:  make([]int, v),
		curVC:    -1,
		record:   cfg.RecordArrivals,
	}
	t.gen.ReadFraction = *cfg.ReadFraction
	for i := range t.credits {
		t.credits[i] = cfg.BufDepth
	}
	for m := 0; m < cfg.Spec.MessageClasses; m++ {
		for r := 0; r < cfg.Spec.ResourceClasses; r++ {
			t.classMasks = append(t.classMasks, cfg.Spec.ClassMask(m, r))
		}
	}
	return t
}

// dormant reports whether the terminal can be skipped this cycle: at zero
// rate the injection process draws no randomness when ticked (the
// ArrivalProcess quiet-at-zero-rate contract), and with no open packet and
// empty source queues both generate and send are no-ops. A reply elicited
// by a delivery this cycle is enqueued by the end-of-cycle commit, so the
// predicate sees it — and wakes the terminal — from the next cycle on;
// that is exactly when the reply first becomes sendable (its CreatedAt is
// the following cycle, which the open gate already enforced when receive
// pushed replies mid-cycle).
//
// With event leaping an idle terminal that has presampled its next arrival
// (generate) is dormant until that cycle: the per-cycle gate draws it would
// have made were consumed in one batch at presample time, and any earlier
// wake-up rewinds and replays them, so skipping the terminal neither skips
// work nor desynchronizes its RNG stream.
func (t *terminal) dormant(n *Network) bool {
	if t.cur != nil || !t.replyQ.empty() || !t.reqQ.empty() {
		return false
	}
	if n.leapOn && t.gen.PendingArrival() {
		// A presampled arrival is still owed even if the process has gone
		// quiet since it was drawn — a trace replay's rate drops to 0 the
		// moment its last arrival is presampled — so the terminal sleeps
		// only until that cycle, never past it.
		return t.gen.PresampledArrival() > n.now
	}
	if t.gen.Rate() <= 0 {
		return true
	}
	return n.leapOn && t.gen.PresampledArrival() > n.now
}

// inject pushes a new request transaction into the source queue, recording
// it when arrival recording is on.
func (t *terminal) inject(s *shard, typ traffic.PacketType, dst int) {
	if t.record {
		t.recorded = append(t.recorded, traffic.Arrival{Cycle: s.net.now, Src: t.id, Dst: dst, Type: typ})
	}
	t.reqQ.push(s.newRequest(typ, t.id, dst, s.net.now))
}

// generate rolls the injection process for this cycle. With event leaping
// an idle terminal consumes the whole run of per-cycle Bernoulli failures
// up to the next success in one batch, exposing the arrival cycle to the
// leap gate; the batch is the exact same draw sequence the dense reference
// consumes one cycle at a time.
func (t *terminal) generate(s *shard) {
	n := s.net
	if n.leapOn && (t.gen.Rate() > 0 || t.gen.PendingArrival()) {
		t.generateLeap(s)
		return
	}
	typ, dst, ok := t.gen.NextRequest(t.id, t.rng)
	if !ok {
		return
	}
	t.inject(s, typ, dst)
}

// presampleChunk bounds one presampling batch: an idle terminal consumes
// at most this many per-cycle gate draws ahead of the clock, so ultra-low
// rates don't eagerly burn an entire geometric run (mean 1/p cycles, vastly
// past the end of the run at low p). A batch that ends without an arrival
// parks the generator's presampled wake-up at the chunk boundary as a
// checkpoint (PresampledReal false); the leap gate may jump there, and
// sampling resumes. The rewind replay cost on an early wake-up is bounded
// by the same constant.
const presampleChunk = 1024

// generateLeap is the presampling injection path (see generate).
func (t *terminal) generateLeap(s *shard) {
	n := s.net
	g := t.gen
	if next := g.PresampledArrival(); next >= 0 {
		switch {
		case n.now < next:
			// Woken before the presampled arrival (a reply arrived this
			// cycle): rewind and replay the gate draws through this cycle
			// so the stream position matches dense ticking before open()
			// consumes any routing randomness.
			g.Rewind(t.rng, n.now)
			return
		case g.PresampledReal():
			// now == the presampled arrival: the gate draw was consumed at
			// presample time; draw the rest of the transaction and emit. A
			// leaped schedule cannot overshoot: the leap gate never jumps
			// past a presampled wake-up.
			g.ClearPresample()
			typ, dst := g.RequestAt(t.id, t.rng)
			t.inject(s, typ, dst)
			return
		default:
			// Chunk checkpoint: the previous batch held no arrival, and its
			// draws covered exactly the cycles before this one. Resume
			// sampling below as if freshly idle (or tick per-cycle if a
			// reply arrived at this very cycle).
			g.ClearPresample()
		}
	}
	if t.cur != nil || !t.replyQ.empty() || !t.reqQ.empty() {
		// Busy terminals tick the per-cycle process: send has to run
		// every cycle anyway, so presampling would buy nothing and the
		// adaptive-routing draws interleaved by open() make the stream
		// cheapest to keep aligned one cycle at a time.
		typ, dst, ok := g.NextRequest(t.id, t.rng)
		if ok {
			t.inject(s, typ, dst)
		}
		return
	}
	g.Presample(t.rng, n.now, presampleChunk)
	if g.PresampledArrival() == n.now {
		// The batch's first tick fired: the arrival is this cycle; emit.
		g.ClearPresample()
		typ, dst := g.RequestAt(t.id, t.rng)
		t.inject(s, typ, dst)
	}
}

// receive consumes an ejected flit; flits return to the shard's free list
// and a tail records the completed packet for the end-of-cycle commit,
// which takes the delivery statistics and generates the reply (§3.2: in
// the next cycle, with priority over new request injections).
func (t *terminal) receive(s *shard, f *router.Flit) {
	s.flitDelivered()
	if tr := s.net.cfg.Trace; tr != nil {
		tr.Record(trace.Event{Kind: trace.Eject, Router: t.routerID,
			Port: t.port, VC: -1, OutPort: -1, OutVC: -1, Packet: f.Pkt.ID, Seq: f.Seq})
	}
	tail, p := f.Tail, f.Pkt
	s.recycleFlit(f)
	if !tail {
		return
	}
	s.deliveries = append(s.deliveries, delivery{terminal: t.id, pkt: p})
}

// credit restores one credit for input VC vc at the router's terminal port.
func (t *terminal) credit(vc int) {
	t.credits[vc]++
}

// send streams at most one flit into the router this cycle, opening a new
// packet when the previous one finished and an input VC of the packet's
// class is available.
func (t *terminal) send(s *shard) {
	if t.cur == nil {
		t.open(s)
	}
	if t.cur == nil {
		return
	}
	if t.credits[t.curVC] <= 0 {
		return
	}
	f := t.curFlits[t.curSeq]
	t.credits[t.curVC]--
	t.sentFlits++
	if tr := s.net.cfg.Trace; tr != nil {
		tr.Record(trace.Event{Kind: trace.Inject, Router: t.routerID,
			Port: t.port, VC: t.curVC, OutPort: -1, OutVC: -1, Packet: f.Pkt.ID, Seq: f.Seq})
	}
	// Injection link: 1 cycle of terminal processing + 1 cycle of wire. The
	// terminal's router is on its own shard by construction.
	s.scheduleLocal(2, event{kind: evFlitToRouter, router: t.routerID, port: t.port, vc: t.curVC, flit: f})
	t.curSeq++
	if t.curSeq == len(t.curFlits) {
		t.vcBusy[t.curVC] = false
		t.cur, t.curSeq, t.curVC = nil, 0, -1
		t.curFlits = t.curFlits[:0]
	}
}

// open starts streaming the next queued packet if an input VC is free.
// Replies are strictly prioritized: while a reply waits, request injection
// stalls.
func (t *terminal) open(s *shard) {
	n := s.net
	var q *pktQueue
	switch {
	case !t.replyQ.empty() && t.replyQ.front().CreatedAt <= n.now:
		q = &t.replyQ
	case !t.reqQ.empty() && t.reqQ.front().CreatedAt <= n.now:
		q = &t.reqQ
	default:
		return
	}
	p := q.front()
	// Routing decision at injection (UGAL consults local queue state).
	n.cfg.Routing.Inject(t.routerID, &p.Route, n, t.rng)
	// The packet must occupy an input VC matching its message class and
	// initial resource class.
	mask := t.classMasks[t.spec.ClassIndex(p.Type.MessageClass(), p.Route.Phase)]
	vc := -1
	mask.ForEach(func(c int) {
		if vc < 0 && !t.vcBusy[c] {
			vc = c
		}
	})
	if vc < 0 {
		return // head-of-line blocked until a VC frees up
	}
	q.pop()
	t.cur = p
	t.curFlits = s.makeFlits(p, t.curFlits)
	t.curSeq = 0
	t.curVC = vc
	t.vcBusy[vc] = true
}

// SetInjectionRate changes the offered load of every terminal; used by
// drain-style tests. The presample-rewind invariant lives in
// traffic.Generator.SetRate: a presampled arrival was drawn at the old
// rate, so it is rewound — replaying the already-elapsed cycles at that old
// rate — before the new rate takes effect at the current cycle, exactly as
// per-cycle ticking would have it.
func (n *Network) SetInjectionRate(rate float64) {
	for _, t := range n.terminals {
		t.gen.SetRate(t.rng, rate, n.now)
	}
}

// ArrivalTrace returns the run's recorded injection workload (requires
// Config.RecordArrivals): the per-terminal buffers merged into canonical
// (cycle, src) order. Each terminal appends its own arrivals during its
// shard's phase, so recording is race-free and the merged trace is
// bit-identical for any shard count and scheduler.
func (n *Network) ArrivalTrace() *traffic.PacketTrace {
	if !n.cfg.RecordArrivals {
		panic("sim: ArrivalTrace requires Config.RecordArrivals")
	}
	pt := &traffic.PacketTrace{Terminals: len(n.terminals)}
	for _, t := range n.terminals {
		pt.Arrivals = append(pt.Arrivals, t.recorded...)
	}
	pt.Sort()
	return pt
}

// SentFlits returns the total flits handed to routers by all terminals.
func (n *Network) SentFlits() int64 {
	var s int64
	for _, t := range n.terminals {
		s += t.sentFlits
	}
	return s
}
