package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// sweepResponse is a parsed NDJSON sweep response.
type sweepResponse struct {
	Updates []UnitUpdate
	Summary SweepSummary
}

// byIndex returns the update for unit index i.
func (r sweepResponse) byIndex(i int) UnitUpdate {
	for _, u := range r.Updates {
		if u.Index == i {
			return u
		}
	}
	return UnitUpdate{Status: "missing"}
}

func postSweep(t *testing.T, client *http.Client, url string, req Request) sweepResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /sweep: %s", resp.Status)
	}
	var out sweepResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &out.Summary); err != nil {
				t.Fatalf("bad summary line %q: %v", line, err)
			}
			continue
		}
		var u UnitUpdate
		if err := json.Unmarshal(line, &u); err != nil {
			t.Fatalf("bad update line %q: %v", line, err)
		}
		out.Updates = append(out.Updates, u)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !out.Summary.Done {
		t.Fatal("response stream had no summary line")
	}
	return out
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// goldenScale is the test-sized batch scale the golden comparisons use.
func goldenScale(shards int) experiments.SimScale {
	return experiments.SimScale{Warmup: 200, Measure: 400, Drain: 2000, Seed: 42, Workers: 2, Shards: shards, Leap: true}
}

// TestServerGoldenBitIdentical is the acceptance golden: for both paper
// topologies and shard counts 1 and 4, a sweepd-served Fig. 13 curve —
// assembled from the service's per-unit results — must be byte-equal to the
// batch path (experiments.Fig13, the code behind cmd/repro) for the same
// (config, seed), on a cold cache miss AND again on a warm cache hit.
func TestServerGoldenBitIdentical(t *testing.T) {
	rates := []float64{0.05, 0.2}
	archs := []string{"sep_if", "sep_of", "wf"}
	for _, topo := range []string{"mesh", "fbfly"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", topo, shards), func(t *testing.T) {
				pt, err := experiments.PointByName(topo, 1)
				if err != nil {
					t.Fatal(err)
				}
				scale := goldenScale(shards)
				batch := experiments.Fig13(pt, rates, scale)
				batchJSON, err := json.Marshal(batch)
				if err != nil {
					t.Fatal(err)
				}

				srv, ts := newTestServer(t, Options{
					Workers: 2,
					Exec:    Exec{Shards: shards, Leap: true},
				})
				req := Request{
					Base: UnitConfig{
						Topo: topo, VCsPerClass: 1, Seed: 42,
						Warmup: scale.Warmup, Measure: scale.Measure, Drain: scale.Drain,
					},
					SAArchs: archs,
					Rates:   rates,
				}
				assemble := func(r sweepResponse) []byte {
					t.Helper()
					series := make([]experiments.NetSeries, len(archs))
					for ai, arch := range archs {
						series[ai] = experiments.NetSeries{Name: arch, Points: make([]experiments.NetPoint, len(rates))}
						for ri := range rates {
							upd := r.byIndex(ai*len(rates) + ri)
							if upd.Result == nil {
								t.Fatalf("unit %d/%d: status %s error %s", ai, ri, upd.Status, upd.Error)
							}
							var res UnitResult
							if err := json.Unmarshal(upd.Result, &res); err != nil {
								t.Fatal(err)
							}
							series[ai].Points[ri] = res.NetPoint()
						}
					}
					j, err := json.Marshal(series)
					if err != nil {
						t.Fatal(err)
					}
					return j
				}

				cold := postSweep(t, ts.Client(), ts.URL, req)
				if cold.Summary.Misses != len(archs)*len(rates) {
					t.Fatalf("cold sweep: %+v, want all %d units to miss", cold.Summary, len(archs)*len(rates))
				}
				if got := assemble(cold); !bytes.Equal(got, batchJSON) {
					t.Fatalf("cold-miss series diverges from batch path:\nsweepd: %s\nbatch:  %s", got, batchJSON)
				}

				warm := postSweep(t, ts.Client(), ts.URL, req)
				if warm.Summary.Hits != len(archs)*len(rates) {
					t.Fatalf("warm sweep: %+v, want all %d units to hit", warm.Summary, len(archs)*len(rates))
				}
				if got := assemble(warm); !bytes.Equal(got, batchJSON) {
					t.Fatalf("cache-hit series diverges from batch path")
				}
				// The hit must return the cached bytes verbatim.
				for i := range cold.Updates {
					if !bytes.Equal(cold.byIndex(i).Result, warm.byIndex(i).Result) {
						t.Fatalf("unit %d: hit bytes differ from miss bytes", i)
					}
				}
				if runs := srv.SimRuns(); runs != int64(len(archs)*len(rates)) {
					t.Fatalf("server ran %d sims for %d distinct units", runs, len(archs)*len(rates))
				}
			})
		}
	}
}

// TestServerCoalescing is the acceptance coalescing check: 8 concurrent
// requests for one identical unit run exactly one simulation, verified by
// the server's sim-run counter, and every caller receives identical bytes.
func TestServerCoalescing(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2, Exec: Exec{Leap: true}})
	req := Request{Base: UnitConfig{
		Topo: "mesh", Rate: 0.2, Seed: 42, Warmup: 500, Measure: 2000, Drain: 6000,
	}}
	const N = 8
	results := make([][]byte, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := postSweep(t, ts.Client(), ts.URL, req)
			results[i] = r.byIndex(0).Result
		}()
	}
	wg.Wait()
	if runs := srv.SimRuns(); runs != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want exactly 1", N, runs)
	}
	for i := 1; i < N; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("caller %d got different bytes than caller 0", i)
		}
	}
	if results[0] == nil {
		t.Fatal("empty result")
	}
}

// TestServerEviction drives more distinct units than the store admits and
// checks the accounting: evictions occurred, the store stayed within
// bounds, and an evicted unit re-simulates on the next request.
func TestServerEviction(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2, MaxEntries: 2, Exec: Exec{Leap: true}})
	base := UnitConfig{Topo: "mesh", Seed: 42, Warmup: 100, Measure: 200, Drain: 1000}
	req := Request{Base: base, Rates: []float64{0.05, 0.1, 0.15}}
	postSweep(t, ts.Client(), ts.URL, req)
	st := srv.Store().Stats()
	if st.Entries > 2 || st.Evictions == 0 {
		t.Fatalf("store did not enforce entry bound: %+v", st)
	}
	runsAfterCold := srv.SimRuns()
	if runsAfterCold != 3 {
		t.Fatalf("cold sweep ran %d sims, want 3", runsAfterCold)
	}
	// Request all three again: at least one must have been evicted and
	// re-simulate; the summary hit count must reflect the survivors.
	second := postSweep(t, ts.Client(), ts.URL, req)
	if second.Summary.Misses == 0 {
		t.Fatalf("no unit re-simulated after eviction: %+v", second.Summary)
	}
	if srv.SimRuns() == runsAfterCold {
		t.Fatal("sim-run counter did not grow after eviction")
	}
}

// TestServerDisconnectCancelsUnit is the acceptance cancellation check: a
// client that disconnects mid-simulation frees its worker promptly (the
// sim aborts within one sim.AbortCheckInterval poll), the coalescing key is
// released, and no goroutines leak.
func TestServerDisconnectCancelsUnit(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, Exec: Exec{Leap: true}})
	// Let httptest's server bookkeeping settle before baselining.
	time.Sleep(20 * time.Millisecond)
	baseGoroutines := runtime.NumGoroutine()

	// A unit that would simulate ~50M cycles: minutes of work if the abort
	// path fails.
	huge := Request{Base: UnitConfig{
		Topo: "mesh", Rate: 0.3, Seed: 42, Warmup: 500, Measure: 50_000_000, Drain: 1000,
	}}
	body, _ := json.Marshal(huge)
	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(hreq)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	// Wait until the simulation is actually running on the one worker.
	deadline := time.Now().Add(10 * time.Second)
	for srv.pool.Running() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("simulation never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel() // client disconnect
	<-errCh

	// The worker must come free promptly: the sim polls its context every
	// AbortCheckInterval cycles (microseconds of work), so seconds of
	// grace is generous.
	deadline = time.Now().Add(10 * time.Second)
	for srv.pool.Running() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker still busy 10s after client disconnect")
		}
		time.Sleep(time.Millisecond)
	}
	if fl := srv.flight.InFlight(); fl != 0 {
		t.Fatalf("%d coalescing keys still held after disconnect", fl)
	}
	// The freed worker serves new work.
	small := Request{Base: UnitConfig{Topo: "mesh", Rate: 0.1, Seed: 42, Warmup: 100, Measure: 200, Drain: 1000}}
	r := postSweep(t, ts.Client(), ts.URL, small)
	if r.byIndex(0).Status != "miss" {
		t.Fatalf("post-disconnect request: %+v", r.byIndex(0))
	}
	// No goroutine leak: the count settles back to (about) the baseline.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerRejectsBadRequests pins the validation surface.
func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, body := range []string{
		`{`,
		`{"base":{"topo":"hypercube","rate":0.1}}`,
		`{"base":{"topo":"mesh","rate":0.1},"sa_archs":["quantum"]}`,
		`{"base":{"topo":"mesh","rate":0.1},"bogus_field":1}`,
	} {
		resp, err := ts.Client().Post(ts.URL+"/sweep", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %s, want 400", body, resp.Status)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sweep: %s, want 405", resp.Status)
	}
}

// TestServerEndpoints smoke-tests /healthz and /statz.
func TestServerEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Exec: Exec{Leap: true}})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	postSweep(t, ts.Client(), ts.URL, Request{Base: UnitConfig{Topo: "mesh", Rate: 0.05, Seed: 1, Warmup: 100, Measure: 200, Drain: 500}})
	resp, err = ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		SimRuns int64 `json:"sim_runs"`
		Store   struct {
			Entries int `json:"entries"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.SimRuns != 1 || stats.Store.Entries != 1 {
		t.Fatalf("statz after one unit: %+v", stats)
	}
}

// TestRequestExpandOrder pins the documented axis nesting (rates fastest).
func TestRequestExpandOrder(t *testing.T) {
	req := Request{
		Base:    UnitConfig{Topo: "mesh", Seed: 42},
		SAArchs: []string{"sep_if", "wf"},
		Rates:   []float64{0.1, 0.2},
	}
	units, err := req.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 4 {
		t.Fatalf("expanded to %d units, want 4", len(units))
	}
	want := []struct {
		arch string
		rate float64
	}{{"sep_if", 0.1}, {"sep_if", 0.2}, {"wf", 0.1}, {"wf", 0.2}}
	for i, w := range want {
		if units[i].SAArch != w.arch || units[i].Rate != w.rate {
			t.Fatalf("unit %d: %s/%g, want %s/%g", i, units[i].SAArch, units[i].Rate, w.arch, w.rate)
		}
	}
}
