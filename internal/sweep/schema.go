// Package sweep turns the batch simulation harness into a long-running,
// multi-tenant service: sweep requests are split into per-(config, seed)
// work units, each unit is identified by a canonical content hash of its
// semantic configuration, and units are served from a bounded
// content-addressed result store, an in-flight coalescing layer, and a
// pooled scheduler with cooperative cancellation (see server.go).
//
// The unit schema grew out of cmd/benchjson's private structs; it is the
// one serializable description of a simulation the CLIs, the benchmark
// snapshots and the service all share. Results are bit-identical to the
// batch CLI path by construction: a unit builds its sim.Config through the
// same experiments.BuildSim the CLIs use, so the same (config, seed)
// produces byte-equal output whether computed by cmd/repro, a sweepd cache
// miss, or a sweepd cache hit (golden-tested in server_test.go).
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// SchemaVersion is the current unit-config schema version. It is the first
// field of the canonical serialization, so any schema growth — new fields,
// changed defaults, changed canonicalization — must bump it, which rotates
// every content key and prevents a new server from serving results cached
// under old semantics.
//
// v2: Normalized collapses VAArb to "rr" when VAArch is "wf" — the
// wavefront VC allocator has no arbiters at all (neither the functional
// model in internal/core nor the cost model reads ArbKind), so the two
// spellings always described one simulation and now share one content key.
// The switch allocator's arbiter kind is NOT collapsed: the SA wavefront
// datapath uses ArbKind for its VC pre-selection arbiters (Fig. 8c), which
// can change grant sequences.
//
// v3: the unit grew the injection-workload axes of traffic.Workload —
// arrival process (bernoulli/mmp/trace), burst parameters, hotspot set and
// fraction, and the content digest of a replayed trace. Normalized mirrors
// Workload.Normalized's canonicalization (parameters irrelevant to the
// selected process/pattern are cleared), and the canonical serialization
// gained the new lines between pattern and rate, so every v2 key is
// retired.
const SchemaVersion = 3

// UnitConfig is one (config, seed) simulation unit: the semantic
// description of a run, and nothing else. Execution hints — shard count,
// worker placement, dense/leap reference paths — are deliberately excluded:
// the simulator is bit-identical across all of them (the golden suite pins
// this), so they must not influence the content key. They live in Exec.
//
// Zero values mean "default" and are filled by Normalized before hashing,
// so a default-filled and an explicitly-spelled config produce the same
// key.
type UnitConfig struct {
	// SchemaVersion pins the schema this config was written against;
	// 0 means "current".
	SchemaVersion int `json:"schema_version,omitempty"`
	// Topo and VCsPerClass name a paper design point: "mesh" or "fbfly"
	// with 1, 2 or 4 VCs per class (experiments.PointByName).
	Topo        string `json:"topo"`
	VCsPerClass int    `json:"vcs_per_class,omitempty"`
	// VAArch/VAArb/VASparse select the VC allocator microarchitecture
	// ("sep_if", "sep_of", "wf" × "rr", "m"); defaults sep_if/rr dense.
	VAArch   string `json:"va_arch,omitempty"`
	VAArb    string `json:"va_arb,omitempty"`
	VASparse bool   `json:"va_sparse,omitempty"`
	// SAArch/SAArb/SpecMode select the switch allocator and speculation
	// scheme ("nonspec", "spec_gnt", "spec_req"); defaults sep_if/rr with
	// the paper's pessimistic spec_req baseline.
	SAArch   string `json:"sa_arch,omitempty"`
	SAArb    string `json:"sa_arb,omitempty"`
	SpecMode string `json:"spec_mode,omitempty"`
	// Pattern is the traffic pattern name (traffic.NewPattern vocabulary
	// plus "hotspot"); default "uniform".
	Pattern string `json:"pattern,omitempty"`
	// Process names the arrival process ("bernoulli", "mmp"); default
	// "bernoulli". "trace" is part of the schema vocabulary — TraceDigest
	// content-addresses the replayed trace — but Validate rejects it
	// server-side: the service has no channel to materialize trace bytes, so
	// trace-driven units stay batch-only (see cmd/nocsim -record/-trace).
	Process string `json:"process,omitempty"`
	// BurstLen and Duty parameterize the "mmp" process (defaults 32 and
	// 0.25, mirroring traffic.Workload).
	BurstLen float64 `json:"burst_len,omitempty"`
	Duty     float64 `json:"duty,omitempty"`
	// Hotspots and HotspotFraction parameterize the "hotspot" pattern
	// (defaults {0} and traffic.DefaultHotspotFraction).
	Hotspots        []int   `json:"hotspots,omitempty"`
	HotspotFraction float64 `json:"hotspot_fraction,omitempty"`
	// TraceDigest is trace.ArrivalsDigest of the replayed packet trace when
	// Process is "trace"; cleared otherwise.
	TraceDigest string `json:"trace_digest,omitempty"`
	// Rate is the offered load in flits/cycle/terminal.
	Rate float64 `json:"rate"`
	// ReadFraction is the probability a transaction is a read; nil means
	// the paper default 0.5, explicit 0 means all-write (mirrors
	// sim.Config.ReadFraction).
	ReadFraction *float64 `json:"read_fraction,omitempty"`
	// BufDepth is the per-VC buffer depth in flits (default 8).
	BufDepth int `json:"buf_depth,omitempty"`
	// Warmup, Measure and Drain are the phase lengths in cycles (defaults
	// mirror sim.Config: 2000/5000/20000).
	Warmup  int `json:"warmup,omitempty"`
	Measure int `json:"measure,omitempty"`
	Drain   int `json:"drain,omitempty"`
	// Seed makes the run deterministic. Zero is a valid seed and is NOT
	// defaulted — two requests differing only in seed are different units.
	Seed uint64 `json:"seed"`
}

// Exec carries the execution hints a server applies to every unit it
// simulates. None of these fields may influence results (bit-identity is
// golden-tested), so none participate in the content key.
type Exec struct {
	// Shards splits each simulation into concurrently stepped router
	// groups (sim.Config.Shards).
	Shards int `json:"shards,omitempty"`
	// Dense and DenseRequests select the reference scheduler / request
	// paths; Leap enables event leaping. All bit-identical axes.
	Dense         bool `json:"dense,omitempty"`
	DenseRequests bool `json:"dense_requests,omitempty"`
	Leap          bool `json:"leap,omitempty"`
}

// Normalized returns the config with every defaultable zero field filled
// in. Hashing and simulation both go through the normalized form, so a
// sparse request and its fully spelled-out equivalent are the same unit.
func (c UnitConfig) Normalized() UnitConfig {
	if c.SchemaVersion == 0 {
		c.SchemaVersion = SchemaVersion
	}
	if c.Topo == "" {
		c.Topo = "mesh"
	}
	if c.VCsPerClass == 0 {
		c.VCsPerClass = 1
	}
	if c.VAArch == "" {
		c.VAArch = alloc.SepIF.String()
	}
	if c.VAArb == "" || c.VAArch == alloc.Wavefront.String() {
		// Wavefront VC allocation has no arbiters; every arb spelling is the
		// same unit (see the SchemaVersion v2 note).
		c.VAArb = arbiter.RoundRobin.String()
	}
	if c.SAArch == "" {
		c.SAArch = alloc.SepIF.String()
	}
	if c.SAArb == "" {
		c.SAArb = arbiter.RoundRobin.String()
	}
	if c.SpecMode == "" {
		c.SpecMode = core.SpecReq.String()
	}
	// Workload axes canonicalize exactly as traffic.Workload.Normalized
	// does (defaults filled, irrelevant parameters cleared), so two
	// spellings of one workload share one content key.
	w := c.workload().Normalized()
	c.Pattern = w.Pattern
	c.Process = w.Process
	c.Rate = w.Rate
	c.BurstLen, c.Duty = w.BurstLen, w.Duty
	c.Hotspots, c.HotspotFraction = w.Hotspots, w.HotspotFraction
	if c.Process != "trace" {
		c.TraceDigest = ""
	}
	if c.ReadFraction == nil {
		rf := 0.5
		c.ReadFraction = &rf
	}
	if c.BufDepth == 0 {
		c.BufDepth = 8
	}
	if c.Warmup == 0 {
		c.Warmup = 2000
	}
	if c.Measure == 0 {
		c.Measure = 5000
	}
	if c.Drain == 0 {
		c.Drain = 20000
	}
	return c
}

// workload assembles the unit's traffic.Workload view (trace bytes are
// never attached; the service content-addresses them by TraceDigest only).
func (c UnitConfig) workload() traffic.Workload {
	return traffic.Workload{
		Process:         c.Process,
		Rate:            c.Rate,
		Pattern:         c.Pattern,
		BurstLen:        c.BurstLen,
		Duty:            c.Duty,
		Hotspots:        c.Hotspots,
		HotspotFraction: c.HotspotFraction,
	}
}

// Validate checks the normalized config against the design-point,
// allocator and pattern vocabularies, without building a network.
func (c UnitConfig) Validate() error {
	c = c.Normalized()
	if c.SchemaVersion != SchemaVersion {
		return fmt.Errorf("sweep: schema version %d not supported (have %d)", c.SchemaVersion, SchemaVersion)
	}
	pt, err := experiments.PointByName(c.Topo, c.VCsPerClass)
	if err != nil {
		return err
	}
	if _, err := ParseArch(c.VAArch); err != nil {
		return fmt.Errorf("sweep: va_arch: %w", err)
	}
	if _, err := ParseArb(c.VAArb); err != nil {
		return fmt.Errorf("sweep: va_arb: %w", err)
	}
	if _, err := ParseArch(c.SAArch); err != nil {
		return fmt.Errorf("sweep: sa_arch: %w", err)
	}
	if _, err := ParseArb(c.SAArb); err != nil {
		return fmt.Errorf("sweep: sa_arb: %w", err)
	}
	if _, err := ParseSpecMode(c.SpecMode); err != nil {
		return err
	}
	// Trace replay is batch-only: a unit carries only the trace's content
	// digest, and the service has no channel to materialize the bytes.
	if c.Process == "trace" {
		return fmt.Errorf("sweep: process %q is batch-only (the service cannot materialize trace bytes; use cmd/nocsim -trace)", c.Process)
	}
	// The workload axes (process, pattern, burst and hotspot parameters) are
	// validated over the design point's terminal count (both paper networks
	// concentrate to 64 terminals).
	if err := c.workload().Validate(terminalsFor(pt)); err != nil {
		return err
	}
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("sweep: rate %g outside [0, 1]", c.Rate)
	}
	if rf := *c.ReadFraction; rf < 0 || rf > 1 {
		return fmt.Errorf("sweep: read_fraction %g outside [0, 1]", rf)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("sweep: buf_depth %d < 1", c.BufDepth)
	}
	if c.Warmup < 0 || c.Measure < 1 || c.Drain < 0 {
		return fmt.Errorf("sweep: bad phase lengths warmup=%d measure=%d drain=%d", c.Warmup, c.Measure, c.Drain)
	}
	return nil
}

// terminalsFor returns a design point's terminal count without
// instantiating the topology (both paper networks concentrate to 64).
func terminalsFor(pt experiments.Point) int { return 64 }

// canonical renders the normalized config in the fixed field order the
// content hash is defined over. Rules (DESIGN.md §10):
//   - fields appear in schema declaration order, one "name=value" per
//     line, after a "noc-sweep/v<version>" preamble;
//   - floats are formatted as exact hexadecimal ('x', -1, 64), so every
//     distinct float64 bit pattern — and nothing else — changes the key;
//   - booleans render as 0/1, integers in decimal;
//   - execution hints never appear.
//
// Renaming, reordering or adding fields therefore changes canonical output
// only together with a SchemaVersion bump (the pinned golden hash test
// breaks loudly otherwise).
func (c UnitConfig) canonical() string {
	c = c.Normalized()
	var b strings.Builder
	b.Grow(256)
	fmt.Fprintf(&b, "noc-sweep/v%d\n", c.SchemaVersion)
	wr := func(name, val string) {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(val)
		b.WriteByte('\n')
	}
	bol := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	wr("topo", c.Topo)
	wr("vcs_per_class", strconv.Itoa(c.VCsPerClass))
	wr("va_arch", c.VAArch)
	wr("va_arb", c.VAArb)
	wr("va_sparse", bol(c.VASparse))
	wr("sa_arch", c.SAArch)
	wr("sa_arb", c.SAArb)
	wr("spec_mode", c.SpecMode)
	wr("pattern", c.Pattern)
	wr("process", c.Process)
	wr("burst_len", strconv.FormatFloat(c.BurstLen, 'x', -1, 64))
	wr("duty", strconv.FormatFloat(c.Duty, 'x', -1, 64))
	hs := make([]string, len(c.Hotspots))
	for i, h := range c.Hotspots {
		hs[i] = strconv.Itoa(h)
	}
	wr("hotspots", strings.Join(hs, ","))
	wr("hotspot_fraction", strconv.FormatFloat(c.HotspotFraction, 'x', -1, 64))
	wr("trace_digest", c.TraceDigest)
	wr("rate", strconv.FormatFloat(c.Rate, 'x', -1, 64))
	wr("read_fraction", strconv.FormatFloat(*c.ReadFraction, 'x', -1, 64))
	wr("buf_depth", strconv.Itoa(c.BufDepth))
	wr("warmup", strconv.Itoa(c.Warmup))
	wr("measure", strconv.Itoa(c.Measure))
	wr("drain", strconv.Itoa(c.Drain))
	wr("seed", strconv.FormatUint(c.Seed, 10))
	return b.String()
}

// Key returns the unit's content address: the hex SHA-256 of its canonical
// serialization. Two configs get the same key iff they describe the same
// simulation semantics under the current schema version.
func (c UnitConfig) Key() string {
	sum := sha256.Sum256([]byte(c.canonical()))
	return hex.EncodeToString(sum[:])
}

// BuildSim assembles the unit's sim.Config through the same
// experiments.BuildSim path the batch CLIs use, then applies the unit's
// allocator/pattern/workload overrides and the server's execution hints.
func (c UnitConfig) BuildSim(exec Exec) (sim.Config, error) {
	c = c.Normalized()
	if err := c.Validate(); err != nil {
		return sim.Config{}, err
	}
	pt, err := experiments.PointByName(c.Topo, c.VCsPerClass)
	if err != nil {
		return sim.Config{}, err
	}
	scale := experiments.SimScale{
		Warmup: c.Warmup, Measure: c.Measure, Drain: c.Drain, Seed: c.Seed,
		Shards: exec.Shards, Dense: exec.Dense, DenseRequests: exec.DenseRequests, Leap: exec.Leap,
		Workload: c.workload(),
	}
	cfg := experiments.BuildSim(pt, c.Rate, scale)
	cfg.VA.Arch, _ = ParseArch(c.VAArch)
	cfg.VA.ArbKind, _ = ParseArb(c.VAArb)
	cfg.VA.Sparse = c.VASparse
	cfg.SA.Arch, _ = ParseArch(c.SAArch)
	cfg.SA.ArbKind, _ = ParseArb(c.SAArb)
	cfg.SA.SpecMode, _ = ParseSpecMode(c.SpecMode)
	cfg.BufDepth = c.BufDepth
	cfg.ReadFraction = c.ReadFraction
	return cfg, nil
}

// UnitResult is the serializable outcome of one unit: the NetPoint fields
// the curve tools plot, plus the extended statistics sim.Result reports.
// The service caches the marshaled bytes, so a cache hit is byte-equal to
// the miss that produced it.
type UnitResult struct {
	SchemaVersion int        `json:"schema_version"`
	Key           string     `json:"key"`
	Config        UnitConfig `json:"config"`

	Rate       float64 `json:"rate"`
	Latency    float64 `json:"latency"`
	Throughput float64 `json:"throughput"`
	Saturated  bool    `json:"saturated"`
	Cycles     int64   `json:"cycles"`

	MeasuredPackets int     `json:"measured_packets"`
	Unfinished      int     `json:"unfinished"`
	FlitsDelivered  int64   `json:"flits_delivered"`
	LatencyP50      int     `json:"latency_p50"`
	LatencyP99      int     `json:"latency_p99"`
	LatencyMax      int     `json:"latency_max"`
	AvgHops         float64 `json:"avg_hops"`
}

// NetPoint converts the result to the experiments curve-point type, so a
// client can assemble service results into the exact NetSeries the batch
// tools produce (bit-identical; see the golden test).
func (r UnitResult) NetPoint() experiments.NetPoint {
	return experiments.NetPoint{
		Rate: r.Rate, Latency: r.Latency, Throughput: r.Throughput,
		Saturated: r.Saturated, Cycles: r.Cycles,
	}
}

// RunUnit simulates one unit to completion (or until ctx is cancelled,
// checked every sim.AbortCheckInterval cycles; a cancelled run returns
// ctx.Err() and no result).
func RunUnit(ctx context.Context, c UnitConfig, exec Exec) (UnitResult, error) {
	c = c.Normalized()
	cfg, err := c.BuildSim(exec)
	if err != nil {
		return UnitResult{}, err
	}
	res := sim.New(cfg).RunCtx(ctx)
	if res.Aborted {
		err := ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		return UnitResult{}, err
	}
	return UnitResult{
		SchemaVersion:   c.SchemaVersion,
		Key:             c.Key(),
		Config:          c,
		Rate:            c.Rate,
		Latency:         res.AvgLatency,
		Throughput:      res.Throughput,
		Saturated:       res.Saturated,
		Cycles:          res.Cycles,
		MeasuredPackets: res.MeasuredPackets,
		Unfinished:      res.Unfinished,
		FlitsDelivered:  res.FlitsDelivered,
		LatencyP50:      res.LatencyP50,
		LatencyP99:      res.LatencyP99,
		LatencyMax:      res.LatencyMax,
		AvgHops:         res.AvgHops,
	}, nil
}

// ParseArch parses an allocator architecture name as rendered by
// alloc.Arch.String ("sep_if", "sep_of", "wf").
func ParseArch(s string) (alloc.Arch, error) {
	for _, a := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		if s == a.String() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown allocator architecture %q", s)
}

// ParseArb parses an arbiter kind name as rendered by arbiter.Kind.String
// ("rr", "m").
func ParseArb(s string) (arbiter.Kind, error) {
	for _, k := range []arbiter.Kind{arbiter.RoundRobin, arbiter.Matrix} {
		if s == k.String() {
			return k, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown arbiter kind %q", s)
}

// ParseSpecMode parses a speculation scheme name as rendered by
// core.SpecMode.String ("nonspec", "spec_gnt", "spec_req").
func ParseSpecMode(s string) (core.SpecMode, error) {
	for _, m := range []core.SpecMode{core.SpecNone, core.SpecGnt, core.SpecReq} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown speculation mode %q", s)
}
