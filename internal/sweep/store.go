package sweep

import (
	"container/list"
	"sync"
)

// Store is the content-addressed result cache: canonical config key →
// marshaled UnitResult bytes. It is LRU-evicting and doubly bounded (entry
// count and total value bytes), so a long-lived server holds its working
// set of popular curves without growing without bound. All methods are safe
// for concurrent use.
//
// Values are stored and returned by reference; callers must treat them as
// immutable (the server only ever writes them to responses).
type Store struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element

	hits, misses, evictions int64
}

type storeEntry struct {
	key string
	val []byte
}

// NewStore builds a store bounded to maxEntries entries and maxBytes total
// value bytes; zero or negative disables the respective bound. A single
// oversized value is still admitted (the store then holds that one entry),
// so a pathological bound cannot wedge the service into simulating every
// request twice.
func NewStore(maxEntries int, maxBytes int64) *Store {
	return &Store{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the cached bytes for key, marking the entry most recently
// used.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*storeEntry).val, true
}

// Put inserts or refreshes key, then evicts least-recently-used entries
// until both bounds hold again (never evicting the entry just inserted).
func (s *Store) Put(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*storeEntry)
		s.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&storeEntry{key: key, val: val})
		s.bytes += int64(len(val))
	}
	for s.ll.Len() > 1 && s.overBudget() {
		back := s.ll.Back()
		e := back.Value.(*storeEntry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.bytes -= int64(len(e.val))
		s.evictions++
	}
}

func (s *Store) overBudget() bool {
	if s.maxEntries > 0 && s.ll.Len() > s.maxEntries {
		return true
	}
	if s.maxBytes > 0 && s.bytes > s.maxBytes {
		return true
	}
	return false
}

// Stats reports the store's current size and lifetime counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries: s.ll.Len(), Bytes: s.bytes,
		Hits: s.hits, Misses: s.misses, Evictions: s.evictions,
	}
}

// StoreStats is a point-in-time snapshot of Store accounting.
type StoreStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}
