package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Pool is the bounded scheduler for cache-miss units: a fixed set of
// persistent workers executes submitted tasks, so an arbitrary number of
// concurrent requests degrades into an orderly queue instead of a fork
// bomb of simulations. Tasks carry a context; a task whose context is
// cancelled while still queued is skipped entirely, and a running task is
// expected to observe its context itself (simulations poll it every
// sim.AbortCheckInterval cycles), so abandoned work frees its worker
// quickly.
type Pool struct {
	tasks   chan *poolTask
	wg      sync.WaitGroup
	closed  atomic.Bool
	running atomic.Int64
	done    atomic.Int64
	skipped atomic.Int64
}

type poolTask struct {
	ctx  context.Context
	fn   func(context.Context)
	done chan struct{}
	ran  bool
}

// ErrPoolClosed is returned by Run after Close.
var ErrPoolClosed = errors.New("sweep: pool closed")

// NewPool starts a pool of `workers` goroutines (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tasks: make(chan *poolTask)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		if t.ctx.Err() == nil {
			p.running.Add(1)
			t.fn(t.ctx)
			p.running.Add(-1)
			t.ran = true
			p.done.Add(1)
		} else {
			p.skipped.Add(1)
		}
		close(t.done)
	}
}

// Run blocks until a worker has executed fn (returning nil), or until ctx
// fires first — while queued (the task is abandoned, fn never runs) or
// while a worker was picking it up (fn may have been skipped); both return
// ctx.Err(). fn's own handling of mid-run cancellation is fn's business:
// Run reports only whether fn was invoked.
func (p *Pool) Run(ctx context.Context, fn func(context.Context)) error {
	if p.closed.Load() {
		return ErrPoolClosed
	}
	t := &poolTask{ctx: ctx, fn: fn, done: make(chan struct{})}
	select {
	case p.tasks <- t:
	case <-ctx.Done():
		return ctx.Err()
	}
	<-t.done
	if !t.ran {
		return ctx.Err()
	}
	return nil
}

// Running reports how many workers are executing a task right now.
func (p *Pool) Running() int64 { return p.running.Load() }

// Stats reports lifetime task counts (completed, skipped-before-start).
func (p *Pool) Stats() (done, skipped int64) { return p.done.Load(), p.skipped.Load() }

// Close stops accepting work and waits for the workers to drain. Safe to
// call once; Run calls racing Close may panic on the closed channel, so
// servers stop routing requests before closing their pool.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.tasks)
	p.wg.Wait()
}
