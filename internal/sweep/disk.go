package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DiskStore is the persistent tier under the in-memory Store: one file per
// unit result, content-addressed by the same canonical hash the memory tier
// uses, inside a SchemaVersion-scoped subdirectory of the cache root. A
// server restart therefore keeps its cache warm, and a SchemaVersion bump
// reads from a fresh directory instead of serving results cached under old
// semantics.
//
// Durability contract (DESIGN.md §11):
//
//   - Writes are atomic-by-rename: the value is written to a temp file in
//     the same directory, then renamed onto its final name. Readers — in
//     this process or another sharing the directory — observe either the
//     old bytes or the new bytes, never a torn write. Concurrent writers of
//     the same key are both writing identical bytes (keys are content
//     addresses), so last-rename-wins is harmless.
//   - Loads are corruption-tolerant: a missing, truncated, unparsable or
//     foreign file is a cache miss with a counted load error, never a
//     panic and never a served result. Validity means the bytes unmarshal
//     into a UnitResult whose embedded key and schema version match the
//     file's name and the store's version — a stray file dropped in the
//     cache directory cannot be returned for a key it does not answer.
//   - Bad files are left in place (diagnosable), but a later Put of the
//     same key atomically replaces them.
//   - Eviction (when the store is bounded) is LRU by file modification
//     time: a Put that takes the store over its byte or entry budget
//     rescans the directory and deletes the stalest result files until the
//     store fits again, never touching the key just written and never
//     touching non-result files. Get refreshes a hit's mtime (best-effort)
//     so recently used results survive. Because eviction recounts from the
//     directory itself, accounting self-heals after crashes, external
//     deletions, or a second process sharing the directory.
//
// All methods are safe for concurrent use.
type DiskStore struct {
	dir        string // version-scoped directory, e.g. <root>/v2
	maxEntries int64  // 0 = unbounded
	maxBytes   int64  // 0 = unbounded

	// evictMu serializes directory eviction scans; mu stays cheap.
	evictMu sync.Mutex

	mu           sync.Mutex
	files        int64
	bytes        int64
	hits         int64
	misses       int64
	writes       int64
	loadErrors   int64
	writeErrors  int64
	evictions    int64
	evictedBytes int64
	evictScans   int64
}

// diskSuffix is the filename suffix of a stored result; everything else in
// the directory is ignored by accounting and never read.
const diskSuffix = ".json"

// OpenDiskStore opens (creating if needed) the unbounded disk tier rooted
// at root, scoped to the current SchemaVersion.
func OpenDiskStore(root string) (*DiskStore, error) {
	return OpenDiskStoreBounded(root, 0, 0)
}

// OpenDiskStoreBounded is OpenDiskStore with eviction budgets: the store
// holds at most maxEntries result files totalling at most maxBytes, evicting
// least-recently-used results when a Put crosses either bound. Zero means
// unbounded on that axis.
func OpenDiskStoreBounded(root string, maxEntries, maxBytes int64) (*DiskStore, error) {
	d, err := openDiskStoreVersion(root, SchemaVersion)
	if err != nil {
		return nil, err
	}
	d.maxEntries, d.maxBytes = maxEntries, maxBytes
	return d, nil
}

// openDiskStoreVersion is OpenDiskStore with an explicit schema version;
// split out so tests can prove a version bump rotates the directory.
func openDiskStoreVersion(root string, version int) (*DiskStore, error) {
	if root == "" {
		return nil, fmt.Errorf("sweep: empty cache directory")
	}
	dir := filepath.Join(root, fmt.Sprintf("v%d", version))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	d := &DiskStore{dir: dir}
	// Seed the size accounting from what a previous process left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), diskSuffix) {
			continue
		}
		d.files++
		if info, err := e.Info(); err == nil {
			d.bytes += info.Size()
		}
	}
	return d, nil
}

// Dir returns the version-scoped directory backing the store.
func (d *DiskStore) Dir() string { return d.dir }

func (d *DiskStore) path(key string) string {
	return filepath.Join(d.dir, key+diskSuffix)
}

// Get returns the persisted bytes for key, or a miss. Unreadable or invalid
// files count as load errors and miss.
func (d *DiskStore) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		d.mu.Lock()
		d.misses++
		if !os.IsNotExist(err) {
			d.loadErrors++
		}
		d.mu.Unlock()
		return nil, false
	}
	if !validDiskResult(key, data) {
		d.mu.Lock()
		d.misses++
		d.loadErrors++
		d.mu.Unlock()
		return nil, false
	}
	d.mu.Lock()
	d.hits++
	d.mu.Unlock()
	// Refresh the file's mtime so LRU eviction sees this result as recently
	// used. Best-effort: a failure (read-only directory, concurrent delete)
	// only ages the entry, it never affects the returned hit.
	now := time.Now()
	os.Chtimes(d.path(key), now, now)
	return data, true
}

// validDiskResult reports whether data is a well-formed UnitResult that
// actually answers key under the current schema. json.Unmarshal on a
// truncated or garbage file fails cleanly; a valid-JSON foreign file fails
// the key/version cross-check.
func validDiskResult(key string, data []byte) bool {
	var res UnitResult
	if err := json.Unmarshal(data, &res); err != nil {
		return false
	}
	return res.Key == key && res.SchemaVersion == SchemaVersion
}

// Put persists val under key via a same-directory temp file and an atomic
// rename. Failures are counted, not returned: the disk tier is an
// accelerator, and a request that simulated successfully must not fail
// because the cache directory is full or read-only.
func (d *DiskStore) Put(key string, val []byte) {
	fail := func() {
		d.mu.Lock()
		d.writeErrors++
		d.mu.Unlock()
	}
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		fail()
		return
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		fail()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		fail()
		return
	}
	dst := d.path(key)
	info, statErr := os.Stat(dst)
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		fail()
		return
	}
	d.mu.Lock()
	d.writes++
	if statErr == nil {
		d.bytes -= info.Size()
	} else {
		d.files++
	}
	d.bytes += int64(len(val))
	over := (d.maxEntries > 0 && d.files > d.maxEntries) ||
		(d.maxBytes > 0 && d.bytes > d.maxBytes)
	d.mu.Unlock()
	if over {
		d.evict(key)
	}
}

// evict deletes least-recently-used result files until the store fits its
// budgets again, never deleting keep (the key whose Put triggered the
// eviction). It recounts from the directory rather than trusting the running
// totals, which both orders files by true mtime and heals any accounting
// drift (crashes, external deletes, a second process sharing the directory).
func (d *DiskStore) evict(keep string) {
	d.evictMu.Lock()
	defer d.evictMu.Unlock()

	type resultFile struct {
		name  string
		size  int64
		mtime time.Time
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	var files []resultFile
	var totalBytes int64
	for _, e := range entries {
		// Non-result files (temp files mid-rename, stray droppings) are not
		// the store's to delete; they are invisible to budgets too.
		if e.IsDir() || !strings.HasSuffix(e.Name(), diskSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // deleted between ReadDir and Info
		}
		files = append(files, resultFile{e.Name(), info.Size(), info.ModTime()})
		totalBytes += info.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name
	})

	totalFiles := int64(len(files))
	var evicted, evictedBytes int64
	keepName := keep + diskSuffix
	for _, f := range files {
		fits := (d.maxEntries <= 0 || totalFiles <= d.maxEntries) &&
			(d.maxBytes <= 0 || totalBytes <= d.maxBytes)
		if fits {
			break
		}
		if f.name == keepName {
			continue
		}
		if err := os.Remove(filepath.Join(d.dir, f.name)); err != nil {
			continue // already gone or undeletable; recount covers it
		}
		totalFiles--
		totalBytes -= f.size
		evicted++
		evictedBytes += f.size
	}

	d.mu.Lock()
	d.files, d.bytes = totalFiles, totalBytes
	d.evictScans++
	d.evictions += evicted
	d.evictedBytes += evictedBytes
	d.mu.Unlock()
}

// Stats reports the disk tier's size and lifetime counters.
func (d *DiskStore) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskStats{
		Dir:        d.dir,
		MaxEntries: d.maxEntries, MaxBytes: d.maxBytes,
		Files: d.files, Bytes: d.bytes,
		Hits: d.hits, Misses: d.misses, Writes: d.writes,
		LoadErrors: d.loadErrors, WriteErrors: d.writeErrors,
		Evictions: d.evictions, EvictedBytes: d.evictedBytes,
		EvictScans: d.evictScans,
	}
}

// DiskStats is a point-in-time snapshot of DiskStore accounting.
type DiskStats struct {
	Dir          string `json:"dir"`
	MaxEntries   int64  `json:"max_entries,omitempty"`
	MaxBytes     int64  `json:"max_bytes,omitempty"`
	Files        int64  `json:"files"`
	Bytes        int64  `json:"bytes"`
	Hits         int64  `json:"hits"`
	Misses       int64  `json:"misses"`
	Writes       int64  `json:"writes"`
	LoadErrors   int64  `json:"load_errors"`
	WriteErrors  int64  `json:"write_errors"`
	Evictions    int64  `json:"evictions"`
	EvictedBytes int64  `json:"evicted_bytes"`
	EvictScans   int64  `json:"evict_scans"`
}
