package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// DiskStore is the persistent tier under the in-memory Store: one file per
// unit result, content-addressed by the same canonical hash the memory tier
// uses, inside a SchemaVersion-scoped subdirectory of the cache root. A
// server restart therefore keeps its cache warm, and a SchemaVersion bump
// reads from a fresh directory instead of serving results cached under old
// semantics.
//
// Durability contract (DESIGN.md §11):
//
//   - Writes are atomic-by-rename: the value is written to a temp file in
//     the same directory, then renamed onto its final name. Readers — in
//     this process or another sharing the directory — observe either the
//     old bytes or the new bytes, never a torn write. Concurrent writers of
//     the same key are both writing identical bytes (keys are content
//     addresses), so last-rename-wins is harmless.
//   - Loads are corruption-tolerant: a missing, truncated, unparsable or
//     foreign file is a cache miss with a counted load error, never a
//     panic and never a served result. Validity means the bytes unmarshal
//     into a UnitResult whose embedded key and schema version match the
//     file's name and the store's version — a stray file dropped in the
//     cache directory cannot be returned for a key it does not answer.
//   - Bad files are left in place (diagnosable), but a later Put of the
//     same key atomically replaces them.
//
// All methods are safe for concurrent use.
type DiskStore struct {
	dir string // version-scoped directory, e.g. <root>/v2

	mu          sync.Mutex
	files       int64
	bytes       int64
	hits        int64
	misses      int64
	writes      int64
	loadErrors  int64
	writeErrors int64
}

// diskSuffix is the filename suffix of a stored result; everything else in
// the directory is ignored by accounting and never read.
const diskSuffix = ".json"

// OpenDiskStore opens (creating if needed) the disk tier rooted at root,
// scoped to the current SchemaVersion.
func OpenDiskStore(root string) (*DiskStore, error) {
	return openDiskStoreVersion(root, SchemaVersion)
}

// openDiskStoreVersion is OpenDiskStore with an explicit schema version;
// split out so tests can prove a version bump rotates the directory.
func openDiskStoreVersion(root string, version int) (*DiskStore, error) {
	if root == "" {
		return nil, fmt.Errorf("sweep: empty cache directory")
	}
	dir := filepath.Join(root, fmt.Sprintf("v%d", version))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	d := &DiskStore{dir: dir}
	// Seed the size accounting from what a previous process left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), diskSuffix) {
			continue
		}
		d.files++
		if info, err := e.Info(); err == nil {
			d.bytes += info.Size()
		}
	}
	return d, nil
}

// Dir returns the version-scoped directory backing the store.
func (d *DiskStore) Dir() string { return d.dir }

func (d *DiskStore) path(key string) string {
	return filepath.Join(d.dir, key+diskSuffix)
}

// Get returns the persisted bytes for key, or a miss. Unreadable or invalid
// files count as load errors and miss.
func (d *DiskStore) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		d.mu.Lock()
		d.misses++
		if !os.IsNotExist(err) {
			d.loadErrors++
		}
		d.mu.Unlock()
		return nil, false
	}
	if !validDiskResult(key, data) {
		d.mu.Lock()
		d.misses++
		d.loadErrors++
		d.mu.Unlock()
		return nil, false
	}
	d.mu.Lock()
	d.hits++
	d.mu.Unlock()
	return data, true
}

// validDiskResult reports whether data is a well-formed UnitResult that
// actually answers key under the current schema. json.Unmarshal on a
// truncated or garbage file fails cleanly; a valid-JSON foreign file fails
// the key/version cross-check.
func validDiskResult(key string, data []byte) bool {
	var res UnitResult
	if err := json.Unmarshal(data, &res); err != nil {
		return false
	}
	return res.Key == key && res.SchemaVersion == SchemaVersion
}

// Put persists val under key via a same-directory temp file and an atomic
// rename. Failures are counted, not returned: the disk tier is an
// accelerator, and a request that simulated successfully must not fail
// because the cache directory is full or read-only.
func (d *DiskStore) Put(key string, val []byte) {
	fail := func() {
		d.mu.Lock()
		d.writeErrors++
		d.mu.Unlock()
	}
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		fail()
		return
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		fail()
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		fail()
		return
	}
	dst := d.path(key)
	info, statErr := os.Stat(dst)
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		fail()
		return
	}
	d.mu.Lock()
	d.writes++
	if statErr == nil {
		d.bytes -= info.Size()
	} else {
		d.files++
	}
	d.bytes += int64(len(val))
	d.mu.Unlock()
}

// Stats reports the disk tier's size and lifetime counters.
func (d *DiskStore) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskStats{
		Dir:   d.dir,
		Files: d.files, Bytes: d.bytes,
		Hits: d.hits, Misses: d.misses, Writes: d.writes,
		LoadErrors: d.loadErrors, WriteErrors: d.writeErrors,
	}
}

// DiskStats is a point-in-time snapshot of DiskStore accounting.
type DiskStats struct {
	Dir         string `json:"dir"`
	Files       int64  `json:"files"`
	Bytes       int64  `json:"bytes"`
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	Writes      int64  `json:"writes"`
	LoadErrors  int64  `json:"load_errors"`
	WriteErrors int64  `json:"write_errors"`
}
