package sweep

import (
	"strings"
	"testing"
)

// TestKeyDefaultsVsExplicit pins canonicalization rule #1: a sparse config
// and its fully spelled-out equivalent are the same unit.
func TestKeyDefaultsVsExplicit(t *testing.T) {
	sparse := UnitConfig{Topo: "mesh", Rate: 0.3, Seed: 42}
	rf := 0.5
	explicit := UnitConfig{
		SchemaVersion: SchemaVersion,
		Topo:          "mesh",
		VCsPerClass:   1,
		VAArch:        "sep_if",
		VAArb:         "rr",
		SAArch:        "sep_if",
		SAArb:         "rr",
		SpecMode:      "spec_req",
		Pattern:       "uniform",
		Rate:          0.3,
		ReadFraction:  &rf,
		BufDepth:      8,
		Warmup:        2000,
		Measure:       5000,
		Drain:         20000,
		Seed:          42,
	}
	if sparse.Key() != explicit.Key() {
		t.Fatalf("default-filled and explicit configs hash differently:\n%s\nvs\n%s",
			sparse.Normalized().canonical(), explicit.canonical())
	}
}

// TestKeySensitivity pins that every semantic field moves the key.
func TestKeySensitivity(t *testing.T) {
	base := UnitConfig{Topo: "mesh", Rate: 0.3, Seed: 42}
	baseKey := base.Key()
	rf0 := 0.0
	mutations := map[string]UnitConfig{
		"topo":          {Topo: "fbfly", Rate: 0.3, Seed: 42},
		"vcs_per_class": {Topo: "mesh", VCsPerClass: 2, Rate: 0.3, Seed: 42},
		"va_arch":       {Topo: "mesh", VAArch: "wf", Rate: 0.3, Seed: 42},
		"va_arb":        {Topo: "mesh", VAArb: "m", Rate: 0.3, Seed: 42},
		"va_sparse":     {Topo: "mesh", VASparse: true, Rate: 0.3, Seed: 42},
		"sa_arch":       {Topo: "mesh", SAArch: "sep_of", Rate: 0.3, Seed: 42},
		"sa_arb":        {Topo: "mesh", SAArb: "m", Rate: 0.3, Seed: 42},
		"spec_mode":     {Topo: "mesh", SpecMode: "nonspec", Rate: 0.3, Seed: 42},
		"pattern":       {Topo: "mesh", Pattern: "transpose", Rate: 0.3, Seed: 42},
		"process":       {Topo: "mesh", Process: "mmp", Rate: 0.3, Seed: 42},
		"burst_len":     {Topo: "mesh", Process: "mmp", BurstLen: 64, Rate: 0.3, Seed: 42},
		"duty":          {Topo: "mesh", Process: "mmp", Duty: 0.5, Rate: 0.3, Seed: 42},
		"hotspots":      {Topo: "mesh", Pattern: "hotspot", Hotspots: []int{3, 7}, Rate: 0.3, Seed: 42},
		"hotspot_frac":  {Topo: "mesh", Pattern: "hotspot", HotspotFraction: 0.5, Rate: 0.3, Seed: 42},
		"hotspot_def":   {Topo: "mesh", Pattern: "hotspot", Rate: 0.3, Seed: 42},
		"rate":          {Topo: "mesh", Rate: 0.30000000000000004, Seed: 42},
		"read_fraction": {Topo: "mesh", ReadFraction: &rf0, Rate: 0.3, Seed: 42},
		"buf_depth":     {Topo: "mesh", BufDepth: 4, Rate: 0.3, Seed: 42},
		"warmup":        {Topo: "mesh", Warmup: 100, Rate: 0.3, Seed: 42},
		"measure":       {Topo: "mesh", Measure: 100, Rate: 0.3, Seed: 42},
		"drain":         {Topo: "mesh", Drain: 100, Rate: 0.3, Seed: 42},
		"seed":          {Topo: "mesh", Rate: 0.3, Seed: 43},
	}
	seen := map[string]string{baseKey: "base"}
	for field, cfg := range mutations {
		k := cfg.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %s collides with %s", field, prev)
		}
		seen[k] = field
	}
}

// TestKeyGoldenPinned pins the canonical serialization and its hash for one
// fully specified config. Any change here is a schema change: if this test
// breaks, either revert the serialization change or bump SchemaVersion and
// re-pin — silently re-keying a deployed cache is the failure mode this
// guards against.
func TestKeyGoldenPinned(t *testing.T) {
	cfg := UnitConfig{Topo: "mesh", Rate: 0.3, Seed: 42}
	wantCanonical := strings.Join([]string{
		"noc-sweep/v3",
		"topo=mesh",
		"vcs_per_class=1",
		"va_arch=sep_if",
		"va_arb=rr",
		"va_sparse=0",
		"sa_arch=sep_if",
		"sa_arb=rr",
		"spec_mode=spec_req",
		"pattern=uniform",
		"process=bernoulli",
		"burst_len=0x0p+00",
		"duty=0x0p+00",
		"hotspots=",
		"hotspot_fraction=0x0p+00",
		"trace_digest=",
		"rate=0x1.3333333333333p-02",
		"read_fraction=0x1p-01",
		"buf_depth=8",
		"warmup=2000",
		"measure=5000",
		"drain=20000",
		"seed=42",
		"",
	}, "\n")
	if got := cfg.Normalized().canonical(); got != wantCanonical {
		t.Fatalf("canonical serialization changed (schema change? bump SchemaVersion and re-pin):\ngot:\n%s\nwant:\n%s", got, wantCanonical)
	}
	const wantKey = "8e8c03cba715202a435f3736d50bdf70458c9ed0cff2b13699db25cf3464fdc9"
	if got := cfg.Key(); got != wantKey {
		t.Fatalf("pinned golden key changed:\ngot  %s\nwant %s", got, wantKey)
	}
}

// TestKeyWavefrontArbCollapse pins the v2 canonicalization rule: the
// wavefront VC allocator has no arbiters, so every va_arb spelling of a wf
// VA config is the same unit — while the switch allocator's arb kind stays
// semantic (the SA wavefront datapath arbitrates VC pre-selection with it).
func TestKeyWavefrontArbCollapse(t *testing.T) {
	wfRR := UnitConfig{Topo: "mesh", VAArch: "wf", VAArb: "rr", Rate: 0.3, Seed: 42}
	wfM := UnitConfig{Topo: "mesh", VAArch: "wf", VAArb: "m", Rate: 0.3, Seed: 42}
	if wfRR.Key() != wfM.Key() {
		t.Fatal("va wf/m and wf/rr hash differently; the wavefront VC allocator has no arbiters")
	}
	saRR := UnitConfig{Topo: "mesh", SAArch: "wf", SAArb: "rr", Rate: 0.3, Seed: 42}
	saM := UnitConfig{Topo: "mesh", SAArch: "wf", SAArb: "m", Rate: 0.3, Seed: 42}
	if saRR.Key() == saM.Key() {
		t.Fatal("sa wf/m and wf/rr collapsed; SA pre-selection arbiters make them distinct units")
	}
}

// TestNormalizedIdempotent pins that normalization is a fixed point.
func TestNormalizedIdempotent(t *testing.T) {
	c := UnitConfig{Topo: "fbfly", VCsPerClass: 4, Rate: 0.5, Seed: 7}.Normalized()
	if c2 := c.Normalized(); c2.Key() != c.Key() {
		t.Fatal("Normalized is not idempotent")
	}
}

// TestValidateRejects pins the validation vocabulary.
func TestValidateRejects(t *testing.T) {
	bad := []UnitConfig{
		{Topo: "hypercube", Rate: 0.1},
		{Topo: "mesh", VCsPerClass: 3, Rate: 0.1},
		{Topo: "mesh", VAArch: "magic", Rate: 0.1},
		{Topo: "mesh", SAArb: "lru", Rate: 0.1},
		{Topo: "mesh", SpecMode: "optimistic", Rate: 0.1},
		{Topo: "mesh", Pattern: "hotspot99", Rate: 0.1},
		{Topo: "mesh", Rate: 1.5},
		{Topo: "mesh", Rate: -0.1},
		{Topo: "mesh", Rate: 0.1, BufDepth: -1},
		{Topo: "mesh", Rate: 0.1, Measure: -5},
		{Topo: "mesh", Rate: 0.1, Process: "poisson"},
		{Topo: "mesh", Rate: 0.1, Process: "trace"},                          // batch-only
		{Topo: "mesh", Rate: 0.1, Process: "trace", TraceDigest: "abc"},      // batch-only even with digest
		{Topo: "mesh", Rate: 0.9, Process: "mmp", Duty: 0.1},                 // ON-phase rate > 1 flit/cycle
		{Topo: "mesh", Rate: 0.1, Process: "mmp", Duty: 1.5},                 // duty > 1
		{Topo: "mesh", Rate: 0.1, Process: "mmp", BurstLen: 0.5},             // burst < 1 cycle
		{Topo: "mesh", Rate: 0.1, Pattern: "hotspot", Hotspots: []int{64}},   // out of range
		{Topo: "mesh", Rate: 0.1, Pattern: "hotspot", Hotspots: []int{3, 3}}, // duplicate
		{Topo: "mesh", Rate: 0.1, Pattern: "hotspot", HotspotFraction: 1.5},  // fraction > 1
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, cfg)
		}
	}
	good := []UnitConfig{
		{Topo: "fbfly", VCsPerClass: 2, SAArch: "wf", SpecMode: "nonspec", Pattern: "tornado", Rate: 0.4, Seed: 1},
		{Topo: "mesh", Process: "mmp", BurstLen: 16, Duty: 0.5, Rate: 0.3, Seed: 1},
		{Topo: "mesh", Pattern: "hotspot", Hotspots: []int{3, 7}, HotspotFraction: 0.4, Rate: 0.2, Seed: 1},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("good config %d rejected: %v", i, err)
		}
	}
}

// TestKeyWorkloadCollapse pins the v3 canonicalization rule inherited from
// traffic.Workload.Normalized: parameters irrelevant to the selected
// process/pattern (burst knobs under bernoulli, hotspot knobs under
// uniform, a stray trace digest) are cleared before hashing, so they cannot
// differentiate units.
func TestKeyWorkloadCollapse(t *testing.T) {
	base := UnitConfig{Topo: "mesh", Rate: 0.3, Seed: 42}
	inert := []UnitConfig{
		{Topo: "mesh", Rate: 0.3, Seed: 42, Process: "bernoulli", BurstLen: 64, Duty: 0.5},
		{Topo: "mesh", Rate: 0.3, Seed: 42, Hotspots: []int{3}, HotspotFraction: 0.9},
		{Topo: "mesh", Rate: 0.3, Seed: 42, TraceDigest: "deadbeef"},
	}
	for i, cfg := range inert {
		if cfg.Key() != base.Key() {
			t.Errorf("config %d: inert workload parameters moved the key:\n%s\nvs\n%s",
				i, cfg.Normalized().canonical(), base.Normalized().canonical())
		}
	}
	// And the defaulted spelling of an active parameter collapses onto the
	// explicit default.
	mmpDef := UnitConfig{Topo: "mesh", Rate: 0.3, Seed: 42, Process: "mmp"}
	mmpExpl := UnitConfig{Topo: "mesh", Rate: 0.3, Seed: 42, Process: "mmp", BurstLen: 32, Duty: 0.25}
	if mmpDef.Key() != mmpExpl.Key() {
		t.Error("defaulted and explicit mmp parameters hash differently")
	}
}

// TestBuildSimMatchesBatchPath pins that a unit builds the exact sim.Config
// the batch CLI path builds for the same design point and scale.
func TestBuildSimMatchesBatchPath(t *testing.T) {
	u := UnitConfig{Topo: "mesh", VCsPerClass: 2, Rate: 0.25, Seed: 42, Warmup: 500, Measure: 1000, Drain: 4000}
	cfg, err := u.BuildSim(Exec{Shards: 4, Leap: true})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.InjectionRate != 0.25 || cfg.Seed != 42 || cfg.Shards != 4 || !cfg.Leap {
		t.Fatalf("BuildSim dropped fields: %+v", cfg)
	}
	if cfg.Spec.VCsPerClass != 2 || cfg.Topology == nil || cfg.Routing == nil {
		t.Fatalf("BuildSim missing design point wiring: %+v", cfg)
	}
	if *cfg.ReadFraction != 0.5 || cfg.BufDepth != 8 {
		t.Fatalf("BuildSim defaults wrong: rf=%v buf=%d", *cfg.ReadFraction, cfg.BufDepth)
	}
}
