package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// diskVal marshals a minimal valid stored result for key.
func diskVal(t *testing.T, key string) []byte {
	t.Helper()
	b, err := json.Marshal(UnitResult{SchemaVersion: SchemaVersion, Key: key, Latency: 12.5})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDiskStoreRoundTrip(t *testing.T) {
	d, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const key = "aaaa"
	if _, ok := d.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	val := diskVal(t, key)
	d.Put(key, val)
	got, ok := d.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("round trip: ok=%v got=%q want=%q", ok, got, val)
	}
	st := d.Stats()
	if st.Files != 1 || st.Bytes != int64(len(val)) || st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Overwriting the same key must not double-count the file.
	d.Put(key, val)
	if st := d.Stats(); st.Files != 1 || st.Bytes != int64(len(val)) || st.Writes != 2 {
		t.Fatalf("stats after overwrite: %+v", st)
	}
}

// TestDiskStoreRestartWarm pins the point of the disk tier: a second store
// opened on the same root sees the first one's writes and seeds its size
// accounting from the directory.
func TestDiskStoreRestartWarm(t *testing.T) {
	root := t.TempDir()
	d1, err := OpenDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	val := diskVal(t, "warmkey")
	d1.Put("warmkey", val)

	d2, err := OpenDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d2.Get("warmkey")
	if !ok || !bytes.Equal(got, val) {
		t.Fatal("restarted store missed a persisted key")
	}
	if st := d2.Stats(); st.Files != 1 || st.Bytes != int64(len(val)) {
		t.Fatalf("restart accounting: %+v", st)
	}
}

// TestDiskStoreCorruptionTolerant pins the load contract: truncated,
// garbage, foreign and wrong-version files are counted misses — never a
// panic, never a served result — and a later Put heals the entry.
func TestDiskStoreCorruptionTolerant(t *testing.T) {
	d, err := OpenDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	valid := diskVal(t, "goodkey")
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated", valid[:len(valid)/2]},
		{"garbage", []byte("\x00\xff not json at all")},
		{"empty", nil},
		// Valid JSON answering a different key: must fail the cross-check.
		{"foreign_key", diskVal(t, "someotherkey")},
		// Valid JSON for this key under a different schema version.
		{"wrong_version", func() []byte {
			b, _ := json.Marshal(UnitResult{SchemaVersion: SchemaVersion + 1, Key: "goodkey"})
			return b
		}()},
	}
	wantErrs := int64(0)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(filepath.Join(d.Dir(), "goodkey"+diskSuffix), tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := d.Get("goodkey"); ok {
				t.Fatal("corrupt file served as a hit")
			}
			wantErrs++
			if st := d.Stats(); st.LoadErrors != wantErrs {
				t.Fatalf("load errors = %d, want %d", st.LoadErrors, wantErrs)
			}
		})
	}
	// Put heals the corrupted entry.
	d.Put("goodkey", valid)
	if got, ok := d.Get("goodkey"); !ok || !bytes.Equal(got, valid) {
		t.Fatal("Put did not replace the corrupt file")
	}
}

// TestDiskStoreVersionScoped pins that a SchemaVersion bump reads from a
// fresh directory: old-version entries are invisible, not migrated.
func TestDiskStoreVersionScoped(t *testing.T) {
	root := t.TempDir()
	dOld, err := openDiskStoreVersion(root, SchemaVersion)
	if err != nil {
		t.Fatal(err)
	}
	dOld.Put("k", diskVal(t, "k"))

	dNew, err := openDiskStoreVersion(root, SchemaVersion+1)
	if err != nil {
		t.Fatal(err)
	}
	if dNew.Dir() == dOld.Dir() {
		t.Fatal("version bump kept the same directory")
	}
	if !strings.HasPrefix(filepath.Base(dNew.Dir()), "v") {
		t.Fatalf("unexpected dir layout: %s", dNew.Dir())
	}
	if _, ok := dNew.Get("k"); ok {
		t.Fatal("new schema version served an old version's entry")
	}
	if st := dNew.Stats(); st.Files != 0 {
		t.Fatalf("new version dir accounted old files: %+v", st)
	}
}

// TestServerDiskRestartWarm drives the full server stack: a sweep served by
// one server is served entirely from disk — byte-equal, zero simulations —
// by a fresh server sharing the cache directory, and /statz reports the
// disk tier.
func TestServerDiskRestartWarm(t *testing.T) {
	root := t.TempDir()
	opts := Options{
		Defaults: goldenScale(1),
		Exec:     Exec{Leap: true},
		Workers:  2,
		CacheDir: root,
	}
	req := Request{
		Base:  UnitConfig{Topo: "mesh", Rate: 0.2, Seed: 42},
		Rates: []float64{0.05, 0.2},
	}

	s1, ts1 := newTestServer(t, opts)
	cold := postSweep(t, ts1.Client(), ts1.URL, req)
	if cold.Summary.Misses != 2 || s1.SimRuns() != 2 {
		t.Fatalf("cold pass: %+v, sims=%d", cold.Summary, s1.SimRuns())
	}
	if st := s1.Disk().Stats(); st.Writes != 2 || st.Files != 2 {
		t.Fatalf("disk after cold pass: %+v", st)
	}

	s2, ts2 := newTestServer(t, opts)
	warm := postSweep(t, ts2.Client(), ts2.URL, req)
	if warm.Summary.Hits != 2 || s2.SimRuns() != 0 {
		t.Fatalf("restart pass: %+v, sims=%d, want 2 disk hits and 0 sims", warm.Summary, s2.SimRuns())
	}
	for i := 0; i < 2; i++ {
		if !bytes.Equal(cold.byIndex(i).Result, warm.byIndex(i).Result) {
			t.Fatalf("unit %d: disk-restored bytes differ from the miss that wrote them", i)
		}
	}
	if st := s2.Disk().Stats(); st.Hits != 2 {
		t.Fatalf("disk after restart pass: %+v", st)
	}

	// A repeat on the same server is a memory hit: the disk hit was
	// promoted, so the disk counters stay put.
	postSweep(t, ts2.Client(), ts2.URL, req)
	if st := s2.Disk().Stats(); st.Hits != 2 {
		t.Fatalf("memory tier did not absorb the repeat: %+v", st)
	}

	// /statz reports the disk section iff the tier is configured.
	var statz map[string]json.RawMessage
	resp, err := ts2.Client().Get(ts2.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(b, &statz); err != nil {
		t.Fatal(err)
	}
	if _, ok := statz["disk"]; !ok {
		t.Fatalf("statz missing disk section: %s", b)
	}
	_, tsMem := newTestServer(t, Options{Defaults: goldenScale(1), Workers: 1})
	resp, err = tsMem.Client().Get(tsMem.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Contains(b, []byte(`"disk"`)) {
		t.Fatalf("memory-only statz reports a disk section: %s", b)
	}
}

// TestServerDiskCorruptionFallsBackToSim pins the end-to-end robustness
// story: corrupting a cached file turns the next request into a re-simulated
// miss whose result matches the original bytes.
func TestServerDiskCorruptionFallsBackToSim(t *testing.T) {
	root := t.TempDir()
	opts := Options{
		Defaults: goldenScale(1),
		Exec:     Exec{Leap: true},
		Workers:  1,
		CacheDir: root,
	}
	req := Request{Base: UnitConfig{Topo: "mesh", Rate: 0.2, Seed: 42}}

	s1, ts1 := newTestServer(t, opts)
	cold := postSweep(t, ts1.Client(), ts1.URL, req)
	key := cold.byIndex(0).Key

	// Truncate the cached file on disk.
	path := filepath.Join(s1.Disk().Dir(), key+diskSuffix)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, orig[:len(orig)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, opts)
	again := postSweep(t, ts2.Client(), ts2.URL, req)
	if again.Summary.Misses != 1 || s2.SimRuns() != 1 {
		t.Fatalf("corrupt entry not re-simulated: %+v, sims=%d", again.Summary, s2.SimRuns())
	}
	if !bytes.Equal(cold.byIndex(0).Result, again.byIndex(0).Result) {
		t.Fatal("re-simulated result differs from the original")
	}
	// The pre-flight lookup and the in-flight recheck each read the bad
	// file once.
	if st := s2.Disk().Stats(); st.LoadErrors < 1 {
		t.Fatalf("load error not counted: %+v", st)
	}
	// The Put after the re-simulation healed the file.
	if healed, err := os.ReadFile(path); err != nil || !bytes.Equal(healed, orig) {
		t.Fatalf("cache file not healed: err=%v", err)
	}
}

// TestServerHealsStaleV2Cache pins the v2→v3 schema-bump migration story
// end-to-end: a cache root left over from a v2 server — its v2/ directory
// full of old-schema entries, plus (simulating a botched manual migration) a
// v2-versioned payload sitting inside the v3 directory under the unit's v3
// key — serves nothing. The request is a counted miss that re-simulates, and
// the write-through heals the v3 entry in place; the v2 directory is never
// touched.
func TestServerHealsStaleV2Cache(t *testing.T) {
	root := t.TempDir()
	// Phase lengths are spelled explicitly so the precomputed key matches
	// the unit after the server applies its defaults.
	req := Request{Base: UnitConfig{Topo: "mesh", Rate: 0.2, Seed: 42, Warmup: 200, Measure: 400, Drain: 2000}}
	key := req.Base.Normalized().Key()

	// Old-schema tier: entries under v2/ are invisible to a v3 store no
	// matter what they contain.
	oldDir := filepath.Join(root, "v2")
	if err := os.MkdirAll(oldDir, 0o755); err != nil {
		t.Fatal(err)
	}
	staleOld, _ := json.Marshal(UnitResult{SchemaVersion: 2, Key: "stalev2key", Latency: 99})
	if err := os.WriteFile(filepath.Join(oldDir, "stalev2key"+diskSuffix), staleOld, 0o644); err != nil {
		t.Fatal(err)
	}

	// Botched migration: a v2-versioned result filed under the v3 key in
	// the v3 directory. validDiskResult must refuse it.
	newDir := filepath.Join(root, fmt.Sprintf("v%d", SchemaVersion))
	if err := os.MkdirAll(newDir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale, _ := json.Marshal(UnitResult{SchemaVersion: 2, Key: key, Latency: 99})
	if err := os.WriteFile(filepath.Join(newDir, key+diskSuffix), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	opts := Options{Defaults: goldenScale(1), Exec: Exec{Leap: true}, Workers: 1, CacheDir: root}
	s, ts := newTestServer(t, opts)
	res := postSweep(t, ts.Client(), ts.URL, req)
	if res.Summary.Misses != 1 || s.SimRuns() != 1 {
		t.Fatalf("stale v2 entries must be counted misses that re-simulate: %+v, sims=%d", res.Summary, s.SimRuns())
	}
	if st := s.Disk().Stats(); st.LoadErrors < 1 {
		t.Fatalf("wrong-version read not counted as a load error: %+v", st)
	}

	// The write-through healed the v3 entry: a fresh store serves the
	// re-simulated bytes.
	d, err := OpenDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key)
	if !ok || !bytes.Equal(got, res.byIndex(0).Result) {
		t.Fatal("v3 entry not healed by the re-simulating miss")
	}
	// A second server over the healed root serves the unit from disk.
	s2, ts2 := newTestServer(t, opts)
	warm := postSweep(t, ts2.Client(), ts2.URL, req)
	if warm.Summary.Hits != 1 || s2.SimRuns() != 0 {
		t.Fatalf("healed entry not served from disk: %+v, sims=%d", warm.Summary, s2.SimRuns())
	}
	if !bytes.Equal(warm.byIndex(0).Result, res.byIndex(0).Result) {
		t.Fatal("healed bytes differ from the miss that wrote them")
	}
	// The v2 tier is retired, not rewritten.
	if b, err := os.ReadFile(filepath.Join(oldDir, "stalev2key"+diskSuffix)); err != nil || !bytes.Equal(b, staleOld) {
		t.Fatalf("v2 directory disturbed: %v", err)
	}
}

// TestDiskStoreIgnoresStrayFiles pins that non-result files in the cache
// directory (temp leftovers, editor droppings) are excluded from size
// accounting.
func TestDiskStoreIgnoresStrayFiles(t *testing.T) {
	root := t.TempDir()
	d1, err := OpenDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(d1.Dir(), ".tmp-leftover"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.Files != 0 || st.Bytes != 0 {
		t.Fatalf("stray file counted: %+v", st)
	}
}

// agedPut writes key and backdates its mtime so LRU eviction order is
// deterministic regardless of filesystem timestamp resolution.
func agedPut(t *testing.T, d *DiskStore, key string, age time.Duration) {
	t.Helper()
	d.Put(key, diskVal(t, key))
	old := time.Now().Add(-age)
	if err := os.Chtimes(filepath.Join(d.Dir(), key+diskSuffix), old, old); err != nil {
		t.Fatal(err)
	}
}

// TestDiskStoreEvictsOldestFirst pins the eviction policy: crossing the
// entry budget deletes result files in mtime order, oldest first, and the
// counters account for what was removed.
func TestDiskStoreEvictsOldestFirst(t *testing.T) {
	d, err := OpenDiskStoreBounded(t.TempDir(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	agedPut(t, d, "old", 3*time.Hour)
	agedPut(t, d, "mid", 2*time.Hour)
	d.Put("new", diskVal(t, "new")) // third entry: budget is 2, "old" must go

	if _, ok := d.Get("old"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for _, k := range []string{"mid", "new"} {
		if _, ok := d.Get(k); !ok {
			t.Fatalf("entry %q evicted out of LRU order", k)
		}
	}
	st := d.Stats()
	if st.Files != 2 || st.Evictions != 1 || st.EvictScans != 1 || st.EvictedBytes == 0 {
		t.Fatalf("eviction accounting: %+v", st)
	}
}

// TestDiskStoreEvictsByBytes drives the byte budget: the store keeps only as
// many recent results as fit.
func TestDiskStoreEvictsByBytes(t *testing.T) {
	one := int64(len(diskVal(t, "aa")))
	d, err := OpenDiskStoreBounded(t.TempDir(), 0, 2*one+1)
	if err != nil {
		t.Fatal(err)
	}
	agedPut(t, d, "aa", 3*time.Hour)
	agedPut(t, d, "bb", 2*time.Hour)
	d.Put("cc", diskVal(t, "cc"))
	if _, ok := d.Get("aa"); ok {
		t.Fatal("byte budget did not evict the oldest entry")
	}
	if st := d.Stats(); st.Bytes > 2*one+1 || st.Evictions != 1 {
		t.Fatalf("byte accounting after eviction: %+v", st)
	}
}

// TestDiskStoreGetProtectsFromEviction pins the "recently used" half of LRU:
// a Get refreshes the entry's mtime, so a later eviction takes the
// untouched entry instead.
func TestDiskStoreGetProtectsFromEviction(t *testing.T) {
	d, err := OpenDiskStoreBounded(t.TempDir(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	agedPut(t, d, "used", 3*time.Hour)
	agedPut(t, d, "idle", 2*time.Hour)
	if _, ok := d.Get("used"); !ok { // refreshes mtime: now newer than "idle"
		t.Fatal("warm entry missed")
	}
	d.Put("new", diskVal(t, "new"))
	if _, ok := d.Get("idle"); ok {
		t.Fatal("LRU evicted the idle entry's junior")
	}
	if _, ok := d.Get("used"); !ok {
		t.Fatal("recently read entry was evicted")
	}
}

// TestDiskStoreEvictionNeverDeletesKeepOrStrays pins two safety properties:
// the key whose Put triggered eviction survives even when it is the oldest
// candidate, and non-result files in the directory are never deleted (the
// eviction scan is as corruption-tolerant as the load path).
func TestDiskStoreEvictionNeverDeletesKeepOrStrays(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDiskStoreBounded(root, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(d.Dir(), "notes.txt")
	if err := os.WriteFile(stray, []byte("not a result"), 0o644); err != nil {
		t.Fatal(err)
	}
	agedPut(t, d, "first", 3*time.Hour)
	// Backdate the new write below the survivor's mtime: "keep" protection,
	// not age, is what must save it.
	agedPut(t, d, "second", 5*time.Hour)
	if _, ok := d.Get("second"); !ok {
		t.Fatal("just-written key evicted by its own Put")
	}
	if _, ok := d.Get("first"); ok {
		t.Fatal("store over budget: older sibling should have been evicted")
	}
	if _, err := os.Stat(stray); err != nil {
		t.Fatalf("eviction touched a non-result file: %v", err)
	}
	if st := d.Stats(); st.Files != 1 {
		t.Fatalf("accounting after keep-protected eviction: %+v", st)
	}
}

// TestServerRestartAfterEvictionHeals drives eviction through the full
// server stack: a bounded disk tier evicts under load, and a restarted
// server re-simulates the evicted units — byte-equal to the originals —
// while serving the surviving ones from disk.
func TestServerRestartAfterEvictionHeals(t *testing.T) {
	root := t.TempDir()
	opts := Options{
		Defaults:       goldenScale(1),
		Exec:           Exec{Leap: true},
		Workers:        2,
		CacheDir:       root,
		DiskMaxEntries: 2,
	}
	req := Request{
		Base:  UnitConfig{Topo: "mesh", Seed: 42},
		Rates: []float64{0.05, 0.1, 0.15, 0.2},
	}

	s1, ts1 := newTestServer(t, opts)
	cold := postSweep(t, ts1.Client(), ts1.URL, req)
	if cold.Summary.Misses != 4 {
		t.Fatalf("cold pass: %+v", cold.Summary)
	}
	st := s1.Disk().Stats()
	if st.Evictions == 0 || st.Files > 2 {
		t.Fatalf("bounded disk tier did not evict: %+v", st)
	}

	s2, ts2 := newTestServer(t, opts)
	warm := postSweep(t, ts2.Client(), ts2.URL, req)
	if warm.Summary.Hits+warm.Summary.Misses != 4 || warm.Summary.Misses == 0 ||
		int64(warm.Summary.Misses) != s2.SimRuns() {
		t.Fatalf("restart pass: %+v, sims=%d", warm.Summary, s2.SimRuns())
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(cold.byIndex(i).Result, warm.byIndex(i).Result) {
			t.Fatalf("unit %d: healed result differs from the original", i)
		}
	}
}
