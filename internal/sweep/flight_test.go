package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightCoalesces pins the headline contract: N concurrent Do calls for
// one key run fn exactly once, exactly one caller is the leader, and every
// caller sees the same value.
func TestFlightCoalesces(t *testing.T) {
	g := NewGroup()
	var runs atomic.Int64
	release := make(chan struct{})
	const N = 8
	var leaders atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, err, leader := g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
				runs.Add(1)
				<-release
				return []byte("result"), nil
			})
			if err != nil || string(val) != "result" {
				t.Errorf("Do: %q %v", val, err)
			}
			if leader {
				leaders.Add(1)
			}
		}()
	}
	// Let every goroutine attach before releasing the computation.
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", n, N)
	}
	if l := leaders.Load(); l != 1 {
		t.Fatalf("%d leaders, want 1", l)
	}
	if g.InFlight() != 0 {
		t.Fatal("key not released after completion")
	}
}

func TestFlightDistinctKeysDoNotCoalesce(t *testing.T) {
	g := NewGroup()
	var runs atomic.Int64
	var wg sync.WaitGroup
	for _, k := range []string{"a", "b", "c"} {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Do(context.Background(), k, func(ctx context.Context) ([]byte, error) {
				runs.Add(1)
				return []byte(k), nil
			})
		}()
	}
	wg.Wait()
	if n := runs.Load(); n != 3 {
		t.Fatalf("distinct keys ran fn %d times, want 3", n)
	}
}

// TestFlightErrorPropagates pins that a failing computation reports its
// error to every attached caller.
func TestFlightErrorPropagates(t *testing.T) {
	g := NewGroup()
	boom := errors.New("boom")
	_, err, leader := g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) || !leader {
		t.Fatalf("err=%v leader=%v", err, leader)
	}
	if g.InFlight() != 0 {
		t.Fatal("failed key not released")
	}
}

// TestFlightLastWaiterCancels pins the refcounted-cancellation contract:
// the computation's context fires only when the last attached caller has
// detached, and the key is then released for fresh attempts.
func TestFlightLastWaiterCancels(t *testing.T) {
	g := NewGroup()
	started := make(chan struct{})
	cancelled := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	fn := func(ctx context.Context) ([]byte, error) {
		close(started)
		<-ctx.Done()
		close(cancelled)
		return nil, ctx.Err()
	}
	errs := make(chan error, 2)
	go func() { _, err, _ := g.Do(ctx1, "k", fn); errs <- err }()
	<-started
	go func() { _, err, _ := g.Do(ctx2, "k", fn); errs <- err }()
	// Both callers attached; dropping only the first must NOT cancel.
	time.Sleep(10 * time.Millisecond)
	cancel1()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("first caller: %v", err)
	}
	select {
	case <-cancelled:
		t.Fatal("computation cancelled while a caller was still attached")
	case <-time.After(30 * time.Millisecond):
	}
	// Dropping the last caller must cancel the computation and free the key.
	cancel2()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("second caller: %v", err)
	}
	select {
	case <-cancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("computation not cancelled after last caller detached")
	}
	deadline := time.Now().Add(2 * time.Second)
	for g.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned key never released")
		}
		time.Sleep(time.Millisecond)
	}
	// A fresh request for the key starts a fresh computation.
	val, err, leader := g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || string(val) != "fresh" || !leader {
		t.Fatalf("post-abandon Do: %q %v leader=%v", val, err, leader)
	}
}
