package sweep

import (
	"fmt"
	"testing"
)

func TestStoreHitMiss(t *testing.T) {
	s := NewStore(8, 0)
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store hit")
	}
	s.Put("a", []byte("alpha"))
	got, ok := s.Get("a")
	if !ok || string(got) != "alpha" {
		t.Fatalf("get after put: %q %v", got, ok)
	}
	s.Put("a", []byte("alpha2"))
	got, _ = s.Get("a")
	if string(got) != "alpha2" {
		t.Fatalf("refresh did not replace: %q", got)
	}
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != int64(len("alpha2")) {
		t.Fatalf("accounting after refresh: %+v", st)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hit/miss counters: %+v", st)
	}
}

// TestStoreEntryEviction pins LRU order under the entry bound: the least
// recently used key goes first, and a Get refreshes recency.
func TestStoreEntryEviction(t *testing.T) {
	s := NewStore(3, 0)
	for _, k := range []string{"a", "b", "c"} {
		s.Put(k, []byte(k))
	}
	s.Get("a") // now b is least recently used
	s.Put("d", []byte("d"))
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("recently used entry %s was evicted", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("eviction accounting: %+v", st)
	}
}

// TestStoreByteEviction pins the size bound: total value bytes stay within
// budget, evicting LRU-first, and a single oversized value is still
// admitted rather than thrashing.
func TestStoreByteEviction(t *testing.T) {
	s := NewStore(0, 10)
	s.Put("a", []byte("aaaa")) // 4
	s.Put("b", []byte("bbbb")) // 8
	s.Put("c", []byte("cccc")) // 12 > 10 → evict a
	if _, ok := s.Get("a"); ok {
		t.Fatal("byte bound did not evict LRU entry")
	}
	if st := s.Stats(); st.Bytes != 8 || st.Entries != 2 {
		t.Fatalf("byte accounting: %+v", st)
	}
	huge := make([]byte, 64)
	s.Put("huge", huge)
	if _, ok := s.Get("huge"); !ok {
		t.Fatal("oversized value was not admitted")
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != 64 {
		t.Fatalf("oversized admission accounting: %+v", st)
	}
}

func TestStoreUnbounded(t *testing.T) {
	s := NewStore(0, 0)
	for i := 0; i < 1000; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if st := s.Stats(); st.Entries != 1000 || st.Evictions != 0 {
		t.Fatalf("unbounded store evicted: %+v", st)
	}
}
