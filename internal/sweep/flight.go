package sweep

import (
	"context"
	"sync"
)

// Group coalesces concurrent in-flight work by key: while one computation
// for a key is running, every further Do call with that key attaches to it
// instead of starting a second one — the "millions of users asking for the
// same curve" all cost one simulation.
//
// Cancellation is refcounted: each attached caller contributes its own
// context, and the underlying computation's context is cancelled only when
// the last attached caller has gone. A caller whose context fires detaches
// immediately (its Do returns ctx.Err()) without disturbing the others.
// Once an abandoned computation is cancelled, the key is released, so a
// later request starts fresh instead of inheriting a doomed run.
type Group struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when fn returns
	val  []byte
	err  error

	waiters   int  // attached callers still waiting
	finished  bool // fn has returned
	abandoned bool // removed from the map before finishing (all waiters left)
	cancel    context.CancelFunc
}

// NewGroup builds an empty coalescing group.
func NewGroup() *Group {
	return &Group{m: make(map[string]*flightCall)}
}

// Do runs fn for key, coalescing with any in-flight call for the same key.
// It returns fn's result, and leader=true for the caller that started the
// computation (false for callers that attached to an existing one). fn
// receives a context that is cancelled when every attached caller's ctx has
// fired; fn runs in its own goroutine, so even the leader detaches promptly
// on cancellation.
func (g *Group) Do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) (val []byte, err error, leader bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return c.wait(ctx, g, key), c.errOr(ctx), false
	}
	runCtx, cancel := context.WithCancel(context.Background())
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.m[key] = c
	g.mu.Unlock()

	go func() {
		v, e := fn(runCtx)
		g.mu.Lock()
		c.val, c.err, c.finished = v, e, true
		if !c.abandoned {
			delete(g.m, key)
		}
		g.mu.Unlock()
		close(c.done)
		cancel()
	}()
	return c.wait(ctx, g, key), c.errOr(ctx), true
}

// wait blocks until the call completes or ctx fires, handling detach
// bookkeeping; it returns the call's value (nil when the caller detached
// early).
func (c *flightCall) wait(ctx context.Context, g *Group, key string) []byte {
	select {
	case <-c.done:
		return c.val
	case <-ctx.Done():
		g.mu.Lock()
		// Re-check under the lock: the call may have completed between the
		// select firing and acquiring the lock.
		select {
		case <-c.done:
			g.mu.Unlock()
			return c.val
		default:
		}
		c.waiters--
		if c.waiters == 0 && !c.finished {
			if !c.abandoned {
				delete(g.m, key)
				c.abandoned = true
			}
			c.cancel()
		}
		g.mu.Unlock()
		return nil
	}
}

// errOr returns the call's error once done, or the caller's context error
// if it detached first.
func (c *flightCall) errOr(ctx context.Context) error {
	select {
	case <-c.done:
		return c.err
	default:
		return ctx.Err()
	}
}

// InFlight reports how many distinct keys are currently being computed;
// exposed for tests and the stats endpoint.
func (g *Group) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
