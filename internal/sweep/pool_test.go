package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolBoundsConcurrency pins that at most `workers` tasks execute
// simultaneously while every submitted task still completes.
func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var cur, peak, total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(context.Background(), func(ctx context.Context) {
				c := cur.Add(1)
				for {
					old := peak.Load()
					if c <= old || peak.CompareAndSwap(old, c) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				total.Add(1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("observed %d concurrent tasks, pool width 2", got)
	}
	if got := total.Load(); got != 16 {
		t.Fatalf("%d tasks ran, want 16", got)
	}
}

// TestPoolSkipsCancelledQueuedTask pins that a task whose context dies
// while queued never runs.
func TestPoolSkipsCancelledQueuedTask(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Run(context.Background(), func(ctx context.Context) { <-block })
	}()
	time.Sleep(10 * time.Millisecond) // the single worker is now occupied
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := p.Run(ctx, func(ctx context.Context) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-then-cancelled Run: %v", err)
	}
	if ran {
		t.Fatal("cancelled task executed")
	}
	close(block)
	wg.Wait()
}

func TestPoolClose(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	if err := p.Run(context.Background(), func(ctx context.Context) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if err := p.Run(context.Background(), func(ctx context.Context) {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Run after Close: %v", err)
	}
	if ran.Load() != 1 {
		t.Fatal("task before Close did not run")
	}
}
