package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
)

// Request is the body of POST /sweep: a base unit plus optional expansion
// axes. The axes cross-multiply over the base — every listed switch
// allocator × speculation mode × pattern × seed × rate becomes one unit
// (an omitted axis keeps the base's own value) — and any explicitly listed
// Units are appended after the expansion. Unit order is deterministic:
// rates vary fastest, then seeds, processes, patterns, spec modes, and
// sa_archs slowest, so clients can index results positionally as well as by
// key.
type Request struct {
	// Base is the unit template; zero fields take schema defaults.
	Base UnitConfig `json:"base"`
	// SAArchs, SpecModes, Patterns, Processes, Seeds and Rates are the
	// expansion axes.
	SAArchs   []string  `json:"sa_archs,omitempty"`
	SpecModes []string  `json:"spec_modes,omitempty"`
	Patterns  []string  `json:"patterns,omitempty"`
	Processes []string  `json:"processes,omitempty"`
	Seeds     []uint64  `json:"seeds,omitempty"`
	Rates     []float64 `json:"rates,omitempty"`
	// Units are appended verbatim (each normalized independently).
	Units []UnitConfig `json:"units,omitempty"`
}

// Expand flattens the request into its normalized, validated unit list.
func (r Request) Expand() ([]UnitConfig, error) {
	archs := r.SAArchs
	if len(archs) == 0 {
		archs = []string{r.Base.SAArch}
	}
	modes := r.SpecModes
	if len(modes) == 0 {
		modes = []string{r.Base.SpecMode}
	}
	patterns := r.Patterns
	if len(patterns) == 0 {
		patterns = []string{r.Base.Pattern}
	}
	processes := r.Processes
	if len(processes) == 0 {
		processes = []string{r.Base.Process}
	}
	seeds := r.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{r.Base.Seed}
	}
	rates := r.Rates
	if len(rates) == 0 {
		rates = []float64{r.Base.Rate}
	}
	var units []UnitConfig
	for _, arch := range archs {
		for _, mode := range modes {
			for _, pat := range patterns {
				for _, proc := range processes {
					for _, seed := range seeds {
						for _, rate := range rates {
							u := r.Base
							u.SAArch, u.SpecMode, u.Pattern, u.Process, u.Seed, u.Rate = arch, mode, pat, proc, seed, rate
							units = append(units, u.Normalized())
						}
					}
				}
			}
		}
	}
	units = append(units, r.Units...)
	for i := range units {
		units[i] = units[i].Normalized()
		if err := units[i].Validate(); err != nil {
			return nil, fmt.Errorf("unit %d: %w", i, err)
		}
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("sweep: request expands to zero units")
	}
	return units, nil
}

// UnitUpdate is one NDJSON line of a sweep response: the outcome of one
// unit. Result carries the cached bytes verbatim (json.RawMessage), so a
// hit is byte-equal to the miss that populated the store.
type UnitUpdate struct {
	// Index is the unit's position in the expanded request.
	Index int `json:"index"`
	// Key is the unit's content address.
	Key string `json:"key"`
	// Status is "hit" (served from the store), "miss" (this request ran
	// the simulation), "coalesced" (attached to another request's
	// in-flight simulation), "canceled", or "error".
	Status string `json:"status"`
	// Result is the marshaled UnitResult (absent on error/cancel).
	Result json.RawMessage `json:"result,omitempty"`
	// Error describes a failed unit.
	Error string `json:"error,omitempty"`
	// ElapsedNS is the service time for this unit within this request.
	ElapsedNS int64 `json:"elapsed_ns"`
}

// SweepSummary is the final NDJSON line of a sweep response.
type SweepSummary struct {
	Done      bool  `json:"done"`
	Units     int   `json:"units"`
	Hits      int   `json:"hits"`
	Misses    int   `json:"misses"`
	Coalesced int   `json:"coalesced"`
	Errors    int   `json:"errors"`
	Canceled  int   `json:"canceled"`
	ElapsedNS int64 `json:"elapsed_ns"`
}

// Options configures a Server.
type Options struct {
	// Defaults fills a request's zero phase lengths and seed before
	// normalization (a sweepd -warmup/-measure/-drain/-seed flag set);
	// zero fields fall back to the schema defaults.
	Defaults experiments.SimScale
	// Exec carries the execution hints applied to every simulated unit.
	Exec Exec
	// Workers bounds concurrently running simulations (default
	// 1; sweepd passes GOMAXPROCS).
	Workers int
	// MaxEntries / MaxBytes bound the result store (defaults 4096 entries,
	// 64 MiB).
	MaxEntries int
	MaxBytes   int64
	// UnitConcurrency bounds per-request unit fan-out (hits and
	// coalesced units are nearly free, so this is higher than Workers;
	// default 4×Workers).
	UnitConcurrency int
	// CacheDir, when non-empty, adds a disk persistence tier under the
	// memory store: results are written through to content-addressed files
	// in a SchemaVersion-scoped subdirectory, so a restarted server (or a
	// second process sharing the directory) starts warm. Empty keeps the
	// original memory-only behavior.
	CacheDir string
	// DiskMaxEntries / DiskMaxBytes bound the disk tier: a write that
	// crosses either budget evicts least-recently-used result files until
	// the store fits again (sweepd's -cachemaxentries/-cachemaxbytes).
	// Zero leaves that axis unbounded — the disk tier's historical behavior.
	DiskMaxEntries int64
	DiskMaxBytes   int64
}

// Server implements the sweep service: POST /sweep streams per-unit NDJSON
// results through the store → coalescing → pool stack; GET /healthz and
// GET /statz report liveness and counters.
type Server struct {
	defaults experiments.SimScale
	exec     Exec
	store    *Store
	disk     *DiskStore // nil when CacheDir is empty
	flight   *Group
	pool     *Pool
	unitConc int

	simRuns   atomic.Int64
	unitsDone atomic.Int64
	requests  atomic.Int64
}

// NewServer builds a server; callers own its lifetime and should Close it.
// The only error source is opening the disk tier (CacheDir set but
// uncreatable).
func NewServer(opts Options) (*Server, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.MaxEntries == 0 {
		opts.MaxEntries = 4096
	}
	if opts.MaxBytes == 0 {
		opts.MaxBytes = 64 << 20
	}
	if opts.UnitConcurrency < 1 {
		opts.UnitConcurrency = 4 * opts.Workers
	}
	var disk *DiskStore
	if opts.CacheDir != "" {
		var err error
		if disk, err = OpenDiskStoreBounded(opts.CacheDir, opts.DiskMaxEntries, opts.DiskMaxBytes); err != nil {
			return nil, err
		}
	}
	return &Server{
		defaults: opts.Defaults,
		exec:     opts.Exec,
		store:    NewStore(opts.MaxEntries, opts.MaxBytes),
		disk:     disk,
		flight:   NewGroup(),
		pool:     NewPool(opts.Workers),
		unitConc: opts.UnitConcurrency,
	}, nil
}

// Close stops the worker pool (in-flight tasks drain first).
func (s *Server) Close() { s.pool.Close() }

// SimRuns reports how many simulations the server has actually executed —
// the coalescing and cache tests assert against this counter.
func (s *Server) SimRuns() int64 { return s.simRuns.Load() }

// Store exposes the result store (tests inspect eviction accounting).
func (s *Server) Store() *Store { return s.store }

// Disk exposes the disk tier, nil when the server is memory-only.
func (s *Server) Disk() *DiskStore { return s.disk }

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	poolDone, poolSkipped := s.pool.Stats()
	stats := struct {
		SchemaVersion int        `json:"schema_version"`
		Requests      int64      `json:"requests"`
		UnitsServed   int64      `json:"units_served"`
		SimRuns       int64      `json:"sim_runs"`
		InFlight      int        `json:"in_flight"`
		PoolRunning   int64      `json:"pool_running"`
		PoolDone      int64      `json:"pool_done"`
		PoolSkipped   int64      `json:"pool_skipped"`
		Store         StoreStats `json:"store"`
		Disk          *DiskStats `json:"disk,omitempty"`
	}{
		SchemaVersion: SchemaVersion,
		Requests:      s.requests.Load(),
		UnitsServed:   s.unitsDone.Load(),
		SimRuns:       s.simRuns.Load(),
		InFlight:      s.flight.InFlight(),
		PoolRunning:   s.pool.Running(),
		PoolDone:      poolDone,
		PoolSkipped:   poolSkipped,
		Store:         s.store.Stats(),
	}
	if s.disk != nil {
		ds := s.disk.Stats()
		stats.Disk = &ds
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(stats)
}

// applyDefaults fills a unit's zero phase/seed fields from the server's
// configured defaults (flag-level defaults sit below schema-level ones).
func (s *Server) applyDefaults(u UnitConfig) UnitConfig {
	if u.Warmup == 0 {
		u.Warmup = s.defaults.Warmup
	}
	if u.Measure == 0 {
		u.Measure = s.defaults.Measure
	}
	if u.Drain == 0 {
		u.Drain = s.defaults.Drain
	}
	if u.Seed == 0 && s.defaults.Seed != 0 {
		u.Seed = s.defaults.Seed
	}
	// Workload defaults (a sweepd -process/-pattern/-burstlen/... flag set)
	// fill zero fields the same way; Normalized later clears whatever is
	// irrelevant to the finally selected process/pattern.
	d := s.defaults.Workload
	if u.Process == "" {
		u.Process = d.Process
	}
	if u.Pattern == "" {
		u.Pattern = d.Pattern
	}
	if u.BurstLen == 0 {
		u.BurstLen = d.BurstLen
	}
	if u.Duty == 0 {
		u.Duty = d.Duty
	}
	if len(u.Hotspots) == 0 {
		u.Hotspots = d.Hotspots
	}
	if u.HotspotFraction == 0 {
		u.HotspotFraction = d.HotspotFraction
	}
	return u
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Add(1)
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.Base = s.applyDefaults(req.Base)
	for i := range req.Units {
		req.Units[i] = s.applyDefaults(req.Units[i])
	}
	units, err := req.Expand()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	var writeMu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(v any) {
		writeMu.Lock()
		defer writeMu.Unlock()
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	ctx := r.Context()
	start := time.Now()
	var summary SweepSummary
	var sumMu sync.Mutex
	account := func(status string) {
		sumMu.Lock()
		defer sumMu.Unlock()
		switch status {
		case "hit":
			summary.Hits++
		case "miss":
			summary.Misses++
		case "coalesced":
			summary.Coalesced++
		case "error":
			summary.Errors++
		case "canceled":
			summary.Canceled++
		}
	}

	sem := make(chan struct{}, s.unitConc)
	var wg sync.WaitGroup
	for i, u := range units {
		i, u := i, u
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			unitStart := time.Now()
			upd := UnitUpdate{Index: i, Key: u.Key()}
			if ctx.Err() != nil {
				upd.Status = "canceled"
				upd.Error = ctx.Err().Error()
			} else {
				data, status, err := s.serveUnit(ctx, u, upd.Key)
				upd.Status = status
				if err != nil {
					upd.Error = err.Error()
				} else {
					upd.Result = data
				}
			}
			upd.ElapsedNS = time.Since(unitStart).Nanoseconds()
			account(upd.Status)
			s.unitsDone.Add(1)
			emit(upd)
		}()
	}
	wg.Wait()
	summary.Done = true
	summary.Units = len(units)
	summary.ElapsedNS = time.Since(start).Nanoseconds()
	emit(summary)
}

// serveUnit resolves one unit through the perf layers: memory store, disk
// tier (promoting a disk hit into memory), in-flight coalescing, then a
// pooled simulation on a true miss. The returned bytes come from the store
// (or the computation that populated it) verbatim.
func (s *Server) serveUnit(ctx context.Context, u UnitConfig, key string) (data []byte, status string, err error) {
	if b, ok := s.cacheGet(key); ok {
		return b, "hit", nil
	}
	val, err, leader := s.flight.Do(ctx, key, func(runCtx context.Context) ([]byte, error) {
		// Re-check under coalescing: a previous leader may have populated
		// the store between our Get and the flight admission.
		if b, ok := s.cacheGet(key); ok {
			return b, nil
		}
		var res UnitResult
		var runErr error
		poolErr := s.pool.Run(runCtx, func(simCtx context.Context) {
			s.simRuns.Add(1)
			res, runErr = RunUnit(simCtx, u, s.exec)
		})
		if poolErr != nil {
			return nil, poolErr
		}
		if runErr != nil {
			return nil, runErr
		}
		b, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		s.store.Put(key, b)
		if s.disk != nil {
			s.disk.Put(key, b)
		}
		return b, nil
	})
	switch {
	case err != nil && ctx.Err() != nil:
		return nil, "canceled", err
	case err != nil:
		return nil, "error", err
	case leader:
		return val, "miss", nil
	default:
		return val, "coalesced", nil
	}
}

// cacheGet checks the memory tier, then the disk tier; a disk hit is
// promoted into memory so repeats stay at memory-hit cost.
func (s *Server) cacheGet(key string) ([]byte, bool) {
	if b, ok := s.store.Get(key); ok {
		return b, true
	}
	if s.disk == nil {
		return nil, false
	}
	b, ok := s.disk.Get(key)
	if ok {
		s.store.Put(key, b)
	}
	return b, ok
}

// EvalUnit resolves one already-normalized unit through the full cache →
// coalescing → pool stack and unmarshals the result. This is the embedding
// API the design-space search uses: it shares the server's store, disk
// tier, singleflight group and worker pool with HTTP traffic, so a search
// and a live /sweep client never run the same simulation twice.
func (s *Server) EvalUnit(ctx context.Context, u UnitConfig) (UnitResult, error) {
	u = s.applyDefaults(u).Normalized()
	if err := u.Validate(); err != nil {
		return UnitResult{}, err
	}
	data, _, err := s.serveUnit(ctx, u, u.Key())
	if err != nil {
		return UnitResult{}, err
	}
	var res UnitResult
	if err := json.Unmarshal(data, &res); err != nil {
		return UnitResult{}, fmt.Errorf("sweep: stored result for %s: %w", u.Key(), err)
	}
	return res, nil
}
