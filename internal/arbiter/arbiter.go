// Package arbiter implements the arbiter microarchitectures used as building
// blocks for the separable allocators of Becker & Dally (SC '09): round-robin
// arbiters, matrix arbiters, and the tree arbiters used to decompose the
// large P×V-input output-stage arbiters of VC allocators.
//
// All arbiters follow the two-phase protocol required for separable
// allocation with iSLIP-style fairness [McKeown '99]: Pick computes the
// combinational winner for a request vector without touching arbiter state,
// and Update advances the priority state only when the caller confirms that
// the pick was successful end-to-end. Updating unconditionally would allow
// traffic-pattern-dependent starvation (see §2.1 of the paper).
package arbiter

import (
	"fmt"

	"repro/internal/bitvec"
)

// Arbiter selects a single winner among a set of requesters.
type Arbiter interface {
	// Size returns the number of request inputs.
	Size() int
	// Pick returns the index of the winning request in req, or -1 if req is
	// empty. Pick is purely combinational: it must not modify arbiter state
	// and must return the same winner for the same request vector until
	// Update is called.
	Pick(req *bitvec.Vec) int
	// Update advances the priority state to reflect a successful grant to
	// winner. Callers invoke it only when the grant was accepted end-to-end.
	Update(winner int)
	// Reset restores the initial priority state.
	Reset()
}

// Kind names an arbiter implementation; it selects both functional behavior
// and the cost-model netlist.
type Kind int

const (
	// RoundRobin is a conventional round-robin arbiter built from a rotating
	// priority pointer and a thermometer-masked priority encoder.
	RoundRobin Kind = iota
	// Matrix is a matrix arbiter holding a triangular matrix of pairwise
	// priority flip-flops; it implements a least-recently-served policy.
	Matrix
)

// String returns the short name used in the paper's figure legends.
func (k Kind) String() string {
	switch k {
	case RoundRobin:
		return "rr"
	case Matrix:
		return "m"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// New constructs an arbiter of the given kind with n inputs.
func New(k Kind, n int) Arbiter {
	switch k {
	case RoundRobin:
		return NewRoundRobin(n)
	case Matrix:
		return NewMatrix(n)
	default:
		panic(fmt.Sprintf("arbiter: unknown kind %d", int(k)))
	}
}

// RoundRobinArbiter grants the first request at or after a rotating priority
// pointer. After a successful grant to input i, the pointer moves to i+1, so
// the just-served input becomes lowest priority.
type RoundRobinArbiter struct {
	n   int
	ptr int
}

// NewRoundRobin returns an n-input round-robin arbiter with priority
// initially at input 0.
func NewRoundRobin(n int) *RoundRobinArbiter {
	if n <= 0 {
		panic("arbiter: size must be positive")
	}
	return &RoundRobinArbiter{n: n}
}

// Size implements Arbiter.
func (a *RoundRobinArbiter) Size() int { return a.n }

// Pick implements Arbiter.
func (a *RoundRobinArbiter) Pick(req *bitvec.Vec) int {
	if req.Len() != a.n {
		panic(fmt.Sprintf("arbiter: request width %d, arbiter width %d", req.Len(), a.n))
	}
	return req.NextFrom(a.ptr)
}

// Update implements Arbiter.
func (a *RoundRobinArbiter) Update(winner int) {
	if winner < 0 || winner >= a.n {
		panic(fmt.Sprintf("arbiter: winner %d out of range [0,%d)", winner, a.n))
	}
	// winner+1 <= n after the range check, so a conditional reset beats the
	// hardware divide a % would cost on this per-grant path.
	a.ptr = winner + 1
	if a.ptr == a.n {
		a.ptr = 0
	}
}

// Reset implements Arbiter.
func (a *RoundRobinArbiter) Reset() { a.ptr = 0 }

// MatrixArbiter implements Tamir & Chi's matrix arbiter: the priority state
// says, for every ordered pair, whether input i beats input j. The winner is
// the requesting input that beats every other requesting input; on Update the
// winner's rows/columns are flipped so it becomes lowest priority against
// everyone (least-recently-served).
//
// The state is held as one bit vector per input (beats[i] = the set of
// inputs i currently beats), so the winner test "does i beat every other
// requester" is a word-parallel req &^ beats[i] instead of a per-bit scan.
type MatrixArbiter struct {
	n     int
	beats []*bitvec.Vec // beats[i].Get(j): i beats j; only i != j meaningful
	loses *bitvec.Vec   // scratch: requesters i does not beat
}

// NewMatrix returns an n-input matrix arbiter with initial priority order
// 0 > 1 > ... > n-1.
func NewMatrix(n int) *MatrixArbiter {
	if n <= 0 {
		panic("arbiter: size must be positive")
	}
	a := &MatrixArbiter{n: n, beats: make([]*bitvec.Vec, n), loses: bitvec.New(n)}
	for i := range a.beats {
		a.beats[i] = bitvec.New(n)
	}
	a.Reset()
	return a
}

// Size implements Arbiter.
func (a *MatrixArbiter) Size() int { return a.n }

// Beats reports the priority state bit "input i beats input j"; meaningful
// only for i != j. Exposed for invariant tests.
func (a *MatrixArbiter) Beats(i, j int) bool { return a.beats[i].Get(j) }

// Pick implements Arbiter.
func (a *MatrixArbiter) Pick(req *bitvec.Vec) int {
	if req.Len() != a.n {
		panic(fmt.Sprintf("arbiter: request width %d, arbiter width %d", req.Len(), a.n))
	}
	for i := req.NextSet(0); i >= 0; i = req.NextSet(i + 1) {
		// i wins when the requesters it fails to beat are exactly {i}
		// (the diagonal bit is never set, so i always survives the mask).
		if !a.loses.AndNotInto(req, a.beats[i]) {
			return i // unreachable for a valid tournament, kept for safety
		}
		if a.loses.Count() == 1 {
			return i
		}
	}
	return -1
}

// Update implements Arbiter.
func (a *MatrixArbiter) Update(winner int) {
	if winner < 0 || winner >= a.n {
		panic(fmt.Sprintf("arbiter: winner %d out of range [0,%d)", winner, a.n))
	}
	for j := 0; j < a.n; j++ {
		if j == winner {
			continue
		}
		a.beats[winner].Clear(j) // winner now loses to everyone
		a.beats[j].Set(winner)   // everyone now beats winner
	}
}

// Reset implements Arbiter.
func (a *MatrixArbiter) Reset() {
	for i, b := range a.beats {
		b.Reset()
		for j := i + 1; j < a.n; j++ {
			b.Set(j)
		}
	}
}

// TreeArbiter decomposes a (groups×groupSize)-input arbitration into
// groupSize-input leaf arbiters operating in parallel with a groups-input
// root arbiter that selects among them, as described in §4.1 of the paper
// for the output-stage P×V:1 arbiters of separable VC allocators. Input i
// belongs to group i/groupSize.
type TreeArbiter struct {
	groups    int
	groupSize int
	size      int // groups * groupSize, cached for the per-Pick width check
	leaves    []Arbiter
	root      Arbiter

	// scratch
	leafReq *bitvec.Vec
	rootReq *bitvec.Vec
}

// NewTree returns a tree arbiter over groups*groupSize inputs with the leaf
// and root arbiters built from the given kind.
func NewTree(k Kind, groups, groupSize int) *TreeArbiter {
	if groups <= 0 || groupSize <= 0 {
		panic("arbiter: tree dimensions must be positive")
	}
	t := &TreeArbiter{
		groups:    groups,
		groupSize: groupSize,
		size:      groups * groupSize,
		leaves:    make([]Arbiter, groups),
		root:      New(k, groups),
		leafReq:   bitvec.New(groupSize),
		rootReq:   bitvec.New(groups),
	}
	for g := range t.leaves {
		t.leaves[g] = New(k, groupSize)
	}
	return t
}

// Size implements Arbiter.
func (t *TreeArbiter) Size() int { return t.size }

// Pick implements Arbiter. The winner is the leaf winner of the root-winning
// group, matching the RTL structure where the root arbiter selects among
// per-group any-request signals.
func (t *TreeArbiter) Pick(req *bitvec.Vec) int {
	if req.Len() != t.Size() {
		panic(fmt.Sprintf("arbiter: request width %d, arbiter width %d", req.Len(), t.Size()))
	}
	// Degenerate tree (groupSize 1): the root sees the request vector
	// unchanged and the width-1 leaves cannot alter the pick, so skip the
	// per-group gather and its divides entirely.
	if t.groupSize == 1 {
		return t.root.Pick(req)
	}
	t.rootReq.Reset()
	// One word scan over the set bits: each hit marks its group and jumps
	// straight to the next group boundary.
	for b := req.NextSet(0); b >= 0; {
		g := b / t.groupSize
		t.rootReq.Set(g)
		b = req.NextSet((g + 1) * t.groupSize)
	}
	g := t.root.Pick(t.rootReq)
	if g < 0 {
		return -1
	}
	t.leafReq.SliceFrom(req, g*t.groupSize)
	w := t.leaves[g].Pick(t.leafReq)
	if w < 0 {
		return -1
	}
	return g*t.groupSize + w
}

// Update implements Arbiter, advancing both the root and the winning leaf.
func (t *TreeArbiter) Update(winner int) {
	if winner < 0 || winner >= t.Size() {
		panic(fmt.Sprintf("arbiter: winner %d out of range [0,%d)", winner, t.Size()))
	}
	if t.groupSize == 1 {
		t.root.Update(winner)
		t.leaves[winner].Update(0)
		return
	}
	g := winner / t.groupSize
	t.root.Update(g)
	t.leaves[g].Update(winner % t.groupSize)
}

// Reset implements Arbiter.
func (t *TreeArbiter) Reset() {
	t.root.Reset()
	for _, l := range t.leaves {
		l.Reset()
	}
}
