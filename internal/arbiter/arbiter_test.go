package arbiter

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/xrand"
)

func allKinds() []Kind { return []Kind{RoundRobin, Matrix} }

func vec(bits ...int) *bitvec.Vec {
	max := 0
	for _, b := range bits {
		if b >= max {
			max = b + 1
		}
	}
	v := bitvec.New(max)
	for _, b := range bits {
		v.Set(b)
	}
	return v
}

func vecN(n int, bits ...int) *bitvec.Vec {
	v := bitvec.New(n)
	for _, b := range bits {
		v.Set(b)
	}
	return v
}

func TestKindString(t *testing.T) {
	if RoundRobin.String() != "rr" || Matrix.String() != "m" {
		t.Fatal("Kind names must match paper legends")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Kind(99), 4)
}

func TestPickEmptyReturnsMinusOne(t *testing.T) {
	for _, k := range allKinds() {
		a := New(k, 8)
		if got := a.Pick(bitvec.New(8)); got != -1 {
			t.Errorf("%v: Pick(empty) = %d, want -1", k, got)
		}
	}
}

func TestPickSingleRequest(t *testing.T) {
	for _, k := range allKinds() {
		a := New(k, 8)
		for i := 0; i < 8; i++ {
			if got := a.Pick(vecN(8, i)); got != i {
				t.Errorf("%v: sole requester %d not granted (got %d)", k, i, got)
			}
		}
	}
}

func TestPickIsStatelessUntilUpdate(t *testing.T) {
	for _, k := range allKinds() {
		a := New(k, 8)
		r := vecN(8, 2, 5, 7)
		w1 := a.Pick(r)
		w2 := a.Pick(r)
		if w1 != w2 {
			t.Errorf("%v: Pick changed winner without Update: %d then %d", k, w1, w2)
		}
	}
}

func TestRoundRobinRotation(t *testing.T) {
	a := NewRoundRobin(4)
	all := vecN(4, 0, 1, 2, 3)
	want := []int{0, 1, 2, 3, 0, 1}
	for i, w := range want {
		got := a.Pick(all)
		if got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
		a.Update(got)
	}
}

func TestRoundRobinSkipsNonRequesting(t *testing.T) {
	a := NewRoundRobin(4)
	a.Update(0) // priority now at 1
	if got := a.Pick(vecN(4, 0, 3)); got != 3 {
		t.Fatalf("got %d, want 3 (first requester at/after pointer)", got)
	}
}

func TestMatrixLeastRecentlyServed(t *testing.T) {
	a := NewMatrix(3)
	all := vecN(3, 0, 1, 2)
	// initial order 0>1>2
	if w := a.Pick(all); w != 0 {
		t.Fatalf("want 0 first, got %d", w)
	}
	a.Update(0)
	if w := a.Pick(all); w != 1 {
		t.Fatalf("want 1 second, got %d", w)
	}
	a.Update(1)
	if w := a.Pick(all); w != 2 {
		t.Fatalf("want 2 third, got %d", w)
	}
	a.Update(2)
	if w := a.Pick(all); w != 0 {
		t.Fatalf("want 0 again, got %d", w)
	}
	// LRS beyond simple rotation: serve 0, then 0 and 2 request; 2 was
	// served longer ago than... both 1 and 2 unserved; after Update(0),
	// order is 1>2>0; request {0,2} should pick 2.
	a.Reset()
	a.Update(0)
	if w := a.Pick(vecN(3, 0, 2)); w != 2 {
		t.Fatalf("LRS pick: got %d, want 2", w)
	}
}

func TestConditionalUpdatePreservesWinner(t *testing.T) {
	// Without Update, the same input keeps winning — this is the hook the
	// separable allocators rely on for iSLIP-style fairness.
	for _, k := range allKinds() {
		a := New(k, 5)
		r := vecN(5, 1, 3)
		w := a.Pick(r)
		for i := 0; i < 5; i++ {
			if a.Pick(r) != w {
				t.Errorf("%v: winner drifted without Update", k)
			}
		}
	}
}

func TestUpdateOutOfRangePanics(t *testing.T) {
	for _, k := range allKinds() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: expected panic", k)
				}
			}()
			New(k, 4).Update(4)
		}()
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	for _, k := range allKinds() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: expected panic", k)
				}
			}()
			New(k, 4).Pick(bitvec.New(5))
		}()
	}
}

func TestResetRestoresInitialOrder(t *testing.T) {
	for _, k := range allKinds() {
		a := New(k, 4)
		all := vecN(4, 0, 1, 2, 3)
		first := a.Pick(all)
		a.Update(first)
		a.Update(a.Pick(all))
		a.Reset()
		if got := a.Pick(all); got != first {
			t.Errorf("%v: Reset did not restore initial winner (got %d, want %d)", k, got, first)
		}
	}
}

// Property: the winner is always a requesting input.
func TestQuickWinnerRequests(t *testing.T) {
	for _, k := range allKinds() {
		a := New(k, 16)
		f := func(reqBits uint16, updates uint8) bool {
			r := bitvec.New(16)
			for i := 0; i < 16; i++ {
				if reqBits&(1<<i) != 0 {
					r.Set(i)
				}
			}
			w := a.Pick(r)
			if !r.Any() {
				return w == -1
			}
			if w < 0 || !r.Get(w) {
				return false
			}
			if updates%2 == 0 {
				a.Update(w)
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

// Fairness: under persistent full load with Update after every grant, every
// input is served the same number of times over a full rotation multiple.
func TestFairnessUnderFullLoad(t *testing.T) {
	for _, k := range allKinds() {
		a := New(k, 6)
		all := bitvec.New(6)
		for i := 0; i < 6; i++ {
			all.Set(i)
		}
		counts := make([]int, 6)
		for i := 0; i < 6*50; i++ {
			w := a.Pick(all)
			counts[w]++
			a.Update(w)
		}
		for i, c := range counts {
			if c != 50 {
				t.Errorf("%v: input %d served %d times, want 50", k, i, c)
			}
		}
	}
}

// Fairness: under random load, no requester starves: any persistent
// requester is served within Size grants.
func TestNoStarvation(t *testing.T) {
	for _, k := range allKinds() {
		a := New(k, 8)
		rng := xrand.New(99)
		// input 3 always requests; others randomly.
		sinceServed := 0
		for step := 0; step < 2000; step++ {
			r := bitvec.New(8)
			r.Set(3)
			for i := 0; i < 8; i++ {
				if i != 3 && rng.Bool(0.7) {
					r.Set(i)
				}
			}
			w := a.Pick(r)
			a.Update(w)
			if w == 3 {
				sinceServed = 0
			} else {
				sinceServed++
				if sinceServed > 8 {
					t.Fatalf("%v: persistent requester starved for %d grants", k, sinceServed)
				}
			}
		}
	}
}

func TestTreeArbiterBasics(t *testing.T) {
	tr := NewTree(RoundRobin, 3, 4) // 12 inputs
	if tr.Size() != 12 {
		t.Fatalf("Size = %d, want 12", tr.Size())
	}
	if got := tr.Pick(bitvec.New(12)); got != -1 {
		t.Fatalf("Pick(empty) = %d, want -1", got)
	}
	// single request in group 2
	if got := tr.Pick(vecN(12, 9)); got != 9 {
		t.Fatalf("got %d, want 9", got)
	}
}

func TestTreeArbiterWinnerRequests(t *testing.T) {
	tr := NewTree(Matrix, 4, 4)
	rng := xrand.New(5)
	for step := 0; step < 500; step++ {
		r := bitvec.New(16)
		for i := 0; i < 16; i++ {
			if rng.Bool(0.3) {
				r.Set(i)
			}
		}
		w := tr.Pick(r)
		if !r.Any() {
			if w != -1 {
				t.Fatal("empty request must yield -1")
			}
			continue
		}
		if w < 0 || !r.Get(w) {
			t.Fatalf("winner %d not a requester", w)
		}
		tr.Update(w)
	}
}

func TestTreeArbiterGroupFairness(t *testing.T) {
	tr := NewTree(RoundRobin, 2, 2)
	all := vecN(4, 0, 1, 2, 3)
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		w := tr.Pick(all)
		counts[w]++
		tr.Update(w)
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("input %d served %d, want 100", i, c)
		}
	}
}

func TestTreeArbiterReset(t *testing.T) {
	tr := NewTree(RoundRobin, 2, 2)
	all := vecN(4, 0, 1, 2, 3)
	first := tr.Pick(all)
	tr.Update(first)
	tr.Reset()
	if got := tr.Pick(all); got != first {
		t.Fatalf("Reset did not restore state: got %d, want %d", got, first)
	}
}

func TestTreeArbiterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad dimensions")
		}
	}()
	NewTree(RoundRobin, 0, 4)
}

func TestVecHelpersInTests(t *testing.T) {
	// sanity for the local test helpers themselves
	v := vec(0, 2)
	if v.Len() != 3 || !v.Get(0) || v.Get(1) || !v.Get(2) {
		t.Fatal("vec helper broken")
	}
}

func BenchmarkRoundRobinPick64(b *testing.B) {
	a := NewRoundRobin(64)
	r := bitvec.New(64)
	for i := 0; i < 64; i += 3 {
		r.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := a.Pick(r)
		a.Update(w)
	}
}

func BenchmarkMatrixPick64(b *testing.B) {
	a := NewMatrix(64)
	r := bitvec.New(64)
	for i := 0; i < 64; i += 3 {
		r.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := a.Pick(r)
		a.Update(w)
	}
}

// Property: the matrix arbiter's priority matrix always encodes a
// tournament (exactly one of "i beats j" / "j beats i" for i != j), so a
// unique winner exists for every non-empty request set.
func TestQuickMatrixTournamentInvariant(t *testing.T) {
	a := NewMatrix(6)
	rng := xrand.New(771)
	check := func() {
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				if i == j {
					continue
				}
				if a.Beats(i, j) == a.Beats(j, i) {
					t.Fatalf("tournament violated at (%d,%d)", i, j)
				}
			}
		}
	}
	check()
	for step := 0; step < 500; step++ {
		r := bitvec.New(6)
		for i := 0; i < 6; i++ {
			if rng.Bool(0.5) {
				r.Set(i)
			}
		}
		if w := a.Pick(r); w >= 0 {
			a.Update(w)
		}
		check()
	}
}

// Property: a matrix arbiter's winner is unique — no two requesting inputs
// can simultaneously beat all other requesters.
func TestQuickMatrixWinnerUnique(t *testing.T) {
	a := NewMatrix(8)
	rng := xrand.New(773)
	for step := 0; step < 500; step++ {
		r := bitvec.New(8)
		for i := 0; i < 8; i++ {
			if rng.Bool(0.6) {
				r.Set(i)
			}
		}
		winners := 0
		r.ForEach(func(i int) {
			ok := true
			r.ForEach(func(j int) {
				if i != j && !a.Beats(i, j) {
					ok = false
				}
			})
			if ok {
				winners++
			}
		})
		if r.Any() && winners != 1 {
			t.Fatalf("step %d: %d winners for %s", step, winners, r)
		}
		if w := a.Pick(r); w >= 0 && step%3 == 0 {
			a.Update(w)
		}
	}
}
