package quality

import (
	"runtime"
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/core"
)

func seriesEqual(t *testing.T, label string, a, b []Series) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d series vs %d", label, len(a), len(b))
	}
	for k := range a {
		if a[k].Name != b[k].Name {
			t.Fatalf("%s: series %d name %q vs %q", label, k, a[k].Name, b[k].Name)
		}
		if len(a[k].Points) != len(b[k].Points) {
			t.Fatalf("%s: series %q has %d vs %d points", label, a[k].Name, len(a[k].Points), len(b[k].Points))
		}
		for i := range a[k].Points {
			if a[k].Points[i] != b[k].Points[i] {
				t.Fatalf("%s: series %q point %d differs: %+v vs %+v",
					label, a[k].Name, i, a[k].Points[i], b[k].Points[i])
			}
		}
	}
}

// TestVCSeriesMultiWorkerInvariance pins the harness contract: results are
// bit-identical for any worker count and match sequential per-config runs.
func TestVCSeriesMultiWorkerInvariance(t *testing.T) {
	spec := core.NewVCSpec(2, 1, 2)
	var cfgs []core.VCAllocConfig
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		cfgs = append(cfgs, core.VCAllocConfig{Ports: 5, Spec: spec, Arch: arch, ArbKind: arbiter.RoundRobin})
	}
	rates := []float64{0.3, 0.7, 1.0}
	const trials, seed = 100, 42

	base := VCSeriesMulti(cfgs, rates, trials, seed, 1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := VCSeriesMulti(cfgs, rates, trials, seed, workers)
		seriesEqual(t, "vc workers", base, got)
	}
	// Sequential single-config runs must agree point for point.
	for k, cfg := range cfgs {
		seq := VCSeries(cfg, rates, trials, seed)
		seriesEqual(t, "vc sequential", []Series{base[k]}, []Series{seq})
	}
}

// TestSwitchSeriesMultiWorkerInvariance is the switch-allocation analogue.
func TestSwitchSeriesMultiWorkerInvariance(t *testing.T) {
	var cfgs []core.SwitchAllocConfig
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		cfgs = append(cfgs, core.SwitchAllocConfig{Ports: 5, VCs: 4, Arch: arch, ArbKind: arbiter.RoundRobin})
	}
	rates := []float64{0.3, 0.7, 1.0}
	const trials, seed = 100, 42

	base := SwitchSeriesMulti(cfgs, rates, trials, seed, 1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := SwitchSeriesMulti(cfgs, rates, trials, seed, workers)
		seriesEqual(t, "sw workers", base, got)
	}
	for k, cfg := range cfgs {
		seq := SwitchSeries(cfg, rates, trials, seed)
		seriesEqual(t, "sw sequential", []Series{base[k]}, []Series{seq})
	}
}
