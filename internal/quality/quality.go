// Package quality implements the open-loop matching-quality methodology of
// Becker & Dally (SC '09) §3.1: allocators are driven with sequences of
// pseudo-random request matrices at a configurable request rate, and the
// total number of grants is normalized against the number a maximum-size
// allocator produces for the same request sequence.
//
// The resulting rate→quality curves regenerate Fig. 7 (VC allocators) and
// Fig. 12 (switch allocators).
package quality

import (
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/xrand"
)

// Point is one sample of a quality curve.
type Point struct {
	// Rate is the request probability per input VC per cycle (the paper's
	// "requests per VC per cycle").
	Rate float64
	// Quality is total grants divided by the maximum-size allocator's
	// grants for the same request sequence; 1.0 is ideal.
	Quality float64
	// Grants and MaxGrants are the raw totals behind Quality.
	Grants, MaxGrants int
}

// Series is a named quality curve.
type Series struct {
	Name   string
	Points []Point
}

// DefaultRates returns the request-rate sweep used in the paper's figures
// (0 < rate <= 1).
func DefaultRates() []float64 {
	rates := make([]float64, 20)
	for i := range rates {
		rates[i] = float64(i+1) * 0.05
	}
	return rates
}

// VCWorkload generates random, legal VC-allocation request sets: each input
// VC requests with the given probability, targeting a uniformly random
// output port and a uniformly random legal successor class (all VCs within
// the class, per §4.2).
type VCWorkload struct {
	Ports int
	Spec  core.VCSpec

	rng        *xrand.Source
	classMasks []*bitvec.Vec // per (m, r) class
	reqs       []core.VCRequest
}

// NewVCWorkload builds a workload generator seeded deterministically.
func NewVCWorkload(ports int, spec core.VCSpec, seed uint64) *VCWorkload {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if spec.ResourceSucc == nil {
		spec.ResourceSucc = core.DefaultSuccessors(spec.ResourceClasses)
	}
	w := &VCWorkload{
		Ports: ports,
		Spec:  spec,
		rng:   xrand.New(seed),
		reqs:  make([]core.VCRequest, ports*spec.V()),
	}
	for m := 0; m < spec.MessageClasses; m++ {
		for r := 0; r < spec.ResourceClasses; r++ {
			w.classMasks = append(w.classMasks, spec.ClassMask(m, r))
		}
	}
	return w
}

// Next generates the next request set at the given rate. The returned slice
// is reused across calls.
func (w *VCWorkload) Next(rate float64) []core.VCRequest {
	v := w.Spec.V()
	for port := 0; port < w.Ports; port++ {
		for vc := 0; vc < v; vc++ {
			i := port*v + vc
			if !w.rng.Bool(rate) {
				w.reqs[i] = core.VCRequest{}
				continue
			}
			m, r, _ := w.Spec.Decompose(vc)
			succ := w.Spec.ResourceSucc[r]
			nr := succ[w.rng.Intn(len(succ))]
			w.reqs[i] = core.VCRequest{
				Active:     true,
				OutPort:    w.rng.Intn(w.Ports),
				Candidates: w.classMasks[w.Spec.ClassIndex(m, nr)],
			}
		}
	}
	return w.reqs
}

// Matrix writes the bipartite request matrix equivalent of reqs into m
// (rows: input VCs, cols: output VCs across all ports) for maximum-size
// normalization.
func (w *VCWorkload) Matrix(reqs []core.VCRequest, m *bitvec.Matrix) {
	v := w.Spec.V()
	m.Reset()
	for i, r := range reqs {
		if !r.Active {
			continue
		}
		base := r.OutPort * v
		r.Candidates.ForEach(func(c int) { m.Set(i, base+c) })
	}
}

// VCSeries measures the matching quality of the VC allocator configuration
// over the given rates, using trials request matrices per rate (the paper
// uses 10000).
func VCSeries(cfg core.VCAllocConfig, rates []float64, trials int, seed uint64) Series {
	return VCSeriesMulti([]core.VCAllocConfig{cfg}, rates, trials, seed, 1)[0]
}

// VCSeriesMulti measures several VC allocator configurations sharing one
// design point (Ports and Spec) over the given rates, sweeping up to
// `workers` rate points concurrently. Each rate point is an independent
// task: the workload re-seeds per rate so every point sees an identical
// request stream, and every allocator starts from its reset state, so the
// output is bit-identical to sequential per-config VCSeries calls for any
// worker count. Within a task the workload and the maximum-size reference
// are generated once and shared across all configurations.
func VCSeriesMulti(cfgs []core.VCAllocConfig, rates []float64, trials int, seed uint64, workers int) []Series {
	if len(cfgs) == 0 {
		return nil
	}
	p, v := cfgs[0].Ports, cfgs[0].Spec.V()
	for _, cfg := range cfgs {
		if cfg.Ports != p || cfg.Spec.V() != v {
			panic("quality: VCSeriesMulti configs must share Ports and Spec")
		}
	}
	out := make([]Series, len(cfgs))
	for k, cfg := range cfgs {
		out[k] = Series{Name: core.NewVCAllocator(cfg).Name(), Points: make([]Point, len(rates))}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(rates) {
		workers = len(rates)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ri, rate := range rates {
		ri, rate := ri, rate
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// Fresh per-task instances: allocator construction is equivalent
			// to the per-rate Reset of the sequential code.
			allocs := make([]core.VCAllocator, len(cfgs))
			for k, cfg := range cfgs {
				allocs[k] = core.NewVCAllocator(cfg)
			}
			max := alloc.NewMaximum(p*v, p*v)
			reqMat := bitvec.NewMatrix(p*v, p*v)
			w := NewVCWorkload(p, cfgs[0].Spec, seed)
			grants := make([]int, len(cfgs))
			maxGrants := 0
			for trial := 0; trial < trials; trial++ {
				reqs := w.Next(rate)
				for k, a := range allocs {
					for _, g := range a.Allocate(reqs) {
						if g >= 0 {
							grants[k]++
						}
					}
				}
				w.Matrix(reqs, reqMat)
				maxGrants += max.Allocate(reqMat).Count()
			}
			for k := range cfgs {
				out[k].Points[ri] = Point{Rate: rate, Quality: quality(grants[k], maxGrants),
					Grants: grants[k], MaxGrants: maxGrants}
			}
		}()
	}
	wg.Wait()
	return out
}

// SwitchWorkload generates random switch-allocation request sets: each input
// VC requests a uniformly random output port with the given probability.
type SwitchWorkload struct {
	Ports, VCs int
	rng        *xrand.Source
	reqs       []core.SwitchRequest
}

// NewSwitchWorkload builds a workload generator seeded deterministically.
func NewSwitchWorkload(ports, vcs int, seed uint64) *SwitchWorkload {
	return &SwitchWorkload{
		Ports: ports,
		VCs:   vcs,
		rng:   xrand.New(seed),
		reqs:  make([]core.SwitchRequest, ports*vcs),
	}
}

// Next generates the next request set at the given rate. The returned slice
// is reused across calls.
func (w *SwitchWorkload) Next(rate float64) []core.SwitchRequest {
	for i := range w.reqs {
		if w.rng.Bool(rate) {
			w.reqs[i] = core.SwitchRequest{Active: true, OutPort: w.rng.Intn(w.Ports)}
		} else {
			w.reqs[i] = core.SwitchRequest{}
		}
	}
	return w.reqs
}

// Matrix writes the port-level request matrix (rows: input ports, cols:
// output ports) for maximum-size normalization. Switch allocation grants at
// most one flit per input port, so the reference is a P×P matching.
func (w *SwitchWorkload) Matrix(reqs []core.SwitchRequest, m *bitvec.Matrix) {
	m.Reset()
	for i, r := range reqs {
		if r.Active {
			m.Set(i/w.VCs, r.OutPort)
		}
	}
}

// SwitchSeries measures the matching quality of the switch allocator
// configuration over the given rates.
func SwitchSeries(cfg core.SwitchAllocConfig, rates []float64, trials int, seed uint64) Series {
	return SwitchSeriesMulti([]core.SwitchAllocConfig{cfg}, rates, trials, seed, 1)[0]
}

// SwitchSeriesMulti is the switch-allocation analogue of VCSeriesMulti:
// several configurations sharing one (Ports, VCs) point, swept over up to
// `workers` concurrent rate points, with the workload and the maximum-size
// reference shared per task. Quality is measured on the base allocator, so
// SpecMode is forced to SpecNone. Output is bit-identical to sequential
// per-config SwitchSeries calls for any worker count.
func SwitchSeriesMulti(cfgs []core.SwitchAllocConfig, rates []float64, trials int, seed uint64, workers int) []Series {
	if len(cfgs) == 0 {
		return nil
	}
	cfgs = append([]core.SwitchAllocConfig(nil), cfgs...) // SpecMode is forced below
	p, v := cfgs[0].Ports, cfgs[0].VCs
	out := make([]Series, len(cfgs))
	for k := range cfgs {
		if cfgs[k].Ports != p || cfgs[k].VCs != v {
			panic("quality: SwitchSeriesMulti configs must share Ports and VCs")
		}
		cfgs[k].SpecMode = core.SpecNone // quality is measured on the base allocator
		out[k] = Series{Name: core.NewSwitchAllocator(cfgs[k]).Name(), Points: make([]Point, len(rates))}
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(rates) {
		workers = len(rates)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ri, rate := range rates {
		ri, rate := ri, rate
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			allocs := make([]core.SwitchAllocator, len(cfgs))
			for k := range cfgs {
				allocs[k] = core.NewSwitchAllocator(cfgs[k])
			}
			max := alloc.NewMaximum(p, p)
			reqMat := bitvec.NewMatrix(p, p)
			w := NewSwitchWorkload(p, v, seed)
			grants := make([]int, len(cfgs))
			maxGrants := 0
			for trial := 0; trial < trials; trial++ {
				reqs := w.Next(rate)
				for k, a := range allocs {
					for _, g := range a.Allocate(reqs) {
						if g.OutPort >= 0 {
							grants[k]++
						}
					}
				}
				w.Matrix(reqs, reqMat)
				maxGrants += max.Allocate(reqMat).Count()
			}
			for k := range cfgs {
				out[k].Points[ri] = Point{Rate: rate, Quality: quality(grants[k], maxGrants),
					Grants: grants[k], MaxGrants: maxGrants}
			}
		}()
	}
	wg.Wait()
	return out
}

func quality(grants, maxGrants int) float64 {
	if maxGrants == 0 {
		return 1
	}
	q := float64(grants) / float64(maxGrants)
	return q
}

// MinQuality returns the lowest quality sample in the series.
func (s Series) MinQuality() float64 {
	min := 1.0
	for _, p := range s.Points {
		if p.Quality < min {
			min = p.Quality
		}
	}
	return min
}

// QualityAt returns the quality at the sample closest to rate.
func (s Series) QualityAt(rate float64) float64 {
	if len(s.Points) == 0 {
		panic("quality: empty series")
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if abs(p.Rate-rate) < abs(best.Rate-rate) {
			best = p
		}
	}
	return best.Quality
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FormatSeries renders series as a fixed-width table, one row per rate,
// matching the layout used by cmd/matchquality.
func FormatSeries(series []Series) string {
	if len(series) == 0 {
		return ""
	}
	out := "rate"
	for _, s := range series {
		out += fmt.Sprintf("\t%s", s.Name)
	}
	out += "\n"
	for i, p := range series[0].Points {
		out += fmt.Sprintf("%.2f", p.Rate)
		for _, s := range series {
			out += fmt.Sprintf("\t%.4f", s.Points[i].Quality)
		}
		out += "\n"
	}
	return out
}
