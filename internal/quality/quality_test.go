package quality

import (
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/bitvec"
	"repro/internal/core"
)

const testTrials = 400

func vcCfg(p int, spec core.VCSpec, arch alloc.Arch) core.VCAllocConfig {
	return core.VCAllocConfig{Ports: p, Spec: spec, Arch: arch, ArbKind: arbiter.RoundRobin}
}

func swCfg(p, v int, arch alloc.Arch) core.SwitchAllocConfig {
	return core.SwitchAllocConfig{Ports: p, VCs: v, Arch: arch, ArbKind: arbiter.RoundRobin}
}

func TestDefaultRates(t *testing.T) {
	rates := DefaultRates()
	if len(rates) != 20 || rates[0] != 0.05 || rates[19] != 1.0 {
		t.Fatalf("unexpected default rates: %v", rates)
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			t.Fatal("rates must be increasing")
		}
	}
}

func TestVCWorkloadLegality(t *testing.T) {
	spec := core.NewVCSpec(2, 2, 2)
	w := NewVCWorkload(5, spec, 7)
	v := spec.V()
	for trial := 0; trial < 50; trial++ {
		reqs := w.Next(0.5)
		for i, r := range reqs {
			if !r.Active {
				continue
			}
			if r.OutPort < 0 || r.OutPort >= 5 {
				t.Fatalf("bad out port %d", r.OutPort)
			}
			vc := i % v
			sm := spec.SuccessorMask(vc)
			ok := true
			r.Candidates.ForEach(func(c int) {
				if !sm.Get(c) {
					ok = false
				}
			})
			if !ok {
				t.Fatalf("workload produced illegal candidate set for VC %d", vc)
			}
		}
	}
}

func TestVCWorkloadRate(t *testing.T) {
	spec := core.NewVCSpec(2, 1, 2)
	w := NewVCWorkload(5, spec, 11)
	active := 0
	total := 0
	for trial := 0; trial < 500; trial++ {
		for _, r := range w.Next(0.3) {
			total++
			if r.Active {
				active++
			}
		}
	}
	rate := float64(active) / float64(total)
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("empirical request rate %.3f, want ~0.30", rate)
	}
}

func TestVCWorkloadDeterministic(t *testing.T) {
	spec := core.NewVCSpec(2, 1, 2)
	a := NewVCWorkload(5, spec, 3)
	b := NewVCWorkload(5, spec, 3)
	for trial := 0; trial < 20; trial++ {
		ra := a.Next(0.5)
		rb := b.Next(0.5)
		for i := range ra {
			if ra[i].Active != rb[i].Active || ra[i].OutPort != rb[i].OutPort {
				t.Fatal("same seed must give same workload")
			}
		}
	}
}

func TestVCMatrixMatchesRequests(t *testing.T) {
	spec := core.NewVCSpec(2, 1, 2)
	w := NewVCWorkload(5, spec, 13)
	v := spec.V()
	m := bitvec.NewMatrix(5*v, 5*v)
	reqs := w.Next(0.5)
	w.Matrix(reqs, m)
	for i, r := range reqs {
		rowCount := m.Row(i).Count()
		if !r.Active {
			if rowCount != 0 {
				t.Fatalf("inactive input %d has matrix entries", i)
			}
			continue
		}
		if rowCount != r.Candidates.Count() {
			t.Fatalf("input %d: matrix row %d entries, want %d", i, rowCount, r.Candidates.Count())
		}
	}
}

func TestFig7SingleVCPerClassQualityOne(t *testing.T) {
	// Fig. 7(a)/(d): with one VC per class every allocator has constant
	// quality 1 at all rates.
	for _, pt := range []struct {
		p    int
		spec core.VCSpec
	}{{5, core.NewVCSpec(2, 1, 1)}, {10, core.NewVCSpec(2, 2, 1)}} {
		for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
			s := VCSeries(vcCfg(pt.p, pt.spec, arch), []float64{0.2, 0.6, 1.0}, testTrials, 21)
			for _, p := range s.Points {
				if p.Quality != 1 {
					t.Errorf("%s %s rate %.1f: quality %.4f, want exactly 1",
						s.Name, pt.spec, p.Rate, p.Quality)
				}
			}
		}
	}
}

func TestFig7WavefrontQualityOne(t *testing.T) {
	// §4.3.2: "a wavefront-based VC allocator yields a matching quality of
	// 1 for all configurations".
	for _, pt := range []struct {
		p    int
		spec core.VCSpec
	}{{5, core.NewVCSpec(2, 1, 2)}, {5, core.NewVCSpec(2, 1, 4)}, {10, core.NewVCSpec(2, 2, 2)}} {
		s := VCSeries(vcCfg(pt.p, pt.spec, alloc.Wavefront), []float64{0.3, 0.7, 1.0}, testTrials, 23)
		for _, p := range s.Points {
			if p.Quality != 1 {
				t.Errorf("wf %s rate %.1f: quality %.4f, want 1", pt.spec, p.Rate, p.Quality)
			}
		}
	}
}

func TestFig7SeparableDegradesWithLoadAndVCs(t *testing.T) {
	// §4.3.2: separable quality decreases with higher injection rates and
	// more VCs per class; input-first stays above output-first.
	spec2 := core.NewVCSpec(2, 1, 2)
	spec4 := core.NewVCSpec(2, 1, 4)
	rates := []float64{0.2, 1.0}

	sif2 := VCSeries(vcCfg(5, spec2, alloc.SepIF), rates, testTrials, 29)
	sif4 := VCSeries(vcCfg(5, spec4, alloc.SepIF), rates, testTrials, 29)
	sof4 := VCSeries(vcCfg(5, spec4, alloc.SepOF), rates, testTrials, 29)

	if !(sif4.Points[1].Quality < sif4.Points[0].Quality) {
		t.Errorf("sep_if 2x1x4: quality should fall with rate: %v", sif4.Points)
	}
	if !(sif4.Points[1].Quality < sif2.Points[1].Quality) {
		t.Errorf("sep_if: quality at 4 VCs/class (%.4f) should be below 2 VCs/class (%.4f)",
			sif4.Points[1].Quality, sif2.Points[1].Quality)
	}
	if !(sif4.Points[1].Quality > sof4.Points[1].Quality) {
		t.Errorf("sep_if (%.4f) should beat sep_of (%.4f) under load",
			sif4.Points[1].Quality, sof4.Points[1].Quality)
	}
	if sof4.MinQuality() < 0.5 {
		t.Errorf("sep_of quality %.4f implausibly low", sof4.MinQuality())
	}
}

func TestFig12SwitchQualityShapes(t *testing.T) {
	// Fig. 12: at low load all allocators are near 1; under load wf stays
	// above sep_of, which stays above sep_if (which flattens out).
	p, v := 10, 8
	rates := []float64{0.05, 0.5, 1.0}
	wf := SwitchSeries(swCfg(p, v, alloc.Wavefront), rates, testTrials, 31)
	sof := SwitchSeries(swCfg(p, v, alloc.SepOF), rates, testTrials, 31)
	sif := SwitchSeries(swCfg(p, v, alloc.SepIF), rates, testTrials, 31)

	for _, s := range []Series{wf, sof, sif} {
		if s.Points[0].Quality < 0.95 {
			t.Errorf("%s: low-load quality %.4f should be near 1", s.Name, s.Points[0].Quality)
		}
	}
	if !(wf.Points[2].Quality > sof.Points[2].Quality) {
		t.Errorf("wf (%.4f) should beat sep_of (%.4f) at saturation",
			wf.Points[2].Quality, sof.Points[2].Quality)
	}
	if !(sof.Points[2].Quality > sif.Points[2].Quality) {
		t.Errorf("sep_of (%.4f) should beat sep_if (%.4f) at saturation",
			sof.Points[2].Quality, sif.Points[2].Quality)
	}
}

func TestFig12WavefrontDipAndRecover(t *testing.T) {
	// §5.3.2: wavefront quality initially decreases with rate, then rises
	// again as the maximum-size allocator hits its natural limit.
	p, v := 10, 16
	rates := []float64{0.05, 0.35, 1.0}
	wf := SwitchSeries(swCfg(p, v, alloc.Wavefront), rates, 600, 37)
	lo, mid, hi := wf.Points[0].Quality, wf.Points[1].Quality, wf.Points[2].Quality
	if !(mid < lo) {
		t.Errorf("wf quality should dip: low %.4f, mid %.4f", lo, mid)
	}
	if !(hi > mid) {
		t.Errorf("wf quality should recover at saturation: mid %.4f, high %.4f", mid, hi)
	}
}

func TestSeparableInputFirstFlattens(t *testing.T) {
	// §5.3.2: sep_if is limited to one request per input port in stage 2,
	// so its quality at saturation is markedly below wavefront for large
	// request matrices.
	p, v := 10, 16
	wf := SwitchSeries(swCfg(p, v, alloc.Wavefront), []float64{1.0}, 600, 41)
	sif := SwitchSeries(swCfg(p, v, alloc.SepIF), []float64{1.0}, 600, 41)
	gap := wf.Points[0].Quality - sif.Points[0].Quality
	if gap < 0.02 {
		t.Errorf("wf-sep_if saturation quality gap %.4f too small", gap)
	}
}

func TestSwitchSeriesForcesNonspec(t *testing.T) {
	cfg := swCfg(5, 2, alloc.SepIF)
	cfg.SpecMode = core.SpecGnt
	s := SwitchSeries(cfg, []float64{0.5}, 50, 1)
	if !strings.Contains(s.Name, "nonspec") {
		t.Fatalf("quality must be measured on the base allocator, got %q", s.Name)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{Rate: 0.2, Quality: 0.9}, {Rate: 0.8, Quality: 0.7}}}
	if s.MinQuality() != 0.7 {
		t.Errorf("MinQuality = %f", s.MinQuality())
	}
	if s.QualityAt(0.75) != 0.7 || s.QualityAt(0.1) != 0.9 {
		t.Error("QualityAt picked wrong sample")
	}
	out := FormatSeries([]Series{s})
	if !strings.Contains(out, "rate\tx") || !strings.Contains(out, "0.20\t0.9000") {
		t.Errorf("FormatSeries output unexpected:\n%s", out)
	}
	if FormatSeries(nil) != "" {
		t.Error("empty FormatSeries should be empty")
	}
}

func TestQualityAtEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Series{}.QualityAt(0.5)
}

func TestQualityNeverExceedsOne(t *testing.T) {
	// The maximum-size reference bounds every allocator.
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		s := VCSeries(vcCfg(5, core.NewVCSpec(2, 1, 4), arch), []float64{0.5, 1.0}, 200, 43)
		for _, p := range s.Points {
			if p.Quality > 1.0000001 {
				t.Errorf("%s: quality %.6f exceeds 1", s.Name, p.Quality)
			}
		}
		sw := SwitchSeries(swCfg(5, 4, arch), []float64{0.5, 1.0}, 200, 43)
		for _, p := range sw.Points {
			if p.Quality > 1.0000001 {
				t.Errorf("%s: switch quality %.6f exceeds 1", sw.Name, p.Quality)
			}
		}
	}
}

func BenchmarkVCQualityPoint(b *testing.B) {
	cfg := vcCfg(5, core.NewVCSpec(2, 1, 2), alloc.SepIF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VCSeries(cfg, []float64{0.5}, 100, 1)
	}
}
