package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/costmodel"
	"repro/internal/quality"
)

func TestPoints(t *testing.T) {
	pts := Points()
	if len(pts) != 6 {
		t.Fatalf("want 6 design points, got %d", len(pts))
	}
	if pts[0].String() != "mesh 2x1x1" || pts[5].String() != "fbfly 2x2x4" {
		t.Fatalf("unexpected point order: %v ... %v", pts[0], pts[5])
	}
	for _, p := range pts[:3] {
		if p.Ports != 5 {
			t.Errorf("mesh radix %d, want 5", p.Ports)
		}
	}
	for _, p := range pts[3:] {
		if p.Ports != 10 {
			t.Errorf("fbfly radix %d, want 10", p.Ports)
		}
	}
}

func TestPointByName(t *testing.T) {
	p, err := PointByName("fbfly", 2)
	if err != nil || p.String() != "fbfly 2x2x2" {
		t.Fatalf("PointByName: %v %v", p, err)
	}
	if _, err := PointByName("torus", 2); err == nil {
		t.Fatal("unknown topology should error")
	}
	if _, err := PointByName("mesh", 3); err == nil {
		t.Fatal("unknown VC count should error")
	}
}

func TestVariants(t *testing.T) {
	vs := Variants()
	if len(vs) != 5 {
		t.Fatalf("want 5 variants, got %d", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.String()] = true
	}
	for _, want := range []string{"sep_if/m", "sep_if/rr", "sep_of/m", "sep_of/rr", "wf/rr"} {
		if !names[want] {
			t.Errorf("missing variant %s", want)
		}
	}
}

func TestVCCostTableComplete(t *testing.T) {
	rows := VCCost(costmodel.Default45nm())
	if len(rows) != 6*5*2 {
		t.Fatalf("VC cost rows = %d, want 60", len(rows))
	}
	synth := 0
	for _, r := range rows {
		if r.Est.Synthesized {
			synth++
			if r.Est.DelayNS <= 0 || r.Est.AreaUM2 <= 0 || r.Est.PowerMW <= 0 {
				t.Fatalf("bad estimate for %v %v sparse=%v", r.Point, r.Variant, r.Sparse)
			}
		}
	}
	if synth < 30 {
		t.Fatalf("only %d/60 design points synthesized", synth)
	}
}

func TestSwitchCostTableComplete(t *testing.T) {
	rows := SwitchCost(costmodel.Default45nm())
	if len(rows) != 6*5*3 {
		t.Fatalf("switch cost rows = %d, want 90", len(rows))
	}
	for _, r := range rows {
		if !r.Est.Synthesized {
			t.Fatalf("switch allocator %v %v %v failed synthesis; all should fit", r.Point, r.Variant, r.Mode)
		}
	}
}

func TestSparseSavingsHeadline(t *testing.T) {
	d, a, p := SparseSavings(costmodel.Default45nm())
	t.Logf("sparse savings: delay %.0f%%, area %.0f%%, power %.0f%% (paper: 41/90/83)", d*100, a*100, p*100)
	if d < 0.20 || a < 0.60 || p < 0.50 {
		t.Fatalf("savings (%.2f, %.2f, %.2f) below floors", d, a, p)
	}
	if d > 0.60 || a > 0.95 || p > 0.95 {
		t.Fatalf("savings (%.2f, %.2f, %.2f) implausibly high", d, a, p)
	}
}

func TestPessimisticDelayHeadline(t *testing.T) {
	s, row := PessimisticDelaySaving(costmodel.Default45nm())
	t.Logf("max pessimistic delay saving %.0f%% at %s (paper: up to 23%%)", s*100, row)
	if s < 0.15 || s > 0.30 {
		t.Fatalf("pessimistic saving %.2f outside [0.15, 0.30]", s)
	}
	// The paper attributes its 23% maximum to the wavefront allocator; our
	// model's wavefront maximum must land in the same band even if a
	// low-delay sep_if/m point edges it out globally.
	rows := SwitchCost(costmodel.Default45nm())
	wfBest := 0.0
	for _, pt := range Points() {
		var pr, cg float64
		for _, r := range rows {
			if r.Point.String() == pt.String() && r.Variant.String() == "wf/rr" {
				switch r.Mode.String() {
				case "spec_req":
					pr = r.Est.DelayNS
				case "spec_gnt":
					cg = r.Est.DelayNS
				}
			}
		}
		if cg > 0 {
			if s := 1 - pr/cg; s > wfBest {
				wfBest = s
			}
		}
	}
	if wfBest < 0.15 || wfBest > 0.30 {
		t.Errorf("wavefront pessimistic saving %.2f outside [0.15, 0.30]", wfBest)
	}
}

func TestVCQualitySeries(t *testing.T) {
	pt, _ := PointByName("mesh", 2)
	series := VCQuality(pt, []float64{0.3, 0.9}, 100, 1)
	if len(series) != 3 {
		t.Fatalf("want 3 series, got %d", len(series))
	}
	var wf quality.Series
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Points))
		}
		if strings.HasPrefix(s.Name, "wf") {
			wf = s
		}
	}
	if wf.MinQuality() != 1 {
		t.Fatalf("wavefront VC quality %f, want 1", wf.MinQuality())
	}
}

func TestSwitchQualitySeries(t *testing.T) {
	pt, _ := PointByName("fbfly", 2)
	series := SwitchQuality(pt, []float64{0.5}, 100, 1)
	if len(series) != 3 {
		t.Fatalf("want 3 series, got %d", len(series))
	}
}

func TestInjectionRates(t *testing.T) {
	mesh1, _ := PointByName("mesh", 1)
	fb4, _ := PointByName("fbfly", 4)
	r1 := InjectionRates(mesh1)
	r4 := InjectionRates(fb4)
	if r1[len(r1)-1] >= r4[len(r4)-1] {
		t.Fatal("fbfly 2x2x4 sweep should extend further than mesh 2x1x1")
	}
	if r1[0] != 0.05 {
		t.Fatal("sweeps start at 0.05")
	}
}

func TestFig13SmallRun(t *testing.T) {
	pt, _ := PointByName("mesh", 1)
	scale := SimScale{Warmup: 200, Measure: 500, Drain: 2000, Seed: 3}
	series := Fig13(pt, []float64{0.1}, scale)
	if len(series) != 3 {
		t.Fatalf("want 3 switch-arch curves, got %d", len(series))
	}
	for _, s := range series {
		if s.Points[0].Latency < 15 || s.Points[0].Latency > 35 {
			t.Errorf("%s: implausible low-load latency %.1f", s.Name, s.Points[0].Latency)
		}
	}
	out := FormatNetSeries(series)
	if !strings.Contains(out, "sep_if(lat)") {
		t.Errorf("FormatNetSeries missing headers:\n%s", out)
	}
	if FormatNetSeries(nil) != "" {
		t.Error("empty series should format empty")
	}
}

func TestFig14SmallRun(t *testing.T) {
	pt, _ := PointByName("mesh", 1)
	scale := SimScale{Warmup: 200, Measure: 500, Drain: 2000, Seed: 3}
	series := Fig14(pt, []float64{0.1}, scale)
	if len(series) != 3 {
		t.Fatalf("want 3 speculation curves, got %d", len(series))
	}
	var ns, sr float64
	for _, s := range series {
		switch s.Name {
		case "nonspec":
			ns = s.Points[0].Latency
		case "spec_req":
			sr = s.Points[0].Latency
		}
	}
	if sr >= ns {
		t.Fatalf("speculation (%.1f) should beat nonspec (%.1f) at low load", sr, ns)
	}
}

func TestVASweepSmallRun(t *testing.T) {
	pt, _ := PointByName("mesh", 2)
	scale := SimScale{Warmup: 200, Measure: 500, Drain: 2000, Seed: 3}
	series := VASweep(pt, []float64{0.1}, scale)
	if len(series) != 4 {
		t.Fatalf("want 4 VA curves, got %d", len(series))
	}
	base := series[0].Points[0].Latency
	for _, s := range series[1:] {
		diff := (s.Points[0].Latency - base) / base
		if diff < -0.08 || diff > 0.08 {
			t.Errorf("%s deviates from sep_if baseline by %.3f", s.Name, diff)
		}
	}
}

func TestSaturationRateHelper(t *testing.T) {
	s := NetSeries{Points: []NetPoint{{Throughput: 0.2}, {Throughput: 0.5}, {Throughput: 0.45}}}
	if s.SaturationRate() != 0.5 {
		t.Fatalf("SaturationRate = %f", s.SaturationRate())
	}
}

func TestBuildSimUnknownTopoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildSim(Point{Topo: "ring", Ports: 3, Spec: Points()[0].Spec}, 0.1, DefaultScale())
}

func TestSaturationThroughputOrdering(t *testing.T) {
	// Conclusions: wf achieves higher saturation throughput than sep_if on
	// the flattened butterfly with 16 VCs.
	if testing.Short() {
		t.Skip("saturation sweep is slow")
	}
	pt, _ := PointByName("fbfly", 4)
	scale := SimScale{Warmup: 500, Measure: 1200, Drain: 1500, Seed: 9}
	wf := SaturationThroughput(pt, alloc.Wavefront, scale)
	sif := SaturationThroughput(pt, alloc.SepIF, scale)
	t.Logf("fbfly 2x2x4 saturation: wf %.3f vs sep_if %.3f (+%.0f%%; paper: +21%%)",
		wf, sif, 100*(wf/sif-1))
	if wf <= sif {
		t.Fatalf("wf saturation %.3f should exceed sep_if %.3f", wf, sif)
	}
}

func TestPatternSweepInvariance(t *testing.T) {
	// §3.2: conclusions largely invariant to traffic pattern selection —
	// at low load every pattern must deliver with sane latency.
	pt, _ := PointByName("mesh", 2)
	scale := SimScale{Warmup: 300, Measure: 600, Drain: 3000, Seed: 5}
	series, err := PatternSweep(pt, 0.1, scale, []string{"uniform", "transpose", "bitcomp", "tornado", "neighbor"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("want 5 pattern series, got %d", len(series))
	}
	for _, s := range series {
		p := s.Points[0]
		if p.Saturated || p.Latency < 5 || p.Latency > 60 {
			t.Errorf("pattern %s: implausible low-load point %+v", s.Name, p)
		}
	}
	if _, err := PatternSweep(pt, 0.1, scale, []string{"bogus"}); err == nil {
		t.Fatal("unknown pattern should error")
	}
}

func TestGoldenActiveMatchesDense(t *testing.T) {
	// Acceptance criterion for the active-set scheduler: the Fig. 13 and
	// Fig. 14 series (latency, throughput, saturation flags) at seed 42 are
	// bit-identical to the dense reference stepper on both paper topologies.
	rates := []float64{0.05, 0.2, 0.35}
	active := SimScale{Warmup: 300, Measure: 600, Drain: 4000, Seed: 42, Workers: runtime.NumCPU()}
	dense := active
	dense.Dense = true
	for _, topo := range []string{"mesh", "fbfly"} {
		pt, err := PointByName(topo, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, fig := range []struct {
			name string
			run  func(Point, []float64, SimScale) []NetSeries
		}{{"fig13", Fig13}, {"fig14", Fig14}} {
			a := fig.run(pt, rates, active)
			d := fig.run(pt, rates, dense)
			if !reflect.DeepEqual(a, d) {
				t.Errorf("%s %s: active scheduler series diverged from dense reference\nactive: %+v\ndense:  %+v",
					topo, fig.name, a, d)
			}
		}
	}
}

func TestPatternSweepWorkersMatchSerial(t *testing.T) {
	// PatternSweep fans out one simulation per pattern; the per-pattern
	// simulations are independently seeded, so any worker count must give
	// results bit-identical to the serial sweep, in the requested order.
	pt, _ := PointByName("mesh", 1)
	patterns := []string{"uniform", "transpose", "bitcomp", "tornado"}
	serial := SimScale{Warmup: 200, Measure: 400, Drain: 2000, Seed: 7, Workers: 1}
	a, err := PatternSweep(pt, 0.1, serial, patterns)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.NumCPU(), 64} {
		par := serial
		par.Workers = workers
		b, err := PatternSweep(pt, 0.1, par, patterns)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("workers=%d: parallel pattern sweep diverged from serial:\nserial:   %+v\nparallel: %+v",
				workers, a, b)
		}
	}
}

func TestParallelCurveMatchesSerial(t *testing.T) {
	// Per-point simulations are independent and seeded, so parallel sweeps
	// must be bit-identical to serial ones.
	pt, _ := PointByName("mesh", 1)
	rates := []float64{0.1, 0.2, 0.3}
	serial := SimScale{Warmup: 200, Measure: 400, Drain: 1500, Seed: 5, Workers: 1}
	a := Fig13(pt, rates, serial)
	for _, workers := range []int{4, runtime.NumCPU()} {
		parallel := serial
		parallel.Workers = workers
		b := Fig13(pt, rates, parallel)
		for si := range a {
			for pi := range a[si].Points {
				if a[si].Points[pi] != b[si].Points[pi] {
					t.Fatalf("series %s point %d (workers=%d): serial %+v vs parallel %+v",
						a[si].Name, pi, workers, a[si].Points[pi], b[si].Points[pi])
				}
			}
		}
	}
}

func TestQualityWorkersMatchSerial(t *testing.T) {
	// Quality rate points re-seed their workload streams, so sweeping them
	// concurrently must be bit-identical to the serial sweep.
	pt, _ := PointByName("mesh", 2)
	rates := []float64{0.4, 0.8}
	const trials, seed = 60, 42
	vc1 := VCQualityN(pt, rates, trials, seed, 1)
	sw1 := SwitchQualityN(pt, rates, trials, seed, 1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		vcN := VCQualityN(pt, rates, trials, seed, workers)
		swN := SwitchQualityN(pt, rates, trials, seed, workers)
		for k := range vc1 {
			for i := range vc1[k].Points {
				if vc1[k].Points[i] != vcN[k].Points[i] {
					t.Fatalf("vc series %s point %d (workers=%d): %+v vs %+v",
						vc1[k].Name, i, workers, vc1[k].Points[i], vcN[k].Points[i])
				}
			}
		}
		for k := range sw1 {
			for i := range sw1[k].Points {
				if sw1[k].Points[i] != swN[k].Points[i] {
					t.Fatalf("sw series %s point %d (workers=%d): %+v vs %+v",
						sw1[k].Name, i, workers, sw1[k].Points[i], swN[k].Points[i])
				}
			}
		}
	}
}

func TestReportsRoundTrip(t *testing.T) {
	tech := costmodel.Default45nm()
	var buf bytes.Buffer
	rep := VCCostReport(tech)
	if rep.Experiment != "fig5-6" || len(rep.Cost) != 60 {
		t.Fatalf("VC cost report malformed: %s %d", rep.Experiment, len(rep.Cost))
	}
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Cost) != 60 {
		t.Fatalf("round trip lost rows: %d", len(decoded.Cost))
	}
	failedHasNoNumbers := true
	for _, c := range decoded.Cost {
		if !c.Synthesized && (c.DelayNS != 0 || c.AreaUM2 != 0) {
			failedHasNoNumbers = false
		}
	}
	if !failedHasNoNumbers {
		t.Fatal("failed synthesis rows must omit numbers")
	}

	sw := SwitchCostReport(tech)
	if sw.Experiment != "fig10-11" || len(sw.Cost) != 90 {
		t.Fatalf("switch cost report malformed")
	}

	pt, _ := PointByName("mesh", 1)
	qr := QualityReport("fig7", pt, VCQuality(pt, []float64{0.5}, 50, 1))
	if len(qr.Quality) != 3 || len(qr.Quality[0].Rate) != 1 {
		t.Fatalf("quality report malformed: %+v", qr)
	}
	scale := SimScale{Warmup: 100, Measure: 200, Drain: 800, Seed: 1}
	nr := NetworkReport("fig14", pt, Fig14(pt, []float64{0.1}, scale))
	if len(nr.Network) != 3 || len(nr.Network[0].Latency) != 1 {
		t.Fatalf("network report malformed: %+v", nr)
	}
	buf.Reset()
	if err := nr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"experiment\": \"fig14\"") {
		t.Fatal("network report JSON missing experiment tag")
	}
}

func TestShardsMatchSerialCurves(t *testing.T) {
	// SimScale.Shards threads intra-run parallelism through to the
	// simulator; the sharded stepper is bit-identical to serial stepping,
	// so whole Fig. 13 curves must come out unchanged.
	pt, _ := PointByName("mesh", 1)
	rates := []float64{0.1, 0.3}
	base := SimScale{Warmup: 200, Measure: 400, Drain: 1500, Seed: 42}
	serial := Fig13(pt, rates, base)
	for _, shards := range []int{2, 4} {
		sharded := base
		sharded.Shards = shards
		if got := Fig13(pt, rates, sharded); !reflect.DeepEqual(serial, got) {
			t.Fatalf("shards=%d: Fig13 curves diverged from serial:\nserial:  %+v\nsharded: %+v",
				shards, serial, got)
		}
	}
}

func TestPatternSweepAutoShardsMatchesSerial(t *testing.T) {
	// A sweep shorter than the worker budget hands the leftover cores to
	// intra-run sharding (Workers=8 over 2 patterns -> 4 shards each);
	// results must still be bit-identical to the plain serial sweep.
	pt, _ := PointByName("mesh", 1)
	patterns := []string{"uniform", "transpose"}
	serialScale := SimScale{Warmup: 200, Measure: 400, Drain: 2000, Seed: 7, Workers: 1}
	serial, err := PatternSweep(pt, 0.1, serialScale, patterns)
	if err != nil {
		t.Fatal(err)
	}
	wide := serialScale
	wide.Workers = 8
	got, err := PatternSweep(pt, 0.1, wide, patterns)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, got) {
		t.Fatalf("auto-sharded pattern sweep diverged from serial:\nserial: %+v\nauto:   %+v", serial, got)
	}
}

// TestLeapInvarianceFig13 pins the Fig. 13/14 pipeline end to end across
// the event-leaping axis: SimScale.Leap (the cmd-tool default) must produce
// series bit-identical to the per-cycle stepper, including a drain-heavy
// low-rate point where leaping actually skips most cycles, composed with
// intra-run sharding.
func TestLeapInvarianceFig13(t *testing.T) {
	rates := []float64{0.005, 0.2}
	ticked := SimScale{Warmup: 300, Measure: 600, Drain: 4000, Seed: 42, Workers: runtime.NumCPU()}
	leaped := ticked
	leaped.Leap = true
	for _, topo := range []string{"mesh", "fbfly"} {
		pt, err := PointByName(topo, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{0, 4} {
			a := ticked
			a.Shards = shards
			b := leaped
			b.Shards = shards
			ta := Fig13(pt, rates, a)
			tb := Fig13(pt, rates, b)
			if !reflect.DeepEqual(ta, tb) {
				t.Errorf("%s shards=%d: leaped Fig13 series diverged from ticked\nticked: %+v\nleaped: %+v",
					topo, shards, ta, tb)
			}
		}
	}
}
