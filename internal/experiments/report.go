package experiments

import (
	"encoding/json"
	"io"

	"repro/internal/costmodel"
	"repro/internal/quality"
)

// Report is the JSON-serializable container the command-line tools emit
// with their -json flag, so downstream plotting scripts can consume
// experiment data without screen-scraping tables.
type Report struct {
	// Experiment names the figure/table ("fig5", "fig13", ...).
	Experiment string `json:"experiment"`
	// Point labels the design point ("mesh 2x1x4"), if applicable.
	Point string `json:"point,omitempty"`
	// Cost carries synthesis rows for the cost figures.
	Cost []CostJSON `json:"cost,omitempty"`
	// Quality carries matching-quality curves.
	Quality []QualityJSON `json:"quality,omitempty"`
	// Network carries latency/throughput curves.
	Network []NetworkJSON `json:"network,omitempty"`
}

// CostJSON is one synthesis result row.
type CostJSON struct {
	Point       string  `json:"point"`
	Variant     string  `json:"variant"`
	Scheme      string  `json:"scheme"` // "dense"/"sparse" or speculation mode
	Synthesized bool    `json:"synthesized"`
	DelayNS     float64 `json:"delay_ns,omitempty"`
	AreaUM2     float64 `json:"area_um2,omitempty"`
	PowerMW     float64 `json:"power_mw,omitempty"`
}

// QualityJSON is one matching-quality curve.
type QualityJSON struct {
	Name    string    `json:"name"`
	Rate    []float64 `json:"rate"`
	Quality []float64 `json:"quality"`
}

// NetworkJSON is one latency/throughput curve.
type NetworkJSON struct {
	Name       string    `json:"name"`
	Rate       []float64 `json:"rate"`
	Latency    []float64 `json:"latency"`
	Throughput []float64 `json:"throughput"`
	Saturated  []bool    `json:"saturated"`
}

func costJSON(point, variant, scheme string, e costmodel.Estimate) CostJSON {
	c := CostJSON{Point: point, Variant: variant, Scheme: scheme, Synthesized: e.Synthesized}
	if e.Synthesized {
		c.DelayNS = e.DelayNS
		c.AreaUM2 = e.AreaUM2
		c.PowerMW = e.PowerMW
	}
	return c
}

// VCCostReport packages the Fig. 5/6 data as a Report.
func VCCostReport(tech costmodel.Tech) Report {
	r := Report{Experiment: "fig5-6"}
	for _, row := range VCCost(tech) {
		scheme := "dense"
		if row.Sparse {
			scheme = "sparse"
		}
		r.Cost = append(r.Cost, costJSON(row.Point.String(), row.Variant.String(), scheme, row.Est))
	}
	return r
}

// SwitchCostReport packages the Fig. 10/11 data as a Report.
func SwitchCostReport(tech costmodel.Tech) Report {
	r := Report{Experiment: "fig10-11"}
	for _, row := range SwitchCost(tech) {
		r.Cost = append(r.Cost, costJSON(row.Point.String(), row.Variant.String(), row.Mode.String(), row.Est))
	}
	return r
}

// QualityReport packages quality curves as a Report.
func QualityReport(experiment string, pt Point, series []quality.Series) Report {
	r := Report{Experiment: experiment, Point: pt.String()}
	for _, s := range series {
		q := QualityJSON{Name: s.Name}
		for _, p := range s.Points {
			q.Rate = append(q.Rate, p.Rate)
			q.Quality = append(q.Quality, p.Quality)
		}
		r.Quality = append(r.Quality, q)
	}
	return r
}

// NetworkReport packages latency curves as a Report.
func NetworkReport(experiment string, pt Point, series []NetSeries) Report {
	r := Report{Experiment: experiment, Point: pt.String()}
	for _, s := range series {
		n := NetworkJSON{Name: s.Name}
		for _, p := range s.Points {
			n.Rate = append(n.Rate, p.Rate)
			n.Latency = append(n.Latency, p.Latency)
			n.Throughput = append(n.Throughput, p.Throughput)
			n.Saturated = append(n.Saturated, p.Saturated)
		}
		r.Network = append(r.Network, n)
	}
	return r
}

// WriteJSON encodes the report with indentation.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
