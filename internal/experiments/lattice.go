package experiments

import "math"

// RateLattice quantizes offered loads onto an integer lattice: rate i is
// exactly float64(i) * Step, computed by this one function everywhere. The
// adaptive curve tracer and the batch CLIs both derive their rates from
// lattice indices, so the same index yields the same float64 bit pattern —
// and therefore the same sweep content key — no matter which tool asked.
// (Accumulating `r += step` in a loop does NOT reproduce these floats;
// always go through Rate.)
type RateLattice struct {
	// Step is the lattice quantum in flits/cycle/terminal.
	Step float64
}

// DefaultLatticeStep is the tracer's default rate quantum: fine enough that
// one lattice step of knee uncertainty is well under the paper grid's 0.05
// spacing, coarse enough that a full fixed grid stays enumerable.
const DefaultLatticeStep = 0.01

// Rate returns lattice point i's offered load. This is the canonical
// index→rate mapping; every simulated curve point's rate must come from it.
func (l RateLattice) Rate(i int) float64 { return float64(i) * l.Step }

// Index snaps a rate to its nearest lattice index.
func (l RateLattice) Index(r float64) int { return int(math.Round(r / l.Step)) }

// Snap returns the canonical rate nearest r: Rate(Index(r)).
func (l RateLattice) Snap(r float64) float64 { return l.Rate(l.Index(r)) }

// Grid returns the rates of every lattice index in [lo, hi] with the given
// index stride — the fixed grid an adaptive trace is compared against.
func (l RateLattice) Grid(lo, hi, stride int) []float64 {
	if stride < 1 {
		stride = 1
	}
	var rates []float64
	for i := lo; i <= hi; i += stride {
		rates = append(rates, l.Rate(i))
	}
	return rates
}
