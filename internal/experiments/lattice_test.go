package experiments

import (
	"strings"
	"testing"
)

// TestRateLatticeCanonicalRates pins the lattice's reason to exist: the rate
// for an index is the one canonical float64 spelling (float64(i) * Step), so
// any two clients that agree on an index agree bit-for-bit on the rate —
// which is what lets an adaptive tracer's points hit a cache populated by a
// batch sweep. An accumulated sum (r += step) does NOT reproduce these
// floats; the test shows the divergence the lattice exists to prevent.
func TestRateLatticeCanonicalRates(t *testing.T) {
	lat := RateLattice{Step: DefaultLatticeStep}
	acc, diverged := 0.0, false
	for i := 1; i <= 100; i++ {
		acc += DefaultLatticeStep
		r := lat.Rate(i)
		if r != float64(i)*DefaultLatticeStep {
			t.Fatalf("index %d: non-canonical rate %v", i, r)
		}
		if lat.Index(r) != i {
			t.Fatalf("index %d does not round-trip through rate %v", i, r)
		}
		if lat.Snap(r) != r {
			t.Fatalf("lattice rate %v not a fixed point of Snap", r)
		}
		if acc != r {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("accumulated rates never diverged from canonical ones; the canonicalization test is vacuous")
	}
	// Snap pulls nearby off-lattice spellings onto the canonical one.
	if got := lat.Snap(0.30000000000000004); got != lat.Rate(30) {
		t.Fatalf("Snap(0.30000000000000004) = %v, want %v", got, lat.Rate(30))
	}
}

func TestRateLatticeGrid(t *testing.T) {
	lat := RateLattice{Step: 0.05}
	got := lat.Grid(1, 9, 2) // indices 1,3,5,7,9
	want := []float64{lat.Rate(1), lat.Rate(3), lat.Rate(5), lat.Rate(7), lat.Rate(9)}
	if len(got) != len(want) {
		t.Fatalf("grid %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("grid[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestFormatNetSeriesNonUniformGrids pins the union-of-rates rendering: two
// series sampled on different grids (an adaptive trace next to a fixed
// sweep) produce one table whose rate column is the sorted union, with "-"
// cells where a series did not sample and enough rate precision to keep
// fine-lattice points distinguishable.
func TestFormatNetSeriesNonUniformGrids(t *testing.T) {
	lat := RateLattice{Step: 0.01}
	fixed := NetSeries{Name: "fixed", Points: []NetPoint{
		{Rate: lat.Rate(10), Latency: 20, Throughput: 0.10},
		{Rate: lat.Rate(20), Latency: 30, Throughput: 0.20},
		{Rate: lat.Rate(30), Latency: 80, Throughput: 0.28, Saturated: true},
	}}
	adaptive := NetSeries{Name: "adaptive", Points: []NetPoint{
		{Rate: lat.Rate(10), Latency: 20, Throughput: 0.10},
		{Rate: lat.Rate(25), Latency: 42, Throughput: 0.24},
		{Rate: lat.Rate(30), Latency: 80, Throughput: 0.28, Saturated: true},
	}}
	out := FormatNetSeries([]NetSeries{fixed, adaptive})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + union of {10,20,25,30}
		t.Fatalf("want header + 4 union rows, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "rate\tfixed(lat)\tfixed(thr)\tadaptive(lat)\tadaptive(thr)" {
		t.Fatalf("header: %q", lines[0])
	}
	rows := map[string]string{}
	for _, l := range lines[1:] {
		rate, rest, _ := strings.Cut(l, "\t")
		rows[rate] = rest
	}
	// 0.20 exists only in the fixed series, 0.25 only in the adaptive one.
	if got := rows["0.20"]; !strings.HasSuffix(got, "\t-\t-") {
		t.Fatalf("fixed-only rate row lacks - placeholders for adaptive: %q", got)
	}
	if got := rows["0.25"]; !strings.HasPrefix(got, "-\t-\t") {
		t.Fatalf("adaptive-only rate row lacks - placeholders for fixed: %q", got)
	}
	// A shared, saturated point renders in both columns with the * marker.
	if got := rows["0.30"]; strings.Count(got, "80.0*") != 2 {
		t.Fatalf("shared saturated row: %q", got)
	}

	// A finer lattice widens the rate column until rows stay distinct.
	fine := NetSeries{Name: "fine", Points: []NetPoint{
		{Rate: RateLattice{Step: 0.005}.Rate(41), Latency: 10, Throughput: 0.2},
	}}
	out = FormatNetSeries([]NetSeries{fine})
	if !strings.Contains(out, "0.205") {
		t.Fatalf("fine lattice rate rendered without enough precision:\n%s", out)
	}
}
