package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/traffic"
)

// quickCtxScale is a small-but-nonzero workload for the cancellation tests:
// big enough that an uncancelled sweep would take many seconds, so a prompt
// return can only mean the abort path fired.
func ctxHugeScale() SimScale {
	return SimScale{Warmup: 500, Measure: 50_000_000, Drain: 1000, Seed: 42, Workers: 2}
}

// TestFig13CtxCancelStopsEarly cancels a curve sweep whose uncancelled
// runtime would be enormous and requires it to return promptly.
func TestFig13CtxCancelStopsEarly(t *testing.T) {
	pt, err := PointByName("mesh", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []NetSeries, 1)
	go func() { done <- Fig13Ctx(ctx, pt, []float64{0.2, 0.25, 0.3}, ctxHugeScale()) }()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case series := <-done:
		if len(series) != 3 {
			t.Fatalf("want 3 series even when cancelled, got %d", len(series))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled Fig13Ctx sweep did not return within 30s")
	}
}

// TestPatternSweepCtxCancelStopsEarly does the same through the pattern
// sweep worker path.
func TestPatternSweepCtxCancelStopsEarly(t *testing.T) {
	pt, err := PointByName("mesh", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := PatternSweepCtx(ctx, pt, 0.3, ctxHugeScale(), []string{"uniform", "transpose", "tornado"})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled sweep returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled PatternSweepCtx did not return within 30s")
	}
}

// TestCtxVariantsMatchPlain pins that the Background-context wrappers are
// the same computation as the plain entry points.
func TestCtxVariantsMatchPlain(t *testing.T) {
	pt, err := PointByName("mesh", 1)
	if err != nil {
		t.Fatal(err)
	}
	scale := SimScale{Warmup: 200, Measure: 400, Drain: 1500, Seed: 42, Workers: 2}
	rates := []float64{0.1, 0.2}
	if a, b := Fig13(pt, rates, scale), Fig13Ctx(context.Background(), pt, rates, scale); !reflect.DeepEqual(a, b) {
		t.Fatalf("Fig13 and Fig13Ctx diverged")
	}
	if a, b := Fig14(pt, rates, scale), Fig14Ctx(context.Background(), pt, rates, scale); !reflect.DeepEqual(a, b) {
		t.Fatalf("Fig14 and Fig14Ctx diverged")
	}
}

// TestScaleFlags pins the shared flag surface: defaults pass through
// untouched, and every registered flag lands in the resolved SimScale.
func TestScaleFlags(t *testing.T) {
	def := SimScale{Warmup: 100, Measure: 200, Drain: 300, Seed: 7, Workers: 2, Leap: true}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	get := ScaleFlags(fs, def)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if got := get(); !reflect.DeepEqual(got, def) {
		t.Fatalf("defaults did not pass through: got %+v want %+v", got, def)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	get = ScaleFlags(fs, def)
	args := []string{
		"-warmup", "11", "-measure", "22", "-drain", "33", "-seed", "44",
		"-workers", "5", "-shards", "6", "-dense", "-denserequests", "-leap=false",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	want := SimScale{Warmup: 11, Measure: 22, Drain: 33, Seed: 44, Workers: 5, Shards: 6, Dense: true, DenseRequests: true, Leap: false}
	if got := get(); !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed flags: got %+v want %+v", got, want)
	}
}

// TestWorkloadFlags pins the shared workload flag surface: defaults pass
// through normalized, and every registered flag lands in the resolved
// Workload.
func TestWorkloadFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	get := WorkloadFlags(fs, traffic.Workload{Rate: 0.2})
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	got, err := get()
	if err != nil {
		t.Fatal(err)
	}
	want := traffic.Workload{Process: "bernoulli", Pattern: "uniform", Rate: 0.2}.Normalized()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("defaults: got %+v want %+v", got, want)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	get = WorkloadFlags(fs, traffic.Workload{})
	args := []string{"-process", "mmp", "-rate", "0.3", "-burstlen", "64", "-duty", "0.5"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if got, err = get(); err != nil {
		t.Fatal(err)
	}
	want = traffic.Workload{Process: "mmp", Rate: 0.3, Pattern: "uniform", BurstLen: 64, Duty: 0.5}.Normalized()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mmp flags: got %+v want %+v", got, want)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	get = WorkloadFlags(fs, traffic.Workload{})
	args = []string{"-pattern", "hotspot", "-hotspots", "3,7", "-hotfrac", "0.4", "-rate", "0.1"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if got, err = get(); err != nil {
		t.Fatal(err)
	}
	want = traffic.Workload{Pattern: "hotspot", Rate: 0.1, Hotspots: []int{3, 7}, HotspotFraction: 0.4}.Normalized()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hotspot flags: got %+v want %+v", got, want)
	}

	// -trace alone selects the trace process and loads the file.
	dir := t.TempDir()
	path := filepath.Join(dir, "t.txt")
	ptr := &traffic.PacketTrace{Terminals: 4, Arrivals: []traffic.Arrival{
		{Cycle: 0, Src: 1, Dst: 2, Type: traffic.ReadRequest},
		{Cycle: 3, Src: 0, Dst: 3, Type: traffic.WriteRequest},
	}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteArrivals(f, ptr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	get = WorkloadFlags(fs, traffic.Workload{})
	if err := fs.Parse([]string{"-trace", path}); err != nil {
		t.Fatal(err)
	}
	if got, err = get(); err != nil {
		t.Fatal(err)
	}
	if got.Process != "trace" || got.Trace == nil || len(got.Trace.Arrivals) != 2 {
		t.Fatalf("trace flag: got %+v", got)
	}

	// -process trace without -trace is an error, not a panic downstream.
	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	get = WorkloadFlags(fs, traffic.Workload{})
	if err := fs.Parse([]string{"-process", "trace"}); err != nil {
		t.Fatal(err)
	}
	if _, err := get(); err == nil {
		t.Fatal("process trace without a trace file resolved")
	}
}
